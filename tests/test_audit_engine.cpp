#include <gtest/gtest.h>

#include <vector>

#include "audit/engine.hpp"
#include "db/api.hpp"
#include "db/controller_schema.hpp"
#include "db/direct.hpp"

namespace wtc::audit {
namespace {

class CollectingSink : public ReportSink {
 public:
  void on_finding(const Finding& finding) override { findings.push_back(finding); }
  [[nodiscard]] std::size_t count(Technique technique) const {
    std::size_t n = 0;
    for (const auto& finding : findings) {
      if (finding.technique == technique) {
        ++n;
      }
    }
    return n;
  }
  std::vector<Finding> findings;
};

class RecordingControl : public ClientControl {
 public:
  void terminate_client_thread(sim::ProcessId client, std::uint32_t thread) override {
    terminated.emplace_back(client, thread);
  }
  void kill_client_process(sim::ProcessId client) override {
    killed.push_back(client);
  }
  std::vector<std::pair<sim::ProcessId, std::uint32_t>> terminated;
  std::vector<sim::ProcessId> killed;
};

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : db_(db::make_controller_database()),
        ids_(db::resolve_controller_ids(db_->schema())),
        api_(*db_, [this]() { return now_; }) {
    config_.recent_write_grace = 1000;  // 1ms grace for tests
    engine_ = std::make_unique<AuditEngine>(*db_, config_,
                                            [this]() { return now_; });
    engine_->set_report_sink(&sink_);
    engine_->set_client_control(&control_);
    api_.init(77);
    api_.set_audit_hooks(&null_sink_);  // metadata upkeep on
  }

  /// Sets up one complete, intact call loop; returns (p, c, r).
  std::array<db::RecordIndex, 3> make_call(std::uint32_t thread = 0) {
    api_.set_thread_id(thread);
    db::RecordIndex p = 0, c = 0, r = 0;
    EXPECT_EQ(api_.alloc_rec(ids_.process, db::kGroupActiveCalls, p), db::Status::Ok);
    EXPECT_EQ(api_.alloc_rec(ids_.connection, db::kGroupActiveCalls, c),
              db::Status::Ok);
    EXPECT_EQ(api_.alloc_rec(ids_.resource, db::kGroupActiveCalls, r), db::Status::Ok);
    api_.write_fld(ids_.process, p, ids_.p_process_id, db::key_of(p));
    api_.write_fld(ids_.process, p, ids_.p_connection_id, db::key_of(c));
    api_.write_fld(ids_.process, p, ids_.p_status, 1);
    api_.write_fld(ids_.connection, c, ids_.c_connection_id, db::key_of(c));
    api_.write_fld(ids_.connection, c, ids_.c_channel_id, db::key_of(r));
    api_.write_fld(ids_.connection, c, ids_.c_state, 1);
    api_.write_fld(ids_.resource, r, ids_.r_channel_id, db::key_of(r));
    api_.write_fld(ids_.resource, r, ids_.r_process_id, db::key_of(p));
    api_.write_fld(ids_.resource, r, ids_.r_status, 1);
    advance();  // step past the write-grace window
    return {p, c, r};
  }

  void advance(sim::Time delta = 10'000) { now_ += delta; }

  [[nodiscard]] std::vector<db::TableId> all_tables() const {
    std::vector<db::TableId> order;
    for (std::size_t t = 0; t < db_->table_count(); ++t) {
      order.push_back(static_cast<db::TableId>(t));
    }
    return order;
  }

  class NullSink : public db::NotificationSink {
   public:
    void on_api_event(const db::ApiEvent&) override {}
  };

  std::unique_ptr<db::Database> db_;
  db::ControllerIds ids_;
  EngineConfig config_;
  std::unique_ptr<AuditEngine> engine_;
  CollectingSink sink_;
  RecordingControl control_;
  NullSink null_sink_;
  db::DbApi api_;
  sim::Time now_ = 0;
};

TEST_F(EngineTest, CleanDatabaseYieldsNoFindings) {
  make_call();
  make_call(1);
  const auto result = engine_->full_pass(all_tables());
  EXPECT_EQ(result.findings, 0u);
  EXPECT_TRUE(sink_.findings.empty());
  EXPECT_GT(result.cost, 0);
}

TEST_F(EngineTest, StaticChecksumDetectsAndReloadsCatalogCorruption) {
  db_->region()[4] ^= std::byte{0x20};  // catalog version field
  const auto result = engine_->check_static();
  EXPECT_EQ(result.findings, 1u);
  ASSERT_EQ(sink_.findings.size(), 1u);
  EXPECT_EQ(sink_.findings[0].technique, Technique::StaticChecksum);
  EXPECT_EQ(sink_.findings[0].recovery, Recovery::ReloadSpan);
  // Recovery restored the bytes.
  EXPECT_TRUE(db::CatalogView(db_->region()).header_ok());
  // A second pass is clean.
  EXPECT_EQ(engine_->check_static().findings, 0u);
}

TEST_F(EngineTest, StaticChecksumDetectsStaticTableCorruption) {
  const std::size_t at = db_->layout().field_offset(ids_.subscriber, 5, 1);
  db_->region()[at] ^= std::byte{0x01};
  EXPECT_EQ(engine_->check_static().findings, 1u);
  EXPECT_EQ(db::load_i32(db_->region(), at), db::subscriber_auth_key(5));
}

TEST_F(EngineTest, StructuralAuditRepairsSingleIdTagError) {
  const auto [p, c, r] = make_call();
  const std::size_t at = db_->layout().record_offset(ids_.process, p);
  db_->region()[at] ^= std::byte{0x40};  // id_tag bit

  const auto result = engine_->check_structure(ids_.process);
  EXPECT_EQ(result.findings, 1u);
  EXPECT_EQ(sink_.findings[0].technique, Technique::StructuralCheck);
  EXPECT_EQ(sink_.findings[0].recovery, Recovery::RepairHeader);
  EXPECT_EQ(db::direct::read_header(*db_, ids_.process, p).id_tag,
            db::expected_id_tag(ids_.process, p));
  // Record content survived the repair.
  EXPECT_EQ(db::direct::read_field(*db_, ids_.process, p, ids_.p_process_id),
            db::key_of(p));
}

TEST_F(EngineTest, StructuralAuditDetectsStatusAndGroupCorruption) {
  const auto [p, c, r] = make_call();
  (void)c;
  (void)r;
  const std::size_t at = db_->layout().record_offset(ids_.process, p);
  db::store_u32(db_->region(), at + 4, 0x12345678u);  // invalid status
  EXPECT_EQ(engine_->check_structure(ids_.process).findings, 1u);

  // Active record forced onto the free-list group: inconsistent.
  const auto [p2, c2, r2] = make_call(1);
  (void)c2;
  (void)r2;
  const std::size_t at2 = db_->layout().record_offset(ids_.process, p2);
  db::store_u32(db_->region(), at2 + 8, 0);  // group 0 while Active
  EXPECT_GE(engine_->check_structure(ids_.process).findings, 1u);
}

TEST_F(EngineTest, StructuralAuditDetectsBrokenNextLink) {
  make_call();
  make_call(1);
  const std::size_t at = db_->layout().record_offset(ids_.process, 0);
  db::store_u32(db_->region(), at + 12, 55);  // bogus next
  EXPECT_GE(engine_->check_structure(ids_.process).findings, 1u);
  // Relink restored the invariant.
  EXPECT_EQ(engine_->check_structure(ids_.process).findings, 0u);
}

TEST_F(EngineTest, ConsecutiveHeaderCorruptionTriggersFullReload) {
  make_call();
  // Smash three consecutive record headers (misalignment signature).
  for (db::RecordIndex r = 2; r < 5; ++r) {
    const std::size_t at = db_->layout().record_offset(ids_.process, r);
    db::store_u32(db_->region(), at, 0xBAD0BAD0u);
    db::store_u32(db_->region(), at + 4, 0xBAD1BAD1u);
  }
  const auto result = engine_->check_structure(ids_.process);
  bool saw_reload = false;
  for (const auto& finding : sink_.findings) {
    saw_reload |= finding.recovery == Recovery::ReloadAll;
  }
  EXPECT_TRUE(saw_reload);
  EXPECT_GE(result.findings, 1u);
  // Whole region is pristine again (all dynamic state lost).
  EXPECT_TRUE(std::equal(db_->region().begin(), db_->region().end(),
                         db_->pristine().begin()));
}

TEST_F(EngineTest, RangeAuditResetsAndFreesDynamicRecord) {
  const auto [p, c, r] = make_call();
  (void)p;
  (void)r;
  // state has range [0,4]; write 99 directly (as corruption would).
  db::direct::write_field(*db_, ids_.connection, c, ids_.c_state, 99);

  const auto result = engine_->check_ranges(ids_.connection);
  EXPECT_EQ(result.findings, 1u);
  EXPECT_EQ(sink_.findings[0].technique, Technique::RangeCheck);
  EXPECT_EQ(sink_.findings[0].recovery, Recovery::FreeRecord);
  EXPECT_EQ(db::direct::read_header(*db_, ids_.connection, c).status,
            db::kStatusFree);
}

TEST_F(EngineTest, RangeAuditHonorsGraceWindow) {
  const auto [p, c, r] = make_call();
  (void)p;
  (void)r;
  api_.write_fld(ids_.connection, c, ids_.c_state, 1);  // fresh write
  db::direct::write_field(*db_, ids_.connection, c, ids_.c_state, 99);
  // Still within grace: skipped.
  EXPECT_EQ(engine_->check_ranges(ids_.connection).findings, 0u);
  advance();
  EXPECT_EQ(engine_->check_ranges(ids_.connection).findings, 1u);
}

TEST_F(EngineTest, RangeAuditSkipsLockedTables) {
  const auto [p, c, r] = make_call();
  (void)p;
  (void)r;
  db::direct::write_field(*db_, ids_.connection, c, ids_.c_state, 99);
  db_->try_lock(ids_.connection, 55, now_);
  EXPECT_EQ(engine_->check_ranges(ids_.connection).findings, 0u);
  db_->unlock(ids_.connection, 55);
  EXPECT_EQ(engine_->check_ranges(ids_.connection).findings, 1u);
}

TEST_F(EngineTest, SemanticAuditDetectsBrokenLoopAndTerminatesThread) {
  const auto [p, c, r] = make_call(3);
  (void)r;
  // Corrupt the Process->Connection key: the loop no longer closes.
  db::direct::write_field(*db_, ids_.process, p, ids_.p_connection_id,
                          db::key_of(c) + 17);
  const auto result = engine_->check_semantics();
  EXPECT_GE(result.findings, 1u);
  EXPECT_GE(sink_.count(Technique::SemanticCheck), 1u);
  // The anchor record was freed and the writing thread terminated.
  EXPECT_EQ(db::direct::read_header(*db_, ids_.process, p).status,
            db::kStatusFree);
  ASSERT_FALSE(control_.terminated.empty());
  EXPECT_EQ(control_.terminated[0].first, 77u);
  EXPECT_EQ(control_.terminated[0].second, 3u);
}

TEST_F(EngineTest, SemanticAuditSweepsOrphanRecords) {
  const auto [p, c, r] = make_call();
  // Free the Process anchor directly (as a crashed client would leave it).
  db::direct::free_record(*db_, ids_.process, p);
  advance();
  const auto result = engine_->check_semantics();
  EXPECT_GE(result.findings, 1u);
  // The orphaned connection and resource records were reclaimed.
  EXPECT_EQ(db::direct::read_header(*db_, ids_.connection, c).status,
            db::kStatusFree);
  EXPECT_EQ(db::direct::read_header(*db_, ids_.resource, r).status,
            db::kStatusFree);
}

TEST_F(EngineTest, SemanticAuditLeavesIntactLoopsAlone) {
  make_call();
  make_call(1);
  make_call(2);
  EXPECT_EQ(engine_->check_semantics().findings, 0u);
}

TEST_F(EngineTest, EventCheckFindsFreshOutOfRangeWrite) {
  const auto [p, c, r] = make_call();
  (void)p;
  (void)r;
  // A corrupted client writes garbage through the API (legitimate write
  // from the oracle's perspective, but semantically wrong).
  api_.write_fld(ids_.connection, c, ids_.c_state, 4242);
  // Event-triggered check runs immediately — it must NOT wait out the
  // grace window (the fresh write is the suspect).
  const auto result = engine_->check_record(ids_.connection, c);
  EXPECT_EQ(result.findings, 1u);
  EXPECT_EQ(sink_.findings[0].technique, Technique::RangeCheck);
}

TEST_F(EngineTest, SelectiveMonitorFlagsRareValueOfPeakedAttribute) {
  config_.selective_monitoring = true;
  engine_ = std::make_unique<AuditEngine>(*db_, config_, [this]() { return now_; });
  engine_->set_report_sink(&sink_);
  engine_->set_client_control(&control_);

  // 14 calls all stamp task_token = 0x7A5C.
  std::vector<db::RecordIndex> procs;
  for (int i = 0; i < 14; ++i) {
    const auto [p, c, r] = make_call(static_cast<std::uint32_t>(i % 4));
    (void)c;
    (void)r;
    api_.write_fld(ids_.process, p, ids_.p_task_token, 0x7A5C);
    procs.push_back(p);
  }
  advance();
  EXPECT_EQ(engine_->check_selective(ids_.process).findings, 0u);

  // One token corrupted: a statistical outlier in a peaked distribution.
  db::direct::write_field(*db_, ids_.process, procs[4], ids_.p_task_token, 0x7A5D);
  const auto result = engine_->check_selective(ids_.process);
  EXPECT_GE(result.findings, 1u);
  EXPECT_GE(sink_.count(Technique::SelectiveMonitor), 1u);
}

TEST_F(EngineTest, SelectiveMonitorIgnoresFlatDistributions) {
  config_.selective_monitoring = true;
  engine_ = std::make_unique<AuditEngine>(*db_, config_, [this]() { return now_; });
  engine_->set_report_sink(&sink_);

  for (int i = 0; i < 14; ++i) {
    const auto [p, c, r] = make_call();
    (void)p;
    (void)r;
    // caller_id unique per call: flat histogram, no derivable invariant.
    api_.write_fld(ids_.connection, c, ids_.c_caller_id, 1000 + i);
  }
  advance();
  EXPECT_EQ(engine_->check_selective(ids_.connection).findings, 0u);
}

TEST_F(EngineTest, FullPassCostAccumulates) {
  make_call();
  const auto result = engine_->full_pass(all_tables());
  EXPECT_GT(result.cost, 1000);  // non-trivial modelled CPU time
}

}  // namespace
}  // namespace wtc::audit
