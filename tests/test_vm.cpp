#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "db/controller_schema.hpp"
#include "db/direct.hpp"
#include "vm/builder.hpp"
#include "vm/cfg.hpp"
#include "vm/interp.hpp"
#include "vm/program.hpp"

namespace wtc::vm {
namespace {

TEST(Encoding, RoundTripsAllFields) {
  const Instr instr{Opcode::Beq, 3, 14, 7, -12345};
  const Instr back = decode(encode(instr));
  EXPECT_EQ(back.op, instr.op);
  EXPECT_EQ(back.rd, instr.rd);
  EXPECT_EQ(back.ra, instr.ra);
  EXPECT_EQ(back.rb, instr.rb);
  EXPECT_EQ(back.imm, instr.imm);
}

class EncodingRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EncodingRoundTrip, DecodeEncodeIsIdentity) {
  // Property: decode/encode round-trips every 64-bit word exactly, so a
  // bit flip in an encoded instruction is a bit flip in its decoded form.
  const std::uint64_t word = GetParam();
  EXPECT_EQ(encode(decode(word)), word);
}

INSTANTIATE_TEST_SUITE_P(RandomWords, EncodingRoundTrip, ::testing::ValuesIn([] {
                           std::vector<std::uint64_t> words;
                           common::Rng rng(2024);
                           for (int i = 0; i < 50; ++i) {
                             words.push_back(rng.next());
                           }
                           return words;
                         }()));

TEST(Opcodes, CfiClassification) {
  EXPECT_TRUE(is_cfi(Opcode::Jmp));
  EXPECT_TRUE(is_cfi(Opcode::Ret));
  EXPECT_TRUE(is_cfi(Opcode::ICall));
  EXPECT_FALSE(is_cfi(Opcode::Add));
  EXPECT_FALSE(is_cfi(Opcode::DbWriteFld));
  EXPECT_TRUE(is_branch(Opcode::Beq));
  EXPECT_FALSE(is_branch(Opcode::Jmp));
}

TEST(Opcodes, UndefinedOpcodesRejected) {
  EXPECT_TRUE(opcode_defined(static_cast<std::uint8_t>(Opcode::Halt)));
  EXPECT_FALSE(opcode_defined(19));
  EXPECT_FALSE(opcode_defined(23));
  EXPECT_FALSE(opcode_defined(200));
}

TEST(Builder, ResolvesForwardAndBackwardLabels) {
  ProgramBuilder b;
  b.jmp("end");
  b.label("middle").nop();
  b.label("end").jmp("middle");
  const Program program = std::move(b).build();
  EXPECT_EQ(decode(program.text[0]).imm, 2);  // end
  EXPECT_EQ(decode(program.text[2]).imm, 1);  // middle
}

TEST(Builder, ThrowsOnUndefinedAndDuplicateLabels) {
  {
    ProgramBuilder b;
    b.jmp("nowhere");
    EXPECT_THROW(std::move(b).build(), std::logic_error);
  }
  {
    ProgramBuilder b;
    b.label("x");
    EXPECT_THROW(b.label("x"), std::logic_error);
  }
}

/// Fixture providing a database-backed VmProcess.
class InterpTest : public ::testing::Test {
 protected:
  InterpTest()
      : db_(db::make_controller_database()),
        ids_(db::resolve_controller_ids(db_->schema())),
        api_(*db_, []() { return sim::Time{0}; }) {
    api_.init(1);
  }

  VmProcess make(Program program, VmConfig config = {}) {
    return VmProcess(std::move(program), api_, common::Rng(7), config);
  }

  /// Runs thread 0 to a terminal state (bounded).
  static void run_to_end(VmProcess& process, std::uint32_t thread = 0) {
    sim::Time now = 0;
    for (int i = 0; i < 10'000; ++i) {
      if (process.thread(thread).state() != ThreadState::Runnable &&
          process.thread(thread).state() != ThreadState::Sleeping) {
        return;
      }
      now = std::max<sim::Time>(now + 100, process.thread(thread).wake_time());
      process.run_quantum(thread, now);
    }
    FAIL() << "program did not terminate";
  }

  std::unique_ptr<db::Database> db_;
  db::ControllerIds ids_;
  db::DbApi api_;
};

TEST_F(InterpTest, ArithmeticAndMemory) {
  ProgramBuilder b;
  b.loadi(1, 21)
      .loadi(2, 2)
      .mul(3, 1, 2)  // r3 = 42
      .st(0, 5, 3)   // data[5] = 42
      .ld(4, 0, 5)   // r4 = 42
      .addi(4, 4, -2)
      .emit(99, 4)
      .halt();
  auto process = make(std::move(b).build());
  process.spawn_thread(0);
  run_to_end(process);
  EXPECT_EQ(process.thread(0).state(), ThreadState::Halted);
  ASSERT_EQ(process.emits().size(), 1u);
  EXPECT_EQ(process.emits()[0].code, 99);
  EXPECT_EQ(process.emits()[0].value, 40);
}

TEST_F(InterpTest, LoopAndBranches) {
  // Sum 1..10 via a loop.
  ProgramBuilder b;
  b.loadi(1, 0)   // sum
      .loadi(2, 1)   // i
      .loadi(3, 11)  // bound
      .label("loop")
      .bge(2, 3, "done")
      .add(1, 1, 2)
      .addi(2, 2, 1)
      .jmp("loop")
      .label("done")
      .emit(1, 1)
      .halt();
  auto process = make(std::move(b).build());
  process.spawn_thread(0);
  run_to_end(process);
  EXPECT_EQ(process.emits()[0].value, 55);
}

TEST_F(InterpTest, CallRetAndICall) {
  ProgramBuilder b;
  b.load_label(8, "double_it")
      .loadi(1, 5)
      .icall(8)     // r1 = 10
      .call("inc")  // r1 = 11
      .emit(7, 1)
      .halt();
  b.label("double_it").add(1, 1, 1).ret();
  b.label("inc").addi(1, 1, 1).ret();
  auto process = make(std::move(b).build());
  process.spawn_thread(0);
  run_to_end(process);
  EXPECT_EQ(process.emits()[0].value, 11);
}

TEST_F(InterpTest, TrapIllegalOpcode) {
  Program program;
  program.text = {encode({Opcode::Nop}), 0x00000000000000FFull};
  auto process = make(std::move(program));
  process.spawn_thread(0);
  run_to_end(process);
  EXPECT_EQ(process.thread(0).state(), ThreadState::Trapped);
  EXPECT_EQ(process.thread(0).trap(), Trap::IllegalOpcode);
}

TEST_F(InterpTest, TrapIllegalOperand) {
  Program program;
  program.text = {encode({Opcode::Mov, 3, 99, 0, 0})};
  auto process = make(std::move(program));
  process.spawn_thread(0);
  run_to_end(process);
  EXPECT_EQ(process.thread(0).trap(), Trap::IllegalOperand);
}

TEST_F(InterpTest, TrapPcOutOfBounds) {
  ProgramBuilder b;
  b.loadi(1, 0).jmp("self_modifying_target").label("self_modifying_target").halt();
  Program program = std::move(b).build();
  // Corrupt the jump to point far outside.
  Instr jump = decode(program.text[1]);
  jump.imm = 100000;
  program.text[1] = encode(jump);
  auto process = make(std::move(program));
  process.spawn_thread(0);
  run_to_end(process);
  EXPECT_EQ(process.thread(0).trap(), Trap::PcOutOfBounds);
}

TEST_F(InterpTest, TrapMemOutOfBoundsAndDivByZero) {
  {
    ProgramBuilder b;
    b.loadi(1, 1'000'000).ld(2, 1, 0).halt();
    auto process = make(std::move(b).build());
    process.spawn_thread(0);
    run_to_end(process);
    EXPECT_EQ(process.thread(0).trap(), Trap::MemOutOfBounds);
  }
  {
    ProgramBuilder b;
    b.loadi(1, 5).loadi(2, 0).div(3, 1, 2).halt();
    auto process = make(std::move(b).build());
    process.spawn_thread(0);
    run_to_end(process);
    EXPECT_EQ(process.thread(0).trap(), Trap::DivByZero);
  }
}

TEST_F(InterpTest, TrapRetUnderflow) {
  ProgramBuilder b;
  b.ret();
  auto process = make(std::move(b).build());
  process.spawn_thread(0);
  run_to_end(process);
  EXPECT_EQ(process.thread(0).trap(), Trap::RetUnderflow);
}

TEST_F(InterpTest, TrapStackOverflow) {
  ProgramBuilder b;
  b.label("recurse").call("recurse");
  auto process = make(std::move(b).build());
  process.spawn_thread(0);
  run_to_end(process);
  EXPECT_EQ(process.thread(0).trap(), Trap::StackOverflow);
}

TEST_F(InterpTest, SleepSuspendsUntilWake) {
  ProgramBuilder b;
  b.loadi(1, 500).sleepr(1).emit(1, 1).halt();
  auto process = make(std::move(b).build());
  process.spawn_thread(0);
  process.run_quantum(0, 0);
  EXPECT_EQ(process.thread(0).state(), ThreadState::Sleeping);
  EXPECT_EQ(process.thread(0).wake_time(), 500u);
  process.run_quantum(0, 100);  // too early: still sleeping
  EXPECT_EQ(process.thread(0).state(), ThreadState::Sleeping);
  process.run_quantum(0, 500);
  EXPECT_EQ(process.thread(0).state(), ThreadState::Halted);
}

TEST_F(InterpTest, QuantumBoundsInstructionCount) {
  ProgramBuilder b;
  b.label("spin").jmp("spin");
  auto process = make(std::move(b).build(), VmConfig{.quantum = 10, .instr_cost = 2});
  process.spawn_thread(0);
  const auto result = process.run_quantum(0, 0);
  EXPECT_EQ(result.instructions, 10u);
  EXPECT_EQ(result.time_cost, 20);
  EXPECT_EQ(process.thread(0).state(), ThreadState::Runnable);
}

TEST_F(InterpTest, DbOpsDriveTheRealDatabase) {
  ProgramBuilder b;
  const auto P = static_cast<std::int32_t>(ids_.process);
  b.loadi(1, P)
      .loadi(2, static_cast<std::int32_t>(db::kGroupActiveCalls))
      .db_alloc(3, 1, 2)           // r3 = record
      .loadi(4, 42)
      .db_write_fld(4, 1, 3, ids_.p_task_token)
      .db_read_fld(5, 1, 3, ids_.p_task_token)
      .emit(1, 5)
      .db_free(1, 3)
      .halt();
  auto process = make(std::move(b).build());
  process.spawn_thread(0);
  run_to_end(process);
  EXPECT_EQ(process.thread(0).state(), ThreadState::Halted);
  ASSERT_EQ(process.emits().size(), 1u);
  EXPECT_EQ(process.emits()[0].value, 42);
  // Record freed again.
  EXPECT_EQ(db::direct::read_header(*db_, ids_.process, 0).status, db::kStatusFree);
}

TEST_F(InterpTest, DbStatusRegisterReportsFailures) {
  ProgramBuilder b;
  b.loadi(1, 999)  // no such table
      .loadi(2, 0)
      .db_read_fld(3, 1, 2, 0)
      .emit(1, kDbStatusReg)
      .halt();
  auto process = make(std::move(b).build());
  process.spawn_thread(0);
  run_to_end(process);
  EXPECT_EQ(process.emits()[0].value,
            static_cast<std::int32_t>(db::Status::NoSuchTable));
}

TEST_F(InterpTest, BreakpointFiresOnceBeforeExecution) {
  ProgramBuilder b;
  b.loadi(1, 1).loadi(1, 2).loadi(1, 3).halt();
  auto process = make(std::move(b).build());
  process.spawn_thread(0);
  int hits = 0;
  process.set_breakpoint(1, [&](std::uint32_t thread) {
    ++hits;
    EXPECT_EQ(thread, 0u);
  });
  run_to_end(process);
  EXPECT_EQ(hits, 1);
  EXPECT_FALSE(process.breakpoint_armed());
}

TEST_F(InterpTest, FetchRedirectModelsAddressLineError) {
  ProgramBuilder b;
  b.loadi(1, 10)   // pc 0
      .loadi(1, 20)   // pc 1
      .emit(1, 1)     // pc 2
      .halt();        // pc 3
  auto process = make(std::move(b).build());
  process.spawn_thread(0);
  process.arm_fetch_redirect(1, 1);  // pc 1 fetches text[0] instead
  process.set_fetch_watch(1);
  run_to_end(process);
  EXPECT_EQ(process.emits()[0].value, 10);  // the second loadi never ran
  EXPECT_EQ(process.fetch_watch_hits(), 1u);
}

TEST_F(InterpTest, ArithmeticEdgeCases) {
  // INT_MIN / -1 is defined (wraps through i64 then truncates), shifts
  // mask to 5 bits, and mul wraps without UB.
  ProgramBuilder b;
  b.loadi(1, INT32_MIN)
      .loadi(2, -1)
      .div(3, 1, 2)       // r3 = INT_MIN (truncated)
      .loadi(4, 1)
      .shl(5, 4, 35)      // shift 35 & 31 = 3 -> 8
      .loadi(6, -8)
      .shr(7, 6, 1)       // logical shift of 0xFFFFFFF8
      .mul(8, 1, 1)       // INT_MIN * INT_MIN wraps
      .emit(1, 3)
      .emit(2, 5)
      .emit(3, 7)
      .halt();
  auto process = make(std::move(b).build());
  process.spawn_thread(0);
  run_to_end(process);
  ASSERT_EQ(process.thread(0).state(), ThreadState::Halted);
  EXPECT_EQ(process.emits()[0].value, INT32_MIN);
  EXPECT_EQ(process.emits()[1].value, 8);
  EXPECT_EQ(process.emits()[2].value, 0x7FFFFFFC);
}

TEST_F(InterpTest, SleepRClampsNegativeDurations) {
  ProgramBuilder b;
  b.loadi(1, -500).sleepr(1).halt();
  auto process = make(std::move(b).build());
  process.spawn_thread(0);
  process.run_quantum(0, 1000);
  // Negative sleep clamps to zero: wake time is "now".
  EXPECT_EQ(process.thread(0).state(), ThreadState::Sleeping);
  EXPECT_LE(process.thread(0).wake_time(), 1000u + 100);
  process.run_quantum(0, 1100);
  EXPECT_EQ(process.thread(0).state(), ThreadState::Halted);
}

TEST_F(InterpTest, TerminateThreadIsTerminalExceptForHalted) {
  ProgramBuilder b;
  b.label("spin").jmp("spin");
  auto process = make(std::move(b).build());
  process.spawn_thread(0);
  process.run_quantum(0, 0);
  process.terminate_thread(0);
  EXPECT_EQ(process.thread(0).state(), ThreadState::Terminated);
  EXPECT_FALSE(process.any_live(UINT64_MAX));
}

TEST(Cfg, FindsLeadersAndCfiKinds) {
  ProgramBuilder b;
  b.loadi(1, 0)                     // 0
      .beq(1, 1, "target")          // 1: branch
      .nop()                        // 2 (leader: after CFI)
      .label("target")
      .call("fn")                   // 3 (leader: branch target)
      .halt();                      // 4 (leader: after call)
  b.label("fn").load_label(2, "fn").icall(2).ret();  // 5, 6, 7
  const Program program = std::move(b).build();
  const Cfg cfg = Cfg::analyze(program);

  EXPECT_TRUE(cfg.is_leader(0));
  EXPECT_TRUE(cfg.is_leader(2));
  EXPECT_TRUE(cfg.is_leader(3));
  EXPECT_TRUE(cfg.is_leader(4));
  EXPECT_TRUE(cfg.is_leader(5));  // call target
  EXPECT_FALSE(cfg.is_leader(1));

  const CfiInfo* branch = cfg.cfi_at(1);
  ASSERT_NE(branch, nullptr);
  EXPECT_EQ(branch->kind, CfiKind::Branch);
  EXPECT_EQ(branch->static_targets, (std::vector<std::uint32_t>{3, 2}));
  EXPECT_EQ(branch->block_leader, 0u);

  const CfiInfo* call = cfg.cfi_at(3);
  ASSERT_NE(call, nullptr);
  EXPECT_EQ(call->kind, CfiKind::Call);

  const CfiInfo* icall = cfg.cfi_at(6);
  ASSERT_NE(icall, nullptr);
  EXPECT_EQ(icall->kind, CfiKind::IndirectCall);
  EXPECT_EQ(icall->icall_reg, 2);

  const CfiInfo* ret = cfg.cfi_at(7);
  ASSERT_NE(ret, nullptr);
  EXPECT_EQ(ret->kind, CfiKind::Ret);
}

TEST(Cfg, LeaderOfMapsInteriorPcs) {
  ProgramBuilder b;
  b.nop().nop().jmp("end").nop().label("end").halt();
  const Cfg cfg = Cfg::analyze(std::move(b).build());
  EXPECT_EQ(cfg.leader_of(0), 0u);
  EXPECT_EQ(cfg.leader_of(1), 0u);
  EXPECT_EQ(cfg.leader_of(2), 0u);
  EXPECT_EQ(cfg.leader_of(3), 3u);
  EXPECT_EQ(cfg.leader_of(4), 4u);
}

TEST(Disassembler, ProducesReadableText) {
  ProgramBuilder b;
  b.loadi(1, 5).jmp("x").label("x").halt();
  const Program program = std::move(b).build();
  const std::string text = disassemble(program);
  EXPECT_NE(text.find("loadi"), std::string::npos);
  EXPECT_NE(text.find("jmp"), std::string::npos);
  EXPECT_NE(text.find("halt"), std::string::npos);
  EXPECT_NE(disassemble(0xFFull).find("illegal"), std::string::npos);
}

}  // namespace
}  // namespace wtc::vm
