#include <gtest/gtest.h>

#include "audit/messages.hpp"
#include "audit/priority.hpp"
#include "audit/process.hpp"
#include "db/controller_schema.hpp"
#include "db/direct.hpp"
#include "manager/manager.hpp"
#include "sim/cpu.hpp"

namespace wtc::audit {
namespace {

class CollectingSink : public ReportSink {
 public:
  void on_finding(const Finding& finding) override { findings.push_back(finding); }
  std::vector<Finding> findings;
};

class Harness {
 public:
  Harness() : node(scheduler), db(db::make_controller_database()) {}

  sim::ProcessId spawn_audit(AuditProcessConfig config) {
    audit = std::make_shared<AuditProcess>(*db, cpu, config, &sink, nullptr);
    return node.spawn("audit", audit);
  }

  sim::Scheduler scheduler;
  sim::Node node;
  sim::Cpu cpu;
  std::unique_ptr<db::Database> db;
  CollectingSink sink;
  std::shared_ptr<AuditProcess> audit;
};

class Probe : public sim::Process {
 public:
  void on_message(const sim::Message& message) override {
    replies.push_back(message);
  }
  std::vector<sim::Message> replies;
};

TEST(AuditProcess, HeartbeatElementReplies) {
  Harness h;
  const auto audit_pid = h.spawn_audit({});
  auto probe = std::make_shared<Probe>();
  const auto probe_pid = h.node.spawn("probe", probe);

  sim::Message hb;
  hb.from = probe_pid;
  hb.type = msg::kHeartbeat;
  hb.args = {7};
  h.node.send(audit_pid, hb);
  h.scheduler.run_until(sim::kSecond);

  ASSERT_EQ(probe->replies.size(), 1u);
  EXPECT_EQ(probe->replies[0].type, msg::kHeartbeatReply);
  EXPECT_EQ(probe->replies[0].args[0], 7u);
  EXPECT_EQ(probe->replies[0].from, audit_pid);
}

TEST(AuditProcess, PeriodicAuditDetectsCorruption) {
  Harness h;
  AuditProcessConfig config;
  config.period = sim::kSecond;
  h.spawn_audit(config);

  // Corrupt a static subscriber byte; the next periodic pass must fix it.
  const auto ids = db::resolve_controller_ids(h.db->schema());
  const std::size_t at = h.db->layout().field_offset(ids.subscriber, 3, 1);
  h.db->region()[at] ^= std::byte{0x08};

  h.scheduler.run_until(3 * sim::kSecond);
  ASSERT_FALSE(h.sink.findings.empty());
  EXPECT_EQ(h.sink.findings[0].technique, Technique::StaticChecksum);
  EXPECT_EQ(db::load_i32(h.db->region(), at), db::subscriber_auth_key(3));
  EXPECT_GE(h.audit->cycles(), 2u);
  EXPECT_GT(h.audit->total_cost(), 0);
}

TEST(AuditProcess, EventTriggeredAuditChecksWrittenRecord) {
  Harness h;
  AuditProcessConfig config;
  config.period = 3600 * static_cast<sim::Duration>(sim::kSecond);  // periodic idle
  config.event_triggered = true;
  const auto audit_pid = h.spawn_audit(config);

  const auto ids = db::resolve_controller_ids(h.db->schema());
  IpcNotificationSink sink(h.node, [audit_pid]() { return audit_pid; });
  db::DbApi api(*h.db, [&h]() { return h.scheduler.now(); });
  api.set_audit_hooks(&sink);
  api.init(50);

  db::RecordIndex c = 0;
  ASSERT_EQ(api.alloc_rec(ids.connection, db::kGroupActiveCalls, c), db::Status::Ok);
  // Misbehaving client writes an out-of-range state value.
  api.write_fld(ids.connection, c, ids.c_state, 999);
  h.scheduler.run_until(sim::kSecond);

  ASSERT_FALSE(h.sink.findings.empty());
  EXPECT_EQ(h.sink.findings.back().technique, Technique::RangeCheck);
  EXPECT_EQ(db::direct::read_header(*h.db, ids.connection, c).status,
            db::kStatusFree);
}

TEST(AuditProcess, ProgressIndicatorKillsLockWedgedClient) {
  Harness h;
  AuditProcessConfig config;
  config.period = 3600 * static_cast<sim::Duration>(sim::kSecond);
  config.progress_timeout = 2 * static_cast<sim::Duration>(sim::kSecond);
  config.lock_hold_threshold = 100 * static_cast<sim::Duration>(sim::kMillisecond);
  h.spawn_audit(config);

  // A client acquires a lock and dies without releasing it.
  auto zombie = std::make_shared<Probe>();
  const auto zombie_pid = h.node.spawn("zombie", zombie);
  ASSERT_TRUE(h.db->try_lock(2, zombie_pid, h.scheduler.now()));

  h.scheduler.run_until(6 * sim::kSecond);
  EXPECT_FALSE(h.node.alive(zombie_pid));
  EXPECT_FALSE(h.db->lock_info(2).has_value());
  bool progress_finding = false;
  for (const auto& finding : h.sink.findings) {
    progress_finding |= finding.technique == Technique::ProgressIndicator;
  }
  EXPECT_TRUE(progress_finding);
}

TEST(AuditProcess, ProgressIndicatorSparesActiveEnvironment) {
  Harness h;
  AuditProcessConfig config;
  config.period = 3600 * static_cast<sim::Duration>(sim::kSecond);
  config.progress_timeout = sim::kSecond;
  const auto audit_pid = h.spawn_audit(config);

  // A client holds a lock but keeps generating API activity: no recovery.
  auto busy = std::make_shared<Probe>();
  const auto busy_pid = h.node.spawn("busy", busy);
  ASSERT_TRUE(h.db->try_lock(2, busy_pid, 0));
  // Periodic activity messages (as the instrumented API would send).
  std::function<void(sim::Time)> ping = [&](sim::Time t) {
    h.scheduler.schedule_at(t, [&, t]() {
      sim::Message m;
      m.from = busy_pid;
      m.type = msg::kApiActivity;
      m.args = {busy_pid, 0, 0, 0, 0};
      h.node.send(audit_pid, m);
      if (t < 10 * sim::kSecond) {
        ping(t + sim::kSecond / 2);
      }
    });
  };
  ping(sim::kSecond / 2);

  h.scheduler.run_until(5 * sim::kSecond);
  EXPECT_TRUE(h.node.alive(busy_pid));
  EXPECT_TRUE(h.db->lock_info(2).has_value());
}

TEST(AuditProcess, LowResourceTriggerReclaimsLeakedRecords) {
  Harness h;
  AuditProcessConfig config;
  config.period = 3600 * static_cast<sim::Duration>(sim::kSecond);  // periodic idle
  config.low_resource_trigger = true;
  config.low_water_fraction = 0.5;
  config.low_resource_period = 2 * static_cast<sim::Duration>(sim::kSecond);
  h.spawn_audit(config);

  // Leak most of the Process table: active records that reference nothing
  // and are referenced by nothing (orphaned "zombie" resources).
  const auto ids = db::resolve_controller_ids(h.db->schema());
  const auto& spec = h.db->schema().tables[ids.process];
  const auto leaked = static_cast<db::RecordIndex>(spec.num_records * 3 / 4);
  for (db::RecordIndex r = 0; r < leaked; ++r) {
    const std::size_t at = h.db->layout().record_offset(ids.process, r);
    auto header = db::load_record_header(h.db->region(), at);
    header.status = db::kStatusActive;
    header.group = db::kGroupActiveCalls;
    db::store_record_header(h.db->region(), at, header);
  }
  db::direct::relink_table(*h.db, ids.process);

  h.scheduler.run_until(10 * sim::kSecond);

  // The trigger fired and the orphan sweep reclaimed the leak.
  std::uint32_t still_active = 0;
  for (db::RecordIndex r = 0; r < spec.num_records; ++r) {
    if (db::direct::read_header(*h.db, ids.process, r).status ==
        db::kStatusActive) {
      ++still_active;
    }
  }
  EXPECT_EQ(still_active, 0u);
  bool semantic_finding = false;
  for (const auto& finding : h.sink.findings) {
    semantic_finding |= finding.technique == Technique::SemanticCheck;
  }
  EXPECT_TRUE(semantic_finding);
}

TEST(Manager, RestartsDeadAuditProcess) {
  sim::Scheduler scheduler;
  sim::Node node(scheduler);
  sim::Cpu cpu;
  auto db = db::make_controller_database();
  CollectingSink sink;

  int spawned = 0;
  sim::ProcessId current_audit = sim::kNoProcess;
  auto mgr = std::make_shared<manager::Manager>([&]() {
    ++spawned;
    auto audit = std::make_shared<AuditProcess>(*db, cpu, AuditProcessConfig{},
                                                &sink, nullptr);
    current_audit = node.spawn("audit", audit);
    return current_audit;
  });
  node.spawn("manager", mgr);

  scheduler.run_until(5 * sim::kSecond);
  EXPECT_EQ(spawned, 1);
  EXPECT_EQ(mgr->restarts(), 0u);

  // Crash the audit process; the manager must notice and respawn it.
  node.kill(current_audit);
  scheduler.run_until(15 * sim::kSecond);
  EXPECT_EQ(spawned, 2);
  EXPECT_EQ(mgr->restarts(), 1u);
  EXPECT_TRUE(node.alive(mgr->audit_pid()));
  EXPECT_GT(mgr->heartbeats_sent(), 5u);
}

TEST(Manager, RestartsHungAuditProcess) {
  // §4.1: the heartbeat also covers a HUNG audit process (alive, not
  // replying) and scheduling anomalies — not just crashes.
  sim::Scheduler scheduler;
  sim::Node node(scheduler);
  sim::Cpu cpu;
  auto db = db::make_controller_database();
  CollectingSink sink;

  class HungProcess : public sim::Process {
    // swallows every message: never acknowledges a heartbeat
  };

  int spawned = 0;
  auto mgr = std::make_shared<manager::Manager>([&]() -> sim::ProcessId {
    ++spawned;
    if (spawned == 1) {
      // First incarnation wedges immediately.
      return node.spawn("audit", std::make_shared<HungProcess>());
    }
    auto audit = std::make_shared<AuditProcess>(*db, cpu, AuditProcessConfig{},
                                                &sink, nullptr);
    return node.spawn("audit", audit);
  });
  node.spawn("manager", mgr);

  scheduler.run_until(20 * sim::kSecond);
  // The hung incarnation was detected by missed heartbeats and replaced;
  // the healthy replacement then stops the restart churn.
  EXPECT_GE(spawned, 2);
  EXPECT_GE(mgr->restarts(), 1u);
  EXPECT_TRUE(node.alive(mgr->audit_pid()));
  const auto restarts_at_20s = mgr->restarts();
  scheduler.run_until(40 * sim::kSecond);
  EXPECT_EQ(mgr->restarts(), restarts_at_20s);  // healthy audit keeps answering
}

TEST(PriorityScheduler, DeficitSelectionTracksAccessShares) {
  auto db = db::make_controller_database();
  // Give table 2 (Process) 8x the accesses of table 3 (Connection).
  db->table_stats(2).writes = 800;
  db->table_stats(3).writes = 100;

  PriorityScheduler scheduler(*db, PriorityWeights{.access_frequency = 1.0,
                                                   .error_history = 0.0,
                                                   .nature = 0.0});
  std::array<int, 5> picks{};
  for (int i = 0; i < 900; ++i) {
    ++picks[scheduler.next_prioritized()];
  }
  EXPECT_GT(picks[2], picks[3] * 4);  // roughly 8:1
  EXPECT_GT(picks[3], 0);             // but no starvation
}

TEST(PriorityScheduler, ErrorHistoryRaisesPriority) {
  auto db = db::make_controller_database();
  for (std::size_t t = 0; t < db->table_count(); ++t) {
    db->table_stats(static_cast<db::TableId>(t)).writes = 100;  // equal load
  }
  db->table_stats(4).errors_last_cycle = 20;

  PriorityScheduler scheduler(*db, PriorityWeights{.access_frequency = 0.2,
                                                   .error_history = 0.8,
                                                   .nature = 0.0});
  scheduler.begin_cycle(*db);  // snapshot error history
  std::array<int, 5> picks{};
  for (int i = 0; i < 100; ++i) {
    ++picks[scheduler.next_prioritized()];
  }
  for (std::size_t t = 0; t < picks.size(); ++t) {
    if (t != 4) {
      EXPECT_GT(picks[4], picks[t]);
    }
  }
}

TEST(PriorityScheduler, RoundRobinCyclesAllTables) {
  auto db = db::make_controller_database();
  PriorityScheduler scheduler(*db);
  std::vector<db::TableId> seen;
  for (std::size_t i = 0; i < db->table_count() * 2; ++i) {
    seen.push_back(scheduler.next_round_robin());
  }
  for (std::size_t t = 0; t < db->table_count(); ++t) {
    EXPECT_EQ(seen[t], static_cast<db::TableId>(t));
    EXPECT_EQ(seen[t + db->table_count()], static_cast<db::TableId>(t));
  }
}

TEST(PriorityScheduler, BeginCycleRotatesErrorCounters) {
  auto db = db::make_controller_database();
  PriorityScheduler scheduler(*db);
  db->table_stats(1).errors_last_cycle = 5;
  scheduler.begin_cycle(*db);
  EXPECT_EQ(db->table_stats(1).errors_last_cycle, 0u);
}

}  // namespace
}  // namespace wtc::audit
