// Chunk-parallel detection and the per-cycle CPU budget: the parallel
// engine must produce bit-identical findings, repairs, booked CPU, and
// obs output at any audit thread count, and the budgeted engine must
// book only what it scanned, carry the rest, and never starve a table.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "audit/engine.hpp"
#include "common/rng.hpp"
#include "db/api.hpp"
#include "db/controller_schema.hpp"
#include "db/direct.hpp"
#include "obs/metrics.hpp"

namespace wtc::audit {
namespace {

class CollectingSink : public ReportSink {
 public:
  void on_finding(const Finding& finding) override { findings.push_back(finding); }
  std::vector<Finding> findings;
};

class RecordingControl : public ClientControl {
 public:
  void terminate_client_thread(sim::ProcessId, std::uint32_t) override {}
  void kill_client_process(sim::ProcessId) override {}
};

class NullSink : public db::NotificationSink {
 public:
  void on_api_event(const db::ApiEvent&) override {}
};

void expect_same_findings(const std::vector<Finding>& a,
                          const std::vector<Finding>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].technique, b[i].technique) << "finding " << i;
    EXPECT_EQ(a[i].recovery, b[i].recovery) << "finding " << i;
    EXPECT_EQ(a[i].table, b[i].table) << "finding " << i;
    EXPECT_EQ(a[i].record, b[i].record) << "finding " << i;
    EXPECT_EQ(a[i].field, b[i].field) << "finding " << i;
    EXPECT_EQ(a[i].offset, b[i].offset) << "finding " << i;
    EXPECT_EQ(a[i].length, b[i].length) << "finding " << i;
    EXPECT_EQ(a[i].time, b[i].time) << "finding " << i;
  }
}

/// One deterministic environment: controller database + API + engine,
/// rebuilt identically for every configuration under comparison.
struct Env {
  explicit Env(const EngineConfig& config)
      : db(db::make_controller_database()),
        ids(db::resolve_controller_ids(db->schema())),
        api(*db, [this]() { return now; }) {
    engine = std::make_unique<AuditEngine>(*db, config,
                                           [this]() { return now; });
    engine->set_report_sink(&sink);
    engine->set_client_control(&control);
    api.init(77);
    api.set_audit_hooks(&null_sink);
  }

  void make_call(common::Rng& rng) {
    api.set_thread_id(static_cast<std::uint32_t>(rng.uniform(4)));
    db::RecordIndex p = 0, c = 0, r = 0;
    if (api.alloc_rec(ids.process, db::kGroupActiveCalls, p) != db::Status::Ok ||
        api.alloc_rec(ids.connection, db::kGroupActiveCalls, c) != db::Status::Ok ||
        api.alloc_rec(ids.resource, db::kGroupActiveCalls, r) != db::Status::Ok) {
      return;
    }
    api.write_fld(ids.process, p, ids.p_process_id, db::key_of(p));
    api.write_fld(ids.process, p, ids.p_connection_id, db::key_of(c));
    api.write_fld(ids.process, p, ids.p_status, 1);
    api.write_fld(ids.connection, c, ids.c_connection_id, db::key_of(c));
    api.write_fld(ids.connection, c, ids.c_channel_id, db::key_of(r));
    api.write_fld(ids.connection, c, ids.c_state,
                  static_cast<std::int32_t>(rng.uniform(5)));
    api.write_fld(ids.resource, r, ids.r_channel_id, db::key_of(r));
    api.write_fld(ids.resource, r, ids.r_process_id, db::key_of(p));
    api.write_fld(ids.resource, r, ids.r_status, 1);
    procs.push_back(p);
    conns.push_back(c);
  }

  /// Through-store corruption (stamps dirty generations, like a faulty
  /// client): out-of-range state values and dangling FKs.
  void corrupt(common::Rng& rng, bool dangling_fk) {
    if (!conns.empty()) {
      const db::RecordIndex victim =
          conns[rng.uniform(conns.size())];
      db::direct::write_field(*db, ids.connection, victim, ids.c_state, 99);
    }
    if (dangling_fk && !procs.empty()) {
      const db::RecordIndex victim =
          procs[rng.uniform(procs.size())];
      db::direct::write_field(*db, ids.process, victim, ids.p_connection_id,
                              0x7FFF);
    }
  }

  [[nodiscard]] std::vector<db::TableId> all_tables() const {
    std::vector<db::TableId> order;
    for (std::size_t t = 0; t < db->table_count(); ++t) {
      order.push_back(static_cast<db::TableId>(t));
    }
    return order;
  }

  std::unique_ptr<db::Database> db;
  db::ControllerIds ids;
  CollectingSink sink;
  RecordingControl control;
  NullSink null_sink;
  db::DbApi api;
  std::unique_ptr<AuditEngine> engine;
  sim::Time now = 0;
  std::vector<db::RecordIndex> procs;
  std::vector<db::RecordIndex> conns;
};

/// Outcome of one randomized corruption campaign under a fixed config.
struct Outcome {
  std::vector<Finding> findings;
  std::vector<sim::Duration> cycle_costs;
  sim::Duration total_cost = 0;
  sim::Duration total_makespan = 0;
  std::vector<std::byte> region;
  obs::MetricsSnapshot metrics;
};

/// Six incremental cycles (sweeps every third) over a growing call
/// population with through-store corruption every cycle and one raw
/// static-area flip mid-campaign. Everything is derived from `seed`, so
/// two runs with different audit_threads see byte-identical inputs.
Outcome run_campaign(const EngineConfig& config, std::uint64_t seed) {
  Env env(config);
  common::Rng rng(seed);
  obs::Recorder recorder;
  Outcome out;
  {
    obs::ScopedRecorder scope(recorder);
    for (int cycle = 0; cycle < 6; ++cycle) {
      for (int i = 0; i < 3; ++i) {
        env.make_call(rng);
      }
      env.corrupt(rng, cycle % 2 == 0);
      if (cycle == 2) {
        env.db->region()[4] ^= std::byte{0x20};  // raw catalog flip
      }
      env.now += 10'000;  // step past the write-grace window
      const CheckResult result = env.engine->incremental_pass(env.all_tables());
      out.cycle_costs.push_back(result.cost);
      out.total_cost += result.cost;
      out.total_makespan += env.engine->last_cycle_makespan();
    }
  }
  out.findings = env.sink.findings;
  out.region.assign(env.db->region().begin(), env.db->region().end());
  out.metrics = recorder.snapshot();
  return out;
}

EngineConfig base_config() {
  EngineConfig config;
  config.recent_write_grace = 1000;
  config.incremental = true;
  config.full_sweep_interval = 3;
  config.selective_monitoring = true;
  return config;
}

TEST(ParallelAudit, FindingsRepairsAndCostIdenticalAcrossThreadCounts) {
  const Outcome sequential = run_campaign(base_config(), 2001);
  ASSERT_FALSE(sequential.findings.empty());
  for (const std::size_t threads : {2u, 4u, 8u}) {
    EngineConfig config = base_config();
    config.audit_threads = threads;
    const Outcome parallel = run_campaign(config, 2001);
    expect_same_findings(sequential.findings, parallel.findings);
    EXPECT_EQ(sequential.cycle_costs, parallel.cycle_costs) << threads;
    EXPECT_EQ(sequential.region, parallel.region) << threads;
    // obs output must not depend on the worker count either — except the
    // cycle-latency histogram, which records the modelled makespan and
    // therefore shrinks with audit_threads by design.
    obs::MetricsSnapshot masked_seq = sequential.metrics;
    obs::MetricsSnapshot masked_par = parallel.metrics;
    masked_seq.histograms[static_cast<std::size_t>(
        obs::Histogram::audit_cycle_latency_us)] = {};
    masked_par.histograms[static_cast<std::size_t>(
        obs::Histogram::audit_cycle_latency_us)] = {};
    EXPECT_EQ(masked_seq, masked_par) << threads;
    EXPECT_GT(sequential.metrics.counter(obs::Counter::audit_parallel_tasks), 0u);
    // The modelled critical path shrinks (or holds, for serial scans);
    // the booked CPU does not move at all.
    EXPECT_LE(parallel.total_makespan, sequential.total_makespan) << threads;
    EXPECT_EQ(sequential.total_cost, parallel.total_cost) << threads;
  }
}

TEST(ParallelAudit, SequentialMakespanEqualsBookedCost) {
  const Outcome sequential = run_campaign(base_config(), 7);
  EXPECT_EQ(sequential.total_makespan, sequential.total_cost);
}

TEST(ParallelAudit, MakespanActuallyShrinksOnParallelizableWork) {
  // An exhaustive pass over the whole (mostly static) database is
  // dominated by chunk/record detection — exactly the parallel phase.
  EngineConfig config = base_config();
  Env seq(config);
  seq.now = 10'000;
  const CheckResult seq_result = seq.engine->full_pass(seq.all_tables());

  config.audit_threads = 4;
  Env par(config);
  par.now = 10'000;
  const CheckResult par_result = par.engine->full_pass(par.all_tables());

  EXPECT_EQ(seq_result.cost, par_result.cost);
  EXPECT_LT(par.engine->last_cycle_makespan(),
            seq.engine->last_cycle_makespan());
}

TEST(BudgetedAudit, TruncatedCyclesBookOnlyScannedWorkAndDrainToSameResult) {
  // Arm A: unbudgeted reference — one incremental pass detects everything.
  EngineConfig config = base_config();
  config.full_sweep_interval = 0;  // no sweeps: pure incremental drain
  Env ref(config);
  common::Rng ref_rng(42);
  for (int i = 0; i < 8; ++i) {
    ref.make_call(ref_rng);
  }
  ref.corrupt(ref_rng, true);
  ref.corrupt(ref_rng, false);
  ref.now += 10'000;
  const CheckResult ref_result = ref.engine->incremental_pass(ref.all_tables());
  ASSERT_FALSE(ref.sink.findings.empty());

  // Arm B: identical inputs, budget a fraction of the reference cost.
  EngineConfig budgeted = config;
  budgeted.cycle_budget = ref_result.cost / 5 + 1;
  Env arm(budgeted);
  common::Rng arm_rng(42);
  for (int i = 0; i < 8; ++i) {
    arm.make_call(arm_rng);
  }
  arm.corrupt(arm_rng, true);
  arm.corrupt(arm_rng, false);
  arm.now += 10'000;

  sim::Duration drained_cost = 0;
  int cycles = 0;
  do {
    const CheckResult result = arm.engine->incremental_pass(arm.all_tables());
    drained_cost += result.cost;
    ++cycles;
    // A truncated installment books at most the budget plus one atomic
    // piece (a single item or an orphan-table sweep).
    EXPECT_LE(result.cost, 2 * budgeted.cycle_budget) << "cycle " << cycles;
    ASSERT_LT(cycles, 200);
  } while (arm.engine->carry_depth() > 0);

  EXPECT_GT(arm.engine->budget_exhausted_cycles(), 0u);
  EXPECT_GT(arm.engine->deferred_units_total(), 0u);
  EXPECT_GT(cycles, 1);
  // The budget changes *when* work runs, not *what* is detected or
  // repaired. Total booked CPU is bounded below by the reference (the
  // later drain cycles additionally re-verify records the first cycle's
  // own repairs dirtied — work the reference would do in its next cycle).
  expect_same_findings(ref.sink.findings, arm.sink.findings);
  EXPECT_GE(drained_cost, ref_result.cost);
  EXPECT_LE(drained_cost, 2 * ref_result.cost);
  EXPECT_EQ(std::vector<std::byte>(ref.db->region().begin(),
                                   ref.db->region().end()),
            std::vector<std::byte>(arm.db->region().begin(),
                                   arm.db->region().end()));
}

TEST(BudgetedAudit, NoTableStarvesUnderSustainedOverload) {
  EngineConfig config = base_config();
  config.full_sweep_interval = 0;
  Env env(config);
  common::Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    env.make_call(rng);
  }
  env.now += 10'000;
  // Size the budget from one real cycle, then rebuild the engine budgeted
  // (watermarks reset, so the backlog is re-detected under budget).
  const CheckResult probe = env.engine->incremental_pass(env.all_tables());
  EngineConfig budgeted = config;
  budgeted.cycle_budget = probe.cost / 4 + 1;
  env.engine = std::make_unique<AuditEngine>(*env.db, budgeted,
                                             [&env]() { return env.now; });
  env.engine->set_report_sink(&env.sink);
  env.engine->set_client_control(&env.control);
  env.sink.findings.clear();

  // One corruption in the resource table, then sustained high-churn load
  // on the process/connection tables every cycle. The pressure ranking
  // would keep resource last forever; the carry queue must still get its
  // ranges unit to the front within a bounded number of cycles.
  db::direct::write_field(*env.db, env.ids.resource, 0, env.ids.r_status, 99);
  env.now += 10'000;
  int detected_at = -1;
  for (int cycle = 0; cycle < 40 && detected_at < 0; ++cycle) {
    for (const db::RecordIndex p : env.procs) {
      env.api.write_fld(env.ids.process, p, env.ids.p_handoff_count,
                        static_cast<std::int32_t>(cycle));
    }
    env.now += 10'000;
    (void)env.engine->incremental_pass(env.all_tables());
    for (const Finding& finding : env.sink.findings) {
      if (finding.table == env.ids.resource) {
        detected_at = cycle;
        break;
      }
    }
  }
  EXPECT_GE(detected_at, 0) << "resource-table corruption never audited";
  EXPECT_GT(env.engine->budget_exhausted_cycles(), 0u);
}

}  // namespace
}  // namespace wtc::audit
