#include <gtest/gtest.h>

#include <bit>

#include "callproc/vm_program.hpp"
#include "db/controller_schema.hpp"
#include "inject/client_injector.hpp"
#include "inject/db_injector.hpp"
#include "inject/oracle.hpp"
#include "inject/outcome.hpp"
#include "sim/scheduler.hpp"

namespace wtc::inject {
namespace {

class OracleTest : public ::testing::Test {
 protected:
  OracleTest()
      : db_(db::make_controller_database()),
        oracle_(*db_, [this]() { return now_; }) {
    ids_ = db::resolve_controller_ids(db_->schema());
  }

  std::unique_ptr<db::Database> db_;
  db::ControllerIds ids_;
  CorruptionOracle oracle_;
  sim::Time now_ = 0;
};

TEST_F(OracleTest, ClientReadBeforeDetectionEscapes) {
  const std::size_t offset = db_->layout().field_offset(ids_.connection, 4, 2);
  oracle_.record_injection(offset, 3);
  now_ = 100;
  oracle_.on_client_read(9, offset, 4);

  const auto summary = oracle_.summary();
  EXPECT_EQ(summary.escaped, 1u);
  EXPECT_EQ(summary.caught, 0u);

  // A later audit finding does not flip an escaped error to caught.
  now_ = 200;
  audit::Finding finding;
  finding.offset = offset;
  finding.length = 4;
  oracle_.on_finding(finding);
  EXPECT_EQ(oracle_.summary().escaped, 1u);
  EXPECT_EQ(oracle_.summary().caught, 0u);
}

TEST_F(OracleTest, AuditFindingBeforeReadCatchesWithLatency) {
  const std::size_t offset = db_->layout().field_offset(ids_.connection, 4, 2);
  now_ = 1'000'000;
  oracle_.record_injection(offset, 3);
  now_ = 4'000'000;  // 3 seconds later
  audit::Finding finding;
  finding.technique = audit::Technique::RangeCheck;
  finding.offset = db_->layout().record_offset(ids_.connection, 4);
  finding.length = db_->layout().table(ids_.connection).record_size;
  oracle_.on_finding(finding);

  now_ = 5'000'000;
  oracle_.on_client_read(9, offset, 4);  // too late: already caught

  const auto summary = oracle_.summary();
  EXPECT_EQ(summary.caught, 1u);
  EXPECT_EQ(summary.escaped, 0u);
  EXPECT_NEAR(summary.detection_latency_s.mean(), 3.0, 0.01);
  ASSERT_EQ(oracle_.records().size(), 1u);
  EXPECT_EQ(oracle_.records()[0].caught_by, audit::Technique::RangeCheck);
}

TEST_F(OracleTest, LegitimateOverwriteIsNoEffect) {
  const std::size_t offset = db_->layout().field_offset(ids_.connection, 4, 2);
  oracle_.record_injection(offset, 3);
  oracle_.on_legitimate_write(offset - 8, 16);  // covers the byte
  const auto summary = oracle_.summary();
  EXPECT_EQ(summary.overwritten, 1u);
  EXPECT_EQ(summary.no_effect(), 1u);
}

TEST_F(OracleTest, UntouchedInjectionStaysLatent) {
  oracle_.record_injection(db_->layout().data_start() + 3, 1);
  const auto summary = oracle_.summary();
  EXPECT_EQ(summary.latent, 1u);
  EXPECT_EQ(summary.no_effect(), 1u);
}

TEST_F(OracleTest, NonOverlappingEventsDoNotDecide) {
  const std::size_t offset = db_->layout().field_offset(ids_.connection, 4, 2);
  oracle_.record_injection(offset, 3);
  oracle_.on_client_read(9, offset + 8, 4);
  oracle_.on_legitimate_write(offset - 8, 4);
  EXPECT_EQ(oracle_.summary().latent, 1u);
}

TEST_F(OracleTest, ClassifiesTargetKinds) {
  // Catalog byte.
  oracle_.record_injection(4, 0);
  // Static table byte.
  oracle_.record_injection(db_->layout().record_offset(ids_.subscriber, 0) +
                               db::kRecordHeaderSize,
                           0);
  // Dynamic record header.
  oracle_.record_injection(db_->layout().record_offset(ids_.process, 0), 0);
  // Ranged field (Connection.state is field index 4).
  oracle_.record_injection(db_->layout().field_offset(ids_.connection, 0, ids_.c_state),
                           0);
  // Key field.
  oracle_.record_injection(
      db_->layout().field_offset(ids_.connection, 0, ids_.c_connection_id), 0);
  // Unruled field.
  oracle_.record_injection(
      db_->layout().field_offset(ids_.connection, 0, ids_.c_caller_id), 0);

  const auto& records = oracle_.records();
  EXPECT_EQ(records[0].kind, TargetKind::Catalog);
  EXPECT_EQ(records[1].kind, TargetKind::StaticTable);
  EXPECT_EQ(records[2].kind, TargetKind::RecordHeader);
  EXPECT_EQ(records[3].kind, TargetKind::RangedField);
  EXPECT_EQ(records[4].kind, TargetKind::KeyField);
  EXPECT_EQ(records[5].kind, TargetKind::UnruledField);
}

TEST(DbInjector, FlipsBitsAtConfiguredRate) {
  sim::Scheduler scheduler;
  sim::Node node(scheduler);
  auto db = db::make_controller_database();
  CorruptionOracle oracle(*db, [&scheduler]() { return scheduler.now(); });

  DbInjectorConfig config;
  config.inter_arrival = 2 * static_cast<sim::Duration>(sim::kSecond);
  config.arrival = ArrivalModel::Fixed;
  auto injector =
      std::make_shared<DbErrorInjector>(*db, oracle, common::Rng(1), config);
  node.spawn("injector", injector);
  scheduler.run_until(21 * sim::kSecond);

  // First flip lands at a random phase within [0, 2s); then one every 2s:
  // 10 or 11 flips by t=21s.
  EXPECT_GE(injector->injected(), 10u);
  EXPECT_LE(injector->injected(), 11u);
  EXPECT_EQ(oracle.records().size(), injector->injected());
  // Every injection actually diverged the region from pristine.
  std::size_t diverged = 0;
  for (std::size_t i = 0; i < db->region().size(); ++i) {
    if (db->region()[i] != db->pristine()[i]) {
      ++diverged;
    }
  }
  EXPECT_GE(diverged, 8u);  // collisions possible but rare
}

TEST(DbInjector, MaxInjectionsStopsTheProcess) {
  sim::Scheduler scheduler;
  sim::Node node(scheduler);
  auto db = db::make_controller_database();
  CorruptionOracle oracle(*db, [&scheduler]() { return scheduler.now(); });
  DbInjectorConfig config;
  config.inter_arrival = sim::kSecond / 10;
  config.max_injections = 5;
  auto injector =
      std::make_shared<DbErrorInjector>(*db, oracle, common::Rng(2), config);
  node.spawn("injector", injector);
  scheduler.run_until(10 * sim::kSecond);
  EXPECT_EQ(injector->injected(), 5u);
}

TEST(DbInjector, ProportionalDistributionFollowsAccessCounts) {
  sim::Scheduler scheduler;
  sim::Node node(scheduler);
  db::Database db(db::make_bench_schema({.scale = 4}));
  CorruptionOracle oracle(db, [&scheduler]() { return scheduler.now(); });
  // Table 0 heavily accessed, others idle.
  db.table_stats(0).writes = 100'000;

  DbInjectorConfig config;
  config.inter_arrival = sim::kSecond / 100;
  config.distribution = ErrorDistribution::ProportionalToAccess;
  auto injector =
      std::make_shared<DbErrorInjector>(db, oracle, common::Rng(3), config);
  node.spawn("injector", injector);
  scheduler.run_until(5 * sim::kSecond);

  std::size_t in_table0 = 0;
  for (const auto& record : oracle.records()) {
    const auto loc = db.layout().locate(record.offset);
    if (loc && loc->table == 0) {
      ++in_table0;
    }
  }
  EXPECT_GT(in_table0, oracle.records().size() * 9 / 10);
}

TEST(DbInjector, BurstyModelClustersErrorsInSpaceAndTime) {
  sim::Scheduler scheduler;
  sim::Node node(scheduler);
  auto db = db::make_controller_database();
  CorruptionOracle oracle(*db, [&scheduler]() { return scheduler.now(); });

  DbInjectorConfig config;
  config.inter_arrival = 2 * static_cast<sim::Duration>(sim::kSecond);
  config.arrival = ArrivalModel::Bursty;
  config.burst_size = 5;
  config.burst_radius = 32;
  auto injector =
      std::make_shared<DbErrorInjector>(*db, oracle, common::Rng(11), config);
  node.spawn("injector", injector);
  scheduler.run_until(400 * sim::kSecond);

  const auto& records = oracle.records();
  ASSERT_GT(records.size(), 30u);

  // Long-run rate roughly matches one error per inter_arrival.
  const double rate = static_cast<double>(records.size()) / 400.0;
  EXPECT_GT(rate, 0.25);
  EXPECT_LT(rate, 1.0);

  // Spatial clustering: consecutive same-burst errors land close together
  // far more often than uniform flips would (region is ~12 KB wide).
  std::size_t close_pairs = 0;
  for (std::size_t i = 1; i < records.size(); ++i) {
    const auto a = records[i - 1].offset;
    const auto b = records[i].offset;
    if ((a > b ? a - b : b - a) <= 2 * config.burst_radius) {
      ++close_pairs;
    }
  }
  EXPECT_GT(close_pairs, records.size() / 3);
}

TEST(Outcome, ClassificationPrecedence) {
  RunEvents events;
  events.activated = false;
  EXPECT_EQ(classify(events), Outcome::NotActivated);

  events.activated = true;
  events.all_threads_succeeded = true;
  EXPECT_EQ(classify(events), Outcome::NotManifested);

  events.all_threads_succeeded = false;
  EXPECT_EQ(classify(events), Outcome::ClientHang);

  // Earliest event wins.
  events.crash = 100;
  EXPECT_EQ(classify(events), Outcome::SystemDetection);
  events.first_pecos = 50;
  EXPECT_EQ(classify(events), Outcome::PecosDetection);
  events.first_audit = 25;
  EXPECT_EQ(classify(events), Outcome::AuditDetection);
  events.first_fsv = 10;
  EXPECT_EQ(classify(events), Outcome::FailSilenceViolation);

  // Tie at the same instant: PECOS ("prior to any other technique").
  RunEvents tie;
  tie.activated = true;
  tie.first_pecos = 100;
  tie.crash = 100;
  EXPECT_EQ(classify(tie), Outcome::PecosDetection);
}

class ClientInjectorTest : public ::testing::Test {
 protected:
  ClientInjectorTest()
      : db_(db::make_controller_database()),
        api_(*db_, []() { return sim::Time{0}; }) {
    api_.init(1);
    callproc::VmProgramParams params;
    params.ids = db::resolve_controller_ids(db_->schema());
    params.num_subscribers = 64;
    params.calls_per_thread = 1;
    program_ = callproc::build_call_program(params);
  }

  std::unique_ptr<db::Database> db_;
  db::DbApi api_;
  vm::Program program_;
  sim::Scheduler scheduler_;
};

TEST_F(ClientInjectorTest, DirectedTargetsAreAlwaysCfis) {
  vm::VmProcess process(program_, api_, common::Rng(1), {});
  const vm::Cfg cfg = vm::Cfg::analyze(program_);
  for (int i = 0; i < 50; ++i) {
    ClientInjectorConfig config;
    config.target = InjectTarget::DirectedCFI;
    ClientErrorInjector injector(process, scheduler_, common::Rng(100u + static_cast<std::uint64_t>(i)), config);
    injector.arm();
    EXPECT_NE(cfg.cfi_at(injector.target_pc()), nullptr)
        << "pc " << injector.target_pc();
  }
}

TEST_F(ClientInjectorTest, DataModelsFlipTheRightBits) {
  for (int i = 0; i < 30; ++i) {
    vm::VmProcess process(program_, api_, common::Rng(1), {});
    ClientInjectorConfig config;
    config.model = i % 2 == 0 ? ErrorModel::DATAIF : ErrorModel::DATAOF;
    ClientErrorInjector injector(process, scheduler_, common::Rng(200u + static_cast<std::uint64_t>(i)), config);
    injector.arm();
    const std::uint32_t pc = injector.target_pc();
    const std::uint64_t before = process.live_text()[pc];

    // Drive the thread to the breakpoint by forcing its pc there.
    process.spawn_thread(pc == 0 ? 0 : pc);
    process.run_quantum(0, 0);
    ASSERT_TRUE(injector.planted());
    const std::uint64_t flipped = before ^ process.live_text()[pc];
    if (flipped == 0) {
      continue;  // already restored within the quantum (possible)
    }
    if (config.model == ErrorModel::DATAIF) {
      EXPECT_EQ(flipped & ~0xFFull, 0u) << "DATAIF must stay in the opcode byte";
    } else {
      EXPECT_EQ(flipped & 0xFFull, 0u) << "DATAOF must not touch the opcode byte";
    }
    EXPECT_EQ(std::popcount(flipped), 1);
  }
}

TEST_F(ClientInjectorTest, RestoreBringsPristineTextBack) {
  vm::VmProcess process(program_, api_, common::Rng(1), {});
  ClientInjectorConfig config;
  config.model = ErrorModel::DATAInF;
  config.error_window = 100;
  ClientErrorInjector injector(process, scheduler_, common::Rng(5), config);
  injector.arm();

  process.spawn_thread(injector.target_pc());
  process.run_quantum(0, 0);
  ASSERT_TRUE(injector.planted());
  EXPECT_TRUE(injector.activated());

  scheduler_.run_until(1'000);
  EXPECT_EQ(process.live_text()[injector.target_pc()],
            process.pristine().text[injector.target_pc()]);
}

TEST_F(ClientInjectorTest, MultipleThreadsCanActivateOneInjection) {
  // §6.1.2: "if an error is injected into even a single instruction, it is
  // possible that another thread may execute the same erroneous
  // instruction" — threads share the text segment and the error window
  // outlasts the triggering thread's first execution.
  ClientInjectorConfig config;
  config.model = ErrorModel::DATAOF;
  config.error_window = 50 * static_cast<sim::Duration>(sim::kMillisecond);
  vm::VmProcess fresh(program_, api_, common::Rng(1), {});
  for (int t = 0; t < 8; ++t) {
    fresh.spawn_thread(program_.entry);
  }
  ClientErrorInjector hot(fresh, scheduler_, common::Rng(3), config);
  hot.arm();
  // Run all threads round-robin within the window; re-run until the
  // breakpoint pc gets planted, then give other threads quanta.
  sim::Time now = 0;
  for (int round = 0; round < 50; ++round) {
    for (std::uint32_t t = 0; t < fresh.thread_count(); ++t) {
      if (fresh.thread(t).state() == vm::ThreadState::Runnable ||
          (fresh.thread(t).state() == vm::ThreadState::Sleeping &&
           fresh.thread(t).wake_time() <= now)) {
        fresh.run_quantum(t, now);
      }
    }
    now += 1000;
    scheduler_.run_until(now);
  }
  if (hot.activated()) {
    // When the planted instruction sits on a path all threads take, the
    // window usually sees several activations.
    EXPECT_GE(hot.activations(), 1u);
  }
}

TEST_F(ClientInjectorTest, RestoredTextRunsCleanForLaterThreads) {
  vm::VmProcess process(program_, api_, common::Rng(1), {});
  ClientInjectorConfig config;
  config.model = ErrorModel::DATAInF;
  config.error_window = 10;  // tiny window: restores almost immediately
  ClientErrorInjector injector(process, scheduler_, common::Rng(5), config);
  injector.arm();
  const std::uint32_t pc = injector.target_pc();

  process.spawn_thread(pc == 0 ? 0 : pc);
  process.run_quantum(0, 0);
  scheduler_.run_until(1'000);  // restore fires

  // The text is pristine again: a thread spawned now executes the original
  // instruction stream.
  EXPECT_TRUE(std::equal(process.live_text().begin(), process.live_text().end(),
                         process.pristine().text.begin()));
}

TEST_F(ClientInjectorTest, UnreachedBreakpointNeverActivates) {
  vm::VmProcess process(program_, api_, common::Rng(1), {});
  ClientInjectorConfig config;
  ClientErrorInjector injector(process, scheduler_, common::Rng(6), config);
  injector.arm();
  EXPECT_FALSE(injector.planted());
  EXPECT_FALSE(injector.activated());
}

}  // namespace
}  // namespace wtc::inject
