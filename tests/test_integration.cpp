// End-to-end experiments at reduced scale: these validate that the whole
// environment — database + audit + clients + injection — reproduces the
// paper's qualitative results before the full benches run at paper scale.
#include <gtest/gtest.h>

#include "experiments/audit_runner.hpp"
#include "experiments/coverage.hpp"
#include "experiments/pecos_runner.hpp"
#include "experiments/prioritized_runner.hpp"

namespace wtc::experiments {
namespace {

AuditRunParams short_audit_params(bool audits) {
  AuditRunParams params;
  params.duration = 300 * static_cast<sim::Duration>(sim::kSecond);
  params.audits_enabled = audits;
  params.client.threads = 8;
  params.client.call_duration_min = 5 * static_cast<sim::Duration>(sim::kSecond);
  params.client.call_duration_max = 8 * static_cast<sim::Duration>(sim::kSecond);
  params.client.inter_arrival_mean = 2 * static_cast<sim::Duration>(sim::kSecond);
  params.client.phase_work = 10 * static_cast<sim::Duration>(sim::kMillisecond);
  params.injector.inter_arrival = 4 * static_cast<sim::Duration>(sim::kSecond);
  params.audit.period = 5 * static_cast<sim::Duration>(sim::kSecond);
  params.seed = 42;
  return params;
}

TEST(AuditExperiment, AuditsCatchMostErrorsAndCutEscapes) {
  const auto without = run_audit_experiment(short_audit_params(false));
  const auto with = run_audit_experiment(short_audit_params(true));

  ASSERT_GT(without.oracle.injected, 50u);
  ASSERT_GT(with.oracle.injected, 50u);

  // Without audits nothing is ever caught.
  EXPECT_EQ(without.oracle.caught, 0u);
  EXPECT_EQ(without.audit_findings, 0u);

  // With audits the majority of errors are caught...
  EXPECT_GT(common::percent(with.oracle.caught, with.oracle.injected), 50.0);
  // ...and the escape rate drops by a large factor (63% -> 13% in the paper).
  const double escaped_without =
      common::percent(without.oracle.escaped, without.oracle.injected);
  const double escaped_with =
      common::percent(with.oracle.escaped, with.oracle.injected);
  EXPECT_LT(escaped_with, escaped_without / 2.0);
  EXPECT_GE(with.audit_cycles, 10u);
}

TEST(AuditExperiment, AuditsIncreaseSetupTime) {
  const auto without = run_audit_experiment(short_audit_params(false));
  const auto with = run_audit_experiment(short_audit_params(true));
  // Audit CPU contention + instrumented API make call setup slower
  // (Table 3: 160ms -> 270ms).
  EXPECT_GT(with.avg_setup_ms, without.avg_setup_ms * 1.05);
}

TEST(AuditExperiment, BreakdownCoversAllInjections) {
  const auto result = run_audit_experiment(short_audit_params(true));
  const auto breakdown = classify_injections(result.injections);
  EXPECT_EQ(breakdown.total(), result.oracle.injected);
  // Static and structural detections both occur and dominate escapes in
  // their categories (the paper reports 100% coverage there).
  EXPECT_GT(breakdown.static_detected + breakdown.structural_detected, 0u);
}

TEST(AuditExperiment, SeriesAggregation) {
  auto params = short_audit_params(true);
  params.duration = 100 * static_cast<sim::Duration>(sim::kSecond);
  const auto aggregate = run_audit_series(params, 3);
  EXPECT_GT(aggregate.injected, 40u);
  EXPECT_EQ(aggregate.injected,
            aggregate.escaped + aggregate.caught + aggregate.no_effect);
  EXPECT_EQ(aggregate.setup_ms.count(), 3u);
}

TEST(PrioritizedExperiment, PrioritizedAuditKeepsEscapesInCheck) {
  PrioritizedRunParams params;
  params.duration = 400 * static_cast<sim::Duration>(sim::kSecond);
  params.error_mtbf = 2 * static_cast<sim::Duration>(sim::kSecond);
  params.schema.scale = 8;  // small database: the test checks sanity, not effect size
  params.seed = 7;

  params.prioritized = false;
  const auto unprioritized = run_prioritized_series(params, 3);
  params.prioritized = true;
  const auto prioritized = run_prioritized_series(params, 3);

  ASSERT_GT(unprioritized.injected, 100u);
  ASSERT_GT(prioritized.injected, 100u);
  EXPECT_GT(prioritized.caught, 0u);
  EXPECT_GT(unprioritized.caught, 0u);
  // Both schedules must detect the bulk of errors; prioritization must at
  // least not make escapes materially worse (the full effect-size study is
  // bench/fig5 & fig6 at paper scale).
  EXPECT_LT(prioritized.escaped_percent, unprioritized.escaped_percent + 3.0);
  EXPECT_GT(common::percent(prioritized.caught, prioritized.injected), 25.0);
}

PecosRunParams quick_pecos(bool pecos, bool audit, inject::InjectTarget target,
                           std::uint64_t seed) {
  PecosRunParams params;
  params.cfc = pecos ? CfcMode::Pecos : CfcMode::None;
  params.audit = audit;
  params.injector.target = target;
  params.threads = 8;
  params.calls_per_thread = 1;
  params.seed = seed;
  return params;
}

TEST(PecosExperiment, DirectedCampaignShapesMatchTable8) {
  CampaignCounts with_pecos;
  CampaignCounts without_pecos;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    without_pecos.add(
        run_pecos_single(quick_pecos(false, false, inject::InjectTarget::DirectedCFI,
                                     seed))
            .outcome);
    with_pecos.add(
        run_pecos_single(quick_pecos(true, false, inject::InjectTarget::DirectedCFI,
                                     seed))
            .outcome);
  }
  // PECOS detects a large share of directed CFI errors...
  EXPECT_GT(with_pecos.count(inject::Outcome::PecosDetection), 5u);
  EXPECT_EQ(without_pecos.count(inject::Outcome::PecosDetection), 0u);
  // ...and reduces crashes (system detection).
  EXPECT_LT(with_pecos.count(inject::Outcome::SystemDetection),
            without_pecos.count(inject::Outcome::SystemDetection));
}

TEST(PecosExperiment, RunsAreDeterministicPerSeed) {
  const auto params = quick_pecos(true, false, inject::InjectTarget::Random, 99);
  const auto a = run_pecos_single(params);
  const auto b = run_pecos_single(params);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.activations, b.activations);
  EXPECT_EQ(a.pecos_detections, b.pecos_detections);
}

TEST(PecosExperiment, CampaignAggregatesAllModels) {
  auto params = quick_pecos(true, true, inject::InjectTarget::Random, 5);
  const auto counts = run_pecos_campaign(params, 3);
  EXPECT_EQ(counts.runs, 12u);  // 4 models x 3 runs
  std::size_t sum = 0;
  for (const auto n : counts.by_outcome) {
    sum += n;
  }
  EXPECT_EQ(sum, counts.runs);
}

/// Parameterized smoke across the full campaign matrix: every (model,
/// target, cfc, audit) combination must produce a classifiable outcome
/// deterministically.
struct MatrixCase {
  inject::ErrorModel model;
  inject::InjectTarget target;
  CfcMode cfc;
  bool audit;
};

class CampaignMatrix : public ::testing::TestWithParam<int> {};

TEST_P(CampaignMatrix, EveryConfigurationRunsAndClassifies) {
  const int index = GetParam();
  const inject::ErrorModel models[] = {
      inject::ErrorModel::ADDIF, inject::ErrorModel::DATAIF,
      inject::ErrorModel::DATAOF, inject::ErrorModel::DATAInF};
  const CfcMode cfcs[] = {CfcMode::None, CfcMode::Pecos, CfcMode::PostCheck,
                          CfcMode::Bssc};
  MatrixCase c;
  c.model = models[index % 4];
  c.target = (index / 4) % 2 == 0 ? inject::InjectTarget::DirectedCFI
                                  : inject::InjectTarget::Random;
  c.cfc = cfcs[(index / 8) % 4];
  c.audit = (index / 32) % 2 == 1;

  PecosRunParams params;
  params.cfc = c.cfc;
  params.audit = c.audit;
  params.injector.model = c.model;
  params.injector.target = c.target;
  params.threads = 4;
  params.calls_per_thread = 1;
  params.seed = 4000 + static_cast<std::uint64_t>(index);

  const auto a = run_pecos_single(params);
  const auto b = run_pecos_single(params);
  EXPECT_EQ(a.outcome, b.outcome);       // deterministic
  EXPECT_EQ(a.activations, b.activations);
  if (!a.activated) {
    EXPECT_EQ(a.outcome, inject::Outcome::NotActivated);
  }
  if (c.cfc == CfcMode::None) {
    EXPECT_EQ(a.pecos_detections, 0u);  // no checker, no detections
  }
  if (!c.audit) {
    EXPECT_EQ(a.audit_findings, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(FullMatrix, CampaignMatrix, ::testing::Range(0, 64));

TEST(Coverage, Table10MathMatchesPaperExample) {
  CoverageInputs inputs;
  inputs.client_coverage = {28.0, 33.0, 57.0, 58.0};
  inputs.db_escaped_without_audit_pct = 63.0;
  inputs.db_escaped_with_audit_pct = 13.0;
  const auto table = compute_table10(inputs, 0.25);

  EXPECT_NEAR(table.database[0], 37.0, 0.01);
  EXPECT_NEAR(table.database[1], 87.0, 0.01);
  // Paper: 0.25*28 + 0.75*37 = 34.75 ~ "35%".
  EXPECT_NEAR(table.mixed[0], 34.75, 0.01);
  // Paper: with audits only = 73%, both = 80%.
  EXPECT_NEAR(table.mixed[1], 73.5, 1.0);
  EXPECT_NEAR(table.mixed[3], 79.75, 1.0);
}

}  // namespace
}  // namespace wtc::experiments
