#include <gtest/gtest.h>

#include "callproc/emulated_client.hpp"
#include "callproc/native_client.hpp"
#include "db/direct.hpp"
#include "sim/cpu.hpp"

namespace wtc::callproc {
namespace {

struct Env {
  Env() : node(scheduler), db(db::make_controller_database()) {
    ids = db::resolve_controller_ids(db->schema());
  }

  sim::Scheduler scheduler;
  sim::Node node;
  sim::Cpu cpu;
  std::unique_ptr<db::Database> db;
  db::ControllerIds ids;
};

CallClientConfig fast_config() {
  CallClientConfig config;
  config.threads = 8;
  config.call_duration_min = 2 * static_cast<sim::Duration>(sim::kSecond);
  config.call_duration_max = 3 * static_cast<sim::Duration>(sim::kSecond);
  config.inter_arrival_mean = 1 * static_cast<sim::Duration>(sim::kSecond);
  config.phase_work = 5 * static_cast<sim::Duration>(sim::kMillisecond);
  return config;
}

TEST(NativeClient, ErrorFreeRunCompletesCallsCleanly) {
  Env env;
  auto client = std::make_shared<NativeCallClient>(
      *env.db, env.ids, env.cpu, common::Rng(1), fast_config(), nullptr);
  env.node.spawn("client", client);
  env.scheduler.run_until(120 * sim::kSecond);

  const auto& stats = client->stats();
  EXPECT_GT(stats.calls_attempted, 50u);
  EXPECT_EQ(stats.golden_mismatches, 0u);
  EXPECT_EQ(stats.auth_failures, 0u);
  EXPECT_EQ(stats.calls_dropped, 0u);
  EXPECT_GT(stats.calls_completed, 50u);
  EXPECT_GT(stats.setup_time_ms.mean(), 0.0);
}

TEST(NativeClient, ReleasesAllRecordsAfterCalls) {
  Env env;
  auto client = std::make_shared<NativeCallClient>(
      *env.db, env.ids, env.cpu, common::Rng(2), fast_config(), nullptr);
  env.node.spawn("client", client);
  env.scheduler.run_until(200 * sim::kSecond);
  env.node.kill(client->pid());

  // All completed calls freed their records; at most `threads` calls were
  // still active at the kill.
  std::size_t active = 0;
  for (db::RecordIndex r = 0;
       r < env.db->schema().tables[env.ids.process].num_records; ++r) {
    if (db::direct::read_header(*env.db, env.ids.process, r).status ==
        db::kStatusActive) {
      ++active;
    }
  }
  EXPECT_LE(active, 8u);
}

TEST(NativeClient, GoldenCompareCatchesForeignCorruption) {
  Env env;
  auto client = std::make_shared<NativeCallClient>(
      *env.db, env.ids, env.cpu, common::Rng(3), fast_config(), nullptr);
  env.node.spawn("client", client);

  // Periodically corrupt every active Connection caller_id; with no
  // audits, clients must notice at teardown via the golden compare.
  std::function<void()> corrupt = [&]() {
    const auto& spec = env.db->schema().tables[env.ids.connection];
    for (db::RecordIndex r = 0; r < spec.num_records; ++r) {
      if (db::direct::read_header(*env.db, env.ids.connection, r).status ==
          db::kStatusActive) {
        db::direct::write_field(*env.db, env.ids.connection, r,
                                env.ids.c_caller_id, -777);
      }
    }
    env.scheduler.schedule_after(sim::kSecond, corrupt);
  };
  env.scheduler.schedule_after(sim::kSecond, corrupt);
  env.scheduler.run_until(60 * sim::kSecond);

  EXPECT_GT(client->stats().golden_mismatches, 0u);
}

TEST(NativeClient, TerminateThreadDropsCallAndRecovers) {
  Env env;
  auto client = std::make_shared<NativeCallClient>(
      *env.db, env.ids, env.cpu, common::Rng(4), fast_config(), nullptr);
  env.node.spawn("client", client);
  env.scheduler.run_until(5 * sim::kSecond);

  const auto dropped_before = client->stats().calls_dropped;
  for (std::uint32_t t = 0; t < 8; ++t) {
    client->control_terminate_thread(t);
  }
  // Threads with calls in flight dropped them...
  EXPECT_GT(client->stats().calls_dropped, dropped_before);
  // ...and pick up new calls afterwards.
  const auto attempted = client->stats().calls_attempted;
  env.scheduler.run_until(30 * sim::kSecond);
  EXPECT_GT(client->stats().calls_attempted, attempted);
}

TEST(NativeClient, InstrumentedClientSendsNotifications) {
  Env env;
  class CountingSink : public db::NotificationSink {
   public:
    void on_api_event(const db::ApiEvent&) override { ++events; }
    std::size_t events = 0;
  };
  CountingSink sink;
  auto client = std::make_shared<NativeCallClient>(
      *env.db, env.ids, env.cpu, common::Rng(5), fast_config(), &sink);
  env.node.spawn("client", client);
  env.scheduler.run_until(30 * sim::kSecond);
  EXPECT_GT(sink.events, 100u);
  // Access statistics maintained for prioritized audit.
  EXPECT_GT(env.db->table_stats(env.ids.process).writes, 0u);
}

TEST(NativeClient, CpuContentionSlowsSetup) {
  Env env;
  auto client = std::make_shared<NativeCallClient>(
      *env.db, env.ids, env.cpu, common::Rng(6), fast_config(), nullptr);
  env.node.spawn("client", client);
  // A competing CPU hog books 40ms of work every 100ms.
  std::function<void()> hog = [&]() {
    env.cpu.book(env.scheduler.now(), 40 * sim::kMillisecond);
    env.scheduler.schedule_after(100 * sim::kMillisecond, hog);
  };
  env.scheduler.schedule_after(0, hog);
  env.scheduler.run_until(60 * sim::kSecond);
  const double contended = client->stats().setup_time_ms.mean();

  Env env2;
  auto client2 = std::make_shared<NativeCallClient>(
      *env2.db, env2.ids, env2.cpu, common::Rng(6), fast_config(), nullptr);
  env2.node.spawn("client", client2);
  env2.scheduler.run_until(60 * sim::kSecond);
  const double uncontended = client2->stats().setup_time_ms.mean();

  EXPECT_GT(contended, uncontended * 1.2);
}

TEST(EmulatedClient, GeneratesLoadWithRequestedRatios) {
  sim::Scheduler scheduler;
  sim::Node node(scheduler);
  sim::Cpu cpu;
  db::Database db(db::make_bench_schema());
  db::activate_all_records(db);

  class NullSink : public db::NotificationSink {
   public:
    void on_api_event(const db::ApiEvent&) override {}
  };
  NullSink sink;

  EmulatedLoadConfig config;
  config.threads = 16;
  config.ops_per_second_per_thread = 20.0;
  auto client = std::make_shared<EmulatedLoadClient>(db, cpu, common::Rng(1),
                                                     config, &sink);
  node.spawn("client", client);
  scheduler.run_until(30 * sim::kSecond);

  // ~16*20*30 = 9600 expected operations.
  EXPECT_GT(client->operations(), 8000u);
  EXPECT_LT(client->operations(), 11500u);

  // Access counts follow the 6:5:4:3:2:1 ratio, loosely.
  const auto access = [&](db::TableId t) {
    return static_cast<double>(db.table_stats(t).accesses());
  };
  EXPECT_GT(access(0), access(5) * 3.5);
  EXPECT_GT(access(1), access(4) * 1.5);
  EXPECT_GT(access(5), 0.0);
}

TEST(EmulatedClient, WritesStayWithinCatalogRanges) {
  sim::Scheduler scheduler;
  sim::Node node(scheduler);
  sim::Cpu cpu;
  db::Database db(db::make_bench_schema());
  db::activate_all_records(db);

  auto client = std::make_shared<EmulatedLoadClient>(db, cpu, common::Rng(2),
                                                     EmulatedLoadConfig{}, nullptr);
  node.spawn("client", client);
  scheduler.run_until(20 * sim::kSecond);

  for (db::TableId t = 0; t < db.table_count(); ++t) {
    const auto& spec = db.schema().tables[t];
    for (db::RecordIndex r = 0; r < spec.num_records; ++r) {
      for (db::FieldId f = 0; f < spec.fields.size(); ++f) {
        if (!spec.fields[f].has_range()) {
          continue;
        }
        const auto value = db::direct::read_field(db, t, r, f);
        EXPECT_GE(value, *spec.fields[f].range_min);
        EXPECT_LE(value, *spec.fields[f].range_max);
      }
    }
  }
}

}  // namespace
}  // namespace wtc::callproc
