#include <gtest/gtest.h>

#include "audit/escalation.hpp"

#include "common/rng.hpp"
#include "audit/process.hpp"
#include "db/api.hpp"
#include "db/controller_schema.hpp"
#include "db/direct.hpp"
#include "sim/cpu.hpp"

namespace wtc::audit {
namespace {

class CollectingSink : public ReportSink {
 public:
  void on_finding(const Finding& finding) override { findings.push_back(finding); }
  std::vector<Finding> findings;
};

Finding finding_on(db::TableId table, sim::Time time) {
  Finding finding;
  finding.technique = Technique::RangeCheck;
  finding.recovery = Recovery::ResetField;
  finding.table = table;
  finding.time = time;
  finding.length = 4;
  return finding;
}

TEST(Escalation, QuietTablesNeverEscalate) {
  auto db = db::make_controller_database();
  EscalationPolicy policy(*db, {});
  CollectingSink sink;
  sim::Time now = 0;
  for (int i = 0; i < 100; ++i) {
    now += 20 * sim::kSecond;  // slower than threshold/window allows
    EXPECT_EQ(policy.on_finding(finding_on(2, now), now, &sink), Recovery::None);
  }
  EXPECT_EQ(policy.table_reloads(), 0u);
  EXPECT_EQ(policy.full_reloads(), 0u);
}

TEST(Escalation, RepeatedFindingsTriggerTableReload) {
  auto db = db::make_controller_database();
  const auto ids = db::resolve_controller_ids(db->schema());
  EscalationConfig config;
  config.table_reload_threshold = 5;
  EscalationPolicy policy(*db, config);
  CollectingSink sink;

  // Put dynamic state in the table so the reload is observable.
  db::DbApi api(*db, []() { return sim::Time{0}; });
  api.init(1);
  db::RecordIndex r = 0;
  ASSERT_EQ(api.alloc_rec(ids.process, db::kGroupActiveCalls, r), db::Status::Ok);

  sim::Time now = sim::kSecond;
  Recovery last = Recovery::None;
  for (int i = 0; i < 5; ++i) {
    now += sim::kSecond;
    last = policy.on_finding(finding_on(ids.process, now), now, &sink);
  }
  EXPECT_EQ(last, Recovery::ReloadSpan);
  EXPECT_EQ(policy.table_reloads(), 1u);
  // The table was reloaded from disk: the allocated record is free again.
  EXPECT_EQ(db::direct::read_header(*db, ids.process, r).status, db::kStatusFree);
  // The escalation itself was reported.
  ASSERT_FALSE(sink.findings.empty());
  EXPECT_EQ(sink.findings.back().recovery, Recovery::ReloadSpan);

  // Cooldown: the immediate next burst does not re-escalate.
  for (int i = 0; i < 5; ++i) {
    now += sim::kSecond / 2;
    last = policy.on_finding(finding_on(ids.process, now), now, &sink);
  }
  EXPECT_EQ(policy.table_reloads(), 1u);
}

TEST(Escalation, FindingExactlyAtWindowBoundaryStillCounts) {
  auto db = db::make_controller_database();
  EscalationConfig config;
  config.window = 30 * static_cast<sim::Duration>(sim::kSecond);
  config.table_reload_threshold = 4;
  CollectingSink sink;

  // Four findings whose spread is EXACTLY the window: the oldest sits on
  // the horizon (t == now - window) and must still be counted, so the
  // burst escalates.
  {
    EscalationPolicy policy(*db, config);
    sim::Time start = 100 * sim::kSecond;
    EXPECT_EQ(policy.on_finding(finding_on(2, start), start, &sink),
              Recovery::None);
    EXPECT_EQ(policy.on_finding(finding_on(2, start + 10 * sim::kSecond),
                                start + 10 * sim::kSecond, &sink),
              Recovery::None);
    EXPECT_EQ(policy.on_finding(finding_on(2, start + 20 * sim::kSecond),
                                start + 20 * sim::kSecond, &sink),
              Recovery::None);
    EXPECT_EQ(policy.on_finding(finding_on(2, start + 30 * sim::kSecond),
                                start + 30 * sim::kSecond, &sink),
              Recovery::ReloadSpan);
    EXPECT_EQ(policy.table_reloads(), 1u);
  }

  // One microsecond wider and the oldest finding ages out: no escalation.
  {
    EscalationPolicy policy(*db, config);
    sim::Time start = 100 * sim::kSecond;
    policy.on_finding(finding_on(2, start), start, &sink);
    policy.on_finding(finding_on(2, start + 10 * sim::kSecond),
                      start + 10 * sim::kSecond, &sink);
    policy.on_finding(finding_on(2, start + 20 * sim::kSecond),
                      start + 20 * sim::kSecond, &sink);
    const sim::Time late = start + 30 * sim::kSecond + 1;
    EXPECT_EQ(policy.on_finding(finding_on(2, late), late, &sink),
              Recovery::None);
    EXPECT_EQ(policy.table_reloads(), 0u);
  }
}

TEST(Escalation, CooldownSuppressesReloadWithoutResettingWindow) {
  auto db = db::make_controller_database();
  EscalationConfig config;
  config.window = 30 * static_cast<sim::Duration>(sim::kSecond);
  config.cooldown = 10 * static_cast<sim::Duration>(sim::kSecond);
  config.table_reload_threshold = 3;
  EscalationPolicy policy(*db, config);
  CollectingSink sink;

  // First burst escalates at t=12s.
  sim::Time now = 10 * sim::kSecond;
  policy.on_finding(finding_on(2, now), now, &sink);
  now += sim::kSecond;
  policy.on_finding(finding_on(2, now), now, &sink);
  now += sim::kSecond;
  ASSERT_EQ(policy.on_finding(finding_on(2, now), now, &sink),
            Recovery::ReloadSpan);
  ASSERT_EQ(policy.table_reloads(), 1u);
  const sim::Time escalated_at = now;  // 12 s

  // A would-be level-1 escalation during cooldown: the threshold is
  // reached again (3 findings at 13/14/15 s) but nothing reloads and no
  // escalation finding is re-reported.
  const std::size_t findings_reported = sink.findings.size();
  for (int i = 0; i < 3; ++i) {
    now += sim::kSecond;  // 13 s, 14 s, 15 s — inside the 10 s cooldown
    EXPECT_EQ(policy.on_finding(finding_on(2, now), now, &sink),
              Recovery::None);
  }
  EXPECT_EQ(policy.table_reloads(), 1u);
  EXPECT_EQ(sink.findings.size(), findings_reported);

  // ...and the cooldown did NOT reset the sliding window: the findings
  // accumulated during cooldown still count once it expires, so the very
  // first finding after the boundary escalates immediately. (Exactly at
  // the boundary, too: the cooldown test is strict `<`.)
  now = escalated_at + static_cast<sim::Time>(config.cooldown);  // 22 s
  EXPECT_EQ(policy.on_finding(finding_on(2, now), now, &sink),
            Recovery::ReloadSpan);
  EXPECT_EQ(policy.table_reloads(), 2u);
}

TEST(Escalation, MultiTableDegenerationTriggersFullReload) {
  auto db = db::make_controller_database();
  const auto ids = db::resolve_controller_ids(db->schema());
  EscalationConfig config;
  config.table_reload_threshold = 3;
  config.full_reload_threshold = 3;
  EscalationPolicy policy(*db, config);
  CollectingSink sink;

  sim::Time now = sim::kSecond;
  for (const db::TableId table :
       {ids.process, ids.connection, ids.resource}) {
    for (int i = 0; i < 3; ++i) {
      now += sim::kSecond;
      policy.on_finding(finding_on(table, now), now, &sink);
    }
  }
  EXPECT_EQ(policy.table_reloads(), 3u);
  EXPECT_EQ(policy.full_reloads(), 1u);
  bool full_reported = false;
  for (const auto& finding : sink.findings) {
    full_reported |= finding.recovery == Recovery::ReloadAll;
  }
  EXPECT_TRUE(full_reported);
  // After the full reload the region equals the pristine image.
  EXPECT_TRUE(std::equal(db->region().begin(), db->region().end(),
                         db->pristine().begin()));
}

TEST(Escalation, IntegratesWithAuditProcessUnderErrorStorm) {
  sim::Scheduler scheduler;
  sim::Node node(scheduler);
  sim::Cpu cpu;
  auto db = db::make_controller_database();
  const auto ids = db::resolve_controller_ids(db->schema());
  CollectingSink sink;

  AuditProcessConfig config;
  config.period = sim::kSecond;
  config.escalation = true;
  config.escalation_config.table_reload_threshold = 6;
  config.engine.recent_write_grace = 100;
  auto audit = std::make_shared<AuditProcess>(*db, cpu, config, &sink, nullptr);
  node.spawn("audit", audit);

  // An error storm concentrated on the Connection table: corrupt a state
  // field every 300 ms. Localized repairs fire, then escalation reloads
  // the table.
  common::Rng rng(3);
  std::function<void()> storm = [&]() {
    const auto record = static_cast<db::RecordIndex>(
        rng.uniform(db->schema().tables[ids.connection].num_records));
    // Activate + corrupt directly so range audit keeps finding errors.
    const std::size_t at = db->layout().record_offset(ids.connection, record);
    auto header = db::load_record_header(db->region(), at);
    header.status = db::kStatusActive;
    header.group = db::kGroupActiveCalls;
    db::store_record_header(db->region(), at, header);
    db::direct::write_field(*db, ids.connection, record, ids.c_state, 9999);
    scheduler.schedule_after(300 * sim::kMillisecond, storm);
  };
  scheduler.schedule_after(0, storm);
  scheduler.run_until(30 * sim::kSecond);

  ASSERT_NE(audit->escalation(), nullptr);
  EXPECT_GE(audit->escalation()->table_reloads(), 1u);
}

}  // namespace
}  // namespace wtc::audit
