// Active control-flow attestation and guaranteed healing (PECOS -> ACFA):
// the CF log's no-drop overflow policy, the attestation element's deferred
// detection (including the PostCheck race the preemptive monitor wins),
// the healer's restore/replay/restart sequence with its idempotence and
// escalation guarantees, and the quarantine cooldown re-enable.
#include <gtest/gtest.h>

#include <stdexcept>

#include "audit/cf_attest.hpp"
#include "audit/process.hpp"
#include "common/rng.hpp"
#include "db/controller_schema.hpp"
#include "db/direct.hpp"
#include "db/layout.hpp"
#include "db/op_log.hpp"
#include "experiments/pecos_runner.hpp"
#include "manager/healer.hpp"
#include "pecos/cf_log.hpp"
#include "pecos/monitor.hpp"
#include "pecos/plan.hpp"
#include "sim/cpu.hpp"
#include "sim/node.hpp"
#include "sim/scheduler.hpp"
#include "vm/builder.hpp"
#include "vm/interp.hpp"

namespace wtc {
namespace {

class CollectingSink : public audit::ReportSink {
 public:
  void on_finding(const audit::Finding& finding) override {
    findings.push_back(finding);
  }
  std::vector<audit::Finding> findings;
};

// --- CF log: bounded, never drops ----------------------------------------

TEST(CfLog, OverflowForcesEarlySliceInsteadOfDropping) {
  pecos::CfLog log(4);
  std::vector<pecos::CfTransition> drained;
  log.set_overflow_handler(
      [&](std::uint32_t thread) { log.drain(thread, drained); });
  for (std::uint32_t i = 0; i < 10; ++i) {
    log.record({0, i, i + 1, i, false});
  }
  log.drain(0, drained);
  ASSERT_EQ(drained.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(drained[i].from_pc, i);  // FIFO, nothing lost or reordered
  }
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_GE(log.overflow_slices(), 1u);
  EXPECT_EQ(log.recorded(), 10u);
}

TEST(CfLog, WithoutHandlerEvictsOldestAndCountsTheLoss) {
  pecos::CfLog log(4);
  for (std::uint32_t i = 0; i < 10; ++i) {
    log.record({0, i, i + 1, i, false});
  }
  std::vector<pecos::CfTransition> drained;
  log.drain(0, drained);
  ASSERT_EQ(drained.size(), 4u);
  EXPECT_EQ(drained.front().from_pc, 6u);  // oldest six evicted
  EXPECT_EQ(log.dropped(), 6u);
}

TEST(CfLog, RingsArePerThread) {
  pecos::CfLog log(4);
  log.record({0, 1, 2, 0, false});
  log.record({3, 7, 8, 0, false});
  EXPECT_EQ(log.size(0), 1u);
  EXPECT_EQ(log.size(3), 1u);
  EXPECT_EQ(log.size(1), 0u);
  log.clear_thread(3);
  EXPECT_EQ(log.size(3), 0u);
}

// --- attestation element --------------------------------------------------

vm::Program sample_program() {
  vm::ProgramBuilder b;
  b.loadi(1, 0)                  // 0
      .loadi(2, 3)               // 1
      .label("loop")             // 2
      .bge(1, 2, "end")          // 2: branch
      .addi(1, 1, 1)             // 3
      .call("helper")            // 4: call
      .jmp("loop")               // 5: jump
      .label("end")
      .load_label(8, "helper")   // 6
      .icall(8)                  // 7: indirect call
      .halt();                   // 8
  b.label("helper").nop().ret();  // 9, 10: ret
  return std::move(b).build();
}

/// Attestation harness: a minimal audit process hosting only the
/// CfAttestElement, plus a MiniVM thread whose monitor streams into the
/// element's CF log.
class AttestTest : public ::testing::Test {
 protected:
  AttestTest()
      : node_(scheduler_),
        db_(db::make_controller_database()),
        api_(*db_, [this]() { return scheduler_.now(); }),
        log_(64) {
    api_.init(1);
  }

  audit::CfAttestElement* spawn_audit(const pecos::Plan& plan,
                                      sim::Duration slice_period) {
    audit::AuditProcessConfig config;
    config.periodic_enabled = false;
    config.progress_indicator = false;
    audit_ = std::make_shared<audit::AuditProcess>(*db_, cpu_, config, &sink_,
                                                   nullptr);
    audit::CfAttestConfig attest_cfg;
    attest_cfg.slice_period = slice_period;
    auto element = std::make_unique<audit::CfAttestElement>(
        log_, plan, attest_cfg, []() { return sim::ProcessId{42}; },
        [this](const audit::CfViolation& v) { violations_.push_back(v); });
    auto* raw = element.get();
    audit_->add_element(std::move(element));
    node_.spawn("audit", audit_);
    return raw;
  }

  /// Runs thread 0 until terminal (bounded); quanta run at sim time 0, so
  /// every logged transition is stamped t=0 and the first slice drains all.
  vm::ThreadState run(vm::VmProcess& process) {
    for (int i = 0; i < 10'000; ++i) {
      const auto state = process.thread(0).state();
      if (state != vm::ThreadState::Runnable &&
          state != vm::ThreadState::Sleeping) {
        return state;
      }
      process.run_quantum(0, scheduler_.now());
    }
    return process.thread(0).state();
  }

  sim::Scheduler scheduler_;
  sim::Node node_;
  sim::Cpu cpu_;
  std::unique_ptr<db::Database> db_;
  db::DbApi api_;
  CollectingSink sink_;
  std::shared_ptr<audit::AuditProcess> audit_;
  pecos::CfLog log_;
  std::vector<audit::CfViolation> violations_;
};

TEST_F(AttestTest, CleanRunAttestsEverythingWithoutViolations) {
  const vm::Program program = sample_program();
  const pecos::Plan plan = pecos::Plan::instrument(program);
  auto* element =
      spawn_audit(plan, static_cast<sim::Duration>(10 * sim::kMillisecond));

  pecos::PecosMonitor monitor(plan);
  monitor.set_cf_log(&log_);
  vm::VmProcess process(program, api_, common::Rng(1), {});
  process.set_monitor(&monitor);
  process.spawn_thread(0);
  EXPECT_EQ(run(process), vm::ThreadState::Halted);

  scheduler_.run_until(50 * sim::kMillisecond);
  EXPECT_GT(element->transitions_attested(), 5u);
  EXPECT_EQ(element->violations(), 0u);
  EXPECT_TRUE(violations_.empty());
  EXPECT_GE(element->slices(), 1u);
}

TEST_F(AttestTest, PostCheckRaceCrashEscapesPreemptionButNotAttestation) {
  // A jump corrupted out of bounds: the deferred (PostCheck) monitor loses
  // the race — the OS bounds check crashes the thread before the deferred
  // check fires. The transfer was logged, though, so the attestation slice
  // still detects it, within one slice period.
  const vm::Program pristine = sample_program();
  const pecos::Plan plan = pecos::Plan::instrument(pristine);
  const auto slice = static_cast<sim::Duration>(10 * sim::kMillisecond);
  auto* element = spawn_audit(plan, slice);

  pecos::PostCheckMonitor monitor(plan);
  monitor.set_cf_log(&log_);
  vm::VmProcess process(pristine, api_, common::Rng(1), {});
  process.set_monitor(&monitor);
  process.spawn_thread(0);
  vm::Instr jump = vm::decode(process.live_text()[5]);
  ASSERT_EQ(jump.op, vm::Opcode::Jmp);
  jump.imm = 100'000;
  process.live_text()[5] = vm::encode(jump);

  EXPECT_EQ(run(process), vm::ThreadState::Trapped);
  EXPECT_EQ(process.thread(0).trap(), vm::Trap::PcOutOfBounds);  // the race

  scheduler_.run_until(5 * static_cast<sim::Time>(slice));
  ASSERT_EQ(element->violations(), 1u);
  ASSERT_EQ(violations_.size(), 1u);
  EXPECT_EQ(violations_[0].thread, 0u);
  EXPECT_EQ(violations_[0].from_pc, 5u);
  EXPECT_EQ(violations_[0].to_pc, 100'000u);
  EXPECT_EQ(violations_[0].source, audit::CfSource::Attestation);
  // Bounded detection latency: at most one slice period.
  EXPECT_LE(element->max_detection_latency_us(),
            static_cast<std::uint64_t>(slice));
  // And the same corruption under the preemptive monitor never escapes.
  pecos::PecosMonitor preemptive(plan);
  vm::VmProcess process2(pristine, api_, common::Rng(1), {});
  process2.set_monitor(&preemptive);
  process2.spawn_thread(0);
  process2.live_text()[5] = vm::encode(jump);
  EXPECT_EQ(run(process2), vm::ThreadState::Trapped);
  EXPECT_EQ(process2.thread(0).trap(), vm::Trap::PecosViolation);
}

TEST_F(AttestTest, FlagsTransferWhosePristineSiteIsNotACfi) {
  // Feed the log a transfer claiming to originate from a non-CFI pc: an
  // instruction corrupted INTO a jump. No assertion block exists there, so
  // only the attestation path can flag it.
  const vm::Program program = sample_program();
  const pecos::Plan plan = pecos::Plan::instrument(program);
  auto* element =
      spawn_audit(plan, static_cast<sim::Duration>(10 * sim::kMillisecond));

  log_.note_thread_start(0, 0, 0);
  log_.record({0, 0, 9, 0, false});  // pc 0 is a loadi in the pristine text
  scheduler_.run_until(50 * sim::kMillisecond);
  EXPECT_EQ(element->violations(), 1u);
  ASSERT_EQ(violations_.size(), 1u);
  EXPECT_EQ(violations_[0].from_pc, 0u);
}

// --- healer ----------------------------------------------------------------

class FakeHealable : public audit::HealableClient {
 public:
  void heal_terminate_thread(std::uint32_t thread_id) override {
    terminated.push_back(thread_id);
  }
  void heal_restart_thread(std::uint32_t thread_id) override {
    restarted.push_back(thread_id);
  }
  std::vector<std::uint32_t> terminated;
  std::vector<std::uint32_t> restarted;
};

class FakeControl : public audit::ClientControl {
 public:
  void terminate_client_thread(sim::ProcessId, std::uint32_t) override {}
  void kill_client_process(sim::ProcessId client) override {
    killed.push_back(client);
  }
  std::vector<sim::ProcessId> killed;
};

class HealerTest : public ::testing::Test {
 protected:
  HealerTest()
      : db_(db::make_controller_database()),
        ids_(db::resolve_controller_ids(db_->schema())),
        api_(*db_, [this]() { return now_; }) {
    api_.init(1);
    api_.set_audit_hooks(&op_log_);
  }

  manager::CfHealer make_healer() {
    return manager::CfHealer(*db_, op_log_, cf_log_, client_, &control_,
                             &sink_, [this]() { return now_; });
  }

  std::unique_ptr<db::Database> db_;
  db::ControllerIds ids_;
  db::ThreadOpLog op_log_;
  pecos::CfLog cf_log_;
  db::DbApi api_;
  FakeHealable client_;
  FakeControl control_;
  CollectingSink sink_;
  sim::Time now_ = 0;
};

TEST_F(HealerTest, RestoresReplaysReleasesAndRestarts) {
  // Thread 1 allocates a call record and writes it; thread 2 allocates its
  // own. Then thread 1's control flow goes bad and its record's field is
  // corrupted mid-quantum.
  api_.set_thread_id(1);
  now_ = 10;
  db::RecordIndex r1 = 0;
  ASSERT_EQ(api_.alloc_rec(ids_.process, db::kGroupActiveCalls, r1),
            db::Status::Ok);
  ASSERT_EQ(api_.write_fld(ids_.process, r1, ids_.p_process_id, db::key_of(r1)),
            db::Status::Ok);
  api_.set_thread_id(2);
  now_ = 12;
  db::RecordIndex r2 = 0;
  ASSERT_EQ(api_.alloc_rec(ids_.process, db::kGroupActiveCalls, r2),
            db::Status::Ok);
  ASSERT_NE(r1, r2);

  // Corruption lands in thread 1's record (the suspect quantum).
  now_ = 20;
  db::direct::write_field(*db_, ids_.process, r1, ids_.p_status, -777);

  auto healer = make_healer();
  audit::CfViolation violation;
  violation.client = 1;
  violation.thread = 1;
  violation.from_pc = 5;
  violation.to_pc = 9;
  violation.time = 20;
  violation.source = audit::CfSource::Preemptive;
  now_ = 21;
  EXPECT_TRUE(healer.heal(violation));

  // Thread surgery ran, in order.
  ASSERT_EQ(client_.terminated, std::vector<std::uint32_t>{1u});
  ASSERT_EQ(client_.restarted, std::vector<std::uint32_t>{1u});
  // The trusted op tail (alloc + write, both before t=20) was replayed.
  EXPECT_GE(healer.replayed_ops(), 2u);
  EXPECT_GE(healer.restored_records(), 1u);
  // Thread 1 restarts from scratch, so its held record was released; the
  // corrupted field went back to the catalog default with it.
  const auto h1 = db::direct::read_header(*db_, ids_.process, r1);
  EXPECT_EQ(h1.status, db::kStatusFree);
  EXPECT_EQ(h1.id_tag, db::expected_id_tag(ids_.process, r1));
  EXPECT_NE(db::direct::read_field(*db_, ids_.process, r1, ids_.p_status),
            -777);
  // Thread 2's record was not collateral damage.
  EXPECT_EQ(db::direct::read_header(*db_, ids_.process, r2).status,
            db::kStatusActive);
  // The healed thread's logs restart empty.
  EXPECT_TRUE(op_log_.ops(1).empty());
  // The heal was reported.
  bool reported = false;
  for (const auto& finding : sink_.findings) {
    reported |= finding.technique == audit::Technique::CfAttestation &&
                finding.recovery == audit::Recovery::HealThread;
  }
  EXPECT_TRUE(reported);
}

TEST_F(HealerTest, DoubleReportOfSameViolationHealsOnce) {
  api_.set_thread_id(1);
  now_ = 10;
  db::RecordIndex r = 0;
  ASSERT_EQ(api_.alloc_rec(ids_.process, db::kGroupActiveCalls, r),
            db::Status::Ok);

  auto healer = make_healer();
  audit::CfViolation violation;
  violation.client = 1;
  violation.thread = 1;
  violation.time = 15;
  violation.source = audit::CfSource::Preemptive;
  now_ = 16;
  EXPECT_TRUE(healer.heal(violation));
  // The attestation slice re-reports the same transfer a period later.
  violation.source = audit::CfSource::Attestation;
  now_ = 30;
  EXPECT_TRUE(healer.heal(violation));
  EXPECT_EQ(healer.heals(), 1u);
  EXPECT_EQ(healer.skipped(), 1u);
  EXPECT_EQ(client_.terminated.size(), 1u);
  EXPECT_EQ(client_.restarted.size(), 1u);
  // A genuinely new violation after the heal is healed again.
  violation.time = 40;
  now_ = 41;
  EXPECT_TRUE(healer.heal(violation));
  EXPECT_EQ(healer.heals(), 2u);
}

TEST_F(HealerTest, SecondFaultMidHealEscalatesCleanly) {
  api_.set_thread_id(1);
  now_ = 10;
  db::RecordIndex r = 0;
  ASSERT_EQ(api_.alloc_rec(ids_.process, db::kGroupActiveCalls, r),
            db::Status::Ok);

  auto healer = make_healer();
  healer.set_fault_hook([](std::uint32_t hook_stage) {
    if (hook_stage == 3) {
      throw std::runtime_error("replay fault");
    }
  });
  audit::CfViolation violation;
  violation.client = 7;
  violation.thread = 1;
  violation.time = 15;
  now_ = 16;
  EXPECT_FALSE(healer.heal(violation));
  EXPECT_EQ(healer.heals(), 0u);
  EXPECT_EQ(healer.escalations(), 1u);
  // Escalation reached the recovery ladder: the client process was killed
  // and the surrender reported; the thread was never "restarted" into a
  // half-healed database.
  ASSERT_EQ(control_.killed, std::vector<sim::ProcessId>{7});
  EXPECT_TRUE(client_.restarted.empty());
  bool reported = false;
  for (const auto& finding : sink_.findings) {
    reported |= finding.recovery == audit::Recovery::KillClientProcess;
  }
  EXPECT_TRUE(reported);
}

TEST_F(HealerTest, SingleFaultRetriesAndStillHeals) {
  api_.set_thread_id(1);
  now_ = 10;
  db::RecordIndex r = 0;
  ASSERT_EQ(api_.alloc_rec(ids_.process, db::kGroupActiveCalls, r),
            db::Status::Ok);

  auto healer = make_healer();
  int hook_calls = 0;
  healer.set_fault_hook([&hook_calls](std::uint32_t hook_stage) {
    if (hook_stage == 2 && ++hook_calls == 1) {
      throw std::runtime_error("transient restore fault");
    }
  });
  audit::CfViolation violation;
  violation.client = 1;
  violation.thread = 1;
  violation.time = 15;
  now_ = 16;
  EXPECT_TRUE(healer.heal(violation));
  EXPECT_EQ(healer.heals(), 1u);
  EXPECT_EQ(healer.escalations(), 0u);
  EXPECT_EQ(client_.restarted.size(), 1u);
}

// --- quarantine cooldown re-enable (reversible degradation) ----------------

constexpr std::uint32_t kPoisonMessage = 77;

class CrashyElement final : public audit::AuditElement {
 public:
  [[nodiscard]] std::string_view name() const override { return "crashy"; }
  [[nodiscard]] bool accepts(std::uint32_t type) const override {
    return type == kPoisonMessage;
  }
  void on_message(audit::AuditProcess&, const sim::Message&) override {
    throw std::runtime_error("element bug");
  }
};

TEST(QuarantineReenable, CooldownRestoresElementAfterCleanWindow) {
  sim::Scheduler scheduler;
  sim::Node node(scheduler);
  sim::Cpu cpu;
  auto db = db::make_controller_database();
  CollectingSink sink;

  audit::AuditProcessConfig config;
  config.periodic_enabled = false;
  config.progress_indicator = false;
  config.quarantine_max_faults = 2;
  config.quarantine_window = static_cast<sim::Duration>(sim::kSecond);
  auto audit = std::make_shared<audit::AuditProcess>(*db, cpu, config, &sink,
                                                     nullptr);
  audit->add_element(std::make_unique<CrashyElement>());
  const auto audit_pid = node.spawn("audit", audit);

  for (std::uint64_t i = 0; i < 2; ++i) {
    sim::Message poison;
    poison.type = kPoisonMessage;
    node.send(audit_pid, poison,
              static_cast<sim::Duration>(i * 100 * sim::kMillisecond));
  }
  scheduler.run_until(sim::kSecond / 2);
  EXPECT_TRUE(audit->element_disabled("crashy"));
  EXPECT_EQ(audit->reenabled_count(), 0u);
  EXPECT_EQ(audit->quarantined_count(), 1u);

  // A clean quarantine window later, the element is restored.
  scheduler.run_until(3 * sim::kSecond);
  EXPECT_FALSE(audit->element_disabled("crashy"));
  EXPECT_EQ(audit->reenabled_count(), 1u);
  EXPECT_EQ(audit->quarantined_count(), 0u);
  bool reported = false;
  for (const auto& finding : sink.findings) {
    reported |= finding.recovery == audit::Recovery::ReenableElement &&
                finding.technique == audit::Technique::ElementQuarantine;
  }
  EXPECT_TRUE(reported);

  // The restored element is live again (and can re-earn its quarantine).
  sim::Message poison;
  poison.type = kPoisonMessage;
  node.send(audit_pid, poison);
  scheduler.run_until(4 * sim::kSecond);
  EXPECT_GE(audit->element_faults(), 3u);
}

TEST(QuarantineReenable, DisabledWhenConfiguredOff) {
  sim::Scheduler scheduler;
  sim::Node node(scheduler);
  sim::Cpu cpu;
  auto db = db::make_controller_database();
  CollectingSink sink;

  audit::AuditProcessConfig config;
  config.periodic_enabled = false;
  config.progress_indicator = false;
  config.quarantine_max_faults = 2;
  config.quarantine_window = static_cast<sim::Duration>(sim::kSecond);
  config.quarantine_reenable = false;
  auto audit = std::make_shared<audit::AuditProcess>(*db, cpu, config, &sink,
                                                     nullptr);
  audit->add_element(std::make_unique<CrashyElement>());
  const auto audit_pid = node.spawn("audit", audit);
  for (int i = 0; i < 2; ++i) {
    sim::Message poison;
    poison.type = kPoisonMessage;
    node.send(audit_pid, poison);
  }
  scheduler.run_until(10 * sim::kSecond);
  EXPECT_TRUE(audit->element_disabled("crashy"));
  EXPECT_EQ(audit->reenabled_count(), 0u);
}

// --- end-to-end: detect, route through the active manager, heal ------------

TEST(HealingEndToEnd, DirectedCfErrorIsDetectedAndHealed) {
  // Directed CFI injection against the PECOS-protected client with
  // attestation + healing on. Probe seeds for one whose error activates
  // and is detected; that run must heal and still complete.
  experiments::PecosRunParams params;
  params.cfc = experiments::CfcMode::Pecos;
  params.audit = false;
  params.cf_attest = true;
  params.heal = true;
  params.threads = 4;
  params.calls_per_thread = 1;
  params.injector.model = inject::ErrorModel::ADDIF;
  params.injector.target = inject::InjectTarget::DirectedCFI;

  bool exercised = false;
  for (std::uint64_t seed = 1; seed <= 30 && !exercised; ++seed) {
    params.seed = seed;
    const auto result = experiments::run_pecos_single(params);
    if (result.pecos_detections == 0 && result.attest_detections == 0) {
      continue;
    }
    exercised = true;
    EXPECT_GE(result.heals, 1u) << "seed " << seed;
    EXPECT_FALSE(result.unhealed_violation) << "seed " << seed;
    EXPECT_EQ(result.heal_escalations, 0u) << "seed " << seed;
  }
  EXPECT_TRUE(exercised) << "no seed in 1..30 exercised a CF detection";
}

TEST(HealingEndToEnd, AttestationLatencyIsBoundedBySlicePeriod) {
  experiments::PecosRunParams params;
  params.cfc = experiments::CfcMode::PostCheck;  // deferred: races happen
  params.audit = false;
  params.cf_attest = true;
  params.threads = 4;
  params.calls_per_thread = 1;
  params.injector.model = inject::ErrorModel::ADDIF;
  params.injector.target = inject::InjectTarget::DirectedCFI;

  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    params.seed = seed;
    const auto result = experiments::run_pecos_single(params);
    if (result.attest_detections > 0) {
      EXPECT_LE(result.max_attest_latency_us,
                static_cast<std::uint64_t>(params.slice_period))
          << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace wtc
