// Replays the checked-in fuzz corpora through the harness entry points in
// the normal (non-fuzz, any-compiler) build:
//   * fuzz/corpus/regressions/<target>/ — every crash or invariant
//     violation a fuzzer ever found lands here as a file, so each fix is
//     pinned against regression on every ctest run;
//   * fuzz/corpus/<target>/ — the seed corpus, so the documented harness
//     invariants (repair idempotence above all) provably hold on every
//     seed without a fuzzing toolchain.
// A violated harness invariant abort()s, which gtest surfaces as a crashed
// test — intentionally loud.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "fuzz/harness.hpp"

namespace {

using HarnessFn = int (*)(const std::uint8_t*, std::size_t);

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  return {bytes.begin(), bytes.end()};
}

/// Replays every regular file under `dir` (sorted, for deterministic
/// ordering) through `fn`; returns the number replayed.
std::size_t replay_dir(const std::filesystem::path& dir, HarnessFn fn) {
  if (!std::filesystem::exists(dir)) {
    return 0;
  }
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    SCOPED_TRACE(path.string());
    const auto bytes = read_file(path);
    fn(bytes.data(), bytes.size());
  }
  return files.size();
}

const std::filesystem::path kCorpusRoot = WTC_FUZZ_CORPUS_DIR;

TEST(FuzzRegressions, RegionImage) {
  replay_dir(kCorpusRoot / "regressions" / "region_image",
             wtc::fuzz::fuzz_region_image);
}

TEST(FuzzRegressions, MiniVm) {
  replay_dir(kCorpusRoot / "regressions" / "minivm", wtc::fuzz::fuzz_minivm);
}

TEST(FuzzRegressions, IpcFrame) {
  replay_dir(kCorpusRoot / "regressions" / "ipc_frame",
             wtc::fuzz::fuzz_ipc_frame);
}

TEST(FuzzRegressions, OpLog) {
  replay_dir(kCorpusRoot / "regressions" / "oplog", wtc::fuzz::fuzz_oplog);
}

// The seed corpora are part of the acceptance surface: every documented
// harness invariant must hold on every seed, in every build.
TEST(FuzzSeedCorpus, RegionImage) {
  EXPECT_GE(replay_dir(kCorpusRoot / "region_image",
                       wtc::fuzz::fuzz_region_image),
            3u);
}

TEST(FuzzSeedCorpus, MiniVm) {
  EXPECT_GE(replay_dir(kCorpusRoot / "minivm", wtc::fuzz::fuzz_minivm), 4u);
}

TEST(FuzzSeedCorpus, IpcFrame) {
  EXPECT_GE(replay_dir(kCorpusRoot / "ipc_frame", wtc::fuzz::fuzz_ipc_frame),
            2u);
}

TEST(FuzzSeedCorpus, OpLog) {
  EXPECT_GE(replay_dir(kCorpusRoot / "oplog", wtc::fuzz::fuzz_oplog), 3u);
}

// The empty input is every fuzzer's first probe; it must be boring.
TEST(FuzzHarness, EmptyInputIsClean) {
  EXPECT_EQ(wtc::fuzz::fuzz_region_image(nullptr, 0), 0);
  EXPECT_EQ(wtc::fuzz::fuzz_minivm(nullptr, 0), 0);
  EXPECT_EQ(wtc::fuzz::fuzz_ipc_frame(nullptr, 0), 0);
  EXPECT_EQ(wtc::fuzz::fuzz_oplog(nullptr, 0), 0);
}

}  // namespace
