// common::WorkerPool: the fork/join primitive shared by the campaign
// runner and the audit engine's parallel detection phase.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/worker_pool.hpp"

namespace wtc::common {
namespace {

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  WorkerPool pool(3);
  std::vector<std::atomic<int>> hits(8);
  pool.dispatch(8, [&](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(WorkerPool, ZeroThreadPoolRunsSeriallyOnCaller) {
  WorkerPool pool(0);
  std::vector<std::size_t> order;
  pool.dispatch(5, [&](std::size_t i) { order.push_back(i); });
  // With no pool threads every index runs inline, in order.
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(WorkerPool, OversizedPoolLeavesExtraThreadsIdle) {
  WorkerPool pool(8);
  std::atomic<int> total{0};
  pool.dispatch(3, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 3);
}

TEST(WorkerPool, SingleWorkerDispatchStaysInline) {
  WorkerPool pool(4);
  std::atomic<int> total{0};
  pool.dispatch(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++total;
  });
  EXPECT_EQ(total.load(), 1);
}

TEST(WorkerPool, ReusableAcrossDispatches) {
  WorkerPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.dispatch(4, [&](std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 200);
}

TEST(WorkerPool, LowestIndexExceptionWins) {
  WorkerPool pool(2);
  for (int round = 0; round < 10; ++round) {
    try {
      pool.dispatch(4, [&](std::size_t i) {
        if (i >= 2) {
          throw std::runtime_error("worker " + std::to_string(i));
        }
      });
      FAIL() << "dispatch should rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "worker 2");
    }
    // The pool must stay usable after an exceptional dispatch.
    std::atomic<int> total{0};
    pool.dispatch(3, [&](std::size_t) { ++total; });
    EXPECT_EQ(total.load(), 3);
  }
}

TEST(WorkerPool, ParallelSumMatchesSerial) {
  WorkerPool pool(3);
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kItems = 10'000;
  std::vector<std::uint64_t> partial(kWorkers, 0);
  std::atomic<std::size_t> next{0};
  pool.dispatch(kWorkers, [&](std::size_t w) {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= kItems) {
        return;
      }
      partial[w] += i;
    }
  });
  std::uint64_t total = 0;
  for (const std::uint64_t p : partial) {
    total += p;
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kItems) * (kItems - 1) / 2);
}

}  // namespace
}  // namespace wtc::common
