// Supervision robustness: heartbeat behaviour over a lossy channel, the
// duplicated active/standby manager, stale-incarnation heartbeat replies,
// and graceful audit degradation via element quarantine.
#include <gtest/gtest.h>

#include <stdexcept>

#include "audit/messages.hpp"
#include "audit/process.hpp"
#include "db/controller_schema.hpp"
#include "db/direct.hpp"
#include "manager/manager.hpp"
#include "sim/cpu.hpp"

namespace wtc {
namespace {

class CollectingSink : public audit::ReportSink {
 public:
  void on_finding(const audit::Finding& finding) override {
    findings.push_back(finding);
  }
  std::vector<audit::Finding> findings;
};

/// Environment: controller db + audit factory shared by every test.
struct Env {
  Env() : node(scheduler), db(db::make_controller_database()) {}

  std::function<sim::ProcessId()> audit_factory(
      audit::AuditProcessConfig config = {}) {
    return [this, config]() {
      audit = std::make_shared<audit::AuditProcess>(*db, cpu, config, &sink,
                                                    nullptr);
      return node.spawn("audit", audit);
    };
  }

  sim::Scheduler scheduler;
  sim::Node node;
  sim::Cpu cpu;
  std::unique_ptr<db::Database> db;
  CollectingSink sink;
  std::shared_ptr<audit::AuditProcess> audit;
};

audit::AuditProcessConfig reliable_audit_config() {
  audit::AuditProcessConfig config;
  config.reliable_ipc = true;
  config.reliable.retry_after = 100 * static_cast<sim::Duration>(sim::kMillisecond);
  return config;
}

manager::ManagerConfig reliable_manager_config() {
  manager::ManagerConfig config;
  config.reliable_heartbeat = true;
  config.reliable.retry_after = 100 * static_cast<sim::Duration>(sim::kMillisecond);
  return config;
}

// --- acceptance criterion (a): lossy channel vs. the heartbeat ---

TEST(LossyHeartbeat, PlainHeartbeatFiresSpuriousRestartsUnderDrops) {
  Env env;
  env.node.set_channel_faults({.drop_probability = 0.25, .seed = 11});
  auto mgr = std::make_shared<manager::Manager>(env.audit_factory());
  env.node.spawn("manager", mgr);

  env.scheduler.run_until(120 * sim::kSecond);

  // The audit process never crashed or hung, yet the fire-and-forget
  // heartbeat restarted it: every one of these is spurious.
  EXPECT_GT(mgr->restarts_live(), 0u);
  EXPECT_EQ(mgr->restarts(), mgr->restarts_live());
}

TEST(LossyHeartbeat, ReliableHeartbeatQuietUnderDropsYetDetectsRealDeath) {
  Env env;
  env.node.set_channel_faults({.drop_probability = 0.25, .seed = 11});
  auto mgr = std::make_shared<manager::Manager>(
      env.audit_factory(reliable_audit_config()), reliable_manager_config());
  env.node.spawn("manager", mgr);

  env.scheduler.run_until(120 * sim::kSecond);
  EXPECT_EQ(mgr->restarts(), 0u);  // retries absorb the 25% loss

  // A real crash is still detected and repaired through the same channel.
  env.node.kill(mgr->audit_pid());
  env.scheduler.run_until(140 * sim::kSecond);
  EXPECT_GE(mgr->restarts(), 1u);
  EXPECT_EQ(mgr->restarts_live(), 0u);
  EXPECT_TRUE(env.node.alive(mgr->audit_pid()));
}

// --- satellite: stale-incarnation heartbeat replies ---

TEST(Manager, IgnoresHeartbeatReplyFromPreviousAuditIncarnation) {
  Env env;
  auto mgr = std::make_shared<manager::Manager>(env.audit_factory());
  const auto mgr_pid = env.node.spawn("manager", mgr);

  env.scheduler.run_until(10 * sim::kSecond);
  const std::uint64_t acked_before = mgr->last_acked();
  ASSERT_GT(acked_before, 0u);
  ASSERT_EQ(mgr->audit_epoch(), 1u);

  // A reply from a prior incarnation: right pid, stale epoch tag. It must
  // not count as liveness for the current incarnation. (Its sequence is
  // far ahead of anything the live exchange can reach in this test, so
  // acceptance would be visible in last_acked().)
  sim::Message stale;
  stale.from = mgr->audit_pid();
  stale.type = audit::msg::kHeartbeatReply;
  stale.args = {acked_before + 1000, mgr->audit_epoch() - 1};
  env.node.send(mgr_pid, stale);
  env.scheduler.run_until(11 * sim::kSecond);
  EXPECT_LT(mgr->last_acked(), acked_before + 1000);

  // The same reply tagged with the live epoch IS accepted (sanity check
  // that the filter keys on the epoch, not on the inflated sequence).
  sim::Message fresh = stale;
  fresh.args = {acked_before + 1000, mgr->audit_epoch()};
  env.node.send(mgr_pid, fresh);
  env.scheduler.run_until(12 * sim::kSecond);
  EXPECT_EQ(mgr->last_acked(), acked_before + 1000);
}

// --- acceptance criterion (b): duplicated-manager takeover ---

TEST(DuplicatedManager, StandbyTakesOverAndKeepsAuditCovered) {
  Env env;
  audit::AuditProcessConfig audit_config;
  audit_config.period = sim::kSecond;
  auto pair = manager::spawn_manager_pair(
      env.node, env.audit_factory(audit_config));

  env.scheduler.run_until(5 * sim::kSecond);
  ASSERT_EQ(pair.first->role(), manager::Role::Active);
  ASSERT_EQ(pair.second->role(), manager::Role::Standby);
  const auto audit_pid = pair.first->audit_pid();
  ASSERT_TRUE(env.node.alive(audit_pid));

  // Kill the active manager: the standby must notice the silence and
  // adopt supervision of the SAME audit process (no needless respawn).
  env.node.kill(pair.first_pid);
  env.scheduler.run_until(15 * sim::kSecond);
  EXPECT_EQ(pair.second->role(), manager::Role::Active);
  EXPECT_EQ(pair.second->takeovers(), 1u);
  EXPECT_EQ(pair.second->audit_pid(), audit_pid);
  EXPECT_TRUE(env.node.alive(audit_pid));
  EXPECT_EQ(pair.second->restarts(), 0u);

  // Now the audit dies: the promoted standby restarts it.
  env.node.kill(audit_pid);
  env.scheduler.run_until(25 * sim::kSecond);
  EXPECT_GE(pair.second->restarts(), 1u);
  ASSERT_TRUE(env.node.alive(pair.second->audit_pid()));

  // Zero permanent loss of audit coverage: a fresh corruption is still
  // detected and repaired by the restarted audit.
  const auto ids = db::resolve_controller_ids(env.db->schema());
  const std::size_t at = env.db->layout().field_offset(ids.subscriber, 3, 1);
  env.db->region()[at] ^= std::byte{0x08};
  env.sink.findings.clear();
  env.scheduler.run_until(30 * sim::kSecond);
  ASSERT_FALSE(env.sink.findings.empty());
  EXPECT_EQ(db::load_i32(env.db->region(), at), db::subscriber_auth_key(3));
}

TEST(DuplicatedManager, PairTeardownWithArmedRetryTimersIsClean) {
  // Teardown path for the reliable heartbeat: a blackholed channel leaves
  // the active manager's ReliableSender with armed backoff timers, and
  // the whole world (pair, node, scheduler) is then torn down. Each
  // ~ReliableSender must cancel its outstanding EventIds during ~Node —
  // before the fix the timers stayed queued referencing freed senders
  // (heap-use-after-free under the sanitizer CI job).
  {
    Env env;
    env.node.set_channel_faults({.drop_probability = 1.0, .seed = 3});
    auto pair = manager::spawn_manager_pair(
        env.node, env.audit_factory(reliable_audit_config()),
        reliable_manager_config());
    env.scheduler.run_until(2 * sim::kSecond);
    // Heartbeats went into a black hole: frames are in flight with live
    // retry timers pending in the scheduler.
    EXPECT_GT(pair.first->heartbeats_sent(), 0u);
    EXPECT_EQ(pair.first->last_acked(), 0u);
    EXPECT_GT(env.scheduler.pending_events(), 0u);
    // Also kill both manager processes first — the mixed order (kill,
    // then destroy) is what bench teardown and campaign scopes produce.
    env.node.kill(pair.first_pid);
    env.node.kill(pair.second_pid);
  }
  SUCCEED();
}

TEST(DuplicatedManager, PartitionPromotesStandbyThenTermDemotesOldActive) {
  Env env;
  auto pair = manager::spawn_manager_pair(env.node, env.audit_factory());
  env.scheduler.run_until(2 * sim::kSecond);
  ASSERT_EQ(pair.first->role(), manager::Role::Active);

  // Total partition: every message (peer heartbeats included) is lost.
  env.scheduler.schedule_after(0, [&]() {
    env.node.set_channel_faults({.drop_probability = 1.0, .seed = 5});
  });
  env.scheduler.run_until(10 * sim::kSecond);
  // Both sides now believe they are active (the paper's dual-manager
  // split-brain during a queue outage).
  EXPECT_EQ(pair.second->takeovers(), 1u);
  EXPECT_EQ(pair.first->role(), manager::Role::Active);
  EXPECT_EQ(pair.second->role(), manager::Role::Active);
  EXPECT_GT(pair.second->term(), pair.first->term());

  // Heal the partition: the higher term wins and the old active demotes,
  // converging back to exactly one active manager.
  env.scheduler.schedule_after(0, [&]() { env.node.clear_channel_faults(); });
  env.scheduler.run_until(15 * sim::kSecond);
  EXPECT_EQ(pair.first->role(), manager::Role::Standby);
  EXPECT_EQ(pair.second->role(), manager::Role::Active);
  EXPECT_EQ(pair.first->demotions(), 1u);
}

// --- acceptance criterion (c): element quarantine ---

constexpr std::uint32_t kPoisonMessage = 77;

class CrashyElement final : public audit::AuditElement {
 public:
  [[nodiscard]] std::string_view name() const override { return "crashy"; }
  [[nodiscard]] bool accepts(std::uint32_t type) const override {
    return type == kPoisonMessage;
  }
  void on_message(audit::AuditProcess&, const sim::Message&) override {
    throw std::runtime_error("element bug");
  }
};

TEST(Quarantine, CrashingElementIsDisabledWhileOthersKeepDetecting) {
  Env env;
  audit::AuditProcessConfig config;
  config.period = sim::kSecond;
  config.quarantine_max_faults = 3;
  const auto audit_pid = env.audit_factory(config)();
  env.audit->add_element(std::make_unique<CrashyElement>());

  for (int i = 0; i < 5; ++i) {
    sim::Message poison;
    poison.type = kPoisonMessage;
    env.node.send(audit_pid, poison,
                  static_cast<sim::Duration>(i) *
                      static_cast<sim::Duration>(100 * sim::kMillisecond));
  }
  env.scheduler.run_until(2 * sim::kSecond);

  // The element crashed repeatedly inside the window: quarantined, and
  // the quarantine itself was reported as a finding.
  EXPECT_TRUE(env.audit->element_disabled("crashy"));
  EXPECT_EQ(env.audit->quarantined_count(), 1u);
  EXPECT_EQ(env.audit->element_faults(), 3u);  // disabled after the third
  bool quarantine_reported = false;
  for (const auto& finding : env.sink.findings) {
    quarantine_reported |= finding.recovery == audit::Recovery::DisableElement &&
                           finding.technique == audit::Technique::ElementQuarantine;
  }
  EXPECT_TRUE(quarantine_reported);
  EXPECT_TRUE(env.node.alive(audit_pid));  // the process survived

  // The surviving elements still detect and repair injected corruption.
  const auto ids = db::resolve_controller_ids(env.db->schema());
  const std::size_t at = env.db->layout().field_offset(ids.subscriber, 3, 1);
  env.db->region()[at] ^= std::byte{0x10};
  env.sink.findings.clear();
  env.scheduler.run_until(5 * sim::kSecond);
  ASSERT_FALSE(env.sink.findings.empty());
  EXPECT_EQ(db::load_i32(env.db->region(), at), db::subscriber_auth_key(3));
  EXPECT_FALSE(env.audit->element_disabled("periodic-audit"));
}

TEST(Quarantine, SlowFaultRateOutsideWindowIsTolerated) {
  Env env;
  audit::AuditProcessConfig config;
  config.period = 3600 * static_cast<sim::Duration>(sim::kSecond);
  config.quarantine_max_faults = 3;
  config.quarantine_window = sim::kSecond;
  const auto audit_pid = env.audit_factory(config)();
  env.audit->add_element(std::make_unique<CrashyElement>());

  // One fault every 2 s: never 3 inside any 1 s window.
  for (int i = 0; i < 6; ++i) {
    sim::Message poison;
    poison.type = kPoisonMessage;
    env.node.send(audit_pid, poison,
                  static_cast<sim::Duration>(i) *
                      static_cast<sim::Duration>(2 * sim::kSecond));
  }
  env.scheduler.run_until(20 * sim::kSecond);

  EXPECT_EQ(env.audit->element_faults(), 6u);
  EXPECT_FALSE(env.audit->element_disabled("crashy"));
  EXPECT_EQ(env.audit->quarantined_count(), 0u);
}

}  // namespace
}  // namespace wtc
