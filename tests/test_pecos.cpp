#include <gtest/gtest.h>

#include "db/controller_schema.hpp"
#include "pecos/bssc.hpp"
#include "pecos/monitor.hpp"
#include "pecos/plan.hpp"
#include "vm/builder.hpp"
#include "vm/interp.hpp"

namespace wtc::pecos {
namespace {

TEST(Figure7, ValidTargetsPassInvalidFault) {
  // Two-target branch case from the paper's Figure 7.
  EXPECT_TRUE(figure7_valid(10, {10, 20}));
  EXPECT_TRUE(figure7_valid(20, {10, 20}));
  EXPECT_FALSE(figure7_valid(15, {10, 20}));
  // One target (jump) and many targets (return).
  EXPECT_TRUE(figure7_valid(7, {7}));
  EXPECT_FALSE(figure7_valid(8, {7}));
  EXPECT_TRUE(figure7_valid(5, {1, 2, 3, 4, 5, 6}));
  EXPECT_FALSE(figure7_valid(0, {1, 2, 3, 4, 5, 6}));
  EXPECT_FALSE(figure7_valid(0, {}));
}

vm::Program sample_program() {
  vm::ProgramBuilder b;
  b.loadi(1, 0)                  // 0
      .loadi(2, 3)               // 1
      .label("loop")             // 2
      .bge(1, 2, "end")          // 2: branch
      .addi(1, 1, 1)             // 3
      .call("helper")            // 4: call
      .jmp("loop")               // 5: jump
      .label("end")
      .load_label(8, "helper")   // 6
      .icall(8)                  // 7: indirect call
      .halt();                   // 8
  b.label("helper").nop().ret();  // 9, 10: ret
  return std::move(b).build();
}

TEST(Plan, InstrumentsEveryCfi) {
  const vm::Program program = sample_program();
  const Plan plan = Plan::instrument(program);
  EXPECT_EQ(plan.assertion_count(), 5u);  // bge, call, jmp, icall, ret

  const Assertion* branch = plan.assertion_at(2);
  ASSERT_NE(branch, nullptr);
  EXPECT_EQ(branch->kind, vm::CfiKind::Branch);
  EXPECT_EQ(branch->valid_targets.size(), 2u);

  const Assertion* ret = plan.assertion_at(10);
  ASSERT_NE(ret, nullptr);
  // Valid return points: after the call (5) and after the icall (8).
  EXPECT_EQ(ret->valid_targets, (std::vector<std::uint32_t>{5, 8}));

  const Assertion* icall = plan.assertion_at(7);
  ASSERT_NE(icall, nullptr);
  EXPECT_EQ(icall->icall_reg, 8);
  EXPECT_TRUE(icall->valid_targets.empty());  // runtime-computed

  EXPECT_EQ(plan.assertion_at(0), nullptr);  // non-CFI site
}

class PecosExecTest : public ::testing::Test {
 protected:
  PecosExecTest()
      : db_(db::make_controller_database()),
        api_(*db_, []() { return sim::Time{0}; }) {
    api_.init(1);
  }

  /// Runs thread 0 until terminal (bounded), returns final state.
  vm::ThreadState run(vm::VmProcess& process) {
    sim::Time now = 0;
    for (int i = 0; i < 10'000; ++i) {
      const auto state = process.thread(0).state();
      if (state != vm::ThreadState::Runnable &&
          state != vm::ThreadState::Sleeping) {
        return state;
      }
      now = std::max<sim::Time>(now + 100, process.thread(0).wake_time());
      process.run_quantum(0, now);
    }
    return process.thread(0).state();
  }

  std::unique_ptr<db::Database> db_;
  db::DbApi api_;
};

TEST_F(PecosExecTest, NoFalsePositivesOnCleanRun) {
  const vm::Program program = sample_program();
  const Plan plan = Plan::instrument(program);
  PecosMonitor monitor(plan);
  vm::VmProcess process(program, api_, common::Rng(1), {});
  process.set_monitor(&monitor);
  process.spawn_thread(0);
  EXPECT_EQ(run(process), vm::ThreadState::Halted);
  EXPECT_EQ(monitor.stats().violations, 0u);
  EXPECT_GT(monitor.stats().checks, 5u);
}

TEST_F(PecosExecTest, DetectsCorruptedJumpTargetPreemptively) {
  const vm::Program pristine = sample_program();
  const Plan plan = Plan::instrument(pristine);
  PecosMonitor monitor(plan);
  vm::VmProcess process(pristine, api_, common::Rng(1), {});
  process.set_monitor(&monitor);
  process.spawn_thread(0);

  // Corrupt the jmp at pc 5 to target the middle of the helper (pc 10):
  // still inside the text segment, so no OS trap would fire — only PECOS
  // can catch this before the jump retires.
  vm::Instr jump = vm::decode(process.live_text()[5]);
  ASSERT_EQ(jump.op, vm::Opcode::Jmp);
  jump.imm = 10;
  process.live_text()[5] = vm::encode(jump);

  EXPECT_EQ(run(process), vm::ThreadState::Trapped);
  EXPECT_EQ(process.thread(0).trap(), vm::Trap::PecosViolation);
  EXPECT_GE(monitor.stats().violations, 1u);
}

TEST_F(PecosExecTest, DetectsOpcodeCorruptionOfJump) {
  const vm::Program pristine = sample_program();
  const Plan plan = Plan::instrument(pristine);
  PecosMonitor monitor(plan);
  vm::VmProcess process(pristine, api_, common::Rng(1), {});
  process.set_monitor(&monitor);
  process.spawn_thread(0);

  // Turn the jmp into a nop: control would fall through into "end", which
  // is not a valid successor of the jump site.
  vm::Instr instr = vm::decode(process.live_text()[5]);
  instr.op = vm::Opcode::Nop;
  process.live_text()[5] = vm::encode(instr);

  EXPECT_EQ(run(process), vm::ThreadState::Trapped);
  EXPECT_EQ(process.thread(0).trap(), vm::Trap::PecosViolation);
}

TEST_F(PecosExecTest, DetectsICallRegisterCorruption) {
  const vm::Program pristine = sample_program();
  const Plan plan = Plan::instrument(pristine);
  PecosMonitor monitor(plan);
  vm::VmProcess process(pristine, api_, common::Rng(1), {});
  process.set_monitor(&monitor);
  process.spawn_thread(0);

  // The icall at pc 7 reads r8; corrupt its register operand to r1 (which
  // holds the loop counter, an in-bounds but wrong "address").
  vm::Instr icall = vm::decode(process.live_text()[7]);
  ASSERT_EQ(icall.op, vm::Opcode::ICall);
  icall.ra = 1;
  process.live_text()[7] = vm::encode(icall);

  EXPECT_EQ(run(process), vm::ThreadState::Trapped);
  EXPECT_EQ(process.thread(0).trap(), vm::Trap::PecosViolation);
}

TEST_F(PecosExecTest, EntryCheckCatchesStrayJumpIntoBlockMiddle) {
  // A non-CFI instruction corrupted INTO a jump has no Assertion Block;
  // the next assertion's block-entry shadow flags the divergence.
  vm::ProgramBuilder b;
  b.loadi(1, 0)            // 0 <- corrupted into jmp 4 (middle of block B)
      .beq(1, 1, "b")      // 1: ends block A
      .nop()               // 2
      .label("b")
      .loadi(2, 1)         // 3: block B leader
      .addi(2, 2, 1)       // 4: middle of block B
      .beq(2, 2, "out")    // 5: assertion inside block B
      .nop()               // 6
      .label("out")
      .halt();             // 7
  const vm::Program pristine = std::move(b).build();
  const Plan plan = Plan::instrument(pristine);
  PecosMonitor monitor(plan);
  vm::VmProcess process(pristine, api_, common::Rng(1), {});
  process.set_monitor(&monitor);
  process.spawn_thread(0);

  process.live_text()[0] = vm::encode({vm::Opcode::Jmp, 0, 0, 0, 4});

  const auto state = run(process);
  EXPECT_EQ(state, vm::ThreadState::Trapped);
  EXPECT_EQ(process.thread(0).trap(), vm::Trap::PecosViolation);
}

TEST_F(PecosExecTest, PostCheckDetectsOneInstructionLate) {
  const vm::Program pristine = sample_program();
  const Plan plan = Plan::instrument(pristine);

  // Same corruption as the preemptive test: jmp 5 -> mid-function pc 10.
  const auto corrupt = [&](vm::VmProcess& process) {
    vm::Instr jump = vm::decode(process.live_text()[5]);
    jump.imm = 10;
    process.live_text()[5] = vm::encode(jump);
  };

  PostCheckMonitor post(plan);
  vm::VmProcess process(pristine, api_, common::Rng(1), {});
  process.set_monitor(&post);
  process.spawn_thread(0);
  corrupt(process);
  const auto state = run(process);

  // The post-checker still detects it, but only after the wrong-path
  // instruction executed. Here the wrong path runs nop;ret with a
  // non-empty stack, so detection (not a crash) lands — one instruction
  // late. With PECOS the violation fires at pc 5; with the post checker
  // the thread has already moved past it.
  EXPECT_EQ(state, vm::ThreadState::Trapped);
  EXPECT_EQ(process.thread(0).trap(), vm::Trap::PecosViolation);
  EXPECT_GT(process.thread(0).instructions_retired(), 0u);
}

TEST_F(PecosExecTest, PostCheckLosesToCrashOnWildJump) {
  // A jump corrupted to an out-of-bounds target: PECOS catches it before
  // it retires; the post checker lets it execute and the OS (PC bounds
  // check) crashes the thread first — exactly the preemptive advantage.
  const vm::Program pristine = sample_program();
  const Plan plan = Plan::instrument(pristine);

  {
    PecosMonitor monitor(plan);
    vm::VmProcess process(pristine, api_, common::Rng(1), {});
    process.set_monitor(&monitor);
    process.spawn_thread(0);
    vm::Instr jump = vm::decode(process.live_text()[5]);
    jump.imm = 100'000;
    process.live_text()[5] = vm::encode(jump);
    run(process);
    EXPECT_EQ(process.thread(0).trap(), vm::Trap::PecosViolation);
  }
  {
    PostCheckMonitor monitor(plan);
    vm::VmProcess process(pristine, api_, common::Rng(1), {});
    process.set_monitor(&monitor);
    process.spawn_thread(0);
    vm::Instr jump = vm::decode(process.live_text()[5]);
    jump.imm = 100'000;
    process.live_text()[5] = vm::encode(jump);
    run(process);
    EXPECT_EQ(process.thread(0).trap(), vm::Trap::PcOutOfBounds);
  }
}

TEST(Bssc, GoldenSignaturesCoverEveryBlock) {
  const vm::Program program = sample_program();
  const BsscPlan plan = BsscPlan::instrument(program);
  const vm::Cfg cfg = vm::Cfg::analyze(program);
  EXPECT_EQ(plan.block_count(), cfg.block_count());
  // Signatures are order-sensitive: swapping two words changes them.
  const std::uint64_t a = BsscPlan::combine(BsscPlan::combine(0, 1), 2);
  const std::uint64_t b = BsscPlan::combine(BsscPlan::combine(0, 2), 1);
  EXPECT_NE(a, b);
}

class BsscExecTest : public PecosExecTest {};

TEST_F(BsscExecTest, NoFalsePositivesOnCleanRun) {
  const vm::Program program = sample_program();
  const BsscPlan plan = BsscPlan::instrument(program);
  BsscMonitor monitor(plan);
  vm::VmProcess process(program, api_, common::Rng(1), {});
  process.set_monitor(&monitor);
  process.spawn_thread(0);
  EXPECT_EQ(run(process), vm::ThreadState::Halted);
  EXPECT_EQ(monitor.violations(), 0u);
  EXPECT_GT(monitor.checks(), 5u);
}

TEST_F(BsscExecTest, DetectsInstructionSubstitutionPecosMisses) {
  // Corrupt a NON-CFI instruction's operand: a pure data error. PECOS is
  // blind to it; BSSC's block signature flags it (after the block ran).
  const vm::Program pristine = sample_program();
  const auto corrupt = [](vm::VmProcess& process) {
    vm::Instr instr = vm::decode(process.live_text()[3]);  // addi r1,r1,1
    ASSERT_EQ(instr.op, vm::Opcode::AddI);
    instr.imm = 2;
    process.live_text()[3] = vm::encode(instr);
  };
  {
    const BsscPlan plan = BsscPlan::instrument(pristine);
    BsscMonitor monitor(plan);
    vm::VmProcess process(pristine, api_, common::Rng(1), {});
    process.set_monitor(&monitor);
    process.spawn_thread(0);
    corrupt(process);
    EXPECT_EQ(run(process), vm::ThreadState::Trapped);
    EXPECT_EQ(process.thread(0).trap(), vm::Trap::PecosViolation);
    EXPECT_GE(monitor.violations(), 1u);
  }
  {
    const Plan plan = Plan::instrument(pristine);
    PecosMonitor monitor(plan);
    vm::VmProcess process(pristine, api_, common::Rng(1), {});
    process.set_monitor(&monitor);
    process.spawn_thread(0);
    corrupt(process);
    EXPECT_EQ(run(process), vm::ThreadState::Halted);  // PECOS never notices
    EXPECT_EQ(monitor.stats().violations, 0u);
  }
}

TEST_F(BsscExecTest, DetectionIsNotPreemptive) {
  // The corrupted instruction (and the rest of its block) execute before
  // the signature check fires.
  const vm::Program pristine = sample_program();
  const BsscPlan plan = BsscPlan::instrument(pristine);
  BsscMonitor monitor(plan);
  vm::VmProcess process(pristine, api_, common::Rng(1), {});
  process.set_monitor(&monitor);
  process.spawn_thread(0);
  vm::Instr instr = vm::decode(process.live_text()[3]);
  instr.imm = 100;
  process.live_text()[3] = vm::encode(instr);
  run(process);
  ASSERT_EQ(process.thread(0).trap(), vm::Trap::PecosViolation);
  // r1 already holds the wrong value: the bad add retired before detection.
  EXPECT_EQ(process.thread(0).reg(1), 100);
}

TEST(TrapPolicy, OnlyPecosViolationsAreGraceful) {
  EXPECT_EQ(classify_trap(vm::Trap::PecosViolation), TrapAction::TerminateThread);
  EXPECT_EQ(classify_trap(vm::Trap::IllegalOpcode), TrapAction::CrashProcess);
  EXPECT_EQ(classify_trap(vm::Trap::PcOutOfBounds), TrapAction::CrashProcess);
  EXPECT_EQ(classify_trap(vm::Trap::DivByZero), TrapAction::CrashProcess);
}

}  // namespace
}  // namespace wtc::pecos
