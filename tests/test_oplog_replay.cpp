// Whole-run op-log record/replay: the on-disk format round-trip (and its
// trust-boundary rejections), the deduplicated replay audit, and the
// zero-simulation workload engine's byte-identity.
#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "audit/engine.hpp"
#include "audit/replay.hpp"
#include "db/api.hpp"
#include "db/controller_schema.hpp"
#include "db/run_op_log.hpp"
#include "experiments/audit_runner.hpp"
#include "experiments/campaign.hpp"
#include "experiments/replay_workload.hpp"

namespace wtc {
namespace {

/// A pristine controller DB with an instrumented single-client API and a
/// RunOpLog tee — the replay validity baseline.
struct Fixture {
  std::unique_ptr<db::Database> database = db::make_controller_database();
  db::ControllerIds ids = db::resolve_controller_ids(database->schema());
  db::RunOpLog oplog;
  sim::Time now = 0;
  db::DbApi api{*database, [this]() { return now; }};

  Fixture() {
    api.set_audit_hooks(&oplog);
    api.init(1);
  }

  /// One call lifecycle; `keep` leaves the triple active (and returns the
  /// records through the out params).
  void call(std::int32_t codec, bool keep = false, db::RecordIndex* out_conn = nullptr,
            db::RecordIndex* out_res = nullptr) {
    db::RecordIndex p = 0, c = 0, r = 0;
    ASSERT_EQ(api.alloc_rec(ids.process, db::kGroupActiveCalls, p),
              db::Status::Ok);
    ASSERT_EQ(api.alloc_rec(ids.connection, db::kGroupActiveCalls, c),
              db::Status::Ok);
    ASSERT_EQ(api.alloc_rec(ids.resource, db::kGroupActiveCalls, r),
              db::Status::Ok);
    now += static_cast<sim::Time>(sim::kMillisecond);
    api.write_fld(ids.process, p, ids.p_process_id, db::key_of(p));
    api.write_fld(ids.process, p, ids.p_connection_id, db::key_of(c));
    api.write_fld(ids.connection, c, ids.c_connection_id, db::key_of(c));
    api.write_fld(ids.connection, c, ids.c_channel_id, db::key_of(r));
    api.write_fld(ids.connection, c, ids.c_codec, codec);
    api.write_fld(ids.resource, r, ids.r_channel_id, db::key_of(r));
    api.write_fld(ids.resource, r, ids.r_process_id, db::key_of(p));
    api.move_rec(ids.process, p, db::kGroupStableCalls);
    now += static_cast<sim::Time>(sim::kMillisecond);
    if (keep) {
      if (out_conn != nullptr) *out_conn = c;
      if (out_res != nullptr) *out_res = r;
      return;
    }
    api.free_rec(ids.resource, r);
    api.free_rec(ids.connection, c);
    api.free_rec(ids.process, p);
  }
};

void expect_events_equal(const std::vector<db::ApiEvent>& a,
                         const std::vector<db::ApiEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].op, b[i].op) << "event " << i;
    EXPECT_EQ(a[i].client, b[i].client) << "event " << i;
    EXPECT_EQ(a[i].table, b[i].table) << "event " << i;
    EXPECT_EQ(a[i].record, b[i].record) << "event " << i;
    EXPECT_EQ(a[i].time, b[i].time) << "event " << i;
    EXPECT_EQ(a[i].is_update, b[i].is_update) << "event " << i;
    EXPECT_EQ(a[i].status, b[i].status) << "event " << i;
    EXPECT_EQ(a[i].thread, b[i].thread) << "event " << i;
    EXPECT_EQ(a[i].group, b[i].group) << "event " << i;
    EXPECT_EQ(a[i].field, b[i].field) << "event " << i;
    EXPECT_EQ(a[i].payload_len, b[i].payload_len) << "event " << i;
    for (std::uint8_t f = 0; f < a[i].payload_len; ++f) {
      EXPECT_EQ(a[i].payload[f], b[i].payload[f]) << "event " << i;
    }
  }
}

// --- on-disk format -------------------------------------------------------

TEST(OpLogFormat, InMemoryRoundTrip) {
  Fixture fx;
  for (int call = 0; call < 7; ++call) {
    fx.call(call % 3);
  }
  fx.api.close();
  ASSERT_GT(fx.oplog.recorded(), 0u);

  const std::vector<std::uint8_t> bytes = fx.oplog.serialize();
  const db::OpLogReadResult decoded = db::decode_op_log(bytes);
  ASSERT_TRUE(decoded.ok()) << db::to_string(decoded.error);
  expect_events_equal(fx.oplog.events(), decoded.events);
}

TEST(OpLogFormat, StreamingWriterMatchesSerialize) {
  const std::string path = "test_oplog_stream.oplog";
  Fixture fx;
  // The writer streams events recorded from open_file on — the fixture's
  // DBinit predates it and stays in-memory only.
  ASSERT_TRUE(fx.oplog.open_file(path));
  // Cross several chunk boundaries (chunk_events defaults to 1024).
  for (int call = 0; call < 300; ++call) {
    fx.call(call % 5);
  }
  fx.api.close();
  ASSERT_TRUE(fx.oplog.close_file());

  const db::OpLogReadResult decoded = db::load_op_log(path);
  ASSERT_TRUE(decoded.ok()) << db::to_string(decoded.error);
  const std::vector<db::ApiEvent> streamed(fx.oplog.events().begin() + 1,
                                           fx.oplog.events().end());
  expect_events_equal(streamed, decoded.events);
  std::remove(path.c_str());
}

TEST(OpLogFormat, HeaderOnlyIsEmpty) {
  db::RunOpLog empty;
  const db::OpLogReadResult decoded = db::decode_op_log(empty.serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.events.empty());
}

TEST(OpLogFormat, RejectsBadMagicTruncationAndBadCrc) {
  Fixture fx;
  fx.call(1);
  fx.api.close();
  const std::vector<std::uint8_t> bytes = fx.oplog.serialize();
  ASSERT_GT(bytes.size(), 24u);

  auto bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  EXPECT_EQ(db::decode_op_log(bad_magic).error, db::OpLogError::BadMagic);

  // Truncation anywhere — inside the header, a chunk frame, or the
  // payload — must yield Truncated (or BadMagic for a cut header), and
  // never events from the damaged tail.
  for (const std::size_t keep :
       {bytes.size() - 1, bytes.size() - 5, std::size_t{14}, std::size_t{6}}) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + static_cast<long>(keep));
    const db::OpLogReadResult result = db::decode_op_log(cut);
    EXPECT_FALSE(result.ok()) << "kept " << keep;
    EXPECT_TRUE(result.events.empty()) << "kept " << keep;
  }

  auto bad_crc = bytes;
  bad_crc.back() ^= 0x01;  // last payload byte
  const db::OpLogReadResult result = db::decode_op_log(bad_crc);
  EXPECT_EQ(result.error, db::OpLogError::BadCrc);
  EXPECT_TRUE(result.events.empty());
}

// --- deduplicated replay audit -------------------------------------------

TEST(ReplayAudit, ExecutesEachUniqueChainOnce) {
  Fixture fx;
  // 30 identical call cycles + 2 distinct ones: per table, the identical
  // cycles form one dedup class per lifecycle shape.
  for (int call = 0; call < 30; ++call) {
    fx.call(7);
  }
  fx.call(1);
  fx.call(2);
  fx.api.close();

  audit::ReplayAuditor auditor(*fx.database, audit::ReplayConfig{});
  const audit::ReplayResult result = auditor.run(fx.oplog.events());
  EXPECT_TRUE(result.findings.empty());
  const audit::ReplayStats& s = result.stats;
  // 32 lifecycles on each of 3 tables.
  EXPECT_EQ(s.chains, 96u);
  // process and resource chains don't depend on the codec: 1 unique
  // each; connection has 3 codecs -> 3 uniques.
  EXPECT_EQ(s.unique_chains, 5u);
  EXPECT_GT(s.duplicate_ratio(), 0.30);
  // Each unique chain executed exactly once: the executed-op count is
  // the sum of one representative per class, nothing more.
  EXPECT_LT(s.executed_ops, s.total_ops);
  EXPECT_EQ(s.naive_cost > 0, true);
  EXPECT_LT(s.dedup_cost, s.naive_cost / 3);
}

TEST(ReplayAudit, DetectsSemanticCorruptionStructuralArmsMiss) {
  Fixture fx;
  db::RecordIndex conn = 0, res = 0;
  fx.call(3, true, &conn, &res);
  for (int call = 0; call < 5; ++call) {
    fx.call(call % 2);
  }
  fx.api.close();

  db::Database& db = *fx.database;
  // In-range drift of two unruled dynamic fields, behind the API's back.
  const std::size_t billing_at =
      db.layout().field_offset(fx.ids.connection, conn, fx.ids.c_billing_units);
  const std::size_t quality_at =
      db.layout().field_offset(fx.ids.resource, res, fx.ids.r_link_quality);
  db::store_i32(db.region(), billing_at,
                db::load_i32(db.region(), billing_at) + 1);
  db.mark_written(billing_at, 4);
  db::store_i32(db.region(), quality_at,
                db::load_i32(db.region(), quality_at) + 1);
  db.mark_written(quality_at, 4);

  // The structural arms see nothing: headers intact, no range rule, FK
  // loop unbroken, no static data touched.
  audit::EngineConfig config;
  sim::Time audit_now = 60 * sim::kSecond;
  audit::AuditEngine engine(db, config, [&audit_now]() { return audit_now; });
  std::uint64_t structural = engine.check_static().findings;
  for (db::TableId t = 0;
       t < static_cast<db::TableId>(db.schema().tables.size()); ++t) {
    structural += engine.check_structure(t).findings;
    structural += engine.check_ranges(t).findings;
  }
  structural += engine.check_semantics().findings;
  EXPECT_EQ(structural, 0u);

  // The replay audit flags exactly the two corrupted words.
  audit::ReplayAuditor auditor(db, audit::ReplayConfig{});
  const audit::ReplayResult result = auditor.run(fx.oplog.events());
  EXPECT_EQ(result.stats.mismatched_words, 2u);
  ASSERT_EQ(result.findings.size(), 2u);
  bool billing_found = false, quality_found = false;
  for (const audit::Finding& f : result.findings) {
    EXPECT_EQ(f.technique, audit::Technique::ReplayCheck);
    if (f.offset == billing_at) billing_found = true;
    if (f.offset == quality_at) quality_found = true;
  }
  EXPECT_TRUE(billing_found);
  EXPECT_TRUE(quality_found);
}

TEST(ReplayAudit, CleanRunHasNoFalseMismatches) {
  Fixture fx;
  for (int call = 0; call < 12; ++call) {
    db::RecordIndex conn = 0, res = 0;
    fx.call(call % 4, call % 3 == 0, &conn, &res);
  }
  fx.api.close();
  audit::ReplayAuditor auditor(*fx.database, audit::ReplayConfig{});
  const audit::ReplayResult result = auditor.run(fx.oplog.events());
  EXPECT_TRUE(result.findings.empty());
  EXPECT_EQ(result.stats.mismatched_words, 0u);
}

TEST(ReplayAudit, BitIdenticalAtAnyThreadCount) {
  Fixture fx;
  db::RecordIndex conn = 0;
  for (int call = 0; call < 20; ++call) {
    fx.call(call % 6, call == 4, &conn, nullptr);
  }
  fx.api.close();
  // One corruption so findings are non-trivial in every arm.
  db::Database& db = *fx.database;
  const std::size_t at =
      db.layout().field_offset(fx.ids.connection, conn, fx.ids.c_billing_units);
  db::store_i32(db.region(), at, db::load_i32(db.region(), at) ^ 0x55);
  db.mark_written(at, 4);

  std::vector<audit::ReplayResult> results;
  for (const std::size_t threads : {1u, 2u, 3u, 8u}) {
    audit::ReplayConfig config;
    config.replay_threads = threads;
    config.compare_grain_bytes = 256;  // many slices even on a small region
    audit::ReplayAuditor auditor(db, config);
    results.push_back(auditor.run(fx.oplog.events()));
  }
  const audit::ReplayResult& base = results.front();
  ASSERT_FALSE(base.findings.empty());
  for (const audit::ReplayResult& r : results) {
    ASSERT_EQ(r.findings.size(), base.findings.size());
    for (std::size_t i = 0; i < r.findings.size(); ++i) {
      EXPECT_EQ(r.findings[i].offset, base.findings[i].offset);
      EXPECT_EQ(r.findings[i].length, base.findings[i].length);
      EXPECT_EQ(r.findings[i].table, base.findings[i].table);
      EXPECT_EQ(r.findings[i].record, base.findings[i].record);
      EXPECT_EQ(r.findings[i].field, base.findings[i].field);
    }
    EXPECT_EQ(r.stats.chains, base.stats.chains);
    EXPECT_EQ(r.stats.unique_chains, base.stats.unique_chains);
    EXPECT_EQ(r.stats.executed_ops, base.stats.executed_ops);
    EXPECT_EQ(r.stats.mismatched_words, base.stats.mismatched_words);
    EXPECT_EQ(r.stats.naive_cost, base.stats.naive_cost);
    EXPECT_EQ(r.stats.dedup_cost, base.stats.dedup_cost);
  }
}

// --- zero-simulation workload engine --------------------------------------

TEST(ReplayWorkload, ByteIdenticalToRecordingRun) {
  const std::string path = "test_oplog_record.oplog";
  experiments::AuditRunParams params;
  params.duration = 120 * static_cast<sim::Duration>(sim::kSecond);
  params.injections_enabled = false;  // clean: region log-explainable
  params.capture_final_region = true;
  params.record_oplog_path = path;
  params.seed = 0x5EED;

  const auto recorded = experiments::run_audit_experiment(params);
  ASSERT_GT(recorded.oplog_recorded, 0u);
  ASSERT_FALSE(recorded.final_region.empty());

  auto replay_params = params;
  replay_params.record_oplog_path.clear();
  replay_params.replay_oplog_path = path;
  const auto replayed = experiments::run_audit_experiment(replay_params);
  EXPECT_EQ(replayed.replay_divergences, 0u);
  EXPECT_GT(replayed.replay_applied, 0u);
  EXPECT_EQ(recorded.final_region, replayed.final_region);
  std::remove(path.c_str());
}

TEST(ReplayWorkload, DeterministicAcrossCampaignJobs) {
  const std::string path = "test_oplog_jobs.oplog";
  experiments::AuditRunParams params;
  params.duration = 60 * static_cast<sim::Duration>(sim::kSecond);
  params.injections_enabled = false;
  params.capture_final_region = true;
  params.record_oplog_path = path;
  params.seed = 0x10B5;
  const auto recorded = experiments::run_audit_experiment(params);
  ASSERT_GT(recorded.oplog_recorded, 0u);

  auto replay_params = params;
  replay_params.record_oplog_path.clear();
  replay_params.replay_oplog_path = path;

  std::vector<std::vector<std::vector<std::byte>>> regions;
  for (const std::size_t jobs : {1u, 3u}) {
    experiments::CampaignOptions options;
    options.jobs = jobs;
    options.stderr_progress = 0;
    regions.push_back(experiments::run_campaign(
        4,
        [&](std::size_t) {
          return experiments::run_audit_experiment(replay_params).final_region;
        },
        options));
  }
  ASSERT_EQ(regions[0].size(), regions[1].size());
  for (std::size_t i = 0; i < regions[0].size(); ++i) {
    EXPECT_EQ(regions[0][i], regions[1][i]) << "run " << i;
    EXPECT_EQ(regions[0][i], recorded.final_region) << "run " << i;
  }
  std::remove(path.c_str());
}

// --- replay audit element wiring ------------------------------------------

TEST(ReplayAuditElement, RunsCleanInsideTheAuditProcess) {
  experiments::AuditRunParams params;
  params.duration = 200 * static_cast<sim::Duration>(sim::kSecond);
  params.injections_enabled = false;
  params.audit.replay_audit = true;
  params.seed = 0xE1E;
  const auto result = experiments::run_audit_experiment(params);
  EXPECT_GT(result.replay_runs, 0u);
  EXPECT_EQ(result.replay.mismatched_words, 0u);
  EXPECT_GT(result.replay.total_ops, 0u);
}

}  // namespace
}  // namespace wtc
