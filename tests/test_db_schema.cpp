#include <gtest/gtest.h>

#include "db/schema.hpp"

namespace wtc::db {
namespace {

TEST(SchemaBuilder, BuildsTablesAndFields) {
  SchemaBuilder b;
  b.table("A", 10).ranged("x", 0, 5, 2).unruled("y");
  b.table("B", 20, /*dynamic=*/false).static_field("z", 42);
  const Schema schema = std::move(b).build();

  ASSERT_EQ(schema.tables.size(), 2u);
  EXPECT_EQ(schema.tables[0].name, "A");
  EXPECT_TRUE(schema.tables[0].dynamic);
  EXPECT_EQ(schema.tables[0].num_records, 10u);
  ASSERT_EQ(schema.tables[0].fields.size(), 2u);
  EXPECT_TRUE(schema.tables[0].fields[0].has_range());
  EXPECT_EQ(schema.tables[0].fields[0].default_value, 2);
  EXPECT_FALSE(schema.tables[0].fields[1].has_range());
  EXPECT_EQ(schema.tables[1].fields[0].kind, DataKind::Static);
  EXPECT_EQ(schema.tables[1].fields[0].default_value, 42);
}

TEST(SchemaBuilder, ResolvesForwardForeignKeys) {
  SchemaBuilder b;
  b.table("First", 4).primary_key("id").foreign_key("other", "Second");
  b.table("Second", 4).primary_key("id").foreign_key("back", "First");
  const Schema schema = std::move(b).build();
  EXPECT_EQ(schema.tables[0].fields[1].ref_table, 1);
  EXPECT_EQ(schema.tables[1].fields[1].ref_table, 0);
  EXPECT_EQ(schema.tables[0].fields[1].role, FieldRole::ForeignKey);
}

TEST(SchemaBuilder, LookupHelpers) {
  SchemaBuilder b;
  b.table("T", 1).unruled("a").unruled("b");
  const Schema schema = std::move(b).build();
  EXPECT_EQ(schema.table_id("T"), 0);
  EXPECT_EQ(schema.field_id(0, "b"), 1);
  EXPECT_THROW((void)schema.table_id("missing"), std::out_of_range);
  EXPECT_THROW((void)schema.field_id(0, "missing"), std::out_of_range);
}

TEST(SchemaBuilder, RejectsInvalidConstructs) {
  {
    SchemaBuilder b;
    EXPECT_THROW(b.unruled("orphan"), std::logic_error);  // field before table
  }
  {
    SchemaBuilder b;
    b.table("Empty", 5);  // no fields
    EXPECT_THROW(std::move(b).build(), std::logic_error);
  }
  {
    SchemaBuilder b;
    b.table("T", 1).foreign_key("fk", "Nowhere");
    EXPECT_THROW(std::move(b).build(), std::out_of_range);
  }
}

TEST(Schema, TableWithZeroRecordsRejected) {
  SchemaBuilder b;
  b.table("Zero", 0).unruled("x");
  EXPECT_THROW(std::move(b).build(), std::logic_error);
}

}  // namespace
}  // namespace wtc::db
