#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "common/crc32.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table_printer.hpp"

namespace wtc::common {
namespace {

std::span<const std::byte> as_bytes(const char* text) {
  return {reinterpret_cast<const std::byte*>(text), std::strlen(text)};
}

TEST(Crc32, KnownVectors) {
  // Standard CRC-32/IEEE test vector.
  EXPECT_EQ(crc32(as_bytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(as_bytes("")), 0x00000000u);
  EXPECT_EQ(crc32(as_bytes("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32, ChunkingInvariance) {
  const char* text = "wireless telephone network controller";
  Crc32 whole;
  whole.update(as_bytes(text));

  Crc32 chunked;
  const auto bytes = as_bytes(text);
  chunked.update(bytes.subspan(0, 7));
  chunked.update(bytes.subspan(7, 11));
  chunked.update(bytes.subspan(18));
  EXPECT_EQ(whole.value(), chunked.value());
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<std::byte> data(64);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 7);
  }
  const std::uint32_t golden = crc32(data);
  for (std::size_t byte = 0; byte < data.size(); byte += 13) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<std::byte>(1 << bit);
      EXPECT_NE(crc32(data), golden) << "byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<std::byte>(1 << bit);
    }
  }
  EXPECT_EQ(crc32(data), golden);
}

TEST(Rng, DeterministicBySeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) {
    if (a2.next() != c.next()) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 33}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform(bound), bound);
    }
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.uniform(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(5);
  bool low = false, high = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    low |= v == -3;
    high |= v == 3;
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(high);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.exponential(10.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kSamples, 10.0, 0.5);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(99);
  Rng child = parent.fork(1);
  Rng child2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next() == child2.next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Stats, BinomialCi95MatchesPaperInterval) {
  // 46% of 328 activated errors: the paper reports (40, 51). The Wilson
  // interval lands at (40.7, 51.4) — within a rounding step of the
  // paper's normal-approximation numbers at this sample size.
  const auto ci = binomial_ci95(151, 328);
  EXPECT_NEAR(ci.lo, 40.7, 0.5);
  EXPECT_NEAR(ci.hi, 51.4, 0.5);
}

TEST(Stats, BinomialCiEdgeCases) {
  EXPECT_EQ(binomial_ci95(0, 0).lo, 0.0);
  EXPECT_EQ(binomial_ci95(0, 0).hi, 0.0);
  const auto all = binomial_ci95(50, 50);
  EXPECT_EQ(all.hi, 100.0);
  const auto none = binomial_ci95(0, 50);
  EXPECT_EQ(none.lo, 0.0);
}

TEST(Stats, BinomialCiNondegenerateAtBoundaries) {
  // The Wald interval is zero-width at 0/N and N/N — "0 of 50 detected,
  // CI (0, 0)" misreports certainty. Wilson keeps real width there.
  const auto none = binomial_ci95(0, 50);
  EXPECT_GT(none.hi, 0.0);
  EXPECT_LT(none.hi, 15.0);  // ~7.1 for N=50
  const auto all = binomial_ci95(50, 50);
  EXPECT_LT(all.lo, 100.0);
  EXPECT_GT(all.lo, 85.0);  // ~92.9 for N=50
}

TEST(Stats, FormatPercentCiBoundaryGolden) {
  // 20/20 under Wald printed "100% (100, 100)"; Wilson spreads the lower
  // bound to ~84%.
  EXPECT_EQ(format_percent_ci(20, 20), "100% (84, 100)");
}

TEST(Stats, PercentFormatting) {
  EXPECT_EQ(percent(63, 100), 63.0);
  EXPECT_EQ(percent(0, 0), 0.0);
  EXPECT_EQ(format_count_or_percent(3, 800), "3");
  const auto formatted = format_count_or_percent(400, 800);
  EXPECT_NE(formatted.find("50%"), std::string::npos);
}

TEST(Stats, RunningStatsWelford) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(Stats, ValueHistogramSuspects) {
  ValueHistogram h;
  for (int i = 0; i < 40; ++i) {
    h.add(7);
  }
  h.add(1234);  // single outlier
  EXPECT_EQ(h.total(), 41u);
  EXPECT_EQ(h.distinct(), 2u);
  const auto suspects = h.suspects(0.3);
  ASSERT_EQ(suspects.size(), 1u);
  EXPECT_EQ(suspects[0], 1234);
  EXPECT_EQ(h.count_of(7), 40u);
}

TEST(Stats, ValueHistogramFlatDistributionHasNoSuspects) {
  ValueHistogram h;
  for (int i = 0; i < 50; ++i) {
    h.add(i);  // all values distinct: mean occurrence 1
  }
  EXPECT_TRUE(h.suspects(0.3).empty());
}

TEST(Log, LevelsFilterAndFormat) {
  const auto previous = log_level();
  set_log_level(LogLevel::Error);
  log(LogLevel::Debug, "test", "dropped ", 42);       // below threshold
  log(LogLevel::Error, "test", "kept ", 1, " and ", 2.5);  // stderr, no crash
  set_log_level(LogLevel::Off);
  log(LogLevel::Error, "test", "also dropped");
  set_log_level(previous);
  SUCCEED();
}

TEST(TablePrinter, ToleratesRaggedRows) {
  TablePrinter table({"A", "B", "C"});
  table.add_row({"1"});                      // short row
  table.add_row({"1", "2", "3", "extra"});   // long row grows the table
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("extra"), std::string::npos);
  EXPECT_NE(rendered.find("1"), std::string::npos);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table({"Category", "Without", "With"});
  table.add_row({"Escaped", "1884 (63%)", "402 (13%)"});
  table.add_row({"Caught", "N/A", "2543 (85%)"});
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("Escaped"), std::string::npos);
  EXPECT_NE(rendered.find("2543 (85%)"), std::string::npos);
  // Every line has the same column separators.
  EXPECT_NE(rendered.find("-+-"), std::string::npos);
}

TEST(TablePrinter, FmtDigits) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(69.0, 0), "69");
}

}  // namespace
}  // namespace wtc::common
