#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string_view>

#include "db/controller_schema.hpp"
#include "db/disk.hpp"

namespace wtc::db {
namespace {

class DiskTest : public ::testing::Test {
 protected:
  DiskTest() {
    path_ = std::filesystem::temp_directory_path() /
            ("wtc_disk_test_" + std::to_string(::getpid()) + ".img");
  }
  ~DiskTest() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }

  /// XORs `mask` into the byte at `offset` of the on-disk image.
  void flip_byte(std::streamoff offset, int mask) {
    std::fstream file(path_, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file);
    char byte = 0;
    file.seekg(offset);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ mask);
    file.seekp(offset);
    file.write(&byte, 1);
    ASSERT_TRUE(file.good());
  }

  std::filesystem::path path_;
};

TEST_F(DiskTest, SaveVerifyLoadRoundTrip) {
  auto db = make_controller_database();
  ASSERT_TRUE(save_image(*db, path_));
  ASSERT_TRUE(verify_image(path_));

  // Damage the live region thoroughly, then boot from permanent storage.
  for (std::size_t i = 0; i < db->region().size(); i += 3) {
    db->region()[i] ^= std::byte{0x5A};
  }
  const auto loaded = load_image(*db, path_);
  ASSERT_TRUE(loaded) << loaded.error;
  EXPECT_TRUE(std::equal(db->region().begin(), db->region().end(),
                         db->pristine().begin()));
  EXPECT_TRUE(CatalogView(db->region()).header_ok());
}

TEST_F(DiskTest, LoadIntoFreshDatabaseOfSameSchema) {
  auto original = make_controller_database();
  ASSERT_TRUE(save_image(*original, path_));

  auto fresh = make_controller_database();
  const auto loaded = load_image(*fresh, path_);
  ASSERT_TRUE(loaded) << loaded.error;
  EXPECT_TRUE(std::equal(fresh->pristine().begin(), fresh->pristine().end(),
                         original->pristine().begin()));
}

TEST_F(DiskTest, RejectsMissingFile) {
  auto db = make_controller_database();
  EXPECT_FALSE(load_image(*db, path_));
  EXPECT_FALSE(verify_image(path_));
}

TEST_F(DiskTest, RejectsCorruptedImage) {
  auto db = make_controller_database();
  ASSERT_TRUE(save_image(*db, path_));

  // Flip one payload byte on "disk": the checksum must catch it.
  {
    std::fstream file(path_, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(40);
    char byte = 0;
    file.seekg(40);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    file.seekp(40);
    file.write(&byte, 1);
  }
  const auto verified = verify_image(path_);
  EXPECT_FALSE(verified);
  EXPECT_NE(verified.error.find("checksum"), std::string::npos);

  // The database must be left untouched by the failed load.
  const std::vector<std::byte> before(db->region().begin(), db->region().end());
  EXPECT_FALSE(load_image(*db, path_));
  EXPECT_TRUE(std::equal(db->region().begin(), db->region().end(), before.begin()));
}

TEST_F(DiskTest, RejectsWrongSchema) {
  auto original = make_controller_database();
  ASSERT_TRUE(save_image(*original, path_));

  // A database with a different layout cannot boot this image.
  Database other(make_bench_schema());
  const auto loaded = load_image(other, path_);
  EXPECT_FALSE(loaded);
}

TEST_F(DiskTest, EveryRejectionPathLeavesLiveRegionUntouched) {
  auto db = make_controller_database();
  ASSERT_TRUE(save_image(*db, path_));
  const auto image_size = std::filesystem::file_size(path_);

  // Pre-damage the live region so a partial install would be visible as
  // either a repair or fresh damage.
  for (std::size_t i = 0; i < db->region().size(); i += 7) {
    db->region()[i] ^= std::byte{0xA5};
  }
  const std::vector<std::byte> damaged(db->region().begin(),
                                       db->region().end());

  const auto expect_rejected = [&](std::string_view label,
                                   std::string_view error_needle) {
    const auto loaded = load_image(*db, path_);
    EXPECT_FALSE(loaded) << label;
    EXPECT_NE(loaded.error.find(error_needle), std::string::npos)
        << label << ": " << loaded.error;
    EXPECT_TRUE(std::equal(db->region().begin(), db->region().end(),
                           damaged.begin()))
        << label << " modified the live region";
  };

  // (1) Truncated mid-payload: header parses but the payload is short.
  std::filesystem::resize_file(path_, image_size / 2);
  expect_rejected("truncated payload", "size mismatch");

  // (1b) Truncated inside the header itself.
  std::filesystem::resize_file(path_, 8);
  expect_rejected("truncated header", "truncated");

  // (2) Wrong magic: flip a bit in the first byte of a valid image.
  ASSERT_TRUE(save_image(*db, path_));
  flip_byte(0, 0x01);
  expect_rejected("wrong magic", "not a database image");

  // (3) CRC: flip one payload bit of a valid image.
  ASSERT_TRUE(save_image(*db, path_));
  flip_byte(24, 0x40);
  expect_rejected("flipped payload bit", "checksum");

  // Control: the intact image loads, and only then does the region change.
  ASSERT_TRUE(save_image(*db, path_));
  ASSERT_TRUE(load_image(*db, path_));
  EXPECT_FALSE(std::equal(db->region().begin(), db->region().end(),
                          damaged.begin()));
  EXPECT_TRUE(std::equal(db->region().begin(), db->region().end(),
                         db->pristine().begin()));
}

TEST_F(DiskTest, RejectsTruncatedAndForeignFiles) {
  {
    std::ofstream file(path_, std::ios::binary | std::ios::trunc);
    file << "hi";
  }
  EXPECT_FALSE(verify_image(path_));
  {
    std::ofstream file(path_, std::ios::binary | std::ios::trunc);
    file << "this is definitely not a database image, just prose long enough";
  }
  EXPECT_FALSE(verify_image(path_));
}

}  // namespace
}  // namespace wtc::db
