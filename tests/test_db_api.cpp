#include <gtest/gtest.h>

#include <vector>

#include "db/api.hpp"
#include "db/controller_schema.hpp"
#include "db/direct.hpp"

namespace wtc::db {
namespace {

class CountingSink : public NotificationSink {
 public:
  void on_api_event(const ApiEvent& event) override { events.push_back(event); }
  std::vector<ApiEvent> events;
};

class ApiTest : public ::testing::Test {
 protected:
  ApiTest()
      : db_(make_controller_database()),
        ids_(resolve_controller_ids(db_->schema())),
        api_(*db_, [this]() { return now_; }) {
    api_.init(100);
  }

  std::unique_ptr<Database> db_;
  ControllerIds ids_;
  DbApi api_;
  sim::Time now_ = 0;
};

TEST_F(ApiTest, AllocWriteReadFreeRoundTrip) {
  RecordIndex r = 0;
  ASSERT_EQ(api_.alloc_rec(ids_.process, kGroupActiveCalls, r), Status::Ok);

  ASSERT_EQ(api_.write_fld(ids_.process, r, ids_.p_status, 2), Status::Ok);
  std::int32_t value = -1;
  ASSERT_EQ(api_.read_fld(ids_.process, r, ids_.p_status, value), Status::Ok);
  EXPECT_EQ(value, 2);

  // Whole-record write/read.
  const std::int32_t rec[] = {5, 6, 1, 3, 77};
  ASSERT_EQ(api_.write_rec(ids_.process, r, rec), Status::Ok);
  std::int32_t out[5] = {};
  ASSERT_EQ(api_.read_rec(ids_.process, r, out), Status::Ok);
  EXPECT_EQ(out[0], 5);
  EXPECT_EQ(out[4], 77);

  ASSERT_EQ(api_.free_rec(ids_.process, r), Status::Ok);
  EXPECT_EQ(api_.read_fld(ids_.process, r, ids_.p_status, value),
            Status::RecordNotActive);
}

TEST_F(ApiTest, AllocInitializesFieldsToCatalogDefaults) {
  RecordIndex r = 0;
  ASSERT_EQ(api_.alloc_rec(ids_.resource, kGroupActiveCalls, r), Status::Ok);
  std::int32_t power = -1;
  ASSERT_EQ(api_.read_fld(ids_.resource, r, ids_.r_power_level, power), Status::Ok);
  EXPECT_EQ(power, 50);  // catalog default from the schema
}

TEST_F(ApiTest, AllocExhaustionReturnsNoFreeRecord) {
  const auto total = db_->schema().tables[ids_.process].num_records;
  RecordIndex r = 0;
  for (RecordIndex i = 0; i < total; ++i) {
    ASSERT_EQ(api_.alloc_rec(ids_.process, kGroupActiveCalls, r), Status::Ok);
  }
  EXPECT_EQ(api_.alloc_rec(ids_.process, kGroupActiveCalls, r),
            Status::NoFreeRecord);
}

TEST_F(ApiTest, MoveRelinksGroups) {
  RecordIndex a = 0, b = 0, c = 0;
  ASSERT_EQ(api_.alloc_rec(ids_.connection, kGroupActiveCalls, a), Status::Ok);
  ASSERT_EQ(api_.alloc_rec(ids_.connection, kGroupActiveCalls, b), Status::Ok);
  ASSERT_EQ(api_.alloc_rec(ids_.connection, kGroupActiveCalls, c), Status::Ok);
  ASSERT_EQ(api_.move_rec(ids_.connection, b, kGroupStableCalls), Status::Ok);

  const auto ha = direct::read_header(*db_, ids_.connection, a);
  const auto hb = direct::read_header(*db_, ids_.connection, b);
  const auto hc = direct::read_header(*db_, ids_.connection, c);
  EXPECT_EQ(ha.group, kGroupActiveCalls);
  EXPECT_EQ(hb.group, kGroupStableCalls);
  EXPECT_EQ(hc.group, kGroupActiveCalls);
  // Chain invariant: a's next in its group skips b and reaches c.
  EXPECT_EQ(ha.next, c);
  EXPECT_EQ(hb.next, kNilLink);
}

TEST_F(ApiTest, MoveRejectsBadGroup) {
  RecordIndex r = 0;
  ASSERT_EQ(api_.alloc_rec(ids_.connection, kGroupActiveCalls, r), Status::Ok);
  EXPECT_EQ(api_.move_rec(ids_.connection, r, kMaxGroups), Status::BadGroup);
  EXPECT_EQ(api_.alloc_rec(ids_.connection, 0, r), Status::BadGroup);
}

TEST_F(ApiTest, BoundsChecking) {
  std::int32_t v = 0;
  EXPECT_EQ(api_.read_fld(999, 0, 0, v), Status::NoSuchTable);
  EXPECT_EQ(api_.read_fld(ids_.process, 9999, 0, v), Status::NoSuchRecord);
  RecordIndex r = 0;
  ASSERT_EQ(api_.alloc_rec(ids_.process, kGroupActiveCalls, r), Status::Ok);
  EXPECT_EQ(api_.read_fld(ids_.process, r, 99, v), Status::NoSuchField);
  EXPECT_EQ(api_.write_fld(ids_.process, r, 99, 1), Status::NoSuchField);
}

TEST_F(ApiTest, RequiresConnection) {
  DbApi fresh(*db_, []() { return sim::Time{0}; });
  std::int32_t v = 0;
  EXPECT_EQ(fresh.read_fld(ids_.process, 0, 0, v), Status::NotConnected);
  EXPECT_EQ(fresh.close(), Status::NotConnected);
}

TEST_F(ApiTest, TransactionsBlockOtherClients) {
  DbApi other(*db_, [this]() { return now_; });
  other.init(200);

  ASSERT_EQ(api_.txn_begin(ids_.process), Status::Ok);
  RecordIndex r = 0;
  EXPECT_EQ(other.alloc_rec(ids_.process, kGroupActiveCalls, r), Status::Locked);
  EXPECT_EQ(other.txn_begin(ids_.process), Status::Locked);
  // The lock owner proceeds.
  EXPECT_EQ(api_.alloc_rec(ids_.process, kGroupActiveCalls, r), Status::Ok);
  ASSERT_EQ(api_.txn_end(ids_.process), Status::Ok);
  EXPECT_EQ(other.alloc_rec(ids_.process, kGroupActiveCalls, r), Status::Ok);
}

TEST_F(ApiTest, CloseReleasesLocks) {
  ASSERT_EQ(api_.txn_begin(ids_.process), Status::Ok);
  ASSERT_EQ(api_.close(), Status::Ok);
  EXPECT_FALSE(db_->lock_info(ids_.process).has_value());
}

TEST_F(ApiTest, CatalogCorruptionFailsOperations) {
  db_->region()[0] ^= std::byte{0xFF};  // smash the catalog magic
  std::int32_t v = 0;
  EXPECT_EQ(api_.read_fld(ids_.process, 0, 0, v), Status::CatalogCorrupt);
  RecordIndex r = 0;
  EXPECT_EQ(api_.alloc_rec(ids_.process, kGroupActiveCalls, r),
            Status::CatalogCorrupt);
  EXPECT_EQ(api_.txn_begin(ids_.process), Status::CatalogCorrupt);

  db_->reload_catalog_from_disk();
  EXPECT_EQ(api_.alloc_rec(ids_.process, kGroupActiveCalls, r), Status::Ok);
}

TEST_F(ApiTest, InstrumentedApiNotifiesAndTracksMetadata) {
  CountingSink sink;
  api_.set_audit_hooks(&sink);
  api_.set_thread_id(7);
  now_ = 12345;

  RecordIndex r = 0;
  ASSERT_EQ(api_.alloc_rec(ids_.process, kGroupActiveCalls, r), Status::Ok);
  ASSERT_EQ(api_.write_fld(ids_.process, r, ids_.p_status, 1), Status::Ok);
  std::int32_t v = 0;
  ASSERT_EQ(api_.read_fld(ids_.process, r, ids_.p_status, v), Status::Ok);

  // Update-class ops post IPC events (alloc + write); reads feed the
  // access statistics only.
  ASSERT_EQ(sink.events.size(), 2u);
  EXPECT_EQ(sink.events[0].op, ApiOp::Alloc);
  EXPECT_TRUE(sink.events[0].is_update);
  EXPECT_EQ(sink.events[1].op, ApiOp::WriteFld);
  EXPECT_TRUE(sink.events[1].is_update);
  EXPECT_EQ(sink.events[1].client, 100u);
  // The write event carries the written field's value.
  EXPECT_EQ(sink.events[1].payload_len, 1);
  EXPECT_EQ(sink.events[1].payload[0], 1);

  const auto& meta = db_->record_meta(ids_.process, r);
  EXPECT_EQ(meta.last_writer, 100u);
  EXPECT_EQ(meta.last_writer_thread, 7u);
  EXPECT_EQ(meta.last_access, 12345u);
  EXPECT_GE(meta.access_count, 3u);

  const auto& stats = db_->table_stats(ids_.process);
  EXPECT_EQ(stats.writes, 2u);  // alloc + write_fld
  EXPECT_EQ(stats.reads, 1u);
}

TEST_F(ApiTest, UninstrumentedApiKeepsNoMetadata) {
  RecordIndex r = 0;
  ASSERT_EQ(api_.alloc_rec(ids_.process, kGroupActiveCalls, r), Status::Ok);
  EXPECT_EQ(db_->record_meta(ids_.process, r).last_writer, sim::kNoProcess);
  EXPECT_EQ(db_->table_stats(ids_.process).writes, 0u);
}

class RecordingObserver : public RegionObserver {
 public:
  void on_legitimate_write(std::size_t offset, std::size_t len) override {
    writes.emplace_back(offset, len);
  }
  void on_client_read(sim::ProcessId, std::size_t offset, std::size_t len) override {
    reads.emplace_back(offset, len);
  }
  std::vector<std::pair<std::size_t, std::size_t>> writes;
  std::vector<std::pair<std::size_t, std::size_t>> reads;
};

TEST_F(ApiTest, ObserverSeesReadsAndWrites) {
  RecordingObserver observer;
  db_->set_observer(&observer);
  RecordIndex r = 0;
  ASSERT_EQ(api_.alloc_rec(ids_.process, kGroupActiveCalls, r), Status::Ok);
  const std::size_t writes_after_alloc = observer.writes.size();
  EXPECT_GT(writes_after_alloc, 0u);

  ASSERT_EQ(api_.write_fld(ids_.process, r, ids_.p_status, 1), Status::Ok);
  EXPECT_EQ(observer.writes.back().first,
            db_->layout().field_offset(ids_.process, r, ids_.p_status));
  EXPECT_EQ(observer.writes.back().second, 4u);

  std::int32_t v = 0;
  const std::size_t reads_before = observer.reads.size();
  ASSERT_EQ(api_.read_fld(ids_.process, r, ids_.p_status, v), Status::Ok);
  // A field read reports both the status-word consultation and the field
  // bytes themselves.
  ASSERT_EQ(observer.reads.size(), reads_before + 2);
  EXPECT_EQ(observer.reads.back().first,
            db_->layout().field_offset(ids_.process, r, ids_.p_status));
  EXPECT_EQ(observer.reads.back().second, 4u);
}

TEST_F(ApiTest, ApiCostsShapedLikeFigure4) {
  // Instrumented costs exceed originals, and DBwrite_rec pays the largest
  // relative overhead while DBinit pays the least (Figure 4).
  double max_ratio = 0.0, min_ratio = 1e9;
  ApiOp max_op = ApiOp::Init, min_op = ApiOp::Init;
  for (const ApiOp op : {ApiOp::Init, ApiOp::Close, ApiOp::ReadRec, ApiOp::ReadFld,
                         ApiOp::WriteRec, ApiOp::WriteFld, ApiOp::Move}) {
    const auto original = api_cost(op, false);
    const auto modified = api_cost(op, true);
    EXPECT_GT(modified, original);
    const double ratio = static_cast<double>(modified) / static_cast<double>(original);
    if (ratio > max_ratio) {
      max_ratio = ratio;
      max_op = op;
    }
    if (ratio < min_ratio) {
      min_ratio = ratio;
      min_op = op;
    }
  }
  EXPECT_EQ(max_op, ApiOp::WriteRec);
  EXPECT_EQ(min_op, ApiOp::Init);
}

TEST(Direct, FreeRecordResetsAndRelinks) {
  auto db = make_controller_database();
  const auto ids = resolve_controller_ids(db->schema());
  DbApi api(*db, []() { return sim::Time{0}; });
  api.init(1);
  RecordIndex a = 0, b = 0;
  ASSERT_EQ(api.alloc_rec(ids.process, kGroupActiveCalls, a), Status::Ok);
  ASSERT_EQ(api.alloc_rec(ids.process, kGroupActiveCalls, b), Status::Ok);
  ASSERT_EQ(api.write_fld(ids.process, a, ids.p_status, 3), Status::Ok);

  direct::free_record(*db, ids.process, a);
  const auto header = direct::read_header(*db, ids.process, a);
  EXPECT_EQ(header.status, kStatusFree);
  EXPECT_EQ(header.group, 0u);
  // Fields reset to defaults.
  EXPECT_EQ(direct::read_field(*db, ids.process, a, ids.p_status), 0);
  // b is now alone in the active group.
  EXPECT_EQ(direct::read_header(*db, ids.process, b).next, kNilLink);
}

TEST(Direct, RepairHeaderFixesTagAndBadStatus) {
  auto db = make_controller_database();
  const auto ids = resolve_controller_ids(db->schema());
  const std::size_t at = db->layout().record_offset(ids.process, 3);
  auto header = load_record_header(db->region(), at);
  header.id_tag = 0xDEADBEEF;
  header.status = 0x12345678;  // invalid
  store_record_header(db->region(), at, header);

  direct::repair_header(*db, ids.process, 3);
  const auto repaired = load_record_header(db->region(), at);
  EXPECT_EQ(repaired.id_tag, expected_id_tag(ids.process, 3));
  EXPECT_EQ(repaired.status, kStatusFree);
  EXPECT_EQ(repaired.group, 0u);
}

}  // namespace
}  // namespace wtc::db
