#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "experiments/campaign.hpp"
#include "obs/capture.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wtc::obs {
namespace {

// --- registry ---

TEST(ObsRegistry, NamesRoundTrip) {
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const auto c = static_cast<Counter>(i);
    const auto found = find_counter(counter_name(c));
    ASSERT_TRUE(found.has_value()) << counter_name(c);
    EXPECT_EQ(*found, c);
  }
  for (std::size_t i = 0; i < kGaugeCount; ++i) {
    const auto g = static_cast<Gauge>(i);
    const auto found = find_gauge(gauge_name(g));
    ASSERT_TRUE(found.has_value()) << gauge_name(g);
    EXPECT_EQ(*found, g);
  }
  for (std::size_t i = 0; i < kHistogramCount; ++i) {
    const auto h = static_cast<Histogram>(i);
    const auto found = find_histogram(histogram_name(h));
    ASSERT_TRUE(found.has_value()) << histogram_name(h);
    EXPECT_EQ(*found, h);
  }
  EXPECT_FALSE(find_counter("no.such.metric").has_value());
}

TEST(ObsRegistry, NamesAreUniqueAndDotted) {
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const auto name = counter_name(static_cast<Counter>(i));
    EXPECT_NE(name.find('.'), std::string_view::npos) << name;
    for (std::size_t j = i + 1; j < kCounterCount; ++j) {
      EXPECT_NE(name, counter_name(static_cast<Counter>(j)));
    }
  }
}

// --- disabled mode ---

TEST(ObsDisabled, InstrumentSitesAreNoOpsWithoutRecorder) {
  ASSERT_EQ(current_recorder(), nullptr);
  ASSERT_EQ(active_capture(), nullptr);
  // Nothing to observe, nothing to crash: the whole point of the default.
  count(Counter::db_reads);
  gauge_max(Gauge::db_write_generation, 7);
  observe(Histogram::audit_check_cost_us, 40);
  trace_span("noop", "test", 0, 10);
  trace_instant("noop", "test", 5);
  SUCCEED();
}

// --- recorder ---

TEST(ObsRecorder, CountsGaugesHistograms) {
  Recorder recorder;
  ScopedRecorder scope(recorder);
  count(Counter::db_reads);
  count(Counter::db_reads, 4);
  gauge_max(Gauge::sched_max_pending_events, 10);
  gauge_max(Gauge::sched_max_pending_events, 3);  // below the high water
  observe(Histogram::audit_check_cost_us, 0);
  observe(Histogram::audit_check_cost_us, 5);
  observe(Histogram::audit_check_cost_us, 1000);

  const MetricsSnapshot& snap = recorder.snapshot();
  EXPECT_EQ(snap.runs, 1u);
  EXPECT_EQ(snap.counter(Counter::db_reads), 5u);
  EXPECT_EQ(snap.counter(Counter::db_writes), 0u);
  EXPECT_EQ(snap.gauge(Gauge::sched_max_pending_events), 10u);
  const HistogramData& hist = snap.histogram(Histogram::audit_check_cost_us);
  EXPECT_EQ(hist.count, 3u);
  EXPECT_EQ(hist.sum, 1005u);
  EXPECT_EQ(hist.min, 0u);
  EXPECT_EQ(hist.max, 1000u);
  EXPECT_EQ(hist.buckets[0], 1u);   // value 0
  EXPECT_EQ(hist.buckets[3], 1u);   // value 5 (bit_width 3)
  EXPECT_EQ(hist.buckets[10], 1u);  // value 1000 (bit_width 10)
}

TEST(ObsRecorder, ScopedRecorderRestoresPrevious) {
  Recorder outer;
  ScopedRecorder outer_scope(outer);
  {
    Recorder inner;
    ScopedRecorder inner_scope(inner);
    count(Counter::ipc_sent);
    EXPECT_EQ(inner.snapshot().counter(Counter::ipc_sent), 1u);
  }
  count(Counter::ipc_sent);
  EXPECT_EQ(outer.snapshot().counter(Counter::ipc_sent), 1u);
}

TEST(ObsRecorder, TraceEventsBufferedOnlyWhenTracing) {
  Recorder untraced(false);
  {
    ScopedRecorder scope(untraced);
    trace_span("span", "test", 10, 5);
  }
  EXPECT_TRUE(untraced.events().empty());

  Recorder traced(true);
  {
    ScopedRecorder scope(traced);
    trace_span("span", "test", 10, 5);
    trace_instant("mark", "test", 12);
  }
  ASSERT_EQ(traced.events().size(), 2u);
  EXPECT_EQ(traced.events()[0].phase, TracePhase::Complete);
  EXPECT_EQ(traced.events()[1].phase, TracePhase::Instant);
  EXPECT_EQ(traced.events()[1].ts, 12u);
}

// --- snapshot merge ---

TEST(ObsSnapshot, MergeAddsCountersMaxesGauges) {
  Recorder a, b;
  a.count(Counter::db_reads, 3);
  a.gauge_max(Gauge::db_write_generation, 10);
  a.observe(Histogram::audit_pass_cost_us, 100);
  b.count(Counter::db_reads, 4);
  b.gauge_max(Gauge::db_write_generation, 7);
  b.observe(Histogram::audit_pass_cost_us, 50);

  MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.runs, 2u);
  EXPECT_EQ(merged.counter(Counter::db_reads), 7u);
  EXPECT_EQ(merged.gauge(Gauge::db_write_generation), 10u);
  EXPECT_EQ(merged.histogram(Histogram::audit_pass_cost_us).count, 2u);
  EXPECT_EQ(merged.histogram(Histogram::audit_pass_cost_us).min, 50u);
  EXPECT_EQ(merged.histogram(Histogram::audit_pass_cost_us).max, 100u);

  // Merge is order-independent (integer adds and maxes only).
  MetricsSnapshot reversed = b.snapshot();
  reversed.merge(a.snapshot());
  EXPECT_EQ(merged, reversed);
}

// --- campaign integration: determinism across worker counts ---

/// Runs a deterministic per-index workload under a tracing Capture and
/// returns (metrics JSON, trace JSON).
std::pair<std::string, std::string> run_capture_campaign(std::size_t jobs) {
  Capture capture(CaptureOptions{.tracing = true});
  experiments::CampaignOptions options;
  options.jobs = jobs;
  options.stderr_progress = 0;
  experiments::run_campaign(
      8,
      [](std::size_t i) {
        count(Counter::db_reads, i + 1);
        gauge_max(Gauge::sched_max_pending_events, 100 - i);
        observe(Histogram::audit_check_cost_us, 10 * (i + 1));
        trace_span("run.work", "test", 1000 * i, 500);
        trace_instant("run.mark", "test", 1000 * i + 250);
        return 0;
      },
      options);
  return {capture.metrics_json(), capture.trace_json()};
}

TEST(ObsCampaign, MergedOutputIdenticalAcrossJobCounts) {
  const auto serial = run_capture_campaign(1);
  const auto parallel = run_capture_campaign(4);
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_EQ(serial.second, parallel.second);

  // Spot-check the aggregate itself: sum over i of (i+1) = 36, and the
  // trace holds 8 spans + 8 instants.
  EXPECT_NE(serial.first.find("\"db.reads\": 36"), std::string::npos)
      << serial.first;
}

TEST(ObsCampaign, TracePidIsRunIndex) {
  Capture capture(CaptureOptions{.tracing = true});
  experiments::CampaignOptions options;
  options.jobs = 2;
  options.stderr_progress = 0;
  experiments::run_campaign(
      3,
      [](std::size_t i) {
        trace_instant("mark", "test", i);
        return 0;
      },
      options);
  const auto records = capture.trace();
  ASSERT_EQ(records.size(), 3u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].pid, i);
    EXPECT_EQ(records[i].event.ts, i);
  }
}

TEST(ObsCampaign, NoCaptureMeansNoRecorderInsideRuns) {
  ASSERT_EQ(active_capture(), nullptr);
  experiments::CampaignOptions options;
  options.jobs = 2;
  options.stderr_progress = 0;
  std::vector<int> saw_recorder = experiments::run_campaign(
      4, [](std::size_t) { return current_recorder() != nullptr ? 1 : 0; },
      options);
  for (const int saw : saw_recorder) {
    EXPECT_EQ(saw, 0);
  }
}

// --- serialization well-formedness ---

/// Tiny structural JSON validator: tracks brace/bracket nesting and quote
/// state. Catches unbalanced documents and bare garbage — enough to keep
/// the emitters honest without a JSON dependency.
bool json_balanced(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (const char ch : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (ch == '\\') {
        escaped = true;
      } else if (ch == '"') {
        in_string = false;
      }
      continue;
    }
    switch (ch) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != ch) {
          return false;
        }
        stack.pop_back();
        break;
      default: break;
    }
  }
  return stack.empty() && !in_string;
}

TEST(ObsSerialization, MetricsJsonWellFormed) {
  Recorder recorder;
  recorder.count(Counter::audit_findings, 3);
  recorder.observe(Histogram::audit_pass_cost_us, 12345);
  const std::string json = recorder.snapshot().to_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"audit.findings\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"audit.pass_cost_us\""), std::string::npos);
}

TEST(ObsSerialization, MetricsCsvHasHeaderAndAllMetrics) {
  Recorder recorder;
  const std::string csv = recorder.snapshot().to_csv();
  EXPECT_EQ(csv.rfind("metric,value\n", 0), 0u);
  // runs + every counter + every gauge + 4 rows per histogram.
  const std::size_t expected_rows =
      1 + 1 + kCounterCount + kGaugeCount + 4 * kHistogramCount;
  std::size_t lines = 0;
  for (const char ch : csv) {
    lines += ch == '\n' ? 1 : 0;
  }
  EXPECT_EQ(lines, expected_rows);
}

TEST(ObsSerialization, TraceJsonWellFormedAndTyped) {
  std::vector<TraceRecord> records;
  records.push_back({TraceEvent{"audit.full_pass", "audit", 1000, 250,
                                TracePhase::Complete},
                     0});
  records.push_back({TraceEvent{"audit.finding", "audit", 1100, 0,
                                TracePhase::Instant},
                     1});
  const std::string json = trace_to_json(records);
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":250"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
}

TEST(ObsSerialization, EmptyTraceIsStillADocument) {
  const std::string json = trace_to_json({});
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

// --- capture stacking ---

TEST(ObsCapture, InstallRestoresPreviousOnDestruction) {
  ASSERT_EQ(active_capture(), nullptr);
  {
    Capture outer;
    EXPECT_EQ(active_capture(), &outer);
    {
      Capture inner;
      EXPECT_EQ(active_capture(), &inner);
    }
    EXPECT_EQ(active_capture(), &outer);
  }
  EXPECT_EQ(active_capture(), nullptr);
}

TEST(ObsCapture, AbsorbRunAccumulates) {
  Capture capture;
  Recorder recorder;
  recorder.count(Counter::manager_restarts, 2);
  capture.absorb_run(RunData{recorder.snapshot(), {}});
  capture.absorb_run(RunData{recorder.snapshot(), {}});
  EXPECT_EQ(capture.merged().counter(Counter::manager_restarts), 4u);
  EXPECT_EQ(capture.merged().runs, 2u);
}

}  // namespace
}  // namespace wtc::obs
