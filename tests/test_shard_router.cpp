// The sharded multi-controller database: key->shard routing, the
// two-shard transfer protocol (including its deterministic lock order,
// raced for real under TSan), per-shard state equality against standalone
// single-shard oracles, dirty-tracking isolation, the shard dimension on
// findings and metrics, and per-shard manager-pair fault isolation.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "db/controller_schema.hpp"
#include "db/layout.hpp"
#include "db/shard_router.hpp"
#include "experiments/sharded_controller.hpp"
#include "obs/metrics.hpp"

namespace wtc {
namespace {

std::unique_ptr<db::Database> make_shard(db::RecordIndex scale = 4) {
  return std::make_unique<db::Database>(db::make_bench_schema({.scale = scale}));
}

db::ShardedDb::ShardFactory shard_factory(db::RecordIndex scale = 4) {
  return [scale](std::uint32_t) { return make_shard(scale); };
}

/// First subscriber key >= `from` routing to shard `s` under `router`.
db::SubscriberKey key_on_shard(const db::ShardRouter& router, std::uint32_t s,
                               db::SubscriberKey from = 1) {
  for (db::SubscriberKey k = from;; ++k) {
    if (router.shard_of(k) == s) {
      return k;
    }
  }
}

// --- router arithmetic ---

TEST(ShardRouter, ValidCountsArePowersOfTwo) {
  EXPECT_TRUE(db::ShardRouter::valid_shard_count(1));
  EXPECT_TRUE(db::ShardRouter::valid_shard_count(2));
  EXPECT_TRUE(db::ShardRouter::valid_shard_count(64));
  EXPECT_FALSE(db::ShardRouter::valid_shard_count(0));
  EXPECT_FALSE(db::ShardRouter::valid_shard_count(3));
  EXPECT_FALSE(db::ShardRouter::valid_shard_count(6));
  EXPECT_FALSE(db::ShardRouter::valid_shard_count(100));
}

TEST(ShardRouter, RejectsNonPowerOfTwoShardCount) {
  EXPECT_THROW(db::ShardedDb(3, shard_factory()), std::invalid_argument);
  EXPECT_THROW(db::ShardedDb(0, shard_factory()), std::invalid_argument);
}

TEST(ShardRouter, SpreadsDenseSequentialKeysEvenly) {
  // The realistic numbering plan is dense sequential subscriber ids; the
  // mix finalizer must still balance them. 64k keys over 8 shards: every
  // shard within 10% of the 8192 mean.
  const db::ShardRouter router(8);
  std::array<std::size_t, 8> hits{};
  for (db::SubscriberKey k = 1; k <= 65536; ++k) {
    const std::uint32_t s = router.shard_of(k);
    ASSERT_LT(s, 8u);
    ++hits[s];
  }
  for (const std::size_t h : hits) {
    EXPECT_GT(h, 65536 / 8 * 90 / 100);
    EXPECT_LT(h, 65536 / 8 * 110 / 100);
  }
}

TEST(ShardRouter, SingleShardRoutesEverythingToZero) {
  const db::ShardRouter router(1);
  for (db::SubscriberKey k = 1; k <= 1000; ++k) {
    EXPECT_EQ(router.shard_of(k), 0u);
  }
}

// --- keyed single-shard operations ---

TEST(ShardedDbApi, KeyedOpsLandOnTheRoutedShard) {
  db::ShardedDb sharded(4, shard_factory());
  db::ShardedDbApi api(sharded, []() { return sim::Time{0}; });
  ASSERT_EQ(api.init(1), db::Status::Ok);

  const db::SubscriberKey key = key_on_shard(sharded.router(), 2);
  db::RecordIndex r = 0;
  ASSERT_EQ(api.alloc_rec(key, 0, db::kGroupActiveCalls, r), db::Status::Ok);
  ASSERT_EQ(api.write_fld(key, 0, r, 0, 77), db::Status::Ok);

  // The record is real on shard 2's DbApi and absent on every other shard
  // (their copy of record r in table 0 was never allocated).
  std::int32_t value = 0;
  EXPECT_EQ(api.api(2).read_fld(0, r, 0, value), db::Status::Ok);
  EXPECT_EQ(value, 77);
  for (const std::uint32_t other : {0u, 1u, 3u}) {
    EXPECT_EQ(api.api(other).read_fld(0, r, 0, value),
              db::Status::RecordNotActive);
  }
  // Reads through the keyed surface resolve the same shard; only keyed
  // ops count as routed (the direct api(s) reads above do not).
  EXPECT_EQ(api.read_fld(key, 0, r, 0, value), db::Status::Ok);
  EXPECT_EQ(value, 77);
  EXPECT_EQ(api.routed_ops(2), 3u);  // alloc, write_fld, keyed read_fld
  EXPECT_EQ(api.routed_ops(0), 0u);
}

// --- cross-shard transfer protocol ---

TEST(ShardedDbApi, CrossShardTransferMovesTheRecord) {
  db::ShardedDb sharded(4, shard_factory());
  db::ShardedDbApi api(sharded, []() { return sim::Time{0}; });
  ASSERT_EQ(api.init(1), db::Status::Ok);

  const db::SubscriberKey from = key_on_shard(sharded.router(), 0);
  const db::SubscriberKey to = key_on_shard(sharded.router(), 3);

  db::RecordIndex r = 0;
  ASSERT_EQ(api.alloc_rec(from, 1, db::kGroupActiveCalls, r), db::Status::Ok);
  const std::array<std::int32_t, 4> fields = {5, -3, 9, 12345};
  ASSERT_EQ(api.write_rec(from, 1, r, fields), db::Status::Ok);

  obs::Recorder recorder;
  db::RecordIndex moved = 0;
  {
    obs::ScopedRecorder scoped(recorder);
    ASSERT_EQ(api.transfer_rec(from, to, 1, r, db::kGroupStableCalls, moved),
              db::Status::Ok);
  }

  // Source freed, target holds the same field values in the target group.
  std::array<std::int32_t, 4> out{};
  EXPECT_EQ(api.read_rec(from, 1, r, out), db::Status::RecordNotActive);
  ASSERT_EQ(api.read_rec(to, 1, moved, out), db::Status::Ok);
  EXPECT_EQ(out, fields);
  EXPECT_EQ(api.cross_shard_transfers(), 1u);
  EXPECT_EQ(recorder.snapshot().counter(obs::Counter::db_cross_shard_links), 1u);
}

TEST(ShardedDbApi, SameShardTransferDoesNotCountAsCrossShard) {
  db::ShardedDb sharded(4, shard_factory());
  db::ShardedDbApi api(sharded, []() { return sim::Time{0}; });
  ASSERT_EQ(api.init(1), db::Status::Ok);

  const db::SubscriberKey from = key_on_shard(sharded.router(), 1);
  const db::SubscriberKey to = key_on_shard(sharded.router(), 1, from + 1);
  ASSERT_EQ(sharded.router().shard_of(from), sharded.router().shard_of(to));

  db::RecordIndex r = 0;
  ASSERT_EQ(api.alloc_rec(from, 0, db::kGroupActiveCalls, r), db::Status::Ok);
  db::RecordIndex moved = 0;
  ASSERT_EQ(api.transfer_rec(from, to, 0, r, db::kGroupActiveCalls, moved),
            db::Status::Ok);
  EXPECT_EQ(api.cross_shard_transfers(), 0u);
}

TEST(ShardedDbApi, TransferToFullShardLeavesSourceIntact) {
  db::ShardedDb sharded(2, shard_factory(1));  // table 2 holds ONE record
  db::ShardedDbApi api(sharded, []() { return sim::Time{0}; });
  ASSERT_EQ(api.init(1), db::Status::Ok);

  const db::SubscriberKey from = key_on_shard(sharded.router(), 0);
  const db::SubscriberKey to = key_on_shard(sharded.router(), 1);

  // Fill the target shard's table 2 completely, then try to hand off.
  db::RecordIndex filler = 0;
  ASSERT_EQ(api.alloc_rec(to, 2, db::kGroupActiveCalls, filler), db::Status::Ok);
  db::RecordIndex r = 0;
  ASSERT_EQ(api.alloc_rec(from, 2, db::kGroupActiveCalls, r), db::Status::Ok);
  ASSERT_EQ(api.write_fld(from, 2, r, 3, 42), db::Status::Ok);

  db::RecordIndex moved = 0;
  EXPECT_EQ(api.transfer_rec(from, to, 2, r, db::kGroupActiveCalls, moved),
            db::Status::NoFreeRecord);

  // The failed transfer wrote nothing: the source record is still active
  // with its payload, and no cross-shard link was counted.
  std::int32_t value = 0;
  ASSERT_EQ(api.read_fld(from, 2, r, 3, value), db::Status::Ok);
  EXPECT_EQ(value, 42);
  EXPECT_EQ(api.cross_shard_transfers(), 0u);
}

// --- per-shard state equality against standalone single-shard oracles ---

TEST(ShardedDbApi, ShardRegionsMatchStandaloneOracleReplay) {
  // Drive a mixed keyed workload through the sharded surface, replay each
  // shard's op subsequence on a fresh standalone Database, and require the
  // region images to be byte-identical: routing must add no state of its
  // own to the shards.
  constexpr std::uint32_t kShards = 4;
  db::ShardedDb sharded(kShards, shard_factory());
  db::ShardedDbApi api(sharded, []() { return sim::Time{0}; });
  ASSERT_EQ(api.init(1), db::Status::Ok);

  struct LoggedOp {
    int kind;  // 0 alloc, 1 write_fld, 2 move, 3 free
    db::TableId table;
    db::RecordIndex rec;
    std::int32_t value;
    std::uint32_t group;
  };
  std::array<std::vector<LoggedOp>, kShards> logs;

  std::uint64_t state = 42;
  const auto next = [&state]() {  // tiny deterministic LCG
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  std::vector<std::pair<db::SubscriberKey, db::RecordIndex>> live;
  for (int i = 0; i < 4000; ++i) {
    const auto kind = next() % 4;
    if (kind == 0 || live.empty()) {
      const db::SubscriberKey key = 1 + next() % 100000;
      db::RecordIndex r = 0;
      if (api.alloc_rec(key, 3, db::kGroupActiveCalls, r) == db::Status::Ok) {
        live.emplace_back(key, r);
        logs[api.shard_of(key)].push_back(
            {0, 3, r, 0, db::kGroupActiveCalls});
      }
    } else {
      const std::size_t pick = next() % live.size();
      const auto [key, r] = live[pick];
      if (kind == 1) {
        const auto value = static_cast<std::int32_t>(next() % 1000);
        ASSERT_EQ(api.write_fld(key, 3, r, 0, value), db::Status::Ok);
        logs[api.shard_of(key)].push_back({1, 3, r, value, 0});
      } else if (kind == 2) {
        ASSERT_EQ(api.move_rec(key, 3, r, db::kGroupStableCalls),
                  db::Status::Ok);
        logs[api.shard_of(key)].push_back(
            {2, 3, r, 0, db::kGroupStableCalls});
      } else {
        ASSERT_EQ(api.free_rec(key, 3, r), db::Status::Ok);
        logs[api.shard_of(key)].push_back({3, 3, r, 0, 0});
        live[pick] = live.back();
        live.pop_back();
      }
    }
  }

  for (std::uint32_t s = 0; s < kShards; ++s) {
    auto oracle = make_shard();
    db::DbApi oracle_api(*oracle, []() { return sim::Time{0}; });
    ASSERT_EQ(oracle_api.init(1), db::Status::Ok);
    for (const LoggedOp& op : logs[s]) {
      db::RecordIndex r = 0;
      switch (op.kind) {
        case 0:
          ASSERT_EQ(oracle_api.alloc_rec(op.table, op.group, r), db::Status::Ok);
          ASSERT_EQ(r, op.rec);  // same alloc order => same record index
          break;
        case 1:
          ASSERT_EQ(oracle_api.write_fld(op.table, op.rec, 0, op.value),
                    db::Status::Ok);
          break;
        case 2:
          ASSERT_EQ(oracle_api.move_rec(op.table, op.rec, op.group),
                    db::Status::Ok);
          break;
        default:
          ASSERT_EQ(oracle_api.free_rec(op.table, op.rec), db::Status::Ok);
          break;
      }
    }
    const auto got = sharded.shard(s).region();
    const auto want = oracle->region();
    ASSERT_EQ(got.size(), want.size());
    EXPECT_EQ(std::memcmp(got.data(), want.data(), got.size()), 0)
        << "shard " << s << " region diverged from its standalone oracle";
  }
}

// --- concurrent routing / lock-order (the TSan target) ---

TEST(ShardedDbApi, OpposingTransfersUnderLockingNeitherDeadlockNorLeak) {
  // Two threads run transfers in opposite directions between the same two
  // shards (plus keyed single-shard traffic on two more), with per-shard
  // locking on. The ascending-shard-id lock order must prevent deadlock —
  // the test completing IS the assertion — and TSan checks the protocol
  // for races. Record conservation checks nothing was lost or duplicated.
  db::ShardedDb sharded(4, shard_factory(8));
  db::ShardedDbApi api(sharded, []() { return sim::Time{0}; });
  ASSERT_EQ(api.init(1), db::Status::Ok);
  api.set_locking(true);

  const db::SubscriberKey key_a = key_on_shard(sharded.router(), 0);
  const db::SubscriberKey key_b = key_on_shard(sharded.router(), 1);

  // One record starts on each side; each thread ping-pongs its record to
  // the other side and back, so transfers constantly oppose each other.
  db::RecordIndex rec_a = 0;
  db::RecordIndex rec_b = 0;
  ASSERT_EQ(api.alloc_rec(key_a, 3, db::kGroupActiveCalls, rec_a), db::Status::Ok);
  ASSERT_EQ(api.alloc_rec(key_b, 3, db::kGroupActiveCalls, rec_b), db::Status::Ok);

  constexpr int kRounds = 400;
  const auto ping_pong = [&api](db::SubscriberKey home, db::SubscriberKey away,
                                db::RecordIndex start) {
    db::RecordIndex r = start;
    for (int i = 0; i < kRounds; ++i) {
      db::RecordIndex moved = 0;
      ASSERT_EQ(api.transfer_rec(home, away, 3, r, db::kGroupActiveCalls, moved),
                db::Status::Ok);
      ASSERT_EQ(api.transfer_rec(away, home, 3, moved, db::kGroupActiveCalls, r),
                db::Status::Ok);
    }
  };
  std::thread opposer(ping_pong, key_b, key_a, rec_b);
  // Keyed traffic on shards 2 and 3 from a third thread, racing the router.
  std::thread bystander([&] {
    const db::SubscriberKey key_c = key_on_shard(sharded.router(), 2);
    const db::SubscriberKey key_d = key_on_shard(sharded.router(), 3);
    for (int i = 0; i < kRounds; ++i) {
      db::RecordIndex r = 0;
      ASSERT_EQ(api.alloc_rec(key_c, 0, db::kGroupActiveCalls, r), db::Status::Ok);
      ASSERT_EQ(api.write_fld(key_c, 0, r, 0, i % 1000), db::Status::Ok);
      ASSERT_EQ(api.free_rec(key_c, 0, r), db::Status::Ok);
      ASSERT_EQ(api.alloc_rec(key_d, 0, db::kGroupActiveCalls, r), db::Status::Ok);
      ASSERT_EQ(api.free_rec(key_d, 0, r), db::Status::Ok);
    }
  });
  ping_pong(key_a, key_b, rec_a);
  opposer.join();
  bystander.join();

  // Conservation: exactly the two ping-pong records are live in table 3,
  // one per home shard, and every transfer was a true cross-shard run.
  EXPECT_EQ(api.cross_shard_transfers(), 4u * kRounds);
  std::size_t live = 0;
  for (std::uint32_t s = 0; s < 4; ++s) {
    const auto& layout = sharded.shard(s).layout();
    for (db::RecordIndex r = 0; r < layout.table(3).num_records; ++r) {
      std::int32_t value = 0;
      if (api.api(s).read_fld(3, r, 0, value) == db::Status::Ok) {
        ++live;
      }
    }
  }
  EXPECT_EQ(live, 2u);
}

// --- dirty-tracking isolation ---

TEST(ShardedDb, DirtyChunksAreShardLocal) {
  db::ShardedDb sharded(2, shard_factory());
  db::ShardedDbApi api(sharded, []() { return sim::Time{0}; });
  ASSERT_EQ(api.init(1), db::Status::Ok);

  const std::uint64_t gen0 = sharded.shard(0).write_generation();
  const std::uint64_t gen1 = sharded.shard(1).write_generation();

  // Write only through shard 0's keys.
  const db::SubscriberKey key = key_on_shard(sharded.router(), 0);
  db::RecordIndex r = 0;
  ASSERT_EQ(api.alloc_rec(key, 3, db::kGroupActiveCalls, r), db::Status::Ok);
  ASSERT_EQ(api.write_fld(key, 3, r, 0, 5), db::Status::Ok);

  const auto size0 = sharded.shard(0).layout().region_size();
  const auto size1 = sharded.shard(1).layout().region_size();
  EXPECT_GT(sharded.dirty_chunks_since(0, 0, size0, gen0), 0u);
  EXPECT_EQ(sharded.dirty_chunks_since(1, 0, size1, gen1), 0u);
}

// --- routing metrics ---

TEST(ShardedDbApi, ImbalanceGaugeReportsMaxOverMean) {
  db::ShardedDb sharded(4, shard_factory());
  db::ShardedDbApi api(sharded, []() { return sim::Time{0}; });
  ASSERT_EQ(api.init(1), db::Status::Ok);

  // All traffic on one shard of four: max/mean = 4.0 => 4000 milli.
  const db::SubscriberKey key = key_on_shard(sharded.router(), 1);
  db::RecordIndex r = 0;
  ASSERT_EQ(api.alloc_rec(key, 0, db::kGroupActiveCalls, r), db::Status::Ok);
  ASSERT_EQ(api.free_rec(key, 0, r), db::Status::Ok);

  obs::Recorder recorder;
  {
    obs::ScopedRecorder scoped(recorder);
    EXPECT_EQ(api.publish_imbalance(), 4000u);
  }
  EXPECT_EQ(recorder.snapshot().gauge(obs::Gauge::db_shard_imbalance), 4000u);
}

// --- the per-shard controller stack ---

TEST(ShardedController, FindingsCarryTheirShardId) {
  db::ShardedDb sharded(4, shard_factory());
  db::ShardedDbApi api(sharded, []() { return sim::Time{0}; });
  ASSERT_EQ(api.init(1), db::Status::Ok);

  // One active record on shard 2, its ranged field corrupted behind the
  // store's back (raw region poke: no dirty stamp, no notification).
  const std::uint32_t corrupt_shard = 2;
  const db::SubscriberKey key = key_on_shard(sharded.router(), corrupt_shard);
  db::RecordIndex r = 0;
  ASSERT_EQ(api.alloc_rec(key, 0, db::kGroupActiveCalls, r), db::Status::Ok);
  auto& victim = sharded.shard(corrupt_shard);
  db::store_i32(victim.region(), victim.layout().field_offset(0, r, 0), 5000);

  experiments::ShardedControllerConfig config;
  config.audit.periodic_enabled = false;
  config.audit.engine.recent_write_grace = 0;
  experiments::ShardedController controller(sharded, config);
  controller.run_audit_cycles(2);

  ASSERT_FALSE(controller.findings(corrupt_shard).empty());
  for (const auto& finding : controller.findings(corrupt_shard)) {
    EXPECT_EQ(finding.shard, corrupt_shard);
  }
  for (const std::uint32_t clean : {0u, 1u, 3u}) {
    EXPECT_TRUE(controller.findings(clean).empty())
        << "shard " << clean << " reported findings for shard 2's corruption";
  }
}

TEST(ShardedController, AuditCrashRestartsOnlyThatShardsManagerPair) {
  db::ShardedDb sharded(4, shard_factory());
  experiments::ShardedControllerConfig config;
  experiments::ShardedController controller(sharded, config);
  controller.advance_to(5 * sim::kSecond, 2);

  // Kill shard 0's audit process. Only shard 0's manager pair may react:
  // every other shard's stack shares nothing with it.
  const auto victim_pid = controller.managers(0).first->audit_pid();
  ASSERT_TRUE(controller.node(0).alive(victim_pid));
  controller.node(0).kill(victim_pid);
  controller.advance_to(30 * sim::kSecond, 2);

  EXPECT_GE(controller.managers(0).restarts(), 1u);
  EXPECT_TRUE(
      controller.node(0).alive(controller.managers(0).first->audit_pid()));
  for (const std::uint32_t s : {1u, 2u, 3u}) {
    EXPECT_EQ(controller.managers(s).restarts(), 0u)
        << "shard " << s << " restarted its audit for shard 0's crash";
  }
}

TEST(ShardedController, MergedMetricsFoldPerShardRecorders) {
  db::ShardedDb sharded(2, shard_factory());
  experiments::ShardedControllerConfig config;
  config.audit.periodic_enabled = false;
  experiments::ShardedController controller(sharded, config);
  controller.run_audit_cycles(2);

  // Each shard's cycle ran under its own recorder; the merged snapshot
  // must see both (2 runs of audit-cycle activity, shard order).
  const auto merged = controller.merged_shard_metrics();
  EXPECT_EQ(merged.runs, 2u);
}

}  // namespace
}  // namespace wtc
