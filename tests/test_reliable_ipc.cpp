// The unreliable-IPC fault model (sim::ChannelFaults) and the reliable
// delivery layer (sim::ReliableSender/Receiver) built on top of it.
#include <gtest/gtest.h>

#include "sim/node.hpp"
#include "sim/reliable.hpp"

namespace wtc::sim {
namespace {

class Probe : public Process {
 public:
  void on_message(const Message& message) override {
    received.push_back(message);
    received_at.push_back(now());
  }
  std::vector<Message> received;
  std::vector<Time> received_at;
};

Message typed(ProcessId from, std::uint32_t type, std::vector<std::uint64_t> args = {}) {
  Message m;
  m.from = from;
  m.type = type;
  m.args = std::move(args);
  return m;
}

TEST(ChannelFaults, DropsEverythingAtProbabilityOne) {
  Scheduler scheduler;
  Node node(scheduler);
  node.set_channel_faults({.drop_probability = 1.0});
  auto probe = std::make_shared<Probe>();
  const auto pid = node.spawn("probe", probe);

  for (int i = 0; i < 20; ++i) {
    node.send(pid, typed(kNoProcess, 7));
  }
  scheduler.run_until(kSecond);

  EXPECT_TRUE(probe->received.empty());
  const auto link = node.link_counters(kNoProcess, pid);
  EXPECT_EQ(link.sent, 20u);
  EXPECT_EQ(link.dropped, 20u);
  EXPECT_EQ(link.delivered, 0u);
  EXPECT_EQ(node.totals().dropped, 20u);
}

TEST(ChannelFaults, DuplicatesDeliverTwice) {
  Scheduler scheduler;
  Node node(scheduler);
  node.set_channel_faults({.duplicate_probability = 1.0});
  auto probe = std::make_shared<Probe>();
  const auto pid = node.spawn("probe", probe);

  node.send(pid, typed(kNoProcess, 9));
  scheduler.run_until(kSecond);

  EXPECT_EQ(probe->received.size(), 2u);
  const auto link = node.link_counters(kNoProcess, pid);
  EXPECT_EQ(link.sent, 1u);
  EXPECT_EQ(link.duplicated, 1u);
  EXPECT_EQ(link.delivered, 2u);
}

TEST(ChannelFaults, JitterIsSeededAndDeterministic) {
  const auto run = [](std::uint64_t seed) {
    Scheduler scheduler;
    Node node(scheduler);
    node.set_channel_faults(
        {.jitter_max = 10 * static_cast<Duration>(kMillisecond), .seed = seed});
    auto probe = std::make_shared<Probe>();
    const auto pid = node.spawn("probe", probe);
    for (int i = 0; i < 10; ++i) {
      node.send(pid, typed(kNoProcess, 1));
    }
    scheduler.run_until(kSecond);
    return probe->received_at;
  };

  const auto a = run(42);
  const auto b = run(42);
  const auto c = run(43);
  ASSERT_EQ(a.size(), 10u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Jitter actually perturbs delivery beyond the base IPC delay.
  bool any_late = false;
  for (const Time t : a) {
    any_late |= t > static_cast<Time>(Node::kDefaultIpcDelay);
  }
  EXPECT_TRUE(any_late);
}

TEST(ChannelFaults, DeadLettersAreCountedNotSilent) {
  Scheduler scheduler;
  Node node(scheduler);
  auto probe = std::make_shared<Probe>();
  const auto pid = node.spawn("probe", probe);
  node.kill(pid);

  EXPECT_EQ(node.dead_letter_count(), 0u);
  node.send(pid, typed(kNoProcess, 3));
  node.send(pid, typed(kNoProcess, 4));
  scheduler.run_until(kSecond);

  EXPECT_EQ(node.dead_letter_count(), 2u);
  EXPECT_EQ(node.link_counters(kNoProcess, pid).dead_letters, 2u);
  EXPECT_TRUE(probe->received.empty());
}

/// A process pair exercising the reliable layer: the sender ships `count`
/// messages; the receiver unwraps, dedups, and records payloads.
class ReliablePeer : public Process {
 public:
  explicit ReliablePeer(ReliableConfig config = {}) : config_(config) {}

  void on_message(const Message& message) override {
    if (sender && sender->on_message(message)) {
      return;
    }
    if (ReliableReceiver::is_frame(message)) {
      if (auto inner = receiver.accept(message)) {
        delivered.push_back(*inner);
      }
    }
  }

  void start_sender(ProcessId to, std::uint32_t channel) {
    sender.emplace(*this, channel, [to]() { return to; }, config_);
  }

  ReliableConfig config_;
  std::optional<ReliableSender> sender;
  ReliableReceiver receiver{*this};
  std::vector<Message> delivered;
};

TEST(Reliable, DeliversExactlyOnceOverLossyDuplicatingChannel) {
  Scheduler scheduler;
  Node node(scheduler);
  node.set_channel_faults({.drop_probability = 0.3,
                           .duplicate_probability = 0.2,
                           .jitter_max = 5 * static_cast<Duration>(kMillisecond),
                           .seed = 7});

  // Enough attempts that 30% loss cannot plausibly exhaust the budget
  // (an attempt needs data AND ack through: ~0.51 failure each, ^12 per
  // message), with a gentle backoff so all retries fit the horizon.
  ReliableConfig config;
  config.retry_after = 50 * static_cast<Duration>(kMillisecond);
  config.backoff = 1.5;
  config.max_attempts = 12;
  auto sender = std::make_shared<ReliablePeer>(config);
  auto receiver = std::make_shared<ReliablePeer>();
  const auto sender_pid = node.spawn("sender", sender);
  const auto receiver_pid = node.spawn("receiver", receiver);
  sender->start_sender(receiver_pid, 1);

  constexpr int kCount = 50;
  scheduler.schedule_after(0, [&]() {
    for (int i = 0; i < kCount; ++i) {
      sender->sender->send(typed(sender_pid, 100, {static_cast<std::uint64_t>(i)}));
    }
  });
  scheduler.run_until(60 * kSecond);

  // Every payload arrives exactly once despite 30% drops + 20% dups.
  ASSERT_EQ(receiver->delivered.size(), kCount);
  std::vector<bool> seen(kCount, false);
  for (const auto& m : receiver->delivered) {
    EXPECT_EQ(m.type, 100u);
    EXPECT_EQ(m.from, sender_pid);  // inner `from` survives the framing
    ASSERT_EQ(m.args.size(), 1u);
    EXPECT_FALSE(seen[m.args[0]]);
    seen[m.args[0]] = true;
  }
  EXPECT_EQ(sender->sender->acked(), static_cast<std::uint64_t>(kCount));
  EXPECT_EQ(sender->sender->in_flight(), 0u);
  EXPECT_GT(sender->sender->retries(), 0u);
  EXPECT_GT(receiver->receiver.duplicates_dropped(), 0u);
}

TEST(Reliable, BoundedAttemptsAbandonUnreachableReceiver) {
  Scheduler scheduler;
  Node node(scheduler);

  ReliableConfig config;
  config.max_attempts = 3;
  auto sender = std::make_shared<ReliablePeer>(config);
  const auto sender_pid = node.spawn("sender", sender);
  auto receiver = std::make_shared<ReliablePeer>();
  const auto receiver_pid = node.spawn("receiver", receiver);
  node.kill(receiver_pid);
  sender->start_sender(receiver_pid, 1);

  scheduler.schedule_after(0, [&]() {
    sender->sender->send(typed(sender_pid, 5));
  });
  scheduler.run_until(60 * kSecond);

  EXPECT_EQ(sender->sender->abandoned(), 1u);
  EXPECT_EQ(sender->sender->in_flight(), 0u);
  EXPECT_EQ(sender->sender->acked(), 0u);
  // First transmission + (max_attempts - 1) retries, all dead-lettered.
  EXPECT_EQ(sender->sender->sent(), 3u);
  EXPECT_EQ(node.dead_letter_count(), 3u);
}

TEST(Reliable, MalformedFramesDroppedWithoutAckOrOobRead) {
  Scheduler scheduler;
  Node node(scheduler);
  auto sender = std::make_shared<ReliablePeer>();
  const auto sender_pid = node.spawn("sender", sender);
  auto receiver = std::make_shared<ReliablePeer>();
  node.spawn("receiver", receiver);

  // Truncated frames: kReliableData with fewer than the 4 framing words.
  // Before validation, accept() indexed args[0..3] unconditionally — an
  // out-of-bounds read on exactly the input a faulty channel produces.
  for (std::size_t nargs = 0; nargs < 4; ++nargs) {
    const auto truncated =
        typed(sender_pid, kReliableData,
              std::vector<std::uint64_t>(nargs, 1));
    EXPECT_FALSE(receiver->receiver.accept(truncated).has_value());
  }
  // Wrong type is rejected too (accept is only defined on data frames).
  EXPECT_FALSE(
      receiver->receiver.accept(typed(sender_pid, 777, {1, 2, 3, 4}))
          .has_value());

  EXPECT_EQ(receiver->receiver.malformed(), 5u);
  EXPECT_EQ(receiver->receiver.accepted(), 0u);
  // No ack was ever sent back for garbage.
  scheduler.run_until(kSecond);
  EXPECT_TRUE(sender->delivered.empty());
  EXPECT_EQ(node.totals().sent, 0u);
}

TEST(Reliable, AckCancelsArmedRetryTimer) {
  Scheduler scheduler;
  Node node(scheduler);  // clean channel: ack arrives before first retry

  auto sender = std::make_shared<ReliablePeer>();
  const auto sender_pid = node.spawn("sender", sender);
  auto receiver = std::make_shared<ReliablePeer>();
  const auto receiver_pid = node.spawn("receiver", receiver);
  sender->start_sender(receiver_pid, 1);

  scheduler.schedule_after(0, [&]() {
    sender->sender->send(typed(sender_pid, 5));
  });
  scheduler.run_until(60 * kSecond);

  EXPECT_EQ(sender->sender->acked(), 1u);
  EXPECT_EQ(sender->sender->sent(), 1u);
  EXPECT_EQ(sender->sender->retries(), 0u);
  // The ack disarmed the pending retry instead of leaving it queued: the
  // scheduler drained completely (a leaked timer would also have fired as
  // a no-op, but cancellation removes it outright).
  EXPECT_TRUE(scheduler.empty());
}

TEST(Reliable, DestroyingSenderCancelsOutstandingRetryTimers) {
  Scheduler scheduler;
  Node node(scheduler);
  node.set_channel_faults({.drop_probability = 1.0});  // acks never arrive

  auto sender = std::make_shared<ReliablePeer>();
  const auto sender_pid = node.spawn("sender", sender);
  auto receiver = std::make_shared<ReliablePeer>();
  const auto receiver_pid = node.spawn("receiver", receiver);
  sender->start_sender(receiver_pid, 1);

  scheduler.schedule_after(0, [&]() {
    for (int i = 0; i < 5; ++i) {
      sender->sender->send(typed(sender_pid, 5));
    }
  });
  // Let the first transmissions and backoff timers arm, then destroy the
  // ReliableSender while its OWNER PROCESS is still alive. The armed
  // retry callbacks captured the sender raw; the incarnation guard does
  // not protect them (the process lives on), so before the fix they fired
  // into a destroyed object — heap-use-after-free under ASan.
  scheduler.schedule_after(100 * kMillisecond,
                           [&]() { sender->sender.reset(); });
  const std::size_t pending_before = scheduler.pending_events();
  scheduler.run_until(60 * kSecond);

  EXPECT_FALSE(sender->sender.has_value());
  EXPECT_TRUE(scheduler.empty());
  EXPECT_GT(pending_before, 0u);
}

TEST(Reliable, RetriesStopWhenOwnerDies) {
  Scheduler scheduler;
  Node node(scheduler);
  node.set_channel_faults({.drop_probability = 1.0});

  auto sender = std::make_shared<ReliablePeer>();
  const auto sender_pid = node.spawn("sender", sender);
  auto receiver = std::make_shared<ReliablePeer>();
  const auto receiver_pid = node.spawn("receiver", receiver);
  sender->start_sender(receiver_pid, 1);

  scheduler.schedule_after(0, [&]() {
    sender->sender->send(typed(sender_pid, 5));
  });
  scheduler.schedule_after(300 * kMillisecond, [&]() { node.kill(sender_pid); });
  scheduler.run_until(60 * kSecond);

  // The owner died mid-backoff: its retry timers were process-scoped, so
  // the transmission count froze instead of running out the budget.
  EXPECT_LT(sender->sender->sent(), 5u);
  EXPECT_EQ(sender->sender->abandoned(), 0u);
}

}  // namespace
}  // namespace wtc::sim
