// Cross-module property tests: invariants that must hold for ALL inputs of
// a class, exercised with parameterized sweeps and randomized fuzzing.
#include <gtest/gtest.h>

#include "audit/engine.hpp"
#include "callproc/vm_program.hpp"
#include "common/rng.hpp"
#include "db/api.hpp"
#include "db/controller_schema.hpp"
#include "inject/oracle.hpp"
#include "sim/scheduler.hpp"
#include "vm/interp.hpp"

namespace wtc {
namespace {

// ---------------------------------------------------------------------------
// Property: the audit engine CONVERGES for any single bit flip anywhere in
// the database region — after one full pass (plus recovery), a second pass
// reports nothing, and all static data equals the pristine image.
// ---------------------------------------------------------------------------

class AuditConvergence : public ::testing::TestWithParam<int> {};

TEST_P(AuditConvergence, SecondPassIsCleanAfterAnySingleFlip) {
  auto db = db::make_controller_database();
  const auto ids = db::resolve_controller_ids(db->schema());
  db::DbApi api(*db, []() { return sim::Time{0}; });
  api.init(9);
  // Two live calls so dynamic checks have active loops to look at.
  for (int call = 0; call < 2; ++call) {
    db::RecordIndex p = 0, c = 0, r = 0;
    ASSERT_EQ(api.alloc_rec(ids.process, db::kGroupActiveCalls, p), db::Status::Ok);
    ASSERT_EQ(api.alloc_rec(ids.connection, db::kGroupActiveCalls, c),
              db::Status::Ok);
    ASSERT_EQ(api.alloc_rec(ids.resource, db::kGroupActiveCalls, r), db::Status::Ok);
    api.write_fld(ids.process, p, ids.p_process_id, db::key_of(p));
    api.write_fld(ids.process, p, ids.p_connection_id, db::key_of(c));
    api.write_fld(ids.connection, c, ids.c_connection_id, db::key_of(c));
    api.write_fld(ids.connection, c, ids.c_channel_id, db::key_of(r));
    api.write_fld(ids.resource, r, ids.r_channel_id, db::key_of(r));
    api.write_fld(ids.resource, r, ids.r_process_id, db::key_of(p));
  }

  sim::Time now = 60 * sim::kSecond;  // well past the grace window
  audit::EngineConfig config;
  config.selective_monitoring = true;
  audit::AuditEngine engine(*db, config, [&now]() { return now; });

  // Deterministic sample of (offset, bit) pairs across the whole region.
  common::Rng rng(7000 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t offset = rng.uniform(db->region().size());
  const auto bit = static_cast<int>(rng.uniform(8));
  db->region()[offset] ^= static_cast<std::byte>(1 << bit);

  std::vector<db::TableId> order;
  for (std::size_t t = 0; t < db->table_count(); ++t) {
    order.push_back(static_cast<db::TableId>(t));
  }
  (void)engine.full_pass(order);
  now += 10 * sim::kSecond;
  const auto second = engine.full_pass(order);
  EXPECT_EQ(second.findings, 0u)
      << "offset " << offset << " bit " << bit << " did not converge";

  // Static data must equal pristine after repair.
  for (const auto& [span_offset, span_len] : db->static_spans()) {
    EXPECT_TRUE(std::equal(db->region().begin() + static_cast<std::ptrdiff_t>(span_offset),
                           db->region().begin() +
                               static_cast<std::ptrdiff_t>(span_offset + span_len),
                           db->pristine().begin() +
                               static_cast<std::ptrdiff_t>(span_offset)))
        << "static span at " << span_offset << " still corrupted";
  }
}

INSTANTIATE_TEST_SUITE_P(RegionSweep, AuditConvergence, ::testing::Range(0, 60));

// ---------------------------------------------------------------------------
// Property: the interpreter is total — ANY text survives execution without
// undefined behaviour; every run ends in a bounded, classifiable state.
// ---------------------------------------------------------------------------

class VmFuzz : public ::testing::TestWithParam<int> {};

TEST_P(VmFuzz, RandomTextAlwaysTerminatesClassifiably) {
  common::Rng rng(31337 + static_cast<std::uint64_t>(GetParam()) * 101);
  auto db = db::make_controller_database();
  db::DbApi api(*db, []() { return sim::Time{0}; });
  api.init(1);

  vm::Program program;
  const std::size_t size = 8 + rng.uniform(120);
  for (std::size_t i = 0; i < size; ++i) {
    // Mix of fully random words and random-but-defined opcodes, so the
    // fuzz reaches deep into execute() rather than tripping on decode.
    if (rng.chance(0.5)) {
      program.text.push_back(rng.next());
    } else {
      vm::Instr instr;
      instr.op = static_cast<vm::Opcode>(rng.uniform(47));
      instr.rd = static_cast<std::uint8_t>(rng.uniform(16));
      instr.ra = static_cast<std::uint8_t>(rng.uniform(16));
      instr.rb = static_cast<std::uint8_t>(rng.uniform(16));
      instr.imm = static_cast<std::int32_t>(rng.next());
      program.text.push_back(vm::encode(instr));
    }
  }

  vm::VmProcess process(program, api, rng.fork(1), {});
  process.spawn_thread(0);
  sim::Time now = 0;
  for (int quantum = 0; quantum < 200; ++quantum) {
    const auto state = process.thread(0).state();
    if (state != vm::ThreadState::Runnable && state != vm::ThreadState::Sleeping) {
      break;
    }
    now = std::max<sim::Time>(now + 1000, process.thread(0).wake_time());
    process.run_quantum(0, now);
  }
  const auto state = process.thread(0).state();
  // Runnable is acceptable too (an infinite loop) — the point is that we
  // got here without UB and the state is one of the defined ones.
  EXPECT_TRUE(state == vm::ThreadState::Halted || state == vm::ThreadState::Trapped ||
              state == vm::ThreadState::Runnable ||
              state == vm::ThreadState::Sleeping);
  if (state == vm::ThreadState::Trapped) {
    EXPECT_NE(process.thread(0).trap(), vm::Trap::None);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, VmFuzz, ::testing::Range(0, 60));

// ---------------------------------------------------------------------------
// Property: oracle fates are terminal — once an injection is decided, no
// later event re-decides it, under arbitrary event interleavings.
// ---------------------------------------------------------------------------

class OracleFuzz : public ::testing::TestWithParam<int> {};

TEST_P(OracleFuzz, FatesAreTerminalAndCountsConsistent) {
  auto db = db::make_controller_database();
  sim::Time now = 0;
  inject::CorruptionOracle oracle(*db, [&now]() { return now; });
  common::Rng rng(555 + static_cast<std::uint64_t>(GetParam()) * 13);

  std::vector<std::pair<std::uint64_t, inject::ErrorFate>> decided;
  for (int step = 0; step < 400; ++step) {
    now += rng.uniform(1000);
    const std::size_t offset = rng.uniform(db->region().size());
    switch (rng.uniform(3)) {
      case 0:
        oracle.record_injection(offset, static_cast<std::uint8_t>(rng.uniform(8)));
        break;
      case 1:
        oracle.on_client_read(1, offset, 1 + rng.uniform(64));
        break;
      default:
        oracle.on_legitimate_write(offset, 1 + rng.uniform(64));
        break;
    }
    if (rng.chance(0.1)) {
      audit::Finding finding;
      finding.offset = rng.uniform(db->region().size());
      finding.length = 1 + rng.uniform(256);
      oracle.on_finding(finding);
    }
    // Terminality: a decided record never changes fate.
    for (const auto& [id, fate] : decided) {
      EXPECT_EQ(oracle.records()[id].fate, fate);
    }
    for (const auto& record : oracle.records()) {
      if (record.fate != inject::ErrorFate::Pending &&
          decided.size() < 64) {
        bool known = false;
        for (const auto& [id, fate] : decided) {
          known |= id == record.id;
        }
        if (!known) {
          decided.emplace_back(record.id, record.fate);
        }
      }
    }
  }

  const auto summary = oracle.summary();
  EXPECT_EQ(summary.injected,
            summary.escaped + summary.caught + summary.overwritten + summary.latent);
}

INSTANTIATE_TEST_SUITE_P(RandomInterleavings, OracleFuzz, ::testing::Range(0, 20));

// ---------------------------------------------------------------------------
// Property: the scheduler clock is monotone and every scheduled event fires
// at (not before) its requested time, for random schedules.
// ---------------------------------------------------------------------------

class SchedulerFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerFuzz, ClockMonotoneAndOnTime) {
  sim::Scheduler scheduler;
  common::Rng rng(99 + static_cast<std::uint64_t>(GetParam()) * 7);
  sim::Time last_seen = 0;
  int fired = 0;

  std::function<void(int)> spawn = [&](int depth) {
    const sim::Time at = scheduler.now() + rng.uniform(10'000);
    scheduler.schedule_at(at, [&, at, depth]() {
      ++fired;
      EXPECT_GE(scheduler.now(), at);
      EXPECT_GE(scheduler.now(), last_seen);
      last_seen = scheduler.now();
      if (depth < 3 && rng.chance(0.5)) {
        spawn(depth + 1);
        spawn(depth + 1);
      }
    });
  };
  for (int i = 0; i < 50; ++i) {
    spawn(0);
  }
  scheduler.run();
  EXPECT_GE(fired, 50);
  EXPECT_TRUE(scheduler.empty());
}

INSTANTIATE_TEST_SUITE_P(RandomSchedules, SchedulerFuzz, ::testing::Range(0, 10));

}  // namespace
}  // namespace wtc
