// Incremental (dirty-tracking) audit: generation bookkeeping in the store
// and the epoch-watermark scan variants in the engine.
#include <gtest/gtest.h>

#include <vector>

#include "audit/engine.hpp"
#include "db/api.hpp"
#include "db/controller_schema.hpp"
#include "db/direct.hpp"

namespace wtc::audit {
namespace {

class CollectingSink : public ReportSink {
 public:
  void on_finding(const Finding& finding) override { findings.push_back(finding); }
  [[nodiscard]] std::size_t count(Technique technique) const {
    std::size_t n = 0;
    for (const auto& finding : findings) {
      if (finding.technique == technique) {
        ++n;
      }
    }
    return n;
  }
  std::vector<Finding> findings;
};

class RecordingControl : public ClientControl {
 public:
  void terminate_client_thread(sim::ProcessId client, std::uint32_t thread) override {
    terminated.emplace_back(client, thread);
  }
  void kill_client_process(sim::ProcessId client) override {
    killed.push_back(client);
  }
  std::vector<std::pair<sim::ProcessId, std::uint32_t>> terminated;
  std::vector<sim::ProcessId> killed;
};

class IncrementalAuditTest : public ::testing::Test {
 protected:
  IncrementalAuditTest()
      : db_(db::make_controller_database()),
        ids_(db::resolve_controller_ids(db_->schema())),
        api_(*db_, [this]() { return now_; }) {
    config_.recent_write_grace = 1000;  // 1ms grace for tests
    config_.incremental = true;
    remake_engine();
    api_.init(77);
    api_.set_audit_hooks(&null_sink_);  // metadata upkeep on
  }

  /// Rebuilds the engine after a config change (watermarks reset too).
  void remake_engine() {
    engine_ = std::make_unique<AuditEngine>(*db_, config_,
                                            [this]() { return now_; });
    engine_->set_report_sink(&sink_);
    engine_->set_client_control(&control_);
  }

  /// Sets up one complete, intact call loop; returns (p, c, r).
  std::array<db::RecordIndex, 3> make_call(std::uint32_t thread = 0) {
    api_.set_thread_id(thread);
    db::RecordIndex p = 0, c = 0, r = 0;
    EXPECT_EQ(api_.alloc_rec(ids_.process, db::kGroupActiveCalls, p), db::Status::Ok);
    EXPECT_EQ(api_.alloc_rec(ids_.connection, db::kGroupActiveCalls, c),
              db::Status::Ok);
    EXPECT_EQ(api_.alloc_rec(ids_.resource, db::kGroupActiveCalls, r), db::Status::Ok);
    api_.write_fld(ids_.process, p, ids_.p_process_id, db::key_of(p));
    api_.write_fld(ids_.process, p, ids_.p_connection_id, db::key_of(c));
    api_.write_fld(ids_.process, p, ids_.p_status, 1);
    api_.write_fld(ids_.connection, c, ids_.c_connection_id, db::key_of(c));
    api_.write_fld(ids_.connection, c, ids_.c_channel_id, db::key_of(r));
    api_.write_fld(ids_.connection, c, ids_.c_state, 1);
    api_.write_fld(ids_.resource, r, ids_.r_channel_id, db::key_of(r));
    api_.write_fld(ids_.resource, r, ids_.r_process_id, db::key_of(p));
    api_.write_fld(ids_.resource, r, ids_.r_status, 1);
    advance();  // step past the write-grace window
    return {p, c, r};
  }

  void advance(sim::Time delta = 10'000) { now_ += delta; }

  [[nodiscard]] std::vector<db::TableId> all_tables() const {
    std::vector<db::TableId> order;
    for (std::size_t t = 0; t < db_->table_count(); ++t) {
      order.push_back(static_cast<db::TableId>(t));
    }
    return order;
  }

  class NullSink : public db::NotificationSink {
   public:
    void on_api_event(const db::ApiEvent&) override {}
  };

  std::unique_ptr<db::Database> db_;
  db::ControllerIds ids_;
  EngineConfig config_;
  std::unique_ptr<AuditEngine> engine_;
  CollectingSink sink_;
  RecordingControl control_;
  NullSink null_sink_;
  db::DbApi api_;
  sim::Time now_ = 0;
};

// --- dirty bookkeeping in the store ---

TEST_F(IncrementalAuditTest, ApiWritesStampGenerations) {
  const auto [p, c, r] = make_call();
  (void)p;
  (void)r;
  const std::uint64_t before = db_->write_generation();
  const std::uint64_t field_before = db_->field_generation(ids_.connection, c);
  const std::uint64_t header_before = db_->header_generation(ids_.connection, c);

  api_.write_fld(ids_.connection, c, ids_.c_state, 2);

  // The global counter advanced and was stamped on the record's field area;
  // a pure field write must not disturb the header generation (that is what
  // lets the structural check skip call-data churn).
  EXPECT_GT(db_->write_generation(), before);
  EXPECT_GT(db_->field_generation(ids_.connection, c), field_before);
  EXPECT_EQ(db_->header_generation(ids_.connection, c), header_before);
  EXPECT_EQ(db_->table_field_generation(ids_.connection),
            db_->field_generation(ids_.connection, c));

  const std::size_t at =
      db_->layout().field_offset(ids_.connection, c, ids_.c_state);
  EXPECT_TRUE(db_->span_written_since(at, 4, before));
}

TEST_F(IncrementalAuditTest, DirectWritesStampGenerations) {
  const auto [p, c, r] = make_call();
  (void)p;
  (void)r;
  const std::uint64_t field_before = db_->field_generation(ids_.connection, c);
  db::direct::write_field(*db_, ids_.connection, c, ids_.c_state, 3);
  EXPECT_GT(db_->field_generation(ids_.connection, c), field_before);

  // repair_header rewrites the 16-byte header: header generation moves.
  const std::uint64_t header_before = db_->header_generation(ids_.connection, c);
  db::direct::repair_header(*db_, ids_.connection, c);
  EXPECT_GT(db_->header_generation(ids_.connection, c), header_before);
}

TEST_F(IncrementalAuditTest, InjectorMarkWrittenStampsGenerations) {
  const auto [p, c, r] = make_call();
  (void)p;
  (void)r;
  // Through-store corruption (the injector's path): flip a byte in place,
  // then mark the span — exactly what DbErrorInjector does.
  const std::size_t field_at =
      db_->layout().field_offset(ids_.connection, c, ids_.c_state);
  const std::uint64_t field_before = db_->field_generation(ids_.connection, c);
  const std::uint64_t header_before = db_->header_generation(ids_.connection, c);
  db_->region()[field_at] ^= std::byte{0x40};
  db_->mark_written(field_at, 1);
  EXPECT_GT(db_->field_generation(ids_.connection, c), field_before);
  EXPECT_EQ(db_->header_generation(ids_.connection, c), header_before);

  // A header-byte mark moves the header generation, not the field one.
  const std::size_t header_at = db_->layout().record_offset(ids_.connection, c);
  const std::uint64_t field_now = db_->field_generation(ids_.connection, c);
  db_->region()[header_at] ^= std::byte{0x01};
  db_->mark_written(header_at, 1);
  EXPECT_GT(db_->header_generation(ids_.connection, c), header_before);
  EXPECT_EQ(db_->field_generation(ids_.connection, c), field_now);
}

// --- incremental scans: skip clean data, rescan dirty data ---

TEST_F(IncrementalAuditTest, CleanDataCostsNothingAfterWatermarkAdoption) {
  make_call();
  make_call(1);
  const auto first = engine_->incremental_pass(all_tables());
  EXPECT_EQ(first.findings, 0u);
  EXPECT_GT(first.cost, 0);  // everything was dirty relative to watermark 0

  // No writes since: every check proves table-level cleanliness from the
  // generation counters and books zero cost.
  EXPECT_EQ(engine_->check_static_incremental().cost, 0);
  EXPECT_EQ(engine_->check_structure_incremental(ids_.process).cost, 0);
  EXPECT_EQ(engine_->check_ranges_incremental(ids_.connection).cost, 0);
  const auto second = engine_->incremental_pass(all_tables());
  EXPECT_EQ(second.findings, 0u);
  EXPECT_LT(second.cost, first.cost);
}

TEST_F(IncrementalAuditTest, IncrementalRangeAuditCatchesThroughStoreCorruption) {
  const auto [p, c, r] = make_call();
  (void)p;
  (void)r;
  ASSERT_EQ(engine_->incremental_pass(all_tables()).findings, 0u);

  // state has range [0,4]; injector-style corruption through the store.
  const std::size_t at =
      db_->layout().field_offset(ids_.connection, c, ids_.c_state);
  db::store_i32(db_->region(), at, 99);
  db_->mark_written(at, 4);

  const auto result = engine_->check_ranges_incremental(ids_.connection);
  EXPECT_EQ(result.findings, 1u);
  EXPECT_EQ(sink_.count(Technique::RangeCheck), 1u);
}

TEST_F(IncrementalAuditTest, GraceSkipHoldsWatermarkForNextCycle) {
  const auto [p, c, r] = make_call();
  (void)p;
  (void)r;
  ASSERT_EQ(engine_->check_ranges_incremental(ids_.connection).findings, 0u);

  api_.write_fld(ids_.connection, c, ids_.c_state, 1);  // fresh write
  db::direct::write_field(*db_, ids_.connection, c, ids_.c_state, 99);
  // Still within the write-grace window: the record is skipped unverified,
  // so the scan must hold its watermark below the record's generation.
  EXPECT_EQ(engine_->check_ranges_incremental(ids_.connection).findings, 0u);
  advance();
  // No further writes — only the held-back watermark makes the record dirty
  // again. If the scan had adopted its start-of-scan mark unconditionally,
  // this corruption would never be revisited.
  EXPECT_EQ(engine_->check_ranges_incremental(ids_.connection).findings, 1u);
}

// --- the full-sweep escape hatch for bypass corruption ---

TEST_F(IncrementalAuditTest, FullSweepCatchesBypassCorruption) {
  config_.full_sweep_interval = 3;
  remake_engine();
  const auto [p, c, r] = make_call();
  (void)p;
  (void)r;
  ASSERT_EQ(engine_->incremental_pass(all_tables()).findings, 0u);

  // Raw memory flip with NO dirty stamp — models a hardware upset that
  // bypassed the store entirely.
  const std::size_t at =
      db_->layout().field_offset(ids_.connection, c, ids_.c_state);
  db::store_i32(db_->region(), at, 99);

  // Cycle 2: pure incremental scan sees no dirty stamp and misses it.
  EXPECT_EQ(engine_->incremental_pass(all_tables()).findings, 0u);
  EXPECT_EQ(engine_->full_sweeps(), 0u);
  // Cycle 3 is the exhaustive sweep: bounded detection latency.
  EXPECT_GE(engine_->incremental_pass(all_tables()).findings, 1u);
  EXPECT_EQ(engine_->full_sweeps(), 1u);
  EXPECT_EQ(sink_.count(Technique::RangeCheck), 1u);
}

TEST_F(IncrementalAuditTest, FullSweepCatchesBypassStaticCorruption) {
  config_.full_sweep_interval = 2;
  remake_engine();
  ASSERT_EQ(engine_->incremental_pass(all_tables()).findings, 0u);

  const std::size_t at = db_->layout().field_offset(ids_.subscriber, 5, 1);
  db_->region()[at] ^= std::byte{0x01};  // no mark_written

  EXPECT_EQ(engine_->check_static_incremental().findings, 0u);
  // Cycle 2 sweeps: checksum mismatch found, chunk reloaded from disk.
  EXPECT_EQ(engine_->incremental_pass(all_tables()).findings, 1u);
  EXPECT_EQ(db::load_i32(db_->region(), at), db::subscriber_auth_key(5));
}

// --- scrub attestation on the free paths ---

TEST_F(IncrementalAuditTest, FreedRecordScrubIsAttestedAndSkipped) {
  const auto [p, c, r] = make_call();
  (void)p;
  (void)r;
  ASSERT_EQ(api_.free_rec(ids_.connection, c), db::Status::Ok);
  advance();

  // The free wrote the whole field area back to catalog defaults and
  // attested it: field and scrub generations coincide, so the incremental
  // range audit proves the record clean without reading a single field.
  EXPECT_EQ(db_->field_generation(ids_.connection, c),
            db_->scrub_generation(ids_.connection, c));
  EXPECT_EQ(engine_->check_ranges_incremental(ids_.connection).findings, 0u);

  // Any later field write — legitimate or injected — breaks the attestation.
  const std::size_t at =
      db_->layout().field_offset(ids_.connection, c, ids_.c_state);
  db::store_i32(db_->region(), at, 99);
  db_->mark_written(at, 4);
  EXPECT_GT(db_->field_generation(ids_.connection, c),
            db_->scrub_generation(ids_.connection, c));
  EXPECT_EQ(engine_->check_ranges_incremental(ids_.connection).findings, 1u);
}

TEST_F(IncrementalAuditTest, RepairHeaderDropScrubsStaleFields) {
  const auto [p, c, r] = make_call();
  (void)p;
  (void)r;
  // Unrecoverable status: repair drops the record to FREE. The stale call
  // data must be scrubbed with it — a status transition with no field write
  // would silently change which range rules apply.
  const std::size_t at = db_->layout().record_offset(ids_.connection, c);
  db::store_u32(db_->region(), at + 4, 0xDEADBEEFu);
  db_->mark_written(at + 4, 4);
  db::direct::repair_header(*db_, ids_.connection, c);

  EXPECT_EQ(db::direct::read_header(*db_, ids_.connection, c).status,
            db::kStatusFree);
  const auto& fields = db_->schema().tables.at(ids_.connection).fields;
  for (db::FieldId f = 0; f < fields.size(); ++f) {
    EXPECT_EQ(db::direct::read_field(*db_, ids_.connection, c, f),
              fields[f].default_value);
  }
  EXPECT_EQ(db_->field_generation(ids_.connection, c),
            db_->scrub_generation(ids_.connection, c));
  advance();
  EXPECT_EQ(engine_->check_ranges_incremental(ids_.connection).findings, 0u);
}

}  // namespace
}  // namespace wtc::audit
