// Tests for the parallel Monte-Carlo campaign runner (DESIGN.md §9):
// determinism across repeats and across worker counts, exception capture,
// and the per-run progress contract.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "experiments/campaign.hpp"
#include "experiments/prioritized_runner.hpp"

namespace wtc::experiments {
namespace {

PrioritizedRunParams small_params() {
  PrioritizedRunParams params;
  params.duration = 60 * static_cast<sim::Duration>(sim::kSecond);
  params.error_mtbf = 2 * static_cast<sim::Duration>(sim::kSecond);
  params.seed = 0x7E57;
  return params;
}

bool same_result(const PrioritizedRunResult& a, const PrioritizedRunResult& b) {
  return a.injected == b.injected && a.escaped == b.escaped &&
         a.caught == b.caught && a.escaped_percent == b.escaped_percent &&
         a.detection_latency_s == b.detection_latency_s;
}

TEST(Campaign, SameSeedTwiceGivesIdenticalResults) {
  set_default_campaign_jobs(4);
  const auto first = run_prioritized_series(small_params(), 4);
  const auto second = run_prioritized_series(small_params(), 4);
  set_default_campaign_jobs(0);
  EXPECT_TRUE(same_result(first, second));
}

TEST(Campaign, SerialAndParallelAggregatesAreIdentical) {
  set_default_campaign_jobs(1);
  const auto serial = run_prioritized_series(small_params(), 6);
  set_default_campaign_jobs(8);
  const auto parallel = run_prioritized_series(small_params(), 6);
  set_default_campaign_jobs(0);
  // Seed-ordered aggregation: every field, including the order-sensitive
  // floating-point means, must match bit for bit.
  EXPECT_TRUE(same_result(serial, parallel));
  EXPECT_GT(serial.injected, 0u);
}

TEST(Campaign, ResultsAreIndexedByRunNotCompletionOrder) {
  CampaignOptions options;
  options.jobs = 8;
  const auto results = run_campaign(
      32, [](std::size_t i) { return i * i; }, options);
  ASSERT_EQ(results.size(), 32u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(Campaign, WorkerExceptionIsCapturedAndReported) {
  CampaignOptions options;
  options.jobs = 4;
  options.label = "boom";
  try {
    run_campaign(
        16,
        [](std::size_t i) -> int {
          if (i == 5) {
            throw std::runtime_error("synthetic failure");
          }
          return 0;
        },
        options);
    FAIL() << "expected CampaignError";
  } catch (const CampaignError& e) {
    EXPECT_EQ(e.run_index(), 5u);
    EXPECT_NE(std::string(e.what()).find("run 5"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("synthetic failure"),
              std::string::npos);
  }
}

TEST(Campaign, SerialPathAlsoWrapsExceptions) {
  CampaignOptions options;
  options.jobs = 1;
  EXPECT_THROW(run_campaign(
                   4,
                   [](std::size_t i) -> int {
                     if (i == 2) {
                       throw std::runtime_error("serial failure");
                     }
                     return 0;
                   },
                   options),
               CampaignError);
}

TEST(Campaign, ProgressCallbackFiresOncePerCompletedRun) {
  constexpr std::size_t kRuns = 24;
  CampaignOptions options;
  options.jobs = 6;
  std::vector<std::size_t> completions;
  options.on_progress = [&](std::size_t completed, std::size_t total) {
    EXPECT_EQ(total, kRuns);
    completions.push_back(completed);
  };
  (void)run_campaign(kRuns, [](std::size_t i) { return i; }, options);
  ASSERT_EQ(completions.size(), kRuns);
  // The callback is serialized under the campaign lock, so the completed
  // counts it observes are exactly 1..N in order.
  for (std::size_t i = 0; i < kRuns; ++i) {
    EXPECT_EQ(completions[i], i + 1);
  }
}

TEST(Campaign, SubmitJoinReturnsResultsInSubmissionOrder) {
  CampaignOptions options;
  options.jobs = 4;
  Campaign<int, int> campaign([](const int& p) { return p * 3; }, options);
  for (int p = 0; p < 10; ++p) {
    campaign.submit(p);
  }
  EXPECT_EQ(campaign.size(), 10u);
  const auto results = campaign.join();
  ASSERT_EQ(results.size(), 10u);
  for (int p = 0; p < 10; ++p) {
    EXPECT_EQ(results[static_cast<std::size_t>(p)], p * 3);
  }
  EXPECT_EQ(campaign.size(), 0u);
}

TEST(Campaign, ZeroRunsIsANoOp) {
  std::atomic<int> calls{0};
  const auto results = run_campaign(0, [&](std::size_t) {
    ++calls;
    return 1;
  });
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(calls.load(), 0);
}

TEST(Campaign, ResolveJobsFallsBackToHardwareConcurrency) {
  set_default_campaign_jobs(0);
  EXPECT_GE(resolve_campaign_jobs(0), 1u);
  EXPECT_EQ(resolve_campaign_jobs(3), 3u);
  set_default_campaign_jobs(2);
  EXPECT_EQ(resolve_campaign_jobs(0), 2u);
  set_default_campaign_jobs(0);
}

}  // namespace
}  // namespace wtc::experiments
