// Tests for the shadow group/free index (db/index.hpp) and the O(1)
// splice hot path built on it: byte-equivalence against the full-relink
// reference, self-resync through every store write path, and the
// advisory-index recovery behaviour under raw (store-bypassing)
// corruption.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "db/api.hpp"
#include "db/controller_schema.hpp"
#include "db/direct.hpp"
#include "obs/metrics.hpp"

namespace wtc::db {
namespace {

bool regions_equal(const Database& a, const Database& b) {
  const auto ra = a.region();
  const auto rb = b.region();
  return ra.size() == rb.size() &&
         std::memcmp(ra.data(), rb.data(), ra.size()) == 0;
}

bool all_indexes_verify(const Database& db) {
  for (TableId t = 0; t < db.table_count(); ++t) {
    if (!db.verify_index(t)) {
      return false;
    }
  }
  return true;
}

class IndexTest : public ::testing::Test {
 protected:
  IndexTest()
      : db_(make_controller_database()),
        ids_(resolve_controller_ids(db_->schema())),
        api_(*db_, []() { return sim::Time{0}; }) {
    api_.init(100);
  }

  std::unique_ptr<Database> db_;
  ControllerIds ids_;
  DbApi api_;
};

TEST_F(IndexTest, FreshDatabaseIndexMatchesRegion) {
  EXPECT_TRUE(all_indexes_verify(*db_));
  // Every dynamic record starts on the free list.
  const auto total = db_->schema().tables[ids_.process].num_records;
  EXPECT_EQ(db_->index(ids_.process).free_count(), total);
  EXPECT_EQ(db_->index(ids_.process).first_free(), std::optional<RecordIndex>{0});
}

TEST_F(IndexTest, ApiMutationsKeepIndexInSync) {
  RecordIndex a = 0;
  RecordIndex b = 0;
  ASSERT_EQ(api_.alloc_rec(ids_.process, kGroupActiveCalls, a), Status::Ok);
  ASSERT_EQ(api_.alloc_rec(ids_.process, kGroupActiveCalls, b), Status::Ok);
  EXPECT_TRUE(db_->verify_index(ids_.process));
  ASSERT_EQ(api_.move_rec(ids_.process, a, kGroupStableCalls), Status::Ok);
  EXPECT_TRUE(db_->verify_index(ids_.process));
  ASSERT_EQ(api_.free_rec(ids_.process, b), Status::Ok);
  EXPECT_TRUE(db_->verify_index(ids_.process));
  const auto& index = db_->index(ids_.process);
  EXPECT_EQ(index.group_of(a), kGroupStableCalls);
  EXPECT_TRUE(index.members(kGroupActiveCalls).empty());
}

// The heart of the PR: a randomized alloc/free/move campaign driven
// identically through a splice-mode API and a full-relink API must keep
// the two regions byte-identical at every step (the splice is not an
// approximation of the invariant — it produces the same bytes), and the
// splice side's shadow index must continuously match its region.
TEST_F(IndexTest, RandomizedCampaignMatchesFullRelinkByteForByte) {
  auto relink_db = make_controller_database();
  DbApi relink_api(*relink_db, []() { return sim::Time{0}; });
  relink_api.set_link_mode(LinkMode::FullRelink);
  relink_api.init(100);
  ASSERT_EQ(api_.link_mode(), LinkMode::Splice);
  ASSERT_TRUE(regions_equal(*db_, *relink_db));

  common::Rng rng(0xD5171DE5u);
  const TableId tables[] = {ids_.process, ids_.connection, ids_.resource};
  std::vector<std::vector<RecordIndex>> active(3);
  for (int op = 0; op < 2000; ++op) {
    const auto which = rng.uniform(3);
    const TableId t = tables[which];
    auto& live = active[which];
    const auto kind = rng.uniform(3);
    if (kind == 0 || live.empty()) {
      const auto group =
          rng.uniform(2) == 0 ? kGroupActiveCalls : kGroupStableCalls;
      RecordIndex r1 = 0;
      RecordIndex r2 = 0;
      const Status s1 = api_.alloc_rec(t, group, r1);
      const Status s2 = relink_api.alloc_rec(t, group, r2);
      ASSERT_EQ(s1, s2);
      if (s1 == Status::Ok) {
        ASSERT_EQ(r1, r2);  // both must pick the lowest-index free slot
        live.push_back(r1);
      }
    } else {
      const auto pick = rng.uniform(live.size());
      const RecordIndex r = live[pick];
      if (kind == 1) {
        ASSERT_EQ(api_.free_rec(t, r), Status::Ok);
        ASSERT_EQ(relink_api.free_rec(t, r), Status::Ok);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      } else {
        const auto group =
            rng.uniform(2) == 0 ? kGroupActiveCalls : kGroupStableCalls;
        ASSERT_EQ(api_.move_rec(t, r, group), Status::Ok);
        ASSERT_EQ(relink_api.move_rec(t, r, group), Status::Ok);
      }
    }
    ASSERT_TRUE(regions_equal(*db_, *relink_db)) << "after op " << op;
    if (op % 64 == 0) {
      ASSERT_TRUE(all_indexes_verify(*db_)) << "after op " << op;
    }
  }
  EXPECT_TRUE(all_indexes_verify(*db_));
}

TEST_F(IndexTest, IndexRebuiltAfterReloadAndInstallImage) {
  RecordIndex r = 0;
  ASSERT_EQ(api_.alloc_rec(ids_.process, kGroupActiveCalls, r), Status::Ok);
  ASSERT_EQ(api_.alloc_rec(ids_.connection, kGroupActiveCalls, r), Status::Ok);

  // Snapshot the mutated region and install it into a fresh database: the
  // install goes through the store, so the indexes must match the image.
  const auto live = db_->region();
  const std::vector<std::byte> image(live.begin(), live.end());
  auto other = make_controller_database();
  ASSERT_TRUE(other->install_image(image));
  EXPECT_TRUE(all_indexes_verify(*other));
  EXPECT_EQ(other->index(ids_.process).members(kGroupActiveCalls).size(), 1u);

  // A full reload-from-disk (recovery escalation) rewinds the region to
  // the pristine image; the resync must follow it back.
  db_->reload_all_from_disk();
  EXPECT_TRUE(all_indexes_verify(*db_));
  EXPECT_TRUE(db_->index(ids_.process).members(kGroupActiveCalls).empty());
}

TEST_F(IndexTest, AuditHeaderRepairResyncsIndex) {
  RecordIndex r = 0;
  ASSERT_EQ(api_.alloc_rec(ids_.process, kGroupActiveCalls, r), Status::Ok);

  // Raw-corrupt the group word (bypassing the store): the region now
  // disagrees with the index, exactly the blind spot the audit covers.
  const std::size_t at = db_->layout().record_offset(ids_.process, r);
  store_u32(db_->region(), at + 8, 7);
  EXPECT_FALSE(db_->verify_index(ids_.process));

  // The audit's header repair writes through the store; its note_write
  // must drag the shadow index back into sync with the repaired header.
  direct::repair_header(*db_, ids_.process, r);
  EXPECT_TRUE(db_->verify_index(ids_.process));
}

TEST_F(IndexTest, ThroughStoreCorruptionResyncsIndex) {
  RecordIndex r = 0;
  ASSERT_EQ(api_.alloc_rec(ids_.process, kGroupActiveCalls, r), Status::Ok);

  // The injector's through_store mode: flip a bit, then mark_written —
  // the same path a wild software write takes through the memory system.
  const std::size_t status_at =
      db_->layout().record_offset(ids_.process, r) + 4;
  db_->region()[status_at] ^= std::byte{0x01};
  db_->mark_written(status_at, 1);
  EXPECT_TRUE(db_->verify_index(ids_.process));
}

TEST_F(IndexTest, AllocRecoversFromStaleFreeIndex) {
  // Raw-corrupt the status word of the lowest free record to "active"
  // without telling the store: the free index still advertises it. The
  // splice-mode alloc must detect the lie against the region, rebuild the
  // index, and hand out a record that really is free.
  const auto first = db_->index(ids_.process).first_free();
  ASSERT_TRUE(first.has_value());
  const std::size_t at = db_->layout().record_offset(ids_.process, *first);
  store_u32(db_->region(), at + 4, kStatusActive);

  obs::Recorder recorder;
  RecordIndex r = 0;
  {
    obs::ScopedRecorder scoped(recorder);
    ASSERT_EQ(api_.alloc_rec(ids_.process, kGroupActiveCalls, r), Status::Ok);
  }
  EXPECT_NE(r, *first);
  EXPECT_EQ(load_u32(db_->region(),
                     db_->layout().record_offset(ids_.process, r) + 4),
            kStatusActive);
  EXPECT_EQ(recorder.snapshot().counter(obs::Counter::db_index_rebuilds), 1u);
  EXPECT_TRUE(db_->verify_index(ids_.process));
}

TEST_F(IndexTest, CrossCheckModeHealsDesyncBeforeSplice) {
  RecordIndex a = 0;
  RecordIndex b = 0;
  ASSERT_EQ(api_.alloc_rec(ids_.process, kGroupActiveCalls, a), Status::Ok);
  ASSERT_EQ(api_.alloc_rec(ids_.process, kGroupActiveCalls, b), Status::Ok);

  // Raw-corrupt record a's group word so the index is stale, then mutate
  // record b with the paranoid cross-check on: the API must notice the
  // desync, heal the index from the region, and splice correctly.
  const std::size_t at = db_->layout().record_offset(ids_.process, a);
  store_u32(db_->region(), at + 8, kGroupStableCalls);
  db_->set_index_cross_check(true);
  ASSERT_EQ(api_.move_rec(ids_.process, b, kGroupStableCalls), Status::Ok);
  EXPECT_TRUE(db_->verify_index(ids_.process));
  EXPECT_EQ(db_->index(ids_.process).group_of(a), kGroupStableCalls);
}

TEST_F(IndexTest, AllocExhaustionAndRefillThroughIndex) {
  const auto total = db_->schema().tables[ids_.connection].num_records;
  RecordIndex r = 0;
  for (RecordIndex i = 0; i < total; ++i) {
    ASSERT_EQ(api_.alloc_rec(ids_.connection, kGroupActiveCalls, r), Status::Ok);
  }
  EXPECT_EQ(db_->index(ids_.connection).free_count(), 0u);
  EXPECT_EQ(api_.alloc_rec(ids_.connection, kGroupActiveCalls, r),
            Status::NoFreeRecord);
  ASSERT_EQ(api_.free_rec(ids_.connection, 3), Status::Ok);
  ASSERT_EQ(api_.alloc_rec(ids_.connection, kGroupActiveCalls, r), Status::Ok);
  EXPECT_EQ(r, 3u);  // the index hands back the only (lowest) free slot
  EXPECT_TRUE(db_->verify_index(ids_.connection));
}

// Satellite: the observer accounting on DBalloc. The splice-mode alloc
// consults exactly one record header (the popped free slot); the legacy
// scan reads one header per scanned record. Each must charge the oracle
// for precisely the headers it actually read.
class CountingObserver : public RegionObserver {
 public:
  void on_legitimate_write(std::size_t, std::size_t) override {}
  void on_client_read(sim::ProcessId, std::size_t offset, std::size_t len) override {
    ++reads;
    last_offset = offset;
    last_len = len;
  }
  int reads = 0;
  std::size_t last_offset = 0;
  std::size_t last_len = 0;
};

TEST_F(IndexTest, SpliceAllocChargesExactlyOneHeaderRead) {
  RecordIndex r = 0;
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(api_.alloc_rec(ids_.process, kGroupActiveCalls, r), Status::Ok);
  }
  CountingObserver counting;
  db_->set_observer(&counting);
  ASSERT_EQ(api_.alloc_rec(ids_.process, kGroupActiveCalls, r), Status::Ok);
  db_->set_observer(nullptr);
  EXPECT_EQ(r, 5u);
  EXPECT_EQ(counting.reads, 1);
  EXPECT_EQ(counting.last_offset,
            db_->layout().record_offset(ids_.process, r) + 4);
  EXPECT_EQ(counting.last_len, 4u);
}

TEST_F(IndexTest, FullRelinkAllocChargesOneReadPerScannedHeader) {
  api_.set_link_mode(LinkMode::FullRelink);
  RecordIndex r = 0;
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(api_.alloc_rec(ids_.process, kGroupActiveCalls, r), Status::Ok);
  }
  CountingObserver counting;
  db_->set_observer(&counting);
  ASSERT_EQ(api_.alloc_rec(ids_.process, kGroupActiveCalls, r), Status::Ok);
  db_->set_observer(nullptr);
  EXPECT_EQ(r, 5u);
  EXPECT_EQ(counting.reads, 6);  // headers 0..5 scanned, one charge each
}

}  // namespace
}  // namespace wtc::db
