#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"
#include "db/robust_list.hpp"

namespace wtc::db {
namespace {

constexpr std::uint32_t kCapacity = 12;

struct ListFixture {
  ListFixture() : storage(RobustList::storage_bytes(kCapacity)), list(storage, kCapacity) {
    list.format();
    // Members: every third slot plus a couple extra — irregular on purpose.
    for (const std::uint32_t slot : {1u, 4u, 5u, 7u, 10u}) {
      EXPECT_TRUE(list.push_back(slot));
      members.push_back(slot);
    }
  }

  std::vector<std::byte> storage;
  RobustList list;
  std::vector<std::uint32_t> members;
};

TEST(RobustList, FormatAndBasicOps) {
  std::vector<std::byte> storage(RobustList::storage_bytes(8));
  RobustList list(storage, 8);
  list.format();
  EXPECT_EQ(list.count(), 0u);
  EXPECT_EQ(list.head(), RobustList::kNil);
  EXPECT_TRUE(list.forward_chain().empty());

  EXPECT_TRUE(list.push_back(3));
  EXPECT_TRUE(list.push_back(1));
  EXPECT_TRUE(list.push_back(6));
  EXPECT_FALSE(list.push_back(3));   // already a member
  EXPECT_FALSE(list.push_back(99));  // out of range
  EXPECT_EQ(list.count(), 3u);
  EXPECT_EQ(list.forward_chain(), (std::vector<std::uint32_t>{3, 1, 6}));
  EXPECT_EQ(list.backward_chain(), (std::vector<std::uint32_t>{6, 1, 3}));
  EXPECT_TRUE(list.contains(1));
  EXPECT_FALSE(list.contains(0));

  EXPECT_TRUE(list.remove(1));  // interior
  EXPECT_EQ(list.forward_chain(), (std::vector<std::uint32_t>{3, 6}));
  EXPECT_TRUE(list.remove(3));  // head
  EXPECT_TRUE(list.remove(6));  // tail & last
  EXPECT_EQ(list.count(), 0u);
  EXPECT_FALSE(list.remove(6));
}

TEST(RobustList, CleanAuditReportsNothing) {
  ListFixture f;
  const auto result = f.list.audit();
  EXPECT_TRUE(result.clean());
  EXPECT_EQ(f.list.forward_chain(), f.members);
}

/// Property: ANY single corrupted 32-bit field — header magic/count/head/
/// tail or any node's tag/prev/next, member or not — is detected and
/// corrected, restoring the exact membership sequence (footnote 3's
/// "single pointer corruption ... detected and corrected").
class SingleFieldCorruption : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SingleFieldCorruption, DetectedAndCorrected) {
  ListFixture f;
  const std::size_t field_offset = GetParam() * 4;
  ASSERT_LT(field_offset + 4, f.storage.size() + 1);

  // Flip a bit whose position varies with the field, covering low and
  // high bits across the sweep.
  const int bit = static_cast<int>((GetParam() * 7) % 32);
  std::uint32_t word = 0;
  std::memcpy(&word, f.storage.data() + field_offset, 4);
  word ^= 1u << bit;
  std::memcpy(f.storage.data() + field_offset, &word, 4);

  const auto result = f.list.audit();
  EXPECT_TRUE(result.structure_valid) << "field " << GetParam();
  EXPECT_GE(result.errors_detected, 1u) << "field " << GetParam();
  EXPECT_EQ(result.errors_corrected, result.errors_detected);
  EXPECT_EQ(f.list.forward_chain(), f.members) << "field " << GetParam();
  EXPECT_EQ(f.list.count(), f.members.size());
  // A follow-up audit is clean.
  EXPECT_TRUE(f.list.audit().clean());
}

INSTANTIATE_TEST_SUITE_P(
    AllFields, SingleFieldCorruption,
    ::testing::Range<std::size_t>(0, RobustList::storage_bytes(kCapacity) / 4));

/// Property: random double corruptions never silently pass — they are
/// either corrected back to the original sequence or flagged.
class DoubleCorruption : public ::testing::TestWithParam<int> {};

TEST_P(DoubleCorruption, NeverSilentlyIgnored) {
  ListFixture f;
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 5);
  for (int i = 0; i < 2; ++i) {
    const std::size_t offset = rng.uniform(f.storage.size());
    f.storage[offset] ^= static_cast<std::byte>(1u << rng.uniform(8));
  }
  const auto result = f.list.audit();
  if (result.structure_valid && result.errors_detected == 0) {
    // Claimed clean: the flips must have cancelled out exactly.
    EXPECT_EQ(f.list.forward_chain(), f.members);
  }
  if (result.structure_valid) {
    // Whatever was rebuilt must at least be self-consistent.
    const auto chain = f.list.forward_chain();
    auto backward = f.list.backward_chain();
    std::reverse(backward.begin(), backward.end());
    EXPECT_EQ(chain, backward);
    EXPECT_EQ(f.list.count(), chain.size());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPairs, DoubleCorruption, ::testing::Range(0, 40));

TEST(RobustList, UncorrectableDamageIsFlagged) {
  ListFixture f;
  // Destroy both directions: head, tail, and several node links at once.
  std::memset(f.storage.data(), 0xA5, f.storage.size());
  const auto result = f.list.audit();
  EXPECT_FALSE(result.structure_valid);
  EXPECT_GE(result.errors_detected, 1u);
}

TEST(RobustList, SurvivesEmptyAndSingleElementEdgeCases) {
  std::vector<std::byte> storage(RobustList::storage_bytes(4));
  RobustList list(storage, 4);
  list.format();
  EXPECT_TRUE(list.audit().clean());

  list.push_back(2);
  EXPECT_TRUE(list.audit().clean());

  // Corrupt the single member's tag.
  storage[RobustList::kHeaderBytes + 2 * RobustList::kNodeBytes] ^= std::byte{0x10};
  const auto result = list.audit();
  EXPECT_TRUE(result.structure_valid);
  EXPECT_EQ(result.errors_corrected, 1u);
  EXPECT_EQ(list.forward_chain(), (std::vector<std::uint32_t>{2}));
}

}  // namespace
}  // namespace wtc::db
