#include <gtest/gtest.h>

#include "callproc/vm_program.hpp"
#include "db/controller_schema.hpp"
#include "vm/asm_parser.hpp"
#include "vm/interp.hpp"

namespace wtc::vm {
namespace {

TEST(AsmParser, AssemblesStraightLineCode) {
  const Program program = assemble(R"(
      ; compute (21 * 2) - 2 and emit it
      loadi r1, 21
      loadi r2, 2
      mul   r3, r1, r2
      addi  r3, r3, -2
      emit  99, r3
      halt
  )");
  ASSERT_EQ(program.size(), 6u);
  EXPECT_EQ(decode(program.text[0]).op, Opcode::LoadI);
  EXPECT_EQ(decode(program.text[0]).imm, 21);
  EXPECT_EQ(decode(program.text[2]).op, Opcode::Mul);
  EXPECT_EQ(decode(program.text[4]).op, Opcode::Emit);
  EXPECT_EQ(decode(program.text[4]).imm, 99);
}

TEST(AsmParser, ResolvesLabelsForwardAndBackward) {
  const Program program = assemble(R"(
    entry:
      jmp body          # forward reference
    helper:
      ret
    body:
      call helper       ; backward reference
      beq r1, r2, entry
      halt
  )");
  EXPECT_EQ(decode(program.text[0]).imm, 2);  // body
  EXPECT_EQ(decode(program.text[2]).imm, 1);  // helper
  EXPECT_EQ(decode(program.text[3]).imm, 0);  // entry
}

TEST(AsmParser, ParsesHexNegativeAndDirectives) {
  const Program program = assemble(R"(
      .data 64
      loadi r5, 0x7A5C
      addi  r5, r5, -3
      .pad 4
      halt
  )");
  EXPECT_EQ(program.data_words, 64u);
  EXPECT_EQ(program.size(), 7u);  // 2 + 4 pad + halt
  EXPECT_EQ(decode(program.text[0]).imm, 0x7A5C);
  EXPECT_EQ(decode(program.text[1]).imm, -3);
  EXPECT_FALSE(opcode_defined(static_cast<std::uint8_t>(decode(program.text[2]).op)));
}

TEST(AsmParser, AssembledProgramActuallyRuns) {
  const Program program = assemble(R"(
      ; sum 1..5 with a loop, store in data[0], read back, emit
      loadi r1, 0      ; sum
      loadi r2, 1      ; i
      loadi r3, 6      ; bound
    loop:
      bge   r2, r3, done
      add   r1, r1, r2
      addi  r2, r2, 1
      jmp   loop
    done:
      loadi r4, 0
      st    r4, 0, r1
      ld    r5, r4, 0
      emit  1, r5
      halt
  )");
  auto db = db::make_controller_database();
  db::DbApi api(*db, []() { return sim::Time{0}; });
  api.init(1);
  VmProcess process(program, api, common::Rng(1), {});
  process.spawn_thread(0);
  for (int i = 0; i < 100 && process.thread(0).state() == ThreadState::Runnable;
       ++i) {
    process.run_quantum(0, 0);
  }
  EXPECT_EQ(process.thread(0).state(), ThreadState::Halted);
  ASSERT_EQ(process.emits().size(), 1u);
  EXPECT_EQ(process.emits()[0].value, 15);
}

TEST(AsmParser, DbOpsParse) {
  const Program program = assemble(R"(
      loadi r1, 2
      loadi r2, 1
      db.txnbegin r1
      db.alloc    r3, r1, r2
      db.writefld r4, r1, r3, 2
      db.readfld  r5, r1, r3, 2
      db.move     r1, r3, 2
      db.free     r1, r3
      db.txnend   r1
      halt
  )");
  EXPECT_EQ(decode(program.text[3]).op, Opcode::DbAlloc);
  EXPECT_EQ(decode(program.text[4]).op, Opcode::DbWriteFld);
  EXPECT_EQ(decode(program.text[4]).imm, 2);
  EXPECT_EQ(decode(program.text[6]).op, Opcode::DbMove);
}

TEST(AsmParser, RejectsBrokenInput) {
  EXPECT_THROW((void)assemble("frobnicate r1"), AsmError);
  EXPECT_THROW((void)assemble("loadi r99, 1"), AsmError);
  EXPECT_THROW((void)assemble("loadi r1"), AsmError);           // missing operand
  EXPECT_THROW((void)assemble("jmp nowhere"), AsmError);        // undefined label
  EXPECT_THROW((void)assemble("x:\nx:\n  halt"), AsmError);     // duplicate label
  EXPECT_THROW((void)assemble("loadi r1, 99999999999"), AsmError);  // overflow
  EXPECT_THROW((void)assemble("loadi r1, zz"), AsmError);

  try {
    (void)assemble("nop\nnop\nbadop r1\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& error) {
    EXPECT_EQ(error.line(), 3u);  // errors carry the line number
  }
}

TEST(AsmFormatter, RoundTripsHandWrittenPrograms) {
  const Program original = assemble(R"(
      .data 64
      loadi r1, -5
      loadi r2, 0x10
    loop:
      addi  r1, r1, 1
      bne   r1, r2, loop
      st    r0, 3, r1
      ld    r4, r0, 3
      emit  9, r4
      halt
  )");
  const std::string text = format_asm(original);
  const Program back = assemble(text);
  EXPECT_EQ(back.text, original.text);
  EXPECT_EQ(back.data_words, original.data_words);
}

TEST(AsmFormatter, RoundTripsTheFullCallProcessingClient) {
  // The complete client program — every opcode class, icall dispatch,
  // inter-function padding — must survive format -> assemble bit-exactly.
  auto db = db::make_controller_database();
  callproc::VmProgramParams params;
  params.ids = db::resolve_controller_ids(db->schema());
  const Program original = callproc::build_call_program(params);

  const std::string text = format_asm(original);
  const Program back = assemble(text);
  ASSERT_EQ(back.size(), original.size());
  for (std::uint32_t pc = 0; pc < original.size(); ++pc) {
    EXPECT_EQ(back.text[pc], original.text[pc]) << "pc " << pc;
  }
}

TEST(AsmFormatter, LabelsEveryBranchTarget) {
  const Program program = assemble("jmp x\nnop\nx: halt");
  const std::string text = format_asm(program);
  EXPECT_NE(text.find("L2:"), std::string::npos);
  EXPECT_NE(text.find("jmp L2"), std::string::npos);
}

TEST(AsmParser, EmitDefaultsValueRegisterToR0) {
  const Program program = assemble("emit 7\nhalt");
  EXPECT_EQ(decode(program.text[0]).rd, 0);
  const Program with_reg = assemble("emit 7, r3\nhalt");
  EXPECT_EQ(decode(with_reg.text[0]).rd, 3);
}

}  // namespace
}  // namespace wtc::vm
