#include <gtest/gtest.h>

#include <unordered_set>

#include "callproc/vm_driver.hpp"
#include "callproc/vm_program.hpp"
#include "db/direct.hpp"
#include "pecos/monitor.hpp"
#include "pecos/plan.hpp"
#include "sim/cpu.hpp"
#include "vm/cfg.hpp"

namespace wtc::callproc {
namespace {

struct Env {
  Env() : node(scheduler), db(db::make_controller_database()) {
    ids = db::resolve_controller_ids(db->schema());
  }

  VmProgramParams program_params() const {
    VmProgramParams params;
    params.ids = ids;
    params.num_subscribers =
        static_cast<std::int32_t>(db->schema().tables[ids.subscriber].num_records);
    params.calls_per_thread = 2;
    return params;
  }

  /// Runs until the driver finishes or `deadline` virtual time passes.
  void run(VmClientDriver& driver, sim::Time deadline = 120 * sim::kSecond) {
    while (!driver.finished() && scheduler.now() < deadline && scheduler.step()) {
    }
  }

  sim::Scheduler scheduler;
  sim::Node node;
  sim::Cpu cpu;
  std::unique_ptr<db::Database> db;
  db::ControllerIds ids;
};

TEST(VmProgram, BuildsWithRichControlFlow) {
  Env env;
  const vm::Program program = build_call_program(env.program_params());
  EXPECT_GT(program.size(), 100u);

  const vm::Cfg cfg = vm::Cfg::analyze(program);
  EXPECT_GT(cfg.block_count(), 30u);
  // All CFI kinds present: branch, jump, call, icall, ret.
  bool has_branch = false, has_jump = false, has_call = false, has_icall = false,
       has_ret = false;
  for (const auto& [pc, info] : cfg.cfis()) {
    (void)pc;
    switch (info.kind) {
      case vm::CfiKind::Branch: has_branch = true; break;
      case vm::CfiKind::Jump: has_jump = true; break;
      case vm::CfiKind::Call: has_call = true; break;
      case vm::CfiKind::IndirectCall: has_icall = true; break;
      case vm::CfiKind::Ret: has_ret = true; break;
    }
  }
  EXPECT_TRUE(has_branch);
  EXPECT_TRUE(has_jump);
  EXPECT_TRUE(has_call);
  EXPECT_TRUE(has_icall);
  EXPECT_TRUE(has_ret);
}

TEST(VmClient, ErrorFreeRunSucceedsOnAllThreads) {
  Env env;
  const vm::Program program = build_call_program(env.program_params());
  VmDriverConfig config;
  config.threads = 16;
  auto driver = std::make_shared<VmClientDriver>(program, *env.db, env.cpu,
                                                 common::Rng(1), config, nullptr,
                                                 nullptr);
  env.node.spawn("client", driver);
  env.run(*driver);

  ASSERT_TRUE(driver->finished());
  EXPECT_FALSE(driver->crashed());
  EXPECT_EQ(driver->hung_threads(), 0u);

  std::unordered_set<std::uint32_t> succeeded;
  std::size_t mismatches = 0, failed_calls = 0, done_calls = 0;
  for (const auto& emit : driver->vmp().emits()) {
    if (emit.code == kEmitAllDone) succeeded.insert(emit.thread);
    if (emit.code == kEmitMismatch) ++mismatches;
    if (emit.code == kEmitCallFailed) ++failed_calls;
    if (emit.code == kEmitCallDone) ++done_calls;
  }
  EXPECT_EQ(succeeded.size(), 16u);
  EXPECT_EQ(mismatches, 0u);
  EXPECT_EQ(failed_calls, 0u);
  EXPECT_EQ(done_calls, 32u);  // 16 threads x 2 calls
}

TEST(VmClient, ErrorFreeRunWithPecosHasNoViolations) {
  Env env;
  const vm::Program program = build_call_program(env.program_params());
  const pecos::Plan plan = pecos::Plan::instrument(program);
  pecos::PecosMonitor monitor(plan);

  VmDriverConfig config;
  config.threads = 16;
  auto driver = std::make_shared<VmClientDriver>(program, *env.db, env.cpu,
                                                 common::Rng(2), config, nullptr,
                                                 &monitor);
  env.node.spawn("client", driver);
  env.run(*driver);

  ASSERT_TRUE(driver->finished());
  EXPECT_FALSE(driver->crashed());
  EXPECT_EQ(driver->pecos_detections(), 0u);
  EXPECT_EQ(monitor.stats().violations, 0u);
  EXPECT_GT(monitor.stats().checks, 1000u);
}

TEST(VmClient, ErrorFreeRunReleasesAllRecords) {
  Env env;
  const vm::Program program = build_call_program(env.program_params());
  auto driver = std::make_shared<VmClientDriver>(program, *env.db, env.cpu,
                                                 common::Rng(3), VmDriverConfig{},
                                                 nullptr, nullptr);
  env.node.spawn("client", driver);
  env.run(*driver);
  ASSERT_TRUE(driver->finished());

  for (const db::TableId t :
       {env.ids.process, env.ids.connection, env.ids.resource}) {
    const auto& spec = env.db->schema().tables[t];
    for (db::RecordIndex r = 0; r < spec.num_records; ++r) {
      EXPECT_EQ(db::direct::read_header(*env.db, t, r).status, db::kStatusFree)
          << "table " << t << " record " << r;
    }
  }
  // All transaction locks released.
  EXPECT_TRUE(env.db->held_locks().empty());
}

TEST(VmClient, CrashTerminatesAllThreadsAndKeepsLocks) {
  Env env;
  vm::Program program = build_call_program(env.program_params());
  auto driver = std::make_shared<VmClientDriver>(program, *env.db, env.cpu,
                                                 common::Rng(4), VmDriverConfig{},
                                                 nullptr, nullptr);
  env.node.spawn("client", driver);
  // Corrupt an instruction inside the setup path into an illegal opcode so
  // the first thread through crashes the process mid-transaction.
  env.scheduler.run_until(sim::kMillisecond);
  // Find a db.txnbegin and plant garbage right after it.
  auto& text = driver->vmp().live_text();
  for (std::uint32_t pc = 0; pc < text.size(); ++pc) {
    if (vm::decode(text[pc]).op == vm::Opcode::DbAlloc) {
      text[pc] = 0xFFull;  // illegal opcode
      break;
    }
  }
  env.run(*driver);

  EXPECT_TRUE(driver->crashed());
  ASSERT_TRUE(driver->crash_trap().has_value());
  EXPECT_EQ(*driver->crash_trap(), vm::Trap::IllegalOpcode);
  EXPECT_TRUE(driver->crash_time().has_value());
  // The crash left transaction locks behind (progress-indicator fodder).
  EXPECT_FALSE(env.db->held_locks().empty());
}

TEST(VmClient, AuditTerminationDropsOneThread) {
  Env env;
  const vm::Program program = build_call_program(env.program_params());
  auto driver = std::make_shared<VmClientDriver>(program, *env.db, env.cpu,
                                                 common::Rng(5), VmDriverConfig{},
                                                 nullptr, nullptr);
  env.node.spawn("client", driver);
  env.scheduler.run_until(50 * sim::kMillisecond);
  driver->control_terminate_thread(3);
  env.run(*driver);

  EXPECT_EQ(driver->terminated_by_audit(), 1u);
  std::unordered_set<std::uint32_t> succeeded;
  for (const auto& emit : driver->vmp().emits()) {
    if (emit.code == kEmitAllDone) {
      succeeded.insert(emit.thread);
    }
  }
  EXPECT_EQ(succeeded.size(), 15u);  // all but the terminated thread
  EXPECT_FALSE(succeeded.contains(3));
}

TEST(VmClient, LivelockIsFlaggedAsHang) {
  Env env;
  vm::Program program = build_call_program(env.program_params());
  VmDriverConfig config;
  config.threads = 2;
  config.max_instructions_per_thread = 5'000;
  auto driver = std::make_shared<VmClientDriver>(program, *env.db, env.cpu,
                                                 common::Rng(6), config, nullptr,
                                                 nullptr);
  env.node.spawn("client", driver);
  env.scheduler.run_until(sim::kMillisecond);
  // Turn the main loop's back-edge into a self-loop: infinite spin.
  auto& text = driver->vmp().live_text();
  for (std::uint32_t pc = 0; pc < text.size(); ++pc) {
    const auto instr = vm::decode(text[pc]);
    if (instr.op == vm::Opcode::Jmp) {
      vm::Instr self = instr;
      self.imm = static_cast<std::int32_t>(pc);
      text[pc] = vm::encode(self);
      break;
    }
  }
  env.run(*driver);
  EXPECT_GT(driver->hung_threads(), 0u);
  EXPECT_TRUE(driver->first_hang_time().has_value());
}

}  // namespace
}  // namespace wtc::callproc
