#include <gtest/gtest.h>

#include <vector>

#include "sim/cpu.hpp"
#include "sim/node.hpp"
#include "sim/scheduler.hpp"

namespace wtc::sim {
namespace {

TEST(Scheduler, FiresInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(30, [&]() { order.push_back(3); });
  sched.schedule_at(10, [&]() { order.push_back(1); });
  sched.schedule_at(20, [&]() { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 30u);
}

TEST(Scheduler, FifoTieBreakAtSameInstant) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.schedule_at(7, [&order, i]() { order.push_back(i); });
  }
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, CancelPreventsFiring) {
  Scheduler sched;
  bool fired = false;
  const EventId id = sched.schedule_at(5, [&]() { fired = true; });
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_FALSE(sched.cancel(id));  // double cancel
  sched.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelAfterFireReturnsFalse) {
  Scheduler sched;
  const EventId id = sched.schedule_at(1, []() {});
  sched.run();
  EXPECT_FALSE(sched.cancel(id));
}

TEST(Scheduler, RunUntilAdvancesClockWithoutOvershooting) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(10, [&]() { ++fired; });
  sched.schedule_at(100, [&]() { ++fired; });
  sched.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), 50u);
  sched.run_until(100);
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, RunUntilIgnoresCancelledEventAtDeadlineCheck) {
  // Regression: run_until's deadline check used to look at heap_.front()
  // without skipping tombstones. A cancelled event inside the horizon
  // sitting at the heap top let step() fire the next LIVE event even when
  // that event lay past the deadline — overshooting both the event and
  // the clock.
  Scheduler sched;
  int fired = 0;
  const EventId cancelled = sched.schedule_at(5, [&]() { ++fired; });
  sched.schedule_at(100, [&]() { ++fired; });
  ASSERT_TRUE(sched.cancel(cancelled));

  sched.run_until(50);
  EXPECT_EQ(fired, 0);       // the t=100 event must NOT have fired
  EXPECT_EQ(sched.now(), 50u);  // and the clock must not overshoot

  sched.run_until(100);      // the live event still fires on time
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), 100u);
}

TEST(Scheduler, RunUntilSkipsTombstoneRunAtDeadline) {
  // Same hazard with a pile of tombstones: all inside the horizon, one
  // live event beyond it.
  Scheduler sched;
  int fired = 0;
  std::vector<EventId> doomed;
  for (Time t = 1; t <= 10; ++t) {
    doomed.push_back(sched.schedule_at(t, [&]() { ++fired; }));
  }
  sched.schedule_at(200, [&]() { ++fired; });
  for (const EventId id : doomed) {
    ASSERT_TRUE(sched.cancel(id));
  }
  EXPECT_EQ(sched.pending_events(), 1u);

  sched.run_until(150);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sched.now(), 150u);
  sched.run();
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, EventsScheduledFromEventsRun) {
  Scheduler sched;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 10) {
      sched.schedule_after(1, recurse);
    }
  };
  sched.schedule_after(1, recurse);
  sched.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sched.now(), 10u);
}

TEST(Scheduler, PastTimestampsClampToNow) {
  Scheduler sched;
  Time seen = 1234;
  sched.schedule_at(100, [&sched, &seen]() {
    sched.schedule_at(5, [&sched, &seen]() { seen = sched.now(); });
  });
  sched.run();
  EXPECT_EQ(seen, 100u);
}

TEST(Scheduler, StopBreaksRun) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(1, [&]() {
    ++fired;
    sched.stop();
  });
  sched.schedule_at(2, [&]() { ++fired; });
  sched.run();
  EXPECT_EQ(fired, 1);
  sched.run();
  EXPECT_EQ(fired, 2);
}

class Echo : public Process {
 public:
  void on_message(const Message& message) override {
    received.push_back(message);
    if (message.type == 1) {
      Message reply;
      reply.from = pid();
      reply.type = 2;
      reply.args = message.args;
      node().send(message.from, std::move(reply));
    }
  }
  void on_stopped() override { stopped = true; }
  std::vector<Message> received;
  bool stopped = false;
};

TEST(Node, SpawnDeliversStartAndMessages) {
  Scheduler sched;
  Node node(sched);
  auto a = std::make_shared<Echo>();
  auto b = std::make_shared<Echo>();
  const ProcessId pa = node.spawn("a", a);
  const ProcessId pb = node.spawn("b", b);
  EXPECT_TRUE(node.alive(pa));
  EXPECT_EQ(node.name_of(pb), "b");

  Message m;
  m.from = pa;
  m.type = 1;
  m.args = {42};
  node.send(pb, m);
  sched.run();
  ASSERT_EQ(b->received.size(), 1u);
  EXPECT_EQ(b->received[0].args[0], 42u);
  ASSERT_EQ(a->received.size(), 1u);  // echo reply
  EXPECT_EQ(a->received[0].type, 2u);
}

TEST(Node, MessagesToDeadProcessesAreDropped) {
  Scheduler sched;
  Node node(sched);
  auto a = std::make_shared<Echo>();
  const ProcessId pa = node.spawn("a", a);
  node.send(pa, Message{.from = 0, .type = 9, .args = {}});
  node.kill(pa);
  EXPECT_TRUE(a->stopped);
  sched.run();
  EXPECT_TRUE(a->received.empty());
  EXPECT_FALSE(node.alive(pa));
}

class TimerProc : public Process {
 public:
  void on_start() override {
    schedule_after(10, [this]() { ++ticks; });
    schedule_after(20, [this]() { ++ticks; });
  }
  int ticks = 0;
};

TEST(Node, TimersDieWithProcess) {
  Scheduler sched;
  Node node(sched);
  auto p = std::make_shared<TimerProc>();
  const ProcessId pid = node.spawn("t", p);
  sched.run_until(12);
  EXPECT_EQ(p->ticks, 1);
  node.kill(pid);
  sched.run();
  EXPECT_EQ(p->ticks, 1);  // the 20us timer must not fire
}

TEST(Node, RespawnedProcessDoesNotSeeOldTimers) {
  Scheduler sched;
  Node node(sched);
  auto p = std::make_shared<TimerProc>();
  const ProcessId pid1 = node.spawn("t", p);
  sched.run_until(1);
  node.kill(pid1);
  p->ticks = 0;
  node.spawn("t", p);  // same object, new incarnation
  sched.run_until(50);
  EXPECT_EQ(p->ticks, 2);  // only the new incarnation's two timers
}

TEST(Node, BookkeepingCounters) {
  Scheduler sched;
  Node node(sched);
  EXPECT_EQ(node.spawned_count(), 0u);
  const ProcessId a = node.spawn("a", std::make_shared<Echo>());
  node.spawn("b", std::make_shared<Echo>());
  EXPECT_EQ(node.spawned_count(), 2u);
  EXPECT_EQ(node.alive_count(), 2u);
  node.kill(a);
  EXPECT_EQ(node.alive_count(), 1u);
  EXPECT_EQ(node.spawned_count(), 2u);
  EXPECT_EQ(node.name_of(a), "");
  EXPECT_FALSE(node.kill(a));  // double kill
}

TEST(Cpu, SerializesWork) {
  Cpu cpu;
  EXPECT_EQ(cpu.book(100, 50), 150u);
  EXPECT_EQ(cpu.book(100, 10), 160u);  // queues behind the first booking
  EXPECT_EQ(cpu.book(500, 10), 510u);  // idle gap: starts immediately
  EXPECT_EQ(cpu.total_booked(), 70u);
}

TEST(Cpu, ContentionGrowsLatency) {
  Cpu cpu;
  // Ten tasks of 100us arriving at the same instant: the last one ends at
  // 1000us even though each only needs 100us.
  Time last = 0;
  for (int i = 0; i < 10; ++i) {
    last = cpu.book(0, 100);
  }
  EXPECT_EQ(last, 1000u);
}

}  // namespace
}  // namespace wtc::sim
