#include <gtest/gtest.h>

#include "db/controller_schema.hpp"
#include "db/database.hpp"
#include "db/layout.hpp"

namespace wtc::db {
namespace {

Schema small_schema() {
  SchemaBuilder b;
  b.table("Static", 4, /*dynamic=*/false)
      .static_field("cfg_a", 7)
      .static_field("cfg_b", 9);
  b.table("Dyn", 8, /*dynamic=*/true)
      .primary_key("key")
      .ranged("val", 0, 100, 50)
      .unruled("free_form");
  return std::move(b).build();
}

TEST(Layout, ComputesContiguousNonOverlappingTables) {
  const Schema schema = small_schema();
  const Layout layout = Layout::compute(schema);
  ASSERT_EQ(layout.tables().size(), 2u);
  const auto& t0 = layout.tables()[0];
  const auto& t1 = layout.tables()[1];
  EXPECT_EQ(t0.offset, layout.data_start());
  EXPECT_EQ(t0.record_size, kRecordHeaderSize + 2 * 4);
  EXPECT_EQ(t1.offset, t0.offset + t0.record_size * 4);
  EXPECT_EQ(t1.record_size, kRecordHeaderSize + 3 * 4);
  EXPECT_EQ(layout.region_size(), t1.offset + t1.record_size * 8);
}

TEST(Layout, FieldOffsets) {
  const Schema schema = small_schema();
  const Layout layout = Layout::compute(schema);
  EXPECT_EQ(layout.field_offset(1, 0, 0),
            layout.record_offset(1, 0) + kRecordHeaderSize);
  EXPECT_EQ(layout.field_offset(1, 2, 1),
            layout.record_offset(1, 2) + kRecordHeaderSize + 4);
}

TEST(Layout, LocateMapsOffsetsBack) {
  const Schema schema = small_schema();
  const Layout layout = Layout::compute(schema);
  EXPECT_FALSE(layout.locate(0).has_value());  // catalog
  EXPECT_FALSE(layout.locate(layout.data_start() - 1).has_value());

  const auto loc = layout.locate(layout.record_offset(1, 3) + 2);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->table, 1);
  EXPECT_EQ(loc->record, 3u);
  EXPECT_TRUE(loc->in_header);

  const auto field_loc = layout.locate(layout.field_offset(1, 3, 1));
  ASSERT_TRUE(field_loc.has_value());
  EXPECT_FALSE(field_loc->in_header);
}

TEST(Layout, ExpectedIdTagUniquePerRecord) {
  EXPECT_NE(expected_id_tag(0, 0), expected_id_tag(0, 1));
  EXPECT_NE(expected_id_tag(0, 0), expected_id_tag(1, 0));
  // Single bit flips always change the tag (it is compared exactly).
  const std::uint32_t tag = expected_id_tag(2, 5);
  for (int bit = 0; bit < 32; ++bit) {
    EXPECT_NE(tag ^ (1u << bit), tag);
  }
}

TEST(FormatRegion, CatalogRoundTrips) {
  const Schema schema = small_schema();
  const Layout layout = Layout::compute(schema);
  std::vector<std::byte> region(layout.region_size());
  format_region(region, schema, layout);

  const CatalogView catalog(region);
  ASSERT_TRUE(catalog.header_ok());
  EXPECT_EQ(catalog.table_count(), 2u);

  const auto t0 = catalog.table(0);
  ASSERT_TRUE(t0.has_value());
  EXPECT_FALSE(t0->dynamic());
  EXPECT_EQ(t0->num_records, 4u);
  EXPECT_EQ(t0->table_offset, layout.data_start());

  const auto t1 = catalog.table(1);
  ASSERT_TRUE(t1.has_value());
  EXPECT_TRUE(t1->dynamic());

  const auto key_field = catalog.field(1, 0);
  ASSERT_TRUE(key_field.has_value());
  EXPECT_EQ(key_field->role(), FieldRole::PrimaryKey);
  EXPECT_FALSE(key_field->has_range());

  const auto val_field = catalog.field(1, 1);
  ASSERT_TRUE(val_field.has_value());
  EXPECT_TRUE(val_field->has_range());
  EXPECT_EQ(val_field->range_min, 0);
  EXPECT_EQ(val_field->range_max, 100);
  EXPECT_EQ(val_field->default_value, 50);
}

TEST(FormatRegion, RecordsFormattedWithHeadersAndDefaults) {
  const Schema schema = small_schema();
  const Layout layout = Layout::compute(schema);
  std::vector<std::byte> region(layout.region_size());
  format_region(region, schema, layout);

  // Static table records are Active; dynamic ones are Free, chained in
  // index order on the free list (group 0).
  const auto s0 = load_record_header(region, layout.record_offset(0, 0));
  EXPECT_EQ(s0.status, kStatusActive);
  EXPECT_EQ(s0.id_tag, expected_id_tag(0, 0));

  const auto d0 = load_record_header(region, layout.record_offset(1, 0));
  EXPECT_EQ(d0.status, kStatusFree);
  EXPECT_EQ(d0.group, 0u);
  EXPECT_EQ(d0.next, 1u);
  const auto d7 = load_record_header(region, layout.record_offset(1, 7));
  EXPECT_EQ(d7.next, kNilLink);

  // Defaults written into fields.
  EXPECT_EQ(load_i32(region, layout.field_offset(0, 2, 0)), 7);
  EXPECT_EQ(load_i32(region, layout.field_offset(1, 3, 1)), 50);
}

TEST(CatalogView, RejectsCorruptHeader) {
  const Schema schema = small_schema();
  const Layout layout = Layout::compute(schema);
  std::vector<std::byte> region(layout.region_size());
  format_region(region, schema, layout);

  region[0] ^= std::byte{0x01};  // magic
  EXPECT_FALSE(CatalogView(region).header_ok());
  region[0] ^= std::byte{0x01};
  EXPECT_TRUE(CatalogView(region).header_ok());

  region[8] ^= std::byte{0x40};  // table count
  EXPECT_FALSE(CatalogView(region).header_ok());
}

TEST(CatalogView, RejectsDescriptorPointingOutsideRegion) {
  const Schema schema = small_schema();
  const Layout layout = Layout::compute(schema);
  std::vector<std::byte> region(layout.region_size());
  format_region(region, schema, layout);

  // Corrupt table 1's offset to a huge value.
  const std::size_t at = kCatalogHeaderSize + 1 * kTableDescriptorSize + 12;
  store_u32(region, at, 0x7FFFFFFFu);
  const CatalogView catalog(region);
  EXPECT_TRUE(catalog.header_ok());
  EXPECT_FALSE(catalog.table(1).has_value());
  EXPECT_TRUE(catalog.table(0).has_value());
}

TEST(Layout, LocateExactBoundaries) {
  const Schema schema = small_schema();
  const Layout layout = Layout::compute(schema);
  // First byte of the first table is table 0, record 0.
  auto loc = layout.locate(layout.data_start());
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->table, 0);
  EXPECT_EQ(loc->record, 0u);
  // First byte of table 1 belongs to table 1, not table 0.
  loc = layout.locate(layout.table(1).offset);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->table, 1);
  // One past the end of the region maps nowhere.
  EXPECT_FALSE(layout.locate(layout.region_size()).has_value());
  // Last byte of the region belongs to the last record of the last table.
  loc = layout.locate(layout.region_size() - 1);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->table, 1);
  EXPECT_EQ(loc->record, 7u);
  EXPECT_FALSE(loc->in_header);
}

TEST(CatalogView, FieldIndexBounds) {
  const Schema schema = small_schema();
  const Layout layout = Layout::compute(schema);
  std::vector<std::byte> region(layout.region_size());
  format_region(region, schema, layout);
  const CatalogView catalog(region);
  EXPECT_TRUE(catalog.field(1, 0).has_value());
  EXPECT_TRUE(catalog.field(1, 2).has_value());
  EXPECT_FALSE(catalog.field(1, 3).has_value());   // one past num_fields
  EXPECT_FALSE(catalog.field(9, 0).has_value());   // no such table
}

TEST(Database, PristineSnapshotAndReload) {
  Database db(small_schema());
  const std::size_t offset = db.layout().field_offset(0, 0, 0);
  EXPECT_EQ(load_i32(db.region(), offset), 7);

  store_i32(db.region(), offset, 999);
  EXPECT_EQ(load_i32(db.region(), offset), 999);
  EXPECT_EQ(load_i32(db.pristine(), offset), 7);

  db.reload_span_from_disk(offset, 4);
  EXPECT_EQ(load_i32(db.region(), offset), 7);
}

TEST(Database, ReloadAllRestoresEverything) {
  Database db(small_schema());
  for (std::size_t i = 0; i < db.region().size(); i += 11) {
    db.region()[i] ^= std::byte{0xFF};
  }
  db.reload_all_from_disk();
  EXPECT_TRUE(std::equal(db.region().begin(), db.region().end(),
                         db.pristine().begin()));
}

TEST(Database, StaticSpansCoverCatalogAndStaticTables) {
  Database db(small_schema());
  const auto spans = db.static_spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].first, 0u);
  EXPECT_EQ(spans[0].second, db.layout().catalog_size());
  EXPECT_EQ(spans[1].first, db.layout().table(0).offset);
}

TEST(Database, LockLifecycle) {
  Database db(small_schema());
  EXPECT_TRUE(db.try_lock(1, 10, 100));
  EXPECT_TRUE(db.try_lock(1, 10, 120));   // re-entrant for owner
  EXPECT_FALSE(db.try_lock(1, 11, 130));  // other process blocked
  ASSERT_TRUE(db.lock_info(1).has_value());
  EXPECT_EQ(db.lock_info(1)->owner, 10u);
  EXPECT_EQ(db.lock_info(1)->since, 100u);

  EXPECT_FALSE(db.unlock(1, 11));
  EXPECT_TRUE(db.unlock(1, 10));
  EXPECT_FALSE(db.lock_info(1).has_value());

  db.try_lock(0, 5, 1);
  db.try_lock(1, 5, 2);
  EXPECT_EQ(db.held_locks().size(), 2u);
  db.release_locks_of(5);
  EXPECT_TRUE(db.held_locks().empty());
}

TEST(ControllerSchema, ResolvesAndPopulates) {
  auto db = make_controller_database();
  const auto ids = resolve_controller_ids(db->schema());
  EXPECT_EQ(db->schema().tables[ids.process].name, "Process");
  EXPECT_TRUE(db->schema().tables[ids.process].dynamic);
  EXPECT_FALSE(db->schema().tables[ids.subscriber].dynamic);

  // Static subscriber data populated with distinct keys before snapshot.
  const std::int32_t key0 =
      load_i32(db->region(), db->layout().field_offset(ids.subscriber, 0, 1));
  const std::int32_t key1 =
      load_i32(db->region(), db->layout().field_offset(ids.subscriber, 1, 1));
  EXPECT_EQ(key0, subscriber_auth_key(0));
  EXPECT_EQ(key1, subscriber_auth_key(1));
  EXPECT_NE(key0, key1);
  // And the pristine image matches (checksummable).
  EXPECT_EQ(load_i32(db->pristine(), db->layout().field_offset(ids.subscriber, 0, 1)),
            key0);
}

TEST(ControllerSchema, SemanticLoopClosesViaForeignKeys) {
  auto db = make_controller_database();
  const auto& schema = db->schema();
  const auto ids = resolve_controller_ids(schema);
  EXPECT_EQ(schema.tables[ids.process].fields[ids.p_connection_id].ref_table,
            ids.connection);
  EXPECT_EQ(schema.tables[ids.connection].fields[ids.c_channel_id].ref_table,
            ids.resource);
  EXPECT_EQ(schema.tables[ids.resource].fields[ids.r_process_id].ref_table,
            ids.process);
}

TEST(BenchSchema, RespectsTable5Ratios) {
  const Schema schema = make_bench_schema({.scale = 4});
  ASSERT_EQ(schema.tables.size(), 6u);
  EXPECT_EQ(schema.tables[0].num_records, 28u);
  EXPECT_EQ(schema.tables[1].num_records, 72u);
  EXPECT_EQ(schema.tables[2].num_records, 4u);
  EXPECT_EQ(schema.tables[3].num_records, 500u);
  EXPECT_EQ(schema.tables[4].num_records, 32u);
  EXPECT_EQ(schema.tables[5].num_records, 16u);
}

TEST(BenchSchema, ActivateAllRecords) {
  Database db(make_bench_schema());
  activate_all_records(db);
  for (TableId t = 0; t < db.table_count(); ++t) {
    const auto& tl = db.layout().table(t);
    for (RecordIndex r = 0; r < tl.num_records; ++r) {
      EXPECT_EQ(load_record_header(db.region(), db.layout().record_offset(t, r)).status,
                kStatusActive);
    }
  }
}

}  // namespace
}  // namespace wtc::db
