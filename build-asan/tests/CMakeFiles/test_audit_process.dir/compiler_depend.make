# Empty compiler generated dependencies file for test_audit_process.
# This may be replaced when dependencies are built.
