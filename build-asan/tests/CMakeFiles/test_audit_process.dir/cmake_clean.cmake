file(REMOVE_RECURSE
  "CMakeFiles/test_audit_process.dir/test_audit_process.cpp.o"
  "CMakeFiles/test_audit_process.dir/test_audit_process.cpp.o.d"
  "test_audit_process"
  "test_audit_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_audit_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
