# Empty dependencies file for test_callproc.
# This may be replaced when dependencies are built.
