file(REMOVE_RECURSE
  "CMakeFiles/test_callproc.dir/test_callproc.cpp.o"
  "CMakeFiles/test_callproc.dir/test_callproc.cpp.o.d"
  "test_callproc"
  "test_callproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_callproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
