file(REMOVE_RECURSE
  "CMakeFiles/test_pecos.dir/test_pecos.cpp.o"
  "CMakeFiles/test_pecos.dir/test_pecos.cpp.o.d"
  "test_pecos"
  "test_pecos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pecos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
