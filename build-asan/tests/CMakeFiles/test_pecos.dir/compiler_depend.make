# Empty compiler generated dependencies file for test_pecos.
# This may be replaced when dependencies are built.
