file(REMOVE_RECURSE
  "CMakeFiles/test_audit_engine.dir/test_audit_engine.cpp.o"
  "CMakeFiles/test_audit_engine.dir/test_audit_engine.cpp.o.d"
  "test_audit_engine"
  "test_audit_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_audit_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
