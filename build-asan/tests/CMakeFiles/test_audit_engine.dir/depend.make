# Empty dependencies file for test_audit_engine.
# This may be replaced when dependencies are built.
