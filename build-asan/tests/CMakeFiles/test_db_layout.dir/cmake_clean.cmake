file(REMOVE_RECURSE
  "CMakeFiles/test_db_layout.dir/test_db_layout.cpp.o"
  "CMakeFiles/test_db_layout.dir/test_db_layout.cpp.o.d"
  "test_db_layout"
  "test_db_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_db_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
