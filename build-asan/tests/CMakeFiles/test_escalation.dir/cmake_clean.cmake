file(REMOVE_RECURSE
  "CMakeFiles/test_escalation.dir/test_escalation.cpp.o"
  "CMakeFiles/test_escalation.dir/test_escalation.cpp.o.d"
  "test_escalation"
  "test_escalation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_escalation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
