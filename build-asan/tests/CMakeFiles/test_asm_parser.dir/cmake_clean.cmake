file(REMOVE_RECURSE
  "CMakeFiles/test_asm_parser.dir/test_asm_parser.cpp.o"
  "CMakeFiles/test_asm_parser.dir/test_asm_parser.cpp.o.d"
  "test_asm_parser"
  "test_asm_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asm_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
