# Empty compiler generated dependencies file for test_asm_parser.
# This may be replaced when dependencies are built.
