file(REMOVE_RECURSE
  "CMakeFiles/test_vm_client.dir/test_vm_client.cpp.o"
  "CMakeFiles/test_vm_client.dir/test_vm_client.cpp.o.d"
  "test_vm_client"
  "test_vm_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
