# Empty compiler generated dependencies file for test_vm_client.
# This may be replaced when dependencies are built.
