file(REMOVE_RECURSE
  "CMakeFiles/test_db_schema.dir/test_db_schema.cpp.o"
  "CMakeFiles/test_db_schema.dir/test_db_schema.cpp.o.d"
  "test_db_schema"
  "test_db_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_db_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
