# Empty dependencies file for test_db_schema.
# This may be replaced when dependencies are built.
