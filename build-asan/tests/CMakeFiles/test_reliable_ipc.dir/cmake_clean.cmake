file(REMOVE_RECURSE
  "CMakeFiles/test_reliable_ipc.dir/test_reliable_ipc.cpp.o"
  "CMakeFiles/test_reliable_ipc.dir/test_reliable_ipc.cpp.o.d"
  "test_reliable_ipc"
  "test_reliable_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reliable_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
