# Empty dependencies file for test_reliable_ipc.
# This may be replaced when dependencies are built.
