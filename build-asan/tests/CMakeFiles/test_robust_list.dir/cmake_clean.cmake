file(REMOVE_RECURSE
  "CMakeFiles/test_robust_list.dir/test_robust_list.cpp.o"
  "CMakeFiles/test_robust_list.dir/test_robust_list.cpp.o.d"
  "test_robust_list"
  "test_robust_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_robust_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
