# Empty dependencies file for test_robust_list.
# This may be replaced when dependencies are built.
