file(REMOVE_RECURSE
  "CMakeFiles/test_db_api.dir/test_db_api.cpp.o"
  "CMakeFiles/test_db_api.dir/test_db_api.cpp.o.d"
  "test_db_api"
  "test_db_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_db_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
