# Empty compiler generated dependencies file for test_db_api.
# This may be replaced when dependencies are built.
