
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/audit_tuning.cpp" "examples/CMakeFiles/audit_tuning.dir/audit_tuning.cpp.o" "gcc" "examples/CMakeFiles/audit_tuning.dir/audit_tuning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/experiments/CMakeFiles/wtc_experiments.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/callproc/CMakeFiles/wtc_callproc.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/inject/CMakeFiles/wtc_inject.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/pecos/CMakeFiles/wtc_pecos.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/manager/CMakeFiles/wtc_manager.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/audit/CMakeFiles/wtc_audit.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/db/CMakeFiles/wtc_db.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/vm/CMakeFiles/wtc_vm.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/wtc_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/wtc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
