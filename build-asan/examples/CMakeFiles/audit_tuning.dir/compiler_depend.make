# Empty compiler generated dependencies file for audit_tuning.
# This may be replaced when dependencies are built.
