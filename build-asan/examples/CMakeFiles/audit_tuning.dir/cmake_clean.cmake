file(REMOVE_RECURSE
  "CMakeFiles/audit_tuning.dir/audit_tuning.cpp.o"
  "CMakeFiles/audit_tuning.dir/audit_tuning.cpp.o.d"
  "audit_tuning"
  "audit_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
