file(REMOVE_RECURSE
  "CMakeFiles/call_center.dir/call_center.cpp.o"
  "CMakeFiles/call_center.dir/call_center.cpp.o.d"
  "call_center"
  "call_center.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/call_center.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
