# Empty compiler generated dependencies file for call_center.
# This may be replaced when dependencies are built.
