file(REMOVE_RECURSE
  "CMakeFiles/fig6_prioritized_proportional.dir/fig6_prioritized_proportional.cpp.o"
  "CMakeFiles/fig6_prioritized_proportional.dir/fig6_prioritized_proportional.cpp.o.d"
  "fig6_prioritized_proportional"
  "fig6_prioritized_proportional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_prioritized_proportional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
