# Empty dependencies file for fig6_prioritized_proportional.
# This may be replaced when dependencies are built.
