file(REMOVE_RECURSE
  "CMakeFiles/ablation_manager_failover.dir/ablation_manager_failover.cpp.o"
  "CMakeFiles/ablation_manager_failover.dir/ablation_manager_failover.cpp.o.d"
  "ablation_manager_failover"
  "ablation_manager_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_manager_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
