# Empty dependencies file for ablation_manager_failover.
# This may be replaced when dependencies are built.
