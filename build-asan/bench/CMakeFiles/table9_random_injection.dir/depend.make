# Empty dependencies file for table9_random_injection.
# This may be replaced when dependencies are built.
