file(REMOVE_RECURSE
  "CMakeFiles/table9_random_injection.dir/table9_random_injection.cpp.o"
  "CMakeFiles/table9_random_injection.dir/table9_random_injection.cpp.o.d"
  "table9_random_injection"
  "table9_random_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_random_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
