file(REMOVE_RECURSE
  "CMakeFiles/table3_audit_effectiveness.dir/table3_audit_effectiveness.cpp.o"
  "CMakeFiles/table3_audit_effectiveness.dir/table3_audit_effectiveness.cpp.o.d"
  "table3_audit_effectiveness"
  "table3_audit_effectiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_audit_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
