# Empty compiler generated dependencies file for fig5_prioritized_uniform.
# This may be replaced when dependencies are built.
