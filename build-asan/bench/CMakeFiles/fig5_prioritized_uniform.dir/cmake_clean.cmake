file(REMOVE_RECURSE
  "CMakeFiles/fig5_prioritized_uniform.dir/fig5_prioritized_uniform.cpp.o"
  "CMakeFiles/fig5_prioritized_uniform.dir/fig5_prioritized_uniform.cpp.o.d"
  "fig5_prioritized_uniform"
  "fig5_prioritized_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_prioritized_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
