file(REMOVE_RECURSE
  "CMakeFiles/fig3_escape_vs_error_rate.dir/fig3_escape_vs_error_rate.cpp.o"
  "CMakeFiles/fig3_escape_vs_error_rate.dir/fig3_escape_vs_error_rate.cpp.o.d"
  "fig3_escape_vs_error_rate"
  "fig3_escape_vs_error_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_escape_vs_error_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
