# Empty dependencies file for fig3_escape_vs_error_rate.
# This may be replaced when dependencies are built.
