file(REMOVE_RECURSE
  "CMakeFiles/table8_directed_injection.dir/table8_directed_injection.cpp.o"
  "CMakeFiles/table8_directed_injection.dir/table8_directed_injection.cpp.o.d"
  "table8_directed_injection"
  "table8_directed_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_directed_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
