# Empty dependencies file for table8_directed_injection.
# This may be replaced when dependencies are built.
