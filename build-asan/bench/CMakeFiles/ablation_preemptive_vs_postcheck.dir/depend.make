# Empty dependencies file for ablation_preemptive_vs_postcheck.
# This may be replaced when dependencies are built.
