file(REMOVE_RECURSE
  "CMakeFiles/ablation_preemptive_vs_postcheck.dir/ablation_preemptive_vs_postcheck.cpp.o"
  "CMakeFiles/ablation_preemptive_vs_postcheck.dir/ablation_preemptive_vs_postcheck.cpp.o.d"
  "ablation_preemptive_vs_postcheck"
  "ablation_preemptive_vs_postcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_preemptive_vs_postcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
