file(REMOVE_RECURSE
  "CMakeFiles/ablation_error_history.dir/ablation_error_history.cpp.o"
  "CMakeFiles/ablation_error_history.dir/ablation_error_history.cpp.o.d"
  "ablation_error_history"
  "ablation_error_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_error_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
