# Empty dependencies file for ablation_error_history.
# This may be replaced when dependencies are built.
