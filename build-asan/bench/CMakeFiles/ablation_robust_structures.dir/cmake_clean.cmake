file(REMOVE_RECURSE
  "CMakeFiles/ablation_robust_structures.dir/ablation_robust_structures.cpp.o"
  "CMakeFiles/ablation_robust_structures.dir/ablation_robust_structures.cpp.o.d"
  "ablation_robust_structures"
  "ablation_robust_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_robust_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
