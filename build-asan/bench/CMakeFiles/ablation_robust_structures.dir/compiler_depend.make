# Empty compiler generated dependencies file for ablation_robust_structures.
# This may be replaced when dependencies are built.
