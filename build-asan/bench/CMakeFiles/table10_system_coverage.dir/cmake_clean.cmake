file(REMOVE_RECURSE
  "CMakeFiles/table10_system_coverage.dir/table10_system_coverage.cpp.o"
  "CMakeFiles/table10_system_coverage.dir/table10_system_coverage.cpp.o.d"
  "table10_system_coverage"
  "table10_system_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_system_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
