# Empty dependencies file for table10_system_coverage.
# This may be replaced when dependencies are built.
