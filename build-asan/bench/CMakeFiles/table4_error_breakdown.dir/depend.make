# Empty dependencies file for table4_error_breakdown.
# This may be replaced when dependencies are built.
