file(REMOVE_RECURSE
  "CMakeFiles/table4_error_breakdown.dir/table4_error_breakdown.cpp.o"
  "CMakeFiles/table4_error_breakdown.dir/table4_error_breakdown.cpp.o.d"
  "table4_error_breakdown"
  "table4_error_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_error_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
