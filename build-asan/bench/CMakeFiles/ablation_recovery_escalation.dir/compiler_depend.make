# Empty compiler generated dependencies file for ablation_recovery_escalation.
# This may be replaced when dependencies are built.
