file(REMOVE_RECURSE
  "CMakeFiles/ablation_recovery_escalation.dir/ablation_recovery_escalation.cpp.o"
  "CMakeFiles/ablation_recovery_escalation.dir/ablation_recovery_escalation.cpp.o.d"
  "ablation_recovery_escalation"
  "ablation_recovery_escalation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_recovery_escalation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
