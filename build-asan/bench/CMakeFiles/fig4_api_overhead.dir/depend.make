# Empty dependencies file for fig4_api_overhead.
# This may be replaced when dependencies are built.
