file(REMOVE_RECURSE
  "CMakeFiles/fig4_api_overhead.dir/fig4_api_overhead.cpp.o"
  "CMakeFiles/fig4_api_overhead.dir/fig4_api_overhead.cpp.o.d"
  "fig4_api_overhead"
  "fig4_api_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_api_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
