# Empty dependencies file for ablation_event_triggered.
# This may be replaced when dependencies are built.
