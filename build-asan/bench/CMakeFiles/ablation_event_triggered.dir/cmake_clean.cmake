file(REMOVE_RECURSE
  "CMakeFiles/ablation_event_triggered.dir/ablation_event_triggered.cpp.o"
  "CMakeFiles/ablation_event_triggered.dir/ablation_event_triggered.cpp.o.d"
  "ablation_event_triggered"
  "ablation_event_triggered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_event_triggered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
