# Empty compiler generated dependencies file for ablation_selective_monitoring.
# This may be replaced when dependencies are built.
