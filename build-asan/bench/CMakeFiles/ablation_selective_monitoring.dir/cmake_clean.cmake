file(REMOVE_RECURSE
  "CMakeFiles/ablation_selective_monitoring.dir/ablation_selective_monitoring.cpp.o"
  "CMakeFiles/ablation_selective_monitoring.dir/ablation_selective_monitoring.cpp.o.d"
  "ablation_selective_monitoring"
  "ablation_selective_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_selective_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
