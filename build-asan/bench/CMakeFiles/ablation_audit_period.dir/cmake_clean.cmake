file(REMOVE_RECURSE
  "CMakeFiles/ablation_audit_period.dir/ablation_audit_period.cpp.o"
  "CMakeFiles/ablation_audit_period.dir/ablation_audit_period.cpp.o.d"
  "ablation_audit_period"
  "ablation_audit_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_audit_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
