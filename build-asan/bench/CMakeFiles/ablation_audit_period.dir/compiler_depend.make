# Empty compiler generated dependencies file for ablation_audit_period.
# This may be replaced when dependencies are built.
