file(REMOVE_RECURSE
  "CMakeFiles/ablation_unreliable_ipc.dir/ablation_unreliable_ipc.cpp.o"
  "CMakeFiles/ablation_unreliable_ipc.dir/ablation_unreliable_ipc.cpp.o.d"
  "ablation_unreliable_ipc"
  "ablation_unreliable_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_unreliable_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
