# Empty dependencies file for ablation_unreliable_ipc.
# This may be replaced when dependencies are built.
