# Empty dependencies file for asmc.
# This may be replaced when dependencies are built.
