file(REMOVE_RECURSE
  "CMakeFiles/asmc.dir/asmc.cpp.o"
  "CMakeFiles/asmc.dir/asmc.cpp.o.d"
  "asmc"
  "asmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
