file(REMOVE_RECURSE
  "CMakeFiles/dbinspect.dir/dbinspect.cpp.o"
  "CMakeFiles/dbinspect.dir/dbinspect.cpp.o.d"
  "dbinspect"
  "dbinspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbinspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
