# Empty dependencies file for dbinspect.
# This may be replaced when dependencies are built.
