file(REMOVE_RECURSE
  "CMakeFiles/wtc_vm.dir/asm_parser.cpp.o"
  "CMakeFiles/wtc_vm.dir/asm_parser.cpp.o.d"
  "CMakeFiles/wtc_vm.dir/builder.cpp.o"
  "CMakeFiles/wtc_vm.dir/builder.cpp.o.d"
  "CMakeFiles/wtc_vm.dir/cfg.cpp.o"
  "CMakeFiles/wtc_vm.dir/cfg.cpp.o.d"
  "CMakeFiles/wtc_vm.dir/interp.cpp.o"
  "CMakeFiles/wtc_vm.dir/interp.cpp.o.d"
  "CMakeFiles/wtc_vm.dir/program.cpp.o"
  "CMakeFiles/wtc_vm.dir/program.cpp.o.d"
  "libwtc_vm.a"
  "libwtc_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wtc_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
