file(REMOVE_RECURSE
  "libwtc_vm.a"
)
