
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/asm_parser.cpp" "src/vm/CMakeFiles/wtc_vm.dir/asm_parser.cpp.o" "gcc" "src/vm/CMakeFiles/wtc_vm.dir/asm_parser.cpp.o.d"
  "/root/repo/src/vm/builder.cpp" "src/vm/CMakeFiles/wtc_vm.dir/builder.cpp.o" "gcc" "src/vm/CMakeFiles/wtc_vm.dir/builder.cpp.o.d"
  "/root/repo/src/vm/cfg.cpp" "src/vm/CMakeFiles/wtc_vm.dir/cfg.cpp.o" "gcc" "src/vm/CMakeFiles/wtc_vm.dir/cfg.cpp.o.d"
  "/root/repo/src/vm/interp.cpp" "src/vm/CMakeFiles/wtc_vm.dir/interp.cpp.o" "gcc" "src/vm/CMakeFiles/wtc_vm.dir/interp.cpp.o.d"
  "/root/repo/src/vm/program.cpp" "src/vm/CMakeFiles/wtc_vm.dir/program.cpp.o" "gcc" "src/vm/CMakeFiles/wtc_vm.dir/program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/wtc_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/wtc_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/db/CMakeFiles/wtc_db.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
