# Empty dependencies file for wtc_vm.
# This may be replaced when dependencies are built.
