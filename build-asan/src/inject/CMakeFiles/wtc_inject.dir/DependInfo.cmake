
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/inject/client_injector.cpp" "src/inject/CMakeFiles/wtc_inject.dir/client_injector.cpp.o" "gcc" "src/inject/CMakeFiles/wtc_inject.dir/client_injector.cpp.o.d"
  "/root/repo/src/inject/db_injector.cpp" "src/inject/CMakeFiles/wtc_inject.dir/db_injector.cpp.o" "gcc" "src/inject/CMakeFiles/wtc_inject.dir/db_injector.cpp.o.d"
  "/root/repo/src/inject/oracle.cpp" "src/inject/CMakeFiles/wtc_inject.dir/oracle.cpp.o" "gcc" "src/inject/CMakeFiles/wtc_inject.dir/oracle.cpp.o.d"
  "/root/repo/src/inject/outcome.cpp" "src/inject/CMakeFiles/wtc_inject.dir/outcome.cpp.o" "gcc" "src/inject/CMakeFiles/wtc_inject.dir/outcome.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/db/CMakeFiles/wtc_db.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/vm/CMakeFiles/wtc_vm.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/audit/CMakeFiles/wtc_audit.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/wtc_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/wtc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
