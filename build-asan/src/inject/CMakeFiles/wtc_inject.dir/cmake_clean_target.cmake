file(REMOVE_RECURSE
  "libwtc_inject.a"
)
