# Empty dependencies file for wtc_inject.
# This may be replaced when dependencies are built.
