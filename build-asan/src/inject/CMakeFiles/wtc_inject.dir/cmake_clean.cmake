file(REMOVE_RECURSE
  "CMakeFiles/wtc_inject.dir/client_injector.cpp.o"
  "CMakeFiles/wtc_inject.dir/client_injector.cpp.o.d"
  "CMakeFiles/wtc_inject.dir/db_injector.cpp.o"
  "CMakeFiles/wtc_inject.dir/db_injector.cpp.o.d"
  "CMakeFiles/wtc_inject.dir/oracle.cpp.o"
  "CMakeFiles/wtc_inject.dir/oracle.cpp.o.d"
  "CMakeFiles/wtc_inject.dir/outcome.cpp.o"
  "CMakeFiles/wtc_inject.dir/outcome.cpp.o.d"
  "libwtc_inject.a"
  "libwtc_inject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wtc_inject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
