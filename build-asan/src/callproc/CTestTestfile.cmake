# CMake generated Testfile for 
# Source directory: /root/repo/src/callproc
# Build directory: /root/repo/build-asan/src/callproc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
