
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/callproc/emulated_client.cpp" "src/callproc/CMakeFiles/wtc_callproc.dir/emulated_client.cpp.o" "gcc" "src/callproc/CMakeFiles/wtc_callproc.dir/emulated_client.cpp.o.d"
  "/root/repo/src/callproc/native_client.cpp" "src/callproc/CMakeFiles/wtc_callproc.dir/native_client.cpp.o" "gcc" "src/callproc/CMakeFiles/wtc_callproc.dir/native_client.cpp.o.d"
  "/root/repo/src/callproc/vm_driver.cpp" "src/callproc/CMakeFiles/wtc_callproc.dir/vm_driver.cpp.o" "gcc" "src/callproc/CMakeFiles/wtc_callproc.dir/vm_driver.cpp.o.d"
  "/root/repo/src/callproc/vm_program.cpp" "src/callproc/CMakeFiles/wtc_callproc.dir/vm_program.cpp.o" "gcc" "src/callproc/CMakeFiles/wtc_callproc.dir/vm_program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/db/CMakeFiles/wtc_db.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/vm/CMakeFiles/wtc_vm.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/audit/CMakeFiles/wtc_audit.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/wtc_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/wtc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
