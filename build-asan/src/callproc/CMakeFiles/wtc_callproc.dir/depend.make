# Empty dependencies file for wtc_callproc.
# This may be replaced when dependencies are built.
