file(REMOVE_RECURSE
  "libwtc_callproc.a"
)
