file(REMOVE_RECURSE
  "CMakeFiles/wtc_callproc.dir/emulated_client.cpp.o"
  "CMakeFiles/wtc_callproc.dir/emulated_client.cpp.o.d"
  "CMakeFiles/wtc_callproc.dir/native_client.cpp.o"
  "CMakeFiles/wtc_callproc.dir/native_client.cpp.o.d"
  "CMakeFiles/wtc_callproc.dir/vm_driver.cpp.o"
  "CMakeFiles/wtc_callproc.dir/vm_driver.cpp.o.d"
  "CMakeFiles/wtc_callproc.dir/vm_program.cpp.o"
  "CMakeFiles/wtc_callproc.dir/vm_program.cpp.o.d"
  "libwtc_callproc.a"
  "libwtc_callproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wtc_callproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
