# Empty compiler generated dependencies file for wtc_manager.
# This may be replaced when dependencies are built.
