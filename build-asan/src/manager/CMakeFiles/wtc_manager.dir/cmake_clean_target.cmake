file(REMOVE_RECURSE
  "libwtc_manager.a"
)
