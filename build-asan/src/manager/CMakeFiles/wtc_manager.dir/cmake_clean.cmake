file(REMOVE_RECURSE
  "CMakeFiles/wtc_manager.dir/manager.cpp.o"
  "CMakeFiles/wtc_manager.dir/manager.cpp.o.d"
  "libwtc_manager.a"
  "libwtc_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wtc_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
