file(REMOVE_RECURSE
  "libwtc_experiments.a"
)
