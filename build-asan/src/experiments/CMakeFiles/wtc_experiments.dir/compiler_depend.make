# Empty compiler generated dependencies file for wtc_experiments.
# This may be replaced when dependencies are built.
