file(REMOVE_RECURSE
  "CMakeFiles/wtc_experiments.dir/audit_runner.cpp.o"
  "CMakeFiles/wtc_experiments.dir/audit_runner.cpp.o.d"
  "CMakeFiles/wtc_experiments.dir/pecos_runner.cpp.o"
  "CMakeFiles/wtc_experiments.dir/pecos_runner.cpp.o.d"
  "CMakeFiles/wtc_experiments.dir/prioritized_runner.cpp.o"
  "CMakeFiles/wtc_experiments.dir/prioritized_runner.cpp.o.d"
  "libwtc_experiments.a"
  "libwtc_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wtc_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
