file(REMOVE_RECURSE
  "libwtc_audit.a"
)
