# Empty compiler generated dependencies file for wtc_audit.
# This may be replaced when dependencies are built.
