file(REMOVE_RECURSE
  "CMakeFiles/wtc_audit.dir/engine.cpp.o"
  "CMakeFiles/wtc_audit.dir/engine.cpp.o.d"
  "CMakeFiles/wtc_audit.dir/escalation.cpp.o"
  "CMakeFiles/wtc_audit.dir/escalation.cpp.o.d"
  "CMakeFiles/wtc_audit.dir/priority.cpp.o"
  "CMakeFiles/wtc_audit.dir/priority.cpp.o.d"
  "CMakeFiles/wtc_audit.dir/process.cpp.o"
  "CMakeFiles/wtc_audit.dir/process.cpp.o.d"
  "libwtc_audit.a"
  "libwtc_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wtc_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
