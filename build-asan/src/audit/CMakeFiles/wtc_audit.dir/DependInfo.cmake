
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/audit/engine.cpp" "src/audit/CMakeFiles/wtc_audit.dir/engine.cpp.o" "gcc" "src/audit/CMakeFiles/wtc_audit.dir/engine.cpp.o.d"
  "/root/repo/src/audit/escalation.cpp" "src/audit/CMakeFiles/wtc_audit.dir/escalation.cpp.o" "gcc" "src/audit/CMakeFiles/wtc_audit.dir/escalation.cpp.o.d"
  "/root/repo/src/audit/priority.cpp" "src/audit/CMakeFiles/wtc_audit.dir/priority.cpp.o" "gcc" "src/audit/CMakeFiles/wtc_audit.dir/priority.cpp.o.d"
  "/root/repo/src/audit/process.cpp" "src/audit/CMakeFiles/wtc_audit.dir/process.cpp.o" "gcc" "src/audit/CMakeFiles/wtc_audit.dir/process.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/db/CMakeFiles/wtc_db.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/wtc_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/wtc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
