file(REMOVE_RECURSE
  "CMakeFiles/wtc_common.dir/crc32.cpp.o"
  "CMakeFiles/wtc_common.dir/crc32.cpp.o.d"
  "CMakeFiles/wtc_common.dir/log.cpp.o"
  "CMakeFiles/wtc_common.dir/log.cpp.o.d"
  "CMakeFiles/wtc_common.dir/rng.cpp.o"
  "CMakeFiles/wtc_common.dir/rng.cpp.o.d"
  "CMakeFiles/wtc_common.dir/stats.cpp.o"
  "CMakeFiles/wtc_common.dir/stats.cpp.o.d"
  "CMakeFiles/wtc_common.dir/table_printer.cpp.o"
  "CMakeFiles/wtc_common.dir/table_printer.cpp.o.d"
  "libwtc_common.a"
  "libwtc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wtc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
