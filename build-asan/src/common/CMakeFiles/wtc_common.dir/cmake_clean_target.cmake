file(REMOVE_RECURSE
  "libwtc_common.a"
)
