# Empty compiler generated dependencies file for wtc_common.
# This may be replaced when dependencies are built.
