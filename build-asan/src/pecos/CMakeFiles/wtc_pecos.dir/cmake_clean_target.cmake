file(REMOVE_RECURSE
  "libwtc_pecos.a"
)
