file(REMOVE_RECURSE
  "CMakeFiles/wtc_pecos.dir/bssc.cpp.o"
  "CMakeFiles/wtc_pecos.dir/bssc.cpp.o.d"
  "CMakeFiles/wtc_pecos.dir/monitor.cpp.o"
  "CMakeFiles/wtc_pecos.dir/monitor.cpp.o.d"
  "CMakeFiles/wtc_pecos.dir/plan.cpp.o"
  "CMakeFiles/wtc_pecos.dir/plan.cpp.o.d"
  "libwtc_pecos.a"
  "libwtc_pecos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wtc_pecos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
