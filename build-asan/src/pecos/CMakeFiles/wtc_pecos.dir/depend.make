# Empty dependencies file for wtc_pecos.
# This may be replaced when dependencies are built.
