# CMake generated Testfile for 
# Source directory: /root/repo/src/pecos
# Build directory: /root/repo/build-asan/src/pecos
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
