# Empty dependencies file for wtc_db.
# This may be replaced when dependencies are built.
