file(REMOVE_RECURSE
  "libwtc_db.a"
)
