
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/api.cpp" "src/db/CMakeFiles/wtc_db.dir/api.cpp.o" "gcc" "src/db/CMakeFiles/wtc_db.dir/api.cpp.o.d"
  "/root/repo/src/db/controller_schema.cpp" "src/db/CMakeFiles/wtc_db.dir/controller_schema.cpp.o" "gcc" "src/db/CMakeFiles/wtc_db.dir/controller_schema.cpp.o.d"
  "/root/repo/src/db/database.cpp" "src/db/CMakeFiles/wtc_db.dir/database.cpp.o" "gcc" "src/db/CMakeFiles/wtc_db.dir/database.cpp.o.d"
  "/root/repo/src/db/direct.cpp" "src/db/CMakeFiles/wtc_db.dir/direct.cpp.o" "gcc" "src/db/CMakeFiles/wtc_db.dir/direct.cpp.o.d"
  "/root/repo/src/db/disk.cpp" "src/db/CMakeFiles/wtc_db.dir/disk.cpp.o" "gcc" "src/db/CMakeFiles/wtc_db.dir/disk.cpp.o.d"
  "/root/repo/src/db/layout.cpp" "src/db/CMakeFiles/wtc_db.dir/layout.cpp.o" "gcc" "src/db/CMakeFiles/wtc_db.dir/layout.cpp.o.d"
  "/root/repo/src/db/robust_list.cpp" "src/db/CMakeFiles/wtc_db.dir/robust_list.cpp.o" "gcc" "src/db/CMakeFiles/wtc_db.dir/robust_list.cpp.o.d"
  "/root/repo/src/db/schema.cpp" "src/db/CMakeFiles/wtc_db.dir/schema.cpp.o" "gcc" "src/db/CMakeFiles/wtc_db.dir/schema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/wtc_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/wtc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
