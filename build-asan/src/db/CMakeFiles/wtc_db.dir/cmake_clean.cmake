file(REMOVE_RECURSE
  "CMakeFiles/wtc_db.dir/api.cpp.o"
  "CMakeFiles/wtc_db.dir/api.cpp.o.d"
  "CMakeFiles/wtc_db.dir/controller_schema.cpp.o"
  "CMakeFiles/wtc_db.dir/controller_schema.cpp.o.d"
  "CMakeFiles/wtc_db.dir/database.cpp.o"
  "CMakeFiles/wtc_db.dir/database.cpp.o.d"
  "CMakeFiles/wtc_db.dir/direct.cpp.o"
  "CMakeFiles/wtc_db.dir/direct.cpp.o.d"
  "CMakeFiles/wtc_db.dir/disk.cpp.o"
  "CMakeFiles/wtc_db.dir/disk.cpp.o.d"
  "CMakeFiles/wtc_db.dir/layout.cpp.o"
  "CMakeFiles/wtc_db.dir/layout.cpp.o.d"
  "CMakeFiles/wtc_db.dir/robust_list.cpp.o"
  "CMakeFiles/wtc_db.dir/robust_list.cpp.o.d"
  "CMakeFiles/wtc_db.dir/schema.cpp.o"
  "CMakeFiles/wtc_db.dir/schema.cpp.o.d"
  "libwtc_db.a"
  "libwtc_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wtc_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
