file(REMOVE_RECURSE
  "libwtc_sim.a"
)
