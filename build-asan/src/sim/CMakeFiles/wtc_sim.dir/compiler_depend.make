# Empty compiler generated dependencies file for wtc_sim.
# This may be replaced when dependencies are built.
