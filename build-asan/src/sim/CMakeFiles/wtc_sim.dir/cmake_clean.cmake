file(REMOVE_RECURSE
  "CMakeFiles/wtc_sim.dir/node.cpp.o"
  "CMakeFiles/wtc_sim.dir/node.cpp.o.d"
  "CMakeFiles/wtc_sim.dir/reliable.cpp.o"
  "CMakeFiles/wtc_sim.dir/reliable.cpp.o.d"
  "CMakeFiles/wtc_sim.dir/scheduler.cpp.o"
  "CMakeFiles/wtc_sim.dir/scheduler.cpp.o.d"
  "libwtc_sim.a"
  "libwtc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wtc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
