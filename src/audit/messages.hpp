// IPC message types flowing between the database API, the audit process,
// and the manager (Figure 1's message queue and heartbeat arrows).
#pragma once

#include <cstdint>

#include "audit/report.hpp"
#include "db/api.hpp"
#include "sim/node.hpp"

namespace wtc::audit::msg {

/// Manager -> audit: heartbeat query. args: {sequence, audit epoch}. The
/// epoch is the manager's count of audit spawns; replies echo it so a
/// reply from a previous audit incarnation (in flight across a restart)
/// is never mistaken for liveness of the new one.
inline constexpr std::uint32_t kHeartbeat = 1;
/// Audit -> manager: heartbeat reply. args: {sequence, audit epoch}.
inline constexpr std::uint32_t kHeartbeatReply = 2;
/// DB API -> audit: an API function was called (§4.2: "send a message to
/// the audit process whenever any API function is called").
/// args: {client pid, op, table, record, is_update}.
inline constexpr std::uint32_t kApiActivity = 3;
/// Active manager -> standby peer: the duplicated-manager liveness
/// exchange. args: {term, sequence, audit pid, audit epoch}; the standby
/// adopts the supervision state so a takeover resumes where the dead
/// active left off.
inline constexpr std::uint32_t kPeerHeartbeat = 4;
/// Detection path -> active manager: a control-flow violation needs
/// healing. args: {client pid, thread, from_pc, to_pc, time, source}.
inline constexpr std::uint32_t kCfViolation = 5;

/// Reliable-delivery channel ids (see sim/reliable.hpp): one per logical
/// stream so dedup state never crosses streams of the same process.
inline constexpr std::uint32_t kChannelManagerHeartbeat = 1;
inline constexpr std::uint32_t kChannelAuditReply = 2;
inline constexpr std::uint32_t kChannelApiEvents = 3;

/// Packs an ApiEvent into an IPC message.
[[nodiscard]] inline sim::Message make_activity(const db::ApiEvent& event) {
  sim::Message message;
  message.type = kApiActivity;
  message.args = {static_cast<std::uint64_t>(event.client),
                  static_cast<std::uint64_t>(event.op),
                  static_cast<std::uint64_t>(event.table),
                  static_cast<std::uint64_t>(event.record),
                  event.is_update ? 1ull : 0ull};
  return message;
}

struct ActivityView {
  sim::ProcessId client;
  db::ApiOp op;
  db::TableId table;
  db::RecordIndex record;
  bool is_update;
};

[[nodiscard]] inline ActivityView view_activity(const sim::Message& message) {
  ActivityView view{};
  if (message.args.size() >= 5) {
    view.client = static_cast<sim::ProcessId>(message.args[0]);
    view.op = static_cast<db::ApiOp>(message.args[1]);
    view.table = static_cast<db::TableId>(message.args[2]);
    view.record = static_cast<db::RecordIndex>(message.args[3]);
    view.is_update = message.args[4] != 0;
  }
  return view;
}

/// Packs a CfViolation into an IPC message for the active manager.
[[nodiscard]] inline sim::Message make_cf_violation(const CfViolation& v) {
  sim::Message message;
  message.type = kCfViolation;
  message.args = {static_cast<std::uint64_t>(v.client),
                  static_cast<std::uint64_t>(v.thread),
                  static_cast<std::uint64_t>(v.from_pc),
                  static_cast<std::uint64_t>(v.to_pc),
                  static_cast<std::uint64_t>(v.time),
                  static_cast<std::uint64_t>(v.source)};
  return message;
}

[[nodiscard]] inline CfViolation view_cf_violation(const sim::Message& message) {
  CfViolation v;
  if (message.args.size() >= 6) {
    v.client = static_cast<sim::ProcessId>(message.args[0]);
    v.thread = static_cast<std::uint32_t>(message.args[1]);
    v.from_pc = static_cast<std::uint32_t>(message.args[2]);
    v.to_pc = static_cast<std::uint32_t>(message.args[3]);
    v.time = static_cast<sim::Time>(message.args[4]);
    v.source = static_cast<CfSource>(message.args[5]);
  }
  return v;
}

}  // namespace wtc::audit::msg
