// The audit element's detection + recovery engine (§4.3).
//
// Implements the four audit techniques the paper's periodic audit runs —
// static-data checksum, dynamic-data range check, structural check, and
// semantic referential-integrity check — plus the targeted single-record
// check used by event-triggered audit and the selective attribute monitor
// (§4.4.2). The engine accesses the database region directly (Figure 1's
// "Direct Memory Access" path), bypassing the API and its locks; to keep
// audit results valid against concurrent client transactions it skips
// records written within a configurable grace window — the implementation
// analog of "if there is an intervening update to a record being accessed
// by an audit element, the result of the audit is invalidated" (§4.3).
//
// Every check returns its modelled CPU cost so the caller can book it on
// the shared Cpu — audits are not free, which is exactly what the Table-3
// call-setup-time overhead measures.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "audit/report.hpp"
#include "common/stats.hpp"
#include "common/worker_pool.hpp"
#include "db/database.hpp"
#include "sim/time.hpp"

namespace wtc::audit {

struct EngineConfig {
  bool static_check = true;
  bool structural_check = true;
  bool range_check = true;
  bool semantic_check = true;
  bool selective_monitoring = false;

  /// Range-audit recovery for dynamic tables frees the record preemptively
  /// to stop error propagation (§4.3.1).
  bool free_dynamic_on_range_error = true;

  /// Records written more recently than this are considered possibly
  /// mid-transaction and skipped by range/semantic checks.
  sim::Duration recent_write_grace = 500 * static_cast<sim::Duration>(sim::kMillisecond);

  /// This many *consecutive* corrupted headers indicate table/record
  /// misalignment; the whole database is reloaded from disk (§4.3.2).
  std::uint32_t consecutive_header_threshold = 3;

  /// Selective monitoring: a value is suspect when its occurrence count is
  /// below `selective_fraction * mean occurrences` (§4.4.2), requiring at
  /// least `selective_min_records` samples and a peaked distribution.
  double selective_fraction = 0.3;
  std::size_t selective_min_records = 12;
  double selective_min_mean_occurrences = 4.0;

  /// Static-data checksum chunk size: detection (and reload) granularity.
  std::size_t static_chunk_bytes = 256;

  /// Incremental (dirty-tracking) audit: `incremental_pass` scans only
  /// data written through the store since each check's generation
  /// watermark — same per-item costs, a fraction of the items.
  bool incremental = false;
  /// Every Nth incremental cycle runs the old exhaustive pass, so
  /// raw-memory corruption that bypassed the write path (and therefore
  /// left no dirty stamp) is still caught within N periods. This is the
  /// coverage/cost knob: 1 degenerates to the exhaustive baseline, 0
  /// disables sweeps entirely (store-path coverage only). The escape rate
  /// it buys is measured by bench/ablation_incremental_audit.
  std::uint32_t full_sweep_interval = 10;

  // --- chunk-parallel detection (perf: multi-core audit) ---
  /// Worker count for the read-only detection phase of the static /
  /// structural / range scans (1 = fully sequential). Detection results
  /// are merged on the calling thread in deterministic chunk/record
  /// order, and all cost booking, findings, repairs, and obs output
  /// happen in that merge — so every output is bit-identical to the
  /// sequential engine at any thread count.
  std::size_t audit_threads = 1;
  /// Detection-task granularity (items per task: static chunks or
  /// records). Fixed — independent of `audit_threads` — so task
  /// boundaries, the `audit.parallel_tasks` count, and the modelled
  /// cycle makespan depend only on the work, never on the worker count.
  std::size_t parallel_grain = 64;

  // --- per-cycle CPU budget (overload policy) ---
  /// Modelled CPU allowance per full_pass/incremental_pass cycle, in µs
  /// of booked audit cost (0 = unlimited). A cycle that hits the budget
  /// truncates mid-scan — booking only the items it actually scanned —
  /// and carries the unfinished work units to the next cycle (FIFO, so
  /// no table starves under sustained overload). NOT multiplied by
  /// `cost_scale`: it is a CPU allowance, not a per-item cost.
  sim::Duration cycle_budget = 0;

  // --- modelled CPU cost (microseconds). The controller's production
  // database is far larger than this reproduction's, so `cost_scale`
  // multiplies the per-item costs to recreate the paper's audit CPU load
  // (Table 3's 69% call-setup overhead comes from this contention). ---
  std::uint32_t cost_per_record_structural = 60;
  std::uint32_t cost_per_field_range = 25;
  std::uint32_t cost_per_loop_semantic = 120;
  std::uint32_t cost_per_static_chunk = 40;
  std::uint32_t cost_event_check = 40;
  double cost_scale = 10.0;
};

/// Outcome of one check invocation.
struct CheckResult {
  std::uint32_t findings = 0;
  sim::Duration cost = 0;

  CheckResult& operator+=(const CheckResult& other) noexcept {
    findings += other.findings;
    cost += other.cost;
    return *this;
  }
};

class AuditEngine {
 public:
  AuditEngine(db::Database& db, EngineConfig config,
              std::function<sim::Time()> clock);

  void set_report_sink(ReportSink* sink) noexcept { sink_ = sink; }
  void set_client_control(ClientControl* control) noexcept { control_ = control; }

  /// Shard id stamped on every finding this engine reports (0 when
  /// unsharded). In a sharded deployment each shard owns its own engine;
  /// the stamp is what keeps merged finding streams attributable.
  void set_shard_id(std::uint32_t shard) noexcept { shard_id_ = shard; }
  [[nodiscard]] std::uint32_t shard_id() const noexcept { return shard_id_; }

  /// Golden-checksum audit of all static data; recovery reloads corrupted
  /// chunks from disk (§4.3.1).
  CheckResult check_static();

  /// Structural audit of one table's record headers (§4.3.2). Single
  /// errors are repaired in place; `consecutive_header_threshold`
  /// consecutive corruptions trigger a full database reload.
  CheckResult check_structure(db::TableId t);

  /// Range audit of one dynamic table's active records (§4.3.1).
  CheckResult check_ranges(db::TableId t);

  /// Referential-integrity audit following the FK loops from every active
  /// anchor record, plus orphan ("zombie") sweep (§4.3.3).
  CheckResult check_semantics();

  /// Selective attribute monitoring of one table's unruled dynamic fields
  /// (§4.4.2): derive value-frequency invariants, escalate suspects.
  CheckResult check_selective(db::TableId t);

  /// Targeted single-record check used by event-triggered audit: header +
  /// ranges (bypassing the write-grace window — the triggering write is
  /// the thing under suspicion).
  CheckResult check_record(db::TableId t, db::RecordIndex r);

  /// Full audit pass over the given table order (the periodic element's
  /// unprioritized cycle): static + per-table structure/ranges/selective +
  /// semantic loops.
  CheckResult full_pass(const std::vector<db::TableId>& order);

  // --- incremental (dirty-tracking) variants ---
  // Same detection and recovery logic as the exhaustive checks, but only
  // data whose write generation exceeds the check's watermark is scanned
  // (and costed). Watermarks are epoch-based: each scan captures the global
  // write generation at its start and adopts it at the end, so writes that
  // race the scan keep generations above the new watermark and stay dirty
  // for the next cycle. Records skipped for any other reason (write-grace
  // window, table lock) hold the watermark back so they are revisited.
  // The content checks (range / selective / semantic) consume *field*
  // generations: group relinks rewrite only header link words, bumping the
  // record generation the structural check watches but not the field
  // generation, so link churn does not force content rescans. The range
  // check additionally skips freed records whose scrub attestation stands
  // (field_generation == scrub_generation — fields are catalog defaults by
  // construction).
  CheckResult check_static_incremental();
  CheckResult check_structure_incremental(db::TableId t);
  CheckResult check_ranges_incremental(db::TableId t);
  CheckResult check_semantics_incremental();
  CheckResult check_selective_incremental(db::TableId t);

  /// One incremental audit cycle over the given table order. Every
  /// `full_sweep_interval`-th call runs the exhaustive pass instead (which
  /// also advances all watermarks) to bound the detection latency of
  /// corruption that bypassed the store's dirty tracking.
  CheckResult incremental_pass(const std::vector<db::TableId>& order);

  [[nodiscard]] std::uint64_t total_findings() const noexcept { return findings_; }
  /// Exhaustive sweeps executed by `incremental_pass` so far.
  [[nodiscard]] std::uint64_t full_sweeps() const noexcept { return full_sweeps_; }
  [[nodiscard]] std::uint64_t incremental_cycles() const noexcept {
    return cycle_index_;
  }

  // --- parallel/budgeted cycle outcome (valid after full_pass /
  // incremental_pass; all values are deterministic functions of the
  // configuration and workload, independent of host scheduling) ---
  /// Modelled critical-path latency of the last cycle: per-scan detection
  /// tasks greedily assigned to `audit_threads` workers in task order,
  /// serial scans (semantic/selective) added whole. Equals the cycle's
  /// booked cost when audit_threads == 1.
  [[nodiscard]] sim::Duration last_cycle_makespan() const noexcept {
    return last_makespan_;
  }
  [[nodiscard]] sim::Duration total_makespan() const noexcept {
    return total_makespan_;
  }
  /// Cycles that ran out of budget before draining their work queue.
  [[nodiscard]] std::uint64_t budget_exhausted_cycles() const noexcept {
    return budget_exhausted_cycles_;
  }
  /// Work units pushed to a later cycle so far (deferrals + truncations).
  [[nodiscard]] std::uint64_t deferred_units_total() const noexcept {
    return deferred_units_total_;
  }
  /// Units currently carried over, waiting for the next cycle's budget.
  [[nodiscard]] std::size_t carry_depth() const noexcept { return carry_.size(); }
  /// Dirty-grid chunks overlapping table `t`'s span written since the
  /// older of its structure/ranges watermarks — the "pressure" signal the
  /// budgeted cycle ranks tables by.
  [[nodiscard]] std::uint64_t table_dirty_chunks(db::TableId t) const;

  /// For non-engine elements (e.g. the progress indicator) to report
  /// through the same sink; stamps the time.
  void report_external(Finding finding) { report(std::move(finding)); }

  /// Deterministic critical path of `task_costs` greedily assigned (in
  /// task order, to the least-loaded worker) across `workers` workers.
  /// Shared by the engine's own scans and the replay audit's makespan
  /// model, so both book parallel cost under the same discipline.
  [[nodiscard]] static sim::Duration greedy_makespan(
      const std::vector<sim::Duration>& task_costs, std::size_t workers);

 private:
  void report(Finding finding);
  [[nodiscard]] bool recently_written(db::TableId t, db::RecordIndex r) const;
  /// Frees `r` and terminates the thread that last wrote it.
  void free_and_terminate(db::TableId t, db::RecordIndex r, Technique technique);
  [[nodiscard]] bool header_corrupted(db::TableId t, db::RecordIndex r,
                                      std::uint32_t expected_next) const;
  /// Follows the FK chain from (t, r); returns false on violation.
  [[nodiscard]] bool loop_intact(db::TableId t, db::RecordIndex r,
                                 std::vector<std::pair<db::TableId, db::RecordIndex>>&
                                     chain) const;

  static constexpr sim::Duration kUnlimited =
      std::numeric_limits<sim::Duration>::max();

  /// Carried progress of a budget-truncated scan. `resume` is an absolute
  /// item index (static chunk / record / flattened semantic ordinal):
  /// items below it were scanned — and booked — by an earlier installment
  /// of the same scan. `mark` is the epoch watermark captured when the
  /// scan first started; it is adopted only when the scan completes, so
  /// writes landing between installments stay dirty. `new_mark` carries
  /// the running skip-holds (grace window, locks) across installments.
  struct ScanProgress {
    std::size_t resume = 0;
    std::uint64_t mark = 0;
    std::uint64_t new_mark = 0;
    std::uint32_t consecutive = 0;  ///< structural consecutive-bad run
    bool started = false;
    bool truncated = false;  ///< set by a scan that hit its budget
  };

  /// One schedulable slice of an audit cycle. The cycle's work queue is
  /// carried units (FIFO) followed by this cycle's fresh units; a unit
  /// that hits the budget re-queues itself with its ScanProgress.
  struct WorkUnit {
    enum class Kind : std::uint8_t { Static, Structure, Ranges, Selective, Semantics };
    Kind kind = Kind::Static;
    db::TableId table = db::kNoTable;
    bool exhaustive = false;  ///< frozen at enqueue: a truncated sweep
                              ///< unit finishes exhaustively next cycle
    ScanProgress progress;
  };

  // Shared implementations of the exhaustive/incremental check pairs.
  // `budget` is the remaining cycle allowance (kUnlimited for the one-shot
  // public checks); `progress` carries truncation state across cycles
  // (nullptr for one-shot calls, which never truncate).
  CheckResult static_scan(bool exhaustive, sim::Duration budget,
                          ScanProgress* progress);
  CheckResult structure_scan(db::TableId t, bool exhaustive, sim::Duration budget,
                             ScanProgress* progress);
  CheckResult ranges_scan(db::TableId t, bool exhaustive, sim::Duration budget,
                          ScanProgress* progress);
  CheckResult semantics_scan(bool exhaustive, sim::Duration budget,
                             ScanProgress* progress);
  CheckResult selective_scan(db::TableId t, bool exhaustive);

  /// Runs `detect(i)` for every i in [0, items) — a read-only verdict
  /// computation with no obs/log/region writes — partitioned into
  /// `parallel_grain`-sized tasks, on the worker pool when
  /// audit_threads > 1. Returns the task count (counted as
  /// audit.parallel_tasks whether or not a pool ran them, so the counter
  /// is identical at any thread count).
  std::size_t parallel_detect(std::size_t items,
                              const std::function<void(std::size_t)>& detect);
  /// Deterministic critical path of `task_costs` greedily assigned (in
  /// task order, to the least-loaded worker) across audit_threads workers.
  [[nodiscard]] sim::Duration makespan_of(
      const std::vector<sim::Duration>& task_costs) const;

  /// Runs one work unit against `budget` remaining cycle allowance;
  /// tallies the scan and updates scan_makespan_.
  CheckResult run_unit(WorkUnit& unit, sim::Duration budget);
  /// One budgeted, carried, prioritized cycle over the unit queue.
  CheckResult run_cycle(const std::vector<db::TableId>& order, bool exhaustive);
  /// A record was skipped without being verified: pull `new_mark` below
  /// its write generation `gen` so the next incremental scan revisits it.
  /// Callers pass the generation from the same domain their dirty test
  /// uses (record_generation for structure, field_generation for the
  /// content checks).
  static void hold_watermark(std::uint64_t gen, std::uint64_t& new_mark);

  db::Database& db_;
  EngineConfig config_;
  std::function<sim::Time()> clock_;
  ReportSink* sink_ = nullptr;
  ClientControl* control_ = nullptr;
  std::uint32_t shard_id_ = 0;
  std::uint64_t findings_ = 0;
  /// Golden CRCs of static-data chunks, computed from the pristine image.
  struct StaticChunk {
    std::size_t offset;
    std::size_t length;
    std::uint32_t golden_crc;
  };
  std::vector<StaticChunk> static_chunks_;

  // --- incremental-audit state ---
  std::uint64_t static_watermark_ = 0;
  std::uint64_t semantic_watermark_ = 0;
  std::vector<std::uint64_t> structure_watermark_;  ///< per table
  std::vector<std::uint64_t> ranges_watermark_;     ///< per table
  std::vector<std::uint64_t> selective_watermark_;  ///< per table
  std::uint64_t cycle_index_ = 0;
  std::uint64_t full_sweeps_ = 0;
  /// Reverse-reference index, precomputed from the schema: for each table
  /// t, every (table, field) whose ForeignKey references t. The semantic
  /// audit's orphan sweep walks this instead of rescanning the schema, and
  /// the incremental variant uses it to prove a table's referencedness
  /// cannot have changed.
  std::vector<std::vector<std::pair<db::TableId, db::FieldId>>> referencing_;
  /// Tables that anchor semantic loop walks (dynamic + FK-bearing).
  std::vector<char> anchor_table_;
  /// Tables with a PrimaryKey field (orphan-sweep candidates).
  std::vector<char> has_pk_;
  /// Per-anchor dirty sets: the loop anchor each record last belonged to,
  /// so a write to any chain member re-walks exactly that loop.
  std::vector<std::vector<std::pair<db::TableId, db::RecordIndex>>> chain_anchor_;

  // --- parallel/budgeted cycle state ---
  /// Detection worker pool, created lazily when audit_threads > 1.
  std::unique_ptr<common::WorkerPool> pool_;
  /// Work deferred by budget exhaustion, run first next cycle (FIFO).
  std::deque<WorkUnit> carry_;
  /// Critical-path cost of the last scan (set by every scan; equals the
  /// scan's booked cost for serial scans).
  sim::Duration scan_makespan_ = 0;
  sim::Duration last_makespan_ = 0;
  sim::Duration total_makespan_ = 0;
  std::uint64_t budget_exhausted_cycles_ = 0;
  std::uint64_t deferred_units_total_ = 0;
  /// Flattened (table, record) ordinal bases for the semantic scan's
  /// resume indexing: ordinal(t, r) = record_ordinal_base_[t] + r.
  std::vector<std::size_t> record_ordinal_base_;
  std::size_t total_records_ = 0;
};

}  // namespace wtc::audit
