// Control-flow attestation audit element (ACFA-style, PECOS → continuous).
//
// Consumes the per-thread CF log every `slice_period` and validates each
// retired control transfer against the PECOS plan:
//   * the transfer's source must be a CFI site of the *pristine* program
//     (an instruction corrupted into a CFI has no such site),
//   * the landing must be in the CFI's valid-target set (static targets
//     for jump/branch/call, block leaders for indirect calls, the
//     return-point set for returns),
//   * continuity (the block-entry shadow rule, log edition): execution
//     must reach the source linearly from the previous landing — forward
//     only, with no unconditional CFI site in between (one of those would
//     itself have been logged).
//
// Detection latency is bounded by the slice period: every logged entry is
// stamped with its quantum start time, and a slice at time S drains all
// entries with time <= S, so a violating transfer waits at most one
// period. A full ring forces an early slice (CfLog overflow policy), so
// bursty threads are attested *sooner*, never dropped.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "audit/process.hpp"
#include "audit/report.hpp"
#include "db/op_log.hpp"
#include "pecos/cf_log.hpp"
#include "pecos/plan.hpp"

namespace wtc::audit {

struct CfAttestConfig {
  sim::Duration slice_period = 100 * static_cast<sim::Duration>(sim::kMillisecond);
  /// Modelled audit CPU cost per attested transition (µs).
  sim::Duration cost_per_transition = 1;
};

class CfAttestElement final : public AuditElement {
 public:
  /// `client_pid` stamps violations with the client process id (resolved
  /// lazily — the client spawns after the audit process). `on_violation`
  /// routes detections to the healing path; may be empty (detect-only).
  CfAttestElement(pecos::CfLog& log, const pecos::Plan& plan,
                  CfAttestConfig config,
                  std::function<sim::ProcessId()> client_pid,
                  std::function<void(const CfViolation&)> on_violation);

  [[nodiscard]] std::string_view name() const override { return "cf-attest"; }
  void on_start(AuditProcess& process) override;

  /// Healing replay bookkeeping: clean slices advance this log's
  /// per-thread watermark (optional).
  void set_op_log(db::ThreadOpLog* op_log) noexcept { op_log_ = op_log; }

  /// Resets the continuity shadow of a healed thread (the restart's
  /// thread-start marker also does this; this is the belt to its braces).
  void reset_thread(std::uint32_t thread);

  [[nodiscard]] std::uint64_t slices() const noexcept { return slices_; }
  [[nodiscard]] std::uint64_t transitions_attested() const noexcept {
    return attested_;
  }
  [[nodiscard]] std::uint64_t violations() const noexcept { return violations_; }
  /// Worst observed detection latency (µs of sim time), violations only.
  [[nodiscard]] std::uint64_t max_detection_latency_us() const noexcept {
    return max_latency_us_;
  }
  [[nodiscard]] std::optional<sim::Time> first_violation_time() const noexcept {
    return first_violation_;
  }

 private:
  struct Shadow {
    std::uint32_t landing = 0;  ///< last legitimate landing pc
    bool valid = false;
  };

  void tick(AuditProcess& process);
  void slice_thread(std::uint32_t thread, sim::Time now);
  [[nodiscard]] bool transition_valid(const pecos::CfTransition& entry,
                                      const Shadow& shadow) const;
  void flag(const pecos::CfTransition& entry, sim::Time now);
  Shadow& shadow_for(std::uint32_t thread);

  pecos::CfLog& log_;
  const pecos::Plan& plan_;
  CfAttestConfig config_;
  std::function<sim::ProcessId()> client_pid_;
  std::function<void(const CfViolation&)> on_violation_;
  db::ThreadOpLog* op_log_ = nullptr;
  AuditProcess* process_ = nullptr;
  std::vector<Shadow> shadows_;
  /// Sorted pcs of CFIs that always transfer (Jmp/Call/ICall/Ret): legit
  /// linear execution cannot cross one of these without logging it.
  std::vector<std::uint32_t> unconditional_sites_;
  std::vector<std::uint32_t> return_points_sorted_;
  std::vector<pecos::CfTransition> scratch_;
  std::uint64_t slices_ = 0;
  std::uint64_t attested_ = 0;
  std::uint64_t violations_ = 0;
  std::uint64_t max_latency_us_ = 0;
  std::optional<sim::Time> first_violation_;
};

}  // namespace wtc::audit
