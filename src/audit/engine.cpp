#include "audit/engine.hpp"

#include <algorithm>
#include <array>

#include "common/crc32.hpp"
#include "db/direct.hpp"
#include "obs/metrics.hpp"

namespace wtc::audit {

namespace {

/// Books one check invocation in the observability layer. Every public
/// check entry point (and every scan dispatched by incremental_pass)
/// funnels its result through here, so `audit.checks` counts check
/// invocations uniformly no matter which element drove them.
CheckResult tally(CheckResult result) {
  obs::count(obs::Counter::audit_checks);
  obs::observe(obs::Histogram::audit_check_cost_us,
               static_cast<std::uint64_t>(result.cost));
  return result;
}

std::string_view technique_name(Technique technique) noexcept {
  switch (technique) {
    case Technique::StaticChecksum: return "static-checksum";
    case Technique::RangeCheck: return "range-check";
    case Technique::StructuralCheck: return "structural-check";
    case Technique::SemanticCheck: return "semantic-check";
    case Technique::SelectiveMonitor: return "selective-monitor";
    case Technique::ProgressIndicator: return "progress-indicator";
    case Technique::ElementQuarantine: return "element-quarantine";
    case Technique::CfAttestation: return "cf-attestation";
  }
  return "?";
}

}  // namespace

std::string_view to_string(Technique technique) noexcept {
  return technique_name(technique);
}

std::string_view to_string(Recovery recovery) noexcept {
  switch (recovery) {
    case Recovery::None: return "none";
    case Recovery::ReloadSpan: return "reload-span";
    case Recovery::ReloadAll: return "reload-all";
    case Recovery::RepairHeader: return "repair-header";
    case Recovery::ResetField: return "reset-field";
    case Recovery::FreeRecord: return "free-record";
    case Recovery::TerminateClientThread: return "terminate-client-thread";
    case Recovery::KillClientProcess: return "kill-client-process";
    case Recovery::DisableElement: return "disable-element";
    case Recovery::ReenableElement: return "reenable-element";
    case Recovery::HealThread: return "heal-thread";
  }
  return "?";
}

AuditEngine::AuditEngine(db::Database& db, EngineConfig config,
                         std::function<sim::Time()> clock)
    : db_(db), config_(config), clock_(std::move(clock)) {
  // Emulate the production database's audit CPU load on this smaller one.
  const auto scale = [&](std::uint32_t cost) {
    return static_cast<std::uint32_t>(static_cast<double>(cost) *
                                      config_.cost_scale);
  };
  config_.cost_per_record_structural = scale(config_.cost_per_record_structural);
  config_.cost_per_field_range = scale(config_.cost_per_field_range);
  config_.cost_per_loop_semantic = scale(config_.cost_per_loop_semantic);
  config_.cost_per_static_chunk = scale(config_.cost_per_static_chunk);
  config_.cost_event_check = scale(config_.cost_event_check);
  // Golden checksums: chunk every static span and CRC the pristine bytes.
  for (const auto& [offset, length] : db_.static_spans()) {
    for (std::size_t at = offset; at < offset + length;
         at += config_.static_chunk_bytes) {
      const std::size_t chunk_len =
          std::min(config_.static_chunk_bytes, offset + length - at);
      const auto bytes = db_.pristine().subspan(at, chunk_len);
      static_chunks_.push_back({at, chunk_len, common::crc32(bytes)});
    }
  }
  // Incremental-audit state: watermarks start at 0, i.e. everything the
  // store has ever written (generation >= 1) is dirty for the first cycle.
  const std::size_t tables = db_.table_count();
  structure_watermark_.assign(tables, 0);
  ranges_watermark_.assign(tables, 0);
  selective_watermark_.assign(tables, 0);
  referencing_.resize(tables);
  anchor_table_.assign(tables, 0);
  has_pk_.assign(tables, 0);
  chain_anchor_.reserve(tables);
  for (db::TableId t = 0; t < tables; ++t) {
    const auto& spec = db_.schema().tables[t];
    bool has_fk = false;
    for (db::FieldId f = 0; f < spec.fields.size(); ++f) {
      const auto& field = spec.fields[f];
      if (field.role == db::FieldRole::ForeignKey) {
        has_fk = true;
        if (field.ref_table < tables) {
          referencing_[field.ref_table].emplace_back(t, f);
        }
      } else if (field.role == db::FieldRole::PrimaryKey) {
        has_pk_[t] = 1;
      }
    }
    anchor_table_[t] = static_cast<char>(spec.dynamic && has_fk ? 1 : 0);
    chain_anchor_.emplace_back(
        spec.num_records,
        std::make_pair(db::kNoTable, db::RecordIndex{0}));
  }
}

void AuditEngine::report(Finding finding) {
  finding.time = clock_();
  ++findings_;
  obs::count(obs::Counter::audit_findings);
  obs::trace_instant("audit.finding", "audit",
                     static_cast<std::uint64_t>(finding.time));
  if (finding.table != db::kNoTable &&
      finding.table < db_.table_count()) {
    auto& stats = db_.table_stats(finding.table);
    ++stats.errors_detected_total;
    ++stats.errors_last_cycle;
  }
  if (sink_ != nullptr) {
    sink_->on_finding(finding);
  }
}

bool AuditEngine::recently_written(db::TableId t, db::RecordIndex r) const {
  const auto& meta = db_.record_meta(t, r);
  const sim::Time now = clock_();
  return meta.last_access != 0 &&
         now - meta.last_access <
             static_cast<sim::Time>(config_.recent_write_grace);
}

void AuditEngine::hold_watermark(std::uint64_t gen, std::uint64_t& new_mark) {
  if (gen > 0) {
    new_mark = std::min(new_mark, gen - 1);
  }
}

CheckResult AuditEngine::check_static() { return tally(static_scan(true)); }
CheckResult AuditEngine::check_static_incremental() {
  return tally(static_scan(false));
}

CheckResult AuditEngine::static_scan(bool exhaustive) {
  CheckResult result;
  if (!config_.static_check) {
    return result;
  }
  const std::uint64_t mark = db_.write_generation();
  for (const auto& chunk : static_chunks_) {
    if (!exhaustive &&
        !db_.span_written_since(chunk.offset, chunk.length, static_watermark_)) {
      continue;  // no store write since the last scan verified this chunk
    }
    result.cost += config_.cost_per_static_chunk;
    const auto live = db_.region().subspan(chunk.offset, chunk.length);
    if (common::crc32(live) == chunk.golden_crc) {
      continue;
    }
    Finding finding;
    finding.technique = Technique::StaticChecksum;
    finding.recovery = Recovery::ReloadSpan;
    finding.offset = chunk.offset;
    finding.length = chunk.length;
    if (const auto loc = db_.layout().locate(chunk.offset)) {
      finding.table = loc->table;
      finding.record = loc->record;
    }
    report(finding);
    ++result.findings;
    db_.reload_span_from_disk(chunk.offset, chunk.length);
  }
  // Epoch watermark: writes that landed during this scan have generations
  // above `mark` and therefore stay dirty for the next cycle.
  static_watermark_ = mark;
  return result;
}

bool AuditEngine::header_corrupted(db::TableId t, db::RecordIndex r,
                                   std::uint32_t expected_next) const {
  const auto header = db::direct::read_header(db_, t, r);
  const bool dynamic = db_.schema().tables[t].dynamic;
  if (header.id_tag != db::expected_id_tag(t, r)) {
    return true;
  }
  if (header.status != db::kStatusFree && header.status != db::kStatusActive) {
    return true;
  }
  if (header.group >= db::kMaxGroups) {
    return true;
  }
  if (dynamic && ((header.status == db::kStatusFree && header.group != 0) ||
                  (header.status == db::kStatusActive && header.group == 0))) {
    return true;
  }
  return header.next != expected_next;
}

CheckResult AuditEngine::check_one_header(db::TableId t, db::RecordIndex r,
                                          std::uint32_t expected_next,
                                          bool& corrupted) {
  CheckResult result;
  result.cost = config_.cost_per_record_structural;
  corrupted = header_corrupted(t, r, expected_next);
  return result;
}

CheckResult AuditEngine::check_structure(db::TableId t) {
  return tally(structure_scan(t, true));
}
CheckResult AuditEngine::check_structure_incremental(db::TableId t) {
  return tally(structure_scan(t, false));
}

CheckResult AuditEngine::structure_scan(db::TableId t, bool exhaustive) {
  CheckResult result;
  if (!config_.structural_check || t >= db_.table_count()) {
    return result;
  }
  if (db_.lock_info(t)) {
    // Client transaction in progress: result would be invalid. The
    // watermark is NOT advanced, so nothing is lost for the next cycle.
    return result;
  }
  const std::uint64_t mark = db_.write_generation();
  // Header generations, not record generations: this check validates only
  // the 16-byte headers, and ordinary call-data field updates cannot
  // corrupt what it reads.
  if (!exhaustive && db_.table_header_generation(t) <= structure_watermark_[t]) {
    structure_watermark_[t] = mark;
    return result;  // no header write anywhere in the table since last scan
  }
  const auto& tl = db_.layout().table(t);

  // Expected `next` links: each group's chain lists its records in index
  // order. Computed from the stored group values ("offsets ... based on
  // record sizes stored in system tables; all record sizes are fixed and
  // known", §4.3.2).
  std::vector<std::uint32_t> expected_next(tl.num_records, db::kNilLink);
  std::array<std::uint32_t, db::kMaxGroups> last_in_group;
  last_in_group.fill(db::kNilLink);
  for (db::RecordIndex r = 0; r < tl.num_records; ++r) {
    const auto header = db::direct::read_header(db_, t, r);
    if (header.group < db::kMaxGroups) {
      if (last_in_group[header.group] != db::kNilLink) {
        expected_next[last_in_group[header.group]] = r;
      }
      last_in_group[header.group] = r;
    }
  }

  std::vector<db::RecordIndex> bad;
  std::uint32_t consecutive = 0;
  for (db::RecordIndex r = 0; r < tl.num_records; ++r) {
    if (!exhaustive && db_.header_generation(t, r) <= structure_watermark_[t]) {
      // Verified clean by a previous scan and untouched since. Reading its
      // group above cost nothing extra — the booked cost models the
      // per-record validation, which is skipped here.
      consecutive = 0;
      continue;
    }
    bool corrupted = false;
    result += check_one_header(t, r, expected_next[r], corrupted);
    if (corrupted) {
      bad.push_back(r);
      if (++consecutive >= config_.consecutive_header_threshold) {
        // Strong indication of misalignment: reload the whole database
        // (§4.3.2). Dynamic state — all active calls — is lost.
        Finding finding;
        finding.technique = Technique::StructuralCheck;
        finding.recovery = Recovery::ReloadAll;
        finding.table = t;
        finding.offset = 0;
        finding.length = db_.region().size();
        report(finding);
        ++result.findings;
        db_.reload_all_from_disk();
        // Watermark deliberately not advanced: the reload rewrote the
        // whole region, and everything should be re-verified next cycle.
        return result;
      }
    } else {
      consecutive = 0;
    }
  }

  for (const db::RecordIndex r : bad) {
    Finding finding;
    finding.technique = Technique::StructuralCheck;
    finding.recovery = Recovery::RepairHeader;
    finding.table = t;
    finding.record = r;
    finding.offset = db_.layout().record_offset(t, r);
    finding.length = db::kRecordHeaderSize;
    report(finding);
    ++result.findings;
    db::direct::repair_header(db_, t, r);
  }
  // Repairs above went through the store (note_write), so the repaired
  // records carry generations > mark and get re-verified next cycle — and
  // the same notification resynchronizes the shadow group index with the
  // repaired header words, keeping the API's O(1) splice path coherent
  // after structural recovery.
  structure_watermark_[t] = mark;
  return result;
}

CheckResult AuditEngine::check_ranges(db::TableId t) {
  return tally(ranges_scan(t, true));
}
CheckResult AuditEngine::check_ranges_incremental(db::TableId t) {
  return tally(ranges_scan(t, false));
}

CheckResult AuditEngine::ranges_scan(db::TableId t, bool exhaustive) {
  CheckResult result;
  if (!config_.range_check || t >= db_.table_count()) {
    return result;
  }
  const auto& spec = db_.schema().tables[t];
  if (!spec.dynamic || db_.lock_info(t)) {
    return result;
  }
  const std::uint64_t mark = db_.write_generation();
  std::uint64_t new_mark = mark;
  // Field generations, not record generations: a group relink rewrites
  // only header link words and cannot change any field value this check
  // reads, so it must not force a content rescan.
  if (!exhaustive && db_.table_field_generation(t) <= ranges_watermark_[t]) {
    ranges_watermark_[t] = mark;
    return result;
  }
  for (db::RecordIndex r = 0; r < spec.num_records; ++r) {
    const std::uint64_t field_gen = db_.field_generation(t, r);
    if (!exhaustive && field_gen <= ranges_watermark_[t]) {
      continue;
    }
    if (!exhaustive && field_gen == db_.scrub_generation(t, r)) {
      // The last field-area write was the free-record scrub: the fields
      // equal their catalog defaults by construction (defaults come from
      // the trusted out-of-region schema), so the freed-record rule holds
      // without reading a byte. Any later field write — legitimate or
      // injected through the store — breaks the equality.
      continue;
    }
    const auto header = db::direct::read_header(db_, t, r);
    if (recently_written(t, r)) {
      // Possibly mid-transaction: skipped unverified, so the watermark is
      // held back below its generation and it stays dirty for next cycle.
      hold_watermark(field_gen, new_mark);
      continue;
    }
    if (header.status == db::kStatusFree) {
      // Free records must hold exactly their catalog defaults (the API
      // scrubs them on free) — the strongest possible rule, so the audit
      // sweep removes latent errors in unused data ("the entire database
      // is checked for errors periodically", §5.1).
      for (db::FieldId f = 0; f < spec.fields.size(); ++f) {
        result.cost += config_.cost_per_field_range;
        const std::int32_t value = db::direct::read_field(db_, t, r, f);
        if (value == spec.fields[f].default_value) {
          continue;
        }
        Finding finding;
        finding.technique = Technique::RangeCheck;
        finding.recovery = Recovery::ResetField;
        finding.table = t;
        finding.record = r;
        finding.field = f;
        finding.offset = db_.layout().field_offset(t, r, f);
        finding.length = 4;
        report(finding);
        ++result.findings;
        db::direct::write_field(db_, t, r, f, spec.fields[f].default_value);
      }
      continue;
    }
    if (header.status != db::kStatusActive) {
      continue;  // corrupted status: the structural audit owns this
    }
    for (db::FieldId f = 0; f < spec.fields.size(); ++f) {
      const auto& field = spec.fields[f];
      if (!field.has_range()) {
        continue;
      }
      result.cost += config_.cost_per_field_range;
      const std::int32_t value = db::direct::read_field(db_, t, r, f);
      if (value >= *field.range_min && value <= *field.range_max) {
        continue;
      }
      Finding finding;
      finding.technique = Technique::RangeCheck;
      finding.table = t;
      finding.record = r;
      finding.field = f;
      finding.offset = db_.layout().field_offset(t, r, f);
      finding.length = 4;
      ++result.findings;
      // Recovery: reset to the catalog default; in a dynamic table, also
      // free the record preemptively to stop propagation (§4.3.1).
      db::direct::write_field(db_, t, r, f, field.default_value);
      if (config_.free_dynamic_on_range_error) {
        finding.recovery = Recovery::FreeRecord;
        report(finding);
        db::direct::free_record(db_, t, r);
        break;  // record is gone; stop scanning its fields
      }
      finding.recovery = Recovery::ResetField;
      report(finding);
    }
  }
  ranges_watermark_[t] = new_mark;
  return result;
}

bool AuditEngine::loop_intact(
    db::TableId t, db::RecordIndex r,
    std::vector<std::pair<db::TableId, db::RecordIndex>>& chain) const {
  chain.clear();
  chain.emplace_back(t, r);
  db::TableId cur_t = t;
  db::RecordIndex cur_r = r;
  constexpr int kMaxHops = 8;
  for (int hop = 0; hop < kMaxHops; ++hop) {
    const auto& spec = db_.schema().tables[cur_t];
    const auto fk = std::find_if(spec.fields.begin(), spec.fields.end(),
                                 [](const db::FieldSpec& field) {
                                   return field.role == db::FieldRole::ForeignKey;
                                 });
    if (fk == spec.fields.end()) {
      return true;  // chain ends without a loop: nothing to verify
    }
    const auto fk_index = static_cast<db::FieldId>(fk - spec.fields.begin());
    const std::int32_t key = db::direct::read_field(db_, cur_t, cur_r, fk_index);
    if (key <= 0) {
      return false;  // unset/invalid reference
    }
    const db::TableId next_t = fk->ref_table;
    const auto next_r = static_cast<db::RecordIndex>(key - 1);
    if (next_t >= db_.table_count() ||
        next_r >= db_.schema().tables[next_t].num_records) {
      return false;
    }
    const auto header = db::direct::read_header(db_, next_t, next_r);
    if (header.status != db::kStatusActive) {
      return false;  // "lost" record: reference to a freed slot
    }
    // Primary key must match the reference (§4.3.3's correspondence).
    const auto& next_spec = db_.schema().tables[next_t];
    const auto pk = std::find_if(next_spec.fields.begin(), next_spec.fields.end(),
                                 [](const db::FieldSpec& field) {
                                   return field.role == db::FieldRole::PrimaryKey;
                                 });
    if (pk != next_spec.fields.end()) {
      const auto pk_index = static_cast<db::FieldId>(pk - next_spec.fields.begin());
      if (db::direct::read_field(db_, next_t, next_r, pk_index) != key) {
        return false;
      }
    }
    if (next_t == t && next_r == r) {
      return true;  // loop closed back to the anchor: 1-detectable and intact
    }
    for (const auto& [seen_t, seen_r] : chain) {
      if (seen_t == next_t && seen_r == next_r) {
        return false;  // closed onto the wrong record
      }
    }
    chain.emplace_back(next_t, next_r);
    cur_t = next_t;
    cur_r = next_r;
  }
  return false;
}

void AuditEngine::free_and_terminate(db::TableId t, db::RecordIndex r,
                                     Technique technique) {
  const auto meta = db_.record_meta(t, r);
  Finding finding;
  finding.technique = technique;
  finding.recovery = Recovery::FreeRecord;
  finding.table = t;
  finding.record = r;
  finding.offset = db_.layout().record_offset(t, r);
  finding.length = db_.layout().table(t).record_size;
  report(finding);
  db::direct::free_record(db_, t, r);
  if (control_ != nullptr && meta.last_writer != sim::kNoProcess) {
    Finding termination = finding;
    termination.recovery = Recovery::TerminateClientThread;
    report(termination);
    control_->terminate_client_thread(meta.last_writer, meta.last_writer_thread);
  }
}

CheckResult AuditEngine::check_semantics() {
  return tally(semantics_scan(true));
}
CheckResult AuditEngine::check_semantics_incremental() {
  return tally(semantics_scan(false));
}

CheckResult AuditEngine::semantics_scan(bool exhaustive) {
  CheckResult result;
  if (!config_.semantic_check) {
    return result;
  }
  const std::uint64_t mark = db_.write_generation();
  std::uint64_t new_mark = mark;
  std::vector<std::pair<db::TableId, db::RecordIndex>> chain;

  // Anchor selection. Exhaustive: every record of every anchor table
  // (dynamic + FK-bearing; activity is checked at walk time). Incremental:
  // only records written since the watermark, plus — via the per-anchor
  // dirty sets — the last-known anchor of every dirty chain member, so a
  // corrupted mid-chain link re-walks exactly the loop it belongs to.
  std::vector<std::vector<char>> walk(db_.table_count());
  for (db::TableId t = 0; t < db_.table_count(); ++t) {
    walk[t].assign(db_.schema().tables[t].num_records, 0);
  }
  const auto select = [&](db::TableId t, db::RecordIndex r) {
    if (t < db_.table_count() && anchor_table_[t] &&
        r < db_.schema().tables[t].num_records) {
      walk[t][r] = 1;
    }
  };
  for (db::TableId t = 0; t < db_.table_count(); ++t) {
    const auto& spec = db_.schema().tables[t];
    for (db::RecordIndex r = 0; r < spec.num_records; ++r) {
      // Field generations: loop intactness depends on FK/PK field values
      // and record activity, and every legitimate activity change (alloc,
      // free) writes the field area in the same operation — header-only
      // link relinks cannot break a loop.
      if (!exhaustive && db_.field_generation(t, r) <= semantic_watermark_) {
        continue;
      }
      select(t, r);
      if (!exhaustive) {
        const auto anchor = chain_anchor_[t][r];
        if (anchor.first != db::kNoTable) {
          select(anchor.first, anchor.second);
        }
      }
    }
  }

  // Anchored loop checks (§4.3.3).
  for (db::TableId t = 0; t < db_.table_count(); ++t) {
    if (!anchor_table_[t]) {
      continue;
    }
    const auto& spec = db_.schema().tables[t];
    if (db_.lock_info(t)) {
      // Locked: hold the watermark back for every selected anchor so the
      // skipped walks happen next cycle.
      for (db::RecordIndex r = 0; r < spec.num_records; ++r) {
        if (walk[t][r]) {
          hold_watermark(db_.field_generation(t, r), new_mark);
        }
      }
      continue;
    }
    for (db::RecordIndex r = 0; r < spec.num_records; ++r) {
      if (!walk[t][r]) {
        continue;
      }
      const auto header = db::direct::read_header(db_, t, r);
      if (header.status != db::kStatusActive) {
        continue;
      }
      if (recently_written(t, r)) {
        hold_watermark(db_.field_generation(t, r), new_mark);
        continue;
      }
      result.cost += config_.cost_per_loop_semantic;
      const bool intact = loop_intact(t, r, chain);
      // Record which anchor each visited chain member belongs to, so a
      // future write to the member re-selects this anchor.
      for (const auto& [member_t, member_r] : chain) {
        chain_anchor_[member_t][member_r] = {t, r};
      }
      if (intact) {
        if (!exhaustive) {
          // The closed walk just verified every edge of this loop, so a
          // pending walk from any other member of the same chain would
          // re-verify the identical edge set — drop those selections.
          // Broken loops are deliberately NOT deduplicated: each member's
          // own walk can localize the damage differently.
          for (const auto& [member_t, member_r] : chain) {
            if (member_t < walk.size() && anchor_table_[member_t] &&
                member_r < walk[member_t].size()) {
              walk[member_t][member_r] = 0;
            }
          }
        }
        continue;
      }
      // A chain member may be mid-transaction: skip rather than misfire,
      // holding the watermark back so the loop is re-walked next cycle.
      const bool any_recent = std::any_of(
          chain.begin(), chain.end(), [this](const auto& link) {
            return recently_written(link.first, link.second);
          });
      if (any_recent) {
        for (const auto& [member_t, member_r] : chain) {
          hold_watermark(db_.field_generation(member_t, member_r), new_mark);
        }
        continue;
      }
      ++result.findings;
      // Recovery: free the zombie chain and terminate the owning thread —
      // keeps records available at the cost of dropping one call (§4.3.3).
      free_and_terminate(t, r, Technique::SemanticCheck);
      for (std::size_t i = 1; i < chain.size(); ++i) {
        Finding finding;
        finding.technique = Technique::SemanticCheck;
        finding.recovery = Recovery::FreeRecord;
        finding.table = chain[i].first;
        finding.record = chain[i].second;
        finding.offset =
            db_.layout().record_offset(chain[i].first, chain[i].second);
        finding.length = db_.layout().table(chain[i].first).record_size;
        report(finding);
        db::direct::free_record(db_, chain[i].first, chain[i].second);
      }
    }
  }

  // Orphan ("resource leak") sweep: active records no longer referenced by
  // any semantic relationship are zombies holding limited resources.
  for (db::TableId t = 0; t < db_.table_count(); ++t) {
    const auto& spec = db_.schema().tables[t];
    if (!spec.dynamic || !has_pk_[t] || referencing_[t].empty() ||
        db_.lock_info(t)) {
      continue;
    }
    if (!exhaustive) {
      // A record's referencedness can only change when the table itself or
      // one of its referencing tables was written — the reverse-reference
      // index makes that a couple of generation compares.
      bool touched = db_.table_field_generation(t) > semantic_watermark_;
      for (const auto& [u, f] : referencing_[t]) {
        (void)f;
        touched = touched || db_.table_field_generation(u) > semantic_watermark_;
      }
      if (!touched) {
        continue;
      }
    }

    std::vector<bool> referenced(spec.num_records, false);
    for (const auto& [u, f] : referencing_[t]) {
      const auto& uspec = db_.schema().tables[u];
      if (!uspec.dynamic) {
        continue;
      }
      for (db::RecordIndex r = 0; r < uspec.num_records; ++r) {
        if (db::direct::read_header(db_, u, r).status != db::kStatusActive) {
          continue;
        }
        const std::int32_t key = db::direct::read_field(db_, u, r, f);
        if (key > 0 &&
            static_cast<db::RecordIndex>(key - 1) < spec.num_records) {
          referenced[static_cast<std::size_t>(key - 1)] = true;
        }
      }
    }
    for (db::RecordIndex r = 0; r < spec.num_records; ++r) {
      const auto header = db::direct::read_header(db_, t, r);
      if (header.status != db::kStatusActive || referenced[r]) {
        continue;
      }
      if (recently_written(t, r)) {
        hold_watermark(db_.field_generation(t, r), new_mark);
        continue;
      }
      result.cost += config_.cost_per_loop_semantic;
      ++result.findings;
      free_and_terminate(t, r, Technique::SemanticCheck);
    }
  }
  semantic_watermark_ = new_mark;
  return result;
}

CheckResult AuditEngine::check_selective(db::TableId t) {
  return tally(selective_scan(t, true));
}
CheckResult AuditEngine::check_selective_incremental(db::TableId t) {
  return tally(selective_scan(t, false));
}

CheckResult AuditEngine::selective_scan(db::TableId t, bool exhaustive) {
  CheckResult result;
  if (!config_.selective_monitoring || t >= db_.table_count()) {
    return result;
  }
  const auto& spec = db_.schema().tables[t];
  if (!spec.dynamic || db_.lock_info(t)) {
    return result;
  }
  const std::uint64_t mark = db_.write_generation();
  std::uint64_t new_mark = mark;
  // The derived invariant is a histogram over the WHOLE table, so there is
  // no per-record narrowing — but when nothing in the table changed, the
  // histograms (and the verdicts drawn from them) cannot have changed
  // either, and the table-level generation proves it.
  if (!exhaustive && db_.table_field_generation(t) <= selective_watermark_[t]) {
    selective_watermark_[t] = mark;
    return result;
  }
  for (db::FieldId f = 0; f < spec.fields.size(); ++f) {
    const auto& field = spec.fields[f];
    // Only attributes with no enforceable catalog rule are worth deriving
    // invariants for (§4.4.2's motivation).
    if (field.kind != db::DataKind::Dynamic || field.has_range() ||
        field.role != db::FieldRole::Plain) {
      continue;
    }
    common::ValueHistogram histogram;
    for (db::RecordIndex r = 0; r < spec.num_records; ++r) {
      if (db::direct::read_header(db_, t, r).status != db::kStatusActive) {
        continue;
      }
      if (recently_written(t, r)) {
        hold_watermark(db_.field_generation(t, r), new_mark);
        continue;
      }
      result.cost += config_.cost_per_field_range;
      histogram.add(db::direct::read_field(db_, t, r, f));
    }
    if (histogram.total() < config_.selective_min_records ||
        histogram.mean_occurrences() < config_.selective_min_mean_occurrences) {
      continue;  // not enough data / distribution too flat to trust
    }
    const auto suspects = histogram.suspects(config_.selective_fraction);
    if (suspects.empty()) {
      continue;
    }
    for (db::RecordIndex r = 0; r < spec.num_records; ++r) {
      if (db::direct::read_header(db_, t, r).status != db::kStatusActive ||
          recently_written(t, r)) {
        continue;
      }
      const std::int32_t value = db::direct::read_field(db_, t, r, f);
      if (std::find(suspects.begin(), suspects.end(), value) == suspects.end()) {
        continue;
      }
      // "Further checked by other means": escalate to the semantic audit
      // before acting on a derived (unverified) invariant.
      std::vector<std::pair<db::TableId, db::RecordIndex>> chain;
      if (loop_intact(t, r, chain)) {
        // The record's relationships are intact, but the attribute value
        // is a statistical outlier — reset the field only.
        Finding finding;
        finding.technique = Technique::SelectiveMonitor;
        finding.recovery = Recovery::ResetField;
        finding.table = t;
        finding.record = r;
        finding.field = f;
        finding.offset = db_.layout().field_offset(t, r, f);
        finding.length = 4;
        report(finding);
        ++result.findings;
        db::direct::write_field(db_, t, r, f, field.default_value);
      } else {
        ++result.findings;
        free_and_terminate(t, r, Technique::SelectiveMonitor);
      }
    }
  }
  selective_watermark_[t] = new_mark;
  return result;
}

CheckResult AuditEngine::check_record(db::TableId t, db::RecordIndex r) {
  CheckResult result;
  if (t >= db_.table_count() ||
      r >= db_.schema().tables[t].num_records) {
    return result;
  }
  // One targeted event check books exactly one event-check cost: header
  // inspection and the (few) field reads are one cache-resident visit to
  // the record, not a header pass plus a separate range pass.
  result.cost += config_.cost_event_check;

  // Header check (expected next recomputed against current group layout).
  const auto& tl = db_.layout().table(t);
  std::uint32_t expected_next = db::kNilLink;
  const auto my_header = db::direct::read_header(db_, t, r);
  if (my_header.group < db::kMaxGroups) {
    for (db::RecordIndex s = r + 1; s < tl.num_records; ++s) {
      if (db::direct::read_header(db_, t, s).group == my_header.group) {
        expected_next = s;
        break;
      }
    }
  }
  if (header_corrupted(t, r, expected_next)) {
    Finding finding;
    finding.technique = Technique::StructuralCheck;
    finding.recovery = Recovery::RepairHeader;
    finding.table = t;
    finding.record = r;
    finding.offset = db_.layout().record_offset(t, r);
    finding.length = db::kRecordHeaderSize;
    report(finding);
    ++result.findings;
    db::direct::repair_header(db_, t, r);
    // Short-circuit: the repair decided the record's fate (it may have
    // been freed), and no per-field range work was performed — so no
    // per-field range cost is booked either.
    return result;
  }

  // Range check of this record only, ignoring the write-grace window: the
  // triggering write is exactly what is under suspicion.
  const auto& spec = db_.schema().tables[t];
  if (config_.range_check && spec.dynamic &&
      db::direct::read_header(db_, t, r).status == db::kStatusActive) {
    for (db::FieldId f = 0; f < spec.fields.size(); ++f) {
      const auto& field = spec.fields[f];
      if (!field.has_range()) {
        continue;
      }
      result.cost += config_.cost_per_field_range;
      const std::int32_t value = db::direct::read_field(db_, t, r, f);
      if (value >= *field.range_min && value <= *field.range_max) {
        continue;
      }
      Finding finding;
      finding.technique = Technique::RangeCheck;
      finding.table = t;
      finding.record = r;
      finding.field = f;
      finding.offset = db_.layout().field_offset(t, r, f);
      finding.length = 4;
      ++result.findings;
      db::direct::write_field(db_, t, r, f, field.default_value);
      if (config_.free_dynamic_on_range_error) {
        finding.recovery = Recovery::FreeRecord;
        report(finding);
        db::direct::free_record(db_, t, r);
        break;
      }
      finding.recovery = Recovery::ResetField;
      report(finding);
    }
  }
  return tally(result);
}

CheckResult AuditEngine::full_pass(const std::vector<db::TableId>& order) {
  const auto start = static_cast<std::uint64_t>(clock_());
  CheckResult result;
  result += check_static();
  for (const db::TableId t : order) {
    result += check_structure(t);
    result += check_ranges(t);
    if (config_.selective_monitoring) {
      result += check_selective(t);
    }
  }
  result += check_semantics();
  obs::count(obs::Counter::audit_passes);
  obs::observe(obs::Histogram::audit_pass_cost_us,
               static_cast<std::uint64_t>(result.cost));
  obs::trace_span("audit.full_pass", "audit", start,
                  static_cast<std::uint64_t>(result.cost));
  return result;
}

CheckResult AuditEngine::incremental_pass(const std::vector<db::TableId>& order) {
  const auto start = static_cast<std::uint64_t>(clock_());
  ++cycle_index_;
  obs::count(obs::Counter::audit_incremental_cycles);
  const bool sweep = config_.full_sweep_interval != 0 &&
                     cycle_index_ % config_.full_sweep_interval == 0;
  if (sweep) {
    ++full_sweeps_;
    obs::count(obs::Counter::audit_full_sweeps);
  }
  // A sweep cycle runs the scans exhaustively — same checks and costs as
  // the baseline pass — which both catches corruption the dirty tracking
  // never saw (raw-memory writes bypassing the store) and advances every
  // watermark, clearing the accumulated dirty state.
  CheckResult result;
  result += tally(static_scan(sweep));
  for (const db::TableId t : order) {
    result += tally(structure_scan(t, sweep));
    result += tally(ranges_scan(t, sweep));
    if (config_.selective_monitoring) {
      result += tally(selective_scan(t, sweep));
    }
  }
  result += tally(semantics_scan(sweep));
  obs::count(obs::Counter::audit_passes);
  obs::observe(obs::Histogram::audit_pass_cost_us,
               static_cast<std::uint64_t>(result.cost));
  obs::trace_span("audit.incremental_pass", "audit", start,
                  static_cast<std::uint64_t>(result.cost));
  return result;
}

}  // namespace wtc::audit
