#include "audit/engine.hpp"

#include <algorithm>
#include <array>

#include "common/crc32.hpp"
#include "db/direct.hpp"

namespace wtc::audit {

namespace {

std::string_view technique_name(Technique technique) noexcept {
  switch (technique) {
    case Technique::StaticChecksum: return "static-checksum";
    case Technique::RangeCheck: return "range-check";
    case Technique::StructuralCheck: return "structural-check";
    case Technique::SemanticCheck: return "semantic-check";
    case Technique::SelectiveMonitor: return "selective-monitor";
    case Technique::ProgressIndicator: return "progress-indicator";
    case Technique::ElementQuarantine: return "element-quarantine";
  }
  return "?";
}

}  // namespace

std::string_view to_string(Technique technique) noexcept {
  return technique_name(technique);
}

std::string_view to_string(Recovery recovery) noexcept {
  switch (recovery) {
    case Recovery::None: return "none";
    case Recovery::ReloadSpan: return "reload-span";
    case Recovery::ReloadAll: return "reload-all";
    case Recovery::RepairHeader: return "repair-header";
    case Recovery::ResetField: return "reset-field";
    case Recovery::FreeRecord: return "free-record";
    case Recovery::TerminateClientThread: return "terminate-client-thread";
    case Recovery::KillClientProcess: return "kill-client-process";
    case Recovery::DisableElement: return "disable-element";
  }
  return "?";
}

AuditEngine::AuditEngine(db::Database& db, EngineConfig config,
                         std::function<sim::Time()> clock)
    : db_(db), config_(config), clock_(std::move(clock)) {
  // Emulate the production database's audit CPU load on this smaller one.
  const auto scale = [&](std::uint32_t cost) {
    return static_cast<std::uint32_t>(static_cast<double>(cost) *
                                      config_.cost_scale);
  };
  config_.cost_per_record_structural = scale(config_.cost_per_record_structural);
  config_.cost_per_field_range = scale(config_.cost_per_field_range);
  config_.cost_per_loop_semantic = scale(config_.cost_per_loop_semantic);
  config_.cost_per_static_chunk = scale(config_.cost_per_static_chunk);
  config_.cost_event_check = scale(config_.cost_event_check);
  // Golden checksums: chunk every static span and CRC the pristine bytes.
  for (const auto& [offset, length] : db_.static_spans()) {
    for (std::size_t at = offset; at < offset + length;
         at += config_.static_chunk_bytes) {
      const std::size_t chunk_len =
          std::min(config_.static_chunk_bytes, offset + length - at);
      const auto bytes = db_.pristine().subspan(at, chunk_len);
      static_chunks_.push_back({at, chunk_len, common::crc32(bytes)});
    }
  }
}

void AuditEngine::report(Finding finding) {
  finding.time = clock_();
  ++findings_;
  if (finding.table != db::kNoTable &&
      finding.table < db_.table_count()) {
    auto& stats = db_.table_stats(finding.table);
    ++stats.errors_detected_total;
    ++stats.errors_last_cycle;
  }
  if (sink_ != nullptr) {
    sink_->on_finding(finding);
  }
}

bool AuditEngine::recently_written(db::TableId t, db::RecordIndex r) const {
  const auto& meta = db_.record_meta(t, r);
  const sim::Time now = clock_();
  return meta.last_access != 0 &&
         now - meta.last_access <
             static_cast<sim::Time>(config_.recent_write_grace);
}

CheckResult AuditEngine::check_static() {
  CheckResult result;
  if (!config_.static_check) {
    return result;
  }
  for (const auto& chunk : static_chunks_) {
    result.cost += config_.cost_per_static_chunk;
    const auto live = db_.region().subspan(chunk.offset, chunk.length);
    if (common::crc32(live) == chunk.golden_crc) {
      continue;
    }
    Finding finding;
    finding.technique = Technique::StaticChecksum;
    finding.recovery = Recovery::ReloadSpan;
    finding.offset = chunk.offset;
    finding.length = chunk.length;
    if (const auto loc = db_.layout().locate(chunk.offset)) {
      finding.table = loc->table;
      finding.record = loc->record;
    }
    report(finding);
    ++result.findings;
    db_.reload_span_from_disk(chunk.offset, chunk.length);
  }
  return result;
}

CheckResult AuditEngine::check_one_header(db::TableId t, db::RecordIndex r,
                                          std::uint32_t expected_next,
                                          bool& corrupted) {
  CheckResult result;
  result.cost = config_.cost_per_record_structural;
  const auto header = db::direct::read_header(db_, t, r);
  const bool dynamic = db_.schema().tables[t].dynamic;

  corrupted = false;
  if (header.id_tag != db::expected_id_tag(t, r)) {
    corrupted = true;
  } else if (header.status != db::kStatusFree &&
             header.status != db::kStatusActive) {
    corrupted = true;
  } else if (header.group >= db::kMaxGroups) {
    corrupted = true;
  } else if (dynamic && ((header.status == db::kStatusFree && header.group != 0) ||
                         (header.status == db::kStatusActive && header.group == 0))) {
    corrupted = true;
  } else if (header.next != expected_next) {
    corrupted = true;
  }
  return result;
}

CheckResult AuditEngine::check_structure(db::TableId t) {
  CheckResult result;
  if (!config_.structural_check || t >= db_.table_count()) {
    return result;
  }
  if (db_.lock_info(t)) {
    return result;  // client transaction in progress: result would be invalid
  }
  const auto& tl = db_.layout().table(t);

  // Expected `next` links: each group's chain lists its records in index
  // order. Computed from the stored group values ("offsets ... based on
  // record sizes stored in system tables; all record sizes are fixed and
  // known", §4.3.2).
  std::vector<std::uint32_t> expected_next(tl.num_records, db::kNilLink);
  std::array<std::uint32_t, db::kMaxGroups> last_in_group;
  last_in_group.fill(db::kNilLink);
  for (db::RecordIndex r = 0; r < tl.num_records; ++r) {
    const auto header = db::direct::read_header(db_, t, r);
    if (header.group < db::kMaxGroups) {
      if (last_in_group[header.group] != db::kNilLink) {
        expected_next[last_in_group[header.group]] = r;
      }
      last_in_group[header.group] = r;
    }
  }

  std::vector<db::RecordIndex> bad;
  std::uint32_t consecutive = 0;
  for (db::RecordIndex r = 0; r < tl.num_records; ++r) {
    bool corrupted = false;
    result += check_one_header(t, r, expected_next[r], corrupted);
    if (corrupted) {
      bad.push_back(r);
      if (++consecutive >= config_.consecutive_header_threshold) {
        // Strong indication of misalignment: reload the whole database
        // (§4.3.2). Dynamic state — all active calls — is lost.
        Finding finding;
        finding.technique = Technique::StructuralCheck;
        finding.recovery = Recovery::ReloadAll;
        finding.table = t;
        finding.offset = 0;
        finding.length = db_.region().size();
        report(finding);
        ++result.findings;
        db_.reload_all_from_disk();
        return result;
      }
    } else {
      consecutive = 0;
    }
  }

  for (const db::RecordIndex r : bad) {
    Finding finding;
    finding.technique = Technique::StructuralCheck;
    finding.recovery = Recovery::RepairHeader;
    finding.table = t;
    finding.record = r;
    finding.offset = db_.layout().record_offset(t, r);
    finding.length = db::kRecordHeaderSize;
    report(finding);
    ++result.findings;
    db::direct::repair_header(db_, t, r);
  }
  return result;
}

CheckResult AuditEngine::check_ranges(db::TableId t) {
  CheckResult result;
  if (!config_.range_check || t >= db_.table_count()) {
    return result;
  }
  const auto& spec = db_.schema().tables[t];
  if (!spec.dynamic || db_.lock_info(t)) {
    return result;
  }
  for (db::RecordIndex r = 0; r < spec.num_records; ++r) {
    const auto header = db::direct::read_header(db_, t, r);
    if (recently_written(t, r)) {
      continue;
    }
    if (header.status == db::kStatusFree) {
      // Free records must hold exactly their catalog defaults (the API
      // scrubs them on free) — the strongest possible rule, so the audit
      // sweep removes latent errors in unused data ("the entire database
      // is checked for errors periodically", §5.1).
      for (db::FieldId f = 0; f < spec.fields.size(); ++f) {
        result.cost += config_.cost_per_field_range;
        const std::int32_t value = db::direct::read_field(db_, t, r, f);
        if (value == spec.fields[f].default_value) {
          continue;
        }
        Finding finding;
        finding.technique = Technique::RangeCheck;
        finding.recovery = Recovery::ResetField;
        finding.table = t;
        finding.record = r;
        finding.field = f;
        finding.offset = db_.layout().field_offset(t, r, f);
        finding.length = 4;
        report(finding);
        ++result.findings;
        db::direct::write_field(db_, t, r, f, spec.fields[f].default_value);
      }
      continue;
    }
    if (header.status != db::kStatusActive) {
      continue;  // corrupted status: the structural audit owns this
    }
    for (db::FieldId f = 0; f < spec.fields.size(); ++f) {
      const auto& field = spec.fields[f];
      if (!field.has_range()) {
        continue;
      }
      result.cost += config_.cost_per_field_range;
      const std::int32_t value = db::direct::read_field(db_, t, r, f);
      if (value >= *field.range_min && value <= *field.range_max) {
        continue;
      }
      Finding finding;
      finding.technique = Technique::RangeCheck;
      finding.table = t;
      finding.record = r;
      finding.field = f;
      finding.offset = db_.layout().field_offset(t, r, f);
      finding.length = 4;
      ++result.findings;
      // Recovery: reset to the catalog default; in a dynamic table, also
      // free the record preemptively to stop propagation (§4.3.1).
      db::direct::write_field(db_, t, r, f, field.default_value);
      if (config_.free_dynamic_on_range_error) {
        finding.recovery = Recovery::FreeRecord;
        report(finding);
        db::direct::free_record(db_, t, r);
        break;  // record is gone; stop scanning its fields
      }
      finding.recovery = Recovery::ResetField;
      report(finding);
    }
  }
  return result;
}

bool AuditEngine::loop_intact(
    db::TableId t, db::RecordIndex r,
    std::vector<std::pair<db::TableId, db::RecordIndex>>& chain) const {
  chain.clear();
  chain.emplace_back(t, r);
  db::TableId cur_t = t;
  db::RecordIndex cur_r = r;
  constexpr int kMaxHops = 8;
  for (int hop = 0; hop < kMaxHops; ++hop) {
    const auto& spec = db_.schema().tables[cur_t];
    const auto fk = std::find_if(spec.fields.begin(), spec.fields.end(),
                                 [](const db::FieldSpec& field) {
                                   return field.role == db::FieldRole::ForeignKey;
                                 });
    if (fk == spec.fields.end()) {
      return true;  // chain ends without a loop: nothing to verify
    }
    const auto fk_index = static_cast<db::FieldId>(fk - spec.fields.begin());
    const std::int32_t key = db::direct::read_field(db_, cur_t, cur_r, fk_index);
    if (key <= 0) {
      return false;  // unset/invalid reference
    }
    const db::TableId next_t = fk->ref_table;
    const auto next_r = static_cast<db::RecordIndex>(key - 1);
    if (next_t >= db_.table_count() ||
        next_r >= db_.schema().tables[next_t].num_records) {
      return false;
    }
    const auto header = db::direct::read_header(db_, next_t, next_r);
    if (header.status != db::kStatusActive) {
      return false;  // "lost" record: reference to a freed slot
    }
    // Primary key must match the reference (§4.3.3's correspondence).
    const auto& next_spec = db_.schema().tables[next_t];
    const auto pk = std::find_if(next_spec.fields.begin(), next_spec.fields.end(),
                                 [](const db::FieldSpec& field) {
                                   return field.role == db::FieldRole::PrimaryKey;
                                 });
    if (pk != next_spec.fields.end()) {
      const auto pk_index = static_cast<db::FieldId>(pk - next_spec.fields.begin());
      if (db::direct::read_field(db_, next_t, next_r, pk_index) != key) {
        return false;
      }
    }
    if (next_t == t && next_r == r) {
      return true;  // loop closed back to the anchor: 1-detectable and intact
    }
    for (const auto& [seen_t, seen_r] : chain) {
      if (seen_t == next_t && seen_r == next_r) {
        return false;  // closed onto the wrong record
      }
    }
    chain.emplace_back(next_t, next_r);
    cur_t = next_t;
    cur_r = next_r;
  }
  return false;
}

void AuditEngine::free_and_terminate(db::TableId t, db::RecordIndex r,
                                     Technique technique) {
  const auto meta = db_.record_meta(t, r);
  Finding finding;
  finding.technique = technique;
  finding.recovery = Recovery::FreeRecord;
  finding.table = t;
  finding.record = r;
  finding.offset = db_.layout().record_offset(t, r);
  finding.length = db_.layout().table(t).record_size;
  report(finding);
  db::direct::free_record(db_, t, r);
  if (control_ != nullptr && meta.last_writer != sim::kNoProcess) {
    Finding termination = finding;
    termination.recovery = Recovery::TerminateClientThread;
    report(termination);
    control_->terminate_client_thread(meta.last_writer, meta.last_writer_thread);
  }
}

CheckResult AuditEngine::check_semantics() {
  CheckResult result;
  if (!config_.semantic_check) {
    return result;
  }
  std::vector<std::pair<db::TableId, db::RecordIndex>> chain;

  // Anchored loop checks: every active record of every dynamic table that
  // participates in a semantic relationship.
  for (db::TableId t = 0; t < db_.table_count(); ++t) {
    const auto& spec = db_.schema().tables[t];
    const bool has_fk =
        std::any_of(spec.fields.begin(), spec.fields.end(),
                    [](const db::FieldSpec& field) {
                      return field.role == db::FieldRole::ForeignKey;
                    });
    if (!spec.dynamic || !has_fk || db_.lock_info(t)) {
      continue;
    }
    for (db::RecordIndex r = 0; r < spec.num_records; ++r) {
      const auto header = db::direct::read_header(db_, t, r);
      if (header.status != db::kStatusActive || recently_written(t, r)) {
        continue;
      }
      result.cost += config_.cost_per_loop_semantic;
      if (loop_intact(t, r, chain)) {
        continue;
      }
      // A chain member may be mid-transaction: skip rather than misfire.
      const bool any_recent = std::any_of(
          chain.begin(), chain.end(), [this](const auto& link) {
            return recently_written(link.first, link.second);
          });
      if (any_recent) {
        continue;
      }
      ++result.findings;
      // Recovery: free the zombie chain and terminate the owning thread —
      // keeps records available at the cost of dropping one call (§4.3.3).
      free_and_terminate(t, r, Technique::SemanticCheck);
      for (std::size_t i = 1; i < chain.size(); ++i) {
        Finding finding;
        finding.technique = Technique::SemanticCheck;
        finding.recovery = Recovery::FreeRecord;
        finding.table = chain[i].first;
        finding.record = chain[i].second;
        finding.offset =
            db_.layout().record_offset(chain[i].first, chain[i].second);
        finding.length = db_.layout().table(chain[i].first).record_size;
        report(finding);
        db::direct::free_record(db_, chain[i].first, chain[i].second);
      }
    }
  }

  // Orphan ("resource leak") sweep: active records no longer referenced by
  // any semantic relationship are zombies holding limited resources.
  for (db::TableId t = 0; t < db_.table_count(); ++t) {
    const auto& spec = db_.schema().tables[t];
    const bool has_pk =
        std::any_of(spec.fields.begin(), spec.fields.end(),
                    [](const db::FieldSpec& field) {
                      return field.role == db::FieldRole::PrimaryKey;
                    });
    bool referenced_by_schema = false;
    for (db::TableId u = 0; u < db_.table_count(); ++u) {
      for (const auto& field : db_.schema().tables[u].fields) {
        if (field.role == db::FieldRole::ForeignKey && field.ref_table == t) {
          referenced_by_schema = true;
        }
      }
    }
    if (!spec.dynamic || !has_pk || !referenced_by_schema || db_.lock_info(t)) {
      continue;
    }

    std::vector<bool> referenced(spec.num_records, false);
    for (db::TableId u = 0; u < db_.table_count(); ++u) {
      const auto& uspec = db_.schema().tables[u];
      if (!uspec.dynamic) {
        continue;
      }
      for (db::FieldId f = 0; f < uspec.fields.size(); ++f) {
        if (uspec.fields[f].role != db::FieldRole::ForeignKey ||
            uspec.fields[f].ref_table != t) {
          continue;
        }
        for (db::RecordIndex r = 0; r < uspec.num_records; ++r) {
          if (db::direct::read_header(db_, u, r).status != db::kStatusActive) {
            continue;
          }
          const std::int32_t key = db::direct::read_field(db_, u, r, f);
          if (key > 0 &&
              static_cast<db::RecordIndex>(key - 1) < spec.num_records) {
            referenced[static_cast<std::size_t>(key - 1)] = true;
          }
        }
      }
    }
    for (db::RecordIndex r = 0; r < spec.num_records; ++r) {
      const auto header = db::direct::read_header(db_, t, r);
      if (header.status != db::kStatusActive || referenced[r] ||
          recently_written(t, r)) {
        continue;
      }
      result.cost += config_.cost_per_loop_semantic;
      ++result.findings;
      free_and_terminate(t, r, Technique::SemanticCheck);
    }
  }
  return result;
}

CheckResult AuditEngine::check_selective(db::TableId t) {
  CheckResult result;
  if (!config_.selective_monitoring || t >= db_.table_count()) {
    return result;
  }
  const auto& spec = db_.schema().tables[t];
  if (!spec.dynamic || db_.lock_info(t)) {
    return result;
  }
  for (db::FieldId f = 0; f < spec.fields.size(); ++f) {
    const auto& field = spec.fields[f];
    // Only attributes with no enforceable catalog rule are worth deriving
    // invariants for (§4.4.2's motivation).
    if (field.kind != db::DataKind::Dynamic || field.has_range() ||
        field.role != db::FieldRole::Plain) {
      continue;
    }
    common::ValueHistogram histogram;
    for (db::RecordIndex r = 0; r < spec.num_records; ++r) {
      if (db::direct::read_header(db_, t, r).status != db::kStatusActive ||
          recently_written(t, r)) {
        continue;
      }
      result.cost += config_.cost_per_field_range;
      histogram.add(db::direct::read_field(db_, t, r, f));
    }
    if (histogram.total() < config_.selective_min_records ||
        histogram.mean_occurrences() < config_.selective_min_mean_occurrences) {
      continue;  // not enough data / distribution too flat to trust
    }
    const auto suspects = histogram.suspects(config_.selective_fraction);
    if (suspects.empty()) {
      continue;
    }
    for (db::RecordIndex r = 0; r < spec.num_records; ++r) {
      if (db::direct::read_header(db_, t, r).status != db::kStatusActive ||
          recently_written(t, r)) {
        continue;
      }
      const std::int32_t value = db::direct::read_field(db_, t, r, f);
      if (std::find(suspects.begin(), suspects.end(), value) == suspects.end()) {
        continue;
      }
      // "Further checked by other means": escalate to the semantic audit
      // before acting on a derived (unverified) invariant.
      std::vector<std::pair<db::TableId, db::RecordIndex>> chain;
      if (loop_intact(t, r, chain)) {
        // The record's relationships are intact, but the attribute value
        // is a statistical outlier — reset the field only.
        Finding finding;
        finding.technique = Technique::SelectiveMonitor;
        finding.recovery = Recovery::ResetField;
        finding.table = t;
        finding.record = r;
        finding.field = f;
        finding.offset = db_.layout().field_offset(t, r, f);
        finding.length = 4;
        report(finding);
        ++result.findings;
        db::direct::write_field(db_, t, r, f, field.default_value);
      } else {
        ++result.findings;
        free_and_terminate(t, r, Technique::SelectiveMonitor);
      }
    }
  }
  return result;
}

CheckResult AuditEngine::check_record(db::TableId t, db::RecordIndex r) {
  CheckResult result;
  if (t >= db_.table_count() ||
      r >= db_.schema().tables[t].num_records) {
    return result;
  }
  result.cost += config_.cost_event_check;

  // Header check (expected next recomputed against current group layout).
  const auto& tl = db_.layout().table(t);
  std::uint32_t expected_next = db::kNilLink;
  const auto my_header = db::direct::read_header(db_, t, r);
  if (my_header.group < db::kMaxGroups) {
    for (db::RecordIndex s = r + 1; s < tl.num_records; ++s) {
      if (db::direct::read_header(db_, t, s).group == my_header.group) {
        expected_next = s;
        break;
      }
    }
  }
  bool corrupted = false;
  result += check_one_header(t, r, expected_next, corrupted);
  if (corrupted) {
    Finding finding;
    finding.technique = Technique::StructuralCheck;
    finding.recovery = Recovery::RepairHeader;
    finding.table = t;
    finding.record = r;
    finding.offset = db_.layout().record_offset(t, r);
    finding.length = db::kRecordHeaderSize;
    report(finding);
    ++result.findings;
    db::direct::repair_header(db_, t, r);
  }

  // Range check of this record only, ignoring the write-grace window: the
  // triggering write is exactly what is under suspicion.
  const auto& spec = db_.schema().tables[t];
  if (config_.range_check && spec.dynamic &&
      db::direct::read_header(db_, t, r).status == db::kStatusActive) {
    for (db::FieldId f = 0; f < spec.fields.size(); ++f) {
      const auto& field = spec.fields[f];
      if (!field.has_range()) {
        continue;
      }
      result.cost += config_.cost_per_field_range;
      const std::int32_t value = db::direct::read_field(db_, t, r, f);
      if (value >= *field.range_min && value <= *field.range_max) {
        continue;
      }
      Finding finding;
      finding.technique = Technique::RangeCheck;
      finding.table = t;
      finding.record = r;
      finding.field = f;
      finding.offset = db_.layout().field_offset(t, r, f);
      finding.length = 4;
      ++result.findings;
      db::direct::write_field(db_, t, r, f, field.default_value);
      if (config_.free_dynamic_on_range_error) {
        finding.recovery = Recovery::FreeRecord;
        report(finding);
        db::direct::free_record(db_, t, r);
        break;
      }
      finding.recovery = Recovery::ResetField;
      report(finding);
    }
  }
  return result;
}

CheckResult AuditEngine::full_pass(const std::vector<db::TableId>& order) {
  CheckResult result;
  result += check_static();
  for (const db::TableId t : order) {
    result += check_structure(t);
    result += check_ranges(t);
    if (config_.selective_monitoring) {
      result += check_selective(t);
    }
  }
  result += check_semantics();
  return result;
}

}  // namespace wtc::audit
