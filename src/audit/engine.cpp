#include "audit/engine.hpp"

#include <algorithm>
#include <array>
#include <atomic>

#include "common/crc32.hpp"
#include "db/direct.hpp"
#include "obs/metrics.hpp"

namespace wtc::audit {

namespace {

/// Books one check invocation in the observability layer. Every public
/// check entry point (and every scan dispatched by incremental_pass)
/// funnels its result through here, so `audit.checks` counts check
/// invocations uniformly no matter which element drove them.
CheckResult tally(CheckResult result) {
  obs::count(obs::Counter::audit_checks);
  obs::observe(obs::Histogram::audit_check_cost_us,
               static_cast<std::uint64_t>(result.cost));
  return result;
}

std::string_view technique_name(Technique technique) noexcept {
  switch (technique) {
    case Technique::StaticChecksum: return "static-checksum";
    case Technique::RangeCheck: return "range-check";
    case Technique::StructuralCheck: return "structural-check";
    case Technique::SemanticCheck: return "semantic-check";
    case Technique::SelectiveMonitor: return "selective-monitor";
    case Technique::ProgressIndicator: return "progress-indicator";
    case Technique::ElementQuarantine: return "element-quarantine";
    case Technique::CfAttestation: return "cf-attestation";
    case Technique::ReplayCheck: return "replay-check";
  }
  return "?";
}

}  // namespace

std::string_view to_string(Technique technique) noexcept {
  return technique_name(technique);
}

std::string_view to_string(Recovery recovery) noexcept {
  switch (recovery) {
    case Recovery::None: return "none";
    case Recovery::ReloadSpan: return "reload-span";
    case Recovery::ReloadAll: return "reload-all";
    case Recovery::RepairHeader: return "repair-header";
    case Recovery::ResetField: return "reset-field";
    case Recovery::FreeRecord: return "free-record";
    case Recovery::TerminateClientThread: return "terminate-client-thread";
    case Recovery::KillClientProcess: return "kill-client-process";
    case Recovery::DisableElement: return "disable-element";
    case Recovery::ReenableElement: return "reenable-element";
    case Recovery::HealThread: return "heal-thread";
  }
  return "?";
}

AuditEngine::AuditEngine(db::Database& db, EngineConfig config,
                         std::function<sim::Time()> clock)
    : db_(db), config_(config), clock_(std::move(clock)) {
  // Emulate the production database's audit CPU load on this smaller one.
  const auto scale = [&](std::uint32_t cost) {
    return static_cast<std::uint32_t>(static_cast<double>(cost) *
                                      config_.cost_scale);
  };
  config_.cost_per_record_structural = scale(config_.cost_per_record_structural);
  config_.cost_per_field_range = scale(config_.cost_per_field_range);
  config_.cost_per_loop_semantic = scale(config_.cost_per_loop_semantic);
  config_.cost_per_static_chunk = scale(config_.cost_per_static_chunk);
  config_.cost_event_check = scale(config_.cost_event_check);
  // Golden checksums: chunk every static span and CRC the pristine bytes.
  for (const auto& [offset, length] : db_.static_spans()) {
    for (std::size_t at = offset; at < offset + length;
         at += config_.static_chunk_bytes) {
      const std::size_t chunk_len =
          std::min(config_.static_chunk_bytes, offset + length - at);
      const auto bytes = db_.pristine().subspan(at, chunk_len);
      static_chunks_.push_back({at, chunk_len, common::crc32(bytes)});
    }
  }
  // Incremental-audit state: watermarks start at 0, i.e. everything the
  // store has ever written (generation >= 1) is dirty for the first cycle.
  const std::size_t tables = db_.table_count();
  structure_watermark_.assign(tables, 0);
  ranges_watermark_.assign(tables, 0);
  selective_watermark_.assign(tables, 0);
  referencing_.resize(tables);
  anchor_table_.assign(tables, 0);
  has_pk_.assign(tables, 0);
  chain_anchor_.reserve(tables);
  for (db::TableId t = 0; t < tables; ++t) {
    const auto& spec = db_.schema().tables[t];
    bool has_fk = false;
    for (db::FieldId f = 0; f < spec.fields.size(); ++f) {
      const auto& field = spec.fields[f];
      if (field.role == db::FieldRole::ForeignKey) {
        has_fk = true;
        if (field.ref_table < tables) {
          referencing_[field.ref_table].emplace_back(t, f);
        }
      } else if (field.role == db::FieldRole::PrimaryKey) {
        has_pk_[t] = 1;
      }
    }
    anchor_table_[t] = static_cast<char>(spec.dynamic && has_fk ? 1 : 0);
    chain_anchor_.emplace_back(
        spec.num_records,
        std::make_pair(db::kNoTable, db::RecordIndex{0}));
  }
  // Flattened record ordinals for the semantic scan's budget-resume index.
  record_ordinal_base_.assign(tables, 0);
  for (db::TableId t = 0; t < tables; ++t) {
    record_ordinal_base_[t] = total_records_;
    total_records_ += db_.schema().tables[t].num_records;
  }
}

std::uint64_t AuditEngine::table_dirty_chunks(db::TableId t) const {
  if (t >= db_.table_count()) {
    return 0;
  }
  const auto& tl = db_.layout().table(t);
  const std::uint64_t mark =
      std::min(structure_watermark_[t], ranges_watermark_[t]);
  return db_.region_dirty_chunks_since(
      tl.offset, tl.record_size * static_cast<std::size_t>(tl.num_records),
      mark);
}

std::size_t AuditEngine::parallel_detect(
    std::size_t items, const std::function<void(std::size_t)>& detect) {
  if (items == 0) {
    return 0;
  }
  const std::size_t grain = std::max<std::size_t>(1, config_.parallel_grain);
  const std::size_t tasks = (items + grain - 1) / grain;
  // Logical detection tasks — counted whether or not a pool runs them, so
  // the counter is identical at any audit_threads setting.
  obs::count(obs::Counter::audit_parallel_tasks,
             static_cast<std::uint64_t>(tasks));
  const std::size_t workers = std::min(config_.audit_threads, tasks);
  if (workers <= 1) {
    for (std::size_t i = 0; i < items; ++i) {
      detect(i);
    }
    return tasks;
  }
  if (!pool_) {
    pool_ = std::make_unique<common::WorkerPool>(config_.audit_threads - 1);
  }
  std::atomic<std::size_t> next{0};
  pool_->dispatch(workers, [&](std::size_t) {
    for (;;) {
      const std::size_t task = next.fetch_add(1, std::memory_order_relaxed);
      if (task >= tasks) {
        return;
      }
      const std::size_t end = std::min(items, (task + 1) * grain);
      for (std::size_t i = task * grain; i < end; ++i) {
        detect(i);
      }
    }
  });
  return tasks;
}

sim::Duration AuditEngine::greedy_makespan(
    const std::vector<sim::Duration>& task_costs, std::size_t workers) {
  workers = std::max<std::size_t>(1, workers);
  if (workers == 1) {
    sim::Duration sum = 0;
    for (const sim::Duration cost : task_costs) {
      sum += cost;
    }
    return sum;
  }
  // Greedy list scheduling in task order (the deterministic model of a
  // work queue): each task lands on the currently least-loaded worker.
  std::vector<sim::Duration> load(workers, 0);
  for (const sim::Duration cost : task_costs) {
    auto* slot = &load[0];
    for (auto& worker : load) {
      if (worker < *slot) {
        slot = &worker;
      }
    }
    *slot += cost;
  }
  sim::Duration makespan = 0;
  for (const sim::Duration worker : load) {
    makespan = std::max(makespan, worker);
  }
  return makespan;
}

sim::Duration AuditEngine::makespan_of(
    const std::vector<sim::Duration>& task_costs) const {
  return greedy_makespan(task_costs, config_.audit_threads);
}

void AuditEngine::report(Finding finding) {
  finding.time = clock_();
  finding.shard = shard_id_;
  ++findings_;
  obs::count(obs::Counter::audit_findings);
  obs::trace_instant("audit.finding", "audit",
                     static_cast<std::uint64_t>(finding.time));
  if (finding.table != db::kNoTable &&
      finding.table < db_.table_count()) {
    auto& stats = db_.table_stats(finding.table);
    ++stats.errors_detected_total;
    ++stats.errors_last_cycle;
  }
  if (sink_ != nullptr) {
    sink_->on_finding(finding);
  }
}

bool AuditEngine::recently_written(db::TableId t, db::RecordIndex r) const {
  const auto& meta = db_.record_meta(t, r);
  const sim::Time now = clock_();
  return meta.last_access != 0 &&
         now - meta.last_access <
             static_cast<sim::Time>(config_.recent_write_grace);
}

void AuditEngine::hold_watermark(std::uint64_t gen, std::uint64_t& new_mark) {
  if (gen > 0) {
    new_mark = std::min(new_mark, gen - 1);
  }
}

CheckResult AuditEngine::check_static() {
  return tally(static_scan(true, kUnlimited, nullptr));
}
CheckResult AuditEngine::check_static_incremental() {
  return tally(static_scan(false, kUnlimited, nullptr));
}

CheckResult AuditEngine::static_scan(bool exhaustive, sim::Duration budget,
                                     ScanProgress* progress) {
  CheckResult result;
  scan_makespan_ = 0;
  if (!config_.static_check) {
    return result;
  }
  const std::size_t resume = progress != nullptr ? progress->resume : 0;
  const std::uint64_t mark = progress != nullptr && progress->started
                                 ? progress->mark
                                 : db_.write_generation();

  // Select: the chunk indexes this installment must verify. Computed up
  // front (not interleaved with recovery) so the parallel detection phase
  // sees exactly the set the merge phase will book.
  std::vector<std::size_t> selected;
  for (std::size_t i = resume; i < static_chunks_.size(); ++i) {
    const auto& chunk = static_chunks_[i];
    if (exhaustive ||
        db_.span_written_since(chunk.offset, chunk.length, static_watermark_)) {
      selected.push_back(i);
    }
  }

  // Detect (read-only, parallelizable): golden-CRC compare per chunk.
  std::vector<char> clean(selected.size(), 0);
  parallel_detect(selected.size(), [&](std::size_t k) {
    const auto& chunk = static_chunks_[selected[k]];
    const auto live = db_.region().subspan(chunk.offset, chunk.length);
    clean[k] = static_cast<char>(common::crc32(live) == chunk.golden_crc);
  });

  // Merge in chunk order: cost booking, findings, and reloads all happen
  // here on the calling thread, so output is identical at any thread count.
  const std::size_t grain = std::max<std::size_t>(1, config_.parallel_grain);
  std::vector<sim::Duration> task_cost((selected.size() + grain - 1) / grain, 0);
  bool truncated = false;
  for (std::size_t k = 0; k < selected.size(); ++k) {
    if (budget != kUnlimited && result.cost >= budget && k > 0) {
      // Out of budget: book only what was scanned; resume here next cycle.
      truncated = true;
      progress->resume = selected[k];
      progress->mark = mark;
      progress->started = true;
      progress->truncated = true;
      break;
    }
    result.cost += config_.cost_per_static_chunk;
    task_cost[k / grain] += config_.cost_per_static_chunk;
    if (clean[k]) {
      continue;
    }
    const auto& chunk = static_chunks_[selected[k]];
    Finding finding;
    finding.technique = Technique::StaticChecksum;
    finding.recovery = Recovery::ReloadSpan;
    finding.offset = chunk.offset;
    finding.length = chunk.length;
    if (const auto loc = db_.layout().locate(chunk.offset)) {
      finding.table = loc->table;
      finding.record = loc->record;
    }
    report(finding);
    ++result.findings;
    db_.reload_span_from_disk(chunk.offset, chunk.length);
  }
  scan_makespan_ = makespan_of(task_cost);
  if (!truncated) {
    // Epoch watermark: writes that landed during (any installment of) this
    // scan have generations above `mark` and stay dirty for the next cycle.
    static_watermark_ = mark;
  }
  return result;
}

bool AuditEngine::header_corrupted(db::TableId t, db::RecordIndex r,
                                   std::uint32_t expected_next) const {
  const auto header = db::direct::read_header(db_, t, r);
  const bool dynamic = db_.schema().tables[t].dynamic;
  if (header.id_tag != db::expected_id_tag(t, r)) {
    return true;
  }
  if (header.status != db::kStatusFree && header.status != db::kStatusActive) {
    return true;
  }
  if (header.group >= db::kMaxGroups) {
    return true;
  }
  if (dynamic && ((header.status == db::kStatusFree && header.group != 0) ||
                  (header.status == db::kStatusActive && header.group == 0))) {
    return true;
  }
  return header.next != expected_next;
}

CheckResult AuditEngine::check_structure(db::TableId t) {
  return tally(structure_scan(t, true, kUnlimited, nullptr));
}
CheckResult AuditEngine::check_structure_incremental(db::TableId t) {
  return tally(structure_scan(t, false, kUnlimited, nullptr));
}

CheckResult AuditEngine::structure_scan(db::TableId t, bool exhaustive,
                                        sim::Duration budget,
                                        ScanProgress* progress) {
  CheckResult result;
  scan_makespan_ = 0;
  if (!config_.structural_check || t >= db_.table_count()) {
    return result;
  }
  if (db_.lock_info(t)) {
    // Client transaction in progress: result would be invalid. The
    // watermark is NOT advanced, so nothing is lost for the next cycle.
    return result;
  }
  const std::size_t resume = progress != nullptr ? progress->resume : 0;
  const std::uint64_t mark = progress != nullptr && progress->started
                                 ? progress->mark
                                 : db_.write_generation();
  // Header generations, not record generations: this check validates only
  // the 16-byte headers, and ordinary call-data field updates cannot
  // corrupt what it reads.
  if (!exhaustive && db_.table_header_generation(t) <= structure_watermark_[t]) {
    structure_watermark_[t] = mark;
    return result;  // no header write anywhere in the table since last scan
  }
  const auto& tl = db_.layout().table(t);

  // Expected `next` links: each group's chain lists its records in index
  // order. Computed from the stored group values ("offsets ... based on
  // record sizes stored in system tables; all record sizes are fixed and
  // known", §4.3.2).
  std::vector<std::uint32_t> expected_next(tl.num_records, db::kNilLink);
  std::array<std::uint32_t, db::kMaxGroups> last_in_group;
  last_in_group.fill(db::kNilLink);
  for (db::RecordIndex r = 0; r < tl.num_records; ++r) {
    const auto header = db::direct::read_header(db_, t, r);
    if (header.group < db::kMaxGroups) {
      if (last_in_group[header.group] != db::kNilLink) {
        expected_next[last_in_group[header.group]] = r;
      }
      last_in_group[header.group] = r;
    }
  }

  // Select: records this installment must validate. All repairs happen
  // after detection (below), so an up-front selection sees the same dirty
  // set the legacy interleaved loop did.
  std::vector<db::RecordIndex> selected;
  for (db::RecordIndex r = static_cast<db::RecordIndex>(resume);
       r < tl.num_records; ++r) {
    if (exhaustive || db_.header_generation(t, r) > structure_watermark_[t]) {
      selected.push_back(r);
    }
  }

  // Detect (read-only, parallelizable): corruption verdict per header,
  // against the pre-repair region state — exactly what the sequential
  // loop reads, since it too repairs only after the detection loop.
  std::vector<char> corrupt(selected.size(), 0);
  parallel_detect(selected.size(), [&](std::size_t k) {
    corrupt[k] = static_cast<char>(
        header_corrupted(t, selected[k], expected_next[selected[k]]));
  });

  // Merge in record order, replaying the sequential loop's consecutive-run
  // accounting (clean-skipped records reset the run).
  const std::size_t grain = std::max<std::size_t>(1, config_.parallel_grain);
  std::vector<sim::Duration> task_cost((selected.size() + grain - 1) / grain, 0);
  std::vector<db::RecordIndex> bad;
  std::uint32_t consecutive = progress != nullptr ? progress->consecutive : 0;
  bool truncated = false;
  std::size_t k = 0;  // position in `selected`
  for (db::RecordIndex r = static_cast<db::RecordIndex>(resume);
       r < tl.num_records; ++r) {
    if (k >= selected.size() || selected[k] != r) {
      // Verified clean by a previous scan and untouched since. Reading its
      // group above cost nothing extra — the booked cost models the
      // per-record validation, which is skipped here.
      consecutive = 0;
      continue;
    }
    if (budget != kUnlimited && result.cost >= budget && k > 0) {
      truncated = true;
      progress->resume = r;
      progress->mark = mark;
      progress->consecutive = consecutive;
      progress->started = true;
      progress->truncated = true;
      break;
    }
    result.cost += config_.cost_per_record_structural;
    task_cost[k / grain] += config_.cost_per_record_structural;
    if (corrupt[k]) {
      bad.push_back(r);
      if (++consecutive >= config_.consecutive_header_threshold) {
        // Strong indication of misalignment: reload the whole database
        // (§4.3.2). Dynamic state — all active calls — is lost. Verdicts
        // for the remaining records are discarded unbooked, exactly like
        // the sequential loop's early return.
        Finding finding;
        finding.technique = Technique::StructuralCheck;
        finding.recovery = Recovery::ReloadAll;
        finding.table = t;
        finding.offset = 0;
        finding.length = db_.region().size();
        report(finding);
        ++result.findings;
        db_.reload_all_from_disk();
        scan_makespan_ = makespan_of(task_cost);
        // Watermark deliberately not advanced: the reload rewrote the
        // whole region, and everything should be re-verified next cycle.
        // Any carried progress is void for the same reason.
        if (progress != nullptr) {
          progress->truncated = false;
        }
        return result;
      }
    } else {
      consecutive = 0;
    }
    ++k;
  }

  for (const db::RecordIndex r : bad) {
    Finding finding;
    finding.technique = Technique::StructuralCheck;
    finding.recovery = Recovery::RepairHeader;
    finding.table = t;
    finding.record = r;
    finding.offset = db_.layout().record_offset(t, r);
    finding.length = db::kRecordHeaderSize;
    report(finding);
    ++result.findings;
    db::direct::repair_header(db_, t, r);
  }
  scan_makespan_ = makespan_of(task_cost);
  if (!truncated) {
    // Repairs above went through the store (note_write), so the repaired
    // records carry generations > mark and get re-verified next cycle — and
    // the same notification resynchronizes the shadow group index with the
    // repaired header words, keeping the API's O(1) splice path coherent
    // after structural recovery.
    structure_watermark_[t] = mark;
  }
  return result;
}

CheckResult AuditEngine::check_ranges(db::TableId t) {
  return tally(ranges_scan(t, true, kUnlimited, nullptr));
}
CheckResult AuditEngine::check_ranges_incremental(db::TableId t) {
  return tally(ranges_scan(t, false, kUnlimited, nullptr));
}

namespace {

/// Read-only verdict for one record of the range scan. `checked` fields
/// were examined (each books one cost_per_field_range in the merge);
/// `violations` is a bit per FieldId that failed its rule. The detection
/// phase computes verdicts against the pre-recovery region state, which
/// is exactly what the sequential interleaved loop read too: recovery
/// writes for record A touch only A's own field/status bytes (plus
/// neighbors' header link words on a free-relink), none of which a later
/// record's range detection reads.
struct RangeVerdict {
  enum class Kind : std::uint8_t { Skip, Grace, Free, Active };
  Kind kind = Kind::Skip;
  std::uint32_t checked = 0;
  std::uint64_t violations = 0;
};

}  // namespace

CheckResult AuditEngine::ranges_scan(db::TableId t, bool exhaustive,
                                     sim::Duration budget,
                                     ScanProgress* progress) {
  CheckResult result;
  scan_makespan_ = 0;
  if (!config_.range_check || t >= db_.table_count()) {
    return result;
  }
  const auto& spec = db_.schema().tables[t];
  if (!spec.dynamic || db_.lock_info(t)) {
    return result;
  }
  const std::size_t resume = progress != nullptr ? progress->resume : 0;
  const bool carried = progress != nullptr && progress->started;
  const std::uint64_t mark = carried ? progress->mark : db_.write_generation();
  std::uint64_t new_mark = carried ? progress->new_mark : mark;
  // Field generations, not record generations: a group relink rewrites
  // only header link words and cannot change any field value this check
  // reads, so it must not force a content rescan.
  if (!exhaustive && db_.table_field_generation(t) <= ranges_watermark_[t]) {
    ranges_watermark_[t] = mark;
    return result;
  }

  // Select: records this installment must examine (dirty and not
  // scrub-attested). The skip reasons here book nothing, same as the
  // sequential loop's `continue`s.
  std::vector<db::RecordIndex> selected;
  for (db::RecordIndex r = static_cast<db::RecordIndex>(resume);
       r < spec.num_records; ++r) {
    const std::uint64_t field_gen = db_.field_generation(t, r);
    if (!exhaustive && field_gen <= ranges_watermark_[t]) {
      continue;
    }
    if (!exhaustive && field_gen == db_.scrub_generation(t, r)) {
      // The last field-area write was the free-record scrub: the fields
      // equal their catalog defaults by construction (defaults come from
      // the trusted out-of-region schema), so the freed-record rule holds
      // without reading a byte. Any later field write — legitimate or
      // injected through the store — breaks the equality.
      continue;
    }
    selected.push_back(r);
  }

  // Detect (read-only, parallelizable).
  std::vector<RangeVerdict> verdict(selected.size());
  parallel_detect(selected.size(), [&](std::size_t k) {
    const db::RecordIndex r = selected[k];
    RangeVerdict& v = verdict[k];
    const auto header = db::direct::read_header(db_, t, r);
    if (recently_written(t, r)) {
      v.kind = RangeVerdict::Kind::Grace;
      return;
    }
    if (header.status == db::kStatusFree) {
      // Free records must hold exactly their catalog defaults (the API
      // scrubs them on free) — the strongest possible rule, so the audit
      // sweep removes latent errors in unused data ("the entire database
      // is checked for errors periodically", §5.1).
      v.kind = RangeVerdict::Kind::Free;
      for (db::FieldId f = 0; f < spec.fields.size(); ++f) {
        ++v.checked;
        if (db::direct::read_field(db_, t, r, f) !=
            spec.fields[f].default_value) {
          v.violations |= std::uint64_t{1} << f;
        }
      }
      return;
    }
    if (header.status != db::kStatusActive) {
      return;  // corrupted status: the structural audit owns this
    }
    v.kind = RangeVerdict::Kind::Active;
    for (db::FieldId f = 0; f < spec.fields.size(); ++f) {
      const auto& field = spec.fields[f];
      if (!field.has_range()) {
        continue;
      }
      ++v.checked;
      const std::int32_t value = db::direct::read_field(db_, t, r, f);
      if (value >= *field.range_min && value <= *field.range_max) {
        continue;
      }
      v.violations |= std::uint64_t{1} << f;
      if (config_.free_dynamic_on_range_error) {
        return;  // record will be freed; no further fields are scanned
      }
    }
  });

  // Merge in record order: cost booking, findings, resets, and frees.
  const std::size_t grain = std::max<std::size_t>(1, config_.parallel_grain);
  std::vector<sim::Duration> task_cost((selected.size() + grain - 1) / grain, 0);
  bool truncated = false;
  for (std::size_t k = 0; k < selected.size(); ++k) {
    if (budget != kUnlimited && result.cost >= budget && k > 0) {
      truncated = true;
      progress->resume = selected[k];
      progress->mark = mark;
      progress->new_mark = new_mark;
      progress->started = true;
      progress->truncated = true;
      break;
    }
    const db::RecordIndex r = selected[k];
    const RangeVerdict& v = verdict[k];
    if (v.kind == RangeVerdict::Kind::Skip) {
      continue;
    }
    if (v.kind == RangeVerdict::Kind::Grace) {
      // Possibly mid-transaction: skipped unverified, so the watermark is
      // held back below its generation and it stays dirty for next cycle.
      hold_watermark(db_.field_generation(t, r), new_mark);
      continue;
    }
    const sim::Duration record_cost =
        static_cast<sim::Duration>(v.checked) * config_.cost_per_field_range;
    result.cost += record_cost;
    task_cost[k / grain] += record_cost;
    for (db::FieldId f = 0; f < spec.fields.size(); ++f) {
      if ((v.violations & (std::uint64_t{1} << f)) == 0) {
        continue;
      }
      const auto& field = spec.fields[f];
      Finding finding;
      finding.technique = Technique::RangeCheck;
      finding.table = t;
      finding.record = r;
      finding.field = f;
      finding.offset = db_.layout().field_offset(t, r, f);
      finding.length = 4;
      ++result.findings;
      // Recovery: reset to the catalog default; in a dynamic table, also
      // free the record preemptively to stop propagation (§4.3.1).
      db::direct::write_field(db_, t, r, f, field.default_value);
      if (v.kind == RangeVerdict::Kind::Active &&
          config_.free_dynamic_on_range_error) {
        finding.recovery = Recovery::FreeRecord;
        report(finding);
        db::direct::free_record(db_, t, r);
        break;  // record is gone; stop scanning its fields
      }
      finding.recovery = Recovery::ResetField;
      report(finding);
    }
  }
  scan_makespan_ = makespan_of(task_cost);
  if (!truncated) {
    ranges_watermark_[t] = new_mark;
  }
  return result;
}

bool AuditEngine::loop_intact(
    db::TableId t, db::RecordIndex r,
    std::vector<std::pair<db::TableId, db::RecordIndex>>& chain) const {
  chain.clear();
  chain.emplace_back(t, r);
  db::TableId cur_t = t;
  db::RecordIndex cur_r = r;
  constexpr int kMaxHops = 8;
  for (int hop = 0; hop < kMaxHops; ++hop) {
    const auto& spec = db_.schema().tables[cur_t];
    const auto fk = std::find_if(spec.fields.begin(), spec.fields.end(),
                                 [](const db::FieldSpec& field) {
                                   return field.role == db::FieldRole::ForeignKey;
                                 });
    if (fk == spec.fields.end()) {
      return true;  // chain ends without a loop: nothing to verify
    }
    const auto fk_index = static_cast<db::FieldId>(fk - spec.fields.begin());
    const std::int32_t key = db::direct::read_field(db_, cur_t, cur_r, fk_index);
    if (key <= 0) {
      return false;  // unset/invalid reference
    }
    const db::TableId next_t = fk->ref_table;
    const auto next_r = static_cast<db::RecordIndex>(key - 1);
    if (next_t >= db_.table_count() ||
        next_r >= db_.schema().tables[next_t].num_records) {
      return false;
    }
    const auto header = db::direct::read_header(db_, next_t, next_r);
    if (header.status != db::kStatusActive) {
      return false;  // "lost" record: reference to a freed slot
    }
    // Primary key must match the reference (§4.3.3's correspondence).
    const auto& next_spec = db_.schema().tables[next_t];
    const auto pk = std::find_if(next_spec.fields.begin(), next_spec.fields.end(),
                                 [](const db::FieldSpec& field) {
                                   return field.role == db::FieldRole::PrimaryKey;
                                 });
    if (pk != next_spec.fields.end()) {
      const auto pk_index = static_cast<db::FieldId>(pk - next_spec.fields.begin());
      if (db::direct::read_field(db_, next_t, next_r, pk_index) != key) {
        return false;
      }
    }
    if (next_t == t && next_r == r) {
      return true;  // loop closed back to the anchor: 1-detectable and intact
    }
    for (const auto& [seen_t, seen_r] : chain) {
      if (seen_t == next_t && seen_r == next_r) {
        return false;  // closed onto the wrong record
      }
    }
    chain.emplace_back(next_t, next_r);
    cur_t = next_t;
    cur_r = next_r;
  }
  return false;
}

void AuditEngine::free_and_terminate(db::TableId t, db::RecordIndex r,
                                     Technique technique) {
  const auto meta = db_.record_meta(t, r);
  Finding finding;
  finding.technique = technique;
  finding.recovery = Recovery::FreeRecord;
  finding.table = t;
  finding.record = r;
  finding.offset = db_.layout().record_offset(t, r);
  finding.length = db_.layout().table(t).record_size;
  report(finding);
  db::direct::free_record(db_, t, r);
  if (control_ != nullptr && meta.last_writer != sim::kNoProcess) {
    Finding termination = finding;
    termination.recovery = Recovery::TerminateClientThread;
    report(termination);
    control_->terminate_client_thread(meta.last_writer, meta.last_writer_thread);
  }
}

CheckResult AuditEngine::check_semantics() {
  return tally(semantics_scan(true, kUnlimited, nullptr));
}
CheckResult AuditEngine::check_semantics_incremental() {
  return tally(semantics_scan(false, kUnlimited, nullptr));
}

// The semantic scan stays sequential even when audit_threads > 1: its
// recovery (freeing a zombie chain) rewrites records that later anchors'
// walks read, so detection and recovery interleave by design and cannot
// be split into a read-only phase without changing results. Its budget
// truncation uses a flattened (table, record) ordinal as the resume
// point: walk anchors occupy ordinals [0, total_records_), the orphan
// sweep's tables occupy [total_records_, total_records_ + table_count).
CheckResult AuditEngine::semantics_scan(bool exhaustive, sim::Duration budget,
                                        ScanProgress* progress) {
  CheckResult result;
  scan_makespan_ = 0;
  if (!config_.semantic_check) {
    return result;
  }
  const std::size_t resume = progress != nullptr ? progress->resume : 0;
  const bool carried = progress != nullptr && progress->started;
  const std::uint64_t mark = carried ? progress->mark : db_.write_generation();
  std::uint64_t new_mark = carried ? progress->new_mark : mark;
  bool progressed = false;
  const auto truncate_at = [&](std::size_t ordinal) {
    progress->resume = ordinal;
    progress->mark = mark;
    progress->new_mark = new_mark;
    progress->started = true;
    progress->truncated = true;
  };
  std::vector<std::pair<db::TableId, db::RecordIndex>> chain;

  // Anchor selection. Exhaustive: every record of every anchor table
  // (dynamic + FK-bearing; activity is checked at walk time). Incremental:
  // only records written since the watermark, plus — via the per-anchor
  // dirty sets — the last-known anchor of every dirty chain member, so a
  // corrupted mid-chain link re-walks exactly the loop it belongs to.
  std::vector<std::vector<char>> walk(db_.table_count());
  for (db::TableId t = 0; t < db_.table_count(); ++t) {
    walk[t].assign(db_.schema().tables[t].num_records, 0);
  }
  const auto select = [&](db::TableId t, db::RecordIndex r) {
    if (t < db_.table_count() && anchor_table_[t] &&
        r < db_.schema().tables[t].num_records) {
      walk[t][r] = 1;
    }
  };
  for (db::TableId t = 0; t < db_.table_count(); ++t) {
    const auto& spec = db_.schema().tables[t];
    for (db::RecordIndex r = 0; r < spec.num_records; ++r) {
      // Field generations: loop intactness depends on FK/PK field values
      // and record activity, and every legitimate activity change (alloc,
      // free) writes the field area in the same operation — header-only
      // link relinks cannot break a loop.
      if (!exhaustive && db_.field_generation(t, r) <= semantic_watermark_) {
        continue;
      }
      select(t, r);
      if (!exhaustive) {
        const auto anchor = chain_anchor_[t][r];
        if (anchor.first != db::kNoTable) {
          select(anchor.first, anchor.second);
        }
      }
    }
  }

  // Anchored loop checks (§4.3.3).
  bool truncated = false;
  for (db::TableId t = 0; t < db_.table_count() && !truncated; ++t) {
    if (!anchor_table_[t]) {
      continue;
    }
    const auto& spec = db_.schema().tables[t];
    if (db_.lock_info(t)) {
      // Locked: hold the watermark back for every selected anchor so the
      // skipped walks happen next cycle.
      for (db::RecordIndex r = 0; r < spec.num_records; ++r) {
        if (walk[t][r] && record_ordinal_base_[t] + r >= resume) {
          hold_watermark(db_.field_generation(t, r), new_mark);
        }
      }
      continue;
    }
    for (db::RecordIndex r = 0; r < spec.num_records; ++r) {
      if (!walk[t][r] || record_ordinal_base_[t] + r < resume) {
        continue;  // below resume: walked by an earlier installment
      }
      if (budget != kUnlimited && result.cost >= budget && progressed) {
        truncate_at(record_ordinal_base_[t] + r);
        truncated = true;
        break;
      }
      const auto header = db::direct::read_header(db_, t, r);
      if (header.status != db::kStatusActive) {
        continue;
      }
      if (recently_written(t, r)) {
        hold_watermark(db_.field_generation(t, r), new_mark);
        continue;
      }
      result.cost += config_.cost_per_loop_semantic;
      progressed = true;
      const bool intact = loop_intact(t, r, chain);
      // Record which anchor each visited chain member belongs to, so a
      // future write to the member re-selects this anchor.
      for (const auto& [member_t, member_r] : chain) {
        chain_anchor_[member_t][member_r] = {t, r};
      }
      if (intact) {
        if (!exhaustive) {
          // The closed walk just verified every edge of this loop, so a
          // pending walk from any other member of the same chain would
          // re-verify the identical edge set — drop those selections.
          // Broken loops are deliberately NOT deduplicated: each member's
          // own walk can localize the damage differently.
          for (const auto& [member_t, member_r] : chain) {
            if (member_t < walk.size() && anchor_table_[member_t] &&
                member_r < walk[member_t].size()) {
              walk[member_t][member_r] = 0;
            }
          }
        }
        continue;
      }
      // A chain member may be mid-transaction: skip rather than misfire,
      // holding the watermark back so the loop is re-walked next cycle.
      const bool any_recent = std::any_of(
          chain.begin(), chain.end(), [this](const auto& link) {
            return recently_written(link.first, link.second);
          });
      if (any_recent) {
        for (const auto& [member_t, member_r] : chain) {
          hold_watermark(db_.field_generation(member_t, member_r), new_mark);
        }
        continue;
      }
      ++result.findings;
      // Recovery: free the zombie chain and terminate the owning thread —
      // keeps records available at the cost of dropping one call (§4.3.3).
      free_and_terminate(t, r, Technique::SemanticCheck);
      for (std::size_t i = 1; i < chain.size(); ++i) {
        Finding finding;
        finding.technique = Technique::SemanticCheck;
        finding.recovery = Recovery::FreeRecord;
        finding.table = chain[i].first;
        finding.record = chain[i].second;
        finding.offset =
            db_.layout().record_offset(chain[i].first, chain[i].second);
        finding.length = db_.layout().table(chain[i].first).record_size;
        report(finding);
        db::direct::free_record(db_, chain[i].first, chain[i].second);
      }
    }
  }

  // Orphan ("resource leak") sweep: active records no longer referenced by
  // any semantic relationship are zombies holding limited resources.
  // Budget granularity is one table: its reference scan derives one
  // referenced-set, so it either runs whole or defers whole.
  for (db::TableId t = 0; t < db_.table_count() && !truncated; ++t) {
    if (total_records_ + t < resume) {
      continue;  // swept by an earlier installment
    }
    if (budget != kUnlimited && result.cost >= budget && progressed) {
      truncate_at(total_records_ + t);
      truncated = true;
      break;
    }
    const auto& spec = db_.schema().tables[t];
    if (!spec.dynamic || !has_pk_[t] || referencing_[t].empty() ||
        db_.lock_info(t)) {
      continue;
    }
    if (!exhaustive) {
      // A record's referencedness can only change when the table itself or
      // one of its referencing tables was written — the reverse-reference
      // index makes that a couple of generation compares.
      bool touched = db_.table_field_generation(t) > semantic_watermark_;
      for (const auto& [u, f] : referencing_[t]) {
        (void)f;
        touched = touched || db_.table_field_generation(u) > semantic_watermark_;
      }
      if (!touched) {
        continue;
      }
    }

    std::vector<bool> referenced(spec.num_records, false);
    for (const auto& [u, f] : referencing_[t]) {
      const auto& uspec = db_.schema().tables[u];
      if (!uspec.dynamic) {
        continue;
      }
      for (db::RecordIndex r = 0; r < uspec.num_records; ++r) {
        if (db::direct::read_header(db_, u, r).status != db::kStatusActive) {
          continue;
        }
        const std::int32_t key = db::direct::read_field(db_, u, r, f);
        if (key > 0 &&
            static_cast<db::RecordIndex>(key - 1) < spec.num_records) {
          referenced[static_cast<std::size_t>(key - 1)] = true;
        }
      }
    }
    for (db::RecordIndex r = 0; r < spec.num_records; ++r) {
      const auto header = db::direct::read_header(db_, t, r);
      if (header.status != db::kStatusActive || referenced[r]) {
        continue;
      }
      if (recently_written(t, r)) {
        hold_watermark(db_.field_generation(t, r), new_mark);
        continue;
      }
      result.cost += config_.cost_per_loop_semantic;
      progressed = true;
      ++result.findings;
      free_and_terminate(t, r, Technique::SemanticCheck);
    }
  }
  scan_makespan_ = result.cost;  // sequential scan: critical path = total
  if (!truncated) {
    semantic_watermark_ = new_mark;
  }
  return result;
}

CheckResult AuditEngine::check_selective(db::TableId t) {
  return tally(selective_scan(t, true));
}
CheckResult AuditEngine::check_selective_incremental(db::TableId t) {
  return tally(selective_scan(t, false));
}

// Selective monitoring stays serial and atomic under the budget: its
// verdicts derive from a whole-table value histogram, so partial scans
// would change the invariant itself, not just defer work. An overloaded
// cycle defers the whole unit instead (run_cycle's queue check).
CheckResult AuditEngine::selective_scan(db::TableId t, bool exhaustive) {
  CheckResult result;
  scan_makespan_ = 0;
  if (!config_.selective_monitoring || t >= db_.table_count()) {
    return result;
  }
  const auto& spec = db_.schema().tables[t];
  if (!spec.dynamic || db_.lock_info(t)) {
    return result;
  }
  const std::uint64_t mark = db_.write_generation();
  std::uint64_t new_mark = mark;
  // The derived invariant is a histogram over the WHOLE table, so there is
  // no per-record narrowing — but when nothing in the table changed, the
  // histograms (and the verdicts drawn from them) cannot have changed
  // either, and the table-level generation proves it.
  if (!exhaustive && db_.table_field_generation(t) <= selective_watermark_[t]) {
    selective_watermark_[t] = mark;
    return result;
  }
  for (db::FieldId f = 0; f < spec.fields.size(); ++f) {
    const auto& field = spec.fields[f];
    // Only attributes with no enforceable catalog rule are worth deriving
    // invariants for (§4.4.2's motivation).
    if (field.kind != db::DataKind::Dynamic || field.has_range() ||
        field.role != db::FieldRole::Plain) {
      continue;
    }
    common::ValueHistogram histogram;
    for (db::RecordIndex r = 0; r < spec.num_records; ++r) {
      if (db::direct::read_header(db_, t, r).status != db::kStatusActive) {
        continue;
      }
      if (recently_written(t, r)) {
        hold_watermark(db_.field_generation(t, r), new_mark);
        continue;
      }
      result.cost += config_.cost_per_field_range;
      histogram.add(db::direct::read_field(db_, t, r, f));
    }
    if (histogram.total() < config_.selective_min_records ||
        histogram.mean_occurrences() < config_.selective_min_mean_occurrences) {
      continue;  // not enough data / distribution too flat to trust
    }
    const auto suspects = histogram.suspects(config_.selective_fraction);
    if (suspects.empty()) {
      continue;
    }
    for (db::RecordIndex r = 0; r < spec.num_records; ++r) {
      if (db::direct::read_header(db_, t, r).status != db::kStatusActive ||
          recently_written(t, r)) {
        continue;
      }
      const std::int32_t value = db::direct::read_field(db_, t, r, f);
      if (std::find(suspects.begin(), suspects.end(), value) == suspects.end()) {
        continue;
      }
      // "Further checked by other means": escalate to the semantic audit
      // before acting on a derived (unverified) invariant.
      std::vector<std::pair<db::TableId, db::RecordIndex>> chain;
      if (loop_intact(t, r, chain)) {
        // The record's relationships are intact, but the attribute value
        // is a statistical outlier — reset the field only.
        Finding finding;
        finding.technique = Technique::SelectiveMonitor;
        finding.recovery = Recovery::ResetField;
        finding.table = t;
        finding.record = r;
        finding.field = f;
        finding.offset = db_.layout().field_offset(t, r, f);
        finding.length = 4;
        report(finding);
        ++result.findings;
        db::direct::write_field(db_, t, r, f, field.default_value);
      } else {
        ++result.findings;
        free_and_terminate(t, r, Technique::SelectiveMonitor);
      }
    }
  }
  selective_watermark_[t] = new_mark;
  scan_makespan_ = result.cost;
  return result;
}

CheckResult AuditEngine::check_record(db::TableId t, db::RecordIndex r) {
  CheckResult result;
  if (t >= db_.table_count() ||
      r >= db_.schema().tables[t].num_records) {
    return result;
  }
  // One targeted event check books exactly one event-check cost: header
  // inspection and the (few) field reads are one cache-resident visit to
  // the record, not a header pass plus a separate range pass.
  result.cost += config_.cost_event_check;

  // Header check (expected next recomputed against current group layout).
  const auto& tl = db_.layout().table(t);
  std::uint32_t expected_next = db::kNilLink;
  const auto my_header = db::direct::read_header(db_, t, r);
  if (my_header.group < db::kMaxGroups) {
    for (db::RecordIndex s = r + 1; s < tl.num_records; ++s) {
      if (db::direct::read_header(db_, t, s).group == my_header.group) {
        expected_next = s;
        break;
      }
    }
  }
  if (header_corrupted(t, r, expected_next)) {
    Finding finding;
    finding.technique = Technique::StructuralCheck;
    finding.recovery = Recovery::RepairHeader;
    finding.table = t;
    finding.record = r;
    finding.offset = db_.layout().record_offset(t, r);
    finding.length = db::kRecordHeaderSize;
    report(finding);
    ++result.findings;
    db::direct::repair_header(db_, t, r);
    // Short-circuit: the repair decided the record's fate (it may have
    // been freed), and no per-field range work was performed — so no
    // per-field range cost is booked either.
    return result;
  }

  // Range check of this record only, ignoring the write-grace window: the
  // triggering write is exactly what is under suspicion.
  const auto& spec = db_.schema().tables[t];
  if (config_.range_check && spec.dynamic &&
      db::direct::read_header(db_, t, r).status == db::kStatusActive) {
    for (db::FieldId f = 0; f < spec.fields.size(); ++f) {
      const auto& field = spec.fields[f];
      if (!field.has_range()) {
        continue;
      }
      result.cost += config_.cost_per_field_range;
      const std::int32_t value = db::direct::read_field(db_, t, r, f);
      if (value >= *field.range_min && value <= *field.range_max) {
        continue;
      }
      Finding finding;
      finding.technique = Technique::RangeCheck;
      finding.table = t;
      finding.record = r;
      finding.field = f;
      finding.offset = db_.layout().field_offset(t, r, f);
      finding.length = 4;
      ++result.findings;
      db::direct::write_field(db_, t, r, f, field.default_value);
      if (config_.free_dynamic_on_range_error) {
        finding.recovery = Recovery::FreeRecord;
        report(finding);
        db::direct::free_record(db_, t, r);
        break;
      }
      finding.recovery = Recovery::ResetField;
      report(finding);
    }
  }
  return tally(result);
}

CheckResult AuditEngine::run_unit(WorkUnit& unit, sim::Duration budget) {
  switch (unit.kind) {
    case WorkUnit::Kind::Static:
      return tally(static_scan(unit.exhaustive, budget, &unit.progress));
    case WorkUnit::Kind::Structure:
      return tally(
          structure_scan(unit.table, unit.exhaustive, budget, &unit.progress));
    case WorkUnit::Kind::Ranges:
      return tally(
          ranges_scan(unit.table, unit.exhaustive, budget, &unit.progress));
    case WorkUnit::Kind::Selective:
      return tally(selective_scan(unit.table, unit.exhaustive));
    case WorkUnit::Kind::Semantics:
      return tally(semantics_scan(unit.exhaustive, budget, &unit.progress));
  }
  return {};
}

CheckResult AuditEngine::run_cycle(const std::vector<db::TableId>& order,
                                   bool exhaustive) {
  // The cycle's work queue: units carried from earlier budget-exhausted
  // cycles first (FIFO — the starvation-freedom guarantee under sustained
  // overload), then this cycle's fresh units in `order`. A fresh unit
  // duplicating a carried (kind, table) is dropped: the carried one
  // already covers at least its dirty set.
  std::vector<WorkUnit> queue;
  queue.reserve(carry_.size() + 2 + 3 * order.size());
  for (auto& unit : carry_) {
    queue.push_back(unit);
  }
  carry_.clear();
  const auto enqueue_fresh = [&](WorkUnit::Kind kind, db::TableId t) {
    for (const auto& unit : queue) {
      if (unit.kind == kind && unit.table == t) {
        return;
      }
    }
    WorkUnit unit;
    unit.kind = kind;
    unit.table = t;
    unit.exhaustive = exhaustive;  // frozen: a truncated sweep unit still
                                   // finishes exhaustively next cycle
    queue.push_back(unit);
  };
  enqueue_fresh(WorkUnit::Kind::Static, db::kNoTable);
  for (const db::TableId t : order) {
    enqueue_fresh(WorkUnit::Kind::Structure, t);
    enqueue_fresh(WorkUnit::Kind::Ranges, t);
    if (config_.selective_monitoring) {
      enqueue_fresh(WorkUnit::Kind::Selective, t);
    }
  }
  enqueue_fresh(WorkUnit::Kind::Semantics, db::kNoTable);

  const sim::Duration budget =
      config_.cycle_budget > 0 ? config_.cycle_budget : kUnlimited;
  CheckResult result;
  sim::Duration makespan = 0;
  bool exhausted = false;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    if (budget != kUnlimited && result.cost >= budget) {
      // Out of budget: everything not yet started carries to the next
      // cycle, in order.
      exhausted = true;
      for (std::size_t j = i; j < queue.size(); ++j) {
        carry_.push_back(queue[j]);
      }
      break;
    }
    WorkUnit& unit = queue[i];
    const sim::Duration remaining =
        budget == kUnlimited ? kUnlimited : budget - result.cost;
    result += run_unit(unit, remaining);
    makespan += scan_makespan_;
    if (unit.progress.truncated) {
      // Partially scanned: the unit re-queues with its resume point; only
      // the items it actually scanned were booked.
      unit.progress.truncated = false;
      carry_.push_back(unit);
    }
  }
  if (exhausted) {
    ++budget_exhausted_cycles_;
    obs::count(obs::Counter::audit_budget_exhausted);
  }
  if (!carry_.empty()) {
    deferred_units_total_ += carry_.size();
    obs::count(obs::Counter::audit_cycles_deferred,
               static_cast<std::uint64_t>(carry_.size()));
  }
  last_makespan_ = makespan;
  total_makespan_ += makespan;
  obs::observe(obs::Histogram::audit_cycle_latency_us,
               static_cast<std::uint64_t>(makespan));
  return result;
}

CheckResult AuditEngine::full_pass(const std::vector<db::TableId>& order) {
  const auto start = static_cast<std::uint64_t>(clock_());
  const CheckResult result = run_cycle(order, /*exhaustive=*/true);
  obs::count(obs::Counter::audit_passes);
  obs::observe(obs::Histogram::audit_pass_cost_us,
               static_cast<std::uint64_t>(result.cost));
  obs::trace_span("audit.full_pass", "audit", start,
                  static_cast<std::uint64_t>(result.cost));
  return result;
}

CheckResult AuditEngine::incremental_pass(const std::vector<db::TableId>& order) {
  const auto start = static_cast<std::uint64_t>(clock_());
  ++cycle_index_;
  obs::count(obs::Counter::audit_incremental_cycles);
  const bool sweep = config_.full_sweep_interval != 0 &&
                     cycle_index_ % config_.full_sweep_interval == 0;
  if (sweep) {
    ++full_sweeps_;
    obs::count(obs::Counter::audit_full_sweeps);
  }
  // A sweep cycle enqueues its fresh units exhaustively — same checks and
  // costs as the baseline pass — which both catches corruption the dirty
  // tracking never saw (raw-memory writes bypassing the store) and
  // advances every watermark, clearing the accumulated dirty state.
  const CheckResult result = run_cycle(order, sweep);
  obs::count(obs::Counter::audit_passes);
  obs::observe(obs::Histogram::audit_pass_cost_us,
               static_cast<std::uint64_t>(result.cost));
  obs::trace_span("audit.incremental_pass", "audit", start,
                  static_cast<std::uint64_t>(result.cost));
  return result;
}

}  // namespace wtc::audit
