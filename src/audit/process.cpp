#include "audit/process.hpp"

#include <algorithm>

#include "audit/messages.hpp"
#include "common/log.hpp"
#include "db/direct.hpp"
#include "db/run_op_log.hpp"
#include "obs/metrics.hpp"

namespace wtc::audit {

AuditProcess::AuditProcess(db::Database& db, sim::Cpu& cpu,
                           AuditProcessConfig config, ReportSink* sink,
                           ClientControl* control)
    : db_(db),
      cpu_(cpu),
      config_(config),
      engine_(db, config.engine, [this]() { return node().now(); }),
      scheduler_(db, config.weights),
      control_(control) {
  if (config_.escalation) {
    escalation_.emplace(db, config_.escalation_config);
    escalating_sink_.emplace(*escalation_, sink,
                             [this]() { return node().now(); });
    engine_.set_report_sink(&*escalating_sink_);
  } else {
    engine_.set_report_sink(sink);
  }
  engine_.set_client_control(control);

  if (config_.heartbeat) {
    add_element(std::make_unique<HeartbeatElement>());
  }
  if (config_.progress_indicator) {
    add_element(std::make_unique<ProgressIndicatorElement>());
  }
  if (config_.periodic_enabled) {
    add_element(std::make_unique<PeriodicAuditElement>());
  }
  if (config_.event_triggered) {
    add_element(std::make_unique<EventTriggeredAuditElement>());
  }
  if (config_.low_resource_trigger) {
    add_element(std::make_unique<LowResourceTriggerElement>());
  }
  if (config_.replay_audit && config_.replay_log != nullptr) {
    add_element(std::make_unique<ReplayAuditElement>());
  }
  if (config_.reliable_ipc) {
    reply_sender_.emplace(*this, msg::kChannelAuditReply,
                          []() { return sim::kNoProcess; }, config_.reliable);
  }
}

void AuditProcess::add_element(std::unique_ptr<AuditElement> element) {
  elements_.push_back(ElementSlot{std::move(element), {}, false});
}

void AuditProcess::on_start() {
  for (auto& slot : elements_) {
    if (slot.disabled) {
      continue;
    }
    try {
      slot.element->on_start(*this);
    } catch (...) {
      note_element_fault(slot);
    }
  }
}

void AuditProcess::on_message(const sim::Message& message) {
  // Reliable-layer housekeeping first: acks for our own reliable replies,
  // then unwrap (+ack, +dedup) incoming reliable frames.
  if (reply_sender_ && reply_sender_->on_message(message)) {
    return;
  }
  if (sim::ReliableReceiver::is_frame(message)) {
    if (const auto inner = receiver_.accept(message)) {
      dispatch(*inner);
    }
    return;
  }
  dispatch(message);
}

void AuditProcess::dispatch(const sim::Message& message) {
  // The main thread's job (§4): route each message to the elements that
  // registered for its type. A throwing element is an element fault, not
  // a process death — the rest of the audit keeps running.
  for (auto& slot : elements_) {
    if (slot.disabled || !slot.element->accepts(message.type)) {
      continue;
    }
    try {
      slot.element->on_message(*this, message);
    } catch (...) {
      note_element_fault(slot);
    }
  }
}

void AuditProcess::guarded(AuditElement& element, const std::function<void()>& fn) {
  for (auto& slot : elements_) {
    if (slot.element.get() != &element) {
      continue;
    }
    if (slot.disabled) {
      return;
    }
    try {
      fn();
    } catch (...) {
      note_element_fault(slot);
    }
    return;
  }
  fn();  // not a registered element: run unguarded
}

void AuditProcess::note_element_fault(ElementSlot& slot) {
  ++faults_;
  const sim::Time now = node().now();
  const sim::Time horizon =
      now > static_cast<sim::Time>(config_.quarantine_window)
          ? now - static_cast<sim::Time>(config_.quarantine_window)
          : 0;
  auto& times = slot.fault_times;
  times.erase(std::remove_if(times.begin(), times.end(),
                             [horizon](sim::Time t) { return t < horizon; }),
              times.end());
  times.push_back(now);
  common::log(common::LogLevel::Warn, "audit", "element '",
              slot.element->name(), "' faulted (", times.size(),
              " in window)");
  if (!config_.quarantine || times.size() < config_.quarantine_max_faults) {
    return;
  }
  // Graceful degradation: disable the element and report the quarantine
  // as a finding so the operator (and the oracle) see the coverage loss.
  slot.disabled = true;
  common::log(common::LogLevel::Warn, "audit", "element '",
              slot.element->name(), "' quarantined after ", times.size(),
              " faults within window");
  Finding finding;
  finding.technique = Technique::ElementQuarantine;
  finding.recovery = Recovery::DisableElement;
  finding.time = now;
  engine_.report_external(finding);

  if (config_.quarantine_reenable) {
    // Reversible degradation: after a clean quarantine window (trivially
    // clean — a disabled element cannot fault), put the element back in
    // service with a fresh fault history.
    AuditElement* element = slot.element.get();
    schedule_after(config_.quarantine_window,
                   [this, element]() { reenable_element(element); });
  }
}

void AuditProcess::reenable_element(AuditElement* element) {
  for (auto& slot : elements_) {
    if (slot.element.get() != element) {
      continue;
    }
    if (!slot.disabled) {
      return;
    }
    slot.disabled = false;
    slot.fault_times.clear();
    ++reenabled_;
    obs::count(obs::Counter::audit_element_reenabled);
    common::log(common::LogLevel::Info, "audit", "element '",
                slot.element->name(), "' re-enabled after cooldown");
    Finding finding;
    finding.technique = Technique::ElementQuarantine;
    finding.recovery = Recovery::ReenableElement;
    finding.time = node().now();
    engine_.report_external(finding);
    // Restart the element's self-scheduled work; a throw during restart
    // counts as a fresh element fault.
    try {
      slot.element->on_start(*this);
    } catch (...) {
      note_element_fault(slot);
    }
    return;
  }
}

bool AuditProcess::element_disabled(std::string_view name) const {
  for (const auto& slot : elements_) {
    if (slot.element->name() == name) {
      return slot.disabled;
    }
  }
  return false;
}

const AuditElement* AuditProcess::find_element(std::string_view name) const {
  for (const auto& slot : elements_) {
    if (slot.element->name() == name) {
      return slot.element.get();
    }
  }
  return nullptr;
}

std::uint32_t AuditProcess::quarantined_count() const noexcept {
  std::uint32_t count = 0;
  for (const auto& slot : elements_) {
    count += slot.disabled ? 1u : 0u;
  }
  return count;
}

void AuditProcess::send_reply(sim::ProcessId to, sim::Message message) {
  if (reply_sender_) {
    reply_sender_->send_to(to, std::move(message));
  } else {
    node().send(to, std::move(message));
  }
}

sim::Time AuditProcess::book_cpu(sim::Duration cost) {
  return cpu_.book(node().now(), cost);
}

// --- HeartbeatElement ---

bool HeartbeatElement::accepts(std::uint32_t type) const {
  return type == msg::kHeartbeat;
}

void HeartbeatElement::on_message(AuditProcess& process,
                                  const sim::Message& message) {
  sim::Message reply;
  reply.from = process.pid();
  reply.type = msg::kHeartbeatReply;
  reply.args = message.args;  // echoes {sequence, audit epoch}
  process.send_reply(message.from, std::move(reply));
}

// --- ProgressIndicatorElement ---

bool ProgressIndicatorElement::accepts(std::uint32_t type) const {
  return type == msg::kApiActivity;
}

void ProgressIndicatorElement::on_message(AuditProcess&, const sim::Message&) {
  ++counter_;  // any API activity indicates database progress
}

void ProgressIndicatorElement::on_start(AuditProcess& process) {
  last_seen_ = counter_;
  process.schedule_after(process.config().progress_timeout, [this, &process]() {
    process.guarded(*this, [this, &process]() { check(process); });
  });
}

void ProgressIndicatorElement::check(AuditProcess& process) {
  if (counter_ == last_seen_) {
    // No database activity for a whole timeout period: look for a client
    // wedging the database with a stale lock and terminate it (§4.2).
    const sim::Time now = process.node().now();
    for (const auto& [table, lock] : process.database().held_locks()) {
      if (now - lock.since <
          static_cast<sim::Time>(process.config().lock_hold_threshold)) {
        continue;
      }
      common::log(common::LogLevel::Info, "audit",
                  "progress indicator: terminating client ", lock.owner,
                  " holding table ", table);
      ++recoveries_;
      Finding finding;
      finding.technique = Technique::ProgressIndicator;
      finding.recovery = Recovery::KillClientProcess;
      finding.table = table;
      process.engine().report_external(finding);
      if (auto* control = process.client_control()) {
        control->kill_client_process(lock.owner);
      } else {
        process.node().kill(lock.owner);
      }
      process.database().release_locks_of(lock.owner);
    }
  }
  last_seen_ = counter_;
  process.schedule_after(process.config().progress_timeout, [this, &process]() {
    process.guarded(*this, [this, &process]() { check(process); });
  });
}

// --- PeriodicAuditElement ---

void PeriodicAuditElement::on_start(AuditProcess& process) {
  process.schedule_after(process.config().period, [this, &process]() {
    process.guarded(*this, [this, &process]() { tick(process); });
  });
}

void PeriodicAuditElement::tick(AuditProcess& process) {
  auto& db = process.database();
  auto& engine = process.engine();
  process.scheduler().begin_cycle(db);

  CheckResult result;
  const bool incremental = process.config().engine.incremental;
  if (process.config().one_table_per_tick) {
    const db::TableId t = process.config().prioritized
                              ? process.scheduler().next_prioritized()
                              : process.scheduler().next_round_robin();
    // One-table mode has no full-sweep cadence of its own: each tick visits
    // a single table, so the incremental variants alone decide coverage.
    if (incremental) {
      result += engine.check_structure_incremental(t);
      result += engine.check_ranges_incremental(t);
      if (process.config().engine.selective_monitoring) {
        result += engine.check_selective_incremental(t);
      }
    } else {
      result += engine.check_structure(t);
      result += engine.check_ranges(t);
      if (process.config().engine.selective_monitoring) {
        result += engine.check_selective(t);
      }
    }
  } else {
    std::vector<db::TableId> order;
    if (process.config().engine.cycle_budget > 0) {
      // A budgeted cycle may not reach every table before the allowance
      // runs out, so rank by audit pressure: tables with the most
      // unverified writes (dirty chunks) and the hottest recent error
      // history go first. The engine's carry queue guarantees whatever
      // the budget cuts off still runs in a later cycle.
      std::vector<std::uint64_t> dirty(db.table_count(), 0);
      for (std::size_t t = 0; t < dirty.size(); ++t) {
        dirty[t] = engine.table_dirty_chunks(static_cast<db::TableId>(t));
      }
      order = process.scheduler().ranked_by_pressure(dirty);
    } else if (process.config().prioritized) {
      // Audit every table this cycle, most important first — importance
      // ordering shortens detection latency for hot tables.
      auto share = process.scheduler().shares();
      order.resize(db.table_count());
      for (std::size_t t = 0; t < order.size(); ++t) {
        order[t] = static_cast<db::TableId>(t);
      }
      std::sort(order.begin(), order.end(), [&share](db::TableId a, db::TableId b) {
        return share[a] > share[b];
      });
    } else {
      for (std::size_t t = 0; t < db.table_count(); ++t) {
        order.push_back(static_cast<db::TableId>(t));
      }
    }
    result = incremental ? engine.incremental_pass(order)
                         : engine.full_pass(order);
  }

  process.book_cpu(result.cost);
  process.note_cycle(result);
  process.schedule_after(process.config().period, [this, &process]() {
    process.guarded(*this, [this, &process]() { tick(process); });
  });
}

// --- EventTriggeredAuditElement ---

bool EventTriggeredAuditElement::accepts(std::uint32_t type) const {
  return type == msg::kApiActivity;
}

void EventTriggeredAuditElement::on_message(AuditProcess& process,
                                            const sim::Message& message) {
  const auto activity = msg::view_activity(message);
  if (!activity.is_update) {
    return;
  }
  ++triggered_;
  const CheckResult result =
      process.engine().check_record(activity.table, activity.record);
  process.book_cpu(result.cost);
}

// --- LowResourceTriggerElement ---

void LowResourceTriggerElement::on_start(AuditProcess& process) {
  process.schedule_after(process.config().low_resource_period, [this, &process]() {
    process.guarded(*this, [this, &process]() { scan(process); });
  });
}

void LowResourceTriggerElement::scan(AuditProcess& process) {
  auto& db = process.database();
  bool critical = false;
  for (db::TableId t = 0; t < db.table_count(); ++t) {
    const auto& spec = db.schema().tables[t];
    if (!spec.dynamic) {
      continue;
    }
    std::uint32_t free_records = 0;
    for (db::RecordIndex r = 0; r < spec.num_records; ++r) {
      if (db::direct::read_header(db, t, r).status == db::kStatusFree) {
        ++free_records;
      }
    }
    const double ratio = static_cast<double>(free_records) /
                         static_cast<double>(spec.num_records);
    if (ratio < process.config().low_water_fraction) {
      critical = true;
    }
  }
  if (critical) {
    // Critically low availability: reclaim leaked records NOW instead of
    // waiting for the next periodic cycle.
    ++sweeps_triggered_;
    CheckResult result = process.engine().check_semantics();
    for (db::TableId t = 0; t < db.table_count(); ++t) {
      result += process.engine().check_structure(t);
    }
    process.book_cpu(result.cost);
  }
  process.schedule_after(process.config().low_resource_period, [this, &process]() {
    process.guarded(*this, [this, &process]() { scan(process); });
  });
}

// --- ReplayAuditElement ---

void ReplayAuditElement::on_start(AuditProcess& process) {
  process.schedule_after(process.config().replay_period, [this, &process]() {
    process.guarded(*this, [this, &process]() { tick(process); });
  });
}

void ReplayAuditElement::tick(AuditProcess& process) {
  const db::RunOpLog* log = process.config().replay_log;
  if (log != nullptr) {
    if (!auditor_) {
      auditor_.emplace(process.database(), process.config().replay);
    }
    // Budget policy: each tick earns one cycle's allowance; a replay
    // whose modelled cost (conservatively, every logged op — dedup
    // savings are unknown until the chains are hashed) exceeds what has
    // accumulated is deferred, so replay can never starve the structural
    // arms of a bounded cycle. A zero budget means "always run".
    const sim::Duration budget = process.config().engine.cycle_budget;
    const auto& cfg = process.config().replay;
    const sim::Duration estimate = static_cast<sim::Duration>(
        static_cast<double>(log->recorded()) *
        static_cast<double>(cfg.cost_per_op) * cfg.cost_scale);
    bool run = true;
    if (budget > 0) {
      allowance_ += budget;
      if (allowance_ < estimate) {
        run = false;
        obs::count(obs::Counter::audit_cycles_deferred);
      }
    }
    if (run) {
      const ReplayResult result = auditor_->run(log->events());
      last_stats_ = result.stats;
      ++runs_;
      if (budget > 0) {
        allowance_ -= std::min(allowance_, result.stats.dedup_cost);
      }
      for (const Finding& finding : result.findings) {
        process.engine().report_external(finding);
      }
      CheckResult booked;
      booked.findings = static_cast<std::uint32_t>(result.findings.size());
      booked.cost = result.stats.dedup_cost;
      process.book_cpu(booked.cost);
      process.note_cycle(booked);
    }
  }
  process.schedule_after(process.config().replay_period, [this, &process]() {
    process.guarded(*this, [this, &process]() { tick(process); });
  });
}

// --- IpcNotificationSink ---

void IpcNotificationSink::on_api_event(const db::ApiEvent& event) {
  const sim::ProcessId audit = audit_pid_();
  if (audit != sim::kNoProcess) {
    node_.send(audit, msg::make_activity(event));
  }
}

// --- ReliableIpcSink ---

/// The sender side of the reliable queue: a process so retry timers have
/// an owner and acks have an addressee.
class ReliableIpcSink::Courier final : public sim::Process {
 public:
  Courier(std::function<sim::ProcessId()> audit_pid, sim::ReliableConfig config)
      : audit_pid_(std::move(audit_pid)),
        sender_(*this, msg::kChannelApiEvents,
                [this]() { return audit_pid_(); }, config) {}

  void on_message(const sim::Message& message) override {
    sender_.on_message(message);
  }

  void forward(sim::Message message) { sender_.send(std::move(message)); }

  [[nodiscard]] const sim::ReliableSender& sender() const noexcept {
    return sender_;
  }

 private:
  std::function<sim::ProcessId()> audit_pid_;
  sim::ReliableSender sender_;
};

ReliableIpcSink::ReliableIpcSink(sim::Node& node,
                                 std::function<sim::ProcessId()> audit_pid,
                                 sim::ReliableConfig config)
    : courier_(std::make_shared<Courier>(std::move(audit_pid), config)) {
  node.spawn("ipc-courier", courier_);
}

void ReliableIpcSink::on_api_event(const db::ApiEvent& event) {
  courier_->forward(msg::make_activity(event));
}

const sim::ReliableSender& ReliableIpcSink::sender() const {
  return courier_->sender();
}

}  // namespace wtc::audit
