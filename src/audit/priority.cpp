#include "audit/priority.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace wtc::audit {

PriorityScheduler::PriorityScheduler(const db::Database& db, PriorityWeights weights)
    : db_(db),
      weights_(weights),
      credit_(db.table_count(), 0.0),
      prev_cycle_errors_(db.table_count(), 0) {}

std::vector<double> PriorityScheduler::shares() const {
  const std::size_t n = db_.table_count();
  std::vector<double> share(n, 0.0);

  std::uint64_t total_access = 0;
  std::uint64_t total_errors = 0;
  for (std::size_t t = 0; t < n; ++t) {
    total_access += db_.table_stats(static_cast<db::TableId>(t)).accesses();
    total_errors += prev_cycle_errors_[t];
  }

  double nature_total = 0.0;
  std::vector<double> nature(n, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    // The nature of the object: static/configuration tables are referenced
    // on most operations (catalog-like), so they weigh heavier.
    nature[t] = db_.schema().tables[t].dynamic ? 1.0 : 2.0;
    nature_total += nature[t];
  }

  for (std::size_t t = 0; t < n; ++t) {
    const auto& stats = db_.table_stats(static_cast<db::TableId>(t));
    const double access_share =
        total_access == 0 ? 1.0 / static_cast<double>(n)
                          : static_cast<double>(stats.accesses()) /
                                static_cast<double>(total_access);
    const double error_share =
        total_errors == 0 ? 1.0 / static_cast<double>(n)
                          : static_cast<double>(prev_cycle_errors_[t]) /
                                static_cast<double>(total_errors);
    const double nature_share = nature[t] / nature_total;
    share[t] = weights_.access_frequency * access_share +
               weights_.error_history * error_share +
               weights_.nature * nature_share;
  }

  // Allocation exponent, then normalize.
  for (double& s : share) {
    s = std::pow(s, weights_.exponent);
  }
  const double sum = std::accumulate(share.begin(), share.end(), 0.0);
  if (sum > 0) {
    for (double& s : share) {
      s /= sum;
    }
  }
  return share;
}

db::TableId PriorityScheduler::next_prioritized() {
  const auto share = shares();
  for (std::size_t t = 0; t < credit_.size(); ++t) {
    credit_[t] += share[t];
  }
  const auto it = std::max_element(credit_.begin(), credit_.end());
  const auto chosen = static_cast<std::size_t>(it - credit_.begin());
  credit_[chosen] -= 1.0;
  return static_cast<db::TableId>(chosen);
}

std::vector<db::TableId> PriorityScheduler::ranked_by_pressure(
    const std::vector<std::uint64_t>& dirty_chunks) const {
  const std::size_t n = db_.table_count();
  const auto share = shares();
  std::vector<db::TableId> order(n);
  for (std::size_t t = 0; t < n; ++t) {
    order[t] = static_cast<db::TableId>(t);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](db::TableId a, db::TableId b) {
                     const std::uint64_t da =
                         a < dirty_chunks.size() ? dirty_chunks[a] : 0;
                     const std::uint64_t db_chunks =
                         b < dirty_chunks.size() ? dirty_chunks[b] : 0;
                     if (da != db_chunks) {
                       return da > db_chunks;
                     }
                     if (prev_cycle_errors_[a] != prev_cycle_errors_[b]) {
                       return prev_cycle_errors_[a] > prev_cycle_errors_[b];
                     }
                     if (share[a] != share[b]) {
                       return share[a] > share[b];
                     }
                     return a < b;
                   });
  return order;
}

db::TableId PriorityScheduler::next_round_robin() {
  const auto chosen = static_cast<db::TableId>(rr_next_);
  rr_next_ = (rr_next_ + 1) % db_.table_count();
  return chosen;
}

void PriorityScheduler::begin_cycle(db::Database& db) {
  for (std::size_t t = 0; t < prev_cycle_errors_.size(); ++t) {
    auto& stats = db.table_stats(static_cast<db::TableId>(t));
    prev_cycle_errors_[t] = stats.errors_last_cycle;
    stats.errors_last_cycle = 0;
  }
}

}  // namespace wtc::audit
