#include "audit/cf_attest.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace wtc::audit {

CfAttestElement::CfAttestElement(
    pecos::CfLog& log, const pecos::Plan& plan, CfAttestConfig config,
    std::function<sim::ProcessId()> client_pid,
    std::function<void(const CfViolation&)> on_violation)
    : log_(log),
      plan_(plan),
      config_(config),
      client_pid_(std::move(client_pid)),
      on_violation_(std::move(on_violation)) {
  for (const auto& [pc, info] : plan_.cfg().cfis()) {
    if (info.kind != vm::CfiKind::Branch) {
      unconditional_sites_.push_back(pc);
    }
  }
  std::sort(unconditional_sites_.begin(), unconditional_sites_.end());
  return_points_sorted_ = plan_.return_points();
  std::sort(return_points_sorted_.begin(), return_points_sorted_.end());
}

void CfAttestElement::on_start(AuditProcess& process) {
  process_ = &process;
  // Overflow policy: a full ring forces an early slice of that thread —
  // the attestation runs NOW (still under the quarantine guard), so no
  // transition is ever dropped and bursty threads are checked sooner.
  log_.set_overflow_handler([this](std::uint32_t thread) {
    if (process_ != nullptr) {
      process_->guarded(*this, [this, thread]() {
        ++slices_;
        obs::count(obs::Counter::audit_cf_slices);
        slice_thread(thread, process_->node().now());
      });
    }
  });
  process.schedule_after(config_.slice_period, [this, &process]() {
    process.guarded(*this, [this, &process]() { tick(process); });
  });
}

void CfAttestElement::reset_thread(std::uint32_t thread) {
  if (thread < shadows_.size()) {
    shadows_[thread].valid = false;
  }
}

CfAttestElement::Shadow& CfAttestElement::shadow_for(std::uint32_t thread) {
  if (shadows_.size() <= thread) {
    shadows_.resize(thread + 1);
  }
  return shadows_[thread];
}

void CfAttestElement::tick(AuditProcess& process) {
  const sim::Time now = process.node().now();
  ++slices_;
  obs::count(obs::Counter::audit_cf_slices);
  for (std::uint32_t t = 0; t < log_.thread_count(); ++t) {
    slice_thread(t, now);
  }
  process.schedule_after(config_.slice_period, [this, &process]() {
    process.guarded(*this, [this, &process]() { tick(process); });
  });
}

bool CfAttestElement::transition_valid(const pecos::CfTransition& entry,
                                       const Shadow& shadow) const {
  const vm::Cfg& cfg = plan_.cfg();
  const vm::CfiInfo* cfi = cfg.cfi_at(entry.from_pc);
  if (cfi == nullptr) {
    // The pristine program has no CFI here: an instruction corrupted
    // *into* a CFI transferred control.
    return false;
  }
  switch (cfi->kind) {
    case vm::CfiKind::Jump:
    case vm::CfiKind::Branch:
    case vm::CfiKind::Call:
      if (std::find(cfi->static_targets.begin(), cfi->static_targets.end(),
                    entry.to_pc) == cfi->static_targets.end()) {
        return false;
      }
      break;
    case vm::CfiKind::IndirectCall:
      // The register value is gone by attestation time; the log-level
      // invariant is that an indirect call lands on a block leader. (The
      // preemptive monitor still does the exact register recompute.)
      if (!cfg.is_leader(entry.to_pc)) {
        return false;
      }
      break;
    case vm::CfiKind::Ret:
      if (!std::binary_search(return_points_sorted_.begin(),
                              return_points_sorted_.end(), entry.to_pc)) {
        return false;
      }
      break;
  }
  if (shadow.valid) {
    // Continuity: from the previous landing, legit execution moves only
    // forward and cannot cross an always-taken CFI site without logging
    // it. A violation here is a stray entry into a block middle.
    if (entry.from_pc < shadow.landing) {
      return false;
    }
    const auto first_uncond =
        std::lower_bound(unconditional_sites_.begin(),
                         unconditional_sites_.end(), shadow.landing);
    if (first_uncond != unconditional_sites_.end() &&
        *first_uncond < entry.from_pc) {
      return false;
    }
  }
  return true;
}

void CfAttestElement::flag(const pecos::CfTransition& entry, sim::Time now) {
  ++violations_;
  obs::count(obs::Counter::audit_cf_violations);
  if (!first_violation_) {
    first_violation_ = now;
  }
  const std::uint64_t latency =
      now >= entry.time ? static_cast<std::uint64_t>(now - entry.time) : 0;
  max_latency_us_ = std::max(max_latency_us_, latency);
  obs::observe(obs::Histogram::cf_detection_latency_us, latency);
  common::log(common::LogLevel::Warn, "audit", "cf-attest: thread ",
              entry.thread, " illegal transfer ", entry.from_pc, " -> ",
              entry.to_pc, " (latency ", latency, " us)");

  Finding finding;
  finding.technique = Technique::CfAttestation;
  finding.recovery = on_violation_ ? Recovery::HealThread : Recovery::None;
  finding.time = now;
  if (process_ != nullptr) {
    process_->engine().report_external(finding);
  }

  if (on_violation_) {
    CfViolation violation;
    violation.client = client_pid_ ? client_pid_() : sim::kNoProcess;
    violation.thread = entry.thread;
    violation.from_pc = entry.from_pc;
    violation.to_pc = entry.to_pc;
    violation.time = entry.time;
    violation.source = CfSource::Attestation;
    on_violation_(violation);
  }
}

void CfAttestElement::slice_thread(std::uint32_t thread, sim::Time now) {
  scratch_.clear();
  if (log_.drain(thread, scratch_) == 0) {
    return;
  }
  Shadow& shadow = shadow_for(thread);
  bool clean = true;
  for (const auto& entry : scratch_) {
    if (entry.thread_start) {
      shadow.landing = entry.to_pc;
      shadow.valid = true;
      continue;
    }
    ++attested_;
    obs::count(obs::Counter::audit_cf_transitions_attested);
    if (!transition_valid(entry, shadow)) {
      clean = false;
      flag(entry, now);
    }
    // Resync on the observed landing either way: one violation must not
    // cascade into flagging every subsequent (locally consistent) hop.
    shadow.landing = entry.to_pc;
    shadow.valid = true;
  }
  if (process_ != nullptr) {
    process_->book_cpu(static_cast<sim::Duration>(scratch_.size()) *
                       config_.cost_per_transition);
  }
  if (clean && op_log_ != nullptr) {
    // Everything this thread did up to `now` is attested clean: the op
    // log can compact its history up to here (healing never needs to roll
    // back past an attested slice).
    op_log_->advance_watermark(thread, now);
  }
}

}  // namespace wtc::audit
