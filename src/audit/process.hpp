// The audit process (Figure 1): a dedicated process hosting the audit
// framework — a main thread that translates IPC into element invocations,
// and pluggable elements implementing triggering, detection, and recovery.
//
// Extensibility contract (§4): a new element declares which message types
// it accepts and is handed matching messages by the main thread; elements
// are independent of one another, so the audit subsystem is customized by
// composing elements.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "audit/engine.hpp"
#include "audit/escalation.hpp"
#include "audit/priority.hpp"
#include "audit/replay.hpp"
#include "audit/report.hpp"
#include "db/api.hpp"
#include "sim/cpu.hpp"
#include "sim/node.hpp"
#include "sim/reliable.hpp"

namespace wtc::db {
class RunOpLog;
}

namespace wtc::audit {

class AuditProcess;

/// One pluggable element of the audit framework.
class AuditElement {
 public:
  virtual ~AuditElement() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Invoked when the audit process (re)starts.
  virtual void on_start(AuditProcess& process) { (void)process; }
  /// Message types this element accepts (the registration the paper
  /// describes: an element communicates its accepted message set).
  [[nodiscard]] virtual bool accepts(std::uint32_t type) const {
    (void)type;
    return false;
  }
  virtual void on_message(AuditProcess& process, const sim::Message& message) {
    (void)process;
    (void)message;
  }
};

struct AuditProcessConfig {
  EngineConfig engine;
  PriorityWeights weights;

  /// Periodic audit (§4.3): interval of the full pass (Table 2: 10 s).
  sim::Duration period = 10 * static_cast<sim::Duration>(sim::kSecond);
  bool periodic_enabled = true;
  /// Prioritized triggering (§4.4.1) and one-table-per-tick pacing
  /// (Table 5: "1 table every 5 seconds").
  bool prioritized = false;
  bool one_table_per_tick = false;

  /// Event-triggered audit (§4.3): check the written record on DB updates.
  bool event_triggered = false;

  /// Low-resource trigger (§4.3's other example event: "when the system
  /// enters a critically low available resource state"): when a dynamic
  /// table's free-record ratio falls below the low-water mark, run the
  /// semantic audit immediately to reclaim leaked ("zombie") records.
  bool low_resource_trigger = false;
  double low_water_fraction = 0.15;
  sim::Duration low_resource_period = 5 * static_cast<sim::Duration>(sim::kSecond);

  /// Progress indicator (§4.2).
  bool progress_indicator = true;
  sim::Duration progress_timeout = 100 * static_cast<sim::Duration>(sim::kSecond);
  sim::Duration lock_hold_threshold =
      100 * static_cast<sim::Duration>(sim::kMillisecond);

  bool heartbeat = true;

  /// Replay audit arm (ROADMAP item 1): periodically re-executes the
  /// whole-run op log (deduplicated) against a shadow region and reports
  /// any live-region divergence — the semantic-corruption net the
  /// structural arms cannot cast. Requires `replay_log` (a RunOpLog tee
  /// installed on the client's notification chain); recording must have
  /// started at the pristine image.
  bool replay_audit = false;
  const db::RunOpLog* replay_log = nullptr;
  sim::Duration replay_period = 20 * static_cast<sim::Duration>(sim::kSecond);
  ReplayConfig replay;

  /// Hierarchical recovery escalation (the 5ESS-style strategy the
  /// paper's §2 builds on): repeated findings on a table escalate the
  /// localized repairs to a table reload, then to a full reload.
  bool escalation = false;
  EscalationConfig escalation_config;

  /// Reliable IPC: heartbeat replies are sent through the reliable
  /// delivery layer (ack + retry) instead of fire-and-forget, so a lossy
  /// queue does not masquerade as a dead audit process.
  bool reliable_ipc = false;
  sim::ReliableConfig reliable;

  /// Element quarantine (graceful degradation): an element that throws
  /// `quarantine_max_faults` times within `quarantine_window` is disabled
  /// and reported as a finding; the remaining elements keep running
  /// instead of the whole audit process dying with it.
  bool quarantine = true;
  std::uint32_t quarantine_max_faults = 3;
  sim::Duration quarantine_window = 10 * static_cast<sim::Duration>(sim::kSecond);
  /// Reversible degradation: a quarantined element is re-enabled (fault
  /// history cleared, on_start re-run) after a clean quarantine_window.
  bool quarantine_reenable = true;
};

class AuditProcess final : public sim::Process {
 public:
  AuditProcess(db::Database& db, sim::Cpu& cpu, AuditProcessConfig config,
               ReportSink* sink, ClientControl* control);

  void on_start() override;
  void on_message(const sim::Message& message) override;

  /// Framework API: registers an element (before or after start).
  void add_element(std::unique_ptr<AuditElement> element);

  /// Runs `fn` on behalf of `element` under the quarantine guard: skipped
  /// if the element is disabled, and a throw counts as an element fault.
  /// Elements route their self-scheduled timer work through this so a
  /// crashing element cannot take the audit process down from a timer.
  void guarded(AuditElement& element, const std::function<void()>& fn);

  /// Sends a reply through the reliable layer when `reliable_ipc` is on,
  /// plain fire-and-forget otherwise.
  void send_reply(sim::ProcessId to, sim::Message message);

  [[nodiscard]] bool element_disabled(std::string_view name) const;
  /// The registered element with this name (nullptr if absent) — result
  /// harvesting; callers downcast to the concrete element type.
  [[nodiscard]] const AuditElement* find_element(std::string_view name) const;
  /// Elements currently quarantined / element faults caught so far.
  [[nodiscard]] std::uint32_t quarantined_count() const noexcept;
  [[nodiscard]] std::uint64_t element_faults() const noexcept { return faults_; }
  /// Cooldown re-enables performed so far.
  [[nodiscard]] std::uint32_t reenabled_count() const noexcept { return reenabled_; }

  [[nodiscard]] AuditEngine& engine() noexcept { return engine_; }
  [[nodiscard]] db::Database& database() noexcept { return db_; }
  [[nodiscard]] sim::Cpu& cpu() noexcept { return cpu_; }
  [[nodiscard]] const AuditProcessConfig& config() const noexcept { return config_; }
  [[nodiscard]] PriorityScheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] ClientControl* client_control() noexcept { return control_; }
  [[nodiscard]] const EscalationPolicy* escalation() const noexcept {
    return escalation_ ? &*escalation_ : nullptr;
  }

  /// Books `cost` of audit CPU work; returns completion time.
  sim::Time book_cpu(sim::Duration cost);

  // --- aggregated statistics ---
  void note_cycle(const CheckResult& result) noexcept {
    ++cycles_;
    total_cost_ += result.cost;
  }
  [[nodiscard]] std::uint64_t cycles() const noexcept { return cycles_; }
  [[nodiscard]] sim::Duration total_cost() const noexcept { return total_cost_; }

 private:
  /// One registered element plus its quarantine bookkeeping.
  struct ElementSlot {
    std::unique_ptr<AuditElement> element;
    std::vector<sim::Time> fault_times;  // within the quarantine window
    bool disabled = false;
  };

  void dispatch(const sim::Message& message);
  void note_element_fault(ElementSlot& slot);
  void reenable_element(AuditElement* element);

  db::Database& db_;
  sim::Cpu& cpu_;
  AuditProcessConfig config_;
  std::optional<EscalationPolicy> escalation_;
  std::optional<EscalatingSink> escalating_sink_;
  AuditEngine engine_;
  PriorityScheduler scheduler_;
  ClientControl* control_;
  std::vector<ElementSlot> elements_;
  sim::ReliableReceiver receiver_{*this};
  std::optional<sim::ReliableSender> reply_sender_;
  std::uint64_t cycles_ = 0;
  sim::Duration total_cost_ = 0;
  std::uint64_t faults_ = 0;
  std::uint32_t reenabled_ = 0;
};

// --- standard elements ---

/// Replies to the manager's heartbeat queries (§4.1).
class HeartbeatElement final : public AuditElement {
 public:
  [[nodiscard]] std::string_view name() const override { return "heartbeat"; }
  [[nodiscard]] bool accepts(std::uint32_t type) const override;
  void on_message(AuditProcess& process, const sim::Message& message) override;
};

/// Database deadlock detection via API activity messages (§4.2).
class ProgressIndicatorElement final : public AuditElement {
 public:
  [[nodiscard]] std::string_view name() const override { return "progress-indicator"; }
  void on_start(AuditProcess& process) override;
  [[nodiscard]] bool accepts(std::uint32_t type) const override;
  void on_message(AuditProcess& process, const sim::Message& message) override;

  [[nodiscard]] std::uint64_t activity_count() const noexcept { return counter_; }
  [[nodiscard]] std::uint32_t recoveries() const noexcept { return recoveries_; }

 private:
  void check(AuditProcess& process);
  std::uint64_t counter_ = 0;
  std::uint64_t last_seen_ = 0;
  std::uint32_t recoveries_ = 0;
};

/// Periodic audit trigger (§4.3 / §4.4.1): runs a full pass every period,
/// or one (prioritized / round-robin) table per tick.
class PeriodicAuditElement final : public AuditElement {
 public:
  [[nodiscard]] std::string_view name() const override { return "periodic-audit"; }
  void on_start(AuditProcess& process) override;

 private:
  void tick(AuditProcess& process);
};

/// Event-triggered audit (§4.3): targeted check of each updated record.
class EventTriggeredAuditElement final : public AuditElement {
 public:
  [[nodiscard]] std::string_view name() const override { return "event-audit"; }
  [[nodiscard]] bool accepts(std::uint32_t type) const override;
  void on_message(AuditProcess& process, const sim::Message& message) override;

  [[nodiscard]] std::uint64_t triggered() const noexcept { return triggered_; }

 private:
  std::uint64_t triggered_ = 0;
};

/// Low-resource event trigger (§4.3): monitors free-record availability in
/// the dynamic tables and fires an immediate semantic/structural sweep
/// when a table runs critically low — reclaiming leaked records before
/// allocation failures turn into lost calls.
class LowResourceTriggerElement final : public AuditElement {
 public:
  [[nodiscard]] std::string_view name() const override { return "low-resource"; }
  void on_start(AuditProcess& process) override;

  [[nodiscard]] std::uint64_t sweeps_triggered() const noexcept {
    return sweeps_triggered_;
  }

 private:
  void scan(AuditProcess& process);
  std::uint64_t sweeps_triggered_ = 0;
};

/// Replay audit trigger: every `replay_period`, re-executes the recorded
/// op log against a shadow region (deduplicated chains on the worker
/// pool) and reports every shadow/live divergence as a ReplayCheck
/// finding. Cost is booked into the shared CPU under the engine's
/// cycle-budget policy: with a budget set, a tick whose modelled cost
/// exceeds the accumulated per-tick allowance defers to a later tick
/// (counted as audit.cycles_deferred) instead of starving the
/// structural arms.
class ReplayAuditElement final : public AuditElement {
 public:
  [[nodiscard]] std::string_view name() const override { return "replay-audit"; }
  void on_start(AuditProcess& process) override;

  [[nodiscard]] std::uint64_t runs() const noexcept { return runs_; }
  [[nodiscard]] const ReplayStats& last_stats() const noexcept {
    return last_stats_;
  }

 private:
  void tick(AuditProcess& process);

  std::optional<ReplayAuditor> auditor_;  ///< built on first tick
  ReplayStats last_stats_;
  std::uint64_t runs_ = 0;
  /// Accumulated cycle-budget allowance (µs) not yet spent on replay.
  sim::Duration allowance_ = 0;
};

/// Adapter: forwards instrumented-API notifications into the audit
/// process's IPC queue (the Figure-1 message queue). Resilient to audit
/// process restarts via the pid provider.
class IpcNotificationSink final : public db::NotificationSink {
 public:
  IpcNotificationSink(sim::Node& node, std::function<sim::ProcessId()> audit_pid)
      : node_(node), audit_pid_(std::move(audit_pid)) {}

  void on_api_event(const db::ApiEvent& event) override;

 private:
  sim::Node& node_;
  std::function<sim::ProcessId()> audit_pid_;
};

/// Reliable variant of IpcNotificationSink: API events are framed through
/// the reliable delivery layer, so a lossy queue loses no audit triggers
/// and a duplicating queue never double-fires the event audit. A small
/// courier process (the sender side of the message-queue library) owns
/// the retry state and consumes acks.
class ReliableIpcSink final : public db::NotificationSink {
 public:
  ReliableIpcSink(sim::Node& node, std::function<sim::ProcessId()> audit_pid,
                  sim::ReliableConfig config = {});

  void on_api_event(const db::ApiEvent& event) override;

  /// Sender-side delivery stats (retries, abandoned frames) for tests.
  [[nodiscard]] const sim::ReliableSender& sender() const;

 private:
  class Courier;
  std::shared_ptr<Courier> courier_;
};

}  // namespace wtc::audit
