// Replay audit arm: deduplicated re-execution of the whole-run op log
// (ROADMAP item 1, after Tan et al.'s "The Efficient Server Audit
// Problem" — re-execution is the strongest oracle, deduplication is what
// makes it affordable).
//
// The structural arms (static checksum / structure / ranges / semantics)
// validate *well-formedness*; they are blind to values that are in-range
// and link-consistent yet wrong given the operation history — a stale
// field written through the store, a lost update, a phantom write. The
// replay auditor closes that gap: it re-executes the recorded op stream
// against a shadow region rebuilt from the pristine image and compares
// the shadow against the live region word-for-word. Any divergence is,
// by construction, a byte the operation history cannot explain.
//
// Deduplication: ops are grouped into per-(table, record) chains,
// segmented at lifecycle boundaries — every DBalloc starts a fresh chain,
// because Alloc fully determines the record's rebirth state, which both
// makes alloc-first chains record-agnostic and keeps a reused record
// slot from welding hundreds of independent call cycles into one
// undedupable mega-chain. Chains with the same signature — same table,
// same start state, same op sequence (op kinds, groups, fields,
// payloads) — must produce the same end state, so each unique chain is
// executed once and its end state reused for every duplicate. Telephone
// workloads are highly repetitive (every handoff is alloc → write →
// move → move → free with a small value alphabet), so the unique-chain
// count is a fraction of the chain count; A16 gates the resulting CPU
// saving.
//
// Determinism: unique chains execute on the worker pool into
// preallocated per-chain slots and the compare fans out over fixed-size
// region slices merged in slice order — findings, counters, and modelled
// costs are bit-identical at any `replay_threads` (same select →
// parallel → ordered-merge discipline as the chunk-parallel engine).
//
// Validity precondition: recording must begin at the pristine image
// (boot state), and every region mutation in between must have flowed
// through the instrumented API on a single recorded client. Audit
// *repairs* write the region outside the API, so a replay cycle is only
// meaningful against a run whose repairs are themselves under test —
// which is exactly the point: a repair that rewrote history shows up as
// a divergence attributed to the repaired span.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "audit/report.hpp"
#include "common/worker_pool.hpp"
#include "db/api.hpp"
#include "db/database.hpp"

namespace wtc::audit {

struct ReplayConfig {
  /// Worker count for chain execution and the shadow compare (1 = fully
  /// sequential). Results are bit-identical at any value.
  std::size_t replay_threads = 1;
  /// Region bytes per compare task. Fixed — independent of
  /// `replay_threads` — so task boundaries and the modelled makespan
  /// depend only on the region, never on the worker count.
  std::size_t compare_grain_bytes = 4096;

  // --- modelled CPU cost (microseconds; same convention as
  // EngineConfig: per-item costs scaled by cost_scale) ---
  std::uint32_t cost_per_op = 8;             ///< one re-executed op
  std::uint32_t cost_per_compare_chunk = 4;  ///< one compare_grain slice
  double cost_scale = 10.0;
};

/// Outcome statistics of one replay cycle. All values are deterministic
/// functions of (pristine image, op log, live region, config).
struct ReplayStats {
  std::uint64_t total_ops = 0;      ///< update ops selected from the log
  std::uint64_t chains = 0;         ///< per-(table, record) chains formed
  std::uint64_t unique_chains = 0;  ///< distinct chain signatures
  std::uint64_t executed_ops = 0;   ///< ops actually re-executed (unique)
  std::uint64_t mismatched_words = 0;  ///< 32-bit words shadow != live

  /// Modelled CPU cost of naive full re-execution (every op + compare).
  sim::Duration naive_cost = 0;
  /// Modelled CPU cost actually booked (unique ops + compare).
  sim::Duration dedup_cost = 0;
  /// Modelled critical-path latency across `replay_threads` workers.
  sim::Duration makespan = 0;

  [[nodiscard]] std::uint64_t deduped() const noexcept {
    return chains - unique_chains;
  }
  /// Fraction of chains that were duplicates of an earlier one.
  [[nodiscard]] double duplicate_ratio() const noexcept {
    return chains == 0 ? 0.0
                       : static_cast<double>(deduped()) /
                             static_cast<double>(chains);
  }
};

struct ReplayResult {
  /// One finding per maximal contiguous mismatching span, in region
  /// order, attributed to (table, record, field) where the span allows.
  std::vector<Finding> findings;
  ReplayStats stats;
};

/// One-shot (or reused) replay checker over a database's op history.
class ReplayAuditor {
 public:
  ReplayAuditor(const db::Database& db, ReplayConfig config);

  /// Re-executes `events` (a whole-run op log, arrival order) and
  /// compares the resulting shadow region against the live region.
  [[nodiscard]] ReplayResult run(std::span<const db::ApiEvent> events);

 private:
  /// Replayed end state of one record (header id/next excluded: replay
  /// never changes the id tag, and links are recomputed per table).
  struct RecordState {
    std::uint32_t status = 0;
    std::uint32_t group = 0;
    std::vector<std::int32_t> fields;
  };
  /// One per-(table, record) op chain, ops as indices into the event
  /// span (kept in arrival order).
  struct Chain {
    db::TableId table = db::kNoTable;
    db::RecordIndex record = 0;
    std::vector<std::uint32_t> ops;
    std::uint64_t signature = 0;
    std::size_t unique_index = 0;  ///< into the executed unique set
  };

  [[nodiscard]] std::uint64_t chain_signature(
      const Chain& chain, std::span<const db::ApiEvent> events) const;
  [[nodiscard]] RecordState execute_chain(
      const Chain& chain, std::span<const db::ApiEvent> events) const;
  void dispatch(std::size_t workers,
                const std::function<void(std::size_t)>& job);

  const db::Database& db_;
  ReplayConfig config_;
  /// Created lazily when replay_threads > 1; reused across run() calls.
  std::unique_ptr<common::WorkerPool> pool_;
};

}  // namespace wtc::audit
