// Hierarchical recovery escalation.
//
// The paper's §2 traces its recovery design to the 5ESS maintenance
// software: "The hierarchical error recovery strategy aims to restore
// system operation by making localized repairs whenever possible and
// escalate to more global actions only if necessary." The audit engine's
// recoveries are the localized repairs; this policy watches the finding
// stream and escalates when localized repair is evidently not holding:
//
//   level 0  localized repairs (the engine's own recovery actions)
//   level 1  table reload from disk — a table keeps producing findings
//            within the window despite repairs
//   level 2  full database reload — multiple tables are degenerating
//
// Escalations are themselves reported as findings so the operator (and
// the experiment oracle) can see them.
#pragma once

#include <cstdint>
#include <vector>

#include "audit/report.hpp"
#include "db/database.hpp"
#include "sim/time.hpp"

namespace wtc::audit {

struct EscalationConfig {
  /// Sliding window over which findings are counted.
  sim::Duration window = 30 * static_cast<sim::Duration>(sim::kSecond);
  /// Findings on ONE table within the window that trigger a table reload.
  std::uint32_t table_reload_threshold = 8;
  /// Tables escalated to reload within one window that trigger a full
  /// database reload.
  std::uint32_t full_reload_threshold = 3;
  /// Cooldown after an escalation before the same level can fire again.
  sim::Duration cooldown = 60 * static_cast<sim::Duration>(sim::kSecond);
};

/// Watches findings and performs the §2-style escalation. Attach it as a
/// tee on the audit engine's report stream.
class EscalationPolicy {
 public:
  EscalationPolicy(db::Database& db, EscalationConfig config);

  /// Feeds one finding; may perform a table or full reload as a side
  /// effect. Returns the recovery taken (None if no escalation fired).
  Recovery on_finding(const Finding& finding, sim::Time now,
                      ReportSink* report_to);

  [[nodiscard]] std::uint32_t table_reloads() const noexcept {
    return table_reloads_;
  }
  [[nodiscard]] std::uint32_t full_reloads() const noexcept {
    return full_reloads_;
  }

 private:
  struct TableState {
    std::vector<sim::Time> recent;  // finding timestamps within the window
    sim::Time last_escalation = 0;
    bool escalated_this_window = false;
  };

  void prune(TableState& state, sim::Time now) const;

  db::Database& db_;
  EscalationConfig config_;
  std::vector<TableState> tables_;
  std::vector<sim::Time> recent_table_escalations_;
  sim::Time last_full_reload_ = 0;
  std::uint32_t table_reloads_ = 0;
  std::uint32_t full_reloads_ = 0;
};

/// ReportSink tee: forwards findings to the primary sink and feeds the
/// escalation policy (which may emit additional escalation findings).
class EscalatingSink final : public ReportSink {
 public:
  EscalatingSink(EscalationPolicy& policy, ReportSink* primary,
                 std::function<sim::Time()> clock)
      : policy_(policy), primary_(primary), clock_(std::move(clock)) {}

  void on_finding(const Finding& finding) override {
    if (primary_ != nullptr) {
      primary_->on_finding(finding);
    }
    policy_.on_finding(finding, clock_(), primary_);
  }

 private:
  EscalationPolicy& policy_;
  ReportSink* primary_;
  std::function<sim::Time()> clock_;
};

}  // namespace wtc::audit
