// Prioritized audit triggering (§4.4.1).
//
// Ranks database tables by a weighted measure of importance — access
// frequency, the nature of the object, and recent error history — and
// schedules audits so that more important tables are checked more often.
// Selection uses deficit scheduling: each table accrues credit in
// proportion to its importance share and the highest-credit table is
// audited next, so audit *frequency* tracks importance while every table
// is still visited (no starvation).
#pragma once

#include <cstdint>
#include <vector>

#include "db/database.hpp"

namespace wtc::audit {

struct PriorityWeights {
  double access_frequency = 0.6;  ///< heavily used tables corrupt & propagate more
  double error_history = 0.3;     ///< temporal locality of data errors
  double nature = 0.1;            ///< intrinsic importance of the object
  /// Allocation exponent: audit frequency ∝ importance^exponent. 1.0 is
  /// naive proportional allocation; values above 1 concentrate harder on
  /// the hot tables (whose errors are consumed fastest and therefore
  /// escape unless audited quickly).
  double exponent = 1.0;
};

class PriorityScheduler {
 public:
  explicit PriorityScheduler(const db::Database& db,
                             PriorityWeights weights = {});

  /// Importance share of each table in [0,1], summing to 1 — derived from
  /// the database's runtime statistics at this instant.
  [[nodiscard]] std::vector<double> shares() const;

  /// Picks the next table to audit (prioritized mode) and charges its
  /// deficit. Never starves a table: credit accrues every call.
  [[nodiscard]] db::TableId next_prioritized();

  /// Picks the next table in fixed rotation (unprioritized baseline).
  [[nodiscard]] db::TableId next_round_robin();

  /// Table order for a CPU-budgeted cycle: every table, ranked by audit
  /// pressure — dirty-chunk count first (most unverified writes), then
  /// previous-cycle error count (temporal locality of corruption), then
  /// importance share, then table id for determinism. Under overload the
  /// budget runs out mid-cycle, so the tables most likely to hold
  /// undetected corruption must come first; the carry queue (not this
  /// ranking) is what guarantees the tail is never starved.
  [[nodiscard]] std::vector<db::TableId> ranked_by_pressure(
      const std::vector<std::uint64_t>& dirty_chunks) const;

  /// Snapshot + clear the per-cycle error counters (call at cycle starts
  /// so `errors_last_cycle` means "previous cycle" during ranking).
  void begin_cycle(db::Database& db);

 private:
  const db::Database& db_;
  PriorityWeights weights_;
  std::vector<double> credit_;
  std::vector<std::uint64_t> prev_cycle_errors_;
  std::size_t rr_next_ = 0;
};

}  // namespace wtc::audit
