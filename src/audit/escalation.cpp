#include "audit/escalation.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace wtc::audit {

EscalationPolicy::EscalationPolicy(db::Database& db, EscalationConfig config)
    : db_(db), config_(config), tables_(db.table_count()) {}

void EscalationPolicy::prune(TableState& state, sim::Time now) const {
  const sim::Time horizon =
      now > static_cast<sim::Time>(config_.window)
          ? now - static_cast<sim::Time>(config_.window)
          : 0;
  state.recent.erase(
      std::remove_if(state.recent.begin(), state.recent.end(),
                     [horizon](sim::Time t) { return t < horizon; }),
      state.recent.end());
}

Recovery EscalationPolicy::on_finding(const Finding& finding, sim::Time now,
                                      ReportSink* report_to) {
  if (finding.table == db::kNoTable || finding.table >= tables_.size()) {
    return Recovery::None;
  }
  // Escalation findings feed back through the sink; ignore our own.
  if (finding.recovery == Recovery::ReloadAll) {
    return Recovery::None;
  }

  auto& state = tables_[finding.table];
  prune(state, now);
  state.recent.push_back(now);

  const bool in_cooldown =
      state.last_escalation != 0 &&
      now - state.last_escalation < static_cast<sim::Time>(config_.cooldown);
  if (state.recent.size() < config_.table_reload_threshold || in_cooldown) {
    return Recovery::None;
  }

  // Level 1: localized repair is not holding — reload the whole table
  // from permanent storage (dropping its dynamic state).
  const auto& tl = db_.layout().table(finding.table);
  db_.reload_span_from_disk(tl.offset, tl.record_size * tl.num_records);
  state.recent.clear();
  state.last_escalation = now;
  ++table_reloads_;
  obs::count(obs::Counter::audit_table_reload_escalations);
  obs::trace_instant("audit.table_reload", "audit",
                     static_cast<std::uint64_t>(now));

  Finding escalation;
  escalation.technique = finding.technique;
  escalation.recovery = Recovery::ReloadSpan;
  escalation.table = finding.table;
  escalation.offset = tl.offset;
  escalation.length = tl.record_size * tl.num_records;
  escalation.time = now;
  escalation.shard = finding.shard;
  if (report_to != nullptr) {
    report_to->on_finding(escalation);
  }

  // Level 2: several tables degenerating inside one window — reload the
  // entire database.
  const sim::Time horizon =
      now > static_cast<sim::Time>(config_.window)
          ? now - static_cast<sim::Time>(config_.window)
          : 0;
  recent_table_escalations_.push_back(now);
  recent_table_escalations_.erase(
      std::remove_if(recent_table_escalations_.begin(),
                     recent_table_escalations_.end(),
                     [horizon](sim::Time t) { return t < horizon; }),
      recent_table_escalations_.end());
  const bool full_cooldown =
      last_full_reload_ != 0 &&
      now - last_full_reload_ < static_cast<sim::Time>(config_.cooldown);
  if (recent_table_escalations_.size() >= config_.full_reload_threshold &&
      !full_cooldown) {
    db_.reload_all_from_disk();
    recent_table_escalations_.clear();
    last_full_reload_ = now;
    ++full_reloads_;
    obs::count(obs::Counter::audit_full_reload_escalations);
    obs::trace_instant("audit.full_reload", "audit",
                       static_cast<std::uint64_t>(now));

    Finding full;
    full.technique = finding.technique;
    full.recovery = Recovery::ReloadAll;
    full.offset = 0;
    full.length = db_.region().size();
    full.time = now;
    full.shard = finding.shard;
    if (report_to != nullptr) {
      report_to->on_finding(full);
    }
    return Recovery::ReloadAll;
  }
  return Recovery::ReloadSpan;
}

}  // namespace wtc::audit
