#include "audit/replay.hpp"

#include <algorithm>
#include <array>
#include <unordered_map>

#include "audit/engine.hpp"
#include "obs/metrics.hpp"

namespace wtc::audit {
namespace {

// FNV-1a, 64-bit: the chain-signature mixer. Not cryptographic — a
// signature collision merely merges two chains' dedup classes, and the
// shadow compare still catches any end-state divergence that causes.
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void mix(std::uint64_t& hash, std::uint64_t value) noexcept {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (i * 8)) & 0xFFu;
    hash *= kFnvPrime;
  }
}

/// Is this event one of the region-mutating ops replay interprets?
[[nodiscard]] bool replayable(const db::ApiEvent& event) noexcept {
  if (!event.is_update || event.status != db::Status::Ok) {
    return false;
  }
  switch (event.op) {
    case db::ApiOp::WriteRec:
    case db::ApiOp::WriteFld:
    case db::ApiOp::Move:
    case db::ApiOp::Alloc:
    case db::ApiOp::Free:
      return true;
    default:
      return false;
  }
}

/// Mirrors db::direct::relink_table on a raw shadow span: chains are a
/// pure function of the group words (group < kMaxGroups members, record
/// index order, kNilLink terminated).
void relink_shadow_table(std::span<std::byte> shadow, const db::Layout& layout,
                         db::TableId t) {
  const auto& tl = layout.table(t);
  std::vector<std::uint32_t> expected(tl.num_records, db::kNilLink);
  std::array<std::uint32_t, db::kMaxGroups> last_in_group;
  last_in_group.fill(db::kNilLink);
  for (db::RecordIndex r = 0; r < tl.num_records; ++r) {
    const std::uint32_t group =
        db::load_u32(shadow, layout.record_offset(t, r) + 8);
    if (group < db::kMaxGroups) {
      if (last_in_group[group] != db::kNilLink) {
        expected[last_in_group[group]] = r;
      }
      last_in_group[group] = r;
    }
  }
  for (db::RecordIndex r = 0; r < tl.num_records; ++r) {
    db::store_u32(shadow, layout.record_offset(t, r) + 12, expected[r]);
  }
}

/// A maximal contiguous run of mismatching 32-bit words.
struct MismatchRun {
  std::size_t offset = 0;
  std::size_t length = 0;
};

[[nodiscard]] sim::Duration scaled(std::uint64_t items, std::uint32_t per_item,
                                   double scale) noexcept {
  return static_cast<sim::Duration>(static_cast<double>(items) *
                                    static_cast<double>(per_item) * scale);
}

}  // namespace

ReplayAuditor::ReplayAuditor(const db::Database& db, ReplayConfig config)
    : db_(db), config_(config) {
  if (config_.replay_threads > 1) {
    pool_ = std::make_unique<common::WorkerPool>(config_.replay_threads - 1);
  }
}

void ReplayAuditor::dispatch(std::size_t workers,
                             const std::function<void(std::size_t)>& job) {
  if (pool_ != nullptr && workers > 1) {
    pool_->dispatch(workers, job);
  } else {
    for (std::size_t w = 0; w < workers; ++w) {
      job(w);
    }
  }
}

std::uint64_t ReplayAuditor::chain_signature(
    const Chain& chain, std::span<const db::ApiEvent> events) const {
  std::uint64_t hash = kFnvOffset;
  mix(hash, chain.table);
  const db::ApiEvent& first = events[chain.ops.front()];
  if (first.op != db::ApiOp::Alloc) {
    // The chain's end state depends on where it started: fold in the
    // pristine start state (status, group, every field). Chains that
    // begin with an Alloc are start-independent — Alloc resets the
    // record wholesale — so their signatures stay record-agnostic.
    const auto pristine = db_.pristine();
    const std::size_t at = db_.layout().record_offset(chain.table, chain.record);
    mix(hash, db::load_u32(pristine, at + 4));
    mix(hash, db::load_u32(pristine, at + 8));
    const std::size_t num_fields = db_.layout().table(chain.table).num_fields;
    for (std::size_t f = 0; f < num_fields; ++f) {
      mix(hash, static_cast<std::uint32_t>(
                    db::load_i32(pristine, at + db::kRecordHeaderSize + f * 4)));
    }
  }
  for (const std::uint32_t index : chain.ops) {
    const db::ApiEvent& event = events[index];
    mix(hash, static_cast<std::uint8_t>(event.op));
    mix(hash, event.group);
    mix(hash, event.field);
    mix(hash, event.payload_len);
    for (std::uint8_t f = 0; f < event.payload_len; ++f) {
      mix(hash, static_cast<std::uint32_t>(event.payload[f]));
    }
  }
  return hash;
}

ReplayAuditor::RecordState ReplayAuditor::execute_chain(
    const Chain& chain, std::span<const db::ApiEvent> events) const {
  const auto& layout = db_.layout();
  const auto& fields = db_.schema().tables.at(chain.table).fields;
  const std::size_t num_fields = layout.table(chain.table).num_fields;
  const std::size_t at = layout.record_offset(chain.table, chain.record);

  RecordState state;
  state.fields.resize(num_fields);
  const auto pristine = db_.pristine();
  state.status = db::load_u32(pristine, at + 4);
  state.group = db::load_u32(pristine, at + 8);
  for (std::size_t f = 0; f < num_fields; ++f) {
    state.fields[f] = db::load_i32(pristine, at + db::kRecordHeaderSize + f * 4);
  }
  const auto scrub = [&]() {
    for (std::size_t f = 0; f < num_fields; ++f) {
      state.fields[f] = fields[f].default_value;
    }
  };
  for (const std::uint32_t index : chain.ops) {
    const db::ApiEvent& event = events[index];
    switch (event.op) {
      case db::ApiOp::Alloc:
        state.status = db::kStatusActive;
        state.group = event.group;
        scrub();
        break;
      case db::ApiOp::WriteRec: {
        // Update events snapshot the record's post-write fields
        // (min(num_fields, 8) of them — every shipped schema fits).
        const std::size_t n =
            std::min<std::size_t>(event.payload_len, num_fields);
        for (std::size_t f = 0; f < n; ++f) {
          state.fields[f] = event.payload[f];
        }
        break;
      }
      case db::ApiOp::WriteFld:
        if (event.field < num_fields && event.payload_len >= 1) {
          state.fields[event.field] = event.payload[0];
        }
        break;
      case db::ApiOp::Move:
        state.group = event.group;
        break;
      case db::ApiOp::Free:
        state.status = db::kStatusFree;
        state.group = 0;
        scrub();
        break;
      default:
        break;
    }
  }
  return state;
}

ReplayResult ReplayAuditor::run(std::span<const db::ApiEvent> events) {
  const auto& layout = db_.layout();
  ReplayResult result;
  ReplayStats& stats = result.stats;

  // --- select + group: per-(table, record) chains, arrival order,
  // segmented at lifecycle boundaries — every Alloc starts a fresh chain
  // (the record is reborn from a state Alloc fully determines), so
  // repeated call cycles on a reused record slot become *separate*
  // record-agnostic chains the dedup pass can collapse ---
  std::vector<Chain> chains;
  std::unordered_map<std::uint64_t, std::size_t> chain_of;  // key -> index
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(events.size()); ++i) {
    const db::ApiEvent& event = events[i];
    if (!replayable(event) || event.table >= layout.tables().size() ||
        event.record >= layout.table(event.table).num_records) {
      continue;
    }
    ++stats.total_ops;
    const std::uint64_t key =
        static_cast<std::uint64_t>(event.table) << 32 | event.record;
    auto it = chain_of.find(key);
    if (it == chain_of.end() || event.op == db::ApiOp::Alloc) {
      it = chain_of.insert_or_assign(key, chains.size()).first;
      chains.push_back(Chain{event.table, event.record, {}, 0, 0});
    }
    chains[it->second].ops.push_back(i);
  }
  stats.chains = chains.size();

  // --- dedup: signature -> first chain with it becomes the executor ---
  std::vector<std::size_t> uniques;  // chain indices, discovery order
  std::unordered_map<std::uint64_t, std::size_t> unique_of;  // sig -> slot
  for (auto& chain : chains) {
    chain.signature = chain_signature(chain, events);
    const auto [it, inserted] =
        unique_of.try_emplace(chain.signature, uniques.size());
    if (inserted) {
      uniques.push_back(static_cast<std::size_t>(&chain - chains.data()));
    }
    chain.unique_index = it->second;
  }
  stats.unique_chains = uniques.size();
  obs::count(obs::Counter::replay_chains, stats.chains);
  obs::count(obs::Counter::replay_deduped, stats.deduped());

  // --- execute each unique chain exactly once (parallel, strided into
  // preallocated slots: bit-identical at any worker count) ---
  std::vector<RecordState> end_states(uniques.size());
  std::vector<sim::Duration> chain_costs(uniques.size(), 0);
  const std::size_t workers = std::max<std::size_t>(1, config_.replay_threads);
  dispatch(workers, [&](std::size_t w) {
    for (std::size_t u = w; u < uniques.size(); u += workers) {
      end_states[u] = execute_chain(chains[uniques[u]], events);
    }
  });
  for (std::size_t u = 0; u < uniques.size(); ++u) {
    const std::uint64_t ops = chains[uniques[u]].ops.size();
    stats.executed_ops += ops;
    chain_costs[u] = scaled(ops, config_.cost_per_op, config_.cost_scale);
  }
  obs::count(obs::Counter::replay_exec_ops, stats.executed_ops);

  // --- build the shadow: pristine image + every chain's end state, then
  // recompute each table's group links (replay's analog of relink).
  // Chains are applied in creation order (chronological by segment
  // start), so a record's last lifecycle overwrites its earlier ones ---
  const auto pristine = db_.pristine();
  std::vector<std::byte> shadow(pristine.begin(), pristine.end());
  for (const Chain& chain : chains) {
    const RecordState& state = end_states[chain.unique_index];
    const std::size_t at = layout.record_offset(chain.table, chain.record);
    db::store_u32(shadow, at + 4, state.status);
    db::store_u32(shadow, at + 8, state.group);
    for (std::size_t f = 0; f < state.fields.size(); ++f) {
      db::store_i32(shadow, at + db::kRecordHeaderSize + f * 4,
                    state.fields[f]);
    }
  }
  for (std::size_t t = 0; t < layout.tables().size(); ++t) {
    relink_shadow_table(shadow, layout, static_cast<db::TableId>(t));
  }

  // --- compare shadow vs live, word-for-word, fixed-grain slices merged
  // in slice order ---
  const auto live = db_.region();
  const std::size_t grain = std::max<std::size_t>(4, config_.compare_grain_bytes);
  const std::size_t tasks = (live.size() + grain - 1) / grain;
  std::vector<std::vector<MismatchRun>> task_runs(tasks);
  dispatch(workers, [&](std::size_t w) {
    for (std::size_t task = w; task < tasks; task += workers) {
      const std::size_t begin = task * grain;
      const std::size_t end = std::min(live.size(), begin + grain);
      auto& runs = task_runs[task];
      for (std::size_t at = begin; at + 4 <= end; at += 4) {
        if (db::load_u32(live, at) == db::load_u32(shadow, at)) {
          continue;
        }
        if (!runs.empty() && runs.back().offset + runs.back().length == at) {
          runs.back().length += 4;
        } else {
          runs.push_back(MismatchRun{at, 4});
        }
      }
    }
  });
  std::vector<MismatchRun> runs;
  for (const auto& task : task_runs) {
    for (const MismatchRun& run : task) {
      if (!runs.empty() && runs.back().offset + runs.back().length == run.offset) {
        runs.back().length += run.length;  // coalesce across slice seams
      } else {
        runs.push_back(run);
      }
    }
  }
  for (const MismatchRun& run : runs) {
    stats.mismatched_words += run.length / 4;
    Finding finding;
    finding.technique = Technique::ReplayCheck;
    finding.recovery = Recovery::None;
    finding.offset = run.offset;
    finding.length = run.length;
    if (const auto loc = layout.locate(run.offset)) {
      finding.table = loc->table;
      finding.record = loc->record;
      if (!loc->in_header) {
        const std::size_t record_at =
            layout.record_offset(loc->table, loc->record);
        finding.field = static_cast<db::FieldId>(
            (run.offset - record_at - db::kRecordHeaderSize) / 4);
      }
    }
    result.findings.push_back(finding);
  }
  obs::count(obs::Counter::replay_mismatches, stats.mismatched_words);

  // --- cost model: same µs-and-scale convention as the engine; the
  // makespan is the two parallel phases' critical paths back to back ---
  std::vector<sim::Duration> compare_costs(
      tasks, scaled(1, config_.cost_per_compare_chunk, config_.cost_scale));
  const sim::Duration compare_cost =
      scaled(tasks, config_.cost_per_compare_chunk, config_.cost_scale);
  stats.naive_cost =
      scaled(stats.total_ops, config_.cost_per_op, config_.cost_scale) +
      compare_cost;
  stats.dedup_cost =
      scaled(stats.executed_ops, config_.cost_per_op, config_.cost_scale) +
      compare_cost;
  stats.makespan = AuditEngine::greedy_makespan(chain_costs, workers) +
                   AuditEngine::greedy_makespan(compare_costs, workers);
  return result;
}

}  // namespace wtc::audit
