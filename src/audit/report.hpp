// Audit findings and the interfaces the audit subsystem reports through.
#pragma once

#include <cstdint>
#include <string_view>

#include "db/schema.hpp"
#include "sim/node.hpp"
#include "sim/time.hpp"

namespace wtc::audit {

/// Which detection technique produced a finding (§4.3-4.4).
enum class Technique : std::uint8_t {
  StaticChecksum,     ///< golden CRC over static data (§4.3.1)
  RangeCheck,         ///< dynamic-data range audit (§4.3.1)
  StructuralCheck,    ///< record headers at computed offsets (§4.3.2)
  SemanticCheck,      ///< referential-integrity loop audit (§4.3.3)
  SelectiveMonitor,   ///< runtime-derived invariants (§4.4.2)
  ProgressIndicator,  ///< database deadlock detection (§4.2)
  ElementQuarantine,  ///< audit main thread caught a faulty element
  CfAttestation,      ///< control-flow log attestation (ACFA-style)
  ReplayCheck,        ///< deduplicated op-log re-execution (shadow compare)
};

/// Which recovery action accompanied the detection.
enum class Recovery : std::uint8_t {
  None,
  ReloadSpan,   ///< static data reloaded from disk
  ReloadAll,    ///< whole database reloaded (structural damage)
  RepairHeader, ///< record id/status/links repaired in place
  ResetField,   ///< field reset to its catalog default
  FreeRecord,   ///< record freed preemptively (drops one call)
  TerminateClientThread,  ///< offending client thread terminated
  KillClientProcess,      ///< lock-holding client killed (progress indicator)
  DisableElement,         ///< repeatedly-crashing audit element quarantined
  ReenableElement,        ///< quarantined element restored after cooldown
  HealThread,             ///< CF-violating thread healed (restore+replay+restart)
};

[[nodiscard]] std::string_view to_string(Technique technique) noexcept;
[[nodiscard]] std::string_view to_string(Recovery recovery) noexcept;

/// One detected-and-recovered error.
struct Finding {
  Technique technique = Technique::RangeCheck;
  Recovery recovery = Recovery::None;
  db::TableId table = db::kNoTable;
  db::RecordIndex record = 0;
  db::FieldId field = 0;
  /// Region span implicated by the finding (what the detection localized).
  std::size_t offset = 0;
  std::size_t length = 0;
  sim::Time time = 0;
  /// Which database shard the finding belongs to (0 when unsharded).
  /// Table/record/offset are all shard-local coordinates; without the
  /// shard id a finding from shard 3 is indistinguishable from the same
  /// record on shard 0.
  std::uint32_t shard = 0;
};

/// Consumer of findings. The experiment oracle implements this to mark
/// injected errors "caught by audit" *before* the recovery writes land.
class ReportSink {
 public:
  virtual ~ReportSink() = default;
  virtual void on_finding(const Finding& finding) = 0;
};

/// Recovery actions that reach outside the database: the semantic audit
/// preemptively terminates the client thread using a zombie record
/// (§4.3.3); the progress indicator kills a lock-wedged client process
/// (§4.2). Implemented by the call-processing client / the harness.
class ClientControl {
 public:
  virtual ~ClientControl() = default;
  virtual void terminate_client_thread(sim::ProcessId client,
                                       std::uint32_t thread_id) = 0;
  virtual void kill_client_process(sim::ProcessId client) = 0;
};

/// Who detected a control-flow violation.
enum class CfSource : std::uint8_t {
  Preemptive,   ///< PECOS assertion block trapped the transfer pre-retire
  Attestation,  ///< the CF-log attestation slice flagged a retired transfer
};

/// One detected illegal control transfer, routed to the active manager
/// for healing (either from the preemptive monitor's trap handler or from
/// the attestation element).
struct CfViolation {
  sim::ProcessId client = sim::kNoProcess;
  std::uint32_t thread = 0;
  std::uint32_t from_pc = 0;
  std::uint32_t to_pc = 0;
  sim::Time time = 0;  ///< sim time of the offending transfer
  CfSource source = CfSource::Preemptive;
};

/// Healing hooks the client process exposes to the manager's healer: the
/// thread-surgery half of the heal sequence (the database half goes
/// through the audit recovery machinery).
class HealableClient {
 public:
  virtual ~HealableClient() = default;
  /// Stops the offending thread (it stays down while records restore).
  virtual void heal_terminate_thread(std::uint32_t thread_id) = 0;
  /// Restarts the thread at a clean entry with pristine program text.
  virtual void heal_restart_thread(std::uint32_t thread_id) = 0;
};

}  // namespace wtc::audit
