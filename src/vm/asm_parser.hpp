// Text assembler for MiniVM.
//
// The ProgramBuilder is the programmatic front end; this parser is the
// human one — it turns assembly text into a Program, with labels, comments
// and padding directives, so experiments and examples can keep workloads
// in .asm files instead of C++.
//
//   ; one call worth of work
//   entry:
//       loadi   r1, 42
//   loop:
//       addi    r1, r1, -1
//       bne     r1, r0, loop
//       emit    7, r1
//       halt
//
// Grammar per line:  [label:] [mnemonic operand,*] [; comment]
// Operands: rN (register), integer immediates (decimal or 0x hex), label
// names (resolved to instruction addresses). Directives: `.pad N` emits N
// undefined words (inter-function padding), `.data N` sets the per-thread
// data memory size.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "vm/program.hpp"

namespace wtc::vm {

/// Parse failure with 1-based line information.
class AsmError : public std::runtime_error {
 public:
  AsmError(std::size_t line, const std::string& message)
      : std::runtime_error("asm:" + std::to_string(line) + ": " + message),
        line_(line) {}

  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Assembles `source` into a program. Throws AsmError on syntax errors,
/// unknown mnemonics/registers, duplicate or undefined labels, and
/// immediates out of range.
[[nodiscard]] Program assemble(std::string_view source);

/// The inverse: renders a program as assembler-syntax text, synthesizing
/// `L<pc>` labels for every control flow target. For any program made of
/// defined opcodes, `assemble(format_asm(p)).text == p.text` (undefined
/// words render as `.pad 1` placeholders and do not round-trip their
/// exact bits).
[[nodiscard]] std::string format_asm(const Program& program);

}  // namespace wtc::vm
