// Control-flow-graph analysis of MiniVM programs.
//
// This is the compile-time half of PECOS (§6.1.1): decompose the program
// into basic blocks ("branch-free intervals"), find every CFI, and compute
// its set of valid target addresses — statically where the target is a
// constant in the instruction stream, or a recipe for runtime computation
// where it is not (indirect calls, returns).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "vm/program.hpp"

namespace wtc::vm {

/// How a CFI's valid targets are determined.
enum class CfiKind : std::uint8_t {
  Jump,          ///< one static target
  Branch,        ///< two static targets: taken + fall-through
  Call,          ///< one static target (+ return-address side effect)
  IndirectCall,  ///< target = regs[ra] at runtime (dynamic dispatch)
  Ret,           ///< target = return address at runtime
};

/// Everything PECOS needs to know about one CFI site.
struct CfiInfo {
  std::uint32_t site = 0;          ///< pc of the CFI
  CfiKind kind = CfiKind::Jump;
  std::uint32_t block_leader = 0;  ///< leader of the containing basic block
  /// Static valid targets (Jump: {imm}; Branch: {imm, site+1}; Call: {imm}).
  std::vector<std::uint32_t> static_targets;
  /// IndirectCall: the register the *pristine* instruction reads — the
  /// runtime valid target is recomputed from it, independent of whatever
  /// the (possibly corrupted) fetched instruction does.
  std::uint8_t icall_reg = 0;
};

/// Basic-block decomposition + CFI table.
class Cfg {
 public:
  static Cfg analyze(const Program& program);

  /// Sorted basic-block leader pcs.
  [[nodiscard]] const std::vector<std::uint32_t>& leaders() const noexcept {
    return leaders_;
  }

  /// Leader of the block containing `pc`.
  [[nodiscard]] std::uint32_t leader_of(std::uint32_t pc) const noexcept;

  /// True if `pc` starts a basic block.
  [[nodiscard]] bool is_leader(std::uint32_t pc) const noexcept;

  /// CFI info at `pc`, nullptr if `pc` is not a CFI site.
  [[nodiscard]] const CfiInfo* cfi_at(std::uint32_t pc) const noexcept;

  [[nodiscard]] const std::unordered_map<std::uint32_t, CfiInfo>& cfis()
      const noexcept {
    return cfis_;
  }

  [[nodiscard]] std::size_t block_count() const noexcept { return leaders_.size(); }

 private:
  std::vector<std::uint32_t> leaders_;  // sorted
  std::unordered_map<std::uint32_t, CfiInfo> cfis_;
};

}  // namespace wtc::vm
