#include "vm/interp.hpp"

#include <algorithm>

namespace wtc::vm {

std::string_view to_string(Trap trap) noexcept {
  switch (trap) {
    case Trap::None: return "None";
    case Trap::IllegalOpcode: return "IllegalOpcode";
    case Trap::IllegalOperand: return "IllegalOperand";
    case Trap::PcOutOfBounds: return "PcOutOfBounds";
    case Trap::MemOutOfBounds: return "MemOutOfBounds";
    case Trap::DivByZero: return "DivByZero";
    case Trap::RetUnderflow: return "RetUnderflow";
    case Trap::StackOverflow: return "StackOverflow";
    case Trap::PecosViolation: return "PecosViolation";
  }
  return "?";
}

VmProcess::VmProcess(Program pristine, db::DbApi& api, common::Rng rng,
                     VmConfig config)
    : pristine_(std::move(pristine)),
      text_(pristine_.text),
      api_(api),
      rng_(rng),
      config_(config) {}

std::uint32_t VmProcess::spawn_thread(std::uint32_t entry) {
  VmThread thread;
  thread.id_ = static_cast<std::uint32_t>(threads_.size());
  thread.pc_ = entry;
  thread.data_.assign(pristine_.data_words, 0);
  threads_.push_back(std::move(thread));
  if (monitor_ != nullptr) {
    monitor_->on_thread_start(threads_.back().id_, entry);
  }
  return threads_.back().id_;
}

void VmProcess::set_breakpoint(std::uint32_t pc,
                               std::function<void(std::uint32_t)> on_hit) {
  breakpoint_ = Breakpoint{pc, std::move(on_hit)};
}

void VmProcess::arm_fetch_redirect(std::uint32_t pc, std::uint32_t xor_mask) {
  redirect_ = Redirect{pc, xor_mask};
}

void VmProcess::terminate_thread(std::uint32_t i) {
  auto& thread = threads_.at(i);
  if (thread.state_ != ThreadState::Halted) {
    thread.state_ = ThreadState::Terminated;
  }
}

void VmProcess::reset_thread(std::uint32_t i, std::uint32_t entry) {
  auto& thread = threads_.at(i);
  thread.pc_ = entry;
  thread.state_ = ThreadState::Runnable;
  thread.trap_ = Trap::None;
  thread.wake_time_ = 0;
  thread.regs_.fill(0);
  thread.data_.assign(pristine_.data_words, 0);
  thread.ret_stack_.clear();
  thread.instructions_ = 0;
  if (monitor_ != nullptr) {
    monitor_->on_thread_start(thread.id_, entry);
  }
}

void VmProcess::restore_text_from_pristine() {
  text_ = pristine_.text;
  redirect_.reset();
}

bool VmProcess::any_live(sim::Time horizon) const noexcept {
  for (const auto& thread : threads_) {
    if (thread.state_ == ThreadState::Runnable) {
      return true;
    }
    if (thread.state_ == ThreadState::Sleeping && thread.wake_time_ < horizon) {
      return true;
    }
  }
  return false;
}

void VmProcess::raise(VmThread& thread, Trap trap) noexcept {
  thread.trap_ = trap;
  thread.state_ = ThreadState::Trapped;
}

QuantumResult VmProcess::run_quantum(std::uint32_t i, sim::Time now) {
  QuantumResult result;
  auto& thread = threads_.at(i);

  if (thread.state_ == ThreadState::Sleeping && thread.wake_time_ <= now) {
    thread.state_ = ThreadState::Runnable;
  }

  while (thread.state_ == ThreadState::Runnable &&
         result.instructions < config_.quantum) {
    const std::uint32_t pc = thread.pc_;
    if (pc >= text_.size()) {
      raise(thread, Trap::PcOutOfBounds);
      break;
    }

    // Injection breakpoint: fires once, before fetch, so the handler can
    // mutate the live text the thread is about to execute (§6.1.2).
    if (breakpoint_ && breakpoint_->pc == pc) {
      auto hit = std::move(breakpoint_->on_hit);
      breakpoint_.reset();
      hit(i);
    }

    // Instruction fetch, with the ADDIF address-line-error model.
    std::uint32_t fetch_pc = pc;
    if (redirect_ && redirect_->pc == pc) {
      fetch_pc = pc ^ redirect_->mask;
      if (fetch_pc >= text_.size()) {
        if (watch_pc_ == pc) {
          ++watch_hits_;  // the fault was exercised even though it traps
        }
        raise(thread, Trap::PcOutOfBounds);
        break;
      }
    }
    if (watch_pc_ == pc) {
      ++watch_hits_;
    }
    const std::uint64_t word = text_[fetch_pc];

    // PECOS hook: preemptive check before the instruction executes.
    if (monitor_ != nullptr && monitor_->before_execute(thread, pc, word)) {
      raise(thread, Trap::PecosViolation);
      break;
    }

    const Instr instr = decode(word);
    if (!opcode_defined(static_cast<std::uint8_t>(instr.op))) {
      raise(thread, Trap::IllegalOpcode);
      break;
    }

    result.time_cost += config_.instr_cost;
    result.time_cost += execute(thread, instr, now);
    ++result.instructions;
    ++thread.instructions_;
    ++total_instr_;

    if (monitor_ != nullptr && thread.state_ != ThreadState::Trapped) {
      monitor_->after_execute(thread, pc, word, thread.pc_);
      if (thread.state_ != ThreadState::Halted && thread.pc_ != pc + 1) {
        monitor_->on_control_transfer(thread, pc, word, thread.pc_, now);
      }
    }
  }
  return result;
}

sim::Duration VmProcess::execute(VmThread& thread, const Instr& instr,
                                 sim::Time now) {
  // Register-operand validation: corrupted operand bytes that name
  // nonexistent registers behave like an illegal instruction (SIGILL).
  const auto need_reg = [&](std::uint8_t r) -> bool {
    if (r >= kNumRegs) {
      raise(thread, Trap::IllegalOperand);
      return false;
    }
    return true;
  };
  // Table and field ids are 16-bit in the database schema. A register or
  // immediate value outside [0, 0xFFFF] must trap rather than truncate:
  // a blind static_cast would alias out-of-range ids onto valid ones
  // (0x10003 -> table 3), turning corrupted operands into well-formed
  // calls against the wrong table.
  const auto need_id16 = [&](std::int32_t value, std::uint16_t& out) -> bool {
    if (value < 0 || value > 0xFFFF) {
      raise(thread, Trap::IllegalOperand);
      return false;
    }
    out = static_cast<std::uint16_t>(value);
    return true;
  };
  auto& regs = thread.regs_;
  const std::uint32_t next = thread.pc_ + 1;
  sim::Duration db_cost = 0;

  switch (instr.op) {
    case Opcode::Nop:
      thread.pc_ = next;
      break;
    case Opcode::Halt:
      thread.state_ = ThreadState::Halted;
      break;
    case Opcode::LoadI:
      if (!need_reg(instr.rd)) break;
      regs[instr.rd] = instr.imm;
      thread.pc_ = next;
      break;
    case Opcode::Mov:
      if (!need_reg(instr.rd) || !need_reg(instr.ra)) break;
      regs[instr.rd] = regs[instr.ra];
      thread.pc_ = next;
      break;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor: {
      if (!need_reg(instr.rd) || !need_reg(instr.ra) || !need_reg(instr.rb)) break;
      const std::int64_t a = regs[instr.ra];
      const std::int64_t b = regs[instr.rb];
      std::int64_t v = 0;
      switch (instr.op) {
        case Opcode::Add: v = a + b; break;
        case Opcode::Sub: v = a - b; break;
        case Opcode::Mul: v = a * b; break;
        case Opcode::And: v = a & b; break;
        case Opcode::Or: v = a | b; break;
        default: v = a ^ b; break;
      }
      regs[instr.rd] = static_cast<std::int32_t>(v);
      thread.pc_ = next;
      break;
    }
    case Opcode::AddI:
      if (!need_reg(instr.rd) || !need_reg(instr.ra)) break;
      regs[instr.rd] = static_cast<std::int32_t>(
          static_cast<std::int64_t>(regs[instr.ra]) + instr.imm);
      thread.pc_ = next;
      break;
    case Opcode::Div: {
      if (!need_reg(instr.rd) || !need_reg(instr.ra) || !need_reg(instr.rb)) break;
      if (regs[instr.rb] == 0) {
        raise(thread, Trap::DivByZero);
        break;
      }
      const std::int64_t q =
          static_cast<std::int64_t>(regs[instr.ra]) / regs[instr.rb];
      regs[instr.rd] = static_cast<std::int32_t>(q);
      thread.pc_ = next;
      break;
    }
    case Opcode::Shl:
      if (!need_reg(instr.rd) || !need_reg(instr.ra)) break;
      regs[instr.rd] = static_cast<std::int32_t>(
          static_cast<std::uint32_t>(regs[instr.ra])
          << (static_cast<std::uint32_t>(instr.imm) & 31u));
      thread.pc_ = next;
      break;
    case Opcode::Shr:
      if (!need_reg(instr.rd) || !need_reg(instr.ra)) break;
      regs[instr.rd] = static_cast<std::int32_t>(
          static_cast<std::uint32_t>(regs[instr.ra]) >>
          (static_cast<std::uint32_t>(instr.imm) & 31u));
      thread.pc_ = next;
      break;
    case Opcode::Ld: {
      if (!need_reg(instr.rd) || !need_reg(instr.ra)) break;
      const std::int64_t addr =
          static_cast<std::int64_t>(regs[instr.ra]) + instr.imm;
      if (addr < 0 || addr >= static_cast<std::int64_t>(thread.data_.size())) {
        raise(thread, Trap::MemOutOfBounds);
        break;
      }
      regs[instr.rd] = thread.data_[static_cast<std::size_t>(addr)];
      thread.pc_ = next;
      break;
    }
    case Opcode::St: {
      if (!need_reg(instr.ra) || !need_reg(instr.rb)) break;
      const std::int64_t addr =
          static_cast<std::int64_t>(regs[instr.ra]) + instr.imm;
      if (addr < 0 || addr >= static_cast<std::int64_t>(thread.data_.size())) {
        raise(thread, Trap::MemOutOfBounds);
        break;
      }
      thread.data_[static_cast<std::size_t>(addr)] = regs[instr.rb];
      thread.pc_ = next;
      break;
    }
    case Opcode::Rand:
      if (!need_reg(instr.rd)) break;
      regs[instr.rd] = static_cast<std::int32_t>(rng_.uniform(
          instr.imm > 0 ? static_cast<std::uint64_t>(instr.imm) : 1));
      thread.pc_ = next;
      break;
    case Opcode::Emit:
      if (!need_reg(instr.rd)) break;
      emits_.push_back({thread.id_, instr.imm, regs[instr.rd], now});
      thread.pc_ = next;
      break;
    case Opcode::SleepR: {
      if (!need_reg(instr.ra)) break;
      const std::int32_t usec = std::max(regs[instr.ra], 0);
      thread.state_ = ThreadState::Sleeping;
      thread.wake_time_ = now + static_cast<sim::Time>(usec);
      thread.pc_ = next;
      break;
    }

    // --- control flow ---
    case Opcode::Jmp:
      thread.pc_ = static_cast<std::uint32_t>(instr.imm);
      break;
    case Opcode::Beq:
    case Opcode::Bne:
    case Opcode::Blt:
    case Opcode::Bge: {
      if (!need_reg(instr.ra) || !need_reg(instr.rb)) break;
      const std::int32_t a = regs[instr.ra];
      const std::int32_t b = regs[instr.rb];
      bool taken = false;
      switch (instr.op) {
        case Opcode::Beq: taken = a == b; break;
        case Opcode::Bne: taken = a != b; break;
        case Opcode::Blt: taken = a < b; break;
        default: taken = a >= b; break;
      }
      thread.pc_ = taken ? static_cast<std::uint32_t>(instr.imm) : next;
      break;
    }
    case Opcode::Call:
      if (thread.ret_stack_.size() >= config_.max_call_depth) {
        raise(thread, Trap::StackOverflow);
        break;
      }
      thread.ret_stack_.push_back(next);
      thread.pc_ = static_cast<std::uint32_t>(instr.imm);
      break;
    case Opcode::ICall:
      if (!need_reg(instr.ra)) break;
      if (thread.ret_stack_.size() >= config_.max_call_depth) {
        raise(thread, Trap::StackOverflow);
        break;
      }
      thread.ret_stack_.push_back(next);
      thread.pc_ = static_cast<std::uint32_t>(regs[instr.ra]);
      break;
    case Opcode::Ret:
      if (thread.ret_stack_.empty()) {
        raise(thread, Trap::RetUnderflow);
        break;
      }
      thread.pc_ = thread.ret_stack_.back();
      thread.ret_stack_.pop_back();
      break;

    // --- database bindings ---
    case Opcode::DbAlloc: {
      if (!need_reg(instr.rd) || !need_reg(instr.ra) || !need_reg(instr.rb)) break;
      db::TableId table = 0;
      if (!need_id16(regs[instr.ra], table)) break;
      db::RecordIndex out = 0;
      const auto status =
          api_.alloc_rec(table, static_cast<std::uint32_t>(regs[instr.rb]), out);
      regs[instr.rd] =
          status == db::Status::Ok ? static_cast<std::int32_t>(out) : -1;
      regs[kDbStatusReg] = static_cast<std::int32_t>(status);
      db_cost = db::api_cost(db::ApiOp::Alloc, api_.instrumented());
      thread.pc_ = next;
      break;
    }
    case Opcode::DbFree: {
      if (!need_reg(instr.ra) || !need_reg(instr.rb)) break;
      db::TableId table = 0;
      if (!need_id16(regs[instr.ra], table)) break;
      const auto status =
          api_.free_rec(table, static_cast<db::RecordIndex>(regs[instr.rb]));
      regs[kDbStatusReg] = static_cast<std::int32_t>(status);
      db_cost = db::api_cost(db::ApiOp::Free, api_.instrumented());
      thread.pc_ = next;
      break;
    }
    case Opcode::DbReadFld: {
      if (!need_reg(instr.rd) || !need_reg(instr.ra) || !need_reg(instr.rb)) break;
      db::TableId table = 0;
      db::FieldId field = 0;
      if (!need_id16(regs[instr.ra], table) || !need_id16(instr.imm, field)) break;
      std::int32_t value = 0;
      const auto status = api_.read_fld(
          table, static_cast<db::RecordIndex>(regs[instr.rb]), field, value);
      if (status == db::Status::Ok) {
        regs[instr.rd] = value;
      }
      regs[kDbStatusReg] = static_cast<std::int32_t>(status);
      db_cost = db::api_cost(db::ApiOp::ReadFld, api_.instrumented());
      thread.pc_ = next;
      break;
    }
    case Opcode::DbWriteFld: {
      if (!need_reg(instr.rd) || !need_reg(instr.ra) || !need_reg(instr.rb)) break;
      db::TableId table = 0;
      db::FieldId field = 0;
      if (!need_id16(regs[instr.ra], table) || !need_id16(instr.imm, field)) break;
      const auto status = api_.write_fld(
          table, static_cast<db::RecordIndex>(regs[instr.rb]), field,
          regs[instr.rd]);
      regs[kDbStatusReg] = static_cast<std::int32_t>(status);
      db_cost = db::api_cost(db::ApiOp::WriteFld, api_.instrumented());
      thread.pc_ = next;
      break;
    }
    case Opcode::DbMove: {
      if (!need_reg(instr.ra) || !need_reg(instr.rb)) break;
      db::TableId table = 0;
      if (!need_id16(regs[instr.ra], table)) break;
      const auto status =
          api_.move_rec(table, static_cast<db::RecordIndex>(regs[instr.rb]),
                        static_cast<std::uint32_t>(instr.imm));
      regs[kDbStatusReg] = static_cast<std::int32_t>(status);
      db_cost = db::api_cost(db::ApiOp::Move, api_.instrumented());
      thread.pc_ = next;
      break;
    }
    case Opcode::DbTxnBegin: {
      if (!need_reg(instr.ra)) break;
      db::TableId table = 0;
      if (!need_id16(regs[instr.ra], table)) break;
      const auto status = api_.txn_begin(table);
      regs[kDbStatusReg] = static_cast<std::int32_t>(status);
      db_cost = db::api_cost(db::ApiOp::TxnBegin, api_.instrumented());
      thread.pc_ = next;
      break;
    }
    case Opcode::DbTxnEnd: {
      if (!need_reg(instr.ra)) break;
      db::TableId table = 0;
      if (!need_id16(regs[instr.ra], table)) break;
      const auto status = api_.txn_end(table);
      regs[kDbStatusReg] = static_cast<std::int32_t>(status);
      db_cost = db::api_cost(db::ApiOp::TxnEnd, api_.instrumented());
      thread.pc_ = next;
      break;
    }
  }
  return db_cost;
}

}  // namespace wtc::vm
