#include "vm/asm_parser.hpp"

#include <cctype>
#include <charconv>
#include <optional>
#include <unordered_map>
#include <vector>

namespace wtc::vm {
namespace {

struct Token {
  std::string text;
};

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) {
    tokens.push_back(std::move(current));
  }
  return tokens;
}

/// A parsed-but-unresolved instruction: `label_imm` defers the immediate.
struct Pending {
  Instr instr;
  std::string label_imm;  // empty if imm is literal
  std::size_t line;
};

class Assembler {
 public:
  Program run(std::string_view source) {
    std::size_t line_no = 0;
    std::size_t start = 0;
    while (start <= source.size()) {
      const std::size_t end = source.find('\n', start);
      const std::string_view raw =
          source.substr(start, end == std::string_view::npos ? std::string_view::npos
                                                             : end - start);
      ++line_no;
      parse_line(raw, line_no);
      if (end == std::string_view::npos) {
        break;
      }
      start = end + 1;
    }
    return finish();
  }

 private:
  void parse_line(std::string_view raw, std::size_t line) {
    // Strip comments.
    const std::size_t comment = raw.find_first_of(";#");
    std::string_view body =
        comment == std::string_view::npos ? raw : raw.substr(0, comment);

    auto tokens = tokenize(body);
    // Leading label definitions ("name:").
    while (!tokens.empty() && tokens.front().back() == ':') {
      std::string name = tokens.front().substr(0, tokens.front().size() - 1);
      if (name.empty()) {
        throw AsmError(line, "empty label");
      }
      if (!labels_.emplace(name, address()).second) {
        throw AsmError(line, "duplicate label '" + name + "'");
      }
      tokens.erase(tokens.begin());
    }
    if (tokens.empty()) {
      return;
    }
    const std::string mnemonic = lower(tokens[0]);
    tokens.erase(tokens.begin());

    if (mnemonic == ".pad") {
      const std::int64_t n = parse_int(expect(tokens, 0, line, "pad count"), line);
      for (std::int64_t i = 0; i < n; ++i) {
        words_.push_back({Instr{static_cast<Opcode>(0xEE)}, "", line});
      }
      return;
    }
    if (mnemonic == ".data") {
      data_words_ = static_cast<std::uint32_t>(
          parse_int(expect(tokens, 0, line, "data size"), line));
      return;
    }
    emit(mnemonic, tokens, line);
  }

  static std::string lower(std::string s) {
    for (char& c : s) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return s;
  }

  [[nodiscard]] std::uint32_t address() const noexcept {
    return static_cast<std::uint32_t>(words_.size());
  }

  static const std::string& expect(const std::vector<std::string>& tokens,
                                   std::size_t index, std::size_t line,
                                   const char* what) {
    if (index >= tokens.size()) {
      throw AsmError(line, std::string("missing operand: ") + what);
    }
    return tokens[index];
  }

  static std::int64_t parse_int(const std::string& token, std::size_t line) {
    std::int64_t value = 0;
    const bool hex = token.starts_with("0x") || token.starts_with("0X") ||
                     token.starts_with("-0x");
    const char* first = token.data();
    const char* last = token.data() + token.size();
    std::from_chars_result parsed{};
    if (hex) {
      const bool negative = token[0] == '-';
      const char* digits = first + (negative ? 3 : 2);
      std::uint64_t magnitude = 0;
      parsed = std::from_chars(digits, last, magnitude, 16);
      value = negative ? -static_cast<std::int64_t>(magnitude)
                       : static_cast<std::int64_t>(magnitude);
    } else {
      parsed = std::from_chars(first, last, value, 10);
    }
    if (parsed.ec != std::errc{} || parsed.ptr != last) {
      throw AsmError(line, "bad integer '" + token + "'");
    }
    if (value < INT32_MIN || value > INT32_MAX) {
      throw AsmError(line, "immediate out of range: " + token);
    }
    return value;
  }

  static std::uint8_t parse_reg(const std::string& token, std::size_t line) {
    if (token.size() < 2 || (token[0] != 'r' && token[0] != 'R')) {
      throw AsmError(line, "expected register, got '" + token + "'");
    }
    const std::int64_t n = parse_int(token.substr(1), line);
    if (n < 0 || n >= static_cast<std::int64_t>(kNumRegs)) {
      throw AsmError(line, "no such register '" + token + "'");
    }
    return static_cast<std::uint8_t>(n);
  }

  /// An immediate operand may be a literal or a label reference.
  void set_imm(Pending& pending, const std::string& token, std::size_t line) {
    if (std::isdigit(static_cast<unsigned char>(token[0])) || token[0] == '-') {
      pending.instr.imm = static_cast<std::int32_t>(parse_int(token, line));
    } else {
      pending.label_imm = token;
    }
  }

  void emit(const std::string& mnemonic, const std::vector<std::string>& ops,
            std::size_t line) {
    Pending pending;
    pending.line = line;
    Instr& instr = pending.instr;

    const auto reg = [&](std::size_t i) {
      return parse_reg(expect(ops, i, line, "register"), line);
    };
    const auto imm_at = [&](std::size_t i) {
      set_imm(pending, expect(ops, i, line, "immediate"), line);
    };

    if (mnemonic == "nop") {
      instr.op = Opcode::Nop;
    } else if (mnemonic == "halt") {
      instr.op = Opcode::Halt;
    } else if (mnemonic == "loadi") {
      instr.op = Opcode::LoadI;
      instr.rd = reg(0);
      imm_at(1);
    } else if (mnemonic == "mov") {
      instr.op = Opcode::Mov;
      instr.rd = reg(0);
      instr.ra = reg(1);
    } else if (mnemonic == "add" || mnemonic == "sub" || mnemonic == "mul" ||
               mnemonic == "div" || mnemonic == "and" || mnemonic == "or" ||
               mnemonic == "xor") {
      instr.op = mnemonic == "add"   ? Opcode::Add
                 : mnemonic == "sub" ? Opcode::Sub
                 : mnemonic == "mul" ? Opcode::Mul
                 : mnemonic == "div" ? Opcode::Div
                 : mnemonic == "and" ? Opcode::And
                 : mnemonic == "or"  ? Opcode::Or
                                     : Opcode::Xor;
      instr.rd = reg(0);
      instr.ra = reg(1);
      instr.rb = reg(2);
    } else if (mnemonic == "addi") {
      instr.op = Opcode::AddI;
      instr.rd = reg(0);
      instr.ra = reg(1);
      imm_at(2);
    } else if (mnemonic == "shl" || mnemonic == "shr") {
      instr.op = mnemonic == "shl" ? Opcode::Shl : Opcode::Shr;
      instr.rd = reg(0);
      instr.ra = reg(1);
      imm_at(2);
    } else if (mnemonic == "ld") {
      instr.op = Opcode::Ld;
      instr.rd = reg(0);
      instr.ra = reg(1);
      imm_at(2);
    } else if (mnemonic == "st") {
      instr.op = Opcode::St;
      instr.ra = reg(0);
      imm_at(1);
      instr.rb = reg(2);
    } else if (mnemonic == "rand") {
      instr.op = Opcode::Rand;
      instr.rd = reg(0);
      imm_at(1);
    } else if (mnemonic == "emit") {
      instr.op = Opcode::Emit;
      imm_at(0);
      instr.rd = ops.size() > 1 ? reg(1) : 0;
    } else if (mnemonic == "sleepr") {
      instr.op = Opcode::SleepR;
      instr.ra = reg(0);
    } else if (mnemonic == "jmp") {
      instr.op = Opcode::Jmp;
      imm_at(0);
    } else if (mnemonic == "beq" || mnemonic == "bne" || mnemonic == "blt" ||
               mnemonic == "bge") {
      instr.op = mnemonic == "beq"   ? Opcode::Beq
                 : mnemonic == "bne" ? Opcode::Bne
                 : mnemonic == "blt" ? Opcode::Blt
                                     : Opcode::Bge;
      instr.ra = reg(0);
      instr.rb = reg(1);
      imm_at(2);
    } else if (mnemonic == "call") {
      instr.op = Opcode::Call;
      imm_at(0);
    } else if (mnemonic == "icall") {
      instr.op = Opcode::ICall;
      instr.ra = reg(0);
    } else if (mnemonic == "ret") {
      instr.op = Opcode::Ret;
    } else if (mnemonic == "db.alloc") {
      instr.op = Opcode::DbAlloc;
      instr.rd = reg(0);
      instr.ra = reg(1);
      instr.rb = reg(2);
    } else if (mnemonic == "db.free") {
      instr.op = Opcode::DbFree;
      instr.ra = reg(0);
      instr.rb = reg(1);
    } else if (mnemonic == "db.readfld") {
      instr.op = Opcode::DbReadFld;
      instr.rd = reg(0);
      instr.ra = reg(1);
      instr.rb = reg(2);
      imm_at(3);
    } else if (mnemonic == "db.writefld") {
      instr.op = Opcode::DbWriteFld;
      instr.rd = reg(0);
      instr.ra = reg(1);
      instr.rb = reg(2);
      imm_at(3);
    } else if (mnemonic == "db.move") {
      instr.op = Opcode::DbMove;
      instr.ra = reg(0);
      instr.rb = reg(1);
      imm_at(2);
    } else if (mnemonic == "db.txnbegin") {
      instr.op = Opcode::DbTxnBegin;
      instr.ra = reg(0);
    } else if (mnemonic == "db.txnend") {
      instr.op = Opcode::DbTxnEnd;
      instr.ra = reg(0);
    } else {
      throw AsmError(line, "unknown mnemonic '" + mnemonic + "'");
    }
    words_.push_back(std::move(pending));
  }

  Program finish() {
    Program program;
    program.data_words = data_words_;
    program.text.reserve(words_.size());
    for (auto& pending : words_) {
      if (!pending.label_imm.empty()) {
        const auto it = labels_.find(pending.label_imm);
        if (it == labels_.end()) {
          throw AsmError(pending.line,
                         "undefined label '" + pending.label_imm + "'");
        }
        pending.instr.imm = static_cast<std::int32_t>(it->second);
      }
      program.text.push_back(encode(pending.instr));
    }
    return program;
  }

  std::vector<Pending> words_;
  std::unordered_map<std::string, std::uint32_t> labels_;
  std::uint32_t data_words_ = 256;
};

}  // namespace

Program assemble(std::string_view source) {
  Assembler assembler;
  return assembler.run(source);
}

namespace {

void append(std::string& out, const char* mnemonic,
            std::initializer_list<std::string> operands) {
  out += "    ";
  out += mnemonic;
  bool first = true;
  for (const auto& operand : operands) {
    out += first ? " " : ", ";
    out += operand;
    first = false;
  }
  out += '\n';
}

std::string reg(std::uint8_t r) { return "r" + std::to_string(r); }
std::string imm(std::int32_t v) { return std::to_string(v); }

}  // namespace

std::string format_asm(const Program& program) {
  // Label every CFI target so the output is position-independent text.
  std::vector<bool> labelled(program.size(), false);
  for (std::uint32_t pc = 0; pc < program.size(); ++pc) {
    const Instr instr = decode(program.text[pc]);
    if (!opcode_defined(static_cast<std::uint8_t>(instr.op))) {
      continue;
    }
    const bool targets_imm = instr.op == Opcode::Jmp || instr.op == Opcode::Call ||
                             is_branch(instr.op);
    if (targets_imm) {
      const auto target = static_cast<std::uint32_t>(instr.imm);
      if (target < program.size()) {
        labelled[target] = true;
      }
    }
  }
  const auto target_ref = [&](std::int32_t value) -> std::string {
    const auto target = static_cast<std::uint32_t>(value);
    if (target < program.size() && labelled[target]) {
      return "L" + std::to_string(target);
    }
    return imm(value);
  };

  std::string out;
  if (program.data_words != 256) {
    out += "    .data " + std::to_string(program.data_words) + '\n';
  }
  for (std::uint32_t pc = 0; pc < program.size(); ++pc) {
    if (labelled[pc]) {
      out += "L" + std::to_string(pc) + ":\n";
    }
    const Instr i = decode(program.text[pc]);
    switch (i.op) {
      case Opcode::Nop: append(out, "nop", {}); break;
      case Opcode::Halt: append(out, "halt", {}); break;
      case Opcode::LoadI: append(out, "loadi", {reg(i.rd), imm(i.imm)}); break;
      case Opcode::Mov: append(out, "mov", {reg(i.rd), reg(i.ra)}); break;
      case Opcode::Add: append(out, "add", {reg(i.rd), reg(i.ra), reg(i.rb)}); break;
      case Opcode::AddI: append(out, "addi", {reg(i.rd), reg(i.ra), imm(i.imm)}); break;
      case Opcode::Sub: append(out, "sub", {reg(i.rd), reg(i.ra), reg(i.rb)}); break;
      case Opcode::Mul: append(out, "mul", {reg(i.rd), reg(i.ra), reg(i.rb)}); break;
      case Opcode::Div: append(out, "div", {reg(i.rd), reg(i.ra), reg(i.rb)}); break;
      case Opcode::And: append(out, "and", {reg(i.rd), reg(i.ra), reg(i.rb)}); break;
      case Opcode::Or: append(out, "or", {reg(i.rd), reg(i.ra), reg(i.rb)}); break;
      case Opcode::Xor: append(out, "xor", {reg(i.rd), reg(i.ra), reg(i.rb)}); break;
      case Opcode::Shl: append(out, "shl", {reg(i.rd), reg(i.ra), imm(i.imm)}); break;
      case Opcode::Shr: append(out, "shr", {reg(i.rd), reg(i.ra), imm(i.imm)}); break;
      case Opcode::Ld: append(out, "ld", {reg(i.rd), reg(i.ra), imm(i.imm)}); break;
      case Opcode::St: append(out, "st", {reg(i.ra), imm(i.imm), reg(i.rb)}); break;
      case Opcode::Rand: append(out, "rand", {reg(i.rd), imm(i.imm)}); break;
      case Opcode::Emit: append(out, "emit", {imm(i.imm), reg(i.rd)}); break;
      case Opcode::SleepR: append(out, "sleepr", {reg(i.ra)}); break;
      case Opcode::Jmp: append(out, "jmp", {target_ref(i.imm)}); break;
      case Opcode::Beq:
        append(out, "beq", {reg(i.ra), reg(i.rb), target_ref(i.imm)});
        break;
      case Opcode::Bne:
        append(out, "bne", {reg(i.ra), reg(i.rb), target_ref(i.imm)});
        break;
      case Opcode::Blt:
        append(out, "blt", {reg(i.ra), reg(i.rb), target_ref(i.imm)});
        break;
      case Opcode::Bge:
        append(out, "bge", {reg(i.ra), reg(i.rb), target_ref(i.imm)});
        break;
      case Opcode::Call: append(out, "call", {target_ref(i.imm)}); break;
      case Opcode::ICall: append(out, "icall", {reg(i.ra)}); break;
      case Opcode::Ret: append(out, "ret", {}); break;
      case Opcode::DbAlloc:
        append(out, "db.alloc", {reg(i.rd), reg(i.ra), reg(i.rb)});
        break;
      case Opcode::DbFree: append(out, "db.free", {reg(i.ra), reg(i.rb)}); break;
      case Opcode::DbReadFld:
        append(out, "db.readfld", {reg(i.rd), reg(i.ra), reg(i.rb), imm(i.imm)});
        break;
      case Opcode::DbWriteFld:
        append(out, "db.writefld", {reg(i.rd), reg(i.ra), reg(i.rb), imm(i.imm)});
        break;
      case Opcode::DbMove:
        append(out, "db.move", {reg(i.ra), reg(i.rb), imm(i.imm)});
        break;
      case Opcode::DbTxnBegin: append(out, "db.txnbegin", {reg(i.ra)}); break;
      case Opcode::DbTxnEnd: append(out, "db.txnend", {reg(i.ra)}); break;
      default:
        out += "    .pad 1\n";  // undefined word (padding)
        break;
    }
  }
  return out;
}

}  // namespace wtc::vm
