// Label-based program builder (the "assembler" for MiniVM).
//
// The call-processing client's per-call logic is written against this
// builder; forward label references are fixed up at build() time, the way
// an assembler resolves symbols.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "vm/program.hpp"

namespace wtc::vm {

class ProgramBuilder {
 public:
  /// Defines `name` at the current position. A label may be defined once.
  ProgramBuilder& label(const std::string& name);

  // --- straight-line instructions ---
  ProgramBuilder& nop();
  ProgramBuilder& halt();
  ProgramBuilder& loadi(std::uint8_t rd, std::int32_t imm);
  ProgramBuilder& mov(std::uint8_t rd, std::uint8_t ra);
  ProgramBuilder& add(std::uint8_t rd, std::uint8_t ra, std::uint8_t rb);
  ProgramBuilder& addi(std::uint8_t rd, std::uint8_t ra, std::int32_t imm);
  ProgramBuilder& sub(std::uint8_t rd, std::uint8_t ra, std::uint8_t rb);
  ProgramBuilder& mul(std::uint8_t rd, std::uint8_t ra, std::uint8_t rb);
  ProgramBuilder& div(std::uint8_t rd, std::uint8_t ra, std::uint8_t rb);
  ProgramBuilder& and_(std::uint8_t rd, std::uint8_t ra, std::uint8_t rb);
  ProgramBuilder& or_(std::uint8_t rd, std::uint8_t ra, std::uint8_t rb);
  ProgramBuilder& xor_(std::uint8_t rd, std::uint8_t ra, std::uint8_t rb);
  ProgramBuilder& shl(std::uint8_t rd, std::uint8_t ra, std::int32_t imm);
  ProgramBuilder& shr(std::uint8_t rd, std::uint8_t ra, std::int32_t imm);
  ProgramBuilder& ld(std::uint8_t rd, std::uint8_t ra, std::int32_t imm);
  ProgramBuilder& st(std::uint8_t ra, std::int32_t imm, std::uint8_t rb);
  ProgramBuilder& rand(std::uint8_t rd, std::int32_t bound);
  ProgramBuilder& emit(std::int32_t code, std::uint8_t value_reg = 0);
  ProgramBuilder& sleepr(std::uint8_t ra);

  // --- control flow (targets are labels) ---
  ProgramBuilder& jmp(const std::string& target);
  ProgramBuilder& beq(std::uint8_t ra, std::uint8_t rb, const std::string& target);
  ProgramBuilder& bne(std::uint8_t ra, std::uint8_t rb, const std::string& target);
  ProgramBuilder& blt(std::uint8_t ra, std::uint8_t rb, const std::string& target);
  ProgramBuilder& bge(std::uint8_t ra, std::uint8_t rb, const std::string& target);
  ProgramBuilder& call(const std::string& target);
  ProgramBuilder& icall(std::uint8_t ra);
  ProgramBuilder& ret();

  /// Loads the address of `target` into `rd` (for icall dispatch tables).
  ProgramBuilder& load_label(std::uint8_t rd, const std::string& target);

  /// Emits `count` words of inter-function padding (undefined opcodes, the
  /// analog of alignment padding / data in a real text segment): control
  /// transferred into padding traps immediately.
  ProgramBuilder& pad(std::uint32_t count);

  /// Emits a raw instruction word (tests / padding).
  ProgramBuilder& raw(std::uint64_t word);

  // --- database ops ---
  ProgramBuilder& db_alloc(std::uint8_t rd, std::uint8_t table_reg,
                           std::uint8_t group_reg);
  ProgramBuilder& db_free(std::uint8_t table_reg, std::uint8_t record_reg);
  ProgramBuilder& db_read_fld(std::uint8_t rd, std::uint8_t table_reg,
                              std::uint8_t record_reg, std::int32_t field);
  ProgramBuilder& db_write_fld(std::uint8_t value_reg, std::uint8_t table_reg,
                               std::uint8_t record_reg, std::int32_t field);
  ProgramBuilder& db_move(std::uint8_t table_reg, std::uint8_t record_reg,
                          std::int32_t group);
  ProgramBuilder& db_txn_begin(std::uint8_t table_reg);
  ProgramBuilder& db_txn_end(std::uint8_t table_reg);

  [[nodiscard]] std::uint32_t here() const noexcept {
    return static_cast<std::uint32_t>(text_.size());
  }

  /// Resolves all label references and returns the program.
  /// Throws std::logic_error on undefined or duplicate labels.
  [[nodiscard]] Program build(std::uint32_t data_words = 256) &&;

 private:
  ProgramBuilder& push(Instr instr);
  ProgramBuilder& push_labelled(Instr instr, const std::string& target);

  std::vector<std::uint64_t> text_;
  std::unordered_map<std::string, std::uint32_t> labels_;
  std::vector<std::pair<std::uint32_t, std::string>> fixups_;  // (pc, label)
};

}  // namespace wtc::vm
