// MiniVM interpreter: threads, traps, DB bindings, and injection hooks.
//
// A VmProcess models one multi-threaded client process: all threads share
// one *live* text segment (so one injected instruction error can be
// activated by several threads, §6.1.2) and one database connection. The
// pristine program is kept separately — it is what the PECOS instrumenter
// analyzed and what the injector restores after the error window.
//
// Traps map to the paper's Solaris signals: IllegalOpcode/IllegalOperand/
// PcOutOfBounds/MemOutOfBounds/DivByZero/RetUnderflow/StackOverflow are
// "system detection" (SIGILL/SIGSEGV/SIGBUS/SIGFPE -> client crash);
// PecosViolation is the divide-by-zero the Assertion Block raises on
// purpose, routed to the PECOS handler which terminates only the offending
// thread (§6.1).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "db/api.hpp"
#include "sim/time.hpp"
#include "vm/program.hpp"

namespace wtc::vm {

enum class Trap : std::uint8_t {
  None = 0,
  IllegalOpcode,   ///< undefined opcode byte (SIGILL analog)
  IllegalOperand,  ///< register index >= kNumRegs, or a table/field id
                   ///< operand outside the schema's 16-bit id space
                   ///< (SIGILL analog)
  PcOutOfBounds,   ///< control transferred outside the text segment (SIGSEGV)
  MemOutOfBounds,  ///< data access outside the thread's memory (SIGSEGV)
  DivByZero,       ///< genuine divide-by-zero (SIGFPE)
  RetUnderflow,    ///< ret with empty call stack (SIGSEGV analog)
  StackOverflow,   ///< call depth exceeded (SIGSEGV analog)
  PecosViolation,  ///< Assertion Block fired (intentional SIGFPE, §6.1)
};

[[nodiscard]] std::string_view to_string(Trap trap) noexcept;

enum class ThreadState : std::uint8_t {
  Runnable = 0,
  Sleeping,    ///< SleepR executed; wake at VmThread::wake_time
  Halted,      ///< Halt executed (normal completion)
  Trapped,     ///< trap raised; Trap tells which
  Terminated,  ///< killed externally (PECOS recovery / process crash)
};

/// Client-visible side channel: Emit instructions append here. The
/// experiment harness reads it for "completed successfully" messages and
/// golden-compare mismatch reports (Figure 8 steps 5-6).
struct EmitRecord {
  std::uint32_t thread = 0;
  std::int32_t code = 0;
  std::int32_t value = 0;
  sim::Time time = 0;  ///< quantum start time (approximate)
};

class VmProcess;

/// One simulated client thread.
class VmThread {
 public:
  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] std::uint32_t pc() const noexcept { return pc_; }
  [[nodiscard]] ThreadState state() const noexcept { return state_; }
  [[nodiscard]] Trap trap() const noexcept { return trap_; }
  [[nodiscard]] sim::Time wake_time() const noexcept { return wake_time_; }
  [[nodiscard]] std::int32_t reg(unsigned r) const { return regs_.at(r); }
  [[nodiscard]] const std::vector<std::uint32_t>& ret_stack() const noexcept {
    return ret_stack_;
  }
  [[nodiscard]] std::uint64_t instructions_retired() const noexcept {
    return instructions_;
  }

  void set_reg(unsigned r, std::int32_t v) { regs_.at(r) = v; }

 private:
  friend class VmProcess;
  std::uint32_t id_ = 0;
  std::uint32_t pc_ = 0;
  ThreadState state_ = ThreadState::Runnable;
  Trap trap_ = Trap::None;
  sim::Time wake_time_ = 0;
  std::array<std::int32_t, kNumRegs> regs_{};
  std::vector<std::int32_t> data_;
  std::vector<std::uint32_t> ret_stack_;
  std::uint64_t instructions_ = 0;
};

/// Execution monitor hook — the seam where PECOS attaches (the runtime
/// half of the Assertion Blocks). Kept abstract so the VM has no
/// dependency on the checking policy.
class ExecMonitor {
 public:
  virtual ~ExecMonitor() = default;
  /// Called before the fetched `word` at `pc` executes. Returning true
  /// raises Trap::PecosViolation *instead of executing* — the preemptive
  /// property: the erroneous jump never retires.
  virtual bool before_execute(const VmThread& thread, std::uint32_t pc,
                              std::uint64_t word) = 0;
  /// Called after an instruction retires; `next_pc` is where control went.
  virtual void after_execute(const VmThread& thread, std::uint32_t pc,
                             std::uint64_t word, std::uint32_t next_pc) = 0;
  /// Called when a thread is spawned or reset.
  virtual void on_thread_start(std::uint32_t thread_id, std::uint32_t entry) = 0;
  /// Called after a retired instruction transferred control somewhere other
  /// than the fall-through (`to_pc != from_pc + 1`). `now` is the quantum
  /// start time. Default: ignore — only CF-logging monitors override this.
  virtual void on_control_transfer(const VmThread& thread, std::uint32_t from_pc,
                                   std::uint64_t word, std::uint32_t to_pc,
                                   sim::Time now) {
    (void)thread;
    (void)from_pc;
    (void)word;
    (void)to_pc;
    (void)now;
  }
};

/// Result of one scheduling quantum.
struct QuantumResult {
  std::uint32_t instructions = 0;
  sim::Duration time_cost = 0;  ///< instruction time + DB op time
};

/// Per-process execution configuration.
struct VmConfig {
  std::uint32_t quantum = 50;         ///< max instructions per scheduling slice
  sim::Duration instr_cost = 1;       ///< microseconds per instruction
  std::uint32_t max_call_depth = 256;
};

class VmProcess {
 public:
  /// `pristine` is copied; the live text can then be mutated by the
  /// injector while the pristine copy stays authoritative.
  VmProcess(Program pristine, db::DbApi& api, common::Rng rng, VmConfig config = {});

  [[nodiscard]] const Program& pristine() const noexcept { return pristine_; }
  [[nodiscard]] std::vector<std::uint64_t>& live_text() noexcept { return text_; }
  [[nodiscard]] const std::vector<std::uint64_t>& live_text() const noexcept {
    return text_;
  }

  /// Spawns a thread at `entry`; returns its index.
  std::uint32_t spawn_thread(std::uint32_t entry);
  [[nodiscard]] std::size_t thread_count() const noexcept { return threads_.size(); }
  [[nodiscard]] VmThread& thread(std::uint32_t i) { return threads_.at(i); }
  [[nodiscard]] const VmThread& thread(std::uint32_t i) const { return threads_.at(i); }

  void set_monitor(ExecMonitor* monitor) noexcept { monitor_ = monitor; }

  // --- injection hooks ---
  /// Fires `on_hit(thread)` when any thread is about to execute `pc`
  /// (before the monitor sees the fetch). One-shot: cleared on fire.
  void set_breakpoint(std::uint32_t pc, std::function<void(std::uint32_t)> on_hit);
  [[nodiscard]] bool breakpoint_armed() const noexcept { return breakpoint_.has_value(); }

  /// ADDIF model: while armed, a fetch at `pc` reads text[pc ^ xor_mask]
  /// instead (an address-line error during instruction fetch).
  void arm_fetch_redirect(std::uint32_t pc, std::uint32_t xor_mask);
  void disarm_fetch_redirect() noexcept { redirect_.reset(); }

  /// Counts fetches at `pc` (activation tracking for the injector).
  void set_fetch_watch(std::uint32_t pc) noexcept {
    watch_pc_ = pc;
    watch_hits_ = 0;
  }
  [[nodiscard]] std::uint64_t fetch_watch_hits() const noexcept { return watch_hits_; }

  /// Executes up to `quantum` instructions of thread `i` starting at
  /// virtual time `now`. Stops early on sleep, halt, trap, or termination.
  QuantumResult run_quantum(std::uint32_t i, sim::Time now);

  /// Marks thread `i` Terminated (PECOS graceful recovery / process kill).
  void terminate_thread(std::uint32_t i);

  /// Resets thread `i` to a clean start at `entry`: registers, data
  /// segment, call stack, and trap state are reinitialised and the monitor
  /// is told the thread (re)started. Used by the healing sequence.
  void reset_thread(std::uint32_t i, std::uint32_t entry);

  /// Restores the live text segment from the pristine program (the golden
  /// copy of the code) — part of healing after an injected text error.
  void restore_text_from_pristine();

  /// True if any thread is Runnable or has a Sleeping wake before `horizon`.
  [[nodiscard]] bool any_live(sim::Time horizon) const noexcept;

  [[nodiscard]] const std::vector<EmitRecord>& emits() const noexcept { return emits_; }
  [[nodiscard]] std::uint64_t total_instructions() const noexcept { return total_instr_; }
  [[nodiscard]] db::DbApi& api() noexcept { return api_; }

 private:
  struct Redirect {
    std::uint32_t pc;
    std::uint32_t mask;
  };
  struct Breakpoint {
    std::uint32_t pc;
    std::function<void(std::uint32_t)> on_hit;
  };

  /// Executes one decoded instruction; returns extra time cost (DB ops).
  sim::Duration execute(VmThread& thread, const Instr& instr, sim::Time now);
  void raise(VmThread& thread, Trap trap) noexcept;

  Program pristine_;
  std::vector<std::uint64_t> text_;
  db::DbApi& api_;
  common::Rng rng_;
  VmConfig config_;
  std::vector<VmThread> threads_;
  ExecMonitor* monitor_ = nullptr;
  std::optional<Redirect> redirect_;
  std::optional<Breakpoint> breakpoint_;
  std::uint32_t watch_pc_ = 0xFFFFFFFFu;
  std::uint64_t watch_hits_ = 0;
  std::vector<EmitRecord> emits_;
  std::uint64_t total_instr_ = 0;
};

}  // namespace wtc::vm
