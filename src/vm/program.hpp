// MiniVM: a small binary-encoded register ISA.
//
// The paper instruments SPARC assembly and injects bit-level errors on the
// address/data lines of instruction fetch (error models of Table 6). To
// reproduce that without SPARC hardware, the call-processing client is
// compiled to this ISA: 64-bit instruction words whose opcode and operand
// bits can be flipped individually, yielding the same manifestation
// classes — illegal opcodes (-> crash signal), altered operands (-> data
// errors), and altered control-flow targets (-> control flow errors that
// PECOS must catch preemptively).
//
// Word layout (little-endian within the u64):
//   bits  0..7   opcode
//   bits  8..15  rd   (destination register)
//   bits 16..23  ra   (source register 1)
//   bits 24..31  rb   (source register 2)
//   bits 32..63  imm  (signed 32-bit immediate)
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace wtc::vm {

inline constexpr unsigned kNumRegs = 16;
/// DB operations leave their wtc::db::Status in this register.
inline constexpr std::uint8_t kDbStatusReg = 13;

enum class Opcode : std::uint8_t {
  Nop = 0,
  Halt = 1,
  LoadI = 2,   ///< rd = imm
  Mov = 3,     ///< rd = ra
  Add = 4,     ///< rd = ra + rb
  AddI = 5,    ///< rd = ra + imm
  Sub = 6,     ///< rd = ra - rb
  Mul = 7,     ///< rd = ra * rb
  Div = 8,     ///< rd = ra / rb; rb == 0 traps DivByZero
  And = 9,
  Or = 10,
  Xor = 11,
  Shl = 12,  ///< rd = ra << (imm & 31)
  Shr = 13,  ///< rd = ra >> (imm & 31), logical
  Ld = 14,   ///< rd = data[ra + imm]
  St = 15,   ///< data[ra + imm] = rb
  Rand = 16,    ///< rd = uniform[0, imm)
  Emit = 17,    ///< append (imm, regs[rd]) to the process emit trace
  SleepR = 18,  ///< thread sleeps regs[ra] microseconds of virtual time

  // --- control flow instructions (CFIs) ---
  Jmp = 24,    ///< pc = imm
  Beq = 25,    ///< if ra == rb: pc = imm
  Bne = 26,    ///< if ra != rb: pc = imm
  Blt = 27,    ///< if ra <  rb (signed): pc = imm
  Bge = 28,    ///< if ra >= rb (signed): pc = imm
  Call = 29,   ///< push pc+1; pc = imm
  ICall = 30,  ///< push pc+1; pc = regs[ra]  (dynamic dispatch analog)
  Ret = 31,    ///< pc = pop()

  // --- database API bindings (the client is a database client, §3.1.1) ---
  DbAlloc = 40,     ///< rd = alloc_rec(table=regs[ra], group=regs[rb])
  DbFree = 41,      ///< free_rec(table=regs[ra], record=regs[rb])
  DbReadFld = 42,   ///< rd = read_fld(table=regs[ra], record=regs[rb], field=imm)
  DbWriteFld = 43,  ///< write_fld(table=regs[ra], record=regs[rb], field=imm, value=regs[rd])
  DbMove = 44,      ///< move_rec(table=regs[ra], record=regs[rb], group=imm)
  DbTxnBegin = 45,  ///< txn_begin(table=regs[ra])
  DbTxnEnd = 46,    ///< txn_end(table=regs[ra])
};

/// Decoded instruction.
struct Instr {
  Opcode op = Opcode::Nop;
  std::uint8_t rd = 0;
  std::uint8_t ra = 0;
  std::uint8_t rb = 0;
  std::int32_t imm = 0;
};

[[nodiscard]] constexpr std::uint64_t encode(const Instr& instr) noexcept {
  return static_cast<std::uint64_t>(static_cast<std::uint8_t>(instr.op)) |
         (static_cast<std::uint64_t>(instr.rd) << 8) |
         (static_cast<std::uint64_t>(instr.ra) << 16) |
         (static_cast<std::uint64_t>(instr.rb) << 24) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(instr.imm)) << 32);
}

[[nodiscard]] constexpr Instr decode(std::uint64_t word) noexcept {
  Instr instr;
  instr.op = static_cast<Opcode>(word & 0xFFu);
  instr.rd = static_cast<std::uint8_t>((word >> 8) & 0xFFu);
  instr.ra = static_cast<std::uint8_t>((word >> 16) & 0xFFu);
  instr.rb = static_cast<std::uint8_t>((word >> 24) & 0xFFu);
  instr.imm = static_cast<std::int32_t>(static_cast<std::uint32_t>(word >> 32));
  return instr;
}

/// True for opcode values that decode to a defined instruction.
[[nodiscard]] bool opcode_defined(std::uint8_t op) noexcept;

/// True if `op` is a control flow instruction.
[[nodiscard]] constexpr bool is_cfi(Opcode op) noexcept {
  const auto v = static_cast<std::uint8_t>(op);
  return v >= static_cast<std::uint8_t>(Opcode::Jmp) &&
         v <= static_cast<std::uint8_t>(Opcode::Ret);
}

/// True if `op` is a conditional branch (two static targets).
[[nodiscard]] constexpr bool is_branch(Opcode op) noexcept {
  const auto v = static_cast<std::uint8_t>(op);
  return v >= static_cast<std::uint8_t>(Opcode::Beq) &&
         v <= static_cast<std::uint8_t>(Opcode::Bge);
}

[[nodiscard]] std::string_view mnemonic(Opcode op) noexcept;

/// An assembled program: shared text segment plus metadata. Threads of a
/// VmProcess share the text, which is why one injected instruction error
/// can be activated by several threads (§6.1.2).
struct Program {
  std::vector<std::uint64_t> text;
  std::uint32_t entry = 0;
  std::uint32_t data_words = 256;  ///< per-thread data memory size

  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(text.size());
  }
};

/// Human-readable disassembly of one instruction (debugging / examples).
[[nodiscard]] std::string disassemble(std::uint64_t word);

/// Disassembles a whole program, one line per instruction.
[[nodiscard]] std::string disassemble(const Program& program);

}  // namespace wtc::vm
