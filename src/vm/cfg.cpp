#include "vm/cfg.hpp"

#include <algorithm>

namespace wtc::vm {

Cfg Cfg::analyze(const Program& program) {
  Cfg cfg;
  std::vector<std::uint32_t> leaders;
  leaders.push_back(program.entry);

  const auto note_leader = [&](std::uint32_t pc) {
    if (pc < program.size()) {
      leaders.push_back(pc);
    }
  };

  // Pass 1: find CFIs and leaders.
  for (std::uint32_t pc = 0; pc < program.size(); ++pc) {
    const Instr instr = decode(program.text[pc]);
    if (!is_cfi(instr.op)) {
      continue;
    }
    CfiInfo info;
    info.site = pc;
    switch (instr.op) {
      case Opcode::Jmp:
        info.kind = CfiKind::Jump;
        info.static_targets = {static_cast<std::uint32_t>(instr.imm)};
        break;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        info.kind = CfiKind::Branch;
        info.static_targets = {static_cast<std::uint32_t>(instr.imm), pc + 1};
        break;
      case Opcode::Call:
        info.kind = CfiKind::Call;
        info.static_targets = {static_cast<std::uint32_t>(instr.imm)};
        break;
      case Opcode::ICall:
        info.kind = CfiKind::IndirectCall;
        info.icall_reg = instr.ra;
        break;
      case Opcode::Ret:
        info.kind = CfiKind::Ret;
        break;
      default:
        break;
    }
    for (const std::uint32_t target : info.static_targets) {
      note_leader(target);
    }
    note_leader(pc + 1);  // instruction after a CFI starts a block
    // Calls return: the instruction after a Call/ICall is a leader (added
    // above); the callee entry for ICall is unknown statically.
    cfg.cfis_.emplace(pc, std::move(info));
  }

  std::sort(leaders.begin(), leaders.end());
  leaders.erase(std::unique(leaders.begin(), leaders.end()), leaders.end());
  cfg.leaders_ = std::move(leaders);

  // Pass 2: assign each CFI its containing block's leader.
  for (auto& [pc, info] : cfg.cfis_) {
    info.block_leader = cfg.leader_of(pc);
  }
  return cfg;
}

std::uint32_t Cfg::leader_of(std::uint32_t pc) const noexcept {
  auto it = std::upper_bound(leaders_.begin(), leaders_.end(), pc);
  return it == leaders_.begin() ? 0 : *(it - 1);
}

bool Cfg::is_leader(std::uint32_t pc) const noexcept {
  return std::binary_search(leaders_.begin(), leaders_.end(), pc);
}

const CfiInfo* Cfg::cfi_at(std::uint32_t pc) const noexcept {
  auto it = cfis_.find(pc);
  return it == cfis_.end() ? nullptr : &it->second;
}

}  // namespace wtc::vm
