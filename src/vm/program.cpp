#include "vm/program.hpp"

#include <sstream>

namespace wtc::vm {

bool opcode_defined(std::uint8_t op) noexcept {
  switch (static_cast<Opcode>(op)) {
    case Opcode::Nop:
    case Opcode::Halt:
    case Opcode::LoadI:
    case Opcode::Mov:
    case Opcode::Add:
    case Opcode::AddI:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::Ld:
    case Opcode::St:
    case Opcode::Rand:
    case Opcode::Emit:
    case Opcode::SleepR:
    case Opcode::Jmp:
    case Opcode::Beq:
    case Opcode::Bne:
    case Opcode::Blt:
    case Opcode::Bge:
    case Opcode::Call:
    case Opcode::ICall:
    case Opcode::Ret:
    case Opcode::DbAlloc:
    case Opcode::DbFree:
    case Opcode::DbReadFld:
    case Opcode::DbWriteFld:
    case Opcode::DbMove:
    case Opcode::DbTxnBegin:
    case Opcode::DbTxnEnd:
      return true;
  }
  return false;
}

std::string_view mnemonic(Opcode op) noexcept {
  switch (op) {
    case Opcode::Nop: return "nop";
    case Opcode::Halt: return "halt";
    case Opcode::LoadI: return "loadi";
    case Opcode::Mov: return "mov";
    case Opcode::Add: return "add";
    case Opcode::AddI: return "addi";
    case Opcode::Sub: return "sub";
    case Opcode::Mul: return "mul";
    case Opcode::Div: return "div";
    case Opcode::And: return "and";
    case Opcode::Or: return "or";
    case Opcode::Xor: return "xor";
    case Opcode::Shl: return "shl";
    case Opcode::Shr: return "shr";
    case Opcode::Ld: return "ld";
    case Opcode::St: return "st";
    case Opcode::Rand: return "rand";
    case Opcode::Emit: return "emit";
    case Opcode::SleepR: return "sleepr";
    case Opcode::Jmp: return "jmp";
    case Opcode::Beq: return "beq";
    case Opcode::Bne: return "bne";
    case Opcode::Blt: return "blt";
    case Opcode::Bge: return "bge";
    case Opcode::Call: return "call";
    case Opcode::ICall: return "icall";
    case Opcode::Ret: return "ret";
    case Opcode::DbAlloc: return "db.alloc";
    case Opcode::DbFree: return "db.free";
    case Opcode::DbReadFld: return "db.readfld";
    case Opcode::DbWriteFld: return "db.writefld";
    case Opcode::DbMove: return "db.move";
    case Opcode::DbTxnBegin: return "db.txnbegin";
    case Opcode::DbTxnEnd: return "db.txnend";
  }
  return "ill";
}

std::string disassemble(std::uint64_t word) {
  const Instr instr = decode(word);
  std::ostringstream oss;
  if (!opcode_defined(static_cast<std::uint8_t>(instr.op))) {
    oss << "<illegal 0x" << std::hex << word << ">";
    return oss.str();
  }
  oss << mnemonic(instr.op) << " rd=r" << static_cast<int>(instr.rd) << " ra=r"
      << static_cast<int>(instr.ra) << " rb=r" << static_cast<int>(instr.rb)
      << " imm=" << instr.imm;
  return oss.str();
}

std::string disassemble(const Program& program) {
  std::ostringstream oss;
  for (std::uint32_t pc = 0; pc < program.size(); ++pc) {
    oss << pc << ": " << disassemble(program.text[pc]) << '\n';
  }
  return oss.str();
}

}  // namespace wtc::vm
