#include "vm/builder.hpp"

#include <stdexcept>

namespace wtc::vm {

ProgramBuilder& ProgramBuilder::push(Instr instr) {
  text_.push_back(encode(instr));
  return *this;
}

ProgramBuilder& ProgramBuilder::push_labelled(Instr instr, const std::string& target) {
  fixups_.emplace_back(here(), target);
  return push(instr);
}

ProgramBuilder& ProgramBuilder::label(const std::string& name) {
  if (!labels_.emplace(name, here()).second) {
    throw std::logic_error("duplicate label: " + name);
  }
  return *this;
}

ProgramBuilder& ProgramBuilder::nop() { return push({Opcode::Nop}); }
ProgramBuilder& ProgramBuilder::halt() { return push({Opcode::Halt}); }

ProgramBuilder& ProgramBuilder::loadi(std::uint8_t rd, std::int32_t imm) {
  return push({Opcode::LoadI, rd, 0, 0, imm});
}
ProgramBuilder& ProgramBuilder::mov(std::uint8_t rd, std::uint8_t ra) {
  return push({Opcode::Mov, rd, ra, 0, 0});
}
ProgramBuilder& ProgramBuilder::add(std::uint8_t rd, std::uint8_t ra, std::uint8_t rb) {
  return push({Opcode::Add, rd, ra, rb, 0});
}
ProgramBuilder& ProgramBuilder::addi(std::uint8_t rd, std::uint8_t ra, std::int32_t imm) {
  return push({Opcode::AddI, rd, ra, 0, imm});
}
ProgramBuilder& ProgramBuilder::sub(std::uint8_t rd, std::uint8_t ra, std::uint8_t rb) {
  return push({Opcode::Sub, rd, ra, rb, 0});
}
ProgramBuilder& ProgramBuilder::mul(std::uint8_t rd, std::uint8_t ra, std::uint8_t rb) {
  return push({Opcode::Mul, rd, ra, rb, 0});
}
ProgramBuilder& ProgramBuilder::div(std::uint8_t rd, std::uint8_t ra, std::uint8_t rb) {
  return push({Opcode::Div, rd, ra, rb, 0});
}
ProgramBuilder& ProgramBuilder::and_(std::uint8_t rd, std::uint8_t ra, std::uint8_t rb) {
  return push({Opcode::And, rd, ra, rb, 0});
}
ProgramBuilder& ProgramBuilder::or_(std::uint8_t rd, std::uint8_t ra, std::uint8_t rb) {
  return push({Opcode::Or, rd, ra, rb, 0});
}
ProgramBuilder& ProgramBuilder::xor_(std::uint8_t rd, std::uint8_t ra, std::uint8_t rb) {
  return push({Opcode::Xor, rd, ra, rb, 0});
}
ProgramBuilder& ProgramBuilder::shl(std::uint8_t rd, std::uint8_t ra, std::int32_t imm) {
  return push({Opcode::Shl, rd, ra, 0, imm});
}
ProgramBuilder& ProgramBuilder::shr(std::uint8_t rd, std::uint8_t ra, std::int32_t imm) {
  return push({Opcode::Shr, rd, ra, 0, imm});
}
ProgramBuilder& ProgramBuilder::ld(std::uint8_t rd, std::uint8_t ra, std::int32_t imm) {
  return push({Opcode::Ld, rd, ra, 0, imm});
}
ProgramBuilder& ProgramBuilder::st(std::uint8_t ra, std::int32_t imm, std::uint8_t rb) {
  return push({Opcode::St, 0, ra, rb, imm});
}
ProgramBuilder& ProgramBuilder::rand(std::uint8_t rd, std::int32_t bound) {
  return push({Opcode::Rand, rd, 0, 0, bound});
}
ProgramBuilder& ProgramBuilder::emit(std::int32_t code, std::uint8_t value_reg) {
  return push({Opcode::Emit, value_reg, 0, 0, code});
}
ProgramBuilder& ProgramBuilder::sleepr(std::uint8_t ra) {
  return push({Opcode::SleepR, 0, ra, 0, 0});
}

ProgramBuilder& ProgramBuilder::jmp(const std::string& target) {
  return push_labelled({Opcode::Jmp}, target);
}
ProgramBuilder& ProgramBuilder::beq(std::uint8_t ra, std::uint8_t rb,
                                    const std::string& target) {
  return push_labelled({Opcode::Beq, 0, ra, rb, 0}, target);
}
ProgramBuilder& ProgramBuilder::bne(std::uint8_t ra, std::uint8_t rb,
                                    const std::string& target) {
  return push_labelled({Opcode::Bne, 0, ra, rb, 0}, target);
}
ProgramBuilder& ProgramBuilder::blt(std::uint8_t ra, std::uint8_t rb,
                                    const std::string& target) {
  return push_labelled({Opcode::Blt, 0, ra, rb, 0}, target);
}
ProgramBuilder& ProgramBuilder::bge(std::uint8_t ra, std::uint8_t rb,
                                    const std::string& target) {
  return push_labelled({Opcode::Bge, 0, ra, rb, 0}, target);
}
ProgramBuilder& ProgramBuilder::call(const std::string& target) {
  return push_labelled({Opcode::Call}, target);
}
ProgramBuilder& ProgramBuilder::icall(std::uint8_t ra) {
  return push({Opcode::ICall, 0, ra, 0, 0});
}
ProgramBuilder& ProgramBuilder::ret() { return push({Opcode::Ret}); }

ProgramBuilder& ProgramBuilder::load_label(std::uint8_t rd, const std::string& target) {
  return push_labelled({Opcode::LoadI, rd, 0, 0, 0}, target);
}

ProgramBuilder& ProgramBuilder::pad(std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) {
    text_.push_back(0xEEull);  // undefined opcode
  }
  return *this;
}

ProgramBuilder& ProgramBuilder::raw(std::uint64_t word) {
  text_.push_back(word);
  return *this;
}

ProgramBuilder& ProgramBuilder::db_alloc(std::uint8_t rd, std::uint8_t table_reg,
                                         std::uint8_t group_reg) {
  return push({Opcode::DbAlloc, rd, table_reg, group_reg, 0});
}
ProgramBuilder& ProgramBuilder::db_free(std::uint8_t table_reg,
                                        std::uint8_t record_reg) {
  return push({Opcode::DbFree, 0, table_reg, record_reg, 0});
}
ProgramBuilder& ProgramBuilder::db_read_fld(std::uint8_t rd, std::uint8_t table_reg,
                                            std::uint8_t record_reg,
                                            std::int32_t field) {
  return push({Opcode::DbReadFld, rd, table_reg, record_reg, field});
}
ProgramBuilder& ProgramBuilder::db_write_fld(std::uint8_t value_reg,
                                             std::uint8_t table_reg,
                                             std::uint8_t record_reg,
                                             std::int32_t field) {
  return push({Opcode::DbWriteFld, value_reg, table_reg, record_reg, field});
}
ProgramBuilder& ProgramBuilder::db_move(std::uint8_t table_reg,
                                        std::uint8_t record_reg, std::int32_t group) {
  return push({Opcode::DbMove, 0, table_reg, record_reg, group});
}
ProgramBuilder& ProgramBuilder::db_txn_begin(std::uint8_t table_reg) {
  return push({Opcode::DbTxnBegin, 0, table_reg, 0, 0});
}
ProgramBuilder& ProgramBuilder::db_txn_end(std::uint8_t table_reg) {
  return push({Opcode::DbTxnEnd, 0, table_reg, 0, 0});
}

Program ProgramBuilder::build(std::uint32_t data_words) && {
  for (const auto& [pc, name] : fixups_) {
    const auto it = labels_.find(name);
    if (it == labels_.end()) {
      throw std::logic_error("undefined label: " + name);
    }
    Instr instr = decode(text_[pc]);
    instr.imm = static_cast<std::int32_t>(it->second);
    text_[pc] = encode(instr);
  }
  Program program;
  program.text = std::move(text_);
  program.entry = 0;
  program.data_words = data_words;
  return program;
}

}  // namespace wtc::vm
