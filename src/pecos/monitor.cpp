#include "pecos/monitor.hpp"

#include "obs/metrics.hpp"

namespace wtc::pecos {
namespace {

constexpr std::uint32_t kInvalidTarget = 0xFFFFFFFFu;

/// Computes the address the fetched word will actually transfer control
/// to, using the pre-execution machine state. Non-CFIs "transfer" to the
/// fall-through. Unresolvable cases (illegal operand registers, empty
/// return stack) yield kInvalidTarget, which never matches a valid set.
std::uint32_t extract_xout(const vm::VmThread& thread, std::uint32_t pc,
                           std::uint64_t word) {
  const vm::Instr instr = vm::decode(word);
  if (!vm::opcode_defined(static_cast<std::uint8_t>(instr.op)) ||
      !vm::is_cfi(instr.op)) {
    return pc + 1;
  }
  switch (instr.op) {
    case vm::Opcode::Jmp:
    case vm::Opcode::Call:
      return static_cast<std::uint32_t>(instr.imm);
    case vm::Opcode::Beq:
    case vm::Opcode::Bne:
    case vm::Opcode::Blt:
    case vm::Opcode::Bge: {
      if (instr.ra >= vm::kNumRegs || instr.rb >= vm::kNumRegs) {
        return kInvalidTarget;
      }
      const std::int32_t a = thread.reg(instr.ra);
      const std::int32_t b = thread.reg(instr.rb);
      bool taken = false;
      switch (instr.op) {
        case vm::Opcode::Beq: taken = a == b; break;
        case vm::Opcode::Bne: taken = a != b; break;
        case vm::Opcode::Blt: taken = a < b; break;
        default: taken = a >= b; break;
      }
      return taken ? static_cast<std::uint32_t>(instr.imm) : pc + 1;
    }
    case vm::Opcode::ICall:
      if (instr.ra >= vm::kNumRegs) {
        return kInvalidTarget;
      }
      return static_cast<std::uint32_t>(thread.reg(instr.ra));
    case vm::Opcode::Ret:
      return thread.ret_stack().empty() ? kInvalidTarget
                                        : thread.ret_stack().back();
    default:
      return pc + 1;
  }
}

}  // namespace

void PecosMonitor::on_thread_start(std::uint32_t thread_id, std::uint32_t entry) {
  if (expected_entry_.size() <= thread_id) {
    expected_entry_.resize(thread_id + 1, 0);
  }
  expected_entry_[thread_id] = plan_.cfg().leader_of(entry);
  if (cf_log_ != nullptr) {
    cf_log_->note_thread_start(thread_id, entry, 0);
  }
}

void PecosMonitor::on_control_transfer(const vm::VmThread& thread,
                                       std::uint32_t from_pc, std::uint64_t word,
                                       std::uint32_t to_pc, sim::Time now) {
  (void)word;
  if (cf_log_ == nullptr) {
    return;
  }
  CfTransition entry;
  entry.thread = thread.id();
  entry.from_pc = from_pc;
  entry.to_pc = to_pc;
  entry.time = now;
  cf_log_->record(entry);
}

bool PecosMonitor::assertion_fails(const vm::VmThread& thread, std::uint32_t pc,
                                   std::uint64_t word) {
  const Assertion* assertion = plan_.assertion_at(pc);
  if (assertion == nullptr) {
    return false;
  }
  ++stats_.checks;
  obs::count(obs::Counter::pecos_checks);

  // Block-entry shadow: control must have legitimately entered the block
  // containing this assertion.
  if (thread.id() < expected_entry_.size() &&
      expected_entry_[thread.id()] != assertion->block_leader) {
    ++stats_.violations;
    obs::count(obs::Counter::pecos_violations);
    return true;
  }

  const std::uint32_t xout = extract_xout(thread, pc, word);
  bool valid = false;
  if (assertion->kind == vm::CfiKind::IndirectCall) {
    // Runtime-determined valid target: reread the register the *pristine*
    // instruction names. (The fetched instruction may name another.)
    const std::uint32_t runtime_target =
        static_cast<std::uint32_t>(thread.reg(assertion->icall_reg));
    valid = (xout == runtime_target);
  } else {
    valid = figure7_valid(xout, assertion->valid_targets);
  }
  if (!valid) {
    ++stats_.violations;
    obs::count(obs::Counter::pecos_violations);
    return true;
  }
  return false;
}

bool PecosMonitor::before_execute(const vm::VmThread& thread, std::uint32_t pc,
                                  std::uint64_t word) {
  const bool preempted = assertion_fails(thread, pc, word);
  if (preempted) {
    // The faulty transfer was caught before the instruction executed —
    // the paper's preemptive-detection path, as opposed to a post-check.
    obs::count(obs::Counter::pecos_preemptive_detections);
  }
  return preempted;
}

void PecosMonitor::after_execute(const vm::VmThread& thread, std::uint32_t pc,
                                 std::uint64_t word, std::uint32_t next_pc) {
  // Track legitimate block entries. A transfer is legitimate only if it
  // was (a) the fall-through of a non-CFI, or (b) a CFI that carries an
  // Assertion Block — i.e., it was just validated. A CFI *without* an
  // assertion can only be an instruction corrupted into a CFI; its jump
  // must not update the shadow, so the next assertion's entry check flags
  // the divergence even when the stray jump lands on a block leader.
  const vm::Instr instr = vm::decode(word);
  const bool cfi_word = vm::opcode_defined(static_cast<std::uint8_t>(instr.op)) &&
                        vm::is_cfi(instr.op);
  if (cfi_word && plan_.assertion_at(pc) == nullptr) {
    return;  // unvalidated control transfer: leave the shadow stale
  }
  if (plan_.cfg().is_leader(next_pc) && thread.id() < expected_entry_.size()) {
    expected_entry_[thread.id()] = next_pc;
  }
}

bool PostCheckMonitor::before_execute(const vm::VmThread& thread, std::uint32_t pc,
                                      std::uint64_t word) {
  const std::uint32_t tid = thread.id();
  if (tid < pending_.size() && pending_[tid] != 0) {
    pending_[tid] = 0;
    return true;  // the deferred (non-preemptive) detection fires now
  }
  if (inner_.assertion_fails(thread, pc, word)) {
    if (tid >= pending_.size()) {
      pending_.resize(tid + 1, 0);
    }
    pending_[tid] = 1;  // let the erroneous instruction execute first
  }
  return false;
}

void PostCheckMonitor::after_execute(const vm::VmThread& thread, std::uint32_t pc,
                                     std::uint64_t word, std::uint32_t next_pc) {
  inner_.after_execute(thread, pc, word, next_pc);
}

void PostCheckMonitor::on_control_transfer(const vm::VmThread& thread,
                                           std::uint32_t from_pc,
                                           std::uint64_t word,
                                           std::uint32_t to_pc, sim::Time now) {
  inner_.on_control_transfer(thread, from_pc, word, to_pc, now);
}

void PostCheckMonitor::on_thread_start(std::uint32_t thread_id, std::uint32_t entry) {
  if (pending_.size() <= thread_id) {
    pending_.resize(thread_id + 1, 0);
  }
  pending_[thread_id] = 0;
  inner_.on_thread_start(thread_id, entry);
}

}  // namespace wtc::pecos
