#include "pecos/cf_log.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace wtc::pecos {

CfLog::CfLog(std::uint32_t capacity_per_thread)
    : capacity_(std::max<std::uint32_t>(capacity_per_thread, 2)) {}

CfLog::Ring& CfLog::ring_for(std::uint32_t t) {
  if (rings_.size() <= t) {
    rings_.resize(t + 1);
  }
  Ring& ring = rings_[t];
  if (ring.slots.empty()) {
    ring.slots.resize(capacity_);
  }
  return ring;
}

void CfLog::append(Ring& ring, const CfTransition& entry) {
  if (ring.len == ring.slots.size()) {
    if (overflow_handler_ && !in_overflow_) {
      // Force an early attestation slice instead of dropping: the handler
      // drains this ring, so the append below lands in an empty ring.
      in_overflow_ = true;
      ++overflow_slices_;
      obs::count(obs::Counter::pecos_cf_log_overflow_slices);
      overflow_handler_(entry.thread);
      in_overflow_ = false;
    }
    if (ring.len == ring.slots.size()) {
      // No handler (or it did not drain): evict the oldest entry.
      ring.head = (ring.head + 1) % ring.slots.size();
      --ring.len;
      ++dropped_;
    }
  }
  ring.slots[(ring.head + ring.len) % ring.slots.size()] = entry;
  ++ring.len;
  obs::gauge_max(obs::Gauge::cf_log_max_depth,
                 static_cast<std::uint64_t>(ring.len));
}

void CfLog::record(const CfTransition& entry) {
  ++recorded_;
  obs::count(obs::Counter::pecos_cf_transitions_logged);
  append(ring_for(entry.thread), entry);
}

void CfLog::note_thread_start(std::uint32_t thread, std::uint32_t entry_pc,
                              sim::Time time) {
  CfTransition marker;
  marker.thread = thread;
  marker.from_pc = entry_pc;
  marker.to_pc = entry_pc;
  marker.time = time;
  marker.thread_start = true;
  append(ring_for(thread), marker);
}

std::size_t CfLog::drain(std::uint32_t t, std::vector<CfTransition>& out) {
  if (t >= rings_.size()) {
    return 0;
  }
  Ring& ring = rings_[t];
  const std::size_t n = ring.len;
  out.reserve(out.size() + n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring.slots[(ring.head + i) % ring.slots.size()]);
  }
  ring.head = 0;
  ring.len = 0;
  return n;
}

void CfLog::clear_thread(std::uint32_t t) {
  if (t < rings_.size()) {
    rings_[t].head = 0;
    rings_[t].len = 0;
  }
}

std::size_t CfLog::size(std::uint32_t t) const noexcept {
  return t < rings_.size() ? rings_[t].len : 0;
}

}  // namespace wtc::pecos
