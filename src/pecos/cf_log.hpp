// Bounded per-thread control-flow transition log (the ACFA-style CF log).
//
// The VM's ExecMonitor streams every retired non-fall-through control
// transfer into one ring per thread: `(thread, from_pc, to_pc, sim-time)`.
// The attestation element (audit/cf_attest) drains a thread's ring every
// slice period and validates the transitions against the PECOS plan.
//
// Overflow policy: entries are never dropped. When a ring is full the log
// invokes the registered overflow handler, which forces an *early*
// attestation slice for that thread (draining the ring) before the new
// entry is appended. Only if no handler is registered does the log fall
// back to evicting the oldest entry (and counts the loss).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.hpp"

namespace wtc::pecos {

/// One logged control transfer. `thread_start` entries are resync markers
/// appended when a thread is spawned or restarted at a clean entry; they
/// carry the entry pc in `to_pc` and are not themselves validated.
struct CfTransition {
  std::uint32_t thread = 0;
  std::uint32_t from_pc = 0;
  std::uint32_t to_pc = 0;
  sim::Time time = 0;  ///< quantum start time of the retiring instruction
  bool thread_start = false;
};

class CfLog {
 public:
  explicit CfLog(std::uint32_t capacity_per_thread = 256);

  /// Called with the thread id whose ring just filled up. Expected to
  /// drain that ring (an early attestation slice). Invoked *before* the
  /// overflowing entry is appended, so the entry is never lost.
  void set_overflow_handler(std::function<void(std::uint32_t)> handler) {
    overflow_handler_ = std::move(handler);
  }

  /// Appends a transition to its thread's ring.
  void record(const CfTransition& entry);

  /// Appends a thread-start resync marker (spawn or post-heal restart).
  void note_thread_start(std::uint32_t thread, std::uint32_t entry_pc,
                         sim::Time time);

  /// Drains thread `t`'s ring into `out` in FIFO order; returns the number
  /// of entries moved.
  std::size_t drain(std::uint32_t t, std::vector<CfTransition>& out);

  /// Discards thread `t`'s ring contents (healing: the tail is suspect).
  void clear_thread(std::uint32_t t);

  [[nodiscard]] std::size_t size(std::uint32_t t) const noexcept;
  [[nodiscard]] std::size_t thread_count() const noexcept { return rings_.size(); }
  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  [[nodiscard]] std::uint64_t overflow_slices() const noexcept {
    return overflow_slices_;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  struct Ring {
    std::vector<CfTransition> slots;
    std::size_t head = 0;  // index of oldest entry
    std::size_t len = 0;
  };

  Ring& ring_for(std::uint32_t t);
  void append(Ring& ring, const CfTransition& entry);

  std::uint32_t capacity_;
  std::vector<Ring> rings_;
  std::function<void(std::uint32_t)> overflow_handler_;
  std::uint64_t recorded_ = 0;
  std::uint64_t overflow_slices_ = 0;
  std::uint64_t dropped_ = 0;
  bool in_overflow_ = false;  // re-entrancy guard for the handler
};

}  // namespace wtc::pecos
