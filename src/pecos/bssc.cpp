#include "pecos/bssc.hpp"

#include <algorithm>

namespace wtc::pecos {

BsscPlan BsscPlan::instrument(const vm::Program& program) {
  BsscPlan plan;
  plan.cfg_ = vm::Cfg::analyze(program);
  const auto& leaders = plan.cfg_.leaders();
  for (std::size_t i = 0; i < leaders.size(); ++i) {
    BlockInfo info;
    info.leader = leaders[i];
    info.end = i + 1 < leaders.size() ? leaders[i + 1] : program.size();
    std::uint64_t signature = 0;
    for (std::uint32_t pc = info.leader; pc < info.end; ++pc) {
      signature = combine(signature, program.text[pc]);
    }
    info.golden_signature = signature;
    plan.blocks_.emplace(info.leader, info);
  }
  return plan;
}

void BsscMonitor::on_thread_start(std::uint32_t thread_id, std::uint32_t entry) {
  if (threads_.size() <= thread_id) {
    threads_.resize(thread_id + 1);
  }
  auto& state = threads_[thread_id];
  state = ThreadState{};
  enter_block(state, plan_.cfg().leader_of(entry));
}

void BsscMonitor::enter_block(ThreadState& state, std::uint32_t leader) {
  state.block_leader = leader;
  state.expected_pc = leader;
  state.running = 0;
  state.in_block = true;
}

void BsscMonitor::check_signature(ThreadState& state, std::uint32_t end_pc) {
  (void)end_pc;
  ++checks_;
  const BsscPlan::BlockInfo* block = plan_.block_at(state.block_leader);
  if (block != nullptr && state.running != block->golden_signature) {
    ++violations_;
    state.pending_violation = true;  // fires on the NEXT fetch: post-hoc
  }
  state.in_block = false;
}

bool BsscMonitor::before_execute(const vm::VmThread& thread, std::uint32_t pc,
                                 std::uint64_t word) {
  if (thread.id() >= threads_.size()) {
    return false;
  }
  auto& state = threads_[thread.id()];
  if (state.pending_violation) {
    // The mismatching block has fully executed — detection is late by
    // construction (the scheme's defining weakness versus PECOS).
    state.pending_violation = false;
    return true;
  }

  if (plan_.cfg().is_leader(pc)) {
    // Entering a block at its head (fall-through or a taken transfer).
    enter_block(state, pc);
  } else if (!state.in_block || pc != state.expected_pc) {
    // Control arrived mid-block: accumulate a partial signature that will
    // mismatch the golden one at the block's end marker.
    enter_block(state, plan_.cfg().leader_of(pc));
    state.running = BsscPlan::combine(0, 0xBAD5EEDull);  // poisoned prefix
  }

  // Accumulate the word actually fetched (ADDIF substitutions and DATA*
  // flips all perturb the signature).
  state.running = BsscPlan::combine(state.running, word);
  state.expected_pc = pc + 1;

  const BsscPlan::BlockInfo* block = plan_.block_at(state.block_leader);
  if (block != nullptr && pc + 1 >= block->end) {
    check_signature(state, pc + 1);
  }
  return false;
}

void BsscMonitor::after_execute(const vm::VmThread&, std::uint32_t,
                                std::uint64_t, std::uint32_t) {}

}  // namespace wtc::pecos
