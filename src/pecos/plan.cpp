#include "pecos/plan.hpp"

#include <algorithm>

namespace wtc::pecos {

Plan Plan::instrument(const vm::Program& program) {
  Plan plan;
  plan.cfg_ = vm::Cfg::analyze(program);

  // Return points: instruction after every call-class CFI.
  for (const auto& [site, info] : plan.cfg_.cfis()) {
    if (info.kind == vm::CfiKind::Call || info.kind == vm::CfiKind::IndirectCall) {
      plan.return_points_.push_back(site + 1);
    }
  }
  std::sort(plan.return_points_.begin(), plan.return_points_.end());

  for (const auto& [site, info] : plan.cfg_.cfis()) {
    Assertion assertion;
    assertion.kind = info.kind;
    assertion.site = site;
    assertion.block_leader = info.block_leader;
    assertion.icall_reg = info.icall_reg;
    switch (info.kind) {
      case vm::CfiKind::Jump:
      case vm::CfiKind::Branch:
      case vm::CfiKind::Call:
        assertion.valid_targets = info.static_targets;
        break;
      case vm::CfiKind::Ret:
        assertion.valid_targets = plan.return_points_;
        break;
      case vm::CfiKind::IndirectCall:
        break;  // runtime-computed from icall_reg
    }
    plan.assertions_.emplace(site, std::move(assertion));
  }
  return plan;
}

bool figure7_valid(std::uint32_t xout,
                   const std::vector<std::uint32_t>& targets) noexcept {
  // Literal formulation: P accumulates the product of (Xout - Xi) in
  // wrap-around arithmetic; any exact match zeroes it permanently.
  std::uint64_t product = 1;
  for (const std::uint32_t target : targets) {
    if (xout == target) {
      return true;  // the product is exactly zero: ID = Xout / !0 computes
    }
    product *= (static_cast<std::uint64_t>(xout) - target);
  }
  // No factor was zero, so logically !P == 0 and ID = Xout / 0 would
  // fault. (The wrap-around product is only reported for transparency; a
  // zero here can only come from a genuine match handled above.)
  (void)product;
  return false;
}

}  // namespace wtc::pecos
