// PECOS instrumentation plan — the compile-time half of §6.1.1.
//
// The PECOS parser walks the application's assembly, decomposes it into
// basic blocks, and embeds an Assertion Block before every control flow
// instruction. Here the instrumenter analyzes the pristine MiniVM program
// and produces a plan: for every CFI site, the set of valid target
// addresses (static where known at "compile" time, a runtime recipe for
// indirect calls) plus the containing block's leader for the entry-point
// check. The runtime half (PecosMonitor) evaluates the plan preemptively.
//
// Valid-target cardinality follows the paper: one (jump), two (branch),
// or many (calls/returns — every return point in the program is a valid
// target of a return).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "vm/cfg.hpp"
#include "vm/program.hpp"

namespace wtc::pecos {

/// One embedded Assertion Block.
struct Assertion {
  vm::CfiKind kind = vm::CfiKind::Jump;
  std::uint32_t site = 0;
  std::uint32_t block_leader = 0;
  /// Static valid targets; for Ret this is the program's return-point set.
  std::vector<std::uint32_t> valid_targets;
  /// IndirectCall: register of the pristine instruction; the valid target
  /// is recomputed from it at runtime, independently of the (possibly
  /// corrupted) fetched instruction.
  std::uint8_t icall_reg = 0;
};

/// The full instrumentation of one program.
class Plan {
 public:
  /// Builds the plan from the pristine program (runs CFG analysis).
  static Plan instrument(const vm::Program& program);

  [[nodiscard]] const Assertion* assertion_at(std::uint32_t pc) const noexcept {
    auto it = assertions_.find(pc);
    return it == assertions_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] std::size_t assertion_count() const noexcept {
    return assertions_.size();
  }
  [[nodiscard]] const vm::Cfg& cfg() const noexcept { return cfg_; }

  /// All `call_site + 1` addresses — the valid target set of every Ret.
  [[nodiscard]] const std::vector<std::uint32_t>& return_points() const noexcept {
    return return_points_;
  }

 private:
  vm::Cfg cfg_;
  std::unordered_map<std::uint32_t, Assertion> assertions_;
  std::vector<std::uint32_t> return_points_;
};

/// The Figure-7 control decision. Returns true when the impending control
/// transfer is VALID: P = !((Xout-X1)*(Xout-X2)*...): a match zeroes the
/// product, !0 == 1, and ID := Xout / P is computable; a mismatch makes
/// P == 0 and the division faults — the intentional divide-by-zero PECOS
/// routes to its signal handler.
[[nodiscard]] bool figure7_valid(std::uint32_t xout,
                                 const std::vector<std::uint32_t>& targets) noexcept;

}  // namespace wtc::pecos
