// Block Signature Self-Checking (BSSC) — the classic embedded-signature
// scheme [MIR92] the paper's related work contrasts PECOS against (§2).
//
// At instrumentation time every basic block gets a golden signature: a
// checksum over the block's instruction words. At runtime the monitor
// accumulates a signature over the words actually FETCHED and compares it
// against the golden one when the block exits. This catches instruction
// substitutions PECOS cannot see (a corrupted ALU op that stays an ALU op
// never changes control flow) — but the comparison happens only at block
// exit, i.e. after the corrupted instructions executed: it is not
// preemptive, which is precisely the paper's critique. The ablation bench
// compares the three schemes head-to-head.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "vm/cfg.hpp"
#include "vm/interp.hpp"

namespace wtc::pecos {

/// Golden per-block signatures derived from the pristine program.
class BsscPlan {
 public:
  static BsscPlan instrument(const vm::Program& program);

  struct BlockInfo {
    std::uint32_t leader = 0;
    std::uint32_t end = 0;  ///< one past the last instruction of the block
    std::uint64_t golden_signature = 0;
  };

  /// Block info by leader pc; nullptr if `leader` does not start a block.
  [[nodiscard]] const BlockInfo* block_at(std::uint32_t leader) const noexcept {
    auto it = blocks_.find(leader);
    return it == blocks_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] std::size_t block_count() const noexcept { return blocks_.size(); }
  [[nodiscard]] const vm::Cfg& cfg() const noexcept { return cfg_; }

  /// The signature combinator: order-sensitive so swapped/substituted
  /// instructions change the result.
  [[nodiscard]] static std::uint64_t combine(std::uint64_t signature,
                                             std::uint64_t word) noexcept {
    signature ^= word;
    signature *= 0x100000001B3ull;  // FNV-ish fold
    return signature;
  }

 private:
  vm::Cfg cfg_;
  std::unordered_map<std::uint32_t, BlockInfo> blocks_;
};

/// Runtime half: accumulates fetched-word signatures per thread and flags a
/// mismatch at block exit (non-preemptive by construction).
class BsscMonitor final : public vm::ExecMonitor {
 public:
  explicit BsscMonitor(const BsscPlan& plan) : plan_(plan) {}

  bool before_execute(const vm::VmThread& thread, std::uint32_t pc,
                      std::uint64_t word) override;
  void after_execute(const vm::VmThread& thread, std::uint32_t pc,
                     std::uint64_t word, std::uint32_t next_pc) override;
  void on_thread_start(std::uint32_t thread_id, std::uint32_t entry) override;

  [[nodiscard]] std::uint64_t checks() const noexcept { return checks_; }
  [[nodiscard]] std::uint64_t violations() const noexcept { return violations_; }

 private:
  struct ThreadState {
    std::uint32_t block_leader = 0;  ///< leader of the block being traversed
    std::uint32_t expected_pc = 0;   ///< next pc if execution stays in-block
    std::uint64_t running = 0;       ///< signature over fetched words so far
    bool in_block = false;
    bool pending_violation = false;
  };

  void enter_block(ThreadState& state, std::uint32_t leader);
  /// Compares the running signature with the golden one for the finished
  /// span; arms pending_violation on mismatch.
  void check_signature(ThreadState& state, std::uint32_t end_pc);

  const BsscPlan& plan_;
  std::vector<ThreadState> threads_;
  std::uint64_t checks_ = 0;
  std::uint64_t violations_ = 0;
};

}  // namespace wtc::pecos
