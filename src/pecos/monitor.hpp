// PECOS runtime — the Assertion Blocks' execution-time behaviour (§6.1).
//
// PecosMonitor attaches to the VM's ExecMonitor seam. For every pc that
// carries an Assertion Block it:
//   1. extracts the runtime target address Xout the *fetched* (possibly
//      corrupted) instruction is about to transfer control to,
//   2. produces the valid-target list — embedded constants for static
//      CFIs, a runtime computation for indirect calls (read the pristine
//      instruction's register) and returns (the return-point set),
//   3. evaluates the Figure-7 decision BEFORE the jump retires, and
//   4. additionally verifies the block-entry shadow: the block containing
//      this assertion must be the block control legitimately entered last
//      (catches stray jumps into block middles from instructions that were
//      corrupted *into* CFIs, which carry no Assertion Block of their own).
//
// PostCheckMonitor is the non-preemptive ablation baseline (the BSSC/CCA/
// ECCA style the paper critiques in §2): the same checks, but evaluated
// only after the suspect instruction has executed — so crashes can beat
// the detector to it.
#pragma once

#include <cstdint>
#include <vector>

#include "pecos/cf_log.hpp"
#include "pecos/plan.hpp"
#include "vm/interp.hpp"

namespace wtc::pecos {

/// Statistics a monitor accumulates (exposed for tests/benches).
struct MonitorStats {
  std::uint64_t checks = 0;      ///< assertion evaluations
  std::uint64_t violations = 0;  ///< preemptive detections raised
};

class PecosMonitor final : public vm::ExecMonitor {
 public:
  explicit PecosMonitor(const Plan& plan) : plan_(plan) {}

  bool before_execute(const vm::VmThread& thread, std::uint32_t pc,
                      std::uint64_t word) override;
  void after_execute(const vm::VmThread& thread, std::uint32_t pc,
                     std::uint64_t word, std::uint32_t next_pc) override;
  void on_thread_start(std::uint32_t thread_id, std::uint32_t entry) override;
  void on_control_transfer(const vm::VmThread& thread, std::uint32_t from_pc,
                           std::uint64_t word, std::uint32_t to_pc,
                           sim::Time now) override;

  /// Streams retired control transfers into `log` (ACFA attestation feed).
  void set_cf_log(CfLog* log) noexcept { cf_log_ = log; }

  [[nodiscard]] const MonitorStats& stats() const noexcept { return stats_; }

 private:
  friend class PostCheckMonitor;
  /// Shared assertion evaluation: true when the impending transfer at an
  /// assertion site is ILLEGAL.
  [[nodiscard]] bool assertion_fails(const vm::VmThread& thread, std::uint32_t pc,
                                     std::uint64_t word);

  const Plan& plan_;
  MonitorStats stats_;
  std::vector<std::uint32_t> expected_entry_;  // per thread: last legit leader
  CfLog* cf_log_ = nullptr;
};

/// Non-preemptive baseline: defers each failed check by one instruction,
/// so the erroneous instruction executes (and may crash) first.
class PostCheckMonitor final : public vm::ExecMonitor {
 public:
  explicit PostCheckMonitor(const Plan& plan) : inner_(plan) {}

  bool before_execute(const vm::VmThread& thread, std::uint32_t pc,
                      std::uint64_t word) override;
  void after_execute(const vm::VmThread& thread, std::uint32_t pc,
                     std::uint64_t word, std::uint32_t next_pc) override;
  void on_thread_start(std::uint32_t thread_id, std::uint32_t entry) override;
  void on_control_transfer(const vm::VmThread& thread, std::uint32_t from_pc,
                           std::uint64_t word, std::uint32_t to_pc,
                           sim::Time now) override;

  void set_cf_log(CfLog* log) noexcept { inner_.set_cf_log(log); }

  [[nodiscard]] const MonitorStats& stats() const noexcept { return inner_.stats(); }

 private:
  PecosMonitor inner_;
  std::vector<std::uint8_t> pending_;  // per thread: violation owed
};

/// Recovery policy for a trapped thread (the PECOS signal handler logic,
/// §6.1): an intentional Assertion-Block fault terminates only the
/// offending thread of execution; every other trap is an OS-detected
/// failure that crashes the whole client process.
enum class TrapAction : std::uint8_t { TerminateThread, CrashProcess };

[[nodiscard]] constexpr TrapAction classify_trap(vm::Trap trap) noexcept {
  return trap == vm::Trap::PecosViolation ? TrapAction::TerminateThread
                                          : TrapAction::CrashProcess;
}

}  // namespace wtc::pecos
