// Observability core: a registry of named counters, gauges, and
// histograms with **constexpr enum handles** — instrument sites index a
// flat array, so the hot path does no hashing, no string comparison, and
// no allocation. When no recorder is installed (the default) every
// instrument call is a thread-local load plus a predicted-not-taken
// branch, and the process's observable output is byte-identical to an
// uninstrumented build.
//
// Model:
//   * `Recorder` owns one run's metric arrays and trace buffer. A
//     campaign worker installs it as the CURRENT THREAD's recorder
//     (ScopedRecorder) for the duration of one simulation run, mirroring
//     how common::ScopedLogSink routes log lines.
//   * Free functions `count` / `gauge_max` / `observe` / `trace_*`
//     forward to the installed recorder, or do nothing.
//   * `MetricsSnapshot` is the plain-data result of a run. Snapshots
//     merge by element-wise accumulation — integer adds and maxes only,
//     so the merged result is identical for any merge order; the
//     campaign runner nevertheless merges in seed order to honor the
//     DESIGN.md §9 determinism contract verbatim.
//
// See capture.hpp for the campaign-level aggregation and file emission.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace wtc::obs {

/// Monotone event counters. One per load-bearing occurrence across the
/// simulator, database, audit, PECOS, and manager layers.
enum class Counter : std::uint16_t {
  sched_events_fired,
  sched_events_cancelled,
  sched_tombstones_purged,
  ipc_sent,
  ipc_delivered,
  ipc_dropped,
  ipc_duplicated,
  ipc_dead_letters,
  reliable_sent,
  reliable_acked,
  reliable_retries,
  reliable_abandoned,
  reliable_accepted,
  reliable_duplicates_dropped,
  reliable_malformed,
  db_reads,
  db_writes,
  db_lock_acquires,
  db_lock_conflicts,
  db_dirty_chunk_stamps,
  db_scrubs,
  db_reloads,
  db_images_rejected,
  db_index_hits,
  db_index_splices,
  db_index_resyncs,
  db_index_rebuilds,
  audit_checks,
  audit_findings,
  audit_passes,
  audit_incremental_cycles,
  audit_full_sweeps,
  audit_table_reload_escalations,
  audit_full_reload_escalations,
  audit_element_reenabled,
  audit_cf_slices,
  audit_cf_transitions_attested,
  audit_cf_violations,
  pecos_checks,
  pecos_violations,
  pecos_preemptive_detections,
  pecos_cf_transitions_logged,
  pecos_cf_log_overflow_slices,
  manager_heartbeats_sent,
  manager_heartbeat_replies,
  manager_restarts,
  manager_takeovers,
  manager_demotions,
  manager_heals,
  manager_heal_replayed_ops,
  manager_heal_escalations,
  audit_parallel_tasks,
  audit_budget_exhausted,
  audit_cycles_deferred,
  db_shard_routed,
  db_cross_shard_links,
  oplog_recorded,
  oplog_bytes,
  oplog_compactions,
  replay_chains,
  replay_deduped,
  replay_exec_ops,
  replay_mismatches,
  kCount,
};

/// High-water gauges (merge = max). Few on purpose: most run state worth
/// reporting is either a counter or a histogram.
enum class Gauge : std::uint16_t {
  sched_max_pending_events,
  db_write_generation,
  reliable_max_in_flight,
  cf_log_max_depth,
  /// Routing skew across database shards: max(per-shard routed ops) /
  /// mean(per-shard routed ops), in milli (1000 = perfectly balanced).
  db_shard_imbalance,
  kCount,
};

/// Value-distribution histograms over unsigned quantities (µs costs).
enum class Histogram : std::uint16_t {
  audit_check_cost_us,
  audit_pass_cost_us,
  cf_detection_latency_us,
  audit_cycle_latency_us,
  kCount,
};

inline constexpr std::size_t kCounterCount = static_cast<std::size_t>(Counter::kCount);
inline constexpr std::size_t kGaugeCount = static_cast<std::size_t>(Gauge::kCount);
inline constexpr std::size_t kHistogramCount =
    static_cast<std::size_t>(Histogram::kCount);

/// Registry names (stable, dotted, one per handle). Indexed by enum value.
[[nodiscard]] std::string_view counter_name(Counter c) noexcept;
[[nodiscard]] std::string_view gauge_name(Gauge g) noexcept;
[[nodiscard]] std::string_view histogram_name(Histogram h) noexcept;

/// Cold-path reverse lookups (tests, tools); linear scan over the
/// registry.
[[nodiscard]] std::optional<Counter> find_counter(std::string_view name) noexcept;
[[nodiscard]] std::optional<Gauge> find_gauge(std::string_view name) noexcept;
[[nodiscard]] std::optional<Histogram> find_histogram(std::string_view name) noexcept;

/// Power-of-two bucketed distribution: bucket i counts values whose
/// bit_width is i (bucket 0 = value 0, bucket 1 = 1, bucket 2 = 2-3, ...).
/// Element-wise merge keeps sum/count/min/max exact and order-independent.
struct HistogramData {
  std::array<std::uint64_t, 64> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;

  void add(std::uint64_t value) noexcept {
    ++buckets[static_cast<std::size_t>(std::bit_width(value))];
    if (count == 0 || value < min) {
      min = value;
    }
    if (count == 0 || value > max) {
      max = value;
    }
    ++count;
    sum += value;
  }
  void merge(const HistogramData& other) noexcept;
  [[nodiscard]] bool operator==(const HistogramData&) const noexcept = default;
};

/// One run's (or one merged campaign's) metric values. Plain data.
struct MetricsSnapshot {
  std::array<std::uint64_t, kCounterCount> counters{};
  std::array<std::uint64_t, kGaugeCount> gauges{};
  std::array<HistogramData, kHistogramCount> histograms{};
  /// Runs merged into this snapshot (1 for a fresh per-run snapshot).
  std::uint64_t runs = 0;

  /// Element-wise accumulate: counters/sums add, gauges/extrema max-merge.
  void merge(const MetricsSnapshot& other) noexcept;

  [[nodiscard]] std::uint64_t counter(Counter c) const noexcept {
    return counters[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t gauge(Gauge g) const noexcept {
    return gauges[static_cast<std::size_t>(g)];
  }
  [[nodiscard]] const HistogramData& histogram(Histogram h) const noexcept {
    return histograms[static_cast<std::size_t>(h)];
  }

  /// Serializations used by --metrics emission (and by tests asserting
  /// cross-job-count determinism as string equality).
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] bool operator==(const MetricsSnapshot&) const noexcept = default;
};

/// The per-run sink instrument sites write into. Cheap to construct;
/// trace buffering only happens when constructed with `tracing = true`.
class Recorder {
 public:
  explicit Recorder(bool tracing = false) : tracing_(tracing) {
    snapshot_.runs = 1;
  }

  void count(Counter c, std::uint64_t delta) noexcept {
    snapshot_.counters[static_cast<std::size_t>(c)] += delta;
  }
  void gauge_max(Gauge g, std::uint64_t value) noexcept {
    auto& slot = snapshot_.gauges[static_cast<std::size_t>(g)];
    if (value > slot) {
      slot = value;
    }
  }
  void observe(Histogram h, std::uint64_t value) noexcept {
    snapshot_.histograms[static_cast<std::size_t>(h)].add(value);
  }
  void trace(const TraceEvent& event) {
    if (tracing_) {
      events_.push_back(event);
    }
  }

  [[nodiscard]] bool tracing() const noexcept { return tracing_; }
  [[nodiscard]] const MetricsSnapshot& snapshot() const noexcept {
    return snapshot_;
  }
  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }

 private:
  MetricsSnapshot snapshot_;
  std::vector<TraceEvent> events_;
  bool tracing_;
};

namespace detail {
/// The current thread's recorder slot; null (the default) disables every
/// instrument site on this thread. A function-local thread_local (rather
/// than an extern one) keeps the access constant-initialized and free of
/// the cross-TU TLS init wrapper.
inline Recorder*& tls_recorder() noexcept {
  thread_local Recorder* slot = nullptr;
  return slot;
}
}  // namespace detail

[[nodiscard]] inline Recorder* current_recorder() noexcept {
  return detail::tls_recorder();
}

/// Installs `recorder` as the CURRENT THREAD's recorder for this object's
/// lifetime, restoring the previous one on destruction. Nestable.
class ScopedRecorder {
 public:
  explicit ScopedRecorder(Recorder& recorder) noexcept
      : previous_(detail::tls_recorder()) {
    detail::tls_recorder() = &recorder;
  }
  ~ScopedRecorder() { detail::tls_recorder() = previous_; }
  ScopedRecorder(const ScopedRecorder&) = delete;
  ScopedRecorder& operator=(const ScopedRecorder&) = delete;

 private:
  Recorder* previous_;
};

// --- instrument-site API (no-ops when no recorder is installed) ---

inline void count(Counter c, std::uint64_t delta = 1) noexcept {
  if (Recorder* recorder = detail::tls_recorder()) {
    recorder->count(c, delta);
  }
}

inline void gauge_max(Gauge g, std::uint64_t value) noexcept {
  if (Recorder* recorder = detail::tls_recorder()) {
    recorder->gauge_max(g, value);
  }
}

inline void observe(Histogram h, std::uint64_t value) noexcept {
  if (Recorder* recorder = detail::tls_recorder()) {
    recorder->observe(h, value);
  }
}

/// Chrome-trace "complete" event: a span [ts, ts+dur] in sim µs. `name`
/// and `category` must be string literals (stored by pointer).
inline void trace_span(const char* name, const char* category,
                       std::uint64_t ts, std::uint64_t dur) {
  if (Recorder* recorder = detail::tls_recorder(); recorder != nullptr &&
                                                   recorder->tracing()) {
    recorder->trace(TraceEvent{name, category, ts, dur, TracePhase::Complete});
  }
}

/// Chrome-trace "instant" event at sim time `ts` (µs).
inline void trace_instant(const char* name, const char* category,
                          std::uint64_t ts) {
  if (Recorder* recorder = detail::tls_recorder(); recorder != nullptr &&
                                                   recorder->tracing()) {
    recorder->trace(TraceEvent{name, category, ts, 0, TracePhase::Instant});
  }
}

}  // namespace wtc::obs
