// Campaign-level aggregation of per-run observability data.
//
// A `Capture` is the process-wide collection point for one measurement
// session (normally one bench invocation). While a capture is active the
// campaign runner (experiments/campaign.cpp) installs a fresh Recorder
// around every run body and, after the campaign joins, hands the per-run
// results back **in seed order** — so the merged MetricsSnapshot and the
// concatenated trace are identical for any `--jobs=N`, the same
// determinism contract the campaign's own result aggregation honors
// (DESIGN.md §9).
//
// When no capture is active (the default) nothing anywhere allocates,
// records, or writes: bench stdout/CSV stay byte-identical to an
// uninstrumented build.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wtc::obs {

/// One run's worth of observability data, extracted from its Recorder.
struct RunData {
  MetricsSnapshot metrics;
  std::vector<TraceEvent> events;
};

struct CaptureOptions {
  /// Buffer trace events (costs memory proportional to event count).
  bool tracing = false;
};

class Capture {
 public:
  /// Installs this capture as the process-wide active one for its
  /// lifetime (stack discipline: restores the previous on destruction).
  explicit Capture(CaptureOptions options = {});
  ~Capture();
  Capture(const Capture&) = delete;
  Capture& operator=(const Capture&) = delete;

  [[nodiscard]] bool tracing() const noexcept { return options_.tracing; }

  /// Merges one campaign's per-run results, indexed by seed/run order.
  /// Sequential campaigns within a bench accumulate in call order (benches
  /// run campaigns from the main thread, one after another). Thread-safe.
  void absorb_campaign(std::vector<RunData> runs);

  /// Merges a single out-of-campaign run (tests, ad-hoc harnesses).
  void absorb_run(RunData run);

  [[nodiscard]] MetricsSnapshot merged() const;
  [[nodiscard]] std::vector<TraceRecord> trace() const;
  [[nodiscard]] std::string metrics_json() const;
  [[nodiscard]] std::string metrics_csv() const;
  [[nodiscard]] std::string trace_json() const;

  /// Writes metrics to `path` — CSV when the path ends in ".csv", JSON
  /// otherwise. Returns false (with a stderr warning) on I/O failure.
  bool write_metrics(const std::string& path) const;
  /// Writes the Chrome trace-event JSON document to `path`.
  bool write_trace(const std::string& path) const;

 private:
  CaptureOptions options_;
  Capture* previous_;
  mutable std::mutex mutex_;
  MetricsSnapshot merged_;
  std::vector<TraceRecord> trace_;
  std::uint64_t runs_absorbed_ = 0;
};

/// The active capture, or null. Read by the campaign runner at dispatch.
[[nodiscard]] Capture* active_capture() noexcept;

/// Bench-binary convenience: creates a process-lifetime capture wired to
/// `--metrics=` / `--trace=` paths (either may be empty) and registers an
/// atexit hook that writes the files. Idempotent per process; a no-op when
/// both paths are empty.
void install_global_capture(std::string metrics_path, std::string trace_path);

}  // namespace wtc::obs
