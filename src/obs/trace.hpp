// Sim-time trace events, exported in the Chrome trace-event JSON format
// (load the emitted file in chrome://tracing or https://ui.perfetto.dev).
//
// Simulation time is already microseconds (sim/time.hpp), which is
// exactly the unit the trace-event `ts`/`dur` fields use, so events map
// 1:1 with no conversion. The campaign aggregator tags each run's events
// with `pid` = the run's seed index, so a parallel campaign renders as
// one process lane per run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wtc::obs {

enum class TracePhase : std::uint8_t {
  Complete,  ///< "ph":"X" — a span with ts + dur
  Instant,   ///< "ph":"i" — a point event
};

/// One trace event. `name`/`category` are required to be string literals
/// (or otherwise outlive the capture); events are hot enough that owning
/// strings would dominate the cost of recording them.
struct TraceEvent {
  const char* name;
  const char* category;
  std::uint64_t ts;   ///< sim time, µs
  std::uint64_t dur;  ///< span length, µs (Complete only)
  TracePhase phase;

  [[nodiscard]] bool operator==(const TraceEvent&) const noexcept = default;
};

/// A trace event attributed to a campaign run (pid = seed index).
struct TraceRecord {
  TraceEvent event;
  std::uint64_t pid = 0;

  [[nodiscard]] bool operator==(const TraceRecord&) const noexcept = default;
};

/// Renders `records` as a complete trace-event JSON document
/// (`{"traceEvents":[...]}`).
[[nodiscard]] std::string trace_to_json(const std::vector<TraceRecord>& records);

}  // namespace wtc::obs
