#include "obs/capture.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace wtc::obs {
namespace {

Capture* g_active_capture = nullptr;

bool write_string(const std::string& path, const std::string& contents) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  const bool ok =
      std::fwrite(contents.data(), 1, contents.size(), file) == contents.size();
  std::fclose(file);
  if (!ok) {
    std::fprintf(stderr, "warning: short write to %s\n", path.c_str());
  }
  return ok;
}

bool ends_with(const std::string& text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// install_global_capture state: one process-lifetime capture plus the
// paths the atexit hook flushes to.
std::unique_ptr<Capture> g_global_capture;
std::string g_metrics_path;
std::string g_trace_path;

void write_global_capture() {
  if (g_global_capture == nullptr) {
    return;
  }
  if (!g_metrics_path.empty() && g_global_capture->write_metrics(g_metrics_path)) {
    std::fprintf(stderr, "(metrics written to %s)\n", g_metrics_path.c_str());
  }
  if (!g_trace_path.empty() && g_global_capture->write_trace(g_trace_path)) {
    std::fprintf(stderr, "(trace written to %s)\n", g_trace_path.c_str());
  }
}

}  // namespace

Capture::Capture(CaptureOptions options)
    : options_(options), previous_(g_active_capture) {
  g_active_capture = this;
}

Capture::~Capture() { g_active_capture = previous_; }

void Capture::absorb_campaign(std::vector<RunData> runs) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (RunData& run : runs) {  // seed order: runs[i] is seed index i
    const std::uint64_t pid = runs_absorbed_++;
    merged_.merge(run.metrics);
    for (const TraceEvent& event : run.events) {
      trace_.push_back(TraceRecord{event, pid});
    }
  }
}

void Capture::absorb_run(RunData run) {
  std::vector<RunData> runs;
  runs.push_back(std::move(run));
  absorb_campaign(std::move(runs));
}

MetricsSnapshot Capture::merged() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return merged_;
}

std::vector<TraceRecord> Capture::trace() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return trace_;
}

std::string Capture::metrics_json() const { return merged().to_json(); }

std::string Capture::metrics_csv() const { return merged().to_csv(); }

std::string Capture::trace_json() const { return trace_to_json(trace()); }

bool Capture::write_metrics(const std::string& path) const {
  return write_string(path,
                      ends_with(path, ".csv") ? metrics_csv() : metrics_json());
}

bool Capture::write_trace(const std::string& path) const {
  return write_string(path, trace_json());
}

Capture* active_capture() noexcept { return g_active_capture; }

void install_global_capture(std::string metrics_path, std::string trace_path) {
  if ((metrics_path.empty() && trace_path.empty()) ||
      g_global_capture != nullptr) {
    return;
  }
  g_metrics_path = std::move(metrics_path);
  g_trace_path = std::move(trace_path);
  g_global_capture =
      std::make_unique<Capture>(CaptureOptions{.tracing = !g_trace_path.empty()});
  std::atexit(write_global_capture);
}

}  // namespace wtc::obs
