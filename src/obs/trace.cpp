#include "obs/trace.hpp"

namespace wtc::obs {
namespace {

/// Trace names/categories are string literals chosen in this repo, so a
/// full JSON escaper would be dead code; guard against the two characters
/// that could break the document if one ever slipped in.
void append_escaped(std::string& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p == '"' || *p == '\\') {
      out += '\\';
    }
    out += *p;
  }
}

}  // namespace

std::string trace_to_json(const std::vector<TraceRecord>& records) {
  std::string out;
  out.reserve(64 + records.size() * 96);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const TraceRecord& record = records[i];
    out += i == 0 ? "\n" : ",\n";
    out += "{\"name\":\"";
    append_escaped(out, record.event.name);
    out += "\",\"cat\":\"";
    append_escaped(out, record.event.category);
    out += "\",\"ph\":\"";
    out += record.event.phase == TracePhase::Complete ? 'X' : 'i';
    out += "\",\"ts\":";
    out += std::to_string(record.event.ts);
    if (record.event.phase == TracePhase::Complete) {
      out += ",\"dur\":";
      out += std::to_string(record.event.dur);
    } else {
      out += ",\"s\":\"g\"";
    }
    out += ",\"pid\":";
    out += std::to_string(record.pid);
    out += ",\"tid\":0}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace wtc::obs
