#include "obs/metrics.hpp"

#include <algorithm>

namespace wtc::obs {
namespace {

constexpr std::array<std::string_view, kCounterCount> kCounterNames = {
    "sched.events_fired",
    "sched.events_cancelled",
    "sched.tombstones_purged",
    "ipc.sent",
    "ipc.delivered",
    "ipc.dropped",
    "ipc.duplicated",
    "ipc.dead_letters",
    "reliable.sent",
    "reliable.acked",
    "reliable.retries",
    "reliable.abandoned",
    "reliable.accepted",
    "reliable.duplicates_dropped",
    "reliable.malformed",
    "db.reads",
    "db.writes",
    "db.lock_acquires",
    "db.lock_conflicts",
    "db.dirty_chunk_stamps",
    "db.scrubs",
    "db.reloads",
    "db.images_rejected",
    "db.index_hits",
    "db.index_splices",
    "db.index_resyncs",
    "db.index_rebuilds",
    "audit.checks",
    "audit.findings",
    "audit.passes",
    "audit.incremental_cycles",
    "audit.full_sweeps",
    "audit.table_reload_escalations",
    "audit.full_reload_escalations",
    "audit.element_reenabled",
    "audit.cf_slices",
    "audit.cf_transitions_attested",
    "audit.cf_violations",
    "pecos.checks",
    "pecos.violations",
    "pecos.preemptive_detections",
    "pecos.cf_transitions_logged",
    "pecos.cf_log_overflow_slices",
    "manager.heartbeats_sent",
    "manager.heartbeat_replies",
    "manager.restarts",
    "manager.takeovers",
    "manager.demotions",
    "manager.heals",
    "manager.heal_replayed_ops",
    "manager.heal_escalations",
    "audit.parallel_tasks",
    "audit.budget_exhausted",
    "audit.cycles_deferred",
    "db.shard_routed",
    "db.cross_shard_links",
    "oplog.recorded",
    "oplog.bytes",
    "oplog.compactions",
    "replay.chains",
    "replay.deduped",
    "replay.exec_ops",
    "replay.mismatches",
};

constexpr std::array<std::string_view, kGaugeCount> kGaugeNames = {
    "sched.max_pending_events",
    "db.write_generation",
    "reliable.max_in_flight",
    "cf_log.max_depth",
    "db.shard_imbalance",
};

constexpr std::array<std::string_view, kHistogramCount> kHistogramNames = {
    "audit.check_cost_us",
    "audit.pass_cost_us",
    "cf.detection_latency_us",
    "audit.cycle_latency_us",
};

void append_u64(std::string& out, std::uint64_t value) {
  out += std::to_string(value);
}

void append_histogram_json(std::string& out, const HistogramData& hist) {
  out += "{\"count\":";
  append_u64(out, hist.count);
  out += ",\"sum\":";
  append_u64(out, hist.sum);
  out += ",\"min\":";
  append_u64(out, hist.min);
  out += ",\"max\":";
  append_u64(out, hist.max);
  out += ",\"buckets\":[";
  // Trailing zero buckets carry no information; emit up to the last
  // non-zero one so the document stays readable.
  std::size_t last = 0;
  for (std::size_t i = 0; i < hist.buckets.size(); ++i) {
    if (hist.buckets[i] != 0) {
      last = i + 1;
    }
  }
  for (std::size_t i = 0; i < last; ++i) {
    if (i != 0) {
      out += ',';
    }
    append_u64(out, hist.buckets[i]);
  }
  out += "]}";
}

}  // namespace

std::string_view counter_name(Counter c) noexcept {
  return kCounterNames[static_cast<std::size_t>(c)];
}

std::string_view gauge_name(Gauge g) noexcept {
  return kGaugeNames[static_cast<std::size_t>(g)];
}

std::string_view histogram_name(Histogram h) noexcept {
  return kHistogramNames[static_cast<std::size_t>(h)];
}

std::optional<Counter> find_counter(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kCounterNames.size(); ++i) {
    if (kCounterNames[i] == name) {
      return static_cast<Counter>(i);
    }
  }
  return std::nullopt;
}

std::optional<Gauge> find_gauge(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kGaugeNames.size(); ++i) {
    if (kGaugeNames[i] == name) {
      return static_cast<Gauge>(i);
    }
  }
  return std::nullopt;
}

std::optional<Histogram> find_histogram(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kHistogramNames.size(); ++i) {
    if (kHistogramNames[i] == name) {
      return static_cast<Histogram>(i);
    }
  }
  return std::nullopt;
}

void HistogramData::merge(const HistogramData& other) noexcept {
  if (other.count == 0) {
    return;
  }
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  if (count == 0 || other.min < min) {
    min = other.min;
  }
  if (count == 0 || other.max > max) {
    max = other.max;
  }
  count += other.count;
  sum += other.sum;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) noexcept {
  for (std::size_t i = 0; i < counters.size(); ++i) {
    counters[i] += other.counters[i];
  }
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    gauges[i] = std::max(gauges[i], other.gauges[i]);
  }
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    histograms[i].merge(other.histograms[i]);
  }
  runs += other.runs;
}

std::string MetricsSnapshot::to_json() const {
  std::string out;
  out.reserve(2048);
  out += "{\n  \"runs\": ";
  append_u64(out, runs);
  out += ",\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    out += kCounterNames[i];
    out += "\": ";
    append_u64(out, counters[i]);
  }
  out += "\n  },\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    out += kGaugeNames[i];
    out += "\": ";
    append_u64(out, gauges[i]);
  }
  out += "\n  },\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    out += kHistogramNames[i];
    out += "\": ";
    append_histogram_json(out, histograms[i]);
  }
  out += "\n  }\n}\n";
  return out;
}

std::string MetricsSnapshot::to_csv() const {
  std::string out = "metric,value\n";
  out += "runs,";
  append_u64(out, runs);
  out += '\n';
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += kCounterNames[i];
    out += ',';
    append_u64(out, counters[i]);
    out += '\n';
  }
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out += kGaugeNames[i];
    out += ',';
    append_u64(out, gauges[i]);
    out += '\n';
  }
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& hist = histograms[i];
    const std::string base(kHistogramNames[i]);
    for (const auto& [suffix, value] :
         {std::pair<const char*, std::uint64_t>{".count", hist.count},
          {".sum", hist.sum},
          {".min", hist.min},
          {".max", hist.max}}) {
      out += base;
      out += suffix;
      out += ',';
      append_u64(out, value);
      out += '\n';
    }
  }
  return out;
}

}  // namespace wtc::obs
