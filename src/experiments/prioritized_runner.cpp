#include "experiments/prioritized_runner.hpp"

#include "experiments/campaign.hpp"
#include "inject/oracle.hpp"
#include "sim/cpu.hpp"
#include "sim/scheduler.hpp"

namespace wtc::experiments {

PrioritizedRunResult run_prioritized_experiment(const PrioritizedRunParams& params) {
  sim::Scheduler scheduler;
  sim::Node node(scheduler);
  sim::Cpu cpu;
  common::Rng rng(params.seed);

  db::Database db(db::make_bench_schema(params.schema));
  db::activate_all_records(db);

  inject::CorruptionOracle oracle(db, [&scheduler]() { return scheduler.now(); });
  db.set_observer(&oracle);

  audit::AuditProcessConfig audit_cfg;
  audit_cfg.period = params.audit_tick;
  audit_cfg.one_table_per_tick = true;
  audit_cfg.prioritized = params.prioritized;
  audit_cfg.weights = params.weights;
  audit_cfg.heartbeat = false;
  audit_cfg.progress_indicator = false;
  audit_cfg.engine.semantic_check = false;  // the bench schema has no FK loops
  audit_cfg.engine.static_check = false;    // nor static tables
  audit_cfg.engine.recent_write_grace =
      100 * static_cast<sim::Duration>(sim::kMillisecond);
  // This experiment studies detection timing, not CPU contention; keep the
  // modelled audit cost small so one 5 s tick never saturates the CPU even
  // for the 125-unit table.
  audit_cfg.engine.cost_scale = 0.2;
  auto audit_process = std::make_shared<audit::AuditProcess>(
      db, cpu, audit_cfg, &oracle, nullptr);
  sim::ProcessId audit_pid = node.spawn("audit", audit_process);

  audit::IpcNotificationSink sink(node, [audit_pid]() { return audit_pid; });
  auto client = std::make_shared<callproc::EmulatedLoadClient>(
      db, cpu, rng.fork(1), params.load, &sink);
  node.spawn("client", client);

  inject::DbInjectorConfig inj_cfg;
  inj_cfg.inter_arrival = params.error_mtbf;
  inj_cfg.arrival = params.arrival;
  inj_cfg.distribution = params.distribution;
  auto injector = std::make_shared<inject::DbErrorInjector>(db, oracle,
                                                            rng.fork(2), inj_cfg);
  node.spawn("injector", injector);

  scheduler.run_until(static_cast<sim::Time>(params.duration));

  const auto summary = oracle.summary();
  PrioritizedRunResult result;
  result.injected = summary.injected;
  result.escaped = summary.escaped;
  result.caught = summary.caught;
  result.escaped_percent = common::percent(summary.escaped, summary.injected);
  result.detection_latency_s = summary.detection_latency_s.mean();
  return result;
}

PrioritizedRunResult run_prioritized_series(PrioritizedRunParams params,
                                            std::size_t runs) {
  // Per-run seeds: the legacy serial loop's LCG chain, precomputed so the
  // runs can fan out across workers (results still merge in seed order).
  std::vector<std::uint64_t> seeds(runs);
  std::uint64_t seed = params.seed;
  for (std::size_t i = 0; i < runs; ++i) {
    seed = seed * 2862933555777941757ull + 3037000493ull;
    seeds[i] = seed;
  }

  CampaignOptions options;
  options.label = "prioritized series";
  const std::vector<PrioritizedRunResult> results = run_campaign(
      runs,
      [&](std::size_t i) {
        PrioritizedRunParams run_params = params;
        run_params.seed = seeds[i];
        return run_prioritized_experiment(run_params);
      },
      options);

  PrioritizedRunResult total;
  common::RunningStats latency;
  for (const PrioritizedRunResult& run : results) {
    total.injected += run.injected;
    total.escaped += run.escaped;
    total.caught += run.caught;
    if (run.caught > 0) {
      latency.add(run.detection_latency_s);
    }
  }
  total.escaped_percent = common::percent(total.escaped, total.injected);
  total.detection_latency_s = latency.mean();
  return total;
}

}  // namespace wtc::experiments
