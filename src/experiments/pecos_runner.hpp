// Experiment runner for the joint PECOS + audit evaluation (§6.1.2):
// error-injection campaigns against the MiniVM call-processing client,
// Tables 8 (directed to CFIs) and 9 (random to the instruction stream),
// across the four configurations {±PECOS} x {±Audit} and the four Table-6
// error models.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "audit/process.hpp"
#include "inject/client_injector.hpp"
#include "inject/outcome.hpp"

namespace wtc::experiments {

/// Control-flow checking flavour — PECOS, the non-preemptive assertion
/// baseline, the classic embedded-signature scheme (BSSC), or none.
enum class CfcMode : std::uint8_t { None, Pecos, PostCheck, Bssc };

struct PecosRunParams {
  CfcMode cfc = CfcMode::Pecos;
  bool audit = true;
  inject::ClientInjectorConfig injector;
  std::uint32_t threads = 16;
  std::int32_t calls_per_thread = 2;
  /// Virtual-time budget per run; exceeding it without completing = hang.
  sim::Duration deadline = 60 * static_cast<sim::Duration>(sim::kSecond);
  /// Audit period compressed to match the shorter runs.
  sim::Duration audit_period = 1 * static_cast<sim::Duration>(sim::kSecond);
  std::uint64_t seed = 1;

  // --- ACFA extensions (PECOS/PostCheck modes only; both need the CFG
  // plan): CF-log attestation and guaranteed healing ---
  /// Stream retired control transfers into a per-thread CF log and attest
  /// them against the plan every `slice_period` (detection latency is
  /// bounded by the period; a full log forces an early slice).
  bool cf_attest = false;
  sim::Duration slice_period = 100 * static_cast<sim::Duration>(sim::kMillisecond);
  /// Route CF violations (preemptive and attested) to the active manager,
  /// whose healer restores + replays the thread's records and restarts it.
  bool heal = false;
  std::uint32_t cf_log_capacity = 256;
};

struct PecosRunResult {
  inject::Outcome outcome = inject::Outcome::NotActivated;
  bool activated = false;
  std::uint64_t activations = 0;
  std::uint32_t pecos_detections = 0;
  bool crashed = false;
  std::uint64_t audit_findings = 0;
  std::uint32_t hung_threads = 0;

  // --- ACFA evidence ---
  std::uint64_t cf_transitions_logged = 0;
  std::uint64_t attest_slices = 0;
  /// Violations flagged by the attestation element (deferred detections).
  std::uint64_t attest_detections = 0;
  std::optional<sim::Time> first_pecos_time;
  std::optional<sim::Time> first_attest_time;
  /// Worst detection latency over the run's attested violations (µs).
  std::uint64_t max_attest_latency_us = 0;
  std::uint32_t heals = 0;
  std::uint32_t heal_escalations = 0;
  /// A violation was detected but its thread was never healed (healing
  /// arm only; the A13 bench asserts this never happens).
  bool unhealed_violation = false;
  /// Client ran to completion without crashing.
  bool completed = false;
};

[[nodiscard]] PecosRunResult run_pecos_single(const PecosRunParams& params);

/// One campaign: `runs_per_model` runs for each of the four error models,
/// aggregated (the paper's tables are cumulative over the error models).
struct CampaignCounts {
  std::array<std::size_t, inject::kOutcomeCount> by_outcome{};
  std::size_t runs = 0;

  void add(inject::Outcome outcome) {
    ++by_outcome[static_cast<std::size_t>(outcome)];
    ++runs;
  }
  [[nodiscard]] std::size_t count(inject::Outcome outcome) const {
    return by_outcome[static_cast<std::size_t>(outcome)];
  }
  /// Runs whose injected error was actually exercised.
  [[nodiscard]] std::size_t activated() const {
    return runs - count(inject::Outcome::NotActivated);
  }
  /// The paper's system-wide coverage formula:
  /// 100% - (SystemDetection + FailSilence + Hang)% of activated errors.
  [[nodiscard]] double coverage_percent() const;
};

[[nodiscard]] CampaignCounts run_pecos_campaign(PecosRunParams base,
                                                std::size_t runs_per_model);

}  // namespace wtc::experiments
