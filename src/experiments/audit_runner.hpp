// Experiment runner for the audit-effectiveness evaluations:
// Table 3 / Table 4 / Figure 3 (§5.1) and the ablations built on the same
// environment (event-triggered audit, audit-period sensitivity, selective
// monitoring).
//
// Environment (Figure 1): controller database + audit process under a
// heartbeat-monitored manager + the multi-threaded native call-processing
// client + the database bit-flip injector, all on one simulated node
// sharing one CPU.
#pragma once

#include <vector>

#include "audit/process.hpp"
#include "callproc/native_client.hpp"
#include "db/controller_schema.hpp"
#include "inject/db_injector.hpp"
#include "inject/oracle.hpp"

namespace wtc::experiments {

struct AuditRunParams {
  /// Table 2 defaults.
  sim::Duration duration = 2000 * static_cast<sim::Duration>(sim::kSecond);
  bool audits_enabled = true;
  bool with_manager = true;
  /// Spawn the corruption injector (off for clean recording runs: a
  /// clean run's region must be explainable by its op log alone).
  bool injections_enabled = true;
  callproc::CallClientConfig client;
  inject::DbInjectorConfig injector;
  audit::AuditProcessConfig audit;
  db::ControllerSchemaParams schema;
  std::uint64_t seed = 1;

  // --- op-log record/replay (ISSUE 10) ---
  /// Stream-record the whole-run op log to this file (empty = none).
  std::string record_oplog_path;
  /// Drive the run from a captured log via the zero-simulation engine
  /// instead of simulating call processing (empty = simulate normally).
  std::string replay_oplog_path;
  /// Copy the final region bytes into the result (byte-identity gates).
  bool capture_final_region = false;
};

struct AuditRunResult {
  inject::OracleSummary oracle;
  std::vector<inject::InjectionRecord> injections;
  callproc::NativeCallClient::Stats client;
  std::uint64_t audit_cycles = 0;
  std::uint64_t audit_findings = 0;
  /// Total modelled audit CPU booked by periodic cycles (simulated time
  /// units); divide by `audit_cycles` for the per-cycle cost the
  /// incremental-audit ablation compares.
  sim::Duration audit_cost = 0;
  /// Exhaustive sweeps the incremental engine ran (0 for the baseline).
  std::uint64_t full_sweeps = 0;
  /// Modelled critical-path latency summed over all periodic cycles:
  /// equals `audit_cost` at audit_threads == 1, shrinks toward
  /// cost / audit_threads as detection parallelizes. The booked CPU
  /// (audit_cost) is unchanged by threading — only the makespan moves.
  sim::Duration audit_makespan = 0;
  /// Cycles whose work queue outlived the configured CPU budget.
  std::uint64_t budget_exhausted_cycles = 0;
  /// Work units pushed to a later cycle (budget deferrals + truncations).
  std::uint64_t deferred_units = 0;
  std::uint32_t manager_restarts = 0;
  double avg_setup_ms = 0.0;

  // --- op-log record/replay (ISSUE 10) ---
  /// Successful API events captured by the run's RunOpLog tee.
  std::uint64_t oplog_recorded = 0;
  /// Replay-audit cycles executed and the last cycle's statistics.
  std::uint64_t replay_runs = 0;
  audit::ReplayStats replay;
  /// Update ops re-applied / outcome divergences (zero-simulation runs).
  std::uint64_t replay_applied = 0;
  std::uint64_t replay_divergences = 0;
  /// Final region bytes (when `capture_final_region`).
  std::vector<std::byte> final_region;
};

[[nodiscard]] AuditRunResult run_audit_experiment(const AuditRunParams& params);

/// Table 4's row structure: per-error-type detection/escape accounting.
struct ErrorBreakdown {
  std::size_t structural_detected = 0;
  std::size_t structural_escaped = 0;
  std::size_t static_detected = 0;
  std::size_t static_escaped = 0;
  std::size_t dynamic_range_detected = 0;
  std::size_t dynamic_semantic_detected = 0;
  std::size_t dynamic_escaped_timing = 0;   ///< rule existed, audit was late
  std::size_t dynamic_escaped_no_rule = 0;  ///< no enforceable rule
  std::size_t no_effect = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return structural_detected + structural_escaped + static_detected +
           static_escaped + dynamic_range_detected + dynamic_semantic_detected +
           dynamic_escaped_timing + dynamic_escaped_no_rule + no_effect;
  }
};

[[nodiscard]] ErrorBreakdown classify_injections(
    const std::vector<inject::InjectionRecord>& injections);

/// Aggregates several runs (the paper uses 30) of the same configuration.
struct AggregateAuditResult {
  std::size_t injected = 0;
  std::size_t escaped = 0;
  std::size_t caught = 0;
  std::size_t no_effect = 0;
  common::RunningStats setup_ms;
  common::RunningStats detection_latency_s;
  /// Per-run mean audit CPU per periodic cycle, in simulated µs.
  common::RunningStats audit_cost_per_cycle_us;
  /// Per-run mean modelled cycle latency (makespan / cycles), in µs.
  common::RunningStats cycle_latency_us;
  std::uint64_t audit_cycles = 0;
  std::uint64_t full_sweeps = 0;
  std::uint64_t budget_exhausted_cycles = 0;
  std::uint64_t deferred_units = 0;
  ErrorBreakdown breakdown;
};

[[nodiscard]] AggregateAuditResult run_audit_series(AuditRunParams params,
                                                    std::size_t runs);

}  // namespace wtc::experiments
