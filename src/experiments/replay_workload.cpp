#include "experiments/replay_workload.hpp"

#include <map>
#include <memory>
#include <stdexcept>

#include "db/controller_schema.hpp"
#include "db/run_op_log.hpp"

namespace wtc::experiments {
namespace {

std::string& record_oplog_slot() {
  static std::string path;
  return path;
}

std::string& replay_oplog_slot() {
  static std::string path;
  return path;
}

}  // namespace

void set_default_record_oplog(const std::string& path) {
  record_oplog_slot() = path;
}

const std::string& default_record_oplog() noexcept {
  return record_oplog_slot();
}

void set_default_replay_oplog(const std::string& path) {
  replay_oplog_slot() = path;
}

const std::string& default_replay_oplog() noexcept {
  return replay_oplog_slot();
}

ReplayWorkloadStats apply_op_log(db::Database& db,
                                 std::span<const db::ApiEvent> events) {
  ReplayWorkloadStats stats;
  // The log interleaves clients in arrival order; each gets its own
  // connection, exactly as in the recording run. The clock hands every
  // API call its recorded timestamp so out-of-region metadata (lock
  // stamps, access times) matches too — region bytes don't depend on it.
  sim::Time now = 0;
  std::map<sim::ProcessId, std::unique_ptr<db::DbApi>> clients;
  const auto api_for = [&](sim::ProcessId pid) -> db::DbApi& {
    auto& slot = clients[pid];
    if (slot == nullptr) {
      slot = std::make_unique<db::DbApi>(db, [&now]() { return now; });
      slot->init(pid);
    }
    return *slot;
  };
  for (const db::ApiEvent& event : events) {
    if (!event.is_update || event.status != db::Status::Ok) {
      continue;
    }
    now = event.time;
    db::DbApi& api = api_for(event.client);
    api.set_thread_id(event.thread);
    db::Status status = db::Status::Ok;
    switch (event.op) {
      case db::ApiOp::WriteRec:
        status = api.write_rec(
            event.table, event.record,
            std::span<const std::int32_t>(event.payload.data(),
                                          event.payload_len));
        break;
      case db::ApiOp::WriteFld:
        status = event.payload_len >= 1
                     ? api.write_fld(event.table, event.record, event.field,
                                     event.payload[0])
                     : db::Status::NoSuchField;
        break;
      case db::ApiOp::Move:
        status = api.move_rec(event.table, event.record, event.group);
        break;
      case db::ApiOp::Alloc: {
        db::RecordIndex out = 0;
        status = api.alloc_rec(event.table, event.group, out);
        if (status == db::Status::Ok && out != event.record) {
          // Allocation is deterministic (lowest free index); a different
          // index means the database was not at the recorded start state.
          ++stats.divergences;
        }
        break;
      }
      case db::ApiOp::Free:
        status = api.free_rec(event.table, event.record);
        break;
      default:
        continue;  // Init/Close/Txn events are not region mutations
    }
    ++stats.applied;
    if (status != db::Status::Ok) {
      ++stats.divergences;
    }
  }
  for (auto& [pid, api] : clients) {
    api->close();
  }
  return stats;
}

AuditRunResult run_replay_workload(const AuditRunParams& params,
                                   const std::string& path) {
  const db::OpLogReadResult log = db::load_op_log(path);
  if (!log.ok()) {
    throw std::runtime_error("replay workload: cannot load op log '" + path +
                             "': " + std::string(db::to_string(log.error)) +
                             " at byte " + std::to_string(log.error_offset));
  }
  auto database = db::make_controller_database(params.schema);
  const ReplayWorkloadStats stats = apply_op_log(*database, log.events);

  AuditRunResult result;
  result.replay_applied = stats.applied;
  result.replay_divergences = stats.divergences;
  if (params.capture_final_region) {
    const auto region = database->region();
    result.final_region.assign(region.begin(), region.end());
  }
  return result;
}

}  // namespace wtc::experiments
