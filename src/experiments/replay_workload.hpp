// Zero-simulation workload engine: drives a database from a captured
// whole-run op log (db/run_op_log.hpp) instead of simulating call
// processing.
//
// A recorded run's region is a deterministic function of the op stream:
// every mutation flowed through the instrumented API, allocation picks
// the lowest free index, and link maintenance is canonical. Re-applying
// the stream through a fresh DbApi therefore reproduces the recording
// run's region byte-for-byte — with none of the scheduler, CPU, client
// thread, or injector machinery. That is the workload arm of ISSUE 10:
// the dominant cost of a bench campaign is re-simulating call
// processing, and a captured log eliminates it (A16 gates >= 5x
// wall-clock).
//
// The shipped `workloads/*.oplog` captures (handoff storm, registration
// avalanche, diurnal load) are produced by tools/make_workloads with
// this same machinery.
#pragma once

#include <span>
#include <string>

#include "db/api.hpp"
#include "experiments/audit_runner.hpp"

namespace wtc::experiments {

struct ReplayWorkloadStats {
  std::uint64_t applied = 0;  ///< update ops re-issued through the API
  /// Re-issued ops whose outcome differed from the recording (non-Ok
  /// status, or an alloc landing on a different index). Nonzero means
  /// the log and the schema/seed state disagree — the replayed region
  /// is not byte-comparable.
  std::uint64_t divergences = 0;
};

/// Re-applies a recorded op stream to `db` through per-client DbApi
/// handles. `db` must be at the state recording started from (pristine
/// boot image for the shipped workloads).
ReplayWorkloadStats apply_op_log(db::Database& db,
                                 std::span<const db::ApiEvent> events);

/// Zero-simulation experiment run: builds the controller database from
/// `params.schema`, applies the log at `path`, and returns a result
/// whose `final_region` (when `params.capture_final_region`) is
/// byte-comparable against the recording run's.
[[nodiscard]] AuditRunResult run_replay_workload(const AuditRunParams& params,
                                                 const std::string& path);

// Process-wide default paths, wired by the bench binaries'
// `--record-oplog=<file>` / `--replay-oplog=<file>` flags
// (bench_util.hpp) and consumed by run_audit_series: recording captures
// run 0 of the series, replaying substitutes the zero-simulation engine
// for every run.
void set_default_record_oplog(const std::string& path);
[[nodiscard]] const std::string& default_record_oplog() noexcept;
void set_default_replay_oplog(const std::string& path);
[[nodiscard]] const std::string& default_replay_oplog() noexcept;

}  // namespace wtc::experiments
