// Parallel Monte-Carlo campaign runner.
//
// Every table, figure, and ablation in the evaluation is a campaign of
// *independent* per-seed simulation runs: each run owns its entire world
// (Scheduler, Node, Database, Cpu, Rng) on its own stack and shares no
// mutable state with its siblings. This runner fans those runs out across
// hardware threads and collects the results **in seed order** (run index
// order, not completion order), so aggregation — including floating-point
// accumulation, whose result depends on operand order — is bit-identical
// to the legacy serial loop. `jobs == 1` executes inline on the calling
// thread, i.e. the exact legacy serial path.
//
// When an observability Capture is installed (obs/capture.hpp), each run
// records metrics/trace events into its own thread-local Recorder and the
// runner absorbs them in run-index order after the join — so the merged
// snapshot is identical for any `jobs` value. See DESIGN.md §9 for the
// determinism contract and §10 for the observability layer.
#pragma once

#include <cstddef>
#include <functional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace wtc::experiments {

/// A run raised an exception; the campaign captured it (instead of letting
/// it escape a worker thread and `std::terminate` the process) and rethrew
/// it on the submitting thread with the failing run index in the message.
class CampaignError : public std::runtime_error {
 public:
  CampaignError(std::size_t run_index, const std::string& message)
      : std::runtime_error(message), run_index_(run_index) {}
  [[nodiscard]] std::size_t run_index() const noexcept { return run_index_; }

 private:
  std::size_t run_index_;
};

struct CampaignOptions {
  /// Worker threads. 0 = the process-wide default (`--jobs=N` in the
  /// bench binaries), which itself defaults to hardware_concurrency.
  std::size_t jobs = 0;
  /// Prefix for the stderr progress line and error messages.
  std::string label = "campaign";
  /// Invoked (serialized, completion order) after each run finishes with
  /// the number of completed runs so far and the campaign total. Fires
  /// exactly once per completed run.
  std::function<void(std::size_t completed, std::size_t total)> on_progress;
  /// stderr progress line ("label: run 7/30, elapsed 3.2 s, ETA 10.4 s").
  /// -1 = inherit the process-wide setting, 0 = off, 1 = on.
  int stderr_progress = -1;
};

/// Process-wide default worker count used when `CampaignOptions::jobs`
/// is 0. A value of 0 means hardware_concurrency.
void set_default_campaign_jobs(std::size_t jobs) noexcept;
[[nodiscard]] std::size_t default_campaign_jobs() noexcept;

/// Process-wide default for the stderr progress line (off by default so
/// tests and library users stay quiet; the bench binaries switch it on).
void set_campaign_progress(bool enabled) noexcept;
[[nodiscard]] bool campaign_progress() noexcept;

/// Resolves a requested job count: 0 falls back to the process default,
/// and a default of 0 falls back to hardware_concurrency (min 1).
[[nodiscard]] std::size_t resolve_campaign_jobs(std::size_t requested) noexcept;

namespace detail {
/// Runs `body(0) .. body(total-1)` across the resolved number of worker
/// threads (inline when that is 1). Any exception from `body` stops the
/// dispatch of further runs and is rethrown as CampaignError for the
/// lowest failing run index.
void run_indexed(std::size_t total,
                 const std::function<void(std::size_t)>& body,
                 const CampaignOptions& options);
}  // namespace detail

/// Runs `fn(0) .. fn(runs-1)` and returns the results indexed by run —
/// seed order, regardless of completion order or worker count.
template <typename Fn>
auto run_campaign(std::size_t runs, Fn&& fn, CampaignOptions options = {})
    -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> {
  using Result = std::decay_t<decltype(fn(std::size_t{0}))>;
  std::vector<Result> results(runs);
  detail::run_indexed(
      runs, [&](std::size_t i) { results[i] = fn(i); }, options);
  return results;
}

/// Submit-then-join sugar over `run_campaign`: derive N parameter sets
/// from a base seed (e.g. via `Rng::fork`-style per-run seeding), submit
/// them, and join with results ordered by submission.
template <typename Params, typename Result>
class Campaign {
 public:
  using Runner = std::function<Result(const Params&)>;

  explicit Campaign(Runner runner, CampaignOptions options = {})
      : runner_(std::move(runner)), options_(std::move(options)) {}

  /// Queues one run. Order of submission = order of results.
  void submit(Params params) { params_.push_back(std::move(params)); }

  [[nodiscard]] std::size_t size() const noexcept { return params_.size(); }

  /// Executes all submitted runs and returns their results in submission
  /// order. The submitted parameter sets are consumed.
  [[nodiscard]] std::vector<Result> join() {
    std::vector<Result> results = run_campaign(
        params_.size(),
        [this](std::size_t i) { return runner_(params_[i]); }, options_);
    params_.clear();
    return results;
  }

 private:
  Runner runner_;
  CampaignOptions options_;
  std::vector<Params> params_;
};

}  // namespace wtc::experiments
