// Experiment runner for the prioritized-audit assessment (§5.3,
// Figures 5 & 6): six tables with Table-5 size/access ratios, an emulated
// load client, exponential error injection under two spatial error models,
// and the periodic audit in one-table-per-tick mode — prioritized or
// round-robin.
#pragma once

#include "audit/process.hpp"
#include "callproc/emulated_client.hpp"
#include "common/stats.hpp"
#include "db/controller_schema.hpp"
#include "inject/db_injector.hpp"

namespace wtc::experiments {

struct PrioritizedRunParams {
  sim::Duration duration = 600 * static_cast<sim::Duration>(sim::kSecond);
  bool prioritized = true;
  /// Exponential mean time between errors (Table 5: 1, 2, 4 seconds).
  sim::Duration error_mtbf = 2 * static_cast<sim::Duration>(sim::kSecond);
  inject::ErrorDistribution distribution =
      inject::ErrorDistribution::UniformDataOnly;
  /// Temporal error process (Table 5 uses Exponential; Bursty exists for
  /// the error-history ablation).
  inject::ArrivalModel arrival = inject::ArrivalModel::Exponential;
  /// Table 5: audit frequency "1 table every 5 seconds".
  sim::Duration audit_tick = 5 * static_cast<sim::Duration>(sim::kSecond);
  callproc::EmulatedLoadConfig load;
  audit::PriorityWeights weights;
  /// Scale 64 puts the hot tables' consumption time on the order of the
  /// prioritized audit interval — the regime where checking hot tables
  /// more often actually intercepts escapes (and where the cold bulk
  /// table's slightly longer interval shows up as the small latency
  /// increase the paper reports under uniform errors).
  db::BenchSchemaParams schema{.scale = 64};
  std::uint64_t seed = 1;
};

struct PrioritizedRunResult {
  std::size_t injected = 0;
  std::size_t escaped = 0;  ///< used by the application before detection
  std::size_t caught = 0;
  double escaped_percent = 0.0;
  double detection_latency_s = 0.0;  ///< mean over caught errors
};

[[nodiscard]] PrioritizedRunResult run_prioritized_experiment(
    const PrioritizedRunParams& params);

/// Averages several seeds of the same configuration.
[[nodiscard]] PrioritizedRunResult run_prioritized_series(
    PrioritizedRunParams params, std::size_t runs);

}  // namespace wtc::experiments
