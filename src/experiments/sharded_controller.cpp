#include "experiments/sharded_controller.hpp"

#include <algorithm>

namespace wtc::experiments {

ShardedController::ShardedController(db::ShardedDb& db,
                                     ShardedControllerConfig config)
    : db_(db), config_(std::move(config)) {
  shards_.reserve(db_.shard_count());
  for (std::uint32_t s = 0; s < db_.shard_count(); ++s) {
    auto shard = std::make_unique<Shard>();
    Shard* raw = shard.get();
    // Construction-time obs activity (spawns, the first audit start)
    // belongs to this shard's recorder, same as all later activity.
    obs::ScopedRecorder scoped(raw->recorder);
    auto factory = [this, raw, s]() {
      raw->audit = std::make_shared<audit::AuditProcess>(
          db_.shard(s), raw->cpu, config_.audit, &raw->sink, nullptr);
      raw->audit->engine().set_shard_id(s);
      return raw->node.spawn("audit", raw->audit);
    };
    shard->managers =
        manager::spawn_manager_pair(raw->node, factory, config_.manager);
    // Drain the spawn-time events so the audit process exists (and its
    // engine is addressable) before the constructor returns.
    shard->scheduler.run_until(0);
    shards_.push_back(std::move(shard));
  }
}

void ShardedController::ensure_pool(std::size_t workers) {
  if (workers <= 1) {
    return;
  }
  if (!pool_ || pool_->threads() < workers - 1) {
    pool_ = std::make_unique<common::WorkerPool>(workers - 1);
  }
}

void ShardedController::fan(std::size_t workers,
                            const std::function<void(std::uint32_t)>& per_shard) {
  const std::size_t count = shards_.size();
  workers = std::clamp<std::size_t>(workers, 1, count);
  const auto job = [&](std::size_t w) {
    for (std::size_t s = w; s < count; s += workers) {
      obs::ScopedRecorder scoped(shards_[s]->recorder);
      per_shard(static_cast<std::uint32_t>(s));
    }
  };
  if (workers == 1) {
    job(0);
    return;
  }
  ensure_pool(workers);
  pool_->dispatch(workers, job);
}

void ShardedController::advance_to(sim::Time target, std::size_t workers) {
  fan(workers, [&](std::uint32_t s) { shards_[s]->scheduler.run_until(target); });
}

std::vector<sim::Duration> ShardedController::run_audit_cycles(
    std::size_t workers) {
  std::vector<sim::Duration> makespans(shards_.size(), 0);
  fan(workers, [&](std::uint32_t s) {
    auto& engine = shards_[s]->audit->engine();
    std::vector<db::TableId> order(db_.shard(s).table_count());
    for (std::size_t t = 0; t < order.size(); ++t) {
      order[t] = static_cast<db::TableId>(t);
    }
    if (config_.audit.engine.incremental) {
      engine.incremental_pass(order);
    } else {
      engine.full_pass(order);
    }
    makespans[s] = engine.last_cycle_makespan();
  });
  return makespans;
}

obs::MetricsSnapshot ShardedController::merged_shard_metrics() const {
  obs::MetricsSnapshot merged;
  for (const auto& shard : shards_) {
    merged.merge(shard->recorder.snapshot());
  }
  return merged;
}

}  // namespace wtc::experiments
