// The sharded multi-controller deployment: one full controller stack per
// database shard.
//
// ShardedDb (db/shard_router.hpp) gives each shard its own region, dirty
// grid, and shadow indexes; this layer gives each shard the rest of the
// paper's Figure-1 stack — a simulated node with its own virtual clock, a
// CPU contention model, an audit process (whose engine runs the PR-7
// parallel/budgeted cycle configuration), and a duplicated active/standby
// manager pair supervising it. Nothing is shared between shards except
// the WorkerPool that fans their work across host cores, so:
//   * audit cycles on different shards run truly concurrently, and
//   * a fault (or overload) on one shard cannot perturb another shard's
//     audit latency, restarts, or findings — the isolation property
//     bench/ablation_sharded_db gates on.
//
// Determinism: every shard owns an obs::Recorder; whichever host worker
// advances a shard installs that shard's recorder first, so all of shard
// s's metrics land in recorder s regardless of how shards are assigned to
// workers. merged_shard_metrics() folds them in ascending shard order,
// making the merged snapshot bit-identical at any worker count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "audit/process.hpp"
#include "common/worker_pool.hpp"
#include "db/shard_router.hpp"
#include "manager/manager.hpp"
#include "obs/metrics.hpp"
#include "sim/cpu.hpp"
#include "sim/node.hpp"

namespace wtc::experiments {

struct ShardedControllerConfig {
  /// Per-shard audit process configuration (engine.audit_threads,
  /// engine.cycle_budget, periodic_enabled, ... apply shard-locally).
  audit::AuditProcessConfig audit;
  /// Per-shard duplicated-manager configuration.
  manager::ManagerConfig manager;
};

/// Findings collected from one shard's audit stack (every Finding carries
/// its shard id, stamped by the shard's engine).
class FindingLog final : public audit::ReportSink {
 public:
  void on_finding(const audit::Finding& finding) override {
    findings_.push_back(finding);
  }
  [[nodiscard]] const std::vector<audit::Finding>& findings() const noexcept {
    return findings_;
  }

 private:
  std::vector<audit::Finding> findings_;
};

class ShardedController {
 public:
  /// Builds one controller stack per shard of `db` (which must outlive
  /// this object). Spawns each shard's manager pair and audit process
  /// immediately; the shard's engine is stamped with its shard id.
  ShardedController(db::ShardedDb& db, ShardedControllerConfig config);

  ShardedController(const ShardedController&) = delete;
  ShardedController& operator=(const ShardedController&) = delete;

  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }

  // --- per-shard stack access ---
  [[nodiscard]] sim::Scheduler& scheduler(std::uint32_t s) {
    return shards_.at(s)->scheduler;
  }
  [[nodiscard]] sim::Node& node(std::uint32_t s) { return shards_.at(s)->node; }
  [[nodiscard]] audit::AuditProcess& audit(std::uint32_t s) {
    return *shards_.at(s)->audit;
  }
  [[nodiscard]] audit::AuditEngine& engine(std::uint32_t s) {
    return shards_.at(s)->audit->engine();
  }
  [[nodiscard]] manager::ManagerPair& managers(std::uint32_t s) {
    return shards_.at(s)->managers;
  }
  [[nodiscard]] const std::vector<audit::Finding>& findings(
      std::uint32_t s) const {
    return shards_.at(s)->sink.findings();
  }
  [[nodiscard]] obs::Recorder& recorder(std::uint32_t s) {
    return shards_.at(s)->recorder;
  }

  /// Advances every shard's virtual clock to `target`, fanning shards
  /// across `workers` host threads (worker w handles shards w, w+workers,
  /// ... — a fixed assignment, though results do not depend on it: each
  /// shard's sim is self-contained and metered into its own recorder).
  void advance_to(sim::Time target, std::size_t workers);

  /// Runs one audit cycle (full or incremental per the engine config) on
  /// every shard over all tables in ascending order, fanned across
  /// `workers` host threads. Returns the per-shard modelled cycle
  /// makespan (engine.last_cycle_makespan()), indexed by shard — the
  /// deterministic latency signal the isolation gate compares.
  std::vector<sim::Duration> run_audit_cycles(std::size_t workers);

  /// Per-shard metric snapshots merged in ascending shard order —
  /// bit-identical for any `workers` value passed to the fan-out calls.
  [[nodiscard]] obs::MetricsSnapshot merged_shard_metrics() const;

 private:
  /// One shard's full controller stack. Address-stable (held by
  /// unique_ptr) because the audit factory closure captures it.
  struct Shard {
    Shard() : node(scheduler) {}

    sim::Scheduler scheduler;
    sim::Node node;
    sim::Cpu cpu;
    obs::Recorder recorder;
    FindingLog sink;
    std::shared_ptr<audit::AuditProcess> audit;
    manager::ManagerPair managers;
  };

  /// Fans `per_shard(s)` over all shards on `workers` host threads, with
  /// shard s's recorder installed around its call.
  void fan(std::size_t workers, const std::function<void(std::uint32_t)>& per_shard);
  void ensure_pool(std::size_t workers);

  db::ShardedDb& db_;
  ShardedControllerConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<common::WorkerPool> pool_;
};

}  // namespace wtc::experiments
