// Table-10 system-wide coverage arithmetic (§6.1.4).
//
// Coverage = 100% - (SystemDetection + FailSilenceViolation + Hang)% for
// client-targeted errors, 100% - escaped% for database-targeted errors,
// and the weighted mix for the paper's assumed 25% client / 75% database
// error distribution (derived from the relative sizes of the client text
// segment and the database memory image).
#pragma once

#include <array>

namespace wtc::experiments {

/// Percentages, one per configuration in the paper's column order:
/// {no protection, audit only, PECOS only, PECOS + audit}.
using ConfigRow = std::array<double, 4>;

struct CoverageInputs {
  /// Client coverage per configuration (from Table-9-style campaigns).
  ConfigRow client_coverage;
  /// Database escaped-error percentage with and without audits (from the
  /// Table-3 experiment). PECOS does not protect the database, so the
  /// database row only depends on the audit axis.
  double db_escaped_without_audit_pct = 63.0;
  double db_escaped_with_audit_pct = 13.0;
};

struct Table10 {
  ConfigRow client;
  ConfigRow database;
  ConfigRow mixed;
};

[[nodiscard]] inline Table10 compute_table10(const CoverageInputs& in,
                                             double client_fraction = 0.25) {
  Table10 out;
  out.client = in.client_coverage;
  const double db_without = 100.0 - in.db_escaped_without_audit_pct;
  const double db_with = 100.0 - in.db_escaped_with_audit_pct;
  out.database = {db_without, db_with, db_without, db_with};
  for (std::size_t i = 0; i < 4; ++i) {
    out.mixed[i] = client_fraction * out.client[i] +
                   (1.0 - client_fraction) * out.database[i];
  }
  return out;
}

}  // namespace wtc::experiments
