#include "experiments/audit_runner.hpp"

#include <stdexcept>

#include "db/run_op_log.hpp"
#include "experiments/campaign.hpp"
#include "experiments/replay_workload.hpp"
#include "manager/manager.hpp"
#include "sim/cpu.hpp"
#include "sim/scheduler.hpp"

namespace wtc::experiments {

AuditRunResult run_audit_experiment(const AuditRunParams& params) {
  if (!params.replay_oplog_path.empty()) {
    // Zero-simulation path: the captured log IS the workload.
    return run_replay_workload(params, params.replay_oplog_path);
  }

  sim::Scheduler scheduler;
  sim::Node node(scheduler);
  sim::Cpu cpu;
  common::Rng rng(params.seed);

  auto database = db::make_controller_database(params.schema);
  db::Database& db = *database;
  const auto ids = db::resolve_controller_ids(db.schema());

  inject::CorruptionOracle oracle(db, [&scheduler]() { return scheduler.now(); });
  db.set_observer(&oracle);

  callproc::ClientDirectory directory(node, db);

  // Whole-run op-log tee: records every successful API event ahead of the
  // audit IPC adapter. Installed when a file capture was requested or the
  // replay audit arm needs the in-memory log; recording starts at the
  // pristine boot image, which is exactly the replay validity baseline.
  audit::AuditProcessConfig audit_config = params.audit;
  const bool recording =
      !params.record_oplog_path.empty() || audit_config.replay_audit;

  // Audit process under manager supervision (Figure 1).
  sim::ProcessId audit_pid = sim::kNoProcess;
  std::shared_ptr<manager::Manager> mgr;

  audit::IpcNotificationSink sink(node, [&audit_pid]() { return audit_pid; });
  db::RunOpLog oplog(params.audits_enabled ? &sink : nullptr);
  if (!params.record_oplog_path.empty() &&
      !oplog.open_file(params.record_oplog_path)) {
    throw std::runtime_error("cannot open op-log file '" +
                             params.record_oplog_path + "' for recording");
  }
  if (audit_config.replay_audit) {
    audit_config.replay_log = &oplog;
  }

  const auto spawn_audit = [&]() {
    auto process = std::make_shared<audit::AuditProcess>(db, cpu, audit_config,
                                                         &oracle, &directory);
    audit_pid = node.spawn("audit", process);
    return audit_pid;
  };
  if (params.audits_enabled) {
    if (params.with_manager) {
      mgr = std::make_shared<manager::Manager>(spawn_audit);
      node.spawn("manager", mgr);
    } else {
      spawn_audit();
    }
  }

  db::NotificationSink* client_sink =
      recording ? static_cast<db::NotificationSink*>(&oplog)
                : (params.audits_enabled
                       ? static_cast<db::NotificationSink*>(&sink)
                       : nullptr);
  auto client = std::make_shared<callproc::NativeCallClient>(
      db, ids, cpu, rng.fork(1), params.client, client_sink);
  const sim::ProcessId client_pid = node.spawn("client", client);
  directory.register_client(client_pid, client.get());

  if (params.injections_enabled) {
    auto injector = std::make_shared<inject::DbErrorInjector>(
        db, oracle, rng.fork(2), params.injector);
    node.spawn("injector", injector);
  }

  scheduler.run_until(static_cast<sim::Time>(params.duration));
  if (!params.record_oplog_path.empty() && !oplog.close_file()) {
    throw std::runtime_error("op-log file '" + params.record_oplog_path +
                             "' failed to flush cleanly");
  }

  AuditRunResult result;
  result.oplog_recorded = oplog.recorded();
  if (params.capture_final_region) {
    const auto region = db.region();
    result.final_region.assign(region.begin(), region.end());
  }
  result.oracle = oracle.summary();
  result.injections = oracle.records();
  result.client = client->stats();
  result.audit_findings = oracle.audit_findings();
  result.manager_restarts = mgr ? mgr->restarts() : 0;
  result.avg_setup_ms = client->stats().setup_time_ms.mean();
  if (params.audits_enabled && node.alive(audit_pid)) {
    if (auto process = node.find(audit_pid)) {
      auto* audit = static_cast<audit::AuditProcess*>(process.get());
      result.audit_cycles = audit->cycles();
      result.audit_cost = audit->total_cost();
      result.full_sweeps = audit->engine().full_sweeps();
      result.audit_makespan = audit->engine().total_makespan();
      result.budget_exhausted_cycles = audit->engine().budget_exhausted_cycles();
      result.deferred_units = audit->engine().deferred_units_total();
      if (const audit::AuditElement* element =
              audit->find_element("replay-audit")) {
        const auto* replay =
            static_cast<const audit::ReplayAuditElement*>(element);
        result.replay_runs = replay->runs();
        result.replay = replay->last_stats();
      }
    }
  }
  return result;
}

ErrorBreakdown classify_injections(
    const std::vector<inject::InjectionRecord>& injections) {
  ErrorBreakdown b;
  for (const auto& record : injections) {
    const bool caught = record.fate == inject::ErrorFate::Caught;
    const bool escaped = record.fate == inject::ErrorFate::Escaped;
    if (!caught && !escaped) {
      ++b.no_effect;
      continue;
    }
    switch (record.kind) {
      case inject::TargetKind::Catalog:
      case inject::TargetKind::StaticTable:
        caught ? ++b.static_detected : ++b.static_escaped;
        break;
      case inject::TargetKind::RecordHeader:
        caught ? ++b.structural_detected : ++b.structural_escaped;
        break;
      case inject::TargetKind::RangedField:
      case inject::TargetKind::KeyField:
        if (caught) {
          // Attribute to the technique that actually fired.
          if (record.caught_by == audit::Technique::SemanticCheck ||
              record.caught_by == audit::Technique::SelectiveMonitor) {
            ++b.dynamic_semantic_detected;
          } else {
            ++b.dynamic_range_detected;
          }
        } else {
          ++b.dynamic_escaped_timing;  // a rule existed; the audit was late
        }
        break;
      case inject::TargetKind::UnruledField:
        if (caught) {
          if (record.caught_by == audit::Technique::RangeCheck ||
              record.caught_by == audit::Technique::StructuralCheck ||
              record.caught_by == audit::Technique::StaticChecksum) {
            ++b.dynamic_range_detected;  // collateral recovery localized it
          } else {
            ++b.dynamic_semantic_detected;
          }
        } else {
          ++b.dynamic_escaped_no_rule;
        }
        break;
    }
  }
  return b;
}

AggregateAuditResult run_audit_series(AuditRunParams params, std::size_t runs) {
  // Process-wide --record-oplog/--replay-oplog defaults apply at the
  // series level: recording captures run 0 only (one file, one log);
  // replay substitutes the captured workload in every run.
  if (params.record_oplog_path.empty()) {
    params.record_oplog_path = default_record_oplog();
  }
  if (params.replay_oplog_path.empty()) {
    params.replay_oplog_path = default_replay_oplog();
  }

  // Per-run seeds: the same LCG chain the legacy serial loop advanced
  // in-place, precomputed so runs can execute in parallel.
  std::vector<std::uint64_t> seeds(runs);
  std::uint64_t seed = params.seed;
  for (std::size_t i = 0; i < runs; ++i) {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    seeds[i] = seed;
  }

  CampaignOptions options;
  options.label = "audit series";
  const std::vector<AuditRunResult> results = run_campaign(
      runs,
      [&](std::size_t i) {
        AuditRunParams run_params = params;
        run_params.seed = seeds[i];
        if (i > 0) {
          run_params.record_oplog_path.clear();  // run 0 owns the capture file
        }
        return run_audit_experiment(run_params);
      },
      options);

  // Aggregate in seed order: RunningStats accumulation is order-sensitive
  // in floating point, so this keeps parallel output bit-identical to the
  // serial path.
  AggregateAuditResult aggregate;
  for (const AuditRunResult& run : results) {
    aggregate.injected += run.oracle.injected;
    aggregate.escaped += run.oracle.escaped;
    aggregate.caught += run.oracle.caught;
    aggregate.no_effect += run.oracle.no_effect();
    aggregate.setup_ms.add(run.avg_setup_ms);
    if (run.oracle.detection_latency_s.count() > 0) {
      aggregate.detection_latency_s.add(run.oracle.detection_latency_s.mean());
    }
    if (run.audit_cycles > 0) {
      aggregate.audit_cost_per_cycle_us.add(
          static_cast<double>(run.audit_cost) /
          static_cast<double>(run.audit_cycles));
      aggregate.cycle_latency_us.add(
          static_cast<double>(run.audit_makespan) /
          static_cast<double>(run.audit_cycles));
    }
    aggregate.audit_cycles += run.audit_cycles;
    aggregate.full_sweeps += run.full_sweeps;
    aggregate.budget_exhausted_cycles += run.budget_exhausted_cycles;
    aggregate.deferred_units += run.deferred_units;
    const ErrorBreakdown b = classify_injections(run.injections);
    aggregate.breakdown.structural_detected += b.structural_detected;
    aggregate.breakdown.structural_escaped += b.structural_escaped;
    aggregate.breakdown.static_detected += b.static_detected;
    aggregate.breakdown.static_escaped += b.static_escaped;
    aggregate.breakdown.dynamic_range_detected += b.dynamic_range_detected;
    aggregate.breakdown.dynamic_semantic_detected += b.dynamic_semantic_detected;
    aggregate.breakdown.dynamic_escaped_timing += b.dynamic_escaped_timing;
    aggregate.breakdown.dynamic_escaped_no_rule += b.dynamic_escaped_no_rule;
    aggregate.breakdown.no_effect += b.no_effect;
  }
  return aggregate;
}

}  // namespace wtc::experiments
