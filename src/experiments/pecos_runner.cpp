#include "experiments/pecos_runner.hpp"

#include <algorithm>
#include <unordered_set>

#include "callproc/control.hpp"
#include "experiments/campaign.hpp"
#include "callproc/vm_driver.hpp"
#include "callproc/vm_program.hpp"
#include "db/controller_schema.hpp"
#include "inject/oracle.hpp"
#include "pecos/bssc.hpp"
#include "pecos/monitor.hpp"
#include "sim/cpu.hpp"
#include "sim/scheduler.hpp"

namespace wtc::experiments {

PecosRunResult run_pecos_single(const PecosRunParams& params) {
  sim::Scheduler scheduler;
  sim::Node node(scheduler);
  sim::Cpu cpu;
  common::Rng rng(params.seed);

  auto database = db::make_controller_database();
  db::Database& db = *database;
  const auto ids = db::resolve_controller_ids(db.schema());

  inject::CorruptionOracle oracle(db, [&scheduler]() { return scheduler.now(); });
  db.set_observer(&oracle);
  callproc::ClientDirectory directory(node, db);

  // Audit process (no manager: these runs are short and the audit process
  // itself is not an injection target here).
  sim::ProcessId audit_pid = sim::kNoProcess;
  std::shared_ptr<audit::AuditProcess> audit_process;
  if (params.audit) {
    audit::AuditProcessConfig audit_cfg;
    audit_cfg.period = params.audit_period;
    audit_cfg.event_triggered = true;
    audit_cfg.progress_timeout = 5 * static_cast<sim::Duration>(sim::kSecond);
    audit_cfg.engine.recent_write_grace =
        100 * static_cast<sim::Duration>(sim::kMillisecond);
    audit_process = std::make_shared<audit::AuditProcess>(db, cpu, audit_cfg,
                                                          &oracle, &directory);
    audit_pid = node.spawn("audit", audit_process);
  }
  audit::IpcNotificationSink sink(node, [&audit_pid]() { return audit_pid; });

  // The MiniVM client, optionally instrumented with PECOS.
  callproc::VmProgramParams prog_params;
  prog_params.ids = ids;
  prog_params.num_subscribers =
      static_cast<std::int32_t>(db.schema().tables[ids.subscriber].num_records);
  prog_params.calls_per_thread = params.calls_per_thread;
  const vm::Program program = callproc::build_call_program(prog_params);

  std::optional<pecos::Plan> plan;
  std::optional<pecos::BsscPlan> bssc_plan;
  std::unique_ptr<vm::ExecMonitor> monitor;
  switch (params.cfc) {
    case CfcMode::None:
      break;
    case CfcMode::Pecos:
      plan.emplace(pecos::Plan::instrument(program));
      monitor = std::make_unique<pecos::PecosMonitor>(*plan);
      break;
    case CfcMode::PostCheck:
      plan.emplace(pecos::Plan::instrument(program));
      monitor = std::make_unique<pecos::PostCheckMonitor>(*plan);
      break;
    case CfcMode::Bssc:
      bssc_plan.emplace(pecos::BsscPlan::instrument(program));
      monitor = std::make_unique<pecos::BsscMonitor>(*bssc_plan);
      break;
  }

  callproc::VmDriverConfig driver_cfg;
  driver_cfg.threads = params.threads;
  auto driver = std::make_shared<callproc::VmClientDriver>(
      program, db, cpu, rng.fork(7), driver_cfg,
      params.audit ? &sink : nullptr, monitor.get());
  const sim::ProcessId client_pid = node.spawn("client", driver);
  directory.register_client(client_pid, driver.get());

  inject::ClientErrorInjector injector(driver->vmp(), scheduler, rng.fork(9),
                                       params.injector);
  injector.arm();

  const auto deadline = static_cast<sim::Time>(params.deadline);
  while (!driver->finished() && scheduler.now() < deadline && scheduler.step()) {
  }

  // --- gather the run's evidence (Table 7) ---
  inject::RunEvents events;
  events.activated = injector.activated();
  events.first_pecos = driver->first_pecos_time();
  events.crash = driver->crash_time();
  events.first_hang = driver->first_hang_time();
  events.first_audit = oracle.first_finding_time();
  if (!driver->finished()) {
    // Ran out of virtual time without completing: the client is wedged.
    const sim::Time t = scheduler.now();
    if (!events.first_hang || *events.first_hang > t) {
      events.first_hang = t;
    }
  }

  std::unordered_set<std::uint32_t> succeeded;
  for (const auto& emit : driver->vmp().emits()) {
    if (emit.code == callproc::kEmitMismatch &&
        (!events.first_fsv || emit.time < *events.first_fsv)) {
      events.first_fsv = emit.time;
    }
    if (emit.code == callproc::kEmitAllDone) {
      succeeded.insert(emit.thread);
    }
  }
  events.all_threads_succeeded = succeeded.size() == params.threads;

  PecosRunResult result;
  result.outcome = inject::classify(events);
  result.activated = events.activated;
  result.activations = injector.activations();
  result.pecos_detections = driver->pecos_detections();
  result.crashed = driver->crashed();
  result.audit_findings = oracle.audit_findings();
  result.hung_threads = driver->hung_threads();
  return result;
}

double CampaignCounts::coverage_percent() const {
  const std::size_t act = activated();
  if (act == 0) {
    return 0.0;
  }
  const std::size_t uncovered = count(inject::Outcome::SystemDetection) +
                                count(inject::Outcome::FailSilenceViolation) +
                                count(inject::Outcome::ClientHang);
  return 100.0 - 100.0 * static_cast<double>(uncovered) / static_cast<double>(act);
}

CampaignCounts run_pecos_campaign(PecosRunParams base, std::size_t runs_per_model) {
  struct RunSpec {
    inject::ErrorModel model;
    std::uint64_t seed;
  };
  const inject::ErrorModel models[] = {
      inject::ErrorModel::ADDIF, inject::ErrorModel::DATAIF,
      inject::ErrorModel::DATAOF, inject::ErrorModel::DATAInF};
  const std::uint64_t base_seed = base.seed;
  std::vector<RunSpec> specs;
  specs.reserve(4 * runs_per_model);
  for (const auto model : models) {
    for (std::size_t i = 0; i < runs_per_model; ++i) {
      // Seeds depend only on (base seed, model, run index) so campaigns
      // with different protection configurations inject the *same* error
      // sequences — a paired comparison across the four columns.
      std::uint64_t seed = base_seed ^ (static_cast<std::uint64_t>(model) << 32) ^
                           (i * 0x9E3779B97F4A7C15ull);
      seed = seed * 6364136223846793005ull + 1442695040888963407ull;
      specs.push_back({model, seed});
    }
  }

  CampaignOptions options;
  options.label = "pecos campaign";
  const std::vector<inject::Outcome> outcomes = run_campaign(
      specs.size(),
      [&](std::size_t i) {
        PecosRunParams params = base;
        params.injector.model = specs[i].model;
        params.seed = specs[i].seed;
        return run_pecos_single(params).outcome;
      },
      options);

  CampaignCounts counts;
  for (const inject::Outcome outcome : outcomes) {
    counts.add(outcome);
  }
  return counts;
}

}  // namespace wtc::experiments
