#include "experiments/pecos_runner.hpp"

#include <algorithm>
#include <unordered_set>

#include "audit/cf_attest.hpp"
#include "audit/messages.hpp"
#include "callproc/control.hpp"
#include "experiments/campaign.hpp"
#include "callproc/vm_driver.hpp"
#include "callproc/vm_program.hpp"
#include "db/controller_schema.hpp"
#include "db/op_log.hpp"
#include "inject/oracle.hpp"
#include "manager/healer.hpp"
#include "manager/manager.hpp"
#include "pecos/bssc.hpp"
#include "pecos/cf_log.hpp"
#include "pecos/monitor.hpp"
#include "sim/cpu.hpp"
#include "sim/scheduler.hpp"

namespace wtc::experiments {

PecosRunResult run_pecos_single(const PecosRunParams& params) {
  sim::Scheduler scheduler;
  sim::Node node(scheduler);
  sim::Cpu cpu;
  common::Rng rng(params.seed);

  auto database = db::make_controller_database();
  db::Database& db = *database;
  const auto ids = db::resolve_controller_ids(db.schema());

  inject::CorruptionOracle oracle(db, [&scheduler]() { return scheduler.now(); });
  db.set_observer(&oracle);
  callproc::ClientDirectory directory(node, db);

  // The MiniVM client's program, optionally instrumented with PECOS.
  callproc::VmProgramParams prog_params;
  prog_params.ids = ids;
  prog_params.num_subscribers =
      static_cast<std::int32_t>(db.schema().tables[ids.subscriber].num_records);
  prog_params.calls_per_thread = params.calls_per_thread;
  const vm::Program program = callproc::build_call_program(prog_params);

  std::optional<pecos::Plan> plan;
  std::optional<pecos::BsscPlan> bssc_plan;
  std::unique_ptr<vm::ExecMonitor> monitor;
  pecos::PecosMonitor* pecos_monitor = nullptr;
  pecos::PostCheckMonitor* postcheck_monitor = nullptr;
  switch (params.cfc) {
    case CfcMode::None:
      break;
    case CfcMode::Pecos: {
      plan.emplace(pecos::Plan::instrument(program));
      auto m = std::make_unique<pecos::PecosMonitor>(*plan);
      pecos_monitor = m.get();
      monitor = std::move(m);
      break;
    }
    case CfcMode::PostCheck: {
      plan.emplace(pecos::Plan::instrument(program));
      auto m = std::make_unique<pecos::PostCheckMonitor>(*plan);
      postcheck_monitor = m.get();
      monitor = std::move(m);
      break;
    }
    case CfcMode::Bssc:
      bssc_plan.emplace(pecos::BsscPlan::instrument(program));
      monitor = std::make_unique<pecos::BsscMonitor>(*bssc_plan);
      break;
  }

  // ACFA needs the CFG plan, so it rides the Pecos/PostCheck modes only.
  const bool cf_attest_active = params.cf_attest && plan.has_value();
  const bool heal_active = params.heal && plan.has_value();

  std::optional<pecos::CfLog> cf_log;
  if (cf_attest_active || heal_active) {
    cf_log.emplace(params.cf_log_capacity);
    if (pecos_monitor != nullptr) {
      pecos_monitor->set_cf_log(&*cf_log);
    } else if (postcheck_monitor != nullptr) {
      postcheck_monitor->set_cf_log(&*cf_log);
    }
  }

  // Audit process. The attestation element lives here, so ACFA runs bring
  // up a (minimal, if params.audit is off) audit process; healing
  // additionally brings up the duplicated manager pair to route
  // violations through the active manager.
  sim::ProcessId audit_pid = sim::kNoProcess;
  sim::ProcessId client_pid = sim::kNoProcess;
  std::shared_ptr<audit::AuditProcess> audit_process;
  audit::CfAttestElement* attest_element = nullptr;
  std::function<void(const audit::CfViolation&)> violation_route;
  if (params.audit || cf_attest_active) {
    audit::AuditProcessConfig audit_cfg;
    audit_cfg.period = params.audit_period;
    audit_cfg.event_triggered = params.audit;
    audit_cfg.periodic_enabled = params.audit;
    audit_cfg.progress_indicator = params.audit;
    audit_cfg.progress_timeout = 5 * static_cast<sim::Duration>(sim::kSecond);
    audit_cfg.engine.recent_write_grace =
        100 * static_cast<sim::Duration>(sim::kMillisecond);
    audit_process = std::make_shared<audit::AuditProcess>(db, cpu, audit_cfg,
                                                          &oracle, &directory);
    if (cf_attest_active) {
      audit::CfAttestConfig attest_cfg;
      attest_cfg.slice_period = params.slice_period;
      auto element = std::make_unique<audit::CfAttestElement>(
          *cf_log, *plan, attest_cfg, [&client_pid]() { return client_pid; },
          heal_active ? std::function<void(const audit::CfViolation&)>(
                            [&violation_route](const audit::CfViolation& v) {
                              if (violation_route) {
                                violation_route(v);
                              }
                            })
                      : std::function<void(const audit::CfViolation&)>());
      attest_element = element.get();
      // Registered before the spawn so on_start arms the slice timer.
      audit_process->add_element(std::move(element));
    }
    audit_pid = node.spawn("audit", audit_process);
  }
  audit::IpcNotificationSink sink(node, [&audit_pid]() { return audit_pid; });

  // Per-thread op log (healing replay feed): tees the instrumented API's
  // notifications, so the audit process sees exactly what it saw before.
  std::optional<db::ThreadOpLog> op_log;
  db::NotificationSink* driver_sink = params.audit ? &sink : nullptr;
  if (heal_active) {
    op_log.emplace(params.audit ? &sink : nullptr);
    driver_sink = &*op_log;
    if (attest_element != nullptr) {
      attest_element->set_op_log(&*op_log);
    }
  }

  callproc::VmDriverConfig driver_cfg;
  driver_cfg.threads = params.threads;
  auto driver = std::make_shared<callproc::VmClientDriver>(
      program, db, cpu, rng.fork(7), driver_cfg, driver_sink, monitor.get());
  client_pid = node.spawn("client", driver);
  directory.register_client(client_pid, driver.get());

  // Healing: duplicated manager pair + the healer, with both detection
  // paths (preemptive trap, attestation slice) routed to whichever manager
  // is active when the violation report arrives.
  std::optional<manager::ManagerPair> managers;
  std::optional<manager::CfHealer> healer;
  if (heal_active) {
    managers = manager::spawn_manager_pair(node,
                                           [&audit_pid]() { return audit_pid; });
    healer.emplace(db, *op_log, *cf_log, *driver, &directory, &oracle,
                   [&scheduler]() { return scheduler.now(); });
    managers->first->set_healer(&*healer);
    managers->second->set_healer(&*healer);
    violation_route = [&node, &managers](const audit::CfViolation& v) {
      const manager::Manager& active = managers->active(node);
      const sim::ProcessId to = &active == managers->first.get()
                                    ? managers->first_pid
                                    : managers->second_pid;
      node.send(to, audit::msg::make_cf_violation(v));
    };
    driver->set_violation_handler(
        [&violation_route](const audit::CfViolation& v) {
          if (violation_route) {
            violation_route(v);
          }
        });
  }

  inject::ClientErrorInjector injector(driver->vmp(), scheduler, rng.fork(9),
                                       params.injector);
  injector.arm();

  const auto deadline = static_cast<sim::Time>(params.deadline);
  std::optional<sim::Time> client_done;
  while (scheduler.now() < deadline) {
    if (!driver->finished()) {
      client_done.reset();
    } else if (!client_done) {
      client_done = scheduler.now();
    }
    // With attestation on, drain one extra slice period past client
    // completion so transfers logged at the very end are still attested
    // (and, in the healing arm, healed — which un-finishes the client).
    if (client_done &&
        (!cf_attest_active ||
         scheduler.now() > *client_done + static_cast<sim::Time>(params.slice_period))) {
      break;
    }
    if (!scheduler.step()) {
      break;
    }
  }

  // --- gather the run's evidence (Table 7) ---
  inject::RunEvents events;
  events.activated = injector.activated();
  events.first_pecos = driver->first_pecos_time();
  events.crash = driver->crash_time();
  events.first_hang = driver->first_hang_time();
  events.first_audit = oracle.first_finding_time();
  if (!driver->finished()) {
    // Ran out of virtual time without completing: the client is wedged.
    const sim::Time t = scheduler.now();
    if (!events.first_hang || *events.first_hang > t) {
      events.first_hang = t;
    }
  }

  std::unordered_set<std::uint32_t> succeeded;
  for (const auto& emit : driver->vmp().emits()) {
    if (emit.code == callproc::kEmitMismatch &&
        (!events.first_fsv || emit.time < *events.first_fsv)) {
      events.first_fsv = emit.time;
    }
    if (emit.code == callproc::kEmitAllDone) {
      succeeded.insert(emit.thread);
    }
  }
  events.all_threads_succeeded = succeeded.size() == params.threads;

  PecosRunResult result;
  result.outcome = inject::classify(events);
  result.activated = events.activated;
  result.activations = injector.activations();
  result.pecos_detections = driver->pecos_detections();
  result.crashed = driver->crashed();
  result.audit_findings = oracle.audit_findings();
  result.hung_threads = driver->hung_threads();
  result.first_pecos_time = driver->first_pecos_time();
  if (cf_log) {
    result.cf_transitions_logged = cf_log->recorded();
  }
  if (attest_element != nullptr) {
    result.attest_slices = attest_element->slices();
    result.attest_detections = attest_element->violations();
    result.first_attest_time = attest_element->first_violation_time();
    result.max_attest_latency_us = attest_element->max_detection_latency_us();
  }
  if (healer) {
    result.heals = static_cast<std::uint32_t>(healer->heals());
    result.heal_escalations = static_cast<std::uint32_t>(healer->escalations());
  }
  result.unhealed_violation =
      heal_active && !driver->crashed() && driver->heal_pending_count() > 0;
  result.completed = driver->finished() && !driver->crashed();
  return result;
}

double CampaignCounts::coverage_percent() const {
  const std::size_t act = activated();
  if (act == 0) {
    return 0.0;
  }
  const std::size_t uncovered = count(inject::Outcome::SystemDetection) +
                                count(inject::Outcome::FailSilenceViolation) +
                                count(inject::Outcome::ClientHang);
  return 100.0 - 100.0 * static_cast<double>(uncovered) / static_cast<double>(act);
}

CampaignCounts run_pecos_campaign(PecosRunParams base, std::size_t runs_per_model) {
  struct RunSpec {
    inject::ErrorModel model;
    std::uint64_t seed;
  };
  const inject::ErrorModel models[] = {
      inject::ErrorModel::ADDIF, inject::ErrorModel::DATAIF,
      inject::ErrorModel::DATAOF, inject::ErrorModel::DATAInF};
  const std::uint64_t base_seed = base.seed;
  std::vector<RunSpec> specs;
  specs.reserve(4 * runs_per_model);
  for (const auto model : models) {
    for (std::size_t i = 0; i < runs_per_model; ++i) {
      // Seeds depend only on (base seed, model, run index) so campaigns
      // with different protection configurations inject the *same* error
      // sequences — a paired comparison across the four columns.
      std::uint64_t seed = base_seed ^ (static_cast<std::uint64_t>(model) << 32) ^
                           (i * 0x9E3779B97F4A7C15ull);
      seed = seed * 6364136223846793005ull + 1442695040888963407ull;
      specs.push_back({model, seed});
    }
  }

  CampaignOptions options;
  options.label = "pecos campaign";
  const std::vector<inject::Outcome> outcomes = run_campaign(
      specs.size(),
      [&](std::size_t i) {
        PecosRunParams params = base;
        params.injector.model = specs[i].model;
        params.seed = specs[i].seed;
        return run_pecos_single(params).outcome;
      },
      options);

  CampaignCounts counts;
  for (const inject::Outcome outcome : outcomes) {
    counts.add(outcome);
  }
  return counts;
}

}  // namespace wtc::experiments
