#include "experiments/campaign.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>

#include "common/log.hpp"
#include "common/worker_pool.hpp"
#include "obs/capture.hpp"
#include "obs/metrics.hpp"

namespace wtc::experiments {
namespace {

std::atomic<std::size_t> g_default_jobs{0};
std::atomic<bool> g_progress{false};

using Clock = std::chrono::steady_clock;

/// Shared per-campaign progress/error state. All mutation happens under
/// `mutex` so the progress callback and stderr line are serialized and
/// fire exactly once per completed run.
struct CampaignState {
  explicit CampaignState(std::size_t total_runs) : total(total_runs) {}

  const std::size_t total;
  std::mutex mutex;
  std::size_t completed = 0;
  bool failed = false;
  std::size_t error_index = 0;
  std::string error_message;

  /// Records the failure with the lowest run index (deterministic across
  /// worker interleavings once all workers have drained).
  void record_error(std::size_t index, const std::string& message) {
    std::lock_guard<std::mutex> lock(mutex);
    if (!failed || index < error_index) {
      failed = true;
      error_index = index;
      error_message = message;
    }
  }
};

void report_progress(CampaignState& state, const CampaignOptions& options,
                     bool stderr_line, Clock::time_point start) {
  std::lock_guard<std::mutex> lock(state.mutex);
  ++state.completed;
  if (options.on_progress) {
    options.on_progress(state.completed, state.total);
  }
  if (stderr_line) {
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    const double eta =
        state.completed > 0
            ? elapsed *
                  static_cast<double>(state.total - state.completed) /
                  static_cast<double>(state.completed)
            : 0.0;
    std::fprintf(stderr, "\r%s: run %zu/%zu, elapsed %.1f s, ETA %.1f s ",
                 options.label.c_str(), state.completed, state.total, elapsed,
                 eta);
    if (state.completed == state.total) {
      std::fputc('\n', stderr);
    }
  }
}

/// Runs one body invocation, capturing any exception into `state`.
/// Returns false if the run failed (workers then stop pulling work).
bool run_one(std::size_t index, const std::function<void(std::size_t)>& body,
             CampaignState& state, const CampaignOptions& options,
             bool stderr_line, Clock::time_point start) {
  try {
    body(index);
  } catch (const std::exception& e) {
    state.record_error(index, options.label + ": run " +
                                  std::to_string(index) +
                                  " failed: " + e.what());
    return false;
  } catch (...) {
    state.record_error(index, options.label + ": run " +
                                  std::to_string(index) +
                                  " failed with a non-standard exception");
    return false;
  }
  report_progress(state, options, stderr_line, start);
  return true;
}

}  // namespace

void set_default_campaign_jobs(std::size_t jobs) noexcept {
  g_default_jobs.store(jobs, std::memory_order_relaxed);
}

std::size_t default_campaign_jobs() noexcept {
  return g_default_jobs.load(std::memory_order_relaxed);
}

void set_campaign_progress(bool enabled) noexcept {
  g_progress.store(enabled, std::memory_order_relaxed);
}

bool campaign_progress() noexcept {
  return g_progress.load(std::memory_order_relaxed);
}

std::size_t resolve_campaign_jobs(std::size_t requested) noexcept {
  std::size_t jobs = requested != 0 ? requested : default_campaign_jobs();
  if (jobs == 0) {
    jobs = std::thread::hardware_concurrency();
  }
  return jobs != 0 ? jobs : 1;
}

namespace detail {

void run_indexed(std::size_t total,
                 const std::function<void(std::size_t)>& body,
                 const CampaignOptions& options) {
  if (total == 0) {
    return;
  }
  const std::size_t jobs = std::min(resolve_campaign_jobs(options.jobs), total);
  const bool stderr_line = options.stderr_progress < 0
                               ? campaign_progress()
                               : options.stderr_progress != 0;
  CampaignState state(total);
  const auto start = Clock::now();

  // With a Capture installed, each run records into its own thread-local
  // Recorder; results are absorbed in run-index order after the join, so
  // the merged snapshot (and trace) is identical for any worker count.
  obs::Capture* capture = obs::active_capture();
  std::vector<obs::RunData> obs_runs(capture != nullptr ? total : 0);
  const std::function<void(std::size_t)> instrumented = [&](std::size_t i) {
    if (capture == nullptr) {
      body(i);
      return;
    }
    obs::Recorder recorder(capture->tracing());
    obs::ScopedRecorder scope(recorder);
    body(i);
    obs_runs[i] = obs::RunData{recorder.snapshot(), recorder.events()};
  };

  if (jobs == 1) {
    // Exact legacy serial path: run inline on the calling thread, in
    // index order, with the process-default log sink.
    for (std::size_t i = 0; i < total; ++i) {
      if (!run_one(i, instrumented, state, options, stderr_line, start)) {
        break;
      }
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> stop{false};
    const auto worker = [&](std::size_t) {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total || stop.load(std::memory_order_relaxed)) {
          return;
        }
        // Route this run's log lines through a per-run sink so parallel
        // runs' diagnostics stay attributable to their seed index.
        common::ScopedLogSink sink(
            [i](common::LogLevel level, std::string_view component,
                std::string_view message) {
              const std::string tagged =
                  "run " + std::to_string(i) + " | " + std::string(component);
              common::detail::log_write_stderr(level, tagged, message);
            });
        if (!run_one(i, instrumented, state, options, stderr_line, start)) {
          stop.store(true, std::memory_order_relaxed);
          return;
        }
      }
    };
    // Fork/join on the shared pool primitive: `jobs` workers (the calling
    // thread plus jobs-1 pool threads) drain the atomic run counter, same
    // as the hand-rolled thread spawning this replaces.
    common::WorkerPool pool(jobs - 1);
    pool.dispatch(jobs, worker);
  }

  if (state.failed) {
    throw CampaignError(state.error_index, state.error_message);
  }
  if (capture != nullptr) {
    capture->absorb_campaign(std::move(obs_runs));
  }
}

}  // namespace detail
}  // namespace wtc::experiments
