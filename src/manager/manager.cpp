#include "manager/manager.hpp"

#include "audit/messages.hpp"
#include "common/log.hpp"

namespace wtc::manager {

Manager::Manager(std::function<sim::ProcessId()> spawn_audit, ManagerConfig config)
    : spawn_audit_(std::move(spawn_audit)), config_(config) {}

void Manager::on_start() {
  audit_pid_ = spawn_audit_();
  schedule_after(config_.heartbeat_period, [this]() { send_heartbeat(); });
}

void Manager::send_heartbeat() {
  ++seq_;
  ++sent_;
  sim::Message query;
  query.from = pid();
  query.type = audit::msg::kHeartbeat;
  query.args = {seq_};
  node().send(audit_pid_, std::move(query));

  const std::uint64_t awaited = seq_;
  schedule_after(config_.heartbeat_timeout,
                 [this, awaited]() { check_reply(awaited); });
  schedule_after(config_.heartbeat_period, [this]() { send_heartbeat(); });
}

void Manager::check_reply(std::uint64_t seq) {
  if (last_acked_ >= seq) {
    return;  // reply arrived in time
  }
  common::log(common::LogLevel::Info, "manager",
              "audit process missed heartbeat ", seq, "; restarting");
  ++restarts_;
  node().kill(audit_pid_);
  audit_pid_ = spawn_audit_();
}

void Manager::on_message(const sim::Message& message) {
  if (message.type == audit::msg::kHeartbeatReply && !message.args.empty() &&
      message.from == audit_pid_) {
    last_acked_ = std::max(last_acked_, message.args[0]);
  }
}

}  // namespace wtc::manager
