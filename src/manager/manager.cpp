#include "manager/manager.hpp"

#include <algorithm>

#include "audit/messages.hpp"
#include "common/log.hpp"
#include "manager/healer.hpp"
#include "obs/metrics.hpp"

namespace wtc::manager {

Manager::Manager(std::function<sim::ProcessId()> spawn_audit,
                 ManagerConfig config, Role role)
    : spawn_audit_(std::move(spawn_audit)), config_(config), role_(role) {}

void Manager::on_start() {
  if (config_.reliable_heartbeat) {
    hb_sender_.emplace(*this, audit::msg::kChannelManagerHeartbeat,
                       [this]() { return audit_pid_; }, config_.reliable);
  }
  if (role_ == Role::Active) {
    become_active();
  } else {
    last_peer_seen_ = now();
    const std::uint64_t gen = ++role_gen_;
    schedule_after(config_.peer_period, [this, gen]() { watch_peer(gen); });
  }
}

void Manager::become_active() {
  role_ = Role::Active;
  const std::uint64_t gen = ++role_gen_;
  if (audit_pid_ == sim::kNoProcess || !node().alive(audit_pid_)) {
    spawn_audit_now();
  }
  schedule_after(config_.heartbeat_period,
                 [this, gen]() { heartbeat_tick(gen); });
  schedule_after(config_.peer_period, [this, gen]() { peer_tick(gen); });
}

void Manager::spawn_audit_now() {
  audit_pid_ = spawn_audit_();
  ++audit_epoch_;
  restart_barrier_ = seq_;
}

void Manager::heartbeat_tick(std::uint64_t gen) {
  if (role_ != Role::Active || gen != role_gen_) {
    return;
  }
  ++seq_;
  ++sent_;
  obs::count(obs::Counter::manager_heartbeats_sent);
  sim::Message query;
  query.from = pid();
  query.type = audit::msg::kHeartbeat;
  query.args = {seq_, audit_epoch_};
  if (hb_sender_) {
    hb_sender_->send(std::move(query));
  } else {
    node().send(audit_pid_, std::move(query));
  }

  const std::uint64_t awaited = seq_;
  schedule_after(config_.heartbeat_timeout, [this, gen, awaited]() {
    if (role_ == Role::Active && gen == role_gen_) {
      check_reply(awaited);
    }
  });
  schedule_after(config_.heartbeat_period,
                 [this, gen]() { heartbeat_tick(gen); });
}

void Manager::check_reply(std::uint64_t seq) {
  if (last_acked_ >= seq || seq <= restart_barrier_) {
    return;  // reply arrived in time, or predates the latest restart
  }
  common::log(common::LogLevel::Info, "manager",
              "audit process missed heartbeat ", seq, "; restarting");
  ++restarts_;
  obs::count(obs::Counter::manager_restarts);
  obs::trace_instant("manager.restart", "manager",
                     static_cast<std::uint64_t>(now()));
  if (node().alive(audit_pid_)) {
    ++restarts_live_;
  }
  node().kill(audit_pid_);
  spawn_audit_now();
}

void Manager::peer_tick(std::uint64_t gen) {
  if (role_ != Role::Active || gen != role_gen_) {
    return;
  }
  if (peer_ != sim::kNoProcess) {
    sim::Message beat;
    beat.from = pid();
    beat.type = audit::msg::kPeerHeartbeat;
    beat.args = {term_, ++peer_seq_, audit_pid_, audit_epoch_};
    node().send(peer_, std::move(beat));
  }
  schedule_after(config_.peer_period, [this, gen]() { peer_tick(gen); });
}

void Manager::watch_peer(std::uint64_t gen) {
  if (role_ != Role::Standby || gen != role_gen_) {
    return;
  }
  if (now() - last_peer_seen_ >= static_cast<sim::Time>(config_.peer_timeout)) {
    // The active manager is dead or partitioned: take over supervision of
    // the audit where it left off (last advertised pid + epoch).
    ++takeovers_;
    ++term_;
    obs::count(obs::Counter::manager_takeovers);
    obs::trace_instant("manager.takeover", "manager",
                       static_cast<std::uint64_t>(now()));
    common::log(common::LogLevel::Info, "manager",
                "standby taking over as active (term ", term_, ")");
    become_active();
    return;
  }
  schedule_after(config_.peer_period, [this, gen]() { watch_peer(gen); });
}

void Manager::handle_reply(const sim::Message& message) {
  if (message.args.size() < 2 || message.from != audit_pid_ ||
      message.args[1] != audit_epoch_) {
    // Stale incarnation (or malformed): not evidence the CURRENT audit
    // process is alive.
    return;
  }
  last_acked_ = std::max(last_acked_, message.args[0]);
  obs::count(obs::Counter::manager_heartbeat_replies);
}

void Manager::handle_peer_heartbeat(const sim::Message& message) {
  if (message.args.size() < 4) {
    return;
  }
  const std::uint64_t peer_term = message.args[0];
  if (role_ == Role::Active) {
    if (peer_term > term_) {
      // The peer took over while we were partitioned away; its term wins.
      ++demotions_;
      obs::count(obs::Counter::manager_demotions);
      common::log(common::LogLevel::Info, "manager",
                  "demoting to standby (peer term ", peer_term, " > ", term_,
                  ")");
      role_ = Role::Standby;
      term_ = peer_term;
      last_peer_seen_ = now();
      const std::uint64_t gen = ++role_gen_;
      schedule_after(config_.peer_period, [this, gen]() { watch_peer(gen); });
    }
    return;
  }
  last_peer_seen_ = now();
  term_ = std::max(term_, peer_term);
  audit_pid_ = static_cast<sim::ProcessId>(message.args[2]);
  audit_epoch_ = message.args[3];
}

void Manager::on_message(const sim::Message& message) {
  if (hb_sender_ && hb_sender_->on_message(message)) {
    return;
  }
  sim::Message inner = message;
  if (sim::ReliableReceiver::is_frame(message)) {
    const auto unwrapped = receiver_.accept(message);
    if (!unwrapped) {
      return;
    }
    inner = *unwrapped;
  }
  if (inner.type == audit::msg::kHeartbeatReply) {
    handle_reply(inner);
  } else if (inner.type == audit::msg::kPeerHeartbeat) {
    handle_peer_heartbeat(inner);
  } else if (inner.type == audit::msg::kCfViolation) {
    // Healing is the active manager's job; a standby receiving the report
    // (e.g. mid-takeover) drops it — the detection path re-reports on the
    // next attestation slice if the thread is still wedged.
    if (role_ == Role::Active && healer_ != nullptr) {
      ++violations_routed_;
      healer_->heal(audit::msg::view_cf_violation(inner));
    }
  }
}

const Manager& ManagerPair::active(const sim::Node& node) const {
  const bool first_alive = node.alive(first_pid);
  const bool second_alive = node.alive(second_pid);
  if (first_alive && first->role() == Role::Active) {
    return *first;
  }
  if (second_alive && second->role() == Role::Active) {
    return *second;
  }
  return first_alive || !second_alive ? *first : *second;
}

ManagerPair spawn_manager_pair(sim::Node& node,
                               std::function<sim::ProcessId()> spawn_audit,
                               ManagerConfig config) {
  ManagerPair pair;
  pair.first = std::make_shared<Manager>(spawn_audit, config, Role::Active);
  pair.second = std::make_shared<Manager>(std::move(spawn_audit), config,
                                          Role::Standby);
  pair.first_pid = node.spawn("manager-a", pair.first);
  pair.second_pid = node.spawn("manager-b", pair.second);
  pair.first->set_peer(pair.second_pid);
  pair.second->set_peer(pair.first_pid);
  return pair;
}

}  // namespace wtc::manager
