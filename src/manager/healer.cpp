#include "manager/healer.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/log.hpp"
#include "db/direct.hpp"
#include "db/layout.hpp"
#include "obs/metrics.hpp"

namespace wtc::manager {

CfHealer::CfHealer(db::Database& db, db::ThreadOpLog& op_log,
                   pecos::CfLog& cf_log, audit::HealableClient& client,
                   audit::ClientControl* control, audit::ReportSink* sink,
                   std::function<sim::Time()> clock, HealerConfig config)
    : db_(db),
      op_log_(op_log),
      cf_log_(cf_log),
      client_(client),
      control_(control),
      sink_(sink),
      clock_(std::move(clock)),
      config_(config) {}

bool CfHealer::heal(const audit::CfViolation& violation) {
  const std::uint32_t tid = violation.thread;
  if (tid < last_heal_.size() && last_heal_[tid].valid &&
      violation.time <= last_heal_[tid].time) {
    // The preemptive monitor and the attestation slice both report the
    // same transfer; the second report arrives after the first heal
    // completed and must not re-run the surgery.
    ++skipped_;
    common::log(common::LogLevel::Debug, "manager",
                "heal: thread ", tid, " already healed past t=",
                violation.time, ", skipping duplicate report");
    return true;
  }

  const sim::Time start = clock_();
  std::uint32_t faults = 0;
  for (;;) {
    try {
      try_heal(violation);
      break;
    } catch (...) {
      ++faults;
      common::log(common::LogLevel::Warn, "manager",
                  "heal: fault ", faults, "/", config_.max_heal_faults,
                  " inside healing sequence for thread ", tid);
      if (faults >= config_.max_heal_faults) {
        escalate(violation);
        return false;
      }
    }
  }

  if (last_heal_.size() <= tid) {
    last_heal_.resize(tid + 1);
  }
  last_heal_[tid] = LastHeal{clock_(), true};
  ++heals_;
  obs::count(obs::Counter::manager_heals);
  obs::trace_span("manager.heal", "manager", start, clock_() - start);
  common::log(common::LogLevel::Info, "manager", "heal: thread ", tid,
              " healed (violation ", violation.from_pc, " -> ",
              violation.to_pc, " at t=", violation.time, ", source=",
              violation.source == audit::CfSource::Preemptive ? "preemptive"
                                                              : "attestation",
              ")");
  if (sink_ != nullptr) {
    audit::Finding finding;
    finding.technique = audit::Technique::CfAttestation;
    finding.recovery = audit::Recovery::HealThread;
    finding.time = clock_();
    sink_->on_finding(finding);
  }
  return true;
}

void CfHealer::stage(std::uint32_t number, const char* name,
                     const std::function<void()>& body) {
  if (fault_hook_) {
    fault_hook_(number);
  }
  const sim::Time start = clock_();
  body();
  obs::trace_span(name, "manager", start, clock_() - start);
}

void CfHealer::try_heal(const audit::CfViolation& violation) {
  const std::uint32_t tid = violation.thread;
  const auto& ops = op_log_.ops(tid);
  const db::Layout& layout = db_.layout();

  // --- stage 1: terminate the offending thread -------------------------
  stage(1, "heal.terminate", [&]() { client_.heal_terminate_thread(tid); });

  // --- stage 2: restore touched records from the golden disk copy ------
  // Touched set in first-touch order; a record is skipped when another
  // thread has re-allocated it since (its region header is active but the
  // redundant metadata attributes the last write elsewhere) — wiping it
  // would turn one thread's CF error into a second thread's data loss.
  std::vector<std::pair<db::TableId, db::RecordIndex>> touched;
  std::vector<bool> owned;
  for (const auto& op : ops) {
    if (op.table >= db_.table_count()) {
      continue;
    }
    const auto key = std::make_pair(op.table, op.record);
    if (std::find(touched.begin(), touched.end(), key) == touched.end()) {
      touched.push_back(key);
    }
  }
  stage(2, "heal.restore", [&]() {
    owned.assign(touched.size(), false);
    for (std::size_t i = 0; i < touched.size(); ++i) {
      const auto [t, r] = touched[i];
      const std::size_t at = layout.record_offset(t, r);
      const auto header = db::load_record_header(db_.region(), at);
      if (header.status == db::kStatusActive &&
          db_.record_meta(t, r).last_writer_thread != tid) {
        continue;  // foreign ownership — leave it alone
      }
      owned[i] = true;
      db_.reload_span_from_disk(at, layout.table(t).record_size);
      ++restored_;
    }
  });

  // --- stage 3: replay the trusted op tail, release held records -------
  stage(3, "heal.replay", [&]() {
    // Ops stamped strictly before the violating transfer are trusted; the
    // violation's own quantum is conservatively suspect (the transfer may
    // have preceded the ops within the quantum).
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].time >= violation.time) {
        break;  // ops are recorded in time order
      }
      const auto key = std::make_pair(ops[i].table, ops[i].record);
      const auto it = std::find(touched.begin(), touched.end(), key);
      if (it == touched.end() ||
          !owned[static_cast<std::size_t>(it - touched.begin())]) {
        continue;
      }
      replay_op(ops[i]);
    }
    // The thread restarts from scratch: records it allocated and still
    // holds carry in-flight call state that no one will ever complete —
    // free them (the semantic audit's zombie-record recovery, reused).
    for (std::size_t i = 0; i < touched.size(); ++i) {
      if (!owned[i]) {
        continue;
      }
      const auto [t, r] = touched[i];
      bool allocated = false;
      bool held = false;
      for (const auto& op : ops) {
        if (op.time >= violation.time || op.table != t || op.record != r) {
          continue;
        }
        if (op.op == db::ApiOp::Alloc) {
          allocated = true;
          held = true;
        } else if (op.op == db::ApiOp::Free) {
          held = false;
        }
      }
      if (allocated && held) {
        db::direct::free_record(db_, t, r);
      }
    }
    // Chains and shadow indices were invalidated wholesale by the
    // restore+replay writes: rebuild per touched table, then verify every
    // restored record's header before declaring the database healed.
    std::vector<db::TableId> tables;
    for (const auto& [t, r] : touched) {
      if (std::find(tables.begin(), tables.end(), t) == tables.end()) {
        tables.push_back(t);
      }
    }
    for (const db::TableId t : tables) {
      db::direct::relink_table(db_, t);
      db_.rebuild_index(t);
    }
    for (std::size_t i = 0; i < touched.size(); ++i) {
      if (!owned[i]) {
        continue;
      }
      const auto [t, r] = touched[i];
      const auto header =
          db::load_record_header(db_.region(), layout.record_offset(t, r));
      if (header.id_tag != db::expected_id_tag(t, r) ||
          (header.status != db::kStatusActive &&
           header.status != db::kStatusFree)) {
        throw std::runtime_error("heal: post-replay header verification failed");
      }
    }
  });

  // --- stage 4: restart the thread at a clean entry ---------------------
  stage(4, "heal.restart", [&]() {
    op_log_.clear_thread(tid);
    cf_log_.clear_thread(tid);
    client_.heal_restart_thread(tid);
  });
}

void CfHealer::replay_op(const db::ApiEvent& op) {
  const db::Layout& layout = db_.layout();
  const std::size_t at = layout.record_offset(op.table, op.record);
  auto region = db_.region();
  switch (op.op) {
    case db::ApiOp::Alloc: {
      // Fields were restored to catalog defaults by the disk reload — the
      // same state alloc_rec initializes; only the header words replay.
      auto header = db::load_record_header(region, at);
      header.status = db::kStatusActive;
      header.group = op.group;
      db::store_record_header(region, at, header);
      db_.note_write(at, db::kRecordHeaderSize);
      break;
    }
    case db::ApiOp::Free: {
      auto header = db::load_record_header(region, at);
      header.status = db::kStatusFree;
      header.group = 0;
      db::store_record_header(region, at, header);
      db_.note_write(at, db::kRecordHeaderSize);
      break;
    }
    case db::ApiOp::Move: {
      auto header = db::load_record_header(region, at);
      header.group = op.group;
      db::store_record_header(region, at, header);
      db_.note_write(at, db::kRecordHeaderSize);
      break;
    }
    case db::ApiOp::WriteRec: {
      for (std::uint8_t f = 0; f < op.payload_len; ++f) {
        db::store_i32(region, at + db::kRecordHeaderSize +
                                  static_cast<std::size_t>(f) * 4,
                      op.payload[f]);
      }
      db_.note_write(at + db::kRecordHeaderSize,
                     static_cast<std::size_t>(op.payload_len) * 4);
      break;
    }
    case db::ApiOp::WriteFld: {
      const std::size_t field_at =
          layout.field_offset(op.table, op.record, op.field);
      db::store_i32(region, field_at, op.payload[0]);
      db_.note_write(field_at, 4);
      break;
    }
    default:
      return;  // non-mutating ops never enter the log
  }
  ++replayed_;
  obs::count(obs::Counter::manager_heal_replayed_ops);
}

void CfHealer::escalate(const audit::CfViolation& violation) {
  ++escalations_;
  obs::count(obs::Counter::manager_heal_escalations);
  obs::trace_instant("manager.heal_escalation", "manager", clock_());
  common::log(common::LogLevel::Error, "manager",
              "heal: sequence faulted twice for thread ", violation.thread,
              ", escalating to process kill");
  if (control_ != nullptr && violation.client != sim::kNoProcess) {
    control_->kill_client_process(violation.client);
  }
  if (sink_ != nullptr) {
    audit::Finding finding;
    finding.technique = audit::Technique::CfAttestation;
    finding.recovery = audit::Recovery::KillClientProcess;
    finding.time = clock_();
    sink_->on_finding(finding);
  }
}

}  // namespace wtc::manager
