// Guaranteed healing of a control-flow-violating client thread (the ACFA
// promise layered on PECOS detection).
//
// A CfViolation — preemptive (PECOS assertion trap) or deferred (CF-log
// attestation slice) — reaches the *active* manager, whose CfHealer runs
// the healing sequence:
//   1. terminate   — stop the offending thread (HealableClient hook)
//   2. restore     — reload every record the thread touched from the
//                    golden disk copy (existing audit recovery machinery),
//                    skipping records another thread has since re-allocated
//   3. replay      — re-apply the thread's *trusted* DbApi op tail (ops
//                    stamped strictly before the violating transfer; ops of
//                    the violation's own quantum are conservatively
//                    suspect), then free the records the thread still held
//                    (it restarts from scratch, so in-flight call state is
//                    released), relink chains, rebuild indices, and verify
//                    every touched header
//   4. restart     — clear the thread's CF/op logs and restart it at a
//                    clean entry with pristine program text
//
// Idempotence: the same violating transfer is often reported twice (the
// preemptive monitor and the attestation slice both see it); a violation
// no newer than the thread's last completed heal is skipped. If healing
// itself faults `max_heal_faults` times, the healer escalates to the
// existing recovery ladder: the client process is killed (ClientControl)
// and the escalation is reported as a finding.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "audit/report.hpp"
#include "db/database.hpp"
#include "db/op_log.hpp"
#include "pecos/cf_log.hpp"
#include "sim/time.hpp"

namespace wtc::manager {

struct HealerConfig {
  /// Faults tolerated inside the healing sequence before escalating.
  std::uint32_t max_heal_faults = 2;
};

class CfHealer {
 public:
  /// `control` and `sink` may be null (no escalation target / no report
  /// consumer); `clock` supplies sim time for findings and the
  /// idempotence stamp.
  CfHealer(db::Database& db, db::ThreadOpLog& op_log, pecos::CfLog& cf_log,
           audit::HealableClient& client, audit::ClientControl* control,
           audit::ReportSink* sink, std::function<sim::Time()> clock,
           HealerConfig config = {});

  /// Runs the healing sequence. Returns true when the thread ends up
  /// healed (including the idempotent already-healed case), false when the
  /// sequence escalated.
  bool heal(const audit::CfViolation& violation);

  /// Test seam: invoked at the start of each healing stage (1-based);
  /// throwing from it models a fault inside the healing sequence itself.
  void set_fault_hook(std::function<void(std::uint32_t stage)> hook) {
    fault_hook_ = std::move(hook);
  }

  [[nodiscard]] std::uint64_t heals() const noexcept { return heals_; }
  [[nodiscard]] std::uint64_t skipped() const noexcept { return skipped_; }
  [[nodiscard]] std::uint64_t escalations() const noexcept { return escalations_; }
  [[nodiscard]] std::uint64_t replayed_ops() const noexcept { return replayed_; }
  [[nodiscard]] std::uint64_t restored_records() const noexcept {
    return restored_;
  }

 private:
  /// One attempt at stages 1-4; throws on a stage fault.
  void try_heal(const audit::CfViolation& violation);
  void stage(std::uint32_t number, const char* name,
             const std::function<void()>& body);
  void replay_op(const db::ApiEvent& op);
  void escalate(const audit::CfViolation& violation);

  db::Database& db_;
  db::ThreadOpLog& op_log_;
  pecos::CfLog& cf_log_;
  audit::HealableClient& client_;
  audit::ClientControl* control_;
  audit::ReportSink* sink_;
  std::function<sim::Time()> clock_;
  HealerConfig config_;
  std::function<void(std::uint32_t stage)> fault_hook_;
  /// Per-thread sim time of the last completed heal (idempotence guard).
  struct LastHeal {
    sim::Time time = 0;
    bool valid = false;
  };
  std::vector<LastHeal> last_heal_;
  std::uint64_t heals_ = 0;
  std::uint64_t skipped_ = 0;
  std::uint64_t escalations_ = 0;
  std::uint64_t replayed_ = 0;
  std::uint64_t restored_ = 0;
};

}  // namespace wtc::manager
