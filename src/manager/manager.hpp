// The manager process (Figure 1).
//
// Runs (conceptually duplicated) above the environment, starts the audit
// process, and monitors it with the §4.1 heartbeat protocol: a periodic
// query that the audit's heartbeat element answers. If the audit process
// crashed, hung, or is starved by a scheduling anomaly, the reply never
// arrives and the manager restarts it.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/node.hpp"
#include "sim/time.hpp"

namespace wtc::manager {

struct ManagerConfig {
  sim::Duration heartbeat_period = 1 * static_cast<sim::Duration>(sim::kSecond);
  /// Reply deadline: missing it means the audit process is dead/hung.
  sim::Duration heartbeat_timeout = 3 * static_cast<sim::Duration>(sim::kSecond);
};

class Manager final : public sim::Process {
 public:
  /// `spawn_audit` creates (or re-creates) the audit process and returns
  /// its pid; the manager owns when it is called.
  Manager(std::function<sim::ProcessId()> spawn_audit, ManagerConfig config = {});

  void on_start() override;
  void on_message(const sim::Message& message) override;

  [[nodiscard]] sim::ProcessId audit_pid() const noexcept { return audit_pid_; }
  [[nodiscard]] std::uint32_t restarts() const noexcept { return restarts_; }
  [[nodiscard]] std::uint64_t heartbeats_sent() const noexcept { return sent_; }

 private:
  void send_heartbeat();
  void check_reply(std::uint64_t seq);

  std::function<sim::ProcessId()> spawn_audit_;
  ManagerConfig config_;
  sim::ProcessId audit_pid_ = sim::kNoProcess;
  std::uint64_t seq_ = 0;
  std::uint64_t last_acked_ = 0;
  std::uint64_t sent_ = 0;
  std::uint32_t restarts_ = 0;
};

}  // namespace wtc::manager
