// The manager process (Figure 1) — duplicated.
//
// The paper places a *duplicated* manager above the environment: it
// starts the audit process and monitors it with the §4.1 heartbeat
// protocol (a periodic query the audit's heartbeat element answers;
// missing the reply deadline means the audit crashed, hung, or was
// starved, and the manager restarts it). Duplication makes the monitor
// itself survivable: an active/standby pair exchanges peer heartbeats,
// and when the active dies (or is partitioned — its peer heartbeats stop
// arriving) the standby takes over audit supervision where the active
// left off.
//
// Robustness details:
//   * Heartbeats are tagged with the audit's spawn epoch; a reply from a
//     previous audit incarnation, still in flight across a restart, is
//     never counted as liveness for the new one.
//   * With `reliable_heartbeat` the query/reply exchange runs over the
//     reliable delivery layer (sim/reliable.hpp), so a lossy queue does
//     not trigger spurious restarts.
//   * Takeovers carry a monotonically increasing term; an active manager
//     that sees a peer heartbeat with a higher term demotes itself, so a
//     healed partition converges back to one active.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "sim/node.hpp"
#include "sim/reliable.hpp"
#include "sim/time.hpp"

namespace wtc::manager {

class CfHealer;

enum class Role : std::uint8_t { Active, Standby };

struct ManagerConfig {
  sim::Duration heartbeat_period = 1 * static_cast<sim::Duration>(sim::kSecond);
  /// Reply deadline: missing it means the audit process is dead/hung.
  sim::Duration heartbeat_timeout = 3 * static_cast<sim::Duration>(sim::kSecond);

  /// Run the audit heartbeat over the reliable delivery layer.
  bool reliable_heartbeat = false;
  sim::ReliableConfig reliable;

  /// Active -> standby peer heartbeat period, and how long the standby
  /// waits without one before declaring the active dead and taking over.
  sim::Duration peer_period = 500 * static_cast<sim::Duration>(sim::kMillisecond);
  sim::Duration peer_timeout = 2500 * static_cast<sim::Duration>(sim::kMillisecond);
};

class Manager final : public sim::Process {
 public:
  /// `spawn_audit` creates (or re-creates) the audit process and returns
  /// its pid; the manager owns when it is called.
  Manager(std::function<sim::ProcessId()> spawn_audit, ManagerConfig config = {},
          Role role = Role::Active);

  /// Wires the duplicated peer (normally via spawn_manager_pair).
  void set_peer(sim::ProcessId peer) noexcept { peer_ = peer; }

  /// Wires the CF healer; kCfViolation messages are honored by whichever
  /// manager is *active* when they arrive (both members of the pair share
  /// one healer, like they share the spawn_audit factory).
  void set_healer(CfHealer* healer) noexcept { healer_ = healer; }
  [[nodiscard]] std::uint64_t violations_routed() const noexcept {
    return violations_routed_;
  }

  void on_start() override;
  void on_message(const sim::Message& message) override;

  [[nodiscard]] Role role() const noexcept { return role_; }
  [[nodiscard]] std::uint64_t term() const noexcept { return term_; }
  [[nodiscard]] sim::ProcessId audit_pid() const noexcept { return audit_pid_; }
  /// Spawn-epoch of the supervised audit (tags heartbeats; see above).
  [[nodiscard]] std::uint64_t audit_epoch() const noexcept { return audit_epoch_; }
  [[nodiscard]] std::uint32_t restarts() const noexcept { return restarts_; }
  /// Restarts where the audit process was still alive when killed — real
  /// for a hung audit, spurious when a lossy channel ate the heartbeat.
  [[nodiscard]] std::uint32_t restarts_live() const noexcept {
    return restarts_live_;
  }
  [[nodiscard]] std::uint32_t takeovers() const noexcept { return takeovers_; }
  [[nodiscard]] std::uint32_t demotions() const noexcept { return demotions_; }
  [[nodiscard]] std::uint64_t heartbeats_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t last_acked() const noexcept { return last_acked_; }

 private:
  void become_active();
  void spawn_audit_now();
  void heartbeat_tick(std::uint64_t gen);
  void check_reply(std::uint64_t seq);
  void peer_tick(std::uint64_t gen);
  void watch_peer(std::uint64_t gen);
  void handle_reply(const sim::Message& message);
  void handle_peer_heartbeat(const sim::Message& message);

  std::function<sim::ProcessId()> spawn_audit_;
  ManagerConfig config_;
  Role role_;
  /// Bumped on every role change; stale loops of the old role see a
  /// mismatch and stop rescheduling themselves.
  std::uint64_t role_gen_ = 0;
  std::uint64_t term_ = 0;
  sim::ProcessId peer_ = sim::kNoProcess;
  sim::Time last_peer_seen_ = 0;

  sim::ProcessId audit_pid_ = sim::kNoProcess;
  std::uint64_t audit_epoch_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t last_acked_ = 0;
  /// Heartbeats sent before the latest restart; their timeouts must not
  /// trigger a second restart of the fresh audit.
  std::uint64_t restart_barrier_ = 0;
  std::uint64_t peer_seq_ = 0;
  std::uint64_t sent_ = 0;
  std::uint32_t restarts_ = 0;
  std::uint32_t restarts_live_ = 0;
  std::uint32_t takeovers_ = 0;
  std::uint32_t demotions_ = 0;
  CfHealer* healer_ = nullptr;
  std::uint64_t violations_routed_ = 0;

  std::optional<sim::ReliableSender> hb_sender_;
  sim::ReliableReceiver receiver_{*this};
};

/// The duplicated manager as deployed: one active, one standby, wired to
/// each other. Both share the `spawn_audit` factory.
struct ManagerPair {
  std::shared_ptr<Manager> first;   ///< starts as the active
  std::shared_ptr<Manager> second;  ///< starts as the standby
  sim::ProcessId first_pid = sim::kNoProcess;
  sim::ProcessId second_pid = sim::kNoProcess;

  /// The manager currently in charge (prefers a live Active role-holder).
  [[nodiscard]] const Manager& active(const sim::Node& node) const;
  [[nodiscard]] std::uint32_t restarts() const {
    return first->restarts() + second->restarts();
  }
  [[nodiscard]] std::uint32_t restarts_live() const {
    return first->restarts_live() + second->restarts_live();
  }
  [[nodiscard]] std::uint32_t takeovers() const {
    return first->takeovers() + second->takeovers();
  }
};

[[nodiscard]] ManagerPair spawn_manager_pair(
    sim::Node& node, std::function<sim::ProcessId()> spawn_audit,
    ManagerConfig config = {});

}  // namespace wtc::manager
