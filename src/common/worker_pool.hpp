// Reusable fork/join worker pool, extracted from the campaign runner's
// per-campaign thread spawning so the audit engine (and any future
// fan-out) can share one implementation.
//
// The pool owns N host threads that sleep between dispatches. A
// `dispatch(workers, job)` call runs `job(0) .. job(workers-1)` exactly
// once each — index 0 on the calling thread, the rest on pool threads —
// and returns only after every invocation finished (fork/join barrier).
// If `workers` exceeds `threads() + 1` the calling thread runs the
// surplus indexes serially after its own, so a dispatch never deadlocks
// on an undersized pool.
//
// Exceptions thrown by a job are captured and the first one (lowest
// worker index) is rethrown on the calling thread after the join, so a
// failing worker cannot leave the pool wedged. Dispatches must not be
// nested or issued concurrently from multiple threads: the pool is a
// fork/join primitive, not a task queue.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wtc::common {

class WorkerPool {
 public:
  /// Spawns `threads` pool threads (0 is valid: every dispatch then runs
  /// entirely on the calling thread).
  explicit WorkerPool(std::size_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs `job(i)` for every i in [0, workers); blocks until all return.
  void dispatch(std::size_t workers, const std::function<void(std::size_t)>& job);

  [[nodiscard]] std::size_t threads() const noexcept { return threads_.size(); }

 private:
  void thread_main(std::size_t slot);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;       ///< bumped per dispatch; wakes sleepers
  std::size_t participating_ = 0;  ///< pool threads active this epoch
  std::size_t remaining_ = 0;      ///< pool threads not yet finished
  std::vector<std::exception_ptr> errors_;  ///< per worker index, this epoch
  bool stop_ = false;
};

}  // namespace wtc::common
