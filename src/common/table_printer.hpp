// Fixed-width text table rendering for the benchmark harness, so each bench
// binary can print rows shaped like the paper's tables.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace wtc::common {

/// Accumulates rows of strings and renders them with aligned columns and a
/// header separator, e.g.
///
///   Category            | Without Audits | With Audits
///   --------------------+----------------+------------
///   Errors escaped      | 1884 (63%)     | 402 (13%)
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders the full table; missing trailing cells render empty.
  [[nodiscard]] std::string render() const;

  /// Convenience: render to a stream.
  friend std::ostream& operator<<(std::ostream& os, const TablePrinter& table);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
[[nodiscard]] std::string fmt(double value, int digits = 1);

}  // namespace wtc::common
