#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace wtc::common {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

/// Current thread's sink; null = the stderr default.
thread_local LogSink* t_sink = nullptr;

constexpr const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info:  return "INFO ";
    case LogLevel::Warn:  return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off:   return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

ScopedLogSink::ScopedLogSink(LogSink sink)
    : sink_(std::move(sink)), previous_(t_sink) {
  t_sink = &sink_;
}

ScopedLogSink::~ScopedLogSink() { t_sink = previous_; }

namespace detail {

void log_write_stderr(LogLevel level, std::string_view component,
                      std::string_view message) {
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

void log_write(LogLevel level, std::string_view component, std::string_view message) {
  if (t_sink != nullptr && *t_sink) {
    (*t_sink)(level, component, message);
    return;
  }
  log_write_stderr(level, component, message);
}

}  // namespace detail

}  // namespace wtc::common
