// CRC-32 (IEEE 802.3 polynomial, reflected) used by the audit subsystem's
// static-data checksum element (paper §4.3.1: "32-bit Cyclic Redundancy
// Code" golden checksum of all static data).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace wtc::common {

/// Incremental CRC-32 engine. Feed bytes in any chunking; `value()` is
/// stable for a given byte sequence regardless of chunk boundaries.
class Crc32 {
 public:
  /// Absorbs `bytes` into the running checksum.
  void update(std::span<const std::byte> bytes) noexcept;

  /// Final checksum of everything absorbed so far.
  [[nodiscard]] std::uint32_t value() const noexcept { return state_ ^ 0xFFFFFFFFu; }

  /// Resets to the empty-input state.
  void reset() noexcept { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot CRC-32 of a byte range.
[[nodiscard]] std::uint32_t crc32(std::span<const std::byte> bytes) noexcept;

}  // namespace wtc::common
