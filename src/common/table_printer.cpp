#include "common/table_printer.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace wtc::common {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c >= widths.size()) {
        widths.resize(c + 1, 0);
      }
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out << cell << std::string(widths[c] - cell.size(), ' ');
      if (c + 1 < widths.size()) {
        out << " | ";
      }
    }
    out << '\n';
  };

  emit_row(header_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    out << std::string(widths[c], '-');
    if (c + 1 < widths.size()) {
      out << "-+-";
    }
  }
  out << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const TablePrinter& table) {
  return os << table.render();
}

std::string fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace wtc::common
