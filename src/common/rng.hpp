// Deterministic random number generation for experiments.
//
// All stochastic behaviour in the reproduction (call arrivals, call
// durations, error inter-arrival times, bit positions, injection sites)
// flows through this engine so that every experiment run is reproducible
// from a single seed.
#pragma once

#include <cstdint>
#include <limits>

namespace wtc::common {

/// xoshiro256** 1.0 (Blackman & Vigna) seeded via splitmix64.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  /// Next raw 64-bit draw.
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  /// `bound` must be nonzero.
  std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Exponential deviate with the given mean (> 0). Used for the paper's
  /// exponential error inter-arrival distributions (Table 5).
  double exponential(double mean) noexcept;

  /// Bernoulli trial with probability `p` of true.
  bool chance(double p) noexcept;

  /// Derives an independent stream for sub-component `stream_id`; two
  /// derived streams never share state with the parent or each other.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace wtc::common
