// Statistics helpers for the evaluation harness: binomial confidence
// intervals (the paper reports 95% CIs assuming a binomial distribution,
// §6.1.4), running means, and percentage formatting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace wtc::common {

/// A [lo, hi] interval of percentages, e.g. (40, 51) for "46% (40, 51)".
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
};

/// 95% confidence interval for a binomial proportion (Wilson score
/// interval), clamped to [0, 100]. `successes <= trials`. Wilson rather
/// than the Wald normal approximation: Wald degenerates to a zero-width
/// interval at 0/N and N/N, which the injection tables hit routinely.
[[nodiscard]] ConfidenceInterval binomial_ci95(std::size_t successes,
                                               std::size_t trials) noexcept;

/// Percentage of successes over trials; 0 when trials == 0.
[[nodiscard]] double percent(std::size_t successes, std::size_t trials) noexcept;

/// Formats "46% (40, 51)" like the paper's Tables 8 and 9. For outcome
/// categories with very few observations the paper prints the raw count
/// instead; `format_count_or_percent` mirrors that convention.
[[nodiscard]] std::string format_percent_ci(std::size_t successes, std::size_t trials);
[[nodiscard]] std::string format_count_or_percent(std::size_t successes,
                                                  std::size_t trials,
                                                  std::size_t min_for_percent = 10);

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Frequency histogram over small integer values; used by the selective
/// attribute monitor (§4.4.2) to find under-represented attribute values.
class ValueHistogram {
 public:
  void add(std::int64_t value);
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t distinct() const noexcept { return counts_.size(); }
  /// Average occurrences per distinct value (0 when empty).
  [[nodiscard]] double mean_occurrences() const noexcept;
  /// Values whose occurrence count is strictly below
  /// `fraction * mean_occurrences()` — the paper's "suspect" values.
  [[nodiscard]] std::vector<std::int64_t> suspects(double fraction) const;
  [[nodiscard]] std::size_t count_of(std::int64_t value) const noexcept;
  void clear() noexcept;

 private:
  // Sorted association list: value histograms here are tiny (tens of
  // distinct values), so a flat vector beats a map.
  std::vector<std::pair<std::int64_t, std::size_t>> counts_;
  std::size_t total_ = 0;
};

}  // namespace wtc::common
