#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace wtc::common {

ConfidenceInterval binomial_ci95(std::size_t successes, std::size_t trials) noexcept {
  if (trials == 0) {
    return {0.0, 0.0};
  }
  // Wilson score interval. The Wald interval (p ± z·sqrt(p(1-p)/n))
  // collapses to zero width at p = 0 or p = 1, which misreports the
  // all-detected / none-detected rows of Tables 8-10 as exact; Wilson
  // stays well-behaved at the boundaries and inside (0,1) differs from
  // Wald by less than a percentage point at the paper's sample sizes.
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  constexpr double z = 1.959963984540054;  // Phi^-1(0.975)
  const double z2_n = z * z / n;
  const double center = (p + z2_n / 2.0) / (1.0 + z2_n);
  const double half = (z / (1.0 + z2_n)) *
                      std::sqrt(p * (1.0 - p) / n + z2_n / (4.0 * n));
  return {std::max(0.0, (center - half) * 100.0),
          std::min(100.0, (center + half) * 100.0)};
}

double percent(std::size_t successes, std::size_t trials) noexcept {
  return trials == 0 ? 0.0
                     : 100.0 * static_cast<double>(successes) / static_cast<double>(trials);
}

std::string format_percent_ci(std::size_t successes, std::size_t trials) {
  const auto ci = binomial_ci95(successes, trials);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f%% (%.0f, %.0f)", percent(successes, trials),
                ci.lo, ci.hi);
  return buf;
}

std::string format_count_or_percent(std::size_t successes, std::size_t trials,
                                    std::size_t min_for_percent) {
  if (successes < min_for_percent) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%zu", successes);
    return buf;
  }
  return format_percent_ci(successes, trials);
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void ValueHistogram::add(std::int64_t value) {
  auto it = std::lower_bound(counts_.begin(), counts_.end(), value,
                             [](const auto& e, std::int64_t v) { return e.first < v; });
  if (it != counts_.end() && it->first == value) {
    ++it->second;
  } else {
    counts_.insert(it, {value, 1});
  }
  ++total_;
}

double ValueHistogram::mean_occurrences() const noexcept {
  return counts_.empty()
             ? 0.0
             : static_cast<double>(total_) / static_cast<double>(counts_.size());
}

std::vector<std::int64_t> ValueHistogram::suspects(double fraction) const {
  std::vector<std::int64_t> out;
  const double threshold = fraction * mean_occurrences();
  for (const auto& [value, count] : counts_) {
    if (static_cast<double>(count) < threshold) {
      out.push_back(value);
    }
  }
  return out;
}

std::size_t ValueHistogram::count_of(std::int64_t value) const noexcept {
  auto it = std::lower_bound(counts_.begin(), counts_.end(), value,
                             [](const auto& e, std::int64_t v) { return e.first < v; });
  return (it != counts_.end() && it->first == value) ? it->second : 0;
}

void ValueHistogram::clear() noexcept {
  counts_.clear();
  total_ = 0;
}

}  // namespace wtc::common
