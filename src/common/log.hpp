// Minimal leveled logger. Experiments run millions of simulated events, so
// logging defaults to Warn; tests and examples raise it as needed.
#pragma once

#include <sstream>
#include <string_view>

namespace wtc::common {

enum class LogLevel { Trace, Debug, Info, Warn, Error, Off };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

namespace detail {
void log_write(LogLevel level, std::string_view component, std::string_view message);
}

/// Logs the stream-concatenation of `parts` under `component` if `level`
/// passes the global threshold, e.g.
///   log(LogLevel::Info, "audit", "detected error in table ", t);
template <typename... Parts>
void log(LogLevel level, std::string_view component, Parts&&... parts) {
  if (level < log_level()) {
    return;
  }
  std::ostringstream oss;
  (oss << ... << std::forward<Parts>(parts));
  detail::log_write(level, component, oss.str());
}

}  // namespace wtc::common
