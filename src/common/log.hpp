// Minimal leveled logger. Experiments run millions of simulated events, so
// logging defaults to Warn; tests and examples raise it as needed.
//
// Thread model: the level is a process-wide atomic; the output sink is
// routed per thread. By default every thread writes to stderr (one
// fprintf call per message, so lines never interleave mid-line). A
// parallel campaign worker installs a ScopedLogSink for the duration of
// its run so that run's messages stay attributable to its seed index.
#pragma once

#include <functional>
#include <sstream>
#include <string_view>

namespace wtc::common {

enum class LogLevel { Trace, Debug, Info, Warn, Error, Off };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Receives every message that passes the level threshold on the thread
/// the sink is installed on.
using LogSink =
    std::function<void(LogLevel, std::string_view component,
                       std::string_view message)>;

/// Installs `sink` as the CURRENT THREAD's log sink for this object's
/// lifetime, restoring the previous sink (or the stderr default) on
/// destruction. Nestable.
class ScopedLogSink {
 public:
  explicit ScopedLogSink(LogSink sink);
  ~ScopedLogSink();
  ScopedLogSink(const ScopedLogSink&) = delete;
  ScopedLogSink& operator=(const ScopedLogSink&) = delete;

 private:
  LogSink sink_;
  LogSink* previous_;
};

namespace detail {
void log_write(LogLevel level, std::string_view component, std::string_view message);
/// The default sink: one formatted fprintf to stderr.
void log_write_stderr(LogLevel level, std::string_view component,
                      std::string_view message);
}

/// Logs the stream-concatenation of `parts` under `component` if `level`
/// passes the global threshold, e.g.
///   log(LogLevel::Info, "audit", "detected error in table ", t);
template <typename... Parts>
void log(LogLevel level, std::string_view component, Parts&&... parts) {
  if (level < log_level()) {
    return;
  }
  std::ostringstream oss;
  (oss << ... << std::forward<Parts>(parts));
  detail::log_write(level, component, oss.str());
}

}  // namespace wtc::common
