#include "common/crc32.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace wtc::common {
namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;  // reflected IEEE 802.3

// Slice-by-8 tables: kTables[0] is the classic byte-at-a-time table;
// kTables[k][b] advances byte b through k additional zero bytes, so eight
// table lookups consume eight input bytes per iteration instead of one.
// The audit's static checksum CRCs the whole static area every cycle, so
// this inner loop is the hottest code in the audit process.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tables[0][i];
    for (std::size_t k = 1; k < 8; ++k) {
      c = tables[0][c & 0xFFu] ^ (c >> 8);
      tables[k][i] = c;
    }
  }
  return tables;
}

constexpr auto kTables = make_tables();

inline std::uint32_t update_byte(std::uint32_t c, std::byte b) noexcept {
  return kTables[0][(c ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (c >> 8);
}

}  // namespace

void Crc32::update(std::span<const std::byte> bytes) noexcept {
  std::uint32_t c = state_;
  const std::byte* p = bytes.data();
  std::size_t n = bytes.size();
  // The 8-byte kernel folds the running CRC into the first word with a
  // little-endian XOR; on big-endian targets fall back to the byte loop.
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      std::uint32_t lo;
      std::uint32_t hi;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      lo ^= c;
      c = kTables[7][lo & 0xFFu] ^ kTables[6][(lo >> 8) & 0xFFu] ^
          kTables[5][(lo >> 16) & 0xFFu] ^ kTables[4][lo >> 24] ^
          kTables[3][hi & 0xFFu] ^ kTables[2][(hi >> 8) & 0xFFu] ^
          kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
      p += 8;
      n -= 8;
    }
  }
  while (n > 0) {
    c = update_byte(c, *p);
    ++p;
    --n;
  }
  state_ = c;
}

std::uint32_t crc32(std::span<const std::byte> bytes) noexcept {
  Crc32 engine;
  engine.update(bytes);
  return engine.value();
}

}  // namespace wtc::common
