#include "common/crc32.hpp"

#include <array>

namespace wtc::common {
namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;  // reflected IEEE 802.3

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

void Crc32::update(std::span<const std::byte> bytes) noexcept {
  std::uint32_t c = state_;
  for (std::byte b : bytes) {
    c = kTable[(c ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (c >> 8);
  }
  state_ = c;
}

std::uint32_t crc32(std::span<const std::byte> bytes) noexcept {
  Crc32 engine;
  engine.update(bytes);
  return engine.value();
}

}  // namespace wtc::common
