#include "common/worker_pool.hpp"

namespace wtc::common {

WorkerPool::WorkerPool(std::size_t threads) {
  threads_.reserve(threads);
  for (std::size_t slot = 0; slot < threads; ++slot) {
    threads_.emplace_back([this, slot]() { thread_main(slot); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& thread : threads_) {
    thread.join();
  }
}

void WorkerPool::thread_main(std::size_t slot) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&]() { return stop_ || epoch_ != seen_epoch; });
      if (stop_) {
        return;
      }
      seen_epoch = epoch_;
      if (slot >= participating_) {
        continue;  // this dispatch wants fewer workers than the pool has
      }
      job = job_;
    }
    // Pool thread `slot` is worker index slot + 1 (index 0 is the caller).
    const std::size_t index = slot + 1;
    std::exception_ptr error;
    try {
      (*job)(index);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error) {
        errors_[index] = error;
      }
      if (--remaining_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

void WorkerPool::dispatch(std::size_t workers,
                          const std::function<void(std::size_t)>& job) {
  if (workers == 0) {
    return;
  }
  const std::size_t pooled = std::min(workers - 1, threads_.size());
  if (pooled > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    participating_ = pooled;
    remaining_ = pooled;
    errors_.assign(workers, nullptr);
    ++epoch_;
    start_cv_.notify_all();
  } else {
    errors_.assign(workers, nullptr);
  }
  // The calling thread is worker 0 and also picks up any indexes the pool
  // is too small to cover.
  for (std::size_t index = 0; index < workers;
       index = (index == 0 ? pooled + 1 : index + 1)) {
    try {
      job(index);
    } catch (...) {
      errors_[index] = std::current_exception();
    }
  }
  if (pooled > 0) {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&]() { return remaining_ == 0; });
    job_ = nullptr;
  }
  for (auto& error : errors_) {
    if (error) {
      std::exception_ptr first = error;
      errors_.clear();
      std::rethrow_exception(first);
    }
  }
  errors_.clear();
}

}  // namespace wtc::common
