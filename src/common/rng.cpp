#include "common/rng.hpp"

#include <bit>
#include <cmath>

namespace wtc::common {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
  // xoshiro requires a nonzero state; splitmix64 over four draws makes an
  // all-zero state astronomically unlikely, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) noexcept {
  // Bitmask rejection: draw within the next power of two, retry on
  // overshoot. Unbiased, and the expected retry count is < 1.
  if (bound <= 1) {
    return 0;
  }
  const int bits = 64 - std::countl_zero(bound - 1);
  const std::uint64_t mask =
      bits >= 64 ? ~0ull : ((1ull << bits) - 1);
  std::uint64_t x = next() & mask;
  while (x >= bound) {
    x = next() & mask;
  }
  return x;
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::exponential(double mean) noexcept {
  double u = uniform01();
  // uniform01() can return exactly 0; -log(0) is inf, so nudge.
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

bool Rng::chance(double p) noexcept { return uniform01() < p; }

Rng Rng::fork(std::uint64_t stream_id) const noexcept {
  // Hash the parent state with the stream id through splitmix64 so the
  // child stream is decorrelated from the parent's future output.
  std::uint64_t mix = s_[0] ^ std::rotl(s_[3], 13) ^ (stream_id * 0xA24BAED4963EE407ull);
  return Rng(splitmix64(mix));
}

}  // namespace wtc::common
