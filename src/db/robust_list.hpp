// Robust doubly-linked list — the storage structure the paper's footnote 3
// points at but the production controller did not adopt:
//
//   "The use of doubly linked list as the data structure for logical
//    groups within the database can allow single pointer corruption to be
//    detected and corrected using robust data structure techniques (e.g.,
//    traversing the list of table records in both directions and making
//    proper pointer adjustments) [SET85]."
//
// This module implements that technique (Taylor/Black/Morgan-style
// redundancy [TAY80a/b, SET85]): each node carries BOTH links plus an
// identifier tag, and the header carries head, tail, and a count. The
// structure is 2-detectable / 1-correctable: any single corrupted field
// (a pointer, a tag, the head/tail, or the count) is detected by a
// two-direction traversal and corrected from the surviving redundancy.
//
// The list is serialized into caller-provided storage (like the record
// headers inside the database region), so corruption injection exercises
// it the same way it exercises the rest of the region.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace wtc::db {

/// Audit outcome of one robust-list check (§ footnote 3's technique).
struct RobustAuditResult {
  std::uint32_t errors_detected = 0;
  std::uint32_t errors_corrected = 0;
  bool structure_valid = false;  ///< list is consistent after the audit

  [[nodiscard]] bool clean() const noexcept {
    return structure_valid && errors_detected == 0;
  }
};

/// A doubly-linked list over `capacity` fixed slots, serialized in a
/// caller-provided byte buffer.
///
/// Layout: header {magic, count, head, tail} followed by per-slot nodes
/// {tag, prev, next}. Slot indexes are 32-bit; kNil terminates.
class RobustList {
 public:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::size_t kHeaderBytes = 16;
  static constexpr std::size_t kNodeBytes = 12;

  /// Bytes required for a list over `capacity` slots.
  [[nodiscard]] static std::size_t storage_bytes(std::uint32_t capacity) noexcept {
    return kHeaderBytes + static_cast<std::size_t>(capacity) * kNodeBytes;
  }

  /// Binds to `storage` (unformatted or previously formatted).
  RobustList(std::span<std::byte> storage, std::uint32_t capacity);

  /// Formats the storage as an empty list.
  void format();

  // --- mutation (maintains full redundancy) ---
  /// Appends `slot` at the tail. Returns false if already a member or out
  /// of range.
  bool push_back(std::uint32_t slot);
  /// Unlinks `slot`. Returns false if not currently a member.
  bool remove(std::uint32_t slot);

  // --- queries ---
  [[nodiscard]] std::uint32_t count() const noexcept;
  [[nodiscard]] std::uint32_t head() const noexcept;
  [[nodiscard]] std::uint32_t tail() const noexcept;
  [[nodiscard]] bool contains(std::uint32_t slot) const;
  /// Forward traversal (bounded); stops early on breakage.
  [[nodiscard]] std::vector<std::uint32_t> forward_chain() const;
  /// Backward traversal via prev links.
  [[nodiscard]] std::vector<std::uint32_t> backward_chain() const;

  /// The robust-structure audit: traverses both directions, detects
  /// inconsistencies, and corrects any single corrupted field in place.
  /// Multi-error damage is detected (structure_valid=false) even when it
  /// cannot be corrected.
  RobustAuditResult audit();

  /// Expected tag of slot `i` (exact-valued, like the record id_tag).
  [[nodiscard]] static std::uint32_t expected_tag(std::uint32_t slot) noexcept {
    return 0x0B157A60u ^ slot;
  }

 private:
  struct Node {
    std::uint32_t tag;
    std::uint32_t prev;
    std::uint32_t next;
  };

  [[nodiscard]] Node load_node(std::uint32_t slot) const;
  void store_node(std::uint32_t slot, const Node& node);
  [[nodiscard]] std::uint32_t load_u32_at(std::size_t offset) const;
  void store_u32_at(std::size_t offset, std::uint32_t value);

  /// Attempts to derive the full member sequence from the surviving
  /// redundancy; nullopt if more than one field is damaged beyond repair.
  [[nodiscard]] std::optional<std::vector<std::uint32_t>> reconstruct_sequence()
      const;
  /// Rewrites header + every member node to encode `sequence` exactly;
  /// returns the number of fields that changed.
  std::uint32_t rewrite(const std::vector<std::uint32_t>& sequence);

  std::span<std::byte> storage_;
  std::uint32_t capacity_;
};

}  // namespace wtc::db
