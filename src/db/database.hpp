// The controller's in-memory database subsystem (§3.1.2).
//
// Owns the contiguous pre-allocated region (catalog + tables), the pristine
// "disk image" used by audit recovery reloads, the per-table lock table the
// API manipulates transparently for clients, and the redundant bookkeeping
// the audit framework adds *outside* the original database structure
// (§4.3.3): per-record last-writer / last-access-time / access counters and
// per-table access-frequency and error-history statistics (§4.4.1).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "db/layout.hpp"
#include "db/schema.hpp"
#include "sim/node.hpp"
#include "sim/time.hpp"

namespace wtc::db {

/// Hook the error-injection oracle attaches to distinguish legitimate
/// writes (which *overwrite* injected corruption) from client reads (which
/// *consume* it). The audit subsystem does not use this; it exists purely
/// for experiment accounting.
class RegionObserver {
 public:
  virtual ~RegionObserver() = default;
  /// A client/API write replaced `len` bytes at `offset` with known-good data.
  virtual void on_legitimate_write(std::size_t offset, std::size_t len) = 0;
  /// Client `pid` read `len` bytes at `offset` through the API.
  virtual void on_client_read(sim::ProcessId pid, std::size_t offset,
                              std::size_t len) = 0;
};

/// Redundant per-record metadata (§4.3.3): identifies the misbehaving
/// database client and enables preemptive termination during semantic
/// recovery. Lives outside the region so corruption injection cannot
/// touch it (matching "adding redundancy without modifying the original
/// database structure").
struct RecordMeta {
  sim::ProcessId last_writer = sim::kNoProcess;
  std::uint32_t last_writer_thread = 0;  ///< client thread within the process
  sim::Time last_access = 0;
  std::uint32_t access_count = 0;
};

/// Per-table runtime statistics feeding prioritized audit triggering
/// (§4.4.1): access frequency and recent error history.
struct TableStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t errors_detected_total = 0;
  std::uint64_t errors_last_cycle = 0;

  [[nodiscard]] std::uint64_t accesses() const noexcept { return reads + writes; }
};

/// Table lock state. The API acquires/releases locks transparently; a
/// crashed client leaves its lock held, which the progress-indicator
/// element detects and recovers (§4.2).
struct LockInfo {
  sim::ProcessId owner = sim::kNoProcess;
  sim::Time since = 0;
};

class Database {
 public:
  /// `populate` (optional) runs after the region is formatted and before
  /// the pristine disk image is snapshotted — use it to fill static tables
  /// with their real (distinct) configuration values so the golden
  /// checksum covers meaningful data.
  using PopulateFn =
      std::function<void(std::span<std::byte>, const Schema&, const Layout&)>;
  explicit Database(Schema schema, const PopulateFn& populate = {});

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  [[nodiscard]] const Schema& schema() const noexcept { return schema_; }
  [[nodiscard]] const Layout& layout() const noexcept { return layout_; }

  /// The live region. The audit subsystem reads it via direct memory
  /// access, bypassing the API and its locks (§4, Figure 1).
  [[nodiscard]] std::span<std::byte> region() noexcept { return region_; }
  [[nodiscard]] std::span<const std::byte> region() const noexcept { return region_; }

  /// Pristine startup image ("disk"). Recovery reloads come from here.
  [[nodiscard]] std::span<const std::byte> pristine() const noexcept {
    return pristine_;
  }

  /// Reloads the whole region from disk (structural-damage recovery,
  /// §4.3.2 — all dynamic state is lost, dropping active calls).
  void reload_all_from_disk() noexcept;

  /// Reloads `[offset, offset+len)` from disk (static-data recovery,
  /// §4.3.1 — "reload the affected portion from permanent storage").
  void reload_span_from_disk(std::size_t offset, std::size_t len) noexcept;

  /// Reloads just the catalog bytes.
  void reload_catalog_from_disk() noexcept;

  /// Installs `bytes` as both the live region and the pristine disk image
  /// (the boot-from-permanent-storage path). Fails on size mismatch or if
  /// the image's catalog does not decode.
  bool install_image(std::span<const std::byte> bytes);

  /// Byte spans holding static data: the serialized catalog plus every
  /// record of every static table. This is the golden-checksum coverage
  /// (§4.3.1).
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> static_spans() const;

  // --- locks ---
  /// Acquires table `t` for `pid`; false if held by another process.
  /// Re-acquisition by the owner is idempotent.
  bool try_lock(TableId t, sim::ProcessId pid, sim::Time now) noexcept;
  /// Releases table `t` if held by `pid`.
  bool unlock(TableId t, sim::ProcessId pid) noexcept;
  /// Releases every lock held by `pid` (crash cleanup by recovery actions).
  void release_locks_of(sim::ProcessId pid) noexcept;
  [[nodiscard]] std::optional<LockInfo> lock_info(TableId t) const noexcept;
  /// All currently held locks (progress-indicator recovery scans these).
  [[nodiscard]] std::vector<std::pair<TableId, LockInfo>> held_locks() const;

  // --- redundant metadata & statistics (audit-framework additions) ---
  [[nodiscard]] RecordMeta& record_meta(TableId t, RecordIndex r);
  [[nodiscard]] const RecordMeta& record_meta(TableId t, RecordIndex r) const;
  [[nodiscard]] TableStats& table_stats(TableId t) { return table_stats_.at(t); }
  [[nodiscard]] const TableStats& table_stats(TableId t) const {
    return table_stats_.at(t);
  }
  [[nodiscard]] std::size_t table_count() const noexcept {
    return schema_.tables.size();
  }

  // --- experiment oracle hook ---
  void set_observer(RegionObserver* observer) noexcept { observer_ = observer; }
  [[nodiscard]] RegionObserver* observer() const noexcept { return observer_; }

 private:
  Schema schema_;
  Layout layout_;
  std::vector<std::byte> region_;
  std::vector<std::byte> pristine_;
  std::vector<std::optional<LockInfo>> locks_;        // per table
  std::vector<std::vector<RecordMeta>> record_meta_;  // [table][record]
  std::vector<TableStats> table_stats_;               // per table
  RegionObserver* observer_ = nullptr;
};

}  // namespace wtc::db
