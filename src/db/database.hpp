// The controller's in-memory database subsystem (§3.1.2).
//
// Owns the contiguous pre-allocated region (catalog + tables), the pristine
// "disk image" used by audit recovery reloads, the per-table lock table the
// API manipulates transparently for clients, and the redundant bookkeeping
// the audit framework adds *outside* the original database structure
// (§4.3.3): per-record last-writer / last-access-time / access counters and
// per-table access-frequency and error-history statistics (§4.4.1).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "db/index.hpp"
#include "db/layout.hpp"
#include "db/schema.hpp"
#include "sim/node.hpp"
#include "sim/time.hpp"

namespace wtc::db {

/// Hook the error-injection oracle attaches to distinguish legitimate
/// writes (which *overwrite* injected corruption) from client reads (which
/// *consume* it). The audit subsystem does not use this; it exists purely
/// for experiment accounting.
class RegionObserver {
 public:
  virtual ~RegionObserver() = default;
  /// A client/API write replaced `len` bytes at `offset` with known-good data.
  virtual void on_legitimate_write(std::size_t offset, std::size_t len) = 0;
  /// Client `pid` read `len` bytes at `offset` through the API.
  virtual void on_client_read(sim::ProcessId pid, std::size_t offset,
                              std::size_t len) = 0;
};

/// Redundant per-record metadata (§4.3.3): identifies the misbehaving
/// database client and enables preemptive termination during semantic
/// recovery. Lives outside the region so corruption injection cannot
/// touch it (matching "adding redundancy without modifying the original
/// database structure").
struct RecordMeta {
  sim::ProcessId last_writer = sim::kNoProcess;
  std::uint32_t last_writer_thread = 0;  ///< client thread within the process
  sim::Time last_access = 0;
  std::uint32_t access_count = 0;
};

/// Per-table runtime statistics feeding prioritized audit triggering
/// (§4.4.1): access frequency and recent error history.
struct TableStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t errors_detected_total = 0;
  std::uint64_t errors_last_cycle = 0;

  [[nodiscard]] std::uint64_t accesses() const noexcept { return reads + writes; }
};

/// Table lock state. The API acquires/releases locks transparently; a
/// crashed client leaves its lock held, which the progress-indicator
/// element detects and recovers (§4.2).
struct LockInfo {
  sim::ProcessId owner = sim::kNoProcess;
  sim::Time since = 0;
};

class Database {
 public:
  /// Granularity of the region-wide dirty-chunk generation grid (matches
  /// the audit engine's default `static_chunk_bytes`, so one static-audit
  /// chunk maps onto a constant number of dirty chunks).
  static constexpr std::size_t kDirtyChunkBytes = 256;

  /// `populate` (optional) runs after the region is formatted and before
  /// the pristine disk image is snapshotted — use it to fill static tables
  /// with their real (distinct) configuration values so the golden
  /// checksum covers meaningful data.
  using PopulateFn =
      std::function<void(std::span<std::byte>, const Schema&, const Layout&)>;
  explicit Database(Schema schema, const PopulateFn& populate = {});

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  [[nodiscard]] const Schema& schema() const noexcept { return schema_; }
  [[nodiscard]] const Layout& layout() const noexcept { return layout_; }

  /// The live region. The audit subsystem reads it via direct memory
  /// access, bypassing the API and its locks (§4, Figure 1).
  [[nodiscard]] std::span<std::byte> region() noexcept { return region_; }
  [[nodiscard]] std::span<const std::byte> region() const noexcept { return region_; }

  /// Pristine startup image ("disk"). Recovery reloads come from here.
  [[nodiscard]] std::span<const std::byte> pristine() const noexcept {
    return pristine_;
  }

  /// Reloads the whole region from disk (structural-damage recovery,
  /// §4.3.2 — all dynamic state is lost, dropping active calls).
  void reload_all_from_disk() noexcept;

  /// Reloads `[offset, offset+len)` from disk (static-data recovery,
  /// §4.3.1 — "reload the affected portion from permanent storage").
  void reload_span_from_disk(std::size_t offset, std::size_t len) noexcept;

  /// Reloads just the catalog bytes.
  void reload_catalog_from_disk() noexcept;

  /// Installs `bytes` as both the live region and the pristine disk image
  /// (the boot-from-permanent-storage path). Fails on size mismatch or if
  /// the image's catalog does not decode.
  bool install_image(std::span<const std::byte> bytes);

  /// Byte spans holding static data: the serialized catalog plus every
  /// record of every static table. This is the golden-checksum coverage
  /// (§4.3.1).
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> static_spans() const;

  // --- locks ---
  /// Acquires table `t` for `pid`; false if held by another process.
  /// Re-acquisition by the owner is idempotent.
  bool try_lock(TableId t, sim::ProcessId pid, sim::Time now) noexcept;
  /// Releases table `t` if held by `pid`.
  bool unlock(TableId t, sim::ProcessId pid) noexcept;
  /// Releases every lock held by `pid` (crash cleanup by recovery actions).
  void release_locks_of(sim::ProcessId pid) noexcept;
  [[nodiscard]] std::optional<LockInfo> lock_info(TableId t) const noexcept;
  /// All currently held locks (progress-indicator recovery scans these).
  [[nodiscard]] std::vector<std::pair<TableId, LockInfo>> held_locks() const;

  // --- redundant metadata & statistics (audit-framework additions) ---
  [[nodiscard]] RecordMeta& record_meta(TableId t, RecordIndex r);
  [[nodiscard]] const RecordMeta& record_meta(TableId t, RecordIndex r) const;
  [[nodiscard]] TableStats& table_stats(TableId t) { return table_stats_.at(t); }
  [[nodiscard]] const TableStats& table_stats(TableId t) const {
    return table_stats_.at(t);
  }
  [[nodiscard]] std::size_t table_count() const noexcept {
    return schema_.tables.size();
  }

  // --- write-time dirty tracking (incremental audit support) ---
  // Every mutation of region bytes that goes through the store — API
  // writes, the audit's direct-access recovery writes, disk reloads, and
  // injected corruption modelling wild software writes — bumps a global
  // monotonically increasing write generation and stamps it on the touched
  // records, their tables, and the fixed-size dirty chunks covering the
  // byte span. The incremental audit compares these stamps against the
  // generation watermark it recorded at its previous scan: stamp greater
  // than watermark means "written since I last looked" (an epoch-based
  // dirty bitmap that never needs clearing). Raw-memory corruption that
  // bypasses the store leaves no stamp — catching it is what the audit's
  // periodic full sweep is for.

  /// Marks [offset, offset+len) written, then forwards the legitimate-write
  /// notification to the experiment observer. Store write paths call this.
  void note_write(std::size_t offset, std::size_t len) noexcept;

  /// Marks [offset, offset+len) written WITHOUT an observer notification —
  /// the injector's through-store corruption path (the written bytes are
  /// anything but legitimate, yet a wild write by faulty software does go
  /// through the memory system and is visible to write tracking).
  void mark_written(std::size_t offset, std::size_t len) noexcept;

  [[nodiscard]] std::uint64_t write_generation() const noexcept {
    return write_gen_;
  }
  /// Generation of the last store write touching any byte of table `t`.
  [[nodiscard]] std::uint64_t table_generation(TableId t) const {
    return table_gen_.at(t);
  }
  /// Generation of the last store write touching record (t, r).
  [[nodiscard]] std::uint64_t record_generation(TableId t, RecordIndex r) const {
    return record_gen_.at(t).at(r);
  }
  /// Generation of the last store write touching the 16-byte *header* of
  /// record (t, r). Field-only writes (normal call-data updates) bump
  /// record_generation but not this — letting the structural check ignore
  /// traffic that cannot have changed id/status/group/link words.
  [[nodiscard]] std::uint64_t header_generation(TableId t, RecordIndex r) const {
    return header_gen_.at(t).at(r);
  }
  /// Generation of the last header write anywhere in table `t`.
  [[nodiscard]] std::uint64_t table_header_generation(TableId t) const {
    return table_header_gen_.at(t);
  }
  /// Generation of the last store write touching the *field area* (the
  /// bytes past the 16-byte header) of record (t, r). Group relinks rewrite
  /// only header link words, so they bump record_generation but not this —
  /// letting the content checks (range / selective / semantic) ignore
  /// traffic that cannot have changed field values.
  [[nodiscard]] std::uint64_t field_generation(TableId t, RecordIndex r) const {
    return field_gen_.at(t).at(r);
  }
  /// Generation of the last field-area write anywhere in table `t`.
  [[nodiscard]] std::uint64_t table_field_generation(TableId t) const {
    return table_field_gen_.at(t);
  }
  /// Generation of the last *scrub* of record (t, r): a store write that
  /// rewrote the record's whole field area with catalog defaults (the
  /// free-record path). While field_generation == scrub_generation > 0 the
  /// field bytes equal their defaults by construction (the defaults come
  /// from the trusted out-of-region schema), so the range check can attest
  /// the record without reading it; any later field write — including
  /// through-store corruption — breaks the equality.
  [[nodiscard]] std::uint64_t scrub_generation(TableId t, RecordIndex r) const {
    return scrub_gen_.at(t).at(r);
  }
  /// note_write variant for the free-record scrub: marks the span written,
  /// then stamps the scrub generation of every record whose whole field
  /// area lies inside [offset, offset+len).
  void note_scrub(std::size_t offset, std::size_t len) noexcept;
  /// True if any store write has touched [offset, offset+len) since
  /// generation `gen` (chunk-granular: may over-approximate within
  /// kDirtyChunkBytes, never under-approximate).
  [[nodiscard]] bool span_written_since(std::size_t offset, std::size_t len,
                                        std::uint64_t gen) const noexcept;
  /// Number of dirty-grid chunks in [offset, offset+len) of THIS region
  /// written since generation `gen` — the audit scheduler's table-pressure
  /// signal. Offsets and generations are local to this Database instance:
  /// in a sharded deployment every shard owns its own region, dirty grid,
  /// and write-generation clock, so a span or watermark from one shard is
  /// meaningless against another. The name carries the scope so a caller
  /// holding several shards cannot silently mix them up
  /// (ShardedDb::dirty_chunks_since is the shard-addressed variant).
  [[nodiscard]] std::uint64_t region_dirty_chunks_since(
      std::size_t offset, std::size_t len, std::uint64_t gen) const noexcept;

  // --- shadow group/free indexes (O(1) API hot path; see index.hpp) ---
  // One TableIndex per table, living outside the audited region. Kept in
  // sync by mark_written: a store write overlapping a record's status or
  // group word re-reads both and resyncs that record's membership — so
  // the index follows API writes, the audit's header repairs, disk
  // reloads / image installs, and the injector's through-store corruption
  // without any caller-side bookkeeping. Raw (store-bypassing) corruption
  // can desync it; consumers treat it as advisory and rebuild on demand.

  [[nodiscard]] const TableIndex& index(TableId t) const { return index_.at(t); }
  /// Rebuilds table `t`'s index from the region's header words (the
  /// stale-index recovery path; also counts obs db.index_rebuilds).
  void rebuild_index(TableId t);
  void rebuild_all_indexes();
  /// Full-rebuild cross-check: true iff the live index equals one rebuilt
  /// from the region bytes right now.
  [[nodiscard]] bool verify_index(TableId t) const;
  /// When enabled, DbApi cross-checks (and heals) the index before every
  /// splice — the debug-mode guard the splice equivalence argument rides
  /// on. Off by default: the check is O(N_records) per mutation.
  void set_index_cross_check(bool on) noexcept { index_cross_check_ = on; }
  [[nodiscard]] bool index_cross_check() const noexcept {
    return index_cross_check_;
  }

  // --- experiment oracle hook ---
  void set_observer(RegionObserver* observer) noexcept { observer_ = observer; }
  [[nodiscard]] RegionObserver* observer() const noexcept { return observer_; }

 private:
  Schema schema_;
  Layout layout_;
  std::vector<std::byte> region_;
  std::vector<std::byte> pristine_;
  std::vector<std::optional<LockInfo>> locks_;        // per table
  std::vector<std::vector<RecordMeta>> record_meta_;  // [table][record]
  std::vector<TableStats> table_stats_;               // per table
  RegionObserver* observer_ = nullptr;

  // Dirty-tracking state (see the write-time dirty tracking section above).
  std::uint64_t write_gen_ = 0;
  std::vector<std::uint64_t> chunk_gen_;               // region / kDirtyChunkBytes
  std::vector<std::uint64_t> table_gen_;               // per table
  std::vector<std::uint64_t> table_header_gen_;        // per table, headers
  std::vector<std::uint64_t> table_field_gen_;         // per table, field area
  std::vector<std::vector<std::uint64_t>> record_gen_;  // [table][record]
  std::vector<std::vector<std::uint64_t>> header_gen_;  // [table][record]
  std::vector<std::vector<std::uint64_t>> field_gen_;   // [table][record]
  std::vector<std::vector<std::uint64_t>> scrub_gen_;   // [table][record]

  std::vector<TableIndex> index_;  // per table, shadow of status/group words
  bool index_cross_check_ = false;
};

}  // namespace wtc::db
