#include "db/database.hpp"

#include <algorithm>
#include <cstring>

namespace wtc::db {

Database::Database(Schema schema, const PopulateFn& populate)
    : schema_(std::move(schema)), layout_(Layout::compute(schema_)) {
  region_.resize(layout_.region_size());
  format_region(region_, schema_, layout_);
  if (populate) {
    populate(region_, schema_, layout_);
  }
  pristine_ = region_;

  locks_.resize(schema_.tables.size());
  table_stats_.resize(schema_.tables.size());
  record_meta_.reserve(schema_.tables.size());
  for (const auto& table : schema_.tables) {
    record_meta_.emplace_back(table.num_records);
  }
}

void Database::reload_all_from_disk() noexcept {
  std::memcpy(region_.data(), pristine_.data(), region_.size());
  if (observer_ != nullptr) {
    observer_->on_legitimate_write(0, region_.size());
  }
}

void Database::reload_span_from_disk(std::size_t offset, std::size_t len) noexcept {
  const std::size_t end = std::min(offset + len, region_.size());
  if (offset >= end) {
    return;
  }
  std::memcpy(region_.data() + offset, pristine_.data() + offset, end - offset);
  if (observer_ != nullptr) {
    observer_->on_legitimate_write(offset, end - offset);
  }
}

void Database::reload_catalog_from_disk() noexcept {
  reload_span_from_disk(0, layout_.catalog_size());
}

bool Database::install_image(std::span<const std::byte> bytes) {
  if (bytes.size() != region_.size()) {
    return false;
  }
  if (!CatalogView(bytes).header_ok()) {
    return false;
  }
  std::memcpy(region_.data(), bytes.data(), bytes.size());
  pristine_.assign(bytes.begin(), bytes.end());
  if (observer_ != nullptr) {
    observer_->on_legitimate_write(0, region_.size());
  }
  return true;
}

std::vector<std::pair<std::size_t, std::size_t>> Database::static_spans() const {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  spans.emplace_back(0, layout_.catalog_size());
  for (std::size_t t = 0; t < schema_.tables.size(); ++t) {
    if (!schema_.tables[t].dynamic) {
      const auto& tl = layout_.tables()[t];
      spans.emplace_back(tl.offset, tl.record_size * tl.num_records);
    }
  }
  return spans;
}

bool Database::try_lock(TableId t, sim::ProcessId pid, sim::Time now) noexcept {
  if (t >= locks_.size()) {
    return false;
  }
  auto& slot = locks_[t];
  if (!slot) {
    slot = LockInfo{pid, now};
    return true;
  }
  return slot->owner == pid;
}

bool Database::unlock(TableId t, sim::ProcessId pid) noexcept {
  if (t >= locks_.size() || !locks_[t] || locks_[t]->owner != pid) {
    return false;
  }
  locks_[t].reset();
  return true;
}

void Database::release_locks_of(sim::ProcessId pid) noexcept {
  for (auto& slot : locks_) {
    if (slot && slot->owner == pid) {
      slot.reset();
    }
  }
}

std::optional<LockInfo> Database::lock_info(TableId t) const noexcept {
  return t < locks_.size() ? locks_[t] : std::nullopt;
}

std::vector<std::pair<TableId, LockInfo>> Database::held_locks() const {
  std::vector<std::pair<TableId, LockInfo>> held;
  for (std::size_t t = 0; t < locks_.size(); ++t) {
    if (locks_[t]) {
      held.emplace_back(static_cast<TableId>(t), *locks_[t]);
    }
  }
  return held;
}

RecordMeta& Database::record_meta(TableId t, RecordIndex r) {
  return record_meta_.at(t).at(r);
}

const RecordMeta& Database::record_meta(TableId t, RecordIndex r) const {
  return record_meta_.at(t).at(r);
}

}  // namespace wtc::db
