#include "db/database.hpp"

#include <algorithm>
#include <cstring>

#include "obs/metrics.hpp"

namespace wtc::db {

Database::Database(Schema schema, const PopulateFn& populate)
    : schema_(std::move(schema)), layout_(Layout::compute(schema_)) {
  region_.resize(layout_.region_size());
  format_region(region_, schema_, layout_);
  if (populate) {
    populate(region_, schema_, layout_);
  }
  pristine_ = region_;

  locks_.resize(schema_.tables.size());
  table_stats_.resize(schema_.tables.size());
  record_meta_.reserve(schema_.tables.size());
  for (const auto& table : schema_.tables) {
    record_meta_.emplace_back(table.num_records);
  }

  // Dirty tracking starts all-clean (generation 0): the formatted +
  // populated region IS the pristine image, so there is nothing for an
  // incremental audit to look at until the first store write.
  chunk_gen_.assign(region_.size() / kDirtyChunkBytes + 1, 0);
  table_gen_.assign(schema_.tables.size(), 0);
  table_header_gen_.assign(schema_.tables.size(), 0);
  table_field_gen_.assign(schema_.tables.size(), 0);
  record_gen_.reserve(schema_.tables.size());
  header_gen_.reserve(schema_.tables.size());
  field_gen_.reserve(schema_.tables.size());
  scrub_gen_.reserve(schema_.tables.size());
  for (const auto& table : schema_.tables) {
    record_gen_.emplace_back(table.num_records, 0);
    header_gen_.emplace_back(table.num_records, 0);
    field_gen_.emplace_back(table.num_records, 0);
    scrub_gen_.emplace_back(table.num_records, 0);
  }

  // The formatted (and populated) region is authoritative; mirror it.
  index_.resize(schema_.tables.size());
  rebuild_all_indexes();
}

void Database::rebuild_index(TableId t) {
  obs::count(obs::Counter::db_index_rebuilds);
  const auto& tl = layout_.tables().at(t);
  auto& index = index_[t];
  index.reset(tl.num_records);
  for (RecordIndex r = 0; r < tl.num_records; ++r) {
    const std::size_t at = tl.offset + static_cast<std::size_t>(r) * tl.record_size;
    index.sync(r, load_u32(region_, at + 4), load_u32(region_, at + 8));
  }
}

void Database::rebuild_all_indexes() {
  for (std::size_t t = 0; t < schema_.tables.size(); ++t) {
    rebuild_index(static_cast<TableId>(t));
  }
}

bool Database::verify_index(TableId t) const {
  const auto& tl = layout_.tables().at(t);
  TableIndex fresh;
  fresh.reset(tl.num_records);
  for (RecordIndex r = 0; r < tl.num_records; ++r) {
    const std::size_t at = tl.offset + static_cast<std::size_t>(r) * tl.record_size;
    fresh.sync(r, load_u32(region_, at + 4), load_u32(region_, at + 8));
  }
  return fresh == index_.at(t);
}

void Database::note_write(std::size_t offset, std::size_t len) noexcept {
  mark_written(offset, len);
  if (observer_ != nullptr) {
    observer_->on_legitimate_write(offset, len);
  }
}

void Database::mark_written(std::size_t offset, std::size_t len) noexcept {
  const std::size_t end = std::min(offset + len, region_.size());
  if (offset >= end) {
    return;
  }
  const std::uint64_t gen = ++write_gen_;
  obs::gauge_max(obs::Gauge::db_write_generation, gen);
  for (std::size_t c = offset / kDirtyChunkBytes; c <= (end - 1) / kDirtyChunkBytes;
       ++c) {
    chunk_gen_[c] = gen;
    obs::count(obs::Counter::db_dirty_chunk_stamps);
  }
  for (std::size_t t = 0; t < layout_.tables().size(); ++t) {
    const auto range = layout_.records_overlapping(static_cast<TableId>(t),
                                                   offset, end - offset);
    if (!range) {
      continue;
    }
    table_gen_[t] = gen;
    const auto& tl = layout_.tables()[t];
    for (RecordIndex r = range->first; r <= range->second; ++r) {
      record_gen_[t][r] = gen;
      // The span overlaps this record; it touched the field area iff it
      // reaches past the record header, and the header iff it starts
      // before the field area.
      const std::size_t rec_at =
          tl.offset + static_cast<std::size_t>(r) * tl.record_size;
      const std::size_t field_start = rec_at + kRecordHeaderSize;
      if (offset < field_start) {
        header_gen_[t][r] = gen;
        table_header_gen_[t] = gen;
        // The write may have changed the status (+4) or group (+8) word —
        // the inputs to this record's shadow-index membership. Re-read
        // both and resync; the region already holds the new bytes (store
        // paths write first, then note_write/mark_written).
        if (offset < rec_at + 12 && end > rec_at + 4) {
          index_[t].sync(r, load_u32(region_, rec_at + 4),
                         load_u32(region_, rec_at + 8));
          obs::count(obs::Counter::db_index_resyncs);
        }
      }
      if (end > field_start && tl.num_fields > 0) {
        field_gen_[t][r] = gen;
        table_field_gen_[t] = gen;
      }
    }
  }
}

void Database::note_scrub(std::size_t offset, std::size_t len) noexcept {
  obs::count(obs::Counter::db_scrubs);
  note_write(offset, len);
  const std::size_t end = std::min(offset + len, region_.size());
  if (offset >= end) {
    return;
  }
  for (std::size_t t = 0; t < layout_.tables().size(); ++t) {
    const auto range = layout_.records_overlapping(static_cast<TableId>(t),
                                                   offset, end - offset);
    if (!range) {
      continue;
    }
    const auto& tl = layout_.tables()[t];
    for (RecordIndex r = range->first; r <= range->second; ++r) {
      const std::size_t field_start = tl.offset +
                                      static_cast<std::size_t>(r) * tl.record_size +
                                      kRecordHeaderSize;
      const std::size_t field_end = field_start + tl.num_fields * 4;
      if (offset <= field_start && end >= field_end && tl.num_fields > 0) {
        scrub_gen_[t][r] = write_gen_;
      }
    }
  }
}

bool Database::span_written_since(std::size_t offset, std::size_t len,
                                  std::uint64_t gen) const noexcept {
  if (write_gen_ <= gen || len == 0) {
    return false;
  }
  const std::size_t end = std::min(offset + len, region_.size());
  if (offset >= end) {
    return false;
  }
  for (std::size_t c = offset / kDirtyChunkBytes; c <= (end - 1) / kDirtyChunkBytes;
       ++c) {
    if (chunk_gen_[c] > gen) {
      return true;
    }
  }
  return false;
}

std::uint64_t Database::region_dirty_chunks_since(
    std::size_t offset, std::size_t len, std::uint64_t gen) const noexcept {
  if (write_gen_ <= gen || len == 0) {
    return 0;
  }
  const std::size_t end = std::min(offset + len, region_.size());
  if (offset >= end) {
    return 0;
  }
  std::uint64_t dirty = 0;
  for (std::size_t c = offset / kDirtyChunkBytes; c <= (end - 1) / kDirtyChunkBytes;
       ++c) {
    if (chunk_gen_[c] > gen) {
      ++dirty;
    }
  }
  return dirty;
}

void Database::reload_all_from_disk() noexcept {
  obs::count(obs::Counter::db_reloads);
  std::memcpy(region_.data(), pristine_.data(), region_.size());
  note_write(0, region_.size());
}

void Database::reload_span_from_disk(std::size_t offset, std::size_t len) noexcept {
  const std::size_t end = std::min(offset + len, region_.size());
  if (offset >= end) {
    return;
  }
  obs::count(obs::Counter::db_reloads);
  std::memcpy(region_.data() + offset, pristine_.data() + offset, end - offset);
  note_write(offset, end - offset);
}

void Database::reload_catalog_from_disk() noexcept {
  reload_span_from_disk(0, layout_.catalog_size());
}

bool Database::install_image(std::span<const std::byte> bytes) {
  if (bytes.size() != region_.size()) {
    return false;
  }
  if (!CatalogView(bytes).header_ok()) {
    return false;
  }
  std::memcpy(region_.data(), bytes.data(), bytes.size());
  pristine_.assign(bytes.begin(), bytes.end());
  note_write(0, region_.size());
  return true;
}

std::vector<std::pair<std::size_t, std::size_t>> Database::static_spans() const {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  spans.emplace_back(0, layout_.catalog_size());
  for (std::size_t t = 0; t < schema_.tables.size(); ++t) {
    if (!schema_.tables[t].dynamic) {
      const auto& tl = layout_.tables()[t];
      spans.emplace_back(tl.offset, tl.record_size * tl.num_records);
    }
  }
  return spans;
}

bool Database::try_lock(TableId t, sim::ProcessId pid, sim::Time now) noexcept {
  if (t >= locks_.size()) {
    return false;
  }
  auto& slot = locks_[t];
  if (!slot) {
    slot = LockInfo{pid, now};
    obs::count(obs::Counter::db_lock_acquires);
    return true;
  }
  if (slot->owner != pid) {
    obs::count(obs::Counter::db_lock_conflicts);
    return false;
  }
  return true;
}

bool Database::unlock(TableId t, sim::ProcessId pid) noexcept {
  if (t >= locks_.size() || !locks_[t] || locks_[t]->owner != pid) {
    return false;
  }
  locks_[t].reset();
  return true;
}

void Database::release_locks_of(sim::ProcessId pid) noexcept {
  for (auto& slot : locks_) {
    if (slot && slot->owner == pid) {
      slot.reset();
    }
  }
}

std::optional<LockInfo> Database::lock_info(TableId t) const noexcept {
  return t < locks_.size() ? locks_[t] : std::nullopt;
}

std::vector<std::pair<TableId, LockInfo>> Database::held_locks() const {
  std::vector<std::pair<TableId, LockInfo>> held;
  for (std::size_t t = 0; t < locks_.size(); ++t) {
    if (locks_[t]) {
      held.emplace_back(static_cast<TableId>(t), *locks_[t]);
    }
  }
  return held;
}

RecordMeta& Database::record_meta(TableId t, RecordIndex r) {
  return record_meta_.at(t).at(r);
}

const RecordMeta& Database::record_meta(TableId t, RecordIndex r) const {
  return record_meta_.at(t).at(r);
}

}  // namespace wtc::db
