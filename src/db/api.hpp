// The database API (Table 1 of the paper) that client processes use.
//
// Every operation decodes the *in-region* catalog (CatalogView), so
// catalog corruption degrades or breaks API operations exactly as §3.2
// warns. The "modified" (audit-instrumented) API — enabled with
// `set_audit_hooks` — additionally:
//   * sends an activity message to the audit process on every call
//     (progress-indicator food, §4.2),
//   * sends an event-trigger message after each database update (§4.3),
//   * maintains the redundant per-record metadata and per-table access
//     statistics (§4.3.3, §4.4.1).
// The unmodified form does none of that; the Figure-4 benchmark measures
// the difference.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <string_view>

#include "db/database.hpp"

namespace wtc::db {

/// API result codes. The paper's API reports failures to its clients; the
/// interesting ones here are Locked (another client's transaction) and
/// CatalogCorrupt (metadata damage making the operation impossible).
enum class Status : std::uint8_t {
  Ok = 0,
  NotConnected,    ///< DBinit not called / DBclose already called
  CatalogCorrupt,  ///< in-region catalog failed validation
  NoSuchTable,
  NoSuchRecord,
  NoSuchField,
  RecordNotActive,  ///< read/write of a free record
  NoFreeRecord,     ///< allocation found no free record (resource exhausted)
  Locked,           ///< table locked by another client
  BadGroup,         ///< DBmove to an out-of-range logical group
};

[[nodiscard]] std::string_view to_string(Status status) noexcept;

/// Operation tags carried in audit notification messages.
enum class ApiOp : std::uint8_t {
  Init = 0,
  Close,
  ReadRec,
  ReadFld,
  WriteRec,
  WriteFld,
  Move,
  Alloc,
  Free,
  TxnBegin,
  TxnEnd,
};

/// One notification from the instrumented API to the audit process.
/// Update events carry a snapshot of the written record's data so the
/// event-triggered audit can inspect the values without racing the client
/// — the bulk of the modified API's overhead on write-class operations
/// (the paper's Figure 4: DBwrite_rec pays the most).
struct ApiEvent {
  ApiOp op = ApiOp::Init;
  sim::ProcessId client = sim::kNoProcess;
  TableId table = kNoTable;
  RecordIndex record = 0;
  sim::Time time = 0;
  bool is_update = false;  ///< write-class op (triggers event audit)
  /// Outcome of the call — replay consumers skip failed (no-op) updates.
  Status status = Status::Ok;
  /// Client thread that issued the call (set_thread_id attribution) — the
  /// per-thread op log keys on this for healing replay.
  std::uint32_t thread = 0;
  /// Alloc/Move: the target logical group of the operation.
  std::uint32_t group = 0;
  /// WriteFld: the written field id.
  FieldId field = 0;
  std::array<std::int32_t, 8> payload{};
  std::uint8_t payload_len = 0;
};

/// Where instrumented-API notifications go. In the integrated system this
/// is an adapter that posts to the audit process's IPC queue; benchmarks
/// may plug a counting sink.
class NotificationSink {
 public:
  virtual ~NotificationSink() = default;
  virtual void on_api_event(const ApiEvent& event) = 0;
};

/// How the mutating operations (alloc/free/move) maintain the group-chain
/// invariant. Splice is the production path: O(log N) via the shadow
/// index, rewriting only the affected link words. FullRelink is the
/// original O(N_records) scan-and-rebuild, kept as the reference arm the
/// hot-path ablation (A12) benchmarks and byte-compares against.
enum class LinkMode : std::uint8_t { Splice, FullRelink };

/// Per-connection API handle (one per client process).
class DbApi {
 public:
  /// `clock` supplies virtual time for lock stamps and metadata.
  DbApi(Database& db, std::function<sim::Time()> clock);

  void set_link_mode(LinkMode mode) noexcept { link_mode_ = mode; }
  [[nodiscard]] LinkMode link_mode() const noexcept { return link_mode_; }

  /// Enables the audit-instrumented ("modified") API form.
  void set_audit_hooks(NotificationSink* sink) noexcept { sink_ = sink; }
  [[nodiscard]] bool instrumented() const noexcept { return sink_ != nullptr; }

  // --- Table 1 primitives ---
  /// DBinit: opens the client connection.
  Status init(sim::ProcessId pid);
  /// DBclose: closes the connection and releases any held locks.
  Status close();
  /// DBread_rec: reads all data fields of an active record.
  Status read_rec(TableId t, RecordIndex r, std::span<std::int32_t> out);
  /// DBread_fld: reads one field of an active record.
  Status read_fld(TableId t, RecordIndex r, FieldId f, std::int32_t& out);
  /// DBwrite_rec: writes all data fields of an active record.
  Status write_rec(TableId t, RecordIndex r, std::span<const std::int32_t> values);
  /// DBwrite_fld: writes one field of an active record.
  Status write_fld(TableId t, RecordIndex r, FieldId f, std::int32_t value);
  /// DBmove: moves a record to another logical group (§3.1.2, Table 1).
  Status move_rec(TableId t, RecordIndex r, std::uint32_t target_group);

  // --- allocation helpers the call-processing client uses (the paper's
  // Table 1 is explicitly "examples of" the full API) ---
  /// Allocates a free record into `group`, initializing fields to their
  /// catalog defaults. Returns its index in `out`.
  Status alloc_rec(TableId t, std::uint32_t group, RecordIndex& out);
  /// Frees an active record back to the free list (group 0).
  Status free_rec(TableId t, RecordIndex r);

  // --- transactions (lock scope spanning several primitives) ---
  /// Acquires the table lock; a client that dies before txn_end leaves the
  /// lock held — the progress-indicator element recovers that (§4.2).
  Status txn_begin(TableId t);
  Status txn_end(TableId t);

  [[nodiscard]] sim::ProcessId pid() const noexcept { return pid_; }
  [[nodiscard]] bool connected() const noexcept { return connected_; }

  /// The Database this handle is bound to. A DbApi always talks to exactly
  /// one region; in a sharded deployment the routing layer
  /// (ShardedDbApi, shard_router.hpp) holds one handle per shard and
  /// resolves subscriber keys to the right one — this accessor is what
  /// lets that layer reach shard-local state (locks, index, observer)
  /// without re-plumbing the constructor arguments.
  [[nodiscard]] Database& database() noexcept { return db_; }
  [[nodiscard]] const Database& database() const noexcept { return db_; }

  /// Client threads identify themselves before operating so the redundant
  /// metadata can attribute writes to a specific thread (the semantic
  /// audit's preemptive-termination recovery targets it, §4.3.3).
  void set_thread_id(std::uint32_t thread_id) noexcept { thread_id_ = thread_id; }
  [[nodiscard]] std::uint32_t thread_id() const noexcept { return thread_id_; }

 private:
  /// Validates connection + catalog + indices; fills the trusted offsets.
  Status resolve(TableId t, RecordIndex r, TableDescriptor& desc,
                 std::size_t& record_offset) const;
  /// Lock acquisition for a single op: owner passes, free table passes
  /// (auto-scope), foreign owner fails.
  Status check_lock(TableId t, bool& auto_locked);
  void notify(ApiOp op, TableId t, RecordIndex r, bool is_update,
              std::uint32_t group = 0, Status status = Status::Ok);
  /// Update notification with a snapshot of the record's current data.
  void notify_update(ApiOp op, TableId t, RecordIndex r, std::size_t record_at,
                     std::uint32_t num_fields, FieldId field = 0,
                     std::uint32_t group = 0, Status status = Status::Ok);
  void touch_meta(TableId t, RecordIndex r, bool is_write);
  /// Rebuilds the `next` links of every record of table `t` so each chain
  /// lists its group's records in index order (the structural invariant
  /// the audit checks). FullRelink mode only.
  void relink_groups(TableId t);
  /// Restores the chain invariant after this call changed record `r`'s
  /// group word from `old_group`: an O(log N) index splice in Splice mode
  /// (cross-checked and healed first when the database's paranoid mode is
  /// on), the full O(N) rebuild in FullRelink mode. `old_next` is r's link
  /// word as it was before the change.
  void splice_or_relink(TableId t, RecordIndex r, std::uint32_t old_group,
                        std::uint32_t old_next);

  Database& db_;
  std::function<sim::Time()> clock_;
  NotificationSink* sink_ = nullptr;
  sim::ProcessId pid_ = sim::kNoProcess;
  std::uint32_t thread_id_ = 0;
  bool connected_ = false;
  LinkMode link_mode_ = LinkMode::Splice;
};

/// Modelled virtual-time cost of one API call, microseconds (used by the
/// simulated clients to charge the Cpu). Instrumented calls cost more; the
/// ratios follow the shape of the paper's Figure 4.
[[nodiscard]] sim::Duration api_cost(ApiOp op, bool instrumented) noexcept;

}  // namespace wtc::db
