#include "db/index.hpp"

namespace wtc::db {

void TableIndex::reset(RecordIndex num_records) {
  for (auto& members : groups_) {
    members.clear();
  }
  free_.clear();
  group_of_.assign(num_records, kNoGroup);
  is_free_.assign(num_records, 0);
}

void TableIndex::sync(RecordIndex r, std::uint32_t status, std::uint32_t group) {
  const std::uint8_t new_group =
      group < kMaxGroups ? static_cast<std::uint8_t>(group) : kNoGroup;
  if (group_of_[r] != new_group) {
    if (group_of_[r] != kNoGroup) {
      groups_[group_of_[r]].erase(r);
    }
    if (new_group != kNoGroup) {
      groups_[new_group].insert(r);
    }
    group_of_[r] = new_group;
  }
  const bool now_free = status == kStatusFree;
  if (static_cast<bool>(is_free_[r]) != now_free) {
    if (now_free) {
      free_.insert(r);
    } else {
      free_.erase(r);
    }
    is_free_[r] = now_free ? 1 : 0;
  }
}

std::optional<RecordIndex> TableIndex::first_free() const noexcept {
  if (free_.empty()) {
    return std::nullopt;
  }
  return *free_.begin();
}

std::optional<RecordIndex> TableIndex::pred(std::uint32_t g,
                                            RecordIndex r) const noexcept {
  if (g >= kMaxGroups) {
    return std::nullopt;
  }
  const auto& members = groups_[g];
  auto it = members.lower_bound(r);
  if (it == members.begin()) {
    return std::nullopt;
  }
  return *std::prev(it);
}

std::optional<RecordIndex> TableIndex::succ(std::uint32_t g,
                                            RecordIndex r) const noexcept {
  if (g >= kMaxGroups) {
    return std::nullopt;
  }
  const auto& members = groups_[g];
  const auto it = members.upper_bound(r);
  if (it == members.end()) {
    return std::nullopt;
  }
  return *it;
}

}  // namespace wtc::db
