#include "db/disk.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/crc32.hpp"

namespace wtc::db {
namespace {

constexpr std::uint32_t kImageMagic = 0xD15C1A6Eu;
constexpr std::uint32_t kImageVersion = 1;
constexpr std::size_t kImageHeaderBytes = 16;

void put_u32(std::vector<std::byte>& out, std::uint32_t value) {
  const auto* bytes = reinterpret_cast<const std::byte*>(&value);
  out.insert(out.end(), bytes, bytes + 4);
}

std::uint32_t get_u32(const std::vector<std::byte>& in, std::size_t offset) {
  std::uint32_t value = 0;
  std::memcpy(&value, in.data() + offset, 4);
  return value;
}

DiskResult fail(std::string message) {
  return DiskResult{false, std::move(message)};
}

DiskResult read_and_check(const std::filesystem::path& path,
                          std::vector<std::byte>& payload) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return fail("cannot open " + path.string());
  }
  const std::streamsize file_size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> raw(static_cast<std::size_t>(std::max<std::streamsize>(
      file_size, 0)));
  if (!raw.empty() &&
      !in.read(reinterpret_cast<char*>(raw.data()), file_size)) {
    return fail("cannot read " + path.string());
  }
  if (raw.size() < kImageHeaderBytes) {
    return fail("image truncated: " + path.string());
  }
  if (get_u32(raw, 0) != kImageMagic) {
    return fail("not a database image: " + path.string());
  }
  if (get_u32(raw, 4) != kImageVersion) {
    return fail("unsupported image version");
  }
  const std::uint32_t size = get_u32(raw, 8);
  const std::uint32_t crc = get_u32(raw, 12);
  if (raw.size() != kImageHeaderBytes + size) {
    return fail("image size mismatch");
  }
  payload.assign(raw.begin() + kImageHeaderBytes, raw.end());
  if (common::crc32(payload) != crc) {
    return fail("image checksum mismatch (permanent storage corrupted)");
  }
  return DiskResult{true, {}};
}

}  // namespace

DiskResult save_image(const Database& db, const std::filesystem::path& path) {
  const auto pristine = db.pristine();
  std::vector<std::byte> out;
  out.reserve(kImageHeaderBytes + pristine.size());
  put_u32(out, kImageMagic);
  put_u32(out, kImageVersion);
  put_u32(out, static_cast<std::uint32_t>(pristine.size()));
  put_u32(out, common::crc32(pristine));
  out.insert(out.end(), pristine.begin(), pristine.end());

  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return fail("cannot write " + path.string());
  }
  file.write(reinterpret_cast<const char*>(out.data()),
             static_cast<std::streamsize>(out.size()));
  if (!file.good()) {
    return fail("short write to " + path.string());
  }
  return DiskResult{true, {}};
}

DiskResult load_image(Database& db, const std::filesystem::path& path) {
  std::vector<std::byte> payload;
  if (auto checked = read_and_check(path, payload); !checked) {
    return checked;
  }
  if (!db.install_image(payload)) {
    return fail("image does not match this database's schema/layout");
  }
  return DiskResult{true, {}};
}

DiskResult verify_image(const std::filesystem::path& path) {
  std::vector<std::byte> payload;
  return read_and_check(path, payload);
}

}  // namespace wtc::db
