#include "db/disk.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/crc32.hpp"
#include "db/layout.hpp"
#include "obs/metrics.hpp"

namespace wtc::db {
namespace {

constexpr std::uint32_t kImageMagic = 0xD15C1A6Eu;
constexpr std::uint32_t kImageVersion = 1;
constexpr std::size_t kImageHeaderBytes = 16;

void put_u32(std::vector<std::byte>& out, std::uint32_t value) {
  const auto* bytes = reinterpret_cast<const std::byte*>(&value);
  out.insert(out.end(), bytes, bytes + 4);
}

std::uint32_t get_u32(std::span<const std::byte> in, std::size_t offset) {
  std::uint32_t value = 0;
  std::memcpy(&value, in.data() + offset, 4);
  return value;
}

DiskResult fail(DiskError code, std::string message) {
  return DiskResult{false, code, std::move(message)};
}

DiskResult ok() { return DiskResult{true, DiskError::None, {}}; }

/// Envelope checks: magic, version, declared length, crc32. On success
/// `payload` holds the raw region bytes.
DiskResult parse_envelope(std::span<const std::byte> raw,
                          std::vector<std::byte>& payload) {
  if (raw.size() < kImageHeaderBytes) {
    return fail(DiskError::Truncated, "image truncated");
  }
  if (get_u32(raw, 0) != kImageMagic) {
    return fail(DiskError::BadMagic, "not a database image");
  }
  if (get_u32(raw, 4) != kImageVersion) {
    return fail(DiskError::BadVersion, "unsupported image version");
  }
  const std::uint32_t size = get_u32(raw, 8);
  const std::uint32_t crc = get_u32(raw, 12);
  if (raw.size() != kImageHeaderBytes + size) {
    return fail(DiskError::LengthMismatch, "image size mismatch");
  }
  payload.assign(raw.begin() + kImageHeaderBytes, raw.end());
  if (common::crc32(payload) != crc) {
    return fail(DiskError::ChecksumMismatch,
                "image checksum mismatch (permanent storage corrupted)");
  }
  return ok();
}

/// Structural validation of a size-checked payload against the target
/// database's trusted schema/layout: the catalog bytes must be exactly the
/// canonical serialization, and every record header must satisfy the
/// invariants the structural audit enforces (canonical id tag, known
/// status magic, in-range group, the dynamic free/active group rule, and
/// next links listing each group's records in index order). An image that
/// fails any of these would become an unrepairable recovery source: the
/// audit reloads from the installed pristine copy, so corrupt pristine
/// structure is re-installed on every repair and the sweep never
/// converges.
DiskResult validate_structure(const Database& db,
                              std::span<const std::byte> payload) {
  const Layout& layout = db.layout();

  std::vector<std::byte> canonical(layout.region_size());
  format_region(canonical, db.schema(), layout);
  if (!std::equal(payload.begin(),
                  payload.begin() +
                      static_cast<std::ptrdiff_t>(layout.catalog_size()),
                  canonical.begin())) {
    return fail(DiskError::ImageCorrupt, "image corrupt: catalog bytes do not "
                                         "match this database's schema");
  }

  for (std::size_t t = 0; t < layout.tables().size(); ++t) {
    const auto& tl = layout.tables()[t];
    const bool dynamic = db.schema().tables[t].dynamic;
    // Walk records high-to-low so next_in_group[g] is the index of the
    // nearest same-group record after the current one.
    std::array<std::uint32_t, kMaxGroups> next_in_group;
    next_in_group.fill(kNilLink);
    for (RecordIndex r = tl.num_records; r-- > 0;) {
      const auto header = load_record_header(
          payload, tl.offset + static_cast<std::size_t>(r) * tl.record_size);
      if (header.id_tag != expected_id_tag(static_cast<TableId>(t), r)) {
        return fail(DiskError::ImageCorrupt, "image corrupt: bad record id tag");
      }
      if (header.status != kStatusFree && header.status != kStatusActive) {
        return fail(DiskError::ImageCorrupt, "image corrupt: bad record status");
      }
      if (header.group >= kMaxGroups) {
        return fail(DiskError::ImageCorrupt,
                    "image corrupt: record group out of range");
      }
      if (dynamic && ((header.status == kStatusFree && header.group != 0) ||
                      (header.status == kStatusActive && header.group == 0))) {
        return fail(DiskError::ImageCorrupt,
                    "image corrupt: record status/group disagree");
      }
      if (header.next != next_in_group[header.group]) {
        return fail(DiskError::ImageCorrupt,
                    "image corrupt: group chain link out of order");
      }
      next_in_group[header.group] = r;
    }
  }
  return ok();
}

DiskResult load_checked(Database& db, std::span<const std::byte> file_bytes) {
  std::vector<std::byte> payload;
  if (auto checked = parse_envelope(file_bytes, payload); !checked) {
    return checked;
  }
  // Bounds-check against the catalog-described region size BEFORE any
  // copy: a truncated or oversized payload must never partially install.
  if (payload.size() != db.layout().region_size()) {
    return fail(DiskError::RegionSizeMismatch,
                "image does not match this database's schema/layout "
                "(region size mismatch)");
  }
  if (auto valid = validate_structure(db, payload); !valid) {
    return valid;
  }
  if (!db.install_image(payload)) {
    return fail(DiskError::ImageCorrupt,
                "image does not match this database's schema/layout");
  }
  return ok();
}

}  // namespace

std::vector<std::byte> make_image_bytes(std::span<const std::byte> payload) {
  std::vector<std::byte> out;
  out.reserve(kImageHeaderBytes + payload.size());
  put_u32(out, kImageMagic);
  put_u32(out, kImageVersion);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, common::crc32(payload));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

DiskResult save_image(const Database& db, const std::filesystem::path& path) {
  const std::vector<std::byte> out = make_image_bytes(db.pristine());

  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return fail(DiskError::OpenFailed, "cannot write " + path.string());
  }
  file.write(reinterpret_cast<const char*>(out.data()),
             static_cast<std::streamsize>(out.size()));
  if (!file.good()) {
    return fail(DiskError::OpenFailed, "short write to " + path.string());
  }
  return ok();
}

DiskResult load_image(Database& db, const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    obs::count(obs::Counter::db_images_rejected);
    return fail(DiskError::OpenFailed, "cannot open " + path.string());
  }
  const std::streamsize file_size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> raw(
      static_cast<std::size_t>(std::max<std::streamsize>(file_size, 0)));
  if (!raw.empty() && !in.read(reinterpret_cast<char*>(raw.data()), file_size)) {
    obs::count(obs::Counter::db_images_rejected);
    return fail(DiskError::OpenFailed, "cannot read " + path.string());
  }
  return load_image_bytes(db, raw);
}

DiskResult load_image_bytes(Database& db,
                            std::span<const std::byte> file_bytes) {
  auto result = load_checked(db, file_bytes);
  if (!result) {
    obs::count(obs::Counter::db_images_rejected);
  }
  return result;
}

DiskResult verify_image(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return fail(DiskError::OpenFailed, "cannot open " + path.string());
  }
  const std::streamsize file_size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> raw(
      static_cast<std::size_t>(std::max<std::streamsize>(file_size, 0)));
  if (!raw.empty() && !in.read(reinterpret_cast<char*>(raw.data()), file_size)) {
    return fail(DiskError::OpenFailed, "cannot read " + path.string());
  }
  std::vector<std::byte> payload;
  return parse_envelope(raw, payload);
}

}  // namespace wtc::db
