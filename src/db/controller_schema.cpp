#include "db/controller_schema.hpp"

#include <array>

namespace wtc::db {
namespace {

/// Small deterministic mixer for static-table contents.
constexpr std::int32_t mix(std::uint32_t x) noexcept {
  x ^= x >> 16;
  x *= 0x7FEB352Du;
  x ^= x >> 15;
  x *= 0x846CA68Bu;
  x ^= x >> 16;
  return static_cast<std::int32_t>(x & 0x7FFFFFFFu);
}

}  // namespace

std::int32_t subscriber_auth_key(RecordIndex r) noexcept {
  return mix(0xA07Du ^ (r * 2654435761u));
}

Schema make_controller_schema(const ControllerSchemaParams& params) {
  SchemaBuilder b;
  // Static configuration: the paper's "number of CPUs in the system" kind
  // of data, covered by the golden checksum.
  b.table("SystemConfig", params.config_records, /*dynamic=*/false)
      .static_field("num_cpus", 2)
      .static_field("max_calls", 1000)
      .static_field("cell_id", 0)
      .static_field("freq_base", 0)
      .static_field("sw_version", 0x010203);

  // Subscriber authentication data — static content the auth phase reads.
  b.table("Subscriber", params.subscriber_records, /*dynamic=*/false)
      .static_field("subscriber_id", 0)
      .static_field("auth_key", 0)
      .static_field("privileges", 3);

  // The three tables of the §4.3.3 semantic loop.
  b.table("Process", params.process_records, /*dynamic=*/true)
      .primary_key("process_id")
      .foreign_key("connection_id", "Connection")
      .ranged("status", 0, 3, 0)
      .ranged("priority", 0, 7, 4)
      .unruled("task_token")
      .ranged("location_area", 0, 255, 0)
      .ranged("handoff_count", 0, 15, 0);

  b.table("Connection", params.connection_records, /*dynamic=*/true)
      .primary_key("connection_id")
      .foreign_key("channel_id", "Resource")
      .unruled("caller_id")
      .unruled("callee_id")
      .ranged("state", 0, 4, 0)
      .ranged("feature_mask", 0, 255, 0)
      .ranged("codec", 0, 7, 1)
      .unruled("billing_units");

  b.table("Resource", params.resource_records, /*dynamic=*/true)
      .primary_key("channel_id")
      .foreign_key("process_id", "Process")
      .ranged("status", 0, 2, 0)
      .ranged("capability", 0, 7, 7)
      .ranged("power_level", 0, 100, 50)
      .unruled("link_quality")
      .ranged("timeslot", 0, 7, 0)
      .unruled("interference");

  return std::move(b).build();
}

ControllerIds resolve_controller_ids(const Schema& schema) {
  ControllerIds ids;
  ids.system_config = schema.table_id("SystemConfig");
  ids.subscriber = schema.table_id("Subscriber");
  ids.process = schema.table_id("Process");
  ids.connection = schema.table_id("Connection");
  ids.resource = schema.table_id("Resource");

  ids.p_process_id = schema.field_id(ids.process, "process_id");
  ids.p_connection_id = schema.field_id(ids.process, "connection_id");
  ids.p_status = schema.field_id(ids.process, "status");
  ids.p_priority = schema.field_id(ids.process, "priority");
  ids.p_task_token = schema.field_id(ids.process, "task_token");
  ids.p_location_area = schema.field_id(ids.process, "location_area");
  ids.p_handoff_count = schema.field_id(ids.process, "handoff_count");

  ids.c_connection_id = schema.field_id(ids.connection, "connection_id");
  ids.c_channel_id = schema.field_id(ids.connection, "channel_id");
  ids.c_caller_id = schema.field_id(ids.connection, "caller_id");
  ids.c_callee_id = schema.field_id(ids.connection, "callee_id");
  ids.c_state = schema.field_id(ids.connection, "state");
  ids.c_feature_mask = schema.field_id(ids.connection, "feature_mask");
  ids.c_codec = schema.field_id(ids.connection, "codec");
  ids.c_billing_units = schema.field_id(ids.connection, "billing_units");

  ids.r_channel_id = schema.field_id(ids.resource, "channel_id");
  ids.r_process_id = schema.field_id(ids.resource, "process_id");
  ids.r_status = schema.field_id(ids.resource, "status");
  ids.r_capability = schema.field_id(ids.resource, "capability");
  ids.r_power_level = schema.field_id(ids.resource, "power_level");
  ids.r_link_quality = schema.field_id(ids.resource, "link_quality");
  ids.r_timeslot = schema.field_id(ids.resource, "timeslot");
  ids.r_interference = schema.field_id(ids.resource, "interference");

  ids.s_subscriber_id = schema.field_id(ids.subscriber, "subscriber_id");
  ids.s_auth_key = schema.field_id(ids.subscriber, "auth_key");
  ids.s_privileges = schema.field_id(ids.subscriber, "privileges");
  return ids;
}

void populate_controller_static_data(std::span<std::byte> region,
                                     const Schema& schema, const Layout& layout) {
  const TableId config = schema.table_id("SystemConfig");
  const TableId subscriber = schema.table_id("Subscriber");

  const auto& config_spec = schema.tables[config];
  for (RecordIndex r = 0; r < config_spec.num_records; ++r) {
    const std::size_t at = layout.record_offset(config, r) + kRecordHeaderSize;
    store_i32(region, at + 8, mix(0xCE11u ^ r));        // cell_id
    store_i32(region, at + 12, 869'000 + 200 * static_cast<std::int32_t>(r));  // freq_base
  }

  const auto& sub_spec = schema.tables[subscriber];
  for (RecordIndex r = 0; r < sub_spec.num_records; ++r) {
    const std::size_t at = layout.record_offset(subscriber, r) + kRecordHeaderSize;
    store_i32(region, at + 0, key_of(r));                // subscriber_id
    store_i32(region, at + 4, subscriber_auth_key(r));   // auth_key
  }
}

std::unique_ptr<Database> make_controller_database(
    const ControllerSchemaParams& params) {
  return std::make_unique<Database>(make_controller_schema(params),
                                    populate_controller_static_data);
}

Schema make_bench_schema(const BenchSchemaParams& params) {
  // Relative size ratio from Table 5: 7 : 18 : 1 : 125 : 8 : 4.
  const std::array<RecordIndex, 6> ratio = {7, 18, 1, 125, 8, 4};
  SchemaBuilder b;
  for (std::size_t t = 0; t < ratio.size(); ++t) {
    b.table("Bench" + std::to_string(t), ratio[t] * params.scale, /*dynamic=*/true)
        .ranged("value_a", 0, 1000, 0)
        .ranged("value_b", -100, 100, 0)
        .ranged("flags", 0, 15, 0)
        .unruled("payload");
  }
  return std::move(b).build();
}

void activate_all_records(Database& db) {
  auto region = db.region();
  const auto& layout = db.layout();
  for (std::size_t t = 0; t < db.schema().tables.size(); ++t) {
    const auto& tl = layout.tables()[t];
    for (RecordIndex r = 0; r < tl.num_records; ++r) {
      const std::size_t at = layout.record_offset(static_cast<TableId>(t), r);
      auto header = load_record_header(region, at);
      header.status = kStatusActive;
      header.group = kGroupActiveCalls;
      store_record_header(region, at, header);
    }
  }
  if (auto* obs = db.observer()) {
    obs->on_legitimate_write(layout.data_start(),
                             layout.region_size() - layout.data_start());
  }
}

}  // namespace wtc::db
