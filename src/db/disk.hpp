// File-backed disk image of the database region.
//
// The controller loads its entire database from disk into memory at
// startup and keeps it there (§3.1.2); recovery reloads corrupted portions
// "from permanent storage" (§4.3.1). In the simulation the pristine
// snapshot plays the disk; this module provides the actual permanent
// storage: a checksummed image file the snapshot can be persisted to and
// restored from across process lifetimes.
//
// Image format: {magic, version, size, crc32} header + raw region bytes.
// Loads verify size and checksum, so a corrupted image is rejected rather
// than silently booting a damaged controller.
#pragma once

#include <filesystem>
#include <string>

#include "db/database.hpp"

namespace wtc::db {

/// Result of a disk-image operation; `ok()` or a human-readable error.
struct DiskResult {
  bool success = false;
  std::string error;

  [[nodiscard]] explicit operator bool() const noexcept { return success; }
};

/// Writes the database's PRISTINE image to `path` (the startup state is
/// what "permanent storage" holds; live dynamic state is never persisted).
DiskResult save_image(const Database& db, const std::filesystem::path& path);

/// Verifies and loads the image at `path` into the live region AND makes
/// it the recovery source — the boot-from-disk path. Fails (and leaves the
/// database untouched) on size mismatch or checksum failure.
DiskResult load_image(Database& db, const std::filesystem::path& path);

/// Verifies an image file without loading it (integrity check of the
/// permanent storage itself).
DiskResult verify_image(const std::filesystem::path& path);

}  // namespace wtc::db
