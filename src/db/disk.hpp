// File-backed disk image of the database region.
//
// The controller loads its entire database from disk into memory at
// startup and keeps it there (§3.1.2); recovery reloads corrupted portions
// "from permanent storage" (§4.3.1). In the simulation the pristine
// snapshot plays the disk; this module provides the actual permanent
// storage: a checksummed image file the snapshot can be persisted to and
// restored from across process lifetimes.
//
// Image format: {magic, version, size, crc32} header + raw region bytes.
// Loads verify, in order: the file envelope (magic/version/length/crc),
// the payload length against the catalog-described region size of the
// *target* database, and the structural invariants the audit assumes of
// permanent storage (canonical catalog bytes, well-formed record
// headers). Only then is a single byte copied into the live region.
//
// The structural pass matters for recovery convergence: install makes the
// image both the live region AND the recovery source, so a crc-valid image
// with corrupt headers would poison the golden copy — every structural
// reload would faithfully restore the corruption and the audit could
// never reach a clean pass. Rejecting such images at the door keeps the
// audit→repair→re-audit loop terminating (the fuzz_region_image
// invariant).
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>

#include "db/database.hpp"

namespace wtc::db {

/// Distinct rejection causes of a disk-image operation. Callers that only
/// care about success keep using `operator bool`; the fuzz harnesses and
/// tests branch on the code instead of grepping the message.
enum class DiskError : std::uint8_t {
  None = 0,
  OpenFailed,          ///< file missing / unreadable / unwritable
  Truncated,           ///< file shorter than the fixed image header
  BadMagic,            ///< not a database image
  BadVersion,          ///< image format version not understood
  LengthMismatch,      ///< payload length disagrees with the header's size
  ChecksumMismatch,    ///< payload bytes fail the header crc32
  RegionSizeMismatch,  ///< payload length != this database's region size
  ImageCorrupt,        ///< crc-valid but structurally invalid content
};

/// Result of a disk-image operation; `ok()` or a coded, human-readable
/// error.
struct DiskResult {
  bool success = false;
  DiskError code = DiskError::None;
  std::string error;

  [[nodiscard]] explicit operator bool() const noexcept { return success; }
};

/// Serializes arbitrary region bytes into the image file format (header +
/// payload) — the envelope load_image_bytes parses. The single source of
/// truth for the format; save_image delegates here, and the corpus tooling
/// uses it to build images of non-pristine (live) states.
[[nodiscard]] std::vector<std::byte> make_image_bytes(
    std::span<const std::byte> payload);

/// Writes the database's PRISTINE image to `path` (the startup state is
/// what "permanent storage" holds; live dynamic state is never persisted).
DiskResult save_image(const Database& db, const std::filesystem::path& path);

/// Verifies and loads the image at `path` into the live region AND makes
/// it the recovery source — the boot-from-disk path. Fails (and leaves the
/// database untouched) on any envelope, size, or structural error.
DiskResult load_image(Database& db, const std::filesystem::path& path);

/// Memory-backed variant of load_image: `file_bytes` is the full image
/// file content (header + payload). Same validation and same all-or-
/// nothing guarantee; this is the entry point the fuzz harness drives, so
/// every check load_image performs must live on this path.
DiskResult load_image_bytes(Database& db, std::span<const std::byte> file_bytes);

/// Verifies an image file without loading it (integrity check of the
/// permanent storage itself). Envelope checks only — structural checks
/// need a target database's schema.
DiskResult verify_image(const std::filesystem::path& path);

}  // namespace wtc::db
