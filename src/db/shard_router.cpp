#include "db/shard_router.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace wtc::db {

ShardedDb::ShardedDb(std::uint32_t shards, const ShardFactory& factory)
    : router_(shards), mutexes_(shards) {
  if (!ShardRouter::valid_shard_count(shards)) {
    throw std::invalid_argument(
        "ShardedDb: shard count must be a power of two (the router masks, "
        "it does not divide)");
  }
  shards_.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    shards_.push_back(factory(s));
  }
}

ShardedDbApi::ShardedDbApi(ShardedDb& db, std::function<sim::Time()> clock)
    : db_(db), routed_ops_(db.shard_count(), 0) {
  apis_.reserve(db.shard_count());
  for (std::uint32_t s = 0; s < db.shard_count(); ++s) {
    apis_.push_back(std::make_unique<DbApi>(db.shard(s), clock));
  }
}

Status ShardedDbApi::init(sim::ProcessId pid) {
  Status first = Status::Ok;
  for (auto& api : apis_) {
    if (const Status s = api->init(pid); s != Status::Ok && first == Status::Ok) {
      first = s;
    }
  }
  return first;
}

Status ShardedDbApi::close() {
  Status first = Status::Ok;
  for (auto it = apis_.rbegin(); it != apis_.rend(); ++it) {
    if (const Status s = (*it)->close(); s != Status::Ok && first == Status::Ok) {
      first = s;
    }
  }
  return first;
}

namespace {

/// Holds shard `s`'s mutex for the caller's scope when locking is on; an
/// empty (non-owning) lock otherwise.
std::unique_lock<std::mutex> maybe_lock(ShardedDb& db, std::uint32_t s,
                                        bool locking) {
  return locking ? std::unique_lock<std::mutex>(db.shard_mutex(s))
                 : std::unique_lock<std::mutex>();
}

}  // namespace

DbApi& ShardedDbApi::route(std::uint32_t s) {
  ++routed_ops_[s];
  obs::count(obs::Counter::db_shard_routed);
  return *apis_[s];
}

Status ShardedDbApi::alloc_rec(SubscriberKey key, TableId t,
                               std::uint32_t group, RecordIndex& out) {
  const std::uint32_t s = shard_of(key);
  const auto lock = maybe_lock(db_, s, locking_);
  return route(s).alloc_rec(t, group, out);
}

Status ShardedDbApi::free_rec(SubscriberKey key, TableId t, RecordIndex r) {
  const std::uint32_t s = shard_of(key);
  const auto lock = maybe_lock(db_, s, locking_);
  return route(s).free_rec(t, r);
}

Status ShardedDbApi::move_rec(SubscriberKey key, TableId t, RecordIndex r,
                              std::uint32_t target_group) {
  const std::uint32_t s = shard_of(key);
  const auto lock = maybe_lock(db_, s, locking_);
  return route(s).move_rec(t, r, target_group);
}

Status ShardedDbApi::read_rec(SubscriberKey key, TableId t, RecordIndex r,
                              std::span<std::int32_t> out) {
  const std::uint32_t s = shard_of(key);
  const auto lock = maybe_lock(db_, s, locking_);
  return route(s).read_rec(t, r, out);
}

Status ShardedDbApi::read_fld(SubscriberKey key, TableId t, RecordIndex r,
                              FieldId f, std::int32_t& out) {
  const std::uint32_t s = shard_of(key);
  const auto lock = maybe_lock(db_, s, locking_);
  return route(s).read_fld(t, r, f, out);
}

Status ShardedDbApi::write_rec(SubscriberKey key, TableId t, RecordIndex r,
                               std::span<const std::int32_t> values) {
  const std::uint32_t s = shard_of(key);
  const auto lock = maybe_lock(db_, s, locking_);
  return route(s).write_rec(t, r, values);
}

Status ShardedDbApi::write_fld(SubscriberKey key, TableId t, RecordIndex r,
                               FieldId f, std::int32_t value) {
  const std::uint32_t s = shard_of(key);
  const auto lock = maybe_lock(db_, s, locking_);
  return route(s).write_fld(t, r, f, value);
}

Status ShardedDbApi::transfer_rec(SubscriberKey from_key, SubscriberKey to_key,
                                  TableId t, RecordIndex r, std::uint32_t group,
                                  RecordIndex& out) {
  const std::uint32_t s_from = shard_of(from_key);
  const std::uint32_t s_to = shard_of(to_key);
  const std::uint32_t lo = std::min(s_from, s_to);
  const std::uint32_t hi = std::max(s_from, s_to);

  // Deterministic lock order: shard mutexes ascending (unique_lock members
  // release in reverse declaration order), then table locks ascending.
  // Every multi-shard locker in the process follows the same ascending
  // rule, so two opposing transfers — (a->b) racing (b->a) — serialize
  // on shard min(a,b) instead of deadlocking.
  const auto lock_lo = maybe_lock(db_, lo, locking_);
  const auto lock_hi =
      hi != lo ? maybe_lock(db_, hi, locking_) : std::unique_lock<std::mutex>();

  if (const Status s = apis_[lo]->txn_begin(t); s != Status::Ok) {
    return s;
  }
  if (hi != lo) {
    if (const Status s = apis_[hi]->txn_begin(t); s != Status::Ok) {
      apis_[lo]->txn_end(t);
      return s;
    }
  }
  const auto unlock_tables = [&] {
    if (hi != lo) {
      apis_[hi]->txn_end(t);
    }
    apis_[lo]->txn_end(t);
  };

  // Read the source record's fields. Any failure here (wrong index, freed
  // record) aborts with nothing written on either shard.
  const auto num_fields = db_.shard(s_from).layout().table(t).num_fields;
  std::vector<std::int32_t> fields(num_fields, 0);
  DbApi& src = route(s_from);
  DbApi& dst = s_to == s_from ? src : route(s_to);
  if (const Status s = src.read_rec(t, r, fields); s != Status::Ok) {
    unlock_tables();
    return s;
  }

  // Allocate on the target shard BEFORE freeing the source: a full target
  // (NoFreeRecord) aborts the transfer with the source record untouched,
  // so there is no rollback path to get wrong.
  RecordIndex dst_r = 0;
  if (const Status s = dst.alloc_rec(t, group, dst_r); s != Status::Ok) {
    unlock_tables();
    return s;
  }
  if (const Status s = dst.write_rec(t, dst_r, fields); s != Status::Ok) {
    unlock_tables();
    return s;
  }
  if (const Status s = src.free_rec(t, r); s != Status::Ok) {
    unlock_tables();
    return s;
  }
  out = dst_r;
  if (s_from != s_to) {
    cross_shard_transfers_.fetch_add(1, std::memory_order_relaxed);
    obs::count(obs::Counter::db_cross_shard_links);
  }
  unlock_tables();
  return Status::Ok;
}

std::uint64_t ShardedDbApi::publish_imbalance() {
  std::uint64_t total = 0;
  std::uint64_t peak = 0;
  for (const std::uint64_t ops : routed_ops_) {
    total += ops;
    peak = std::max(peak, ops);
  }
  if (total == 0) {
    return 0;
  }
  // max / mean in milli: mean = total / N, so the ratio is peak * N / total.
  const std::uint64_t imbalance = peak * 1000 * routed_ops_.size() / total;
  obs::gauge_max(obs::Gauge::db_shard_imbalance, imbalance);
  return imbalance;
}

}  // namespace wtc::db
