// Direct-memory-access operations on the database region.
//
// The audit process accesses the database directly rather than through the
// DB API (Figure 1) — "bypassing the locking and access control mechanisms
// managed by the API". These helpers are that direct path; the API reuses
// the relink routine so both sides maintain the identical structural
// invariant.
#pragma once

#include "db/database.hpp"

namespace wtc::db::direct {

/// Rebuilds the `next` links of every record of table `t` so each group's
/// chain lists its records in index order (the structural invariant the
/// structural audit verifies). Records with out-of-range group values are
/// left unlinked.
void relink_table(Database& db, TableId t);

/// Frees record `r` of table `t` in place: status Free, group 0 (free
/// list), fields reset to catalog defaults, chains relinked. This is the
/// audit's "record is freed as a preemptive measure" recovery (§4.3.1) and
/// the zombie-record recovery of the semantic audit (§4.3.3).
void free_record(Database& db, TableId t, RecordIndex r);

/// Repairs record `r`'s header in place: id_tag recomputed from the
/// offset, invalid status downgraded to Free (dropping the record),
/// invalid group reset to the free list; chains relinked.
void repair_header(Database& db, TableId t, RecordIndex r);

/// Writes `value` into a field directly (range-audit "reset the field to
/// its default value" recovery).
void write_field(Database& db, TableId t, RecordIndex r, FieldId f,
                 std::int32_t value);

/// Reads a field directly (no locks, no API accounting).
[[nodiscard]] std::int32_t read_field(const Database& db, TableId t, RecordIndex r,
                                      FieldId f);

/// Reads a record header directly.
[[nodiscard]] RecordHeader read_header(const Database& db, TableId t, RecordIndex r);

}  // namespace wtc::db::direct
