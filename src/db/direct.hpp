// Direct-memory-access operations on the database region.
//
// The audit process accesses the database directly rather than through the
// DB API (Figure 1) — "bypassing the locking and access control mechanisms
// managed by the API". These helpers are that direct path; the API reuses
// the relink routine so both sides maintain the identical structural
// invariant.
#pragma once

#include "db/database.hpp"

namespace wtc::db::direct {

/// Rebuilds the `next` links of every record of table `t` so each group's
/// chain lists its records in index order (the structural invariant the
/// structural audit verifies). Records with out-of-range group values are
/// left unlinked. O(N_records): the audit's recovery paths use it (and it
/// doubles as the reference implementation the shadow-index cross-check
/// and the splice-equivalence bench compare against); the API hot path
/// uses splice_links instead.
void relink_table(Database& db, TableId t);

/// Splices record `r` into its group chain after the caller changed its
/// group word from `old_group` to the value now stored in the region,
/// rewriting only the affected links: the old chain's predecessor inherits
/// `old_next` (r's link before the change), r links to its successor in
/// the new chain, and the new chain's predecessor links to r. Requires the
/// shadow index to be in sync with the region (the caller's header store
/// resynced r itself via note_write). Provided the chains satisfied the
/// structural invariant beforehand, the result is byte-identical to
/// relink_table — the invariant only depends on group words, a group
/// change at `r` can only alter those three links, and unchanged words are
/// not rewritten (so dirty-tracking stamps and oracle overwrite accounting
/// match too). O(log N_group) via the index instead of O(N_records).
void splice_links(Database& db, TableId t, RecordIndex r,
                  std::uint32_t old_group, std::uint32_t old_next);

/// Frees record `r` of table `t` in place: status Free, group 0 (free
/// list), fields reset to catalog defaults, chains relinked. This is the
/// audit's "record is freed as a preemptive measure" recovery (§4.3.1) and
/// the zombie-record recovery of the semantic audit (§4.3.3).
void free_record(Database& db, TableId t, RecordIndex r);

/// Repairs record `r`'s header in place: id_tag recomputed from the
/// offset, invalid status downgraded to Free (dropping the record),
/// invalid group reset to the free list; chains relinked.
void repair_header(Database& db, TableId t, RecordIndex r);

/// Writes `value` into a field directly (range-audit "reset the field to
/// its default value" recovery).
void write_field(Database& db, TableId t, RecordIndex r, FieldId f,
                 std::int32_t value);

/// Reads a field directly (no locks, no API accounting).
[[nodiscard]] std::int32_t read_field(const Database& db, TableId t, RecordIndex r,
                                      FieldId f);

/// Reads a record header directly.
[[nodiscard]] RecordHeader read_header(const Database& db, TableId t, RecordIndex r);

}  // namespace wtc::db::direct
