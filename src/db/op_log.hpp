// Minimal per-thread DbApi operation log (healing replay feed; seeds
// ROADMAP item 4's transaction journal).
//
// A NotificationSink tee: every *successful update-class* ApiEvent is
// recorded under its issuing thread, then forwarded to the chained sink
// (the audit IPC adapter), so installing the log does not change what the
// audit process sees.
//
// The attestation element advances a per-thread watermark after each clean
// slice; ops at or before the watermark are *compacted* — only the latest
// op per (table, record) is kept (and records whose latest op is a Free
// are dropped entirely). That keeps the log minimal while preserving what
// healing needs: the full set of records the thread may still hold, plus
// the exact op tail since the last attested slice.
#pragma once

#include <cstdint>
#include <vector>

#include "db/api.hpp"

namespace wtc::db {

class ThreadOpLog final : public NotificationSink {
 public:
  explicit ThreadOpLog(NotificationSink* next = nullptr) : next_(next) {}

  void on_api_event(const ApiEvent& event) override;

  /// All retained ops of `thread`, oldest first.
  [[nodiscard]] const std::vector<ApiEvent>& ops(std::uint32_t thread) const;

  /// Compacts ops with `time <= attested_up_to` down to one state-summary
  /// op per (table, record). Called by the attester after a clean slice.
  void advance_watermark(std::uint32_t thread, sim::Time attested_up_to);

  [[nodiscard]] sim::Time watermark(std::uint32_t thread) const noexcept;

  /// Drops the thread's log (after a completed heal: the rebuilt state is
  /// the new baseline).
  void clear_thread(std::uint32_t thread);

  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  [[nodiscard]] std::size_t thread_count() const noexcept { return logs_.size(); }

 private:
  struct PerThread {
    std::vector<ApiEvent> ops;
    sim::Time watermark = 0;
  };

  NotificationSink* next_;
  std::vector<PerThread> logs_;
  std::uint64_t recorded_ = 0;
  /// Compaction scratch, reused across advance_watermark calls so the
  /// attestation hot path allocates only when a log outgrows it.
  std::vector<ApiEvent> scratch_;
};

}  // namespace wtc::db
