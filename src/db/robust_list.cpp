#include "db/robust_list.hpp"

#include <algorithm>
#include <cstring>

namespace wtc::db {
namespace {

constexpr std::uint32_t kMagic = 0x0B057113u;

// Header field offsets.
constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffCount = 4;
constexpr std::size_t kOffHead = 8;
constexpr std::size_t kOffTail = 12;

}  // namespace

RobustList::RobustList(std::span<std::byte> storage, std::uint32_t capacity)
    : storage_(storage), capacity_(capacity) {}

std::uint32_t RobustList::load_u32_at(std::size_t offset) const {
  std::uint32_t v = 0;
  std::memcpy(&v, storage_.data() + offset, sizeof(v));
  return v;
}

void RobustList::store_u32_at(std::size_t offset, std::uint32_t value) {
  std::memcpy(storage_.data() + offset, &value, sizeof(value));
}

RobustList::Node RobustList::load_node(std::uint32_t slot) const {
  const std::size_t at = kHeaderBytes + static_cast<std::size_t>(slot) * kNodeBytes;
  return Node{load_u32_at(at), load_u32_at(at + 4), load_u32_at(at + 8)};
}

void RobustList::store_node(std::uint32_t slot, const Node& node) {
  const std::size_t at = kHeaderBytes + static_cast<std::size_t>(slot) * kNodeBytes;
  store_u32_at(at, node.tag);
  store_u32_at(at + 4, node.prev);
  store_u32_at(at + 8, node.next);
}

void RobustList::format() {
  store_u32_at(kOffMagic, kMagic);
  store_u32_at(kOffCount, 0);
  store_u32_at(kOffHead, kNil);
  store_u32_at(kOffTail, kNil);
  for (std::uint32_t slot = 0; slot < capacity_; ++slot) {
    store_node(slot, Node{expected_tag(slot), kNil, kNil});
  }
}

std::uint32_t RobustList::count() const noexcept { return load_u32_at(kOffCount); }
std::uint32_t RobustList::head() const noexcept { return load_u32_at(kOffHead); }
std::uint32_t RobustList::tail() const noexcept { return load_u32_at(kOffTail); }

bool RobustList::contains(std::uint32_t slot) const {
  if (slot >= capacity_) {
    return false;
  }
  const Node node = load_node(slot);
  return node.prev != kNil || node.next != kNil || head() == slot;
}

bool RobustList::push_back(std::uint32_t slot) {
  if (slot >= capacity_ || contains(slot)) {
    return false;
  }
  const std::uint32_t old_tail = tail();
  store_node(slot, Node{expected_tag(slot), old_tail, kNil});
  if (old_tail == kNil) {
    store_u32_at(kOffHead, slot);
  } else {
    Node t = load_node(old_tail);
    t.next = slot;
    store_node(old_tail, t);
  }
  store_u32_at(kOffTail, slot);
  store_u32_at(kOffCount, count() + 1);
  return true;
}

bool RobustList::remove(std::uint32_t slot) {
  if (slot >= capacity_ || !contains(slot)) {
    return false;
  }
  const Node node = load_node(slot);
  if (node.prev != kNil) {
    Node p = load_node(node.prev);
    p.next = node.next;
    store_node(node.prev, p);
  } else {
    store_u32_at(kOffHead, node.next);
  }
  if (node.next != kNil) {
    Node n = load_node(node.next);
    n.prev = node.prev;
    store_node(node.next, n);
  } else {
    store_u32_at(kOffTail, node.prev);
  }
  store_node(slot, Node{expected_tag(slot), kNil, kNil});
  store_u32_at(kOffCount, count() - 1);
  return true;
}

std::vector<std::uint32_t> RobustList::forward_chain() const {
  // Flat slot bitmap for revisit detection: the traversals run on every
  // robust-structure audit, and a capacity-sized byte vector beats a hash
  // set's per-node allocation and hashing.
  std::vector<std::uint32_t> chain;
  std::vector<std::uint8_t> seen(capacity_, 0);
  std::uint32_t cursor = head();
  while (cursor != kNil && cursor < capacity_ && seen[cursor] == 0 &&
         chain.size() <= capacity_) {
    chain.push_back(cursor);
    seen[cursor] = 1;
    cursor = load_node(cursor).next;
  }
  return chain;
}

std::vector<std::uint32_t> RobustList::backward_chain() const {
  std::vector<std::uint32_t> chain;
  std::vector<std::uint8_t> seen(capacity_, 0);
  std::uint32_t cursor = tail();
  while (cursor != kNil && cursor < capacity_ && seen[cursor] == 0 &&
         chain.size() <= capacity_) {
    chain.push_back(cursor);
    seen[cursor] = 1;
    cursor = load_node(cursor).prev;
  }
  return chain;
}

std::optional<std::vector<std::uint32_t>> RobustList::reconstruct_sequence() const {
  // Walk both directions. A walk is "proper" if it terminated by reaching
  // kNil (not by a revisit, an out-of-range slot, or the length bound).
  const auto walk = [&](std::uint32_t start, bool forward) {
    std::pair<std::vector<std::uint32_t>, bool> result;
    auto& [chain, proper] = result;
    std::vector<std::uint8_t> seen(capacity_, 0);
    std::uint32_t cursor = start;
    while (true) {
      if (cursor == kNil) {
        proper = true;
        break;
      }
      if (cursor >= capacity_ || seen[cursor] != 0 ||
          chain.size() > capacity_) {
        proper = false;
        break;
      }
      chain.push_back(cursor);
      seen[cursor] = 1;
      const Node node = load_node(cursor);
      cursor = forward ? node.next : node.prev;
    }
    return result;
  };

  auto [fwd, fwd_proper] = walk(head(), /*forward=*/true);
  auto [bwd, bwd_proper] = walk(tail(), /*forward=*/false);
  std::vector<std::uint32_t> bwd_rev(bwd.rbegin(), bwd.rend());
  const std::uint32_t declared = count();

  if (fwd_proper && bwd_proper && fwd == bwd_rev) {
    return fwd;  // chains agree; count/tags are fixed by rewrite if needed
  }

  // Edge-agreement score: how many of a chain's links are confirmed by the
  // opposite-direction pointer (the corrupted direction scores lower).
  const auto score = [&](const std::vector<std::uint32_t>& sequence) {
    std::uint32_t agreements = 0;
    for (std::size_t i = 0; i + 1 < sequence.size(); ++i) {
      const Node a = load_node(sequence[i]);
      const Node b = load_node(sequence[i + 1]);
      if (a.next == sequence[i + 1] && b.prev == sequence[i]) {
        ++agreements;
      }
    }
    return agreements;
  };

  const bool fwd_candidate = fwd_proper && fwd.size() == declared;
  const bool bwd_candidate = bwd_proper && bwd_rev.size() == declared;
  if (fwd_candidate && bwd_candidate) {
    return score(fwd) >= score(bwd_rev) ? fwd : bwd_rev;
  }
  if (fwd_candidate) {
    return fwd;
  }
  if (bwd_candidate) {
    return bwd_rev;
  }

  // Splice: a single interior pointer corruption leaves an intact forward
  // prefix and an intact backward suffix that partition the membership.
  if (!fwd.empty() || !bwd.empty()) {
    std::vector<std::uint8_t> in_fwd(capacity_, 0);
    for (const std::uint32_t slot : fwd) {
      in_fwd[slot] = 1;
    }
    // Trim the backward walk to the part disjoint from the forward prefix.
    std::vector<std::uint32_t> suffix;
    for (const std::uint32_t slot : bwd) {
      if (in_fwd[slot] != 0) {
        break;
      }
      suffix.push_back(slot);
    }
    std::vector<std::uint32_t> spliced = fwd;
    spliced.insert(spliced.end(), suffix.rbegin(), suffix.rend());
    if (spliced.size() == declared) {
      return spliced;
    }
  }
  return std::nullopt;  // more damage than one field: uncorrectable
}

std::uint32_t RobustList::rewrite(const std::vector<std::uint32_t>& sequence) {
  std::uint32_t changed = 0;
  const auto put_u32 = [&](std::size_t offset, std::uint32_t value) {
    if (load_u32_at(offset) != value) {
      ++changed;
      store_u32_at(offset, value);
    }
  };
  put_u32(kOffMagic, kMagic);
  put_u32(kOffCount, static_cast<std::uint32_t>(sequence.size()));
  put_u32(kOffHead, sequence.empty() ? kNil : sequence.front());
  put_u32(kOffTail, sequence.empty() ? kNil : sequence.back());

  std::vector<std::uint8_t> member(capacity_, 0);
  for (const std::uint32_t slot : sequence) {
    member[slot] = 1;
  }
  for (std::uint32_t slot = 0; slot < capacity_; ++slot) {
    if (member[slot] == 0) {
      const Node node = load_node(slot);
      const Node want{expected_tag(slot), kNil, kNil};
      if (node.tag != want.tag || node.prev != want.prev ||
          node.next != want.next) {
        changed += static_cast<std::uint32_t>(node.tag != want.tag) +
                   static_cast<std::uint32_t>(node.prev != want.prev) +
                   static_cast<std::uint32_t>(node.next != want.next);
        store_node(slot, want);
      }
    }
  }
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    const std::uint32_t slot = sequence[i];
    const Node node = load_node(slot);
    const Node want{expected_tag(slot), i == 0 ? kNil : sequence[i - 1],
                    i + 1 == sequence.size() ? kNil : sequence[i + 1]};
    if (node.tag != want.tag || node.prev != want.prev || node.next != want.next) {
      changed += static_cast<std::uint32_t>(node.tag != want.tag) +
                 static_cast<std::uint32_t>(node.prev != want.prev) +
                 static_cast<std::uint32_t>(node.next != want.next);
      store_node(slot, want);
    }
  }
  return changed;
}

RobustAuditResult RobustList::audit() {
  RobustAuditResult result;
  const auto sequence = reconstruct_sequence();
  if (!sequence) {
    result.errors_detected = 1;  // structural damage found, beyond repair
    result.structure_valid = false;
    return result;
  }
  const std::uint32_t changed = rewrite(*sequence);
  result.errors_detected = changed;
  result.errors_corrected = changed;
  result.structure_valid = true;
  return result;
}

}  // namespace wtc::db
