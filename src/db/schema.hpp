// Schema description for the controller's in-memory database.
//
// Mirrors the paper's database organization (§3.1.2): a set of fixed-size
// tables laid out back-to-back in one contiguous, fully pre-allocated
// memory region. Each table holds fixed-size records; each record carries a
// header (record identifier + logical-group links) followed by 32-bit data
// fields. The system catalog — table/field descriptors, allowed value
// ranges, defaults — is itself serialized at the front of the region and is
// therefore exposed to the same corruption the audit must detect.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace wtc::db {

using TableId = std::uint16_t;
using FieldId = std::uint16_t;
using RecordIndex = std::uint32_t;

inline constexpr TableId kNoTable = 0xFFFF;

/// Referential role a field plays in the semantic-integrity graph (§4.3.3).
enum class FieldRole : std::uint8_t {
  Plain = 0,       ///< ordinary data
  PrimaryKey = 1,  ///< the table's key attribute
  ForeignKey = 2,  ///< references another table's primary key
};

/// Static vs dynamic data (§3.1.2): static fields hold configuration that
/// never changes during operation and are covered by the golden checksum;
/// dynamic fields change per call and are covered by range/semantic audit.
enum class DataKind : std::uint8_t { Static = 0, Dynamic = 1 };

/// Descriptor of one 32-bit field.
struct FieldSpec {
  std::string name;
  DataKind kind = DataKind::Dynamic;
  FieldRole role = FieldRole::Plain;
  TableId ref_table = kNoTable;  ///< for ForeignKey: referenced table
  /// Allowed [min, max] for dynamic-data range audit; nullopt when the
  /// catalog has no enforceable rule for this attribute (§4.4.2 motivates
  /// selective monitoring for exactly these).
  std::optional<std::int32_t> range_min;
  std::optional<std::int32_t> range_max;
  std::int32_t default_value = 0;  ///< recovery value for range-audit reset

  [[nodiscard]] bool has_range() const noexcept {
    return range_min.has_value() && range_max.has_value();
  }
};

/// Descriptor of one table.
struct TableSpec {
  std::string name;
  /// Dynamic tables have records allocated/freed at runtime (per call);
  /// static tables are fully populated at startup and never change.
  bool dynamic = true;
  RecordIndex num_records = 0;
  std::vector<FieldSpec> fields;
};

/// A whole-database schema.
struct Schema {
  std::vector<TableSpec> tables;

  [[nodiscard]] TableId table_id(std::string_view name) const;
  [[nodiscard]] FieldId field_id(TableId table, std::string_view name) const;
};

/// Fluent builder so schema definitions read like DDL.
class SchemaBuilder {
 public:
  SchemaBuilder& table(std::string name, RecordIndex num_records, bool dynamic = true);
  SchemaBuilder& field(FieldSpec spec);
  /// Shorthand for a plain dynamic field with a range rule.
  SchemaBuilder& ranged(std::string name, std::int32_t min, std::int32_t max,
                        std::int32_t default_value = 0);
  /// Shorthand for a dynamic field with no enforceable range rule.
  SchemaBuilder& unruled(std::string name);
  /// Shorthand for a static configuration field.
  SchemaBuilder& static_field(std::string name, std::int32_t value);
  SchemaBuilder& primary_key(std::string name);
  SchemaBuilder& foreign_key(std::string name, std::string_view ref_table);

  [[nodiscard]] Schema build() &&;

 private:
  TableSpec& current();
  Schema schema_;
  std::vector<std::pair<std::size_t, std::pair<std::size_t, std::string>>>
      pending_fk_;  // (table idx, (field idx, ref table name))
};

}  // namespace wtc::db
