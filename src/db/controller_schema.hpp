// Concrete database schemas used by the reproduction.
//
// 1. The *controller schema*: the wireless network controller's database as
//    the paper describes it — static configuration tables plus the dynamic
//    Process / Connection / Resource tables whose records form the
//    1-detectable semantic loop of §4.3.3:
//        Process.connection_id -> Connection.connection_id
//        Connection.channel_id -> Resource.channel_id
//        Resource.process_id   -> Process.process_id   (closes the loop)
//
// 2. The *prioritized-audit bench schema*: six dynamic tables with the
//    relative size ratio 7 : 18 : 1 : 125 : 8 : 4 measured from the actual
//    controller database (Table 5), used by the Figures 5/6 experiments.
#pragma once

#include <cstdint>

#include "db/database.hpp"
#include "db/schema.hpp"

namespace wtc::db {

/// Sizing knobs for the controller schema.
struct ControllerSchemaParams {
  RecordIndex process_records = 64;
  RecordIndex connection_records = 64;
  RecordIndex resource_records = 96;
  RecordIndex config_records = 16;
  RecordIndex subscriber_records = 64;
};

/// Resolved ids for the controller schema, so client code reads like the
/// paper's example instead of numeric soup.
struct ControllerIds {
  TableId system_config;
  TableId subscriber;
  TableId process;
  TableId connection;
  TableId resource;

  // Process table fields
  FieldId p_process_id, p_connection_id, p_status, p_priority, p_task_token,
      p_location_area, p_handoff_count;
  // Connection table fields
  FieldId c_connection_id, c_channel_id, c_caller_id, c_callee_id, c_state,
      c_feature_mask, c_codec, c_billing_units;
  // Resource table fields
  FieldId r_channel_id, r_process_id, r_status, r_capability, r_power_level,
      r_link_quality, r_timeslot, r_interference;
  // Subscriber table fields
  FieldId s_subscriber_id, s_auth_key, s_privileges;
};

/// Primary-key encoding: record `r` of a table has key value `r + 1`
/// (0 means "no reference" and is the catalog default for key fields).
[[nodiscard]] constexpr std::int32_t key_of(RecordIndex r) noexcept {
  return static_cast<std::int32_t>(r) + 1;
}
[[nodiscard]] constexpr RecordIndex record_of_key(std::int32_t key) noexcept {
  return static_cast<RecordIndex>(key - 1);
}

/// Logical groups used by the call-processing client. Group 0 is always
/// the free list; active call records live in kActiveCalls; DBmove shifts
/// long-running calls to kStableCalls (exercising Table 1's DBmove).
inline constexpr std::uint32_t kGroupFree = 0;
inline constexpr std::uint32_t kGroupActiveCalls = 1;
inline constexpr std::uint32_t kGroupStableCalls = 2;

[[nodiscard]] Schema make_controller_schema(const ControllerSchemaParams& params = {});

/// Resolves all ids; requires a schema built by make_controller_schema.
[[nodiscard]] ControllerIds resolve_controller_ids(const Schema& schema);

/// Populate hook writing distinct static configuration and subscriber
/// authentication data (deterministic function of record index).
void populate_controller_static_data(std::span<std::byte> region,
                                     const Schema& schema, const Layout& layout);

/// Deterministic auth key assigned to subscriber record `r` — the client's
/// authentication phase checks what it reads from the database against
/// this function (so corrupted subscriber data fails real authentication).
[[nodiscard]] std::int32_t subscriber_auth_key(RecordIndex r) noexcept;

/// Convenience: construct the controller database (schema + static data).
[[nodiscard]] std::unique_ptr<Database> make_controller_database(
    const ControllerSchemaParams& params = {});

// --- prioritized-audit bench schema (Table 5) ---

struct BenchSchemaParams {
  /// Scale multiplier over the 7:18:1:125:8:4 ratio (records per unit).
  RecordIndex scale = 4;
};

[[nodiscard]] Schema make_bench_schema(const BenchSchemaParams& params = {});

/// Activates every record of every table (the Figures 5/6 emulated client
/// overwrites records in place rather than allocating per call).
void activate_all_records(Database& db);

}  // namespace wtc::db
