#include "db/direct.hpp"

#include <array>

namespace wtc::db::direct {

void relink_table(Database& db, TableId t) {
  const auto& tl = db.layout().table(t);
  auto region = db.region();
  std::array<std::uint32_t, kMaxGroups> last_in_group;
  last_in_group.fill(kNilLink);
  for (RecordIndex r = 0; r < tl.num_records; ++r) {
    const std::size_t at = db.layout().record_offset(t, r);
    const std::uint32_t group = load_u32(region, at + 8);
    store_u32(region, at + 12, kNilLink);
    if (group < kMaxGroups) {
      if (last_in_group[group] != kNilLink) {
        const std::size_t prev_at =
            db.layout().record_offset(t, last_in_group[group]);
        store_u32(region, prev_at + 12, r);
      }
      last_in_group[group] = r;
    }
  }
  if (auto* obs = db.observer()) {
    // Only the `next` link words were rewritten — report exactly those, or
    // the oracle would count unrelated corruption as harmlessly overwritten.
    for (RecordIndex r = 0; r < tl.num_records; ++r) {
      obs->on_legitimate_write(db.layout().record_offset(t, r) + 12, 4);
    }
  }
}

void free_record(Database& db, TableId t, RecordIndex r) {
  const std::size_t at = db.layout().record_offset(t, r);
  auto region = db.region();
  RecordHeader header;
  header.id_tag = expected_id_tag(t, r);
  header.status = kStatusFree;
  header.group = 0;
  header.next = kNilLink;
  store_record_header(region, at, header);
  const auto& fields = db.schema().tables.at(t).fields;
  for (std::size_t f = 0; f < fields.size(); ++f) {
    store_i32(region, at + kRecordHeaderSize + f * 4, fields[f].default_value);
  }
  if (auto* obs = db.observer()) {
    obs->on_legitimate_write(at, db.layout().table(t).record_size);
  }
  relink_table(db, t);
}

void repair_header(Database& db, TableId t, RecordIndex r) {
  const std::size_t at = db.layout().record_offset(t, r);
  auto region = db.region();
  RecordHeader header = load_record_header(region, at);
  header.id_tag = expected_id_tag(t, r);
  if (header.status != kStatusFree && header.status != kStatusActive) {
    header.status = kStatusFree;  // unrecoverable status: drop the record
    header.group = 0;
  }
  if (header.group >= kMaxGroups) {
    header.group = 0;
  }
  // Enforce the status/group consistency rule the structural check tests:
  // a free dynamic record lives on the free list; an active record that
  // claims the free list has an unknowable true group — drop it (the
  // paper's free-the-record recovery) rather than guess.
  if (db.schema().tables.at(t).dynamic) {
    if (header.status == kStatusFree && header.group != 0) {
      header.group = 0;
    } else if (header.status == kStatusActive && header.group == 0) {
      header.status = kStatusFree;
    }
  }
  store_record_header(region, at, header);
  if (auto* obs = db.observer()) {
    obs->on_legitimate_write(at, kRecordHeaderSize);
  }
  relink_table(db, t);
}

void write_field(Database& db, TableId t, RecordIndex r, FieldId f,
                 std::int32_t value) {
  const std::size_t at = db.layout().field_offset(t, r, f);
  store_i32(db.region(), at, value);
  if (auto* obs = db.observer()) {
    obs->on_legitimate_write(at, 4);
  }
}

std::int32_t read_field(const Database& db, TableId t, RecordIndex r, FieldId f) {
  return load_i32(db.region(), db.layout().field_offset(t, r, f));
}

RecordHeader read_header(const Database& db, TableId t, RecordIndex r) {
  return load_record_header(db.region(), db.layout().record_offset(t, r));
}

}  // namespace wtc::db::direct
