#include "db/direct.hpp"

#include <array>
#include <vector>

namespace wtc::db::direct {

void relink_table(Database& db, TableId t) {
  const auto& tl = db.layout().table(t);
  auto region = db.region();
  // Compute the correct `next` of every record first, then store only the
  // words that actually change. Relinking runs on every alloc/free/move, so
  // blanket stores would mark the whole table dirty (defeating incremental
  // audit) and over-report legitimate overwrites to the oracle; an
  // unchanged link word was neither rewritten nor cleansed.
  std::vector<std::uint32_t> expected(tl.num_records, kNilLink);
  std::array<std::uint32_t, kMaxGroups> last_in_group;
  last_in_group.fill(kNilLink);
  for (RecordIndex r = 0; r < tl.num_records; ++r) {
    const std::uint32_t group =
        load_u32(region, db.layout().record_offset(t, r) + 8);
    if (group < kMaxGroups) {
      if (last_in_group[group] != kNilLink) {
        expected[last_in_group[group]] = r;
      }
      last_in_group[group] = r;
    }
  }
  for (RecordIndex r = 0; r < tl.num_records; ++r) {
    const std::size_t link_at = db.layout().record_offset(t, r) + 12;
    if (load_u32(region, link_at) == expected[r]) {
      continue;
    }
    store_u32(region, link_at, expected[r]);
    db.note_write(link_at, 4);
  }
}

void splice_links(Database& db, TableId t, RecordIndex r,
                  std::uint32_t old_group, std::uint32_t old_next) {
  const auto& layout = db.layout();
  const TableIndex& index = db.index(t);
  auto region = db.region();
  // Store a link word only if it actually changes, exactly like
  // relink_table: a no-op rewrite would spuriously dirty the word and
  // over-report legitimate overwrites to the oracle.
  const auto put_link = [&](RecordIndex record, std::uint32_t value) {
    const std::size_t link_at = layout.record_offset(t, record) + 12;
    if (load_u32(region, link_at) != value) {
      store_u32(region, link_at, value);
      db.note_write(link_at, 4);
    }
  };
  const std::uint32_t new_group = load_u32(region, layout.record_offset(t, r) + 8);
  // Leave the old chain: the predecessor inherits r's old successor.
  if (old_group < kMaxGroups && old_group != new_group) {
    if (const auto pred = index.pred(old_group, r)) {
      put_link(*pred, old_next);
    }
  }
  if (new_group < kMaxGroups) {
    // Join the new chain in record-index order (r is already a member of
    // the index set — the caller's header store resynced it).
    const auto succ = index.succ(new_group, r);
    put_link(r, succ ? *succ : kNilLink);
    if (const auto pred = index.pred(new_group, r)) {
      put_link(*pred, r);
    }
  } else {
    put_link(r, kNilLink);  // out-of-range group: relink leaves it unlinked
  }
}

void free_record(Database& db, TableId t, RecordIndex r) {
  const std::size_t at = db.layout().record_offset(t, r);
  auto region = db.region();
  RecordHeader header;
  header.id_tag = expected_id_tag(t, r);
  header.status = kStatusFree;
  header.group = 0;
  header.next = kNilLink;
  store_record_header(region, at, header);
  const auto& fields = db.schema().tables.at(t).fields;
  for (std::size_t f = 0; f < fields.size(); ++f) {
    store_i32(region, at + kRecordHeaderSize + f * 4, fields[f].default_value);
  }
  // Whole-record write whose field portion is a scrub to catalog defaults —
  // attest it so the incremental range audit can skip the freed record.
  db.note_scrub(at, db.layout().table(t).record_size);
  relink_table(db, t);
}

void repair_header(Database& db, TableId t, RecordIndex r) {
  const std::size_t at = db.layout().record_offset(t, r);
  auto region = db.region();
  RecordHeader header = load_record_header(region, at);
  const std::uint32_t original_status = header.status;
  header.id_tag = expected_id_tag(t, r);
  if (header.status != kStatusFree && header.status != kStatusActive) {
    header.status = kStatusFree;  // unrecoverable status: drop the record
    header.group = 0;
  }
  if (header.group >= kMaxGroups) {
    header.group = 0;
  }
  // Enforce the status/group consistency rule the structural check tests:
  // a free dynamic record lives on the free list; an active record that
  // claims the free list has an unknowable true group — drop it (the
  // paper's free-the-record recovery) rather than guess.
  if (db.schema().tables.at(t).dynamic) {
    if (header.status == kStatusFree && header.group != 0) {
      header.group = 0;
    } else if (header.status == kStatusActive && header.group == 0) {
      header.status = kStatusFree;
    }
  }
  store_record_header(region, at, header);
  db.note_write(at, kRecordHeaderSize);
  if (header.status == kStatusFree && original_status != kStatusFree) {
    // The repair dropped the record. A freed record must hold its catalog
    // defaults (every other free path scrubs), so leaving the stale call
    // data in place would just hand the range audit a spurious finding on
    // an already-recovered record — and it is a status transition with no
    // accompanying field write, which the incremental content checks are
    // entitled to assume never happens.
    const auto& fields = db.schema().tables.at(t).fields;
    for (std::size_t f = 0; f < fields.size(); ++f) {
      store_i32(region, at + kRecordHeaderSize + f * 4, fields[f].default_value);
    }
    db.note_scrub(at + kRecordHeaderSize, fields.size() * 4);
  }
  relink_table(db, t);
}

void write_field(Database& db, TableId t, RecordIndex r, FieldId f,
                 std::int32_t value) {
  const std::size_t at = db.layout().field_offset(t, r, f);
  store_i32(db.region(), at, value);
  db.note_write(at, 4);
}

std::int32_t read_field(const Database& db, TableId t, RecordIndex r, FieldId f) {
  return load_i32(db.region(), db.layout().field_offset(t, r, f));
}

RecordHeader read_header(const Database& db, TableId t, RecordIndex r) {
  return load_record_header(db.region(), db.layout().record_offset(t, r));
}

}  // namespace wtc::db::direct
