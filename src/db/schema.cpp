#include "db/schema.hpp"

#include <stdexcept>

namespace wtc::db {

TableId Schema::table_id(std::string_view name) const {
  for (std::size_t i = 0; i < tables.size(); ++i) {
    if (tables[i].name == name) {
      return static_cast<TableId>(i);
    }
  }
  throw std::out_of_range("schema: no table named " + std::string(name));
}

FieldId Schema::field_id(TableId table, std::string_view name) const {
  const auto& fields = tables.at(table).fields;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].name == name) {
      return static_cast<FieldId>(i);
    }
  }
  throw std::out_of_range("schema: no field named " + std::string(name));
}

TableSpec& SchemaBuilder::current() {
  if (schema_.tables.empty()) {
    throw std::logic_error("schema builder: field before any table()");
  }
  return schema_.tables.back();
}

SchemaBuilder& SchemaBuilder::table(std::string name, RecordIndex num_records,
                                    bool dynamic) {
  TableSpec spec;
  spec.name = std::move(name);
  spec.num_records = num_records;
  spec.dynamic = dynamic;
  schema_.tables.push_back(std::move(spec));
  return *this;
}

SchemaBuilder& SchemaBuilder::field(FieldSpec spec) {
  current().fields.push_back(std::move(spec));
  return *this;
}

SchemaBuilder& SchemaBuilder::ranged(std::string name, std::int32_t min,
                                     std::int32_t max, std::int32_t default_value) {
  FieldSpec spec;
  spec.name = std::move(name);
  spec.kind = DataKind::Dynamic;
  spec.range_min = min;
  spec.range_max = max;
  spec.default_value = default_value;
  return field(std::move(spec));
}

SchemaBuilder& SchemaBuilder::unruled(std::string name) {
  FieldSpec spec;
  spec.name = std::move(name);
  spec.kind = DataKind::Dynamic;
  return field(std::move(spec));
}

SchemaBuilder& SchemaBuilder::static_field(std::string name, std::int32_t value) {
  FieldSpec spec;
  spec.name = std::move(name);
  spec.kind = DataKind::Static;
  spec.default_value = value;
  return field(std::move(spec));
}

SchemaBuilder& SchemaBuilder::primary_key(std::string name) {
  FieldSpec spec;
  spec.name = std::move(name);
  spec.kind = DataKind::Dynamic;
  spec.role = FieldRole::PrimaryKey;
  return field(std::move(spec));
}

SchemaBuilder& SchemaBuilder::foreign_key(std::string name, std::string_view ref_table) {
  FieldSpec spec;
  spec.name = std::move(name);
  spec.kind = DataKind::Dynamic;
  spec.role = FieldRole::ForeignKey;
  pending_fk_.push_back({schema_.tables.size() - 1,
                         {current().fields.size(), std::string(ref_table)}});
  return field(std::move(spec));
}

Schema SchemaBuilder::build() && {
  // Resolve foreign-key table names now that all tables exist (schemas may
  // reference tables defined later, e.g. the Process->Connection->Resource
  // loop closes back on the first table).
  for (const auto& [table_idx, fk] : pending_fk_) {
    const auto& [field_idx, ref_name] = fk;
    schema_.tables[table_idx].fields[field_idx].ref_table =
        schema_.table_id(ref_name);
  }
  for (const auto& table : schema_.tables) {
    if (table.num_records == 0 || table.fields.empty()) {
      throw std::logic_error("schema builder: table '" + table.name +
                             "' needs records and fields");
    }
  }
  return std::move(schema_);
}

}  // namespace wtc::db
