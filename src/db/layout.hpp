// Byte-level layout of the database region.
//
// The whole database lives in one contiguous pre-allocated region
// (§3.1.2): first the serialized system catalog (header, table
// descriptors, field descriptors), then every table's records
// back-to-back. Because the catalog is *inside* the region, random
// corruption can hit it, and — as the paper stresses — catalog corruption
// can make every database operation fail. The API therefore reads the
// catalog from the region on every access, via CatalogView, rather than
// from a safe shadow.
//
// Record format: a 16-byte header precedes the data portion of every
// record (§4.3.2) —
//   id_tag  : exact-valued record identifier derived from (table, index);
//             recomputable from the record's offset, which is what makes
//             single-ID corruption correctable by the structural audit
//   status  : kStatusFree or kStatusActive magic
//   group   : logical group number (free list, active groups); DBmove
//             relinks records between groups
//   next    : index of the logically adjacent record in the same group
//             (singly linked, kNilLink terminates) — the paper's footnote 3
//             notes the production system deliberately did NOT move to
//             doubly-linked robust structures, and neither do we
// followed by the table's 32-bit fields.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "db/schema.hpp"

namespace wtc::db {

inline constexpr std::uint32_t kCatalogMagic = 0xD8CA7A10u;
inline constexpr std::uint32_t kCatalogVersion = 1;
inline constexpr std::uint32_t kStatusFree = 0x46524545u;    // 'FREE'
inline constexpr std::uint32_t kStatusActive = 0x41435456u;  // 'ACTV'
inline constexpr std::uint32_t kNilLink = 0xFFFFFFFFu;
inline constexpr std::uint32_t kTagSeed = 0x5EC00000u;
inline constexpr std::uint32_t kMaxGroups = 16;

inline constexpr std::size_t kCatalogHeaderSize = 32;
inline constexpr std::size_t kTableDescriptorSize = 28;
inline constexpr std::size_t kFieldDescriptorSize = 24;
inline constexpr std::size_t kRecordHeaderSize = 16;

/// Expected id_tag of record `index` of table `table` — a pure function of
/// position, so the structural audit can recompute it from the offset.
[[nodiscard]] constexpr std::uint32_t expected_id_tag(TableId table,
                                                      RecordIndex index) noexcept {
  return kTagSeed ^ (static_cast<std::uint32_t>(table) << 20) ^ index;
}

/// Little-endian scalar access into the region.
[[nodiscard]] std::uint32_t load_u32(std::span<const std::byte> region,
                                     std::size_t offset) noexcept;
void store_u32(std::span<std::byte> region, std::size_t offset,
               std::uint32_t value) noexcept;
[[nodiscard]] std::int32_t load_i32(std::span<const std::byte> region,
                                    std::size_t offset) noexcept;
void store_i32(std::span<std::byte> region, std::size_t offset,
               std::int32_t value) noexcept;

/// Decoded in-region record header.
struct RecordHeader {
  std::uint32_t id_tag = 0;
  std::uint32_t status = 0;
  std::uint32_t group = 0;
  std::uint32_t next = kNilLink;
};

[[nodiscard]] RecordHeader load_record_header(std::span<const std::byte> region,
                                              std::size_t offset) noexcept;
void store_record_header(std::span<std::byte> region, std::size_t offset,
                         const RecordHeader& header) noexcept;

/// Computed (trusted, out-of-region) layout of one table.
struct TableLayout {
  std::size_t offset = 0;       ///< absolute offset of record 0
  std::size_t record_size = 0;  ///< header + fields, bytes
  RecordIndex num_records = 0;
  std::size_t num_fields = 0;
  std::size_t first_field_index = 0;  ///< into the flat field-descriptor array
};

/// Trusted layout derived from the Schema. The *audit* subsystem uses this
/// (the paper's audit computes offsets "based on record sizes stored in
/// system tables"); the client-facing API goes through the in-region
/// CatalogView instead.
class Layout {
 public:
  static Layout compute(const Schema& schema);

  [[nodiscard]] std::size_t region_size() const noexcept { return region_size_; }
  [[nodiscard]] std::size_t catalog_size() const noexcept { return data_start_; }
  [[nodiscard]] std::size_t data_start() const noexcept { return data_start_; }
  [[nodiscard]] const std::vector<TableLayout>& tables() const noexcept {
    return tables_;
  }
  [[nodiscard]] const TableLayout& table(TableId t) const { return tables_.at(t); }

  [[nodiscard]] std::size_t record_offset(TableId t, RecordIndex r) const {
    const auto& tl = tables_.at(t);
    return tl.offset + static_cast<std::size_t>(r) * tl.record_size;
  }
  [[nodiscard]] std::size_t field_offset(TableId t, RecordIndex r, FieldId f) const {
    return record_offset(t, r) + kRecordHeaderSize + static_cast<std::size_t>(f) * 4;
  }

  /// Maps an absolute region offset back to (table, record) — used by the
  /// injection oracle and prioritized audit to attribute corruption.
  /// nullopt for catalog bytes.
  struct Location {
    TableId table;
    RecordIndex record;
    bool in_header;  ///< offset falls in the record header
  };
  [[nodiscard]] std::optional<Location> locate(std::size_t offset) const noexcept;

  /// Inclusive [first, last] record indices of table `t` overlapping the
  /// byte span [offset, offset+len); nullopt when the span misses the
  /// table entirely. Write-time dirty tracking stamps exactly this range.
  [[nodiscard]] std::optional<std::pair<RecordIndex, RecordIndex>>
  records_overlapping(TableId t, std::size_t offset,
                      std::size_t len) const noexcept;

 private:
  std::size_t region_size_ = 0;
  std::size_t data_start_ = 0;
  std::vector<TableLayout> tables_;
};

/// Serializes the catalog (header + table descriptors + field descriptors)
/// into the front of `region` and formats every table's records as free.
void format_region(std::span<std::byte> region, const Schema& schema,
                   const Layout& layout);

/// Decoded view of a table descriptor as read from the region.
struct TableDescriptor {
  std::uint32_t flags = 0;  ///< bit 0: dynamic
  std::uint32_t num_records = 0;
  std::uint32_t record_size = 0;
  std::uint32_t table_offset = 0;
  std::uint32_t num_fields = 0;
  std::uint32_t first_field_index = 0;

  [[nodiscard]] bool dynamic() const noexcept { return (flags & 1u) != 0; }
};

/// Decoded view of a field descriptor as read from the region. This is the
/// catalog data the dynamic-data audit consults: range limits and the
/// default (recovery) value (§4.3.1).
struct FieldDescriptor {
  std::uint32_t flags = 0;  ///< bit0 dynamic, bit1 has_range, bits 8-9 role
  std::uint32_t ref_table = kNoTable;
  std::int32_t range_min = 0;
  std::int32_t range_max = 0;
  std::int32_t default_value = 0;

  [[nodiscard]] bool dynamic() const noexcept { return (flags & 1u) != 0; }
  [[nodiscard]] bool has_range() const noexcept { return (flags & 2u) != 0; }
  [[nodiscard]] FieldRole role() const noexcept {
    return static_cast<FieldRole>((flags >> 8) & 0x3u);
  }
};

/// Read-only decoder over the in-region catalog. All accessors validate
/// what they read and return nullopt on corruption, which callers surface
/// as Status::CatalogCorrupt — reproducing "errors in the system catalog
/// can cause all database operations to fail" (§3.2).
class CatalogView {
 public:
  explicit CatalogView(std::span<const std::byte> region) noexcept
      : region_(region) {}

  /// Header check: magic, version, table count sane, region size matches.
  [[nodiscard]] bool header_ok() const noexcept;
  [[nodiscard]] std::uint32_t table_count() const noexcept;

  /// Decodes table `t`'s descriptor, validating that the described extent
  /// lies inside the region.
  [[nodiscard]] std::optional<TableDescriptor> table(TableId t) const noexcept;

  /// Decodes the descriptor of field `f` of table `t` (field index local
  /// to the table).
  [[nodiscard]] std::optional<FieldDescriptor> field(TableId t,
                                                     FieldId f) const noexcept;

 private:
  std::span<const std::byte> region_;
};

}  // namespace wtc::db
