// Sharded multi-controller database (scaling the §3.1.2 design out).
//
// One controller's database region audits and recovers well, but a single
// region is a single audit domain: every record shares one write-generation
// clock, one dirty grid, one lock table, and one audit engine's cycle
// budget. Partitioning the catalog-described database into N shards keyed
// on subscriber gives each shard its own db::Database — region, pristine
// image, shadow indexes, dirty grid, generation clocks — plus (one layer
// up) its own audit engine and manager pair, so audit work fans out across
// cores and a fault in one shard cannot perturb another's audit latency.
//
// Three layers, all in this header:
//   * ShardRouter — pure key→shard arithmetic. Power-of-two shard counts
//     only: the route is a 64-bit mix finalizer masked to the shard count,
//     so routing is O(1) with no modulo and the mix guarantees balance
//     even for dense sequential subscriber keys.
//   * ShardedDb — owns the N Database instances and a per-shard mutex for
//     callers that route concurrently (Database itself is single-threaded
//     by design; the mutex lives here, not there, so unsharded users pay
//     nothing).
//   * ShardedDbApi — one DbApi per shard plus the subscriber-keyed
//     operation surface. Single-shard ops resolve the shard and delegate;
//     the rare cross-shard group link (a subscriber handed off between
//     shards mid-call) runs a two-shard transfer protocol with a
//     deterministic lock order — both the std::mutex pair and the table
//     locks are taken in ascending shard id, released in reverse — so
//     concurrent opposing transfers cannot deadlock.
//
// Observability: every keyed op counts db.shard_routed, every two-shard
// transfer counts db.cross_shard_links, and publish_imbalance() reports
// max/mean routed ops across shards (milli) as db.shard_imbalance.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "db/api.hpp"
#include "db/database.hpp"

namespace wtc::db {

/// The routing key: the subscriber a call-processing operation acts for.
/// Everything a subscriber owns (its records in every dynamic table) lives
/// on the shard its key routes to, which is what makes single-subscriber
/// operations single-shard.
using SubscriberKey = std::uint64_t;

/// Pure key→shard arithmetic (no storage). Stateless and cheap to copy.
class ShardRouter {
 public:
  /// Shard counts must be powers of two: shard_of masks the mixed key
  /// with (count - 1) instead of taking a modulo, so any other count
  /// would silently route everything into the low shards.
  [[nodiscard]] static constexpr bool valid_shard_count(
      std::uint32_t count) noexcept {
    return count > 0 && (count & (count - 1)) == 0;
  }

  /// Precondition: valid_shard_count(count).
  explicit ShardRouter(std::uint32_t count) noexcept : mask_(count - 1) {}

  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(mask_ + 1);
  }

  /// O(1) route: splitmix64 finalizer over the key, masked to the shard
  /// count. The finalizer's avalanche spreads dense sequential subscriber
  /// ids (the realistic numbering plan) uniformly across shards.
  [[nodiscard]] std::uint32_t shard_of(SubscriberKey key) const noexcept {
    std::uint64_t x = key + 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    x ^= x >> 31;
    return static_cast<std::uint32_t>(x & mask_);
  }

 private:
  std::uint64_t mask_;
};

/// N independent Database regions plus the router that addresses them and
/// a per-shard mutex for concurrent callers. Each shard is built by the
/// caller's factory so shards can differ (or not) in schema and populate
/// function; the common case passes the same schema to every shard.
class ShardedDb {
 public:
  using ShardFactory =
      std::function<std::unique_ptr<Database>(std::uint32_t shard)>;

  /// Precondition: ShardRouter::valid_shard_count(shards). The factory is
  /// called once per shard, in shard order.
  ShardedDb(std::uint32_t shards, const ShardFactory& factory);

  ShardedDb(const ShardedDb&) = delete;
  ShardedDb& operator=(const ShardedDb&) = delete;

  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] const ShardRouter& router() const noexcept { return router_; }

  [[nodiscard]] Database& shard(std::uint32_t s) { return *shards_.at(s); }
  [[nodiscard]] const Database& shard(std::uint32_t s) const {
    return *shards_.at(s);
  }

  /// Serializes cross-thread access to shard `s`. Database is
  /// single-threaded by design; callers that route from several threads
  /// hold this around every touch of the shard (ShardedDbApi does when
  /// locking is enabled). Multi-shard lockers MUST take mutexes in
  /// ascending shard id.
  [[nodiscard]] std::mutex& shard_mutex(std::uint32_t s) {
    return mutexes_.at(s);
  }

  /// Shard-addressed dirty-chunk query: the shard-aware counterpart of
  /// Database::region_dirty_chunks_since. Offsets and the generation
  /// watermark are local to shard `s`'s region.
  [[nodiscard]] std::uint64_t dirty_chunks_since(std::uint32_t s,
                                                 std::size_t offset,
                                                 std::size_t len,
                                                 std::uint64_t gen) const {
    return shards_.at(s)->region_dirty_chunks_since(offset, len, gen);
  }

 private:
  ShardRouter router_;
  std::vector<std::unique_ptr<Database>> shards_;
  /// deque, not vector: std::mutex is immovable and the count is fixed at
  /// construction anyway.
  std::deque<std::mutex> mutexes_;
};

/// The subscriber-keyed API surface over a ShardedDb: one DbApi per shard
/// plus O(1) routing, optional per-shard mutual exclusion, and the
/// two-shard transfer protocol for cross-shard group links.
class ShardedDbApi {
 public:
  ShardedDbApi(ShardedDb& db, std::function<sim::Time()> clock);

  /// Opens every per-shard connection (DBinit on each shard, ascending).
  /// Returns the first non-Ok status, Ok if all succeeded.
  Status init(sim::ProcessId pid);
  /// Closes every per-shard connection (descending shard order).
  Status close();

  /// When enabled, every keyed op holds the target shard's mutex (and a
  /// transfer holds both, ascending). Off by default: a caller that
  /// partitions work so each shard is touched by one thread at a time —
  /// the campaign's round structure — needs no locks on the op path.
  void set_locking(bool on) noexcept { locking_ = on; }
  [[nodiscard]] bool locking() const noexcept { return locking_; }

  [[nodiscard]] std::uint32_t shard_of(SubscriberKey key) const noexcept {
    return db_.router().shard_of(key);
  }
  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return db_.shard_count();
  }
  /// The shard-local handle (wire audit hooks / link mode through this).
  [[nodiscard]] DbApi& api(std::uint32_t s) { return *apis_.at(s); }

  // --- subscriber-keyed single-shard operations ---
  // Each resolves the shard in O(1), counts db.shard_routed, and delegates
  // to that shard's DbApi. Record indices are shard-local coordinates:
  // an index returned by alloc_rec(key, ...) is only meaningful together
  // with that key (or its shard id).
  Status alloc_rec(SubscriberKey key, TableId t, std::uint32_t group,
                   RecordIndex& out);
  Status free_rec(SubscriberKey key, TableId t, RecordIndex r);
  Status move_rec(SubscriberKey key, TableId t, RecordIndex r,
                  std::uint32_t target_group);
  Status read_rec(SubscriberKey key, TableId t, RecordIndex r,
                  std::span<std::int32_t> out);
  Status read_fld(SubscriberKey key, TableId t, RecordIndex r, FieldId f,
                  std::int32_t& out);
  Status write_rec(SubscriberKey key, TableId t, RecordIndex r,
                   std::span<const std::int32_t> values);
  Status write_fld(SubscriberKey key, TableId t, RecordIndex r, FieldId f,
                   std::int32_t value);

  /// Cross-shard group link: record (t, r) owned by `from_key`'s shard is
  /// handed off to `to_key`'s shard into `group` (the subscriber handoff /
  /// call-transfer case that breaks the "one subscriber, one shard"
  /// locality). Two-shard protocol, deterministic order:
  ///   1. lock both shard mutexes, ascending shard id (locking mode);
  ///   2. txn_begin(t) on both shards, ascending shard id;
  ///   3. read the source record's fields (must be active);
  ///   4. alloc a record on the target shard into `group` -> `out`;
  ///   5. write the fields into the target record;
  ///   6. free the source record;
  ///   7. txn_end / unlock in reverse order.
  /// Failure before step 6 leaves the source record intact (a failed alloc
  /// frees nothing, so there is no rollback path). When both keys route to
  /// the same shard the protocol degenerates to the single-shard sequence
  /// on one lock; db.cross_shard_links counts only true two-shard runs.
  Status transfer_rec(SubscriberKey from_key, SubscriberKey to_key, TableId t,
                      RecordIndex r, std::uint32_t group, RecordIndex& out);

  // --- routing statistics ---
  [[nodiscard]] std::uint64_t routed_ops(std::uint32_t s) const {
    return routed_ops_.at(s);
  }
  [[nodiscard]] std::uint64_t cross_shard_transfers() const noexcept {
    return cross_shard_transfers_.load(std::memory_order_relaxed);
  }
  /// Publishes the current routing skew — max(routed)/mean(routed) across
  /// shards, in milli (1000 = perfectly balanced) — as the
  /// db.shard_imbalance gauge, and returns it.
  std::uint64_t publish_imbalance();

 private:
  /// Counts the routed op and returns the shard's handle. `routed_ops_[s]`
  /// is written under the shard's mutex when locking is on; otherwise the
  /// caller owns the shard for the duration of the call (the partitioned
  /// round contract), so the plain increment is safe either way.
  DbApi& route(std::uint32_t s);

  ShardedDb& db_;
  std::vector<std::unique_ptr<DbApi>> apis_;
  std::vector<std::uint64_t> routed_ops_;
  /// Atomic: concurrent transfers over DISJOINT shard pairs share no
  /// mutex, yet both bump this. Relaxed is enough — the value is only
  /// read after the concurrent phase joins.
  std::atomic<std::uint64_t> cross_shard_transfers_{0};
  bool locking_ = false;
};

}  // namespace wtc::db
