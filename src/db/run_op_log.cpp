#include "db/run_op_log.hpp"

#include "common/crc32.hpp"
#include "obs/metrics.hpp"

namespace wtc::db {
namespace {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80u);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

[[nodiscard]] std::uint64_t zigzag(std::int64_t value) noexcept {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

[[nodiscard]] std::int64_t unzigzag(std::uint64_t value) noexcept {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

/// Bounds-checked varint read; false on truncation or a >10-byte runaway.
bool get_varint(std::span<const std::uint8_t> bytes, std::size_t& at,
                std::uint64_t& out) {
  out = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (at >= bytes.size()) {
      return false;
    }
    const std::uint8_t byte = bytes[at++];
    out |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) {
      return true;
    }
  }
  return false;  // continuation bit set past 64 payload bits
}

[[nodiscard]] std::uint32_t load_le32(std::span<const std::uint8_t> bytes,
                                      std::size_t at) noexcept {
  return static_cast<std::uint32_t>(bytes[at]) |
         static_cast<std::uint32_t>(bytes[at + 1]) << 8 |
         static_cast<std::uint32_t>(bytes[at + 2]) << 16 |
         static_cast<std::uint32_t>(bytes[at + 3]) << 24;
}

void put_le32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 24));
}

[[nodiscard]] std::uint32_t payload_crc(std::span<const std::uint8_t> payload) {
  return common::crc32(std::as_bytes(std::span(payload)));
}

/// Decodes one event; false (with `error` set) on truncation/invalidity.
bool decode_event(std::span<const std::uint8_t> bytes, std::size_t& at,
                  sim::Time& last_time, ApiEvent& event, OpLogError& error) {
  if (bytes.size() - at < 3) {
    error = OpLogError::Truncated;
    return false;
  }
  const std::uint8_t op = bytes[at++];
  const std::uint8_t status = bytes[at++];
  const std::uint8_t flags = bytes[at++];
  if (op > static_cast<std::uint8_t>(ApiOp::TxnEnd) ||
      status > static_cast<std::uint8_t>(Status::BadGroup) ||
      (flags & ~0x01u) != 0) {
    error = OpLogError::BadEvent;
    return false;
  }
  std::uint64_t dt = 0, client = 0, thread = 0, table = 0, record = 0,
                group = 0, field = 0, payload_len = 0;
  if (!get_varint(bytes, at, dt) || !get_varint(bytes, at, client) ||
      !get_varint(bytes, at, thread) || !get_varint(bytes, at, table) ||
      !get_varint(bytes, at, record) || !get_varint(bytes, at, group) ||
      !get_varint(bytes, at, field) || !get_varint(bytes, at, payload_len)) {
    error = OpLogError::Truncated;
    return false;
  }
  if (client > 0xFFFFFFFFull || thread > 0xFFFFFFFFull || table > 0xFFFFull ||
      record > 0xFFFFFFFFull || group > 0xFFFFFFFFull || field > 0xFFFFull ||
      payload_len > std::tuple_size_v<decltype(ApiEvent::payload)>) {
    error = OpLogError::BadEvent;
    return false;
  }
  const std::int64_t delta = unzigzag(dt);
  event = ApiEvent{};
  event.op = static_cast<ApiOp>(op);
  event.status = static_cast<Status>(status);
  event.is_update = (flags & 1u) != 0;
  event.time = last_time + static_cast<sim::Time>(delta);
  last_time = event.time;
  event.client = static_cast<sim::ProcessId>(client);
  event.thread = static_cast<std::uint32_t>(thread);
  event.table = static_cast<TableId>(table);
  event.record = static_cast<RecordIndex>(record);
  event.group = static_cast<std::uint32_t>(group);
  event.field = static_cast<FieldId>(field);
  event.payload_len = static_cast<std::uint8_t>(payload_len);
  for (std::uint8_t f = 0; f < event.payload_len; ++f) {
    std::uint64_t value = 0;
    if (!get_varint(bytes, at, value)) {
      error = OpLogError::Truncated;
      return false;
    }
    const std::int64_t wide = unzigzag(value);
    if (wide < INT32_MIN || wide > INT32_MAX) {
      error = OpLogError::BadEvent;
      return false;
    }
    event.payload[f] = static_cast<std::int32_t>(wide);
  }
  return true;
}

}  // namespace

std::string_view to_string(OpLogError error) noexcept {
  switch (error) {
    case OpLogError::None: return "None";
    case OpLogError::CannotOpen: return "CannotOpen";
    case OpLogError::BadMagic: return "BadMagic";
    case OpLogError::Truncated: return "Truncated";
    case OpLogError::BadCrc: return "BadCrc";
    case OpLogError::BadEvent: return "BadEvent";
  }
  return "?";
}

void encode_op_log_event(std::vector<std::uint8_t>& out, const ApiEvent& event,
                         sim::Time& last_time) {
  out.push_back(static_cast<std::uint8_t>(event.op));
  out.push_back(static_cast<std::uint8_t>(event.status));
  out.push_back(event.is_update ? 1u : 0u);
  put_varint(out, zigzag(static_cast<std::int64_t>(event.time) -
                         static_cast<std::int64_t>(last_time)));
  last_time = event.time;
  put_varint(out, event.client);
  put_varint(out, event.thread);
  put_varint(out, event.table);
  put_varint(out, event.record);
  put_varint(out, event.group);
  put_varint(out, event.field);
  const std::uint8_t n = static_cast<std::uint8_t>(
      std::min<std::size_t>(event.payload_len, event.payload.size()));
  put_varint(out, n);
  for (std::uint8_t f = 0; f < n; ++f) {
    put_varint(out, zigzag(event.payload[f]));
  }
}

OpLogReadResult decode_op_log(std::span<const std::uint8_t> bytes) {
  OpLogReadResult result;
  std::size_t at = 0;
  if (bytes.size() < 8) {
    result.error = OpLogError::Truncated;
    result.error_offset = bytes.size();
    return result;
  }
  if (load_le32(bytes, 0) != kOpLogMagic || load_le32(bytes, 4) != kOpLogVersion) {
    result.error = OpLogError::BadMagic;
    return result;
  }
  at = 8;
  sim::Time last_time = 0;
  while (at < bytes.size()) {
    if (bytes.size() - at < 12) {
      result.error = OpLogError::Truncated;
      result.error_offset = at;
      return result;
    }
    const std::uint32_t payload_len = load_le32(bytes, at);
    const std::uint32_t event_count = load_le32(bytes, at + 4);
    const std::uint32_t crc = load_le32(bytes, at + 8);
    at += 12;
    if (bytes.size() - at < payload_len) {
      result.error = OpLogError::Truncated;
      result.error_offset = at;
      return result;
    }
    const auto payload = bytes.subspan(at, payload_len);
    if (payload_crc(payload) != crc) {
      result.error = OpLogError::BadCrc;
      result.error_offset = at;
      return result;
    }
    std::size_t payload_at = 0;
    for (std::uint32_t i = 0; i < event_count; ++i) {
      ApiEvent event;
      OpLogError error = OpLogError::None;
      if (!decode_event(payload, payload_at, last_time, event, error)) {
        result.error = error;
        result.error_offset = at + payload_at;
        result.events.clear();
        return result;
      }
      result.events.push_back(event);
    }
    if (payload_at != payload_len) {
      // Trailing bytes a CRC-valid chunk never has: a framing lie.
      result.error = OpLogError::BadEvent;
      result.error_offset = at + payload_at;
      result.events.clear();
      return result;
    }
    at += payload_len;
  }
  return result;
}

OpLogReadResult load_op_log(const std::string& path) {
  OpLogReadResult result;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    result.error = OpLogError::CannotOpen;
    return result;
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[65536];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof chunk, file)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  std::fclose(file);
  return decode_op_log(bytes);
}

OpLogWriter::OpLogWriter(const std::string& path, std::uint32_t chunk_events)
    : chunk_events_(chunk_events == 0 ? 1 : chunk_events) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    failed_ = true;
    return;
  }
  std::vector<std::uint8_t> header;
  put_le32(header, kOpLogMagic);
  put_le32(header, kOpLogVersion);
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size()) {
    failed_ = true;
  }
  bytes_ += header.size();
}

OpLogWriter::~OpLogWriter() {
  close();
}

void OpLogWriter::add(const ApiEvent& event) {
  if (!ok()) {
    return;
  }
  encode_op_log_event(buffer_, event, last_time_);
  if (++buffered_events_ >= chunk_events_) {
    flush_chunk();
  }
}

void OpLogWriter::flush_chunk() {
  if (file_ == nullptr || buffered_events_ == 0) {
    return;
  }
  std::vector<std::uint8_t> frame;
  put_le32(frame, static_cast<std::uint32_t>(buffer_.size()));
  put_le32(frame, buffered_events_);
  put_le32(frame, payload_crc(buffer_));
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size() ||
      std::fwrite(buffer_.data(), 1, buffer_.size(), file_) != buffer_.size()) {
    failed_ = true;
  }
  const std::uint64_t written = frame.size() + buffer_.size();
  bytes_ += written;
  obs::count(obs::Counter::oplog_bytes, written);
  buffer_.clear();
  buffered_events_ = 0;
}

bool OpLogWriter::close() {
  if (file_ == nullptr) {
    return !failed_;
  }
  flush_chunk();
  if (std::fclose(file_) != 0) {
    failed_ = true;
  }
  file_ = nullptr;
  return !failed_;
}

void RunOpLog::on_api_event(const ApiEvent& event) {
  if (event.status == Status::Ok) {
    events_.push_back(event);
    obs::count(obs::Counter::oplog_recorded);
    if (writer_ != nullptr) {
      writer_->add(event);
    }
  }
  if (next_ != nullptr) {
    next_->on_api_event(event);
  }
}

bool RunOpLog::open_file(const std::string& path) {
  writer_ = std::make_unique<OpLogWriter>(path);
  if (!writer_->ok()) {
    writer_.reset();
    return false;
  }
  return true;
}

bool RunOpLog::close_file() {
  if (writer_ == nullptr) {
    return true;
  }
  const bool ok = writer_->close();
  writer_.reset();
  return ok;
}

std::vector<std::uint8_t> RunOpLog::serialize() const {
  std::vector<std::uint8_t> out;
  put_le32(out, kOpLogMagic);
  put_le32(out, kOpLogVersion);
  std::vector<std::uint8_t> payload;
  sim::Time last_time = 0;
  std::uint32_t buffered = 0;
  constexpr std::uint32_t kChunkEvents = 1024;
  const auto flush = [&]() {
    if (buffered == 0) {
      return;
    }
    put_le32(out, static_cast<std::uint32_t>(payload.size()));
    put_le32(out, buffered);
    put_le32(out, payload_crc(payload));
    out.insert(out.end(), payload.begin(), payload.end());
    payload.clear();
    buffered = 0;
  };
  for (const ApiEvent& event : events_) {
    encode_op_log_event(payload, event, last_time);
    if (++buffered >= kChunkEvents) {
      flush();
    }
  }
  flush();
  return out;
}

bool RunOpLog::save(const std::string& path) const {
  const std::vector<std::uint8_t> bytes = serialize();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return false;
  }
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), file) == bytes.size();
  obs::count(obs::Counter::oplog_bytes, bytes.size());
  return std::fclose(file) == 0 && ok;
}

}  // namespace wtc::db
