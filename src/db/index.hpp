// Shadow group/free indexes over one table's record headers.
//
// The database region keeps each logical group's records on a singly
// linked chain in record-index order (layout.hpp), and the structural
// audit checks and repairs exactly that invariant. Maintaining it by
// rebuilding every chain on each alloc/free/move makes every mutating API
// call O(N_records); finding a free record by scanning headers makes
// DBalloc O(N_records) again. TableIndex is the fast access path over that
// slower, audited authoritative structure: an in-memory mirror of the
// membership information the chains encode — which records are free
// (status word) and which group each record belongs to (group word) — as
// ordered sets, so the API can pop the lowest free slot and find a
// record's chain neighbours in O(log N) and splice only the affected
// `next` links.
//
// The index lives OUTSIDE the audited region (like the redundant metadata
// of §4.3.3): injected corruption never touches it directly, and it never
// weakens an audit invariant because it stores no authoritative state —
// every entry is recomputable from the region's status/group words, which
// is exactly what rebuild-from-region and the cross-check do. It is kept
// in sync by Database::mark_written: any store write overlapping a
// record's status/group words re-reads them and resyncs that record, so
// API writes, audit repairs, disk reloads, image installs, and the
// injector's through-store corruption all update it automatically. Only
// raw corruption that bypasses the store can desync it — the same blind
// spot the incremental audit's periodic full sweep exists for — and the
// consumers treat it as advisory: DBalloc validates the popped record's
// status against the region and rebuilds on mismatch.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "db/layout.hpp"
#include "db/schema.hpp"

namespace wtc::db {

class TableIndex {
 public:
  /// Sentinel for "group word out of range": such records are on no chain
  /// (relink leaves them unlinked) and in no member set.
  static constexpr std::uint8_t kNoGroup = 0xFF;

  /// Resets to the state of a table whose every record has an out-of-range
  /// group and a non-free status (i.e. "member of nothing"); callers then
  /// sync() each record from its region header words.
  void reset(RecordIndex num_records);

  /// Resyncs record `r` from its region header words. Idempotent; O(log N)
  /// when membership actually changes, O(1) otherwise.
  void sync(RecordIndex r, std::uint32_t status, std::uint32_t group);

  /// Lowest-index record whose status word is kStatusFree (what the
  /// DBalloc scan would find), or nullopt when none.
  [[nodiscard]] std::optional<RecordIndex> first_free() const noexcept;

  /// Greatest member of group `g` below `r` — the record whose `next` link
  /// must point at/around `r` when splicing. `r` itself is never returned
  /// whether or not it is currently a member.
  [[nodiscard]] std::optional<RecordIndex> pred(std::uint32_t g,
                                                RecordIndex r) const noexcept;
  /// Smallest member of group `g` above `r` (r's chain successor).
  [[nodiscard]] std::optional<RecordIndex> succ(std::uint32_t g,
                                                RecordIndex r) const noexcept;

  [[nodiscard]] const std::set<RecordIndex>& members(std::uint32_t g) const {
    return groups_.at(g);
  }
  [[nodiscard]] std::size_t free_count() const noexcept { return free_.size(); }
  /// Cached group of record `r` (kNoGroup for out-of-range group words).
  [[nodiscard]] std::uint8_t group_of(RecordIndex r) const {
    return group_of_.at(r);
  }

  /// Exact-state comparison, used by the full-rebuild cross-check.
  [[nodiscard]] bool operator==(const TableIndex&) const = default;

 private:
  std::array<std::set<RecordIndex>, kMaxGroups> groups_;
  std::set<RecordIndex> free_;
  std::vector<std::uint8_t> group_of_;  ///< per record; kNoGroup = none
  std::vector<std::uint8_t> is_free_;   ///< per record; status == kStatusFree
};

}  // namespace wtc::db
