// Whole-run DbApi operation log (ROADMAP's log-replay audit arm; the
// whole-run generalization of the per-thread healing feed in op_log.hpp).
//
// `RunOpLog` is a NotificationSink tee: every *successful* ApiEvent —
// across all client threads, in arrival order — is recorded, then
// forwarded to the chained sink, so installing the recorder changes
// nothing the audit process sees. Arrival order is the ground truth the
// two consumers rely on:
//   * the replay audit arm (audit/replay.hpp) re-executes the log against
//     a shadow region and compares word-for-word — exact because alloc
//     picks the lowest free index deterministically and update events
//     carry post-write field snapshots;
//   * the replay workload engine (experiments/replay_workload.hpp)
//     re-applies the log through a fresh DbApi with no call-processing
//     simulation at all, reproducing the recorded run's region
//     byte-for-byte.
//
// On-disk format (little-endian):
//   [u32 magic 'WOPL'][u32 version]
//   chunk*: [u32 payload_len][u32 event_count][u32 crc32(payload)][payload]
// Each payload is `event_count` varint-packed events:
//   op(1) status(1) flags(1: bit0 is_update)
//   zigzag-varint time delta from the previous event,
//   varints client, thread, table, record, group, field, payload_len,
//   then payload_len zigzag-varint field values.
// The reader is a trust boundary (fuzzed by fuzz_oplog): every chunk must
// pass the CRC, decode exactly event_count events consuming exactly
// payload_len bytes, and every event must be range-valid (op, status,
// payload_len <= 8) — anything else is a typed error, never UB.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "db/api.hpp"

namespace wtc::db {

inline constexpr std::uint32_t kOpLogMagic = 0x4C504F57u;  // 'WOPL'
inline constexpr std::uint32_t kOpLogVersion = 1;

enum class OpLogError : std::uint8_t {
  None = 0,
  CannotOpen,  ///< file missing/unreadable (load_op_log only)
  BadMagic,    ///< header magic or version mismatch
  Truncated,   ///< byte stream ends inside a header, chunk, or event
  BadCrc,      ///< chunk payload does not match its CRC frame
  BadEvent,    ///< decoded event is range-invalid (op/status/payload_len)
};

[[nodiscard]] std::string_view to_string(OpLogError error) noexcept;

/// Appends one varint-packed event to `out`. `last_time` is the running
/// delta base; the caller threads it through consecutive appends.
void encode_op_log_event(std::vector<std::uint8_t>& out, const ApiEvent& event,
                         sim::Time& last_time);

struct OpLogReadResult {
  std::vector<ApiEvent> events;
  OpLogError error = OpLogError::None;
  /// Byte offset the decoder had consumed when it hit `error`.
  std::size_t error_offset = 0;

  [[nodiscard]] bool ok() const noexcept { return error == OpLogError::None; }
};

/// Decodes a complete in-memory log image (header + chunks).
[[nodiscard]] OpLogReadResult decode_op_log(std::span<const std::uint8_t> bytes);

/// Reads and decodes a log file.
[[nodiscard]] OpLogReadResult load_op_log(const std::string& path);

/// Streaming writer: buffers events and emits one CRC-framed chunk every
/// `chunk_events` (and at close). Counts obs `oplog.bytes`.
class OpLogWriter {
 public:
  explicit OpLogWriter(const std::string& path, std::uint32_t chunk_events = 1024);
  ~OpLogWriter();

  OpLogWriter(const OpLogWriter&) = delete;
  OpLogWriter& operator=(const OpLogWriter&) = delete;

  [[nodiscard]] bool ok() const noexcept { return file_ != nullptr && !failed_; }
  void add(const ApiEvent& event);
  /// Flushes the tail chunk and closes the file; false on any I/O error.
  bool close();

  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_; }

 private:
  void flush_chunk();

  std::FILE* file_ = nullptr;
  std::vector<std::uint8_t> buffer_;
  std::uint32_t buffered_events_ = 0;
  std::uint32_t chunk_events_;
  sim::Time last_time_ = 0;
  std::uint64_t bytes_ = 0;
  bool failed_ = false;
};

/// The recording tee. Keeps the in-memory event sequence (the replay
/// audit's food) and optionally streams it to disk as it grows.
class RunOpLog final : public NotificationSink {
 public:
  explicit RunOpLog(NotificationSink* next = nullptr) : next_(next) {}

  void on_api_event(const ApiEvent& event) override;

  /// All recorded (successful) events, arrival order.
  [[nodiscard]] const std::vector<ApiEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::uint64_t recorded() const noexcept { return events_.size(); }

  /// Opens a streaming writer; every event recorded from now on is also
  /// written to `path`. False if the file cannot be opened.
  bool open_file(const std::string& path);
  /// Closes the streaming writer (flushing the tail chunk), if open.
  bool close_file();

  /// One-shot serialization of everything recorded so far.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  bool save(const std::string& path) const;

 private:
  NotificationSink* next_;
  std::vector<ApiEvent> events_;
  std::unique_ptr<OpLogWriter> writer_;
};

}  // namespace wtc::db
