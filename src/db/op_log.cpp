#include "db/op_log.hpp"

#include <algorithm>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace wtc::db {
namespace {

const std::vector<ApiEvent> kEmpty;

[[nodiscard]] std::uint64_t record_key(const ApiEvent& op) noexcept {
  return static_cast<std::uint64_t>(op.table) << 32 | op.record;
}

}  // namespace

void ThreadOpLog::on_api_event(const ApiEvent& event) {
  if (event.is_update && event.status == Status::Ok) {
    if (logs_.size() <= event.thread) {
      logs_.resize(event.thread + 1);
    }
    logs_[event.thread].ops.push_back(event);
    ++recorded_;
  }
  if (next_ != nullptr) {
    next_->on_api_event(event);
  }
}

const std::vector<ApiEvent>& ThreadOpLog::ops(std::uint32_t thread) const {
  return thread < logs_.size() ? logs_[thread].ops : kEmpty;
}

void ThreadOpLog::advance_watermark(std::uint32_t thread,
                                    sim::Time attested_up_to) {
  if (thread >= logs_.size()) {
    return;
  }
  PerThread& log = logs_[thread];
  if (attested_up_to <= log.watermark) {
    return;
  }
  log.watermark = attested_up_to;

  // Compact the attested prefix: for every (table, record) keep only the
  // last attested op, and drop records the thread no longer holds (latest
  // attested op is a Free). The unattested tail is kept verbatim. Linear:
  // index the prefix's last op per record, then one forward pass into the
  // reused scratch vector (the old version rescanned the prefix per op).
  const auto tail_begin = std::find_if(
      log.ops.begin(), log.ops.end(),
      [&](const ApiEvent& op) { return op.time > attested_up_to; });
  std::unordered_map<std::uint64_t, const ApiEvent*> last;
  last.reserve(static_cast<std::size_t>(tail_begin - log.ops.begin()));
  for (auto it = log.ops.begin(); it != tail_begin; ++it) {
    last[record_key(*it)] = &*it;
  }
  scratch_.clear();
  scratch_.reserve(log.ops.size());
  for (auto it = log.ops.begin(); it != tail_begin; ++it) {
    if (last[record_key(*it)] == &*it && it->op != ApiOp::Free) {
      scratch_.push_back(*it);
    }
  }
  scratch_.insert(scratch_.end(), tail_begin, log.ops.end());
  log.ops.swap(scratch_);
  obs::count(obs::Counter::oplog_compactions);
}

sim::Time ThreadOpLog::watermark(std::uint32_t thread) const noexcept {
  return thread < logs_.size() ? logs_[thread].watermark : 0;
}

void ThreadOpLog::clear_thread(std::uint32_t thread) {
  if (thread < logs_.size()) {
    logs_[thread].ops.clear();
  }
}

}  // namespace wtc::db
