#include "db/op_log.hpp"

#include <algorithm>

namespace wtc::db {
namespace {

const std::vector<ApiEvent> kEmpty;

bool same_record(const ApiEvent& a, const ApiEvent& b) {
  return a.table == b.table && a.record == b.record;
}

}  // namespace

void ThreadOpLog::on_api_event(const ApiEvent& event) {
  if (event.is_update && event.status == Status::Ok) {
    if (logs_.size() <= event.thread) {
      logs_.resize(event.thread + 1);
    }
    logs_[event.thread].ops.push_back(event);
    ++recorded_;
  }
  if (next_ != nullptr) {
    next_->on_api_event(event);
  }
}

const std::vector<ApiEvent>& ThreadOpLog::ops(std::uint32_t thread) const {
  return thread < logs_.size() ? logs_[thread].ops : kEmpty;
}

void ThreadOpLog::advance_watermark(std::uint32_t thread,
                                    sim::Time attested_up_to) {
  if (thread >= logs_.size()) {
    return;
  }
  PerThread& log = logs_[thread];
  if (attested_up_to <= log.watermark) {
    return;
  }
  log.watermark = attested_up_to;

  // Compact the attested prefix: for every (table, record) keep only the
  // last attested op, and drop records the thread no longer holds (latest
  // attested op is a Free). The unattested tail is kept verbatim.
  const auto tail_begin = std::find_if(
      log.ops.begin(), log.ops.end(),
      [&](const ApiEvent& op) { return op.time > attested_up_to; });
  std::vector<ApiEvent> compacted;
  for (auto it = log.ops.begin(); it != tail_begin; ++it) {
    bool is_last = true;
    for (auto later = std::next(it); later != tail_begin; ++later) {
      if (same_record(*it, *later)) {
        is_last = false;
        break;
      }
    }
    if (is_last && it->op != ApiOp::Free) {
      compacted.push_back(*it);
    }
  }
  compacted.insert(compacted.end(), tail_begin, log.ops.end());
  log.ops = std::move(compacted);
}

sim::Time ThreadOpLog::watermark(std::uint32_t thread) const noexcept {
  return thread < logs_.size() ? logs_[thread].watermark : 0;
}

void ThreadOpLog::clear_thread(std::uint32_t thread) {
  if (thread < logs_.size()) {
    logs_[thread].ops.clear();
  }
}

}  // namespace wtc::db
