#include "db/layout.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace wtc::db {

std::uint32_t load_u32(std::span<const std::byte> region, std::size_t offset) noexcept {
  std::uint32_t v = 0;
  std::memcpy(&v, region.data() + offset, sizeof(v));
  return v;
}

void store_u32(std::span<std::byte> region, std::size_t offset,
               std::uint32_t value) noexcept {
  std::memcpy(region.data() + offset, &value, sizeof(value));
}

std::int32_t load_i32(std::span<const std::byte> region, std::size_t offset) noexcept {
  std::int32_t v = 0;
  std::memcpy(&v, region.data() + offset, sizeof(v));
  return v;
}

void store_i32(std::span<std::byte> region, std::size_t offset,
               std::int32_t value) noexcept {
  std::memcpy(region.data() + offset, &value, sizeof(value));
}

RecordHeader load_record_header(std::span<const std::byte> region,
                                std::size_t offset) noexcept {
  RecordHeader h;
  h.id_tag = load_u32(region, offset);
  h.status = load_u32(region, offset + 4);
  h.group = load_u32(region, offset + 8);
  h.next = load_u32(region, offset + 12);
  return h;
}

void store_record_header(std::span<std::byte> region, std::size_t offset,
                         const RecordHeader& header) noexcept {
  store_u32(region, offset, header.id_tag);
  store_u32(region, offset + 4, header.status);
  store_u32(region, offset + 8, header.group);
  store_u32(region, offset + 12, header.next);
}

Layout Layout::compute(const Schema& schema) {
  Layout layout;
  std::size_t total_fields = 0;
  for (const auto& table : schema.tables) {
    total_fields += table.fields.size();
  }
  layout.data_start_ = kCatalogHeaderSize +
                       schema.tables.size() * kTableDescriptorSize +
                       total_fields * kFieldDescriptorSize;

  std::size_t cursor = layout.data_start_;
  std::size_t field_index = 0;
  for (const auto& table : schema.tables) {
    TableLayout tl;
    tl.offset = cursor;
    tl.record_size = kRecordHeaderSize + table.fields.size() * 4;
    tl.num_records = table.num_records;
    tl.num_fields = table.fields.size();
    tl.first_field_index = field_index;
    field_index += table.fields.size();
    cursor += tl.record_size * table.num_records;
    layout.tables_.push_back(tl);
  }
  layout.region_size_ = cursor;
  return layout;
}

std::optional<Layout::Location> Layout::locate(std::size_t offset) const noexcept {
  if (offset < data_start_) {
    return std::nullopt;  // catalog
  }
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    const auto& tl = tables_[t];
    const std::size_t end = tl.offset + tl.record_size * tl.num_records;
    if (offset >= tl.offset && offset < end) {
      const std::size_t within = offset - tl.offset;
      Location loc;
      loc.table = static_cast<TableId>(t);
      loc.record = static_cast<RecordIndex>(within / tl.record_size);
      loc.in_header = (within % tl.record_size) < kRecordHeaderSize;
      return loc;
    }
  }
  return std::nullopt;
}

std::optional<std::pair<RecordIndex, RecordIndex>> Layout::records_overlapping(
    TableId t, std::size_t offset, std::size_t len) const noexcept {
  if (t >= tables_.size() || len == 0) {
    return std::nullopt;
  }
  const auto& tl = tables_[t];
  const std::size_t table_end = tl.offset + tl.record_size * tl.num_records;
  const std::size_t lo = std::max(offset, tl.offset);
  const std::size_t hi = std::min(offset + len, table_end);
  if (lo >= hi) {
    return std::nullopt;
  }
  return std::make_pair(
      static_cast<RecordIndex>((lo - tl.offset) / tl.record_size),
      static_cast<RecordIndex>((hi - 1 - tl.offset) / tl.record_size));
}

namespace {

std::uint32_t field_flags(const FieldSpec& field) {
  std::uint32_t flags = 0;
  if (field.kind == DataKind::Dynamic) {
    flags |= 1u;
  }
  if (field.has_range()) {
    flags |= 2u;
  }
  flags |= static_cast<std::uint32_t>(field.role) << 8;
  return flags;
}

}  // namespace

void format_region(std::span<std::byte> region, const Schema& schema,
                   const Layout& layout) {
  if (region.size() != layout.region_size()) {
    throw std::invalid_argument("format_region: region size mismatch");
  }
  std::memset(region.data(), 0, region.size());

  // --- catalog header ---
  store_u32(region, 0, kCatalogMagic);
  store_u32(region, 4, kCatalogVersion);
  store_u32(region, 8, static_cast<std::uint32_t>(schema.tables.size()));
  std::size_t total_fields = 0;
  for (const auto& table : schema.tables) {
    total_fields += table.fields.size();
  }
  store_u32(region, 12, static_cast<std::uint32_t>(total_fields));
  store_u32(region, 16, static_cast<std::uint32_t>(layout.region_size()));
  store_u32(region, 20, static_cast<std::uint32_t>(layout.data_start()));
  // bytes 24..31 reserved (zero)

  // --- table descriptors ---
  for (std::size_t t = 0; t < schema.tables.size(); ++t) {
    const auto& spec = schema.tables[t];
    const auto& tl = layout.tables()[t];
    const std::size_t at = kCatalogHeaderSize + t * kTableDescriptorSize;
    store_u32(region, at + 0, spec.dynamic ? 1u : 0u);
    store_u32(region, at + 4, tl.num_records);
    store_u32(region, at + 8, static_cast<std::uint32_t>(tl.record_size));
    store_u32(region, at + 12, static_cast<std::uint32_t>(tl.offset));
    store_u32(region, at + 16, static_cast<std::uint32_t>(tl.num_fields));
    store_u32(region, at + 20, static_cast<std::uint32_t>(tl.first_field_index));
    // at + 24 reserved
  }

  // --- field descriptors ---
  const std::size_t fields_base =
      kCatalogHeaderSize + schema.tables.size() * kTableDescriptorSize;
  std::size_t flat = 0;
  for (const auto& table : schema.tables) {
    for (const auto& field : table.fields) {
      const std::size_t at = fields_base + flat * kFieldDescriptorSize;
      store_u32(region, at + 0, field_flags(field));
      store_u32(region, at + 4, field.ref_table);
      store_i32(region, at + 8, field.range_min.value_or(0));
      store_i32(region, at + 12, field.range_max.value_or(0));
      store_i32(region, at + 16, field.default_value);
      // at + 20 reserved
      ++flat;
    }
  }

  // --- records: format every record as free, linked into group 0 (the
  // free list) in index order; static tables get their default values and
  // Active status since their records are permanently in use ---
  for (std::size_t t = 0; t < schema.tables.size(); ++t) {
    const auto& spec = schema.tables[t];
    const auto& tl = layout.tables()[t];
    for (RecordIndex r = 0; r < tl.num_records; ++r) {
      const std::size_t at = layout.record_offset(static_cast<TableId>(t), r);
      RecordHeader header;
      header.id_tag = expected_id_tag(static_cast<TableId>(t), r);
      header.status = spec.dynamic ? kStatusFree : kStatusActive;
      header.group = 0;
      header.next = (r + 1 < tl.num_records) ? r + 1 : kNilLink;
      store_record_header(region, at, header);
      for (std::size_t f = 0; f < spec.fields.size(); ++f) {
        store_i32(region, at + kRecordHeaderSize + f * 4,
                  spec.fields[f].default_value);
      }
    }
  }
}

bool CatalogView::header_ok() const noexcept {
  if (region_.size() < kCatalogHeaderSize) {
    return false;
  }
  if (load_u32(region_, 0) != kCatalogMagic ||
      load_u32(region_, 4) != kCatalogVersion) {
    return false;
  }
  const std::uint32_t num_tables = load_u32(region_, 8);
  const std::uint32_t total_fields = load_u32(region_, 12);
  const std::uint32_t region_size = load_u32(region_, 16);
  const std::uint32_t data_start = load_u32(region_, 20);
  if (region_size != region_.size()) {
    return false;
  }
  const std::size_t expected_data_start = kCatalogHeaderSize +
                                          num_tables * kTableDescriptorSize +
                                          total_fields * kFieldDescriptorSize;
  return data_start == expected_data_start && data_start <= region_.size();
}

std::uint32_t CatalogView::table_count() const noexcept {
  return region_.size() >= kCatalogHeaderSize ? load_u32(region_, 8) : 0;
}

std::optional<TableDescriptor> CatalogView::table(TableId t) const noexcept {
  if (!header_ok() || t >= table_count()) {
    return std::nullopt;
  }
  const std::size_t at = kCatalogHeaderSize + t * kTableDescriptorSize;
  TableDescriptor d;
  d.flags = load_u32(region_, at + 0);
  d.num_records = load_u32(region_, at + 4);
  d.record_size = load_u32(region_, at + 8);
  d.table_offset = load_u32(region_, at + 12);
  d.num_fields = load_u32(region_, at + 16);
  d.first_field_index = load_u32(region_, at + 20);

  // Sanity: the described extent must fit the region and the record size
  // must cover the header plus the declared fields. 64-bit arithmetic:
  // corrupted counts must not wrap the validation itself.
  if (static_cast<std::uint64_t>(d.record_size) <
      kRecordHeaderSize + static_cast<std::uint64_t>(d.num_fields) * 4) {
    return std::nullopt;
  }
  const std::uint64_t extent = static_cast<std::uint64_t>(d.table_offset) +
                               static_cast<std::uint64_t>(d.record_size) * d.num_records;
  if (extent > region_.size() || d.table_offset < load_u32(region_, 20)) {
    return std::nullopt;
  }
  return d;
}

std::optional<FieldDescriptor> CatalogView::field(TableId t, FieldId f) const noexcept {
  const auto table_desc = table(t);
  if (!table_desc || f >= table_desc->num_fields) {
    return std::nullopt;
  }
  const std::size_t fields_base =
      kCatalogHeaderSize + table_count() * kTableDescriptorSize;
  const std::size_t at =
      fields_base +
      (static_cast<std::size_t>(table_desc->first_field_index) + f) *
          kFieldDescriptorSize;
  if (at + kFieldDescriptorSize > region_.size()) {
    return std::nullopt;
  }
  FieldDescriptor d;
  d.flags = load_u32(region_, at + 0);
  d.ref_table = load_u32(region_, at + 4);
  d.range_min = load_i32(region_, at + 8);
  d.range_max = load_i32(region_, at + 12);
  d.default_value = load_i32(region_, at + 16);
  return d;
}

}  // namespace wtc::db
